(* Command-line driver for the SATIN reproduction experiments. *)

open Cmdliner
module E = Satin.Experiment
module Obs = Satin_obs.Obs
module Json = Satin_obs.Json
module Progress = Satin_obs.Progress
module Sanitizer = Satin_inject.Sanitizer
module Runner = Satin_runner.Runner
module Store = Satin_store.Store
module SKey = Satin_store.Key
module Fingerprint = Satin_store.Fingerprint
module Telemetry = Satin_store.Telemetry

let fmt = Format.std_formatter

let seed_arg =
  let doc = "PRNG seed; every experiment is deterministic in the seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let quick_arg =
  let doc = "Shrink campaign lengths for a fast run." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let jobs_arg =
  let doc =
    "Run trial fan-outs on $(docv) domains. Reports are byte-identical \
     whatever the value; the default 1 keeps every trial on the calling \
     domain. Ignored (forced back to 1) when --trace/--metrics install an \
     observability sink."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let trace_arg =
  let doc =
    "Export a Chrome trace-event JSON timeline of the run to $(docv); open \
     it at ui.perfetto.dev or chrome://tracing."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Export a JSON summary of the run's metrics to $(docv)." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let check_arg =
  let doc =
    "Run the simulation sanitizer: every scenario validates engine, \
     event-queue, and scheduler invariants on a sampled cadence. Exits \
     nonzero if any violation is found. Results are unchanged (the \
     sanitizer only reads state), whatever --jobs width."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let store_arg =
  let doc =
    "Serve previously-computed trials from the result store rooted at \
     $(docv) (created if absent) and persist every newly-computed trial \
     into it, so repeated runs are incremental. Reports are byte-identical \
     warm or cold, at any --jobs width. Defaults to \\$SATIN_STORE when \
     that is set."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let no_store_arg =
  let doc =
    "Never touch a result store, even when \\$SATIN_STORE is set: every \
     trial recomputes."
  in
  Arg.(value & flag & info [ "no-store" ] ~doc)

let progress_arg =
  let doc =
    "Print live heartbeats to stderr while trials run: trials done/total, \
     store hit rate, ETA, and current p50s of the headline latency series. \
     Off by default; stdout reports (and every export) are byte-identical \
     with or without it."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let resolve_store dir no_store =
  if no_store then None
  else match dir with Some _ -> dir | None -> Sys.getenv_opt "SATIN_STORE"

(* Install the result store around [f] when one was asked for; the
   hit/miss summary goes to stderr so stdout stays byte-identical between
   warm and cold runs. *)
let with_store dir no_store f =
  match resolve_store dir no_store with
  | None -> f ()
  | Some dir ->
      let store = Store.open_ dir in
      Store.install store;
      Fun.protect
        ~finally:(fun () ->
          Store.uninstall ();
          Printf.eprintf "%s\n" (Store.summary_line store))
        f

(* Enable check mode around [f]; report to stderr (stdout stays the
   byte-stable experiment report) and exit nonzero on violations. Check
   mode also enters the ambient store-key context: a sanitized run must
   never be served wholesale from a clean run's records — that would skip
   the sanitizer — so its trials key differently. *)
let with_check check f =
  if not check then f ()
  else begin
    Sanitizer.reset_global ();
    Sanitizer.set_check_mode true;
    SKey.set_ambient [ ("check", "1") ];
    Fun.protect
      ~finally:(fun () ->
        Sanitizer.set_check_mode false;
        SKey.set_ambient [])
      f;
    let r = Sanitizer.global_report () in
    if r.Sanitizer.violations > 0 then begin
      Printf.eprintf "sanitizer: %d violation(s) in %d check(s)\n"
        r.Sanitizer.violations r.Sanitizer.checks;
      List.iter (Printf.eprintf "  %s\n") r.Sanitizer.messages;
      exit 3
    end
    else
      Printf.eprintf "sanitizer: %d check(s), 0 violations\n"
        r.Sanitizer.checks
  end

(* Install an observability sink around [f] only when an export was asked
   for, so the default path keeps the bare (un-instrumented) hot loops.
   Exports are stamped with the build/config identity so telemetry
   consumers can refuse apples-to-oranges comparisons; the stamp is taken
   after [f] so it sees the same ambient context the run keyed under. *)
let with_obs trace metrics f =
  match (trace, metrics) with
  | None, None -> f ()
  | _ ->
      let obs = Obs.create () in
      Obs.install obs;
      Fun.protect ~finally:Obs.uninstall f;
      Obs.set_identity (Some (Satin.Summary.identity ()));
      Fun.protect
        ~finally:(fun () -> Obs.set_identity None)
        (fun () ->
          Option.iter (Obs.write_trace obs) trace;
          Option.iter (Obs.write_metrics obs) metrics)

(* Live heartbeats around [f]; the final summary heartbeat is emitted even
   when [f] raises, so an interrupted campaign still reports its tally. *)
let with_progress progress f =
  if not progress then f ()
  else begin
    Progress.install ();
    Fun.protect ~finally:Progress.finish f
  end

let simple name doc f =
  let run seed jobs trace metrics check store no_store progress =
    let pool = Runner.create ~jobs () in
    with_progress progress (fun () ->
        with_check check (fun () ->
            with_store store no_store (fun () ->
                with_obs trace metrics (fun () -> f pool seed))))
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run $ seed_arg $ jobs_arg $ trace_arg $ metrics_arg $ check_arg
      $ store_arg $ no_store_arg $ progress_arg)

(* Like [simple] but with the [--quick] flag. *)
let campaign name doc f =
  let run seed quick jobs trace metrics check store no_store progress =
    let pool = Runner.create ~jobs () in
    with_progress progress (fun () ->
        with_check check (fun () ->
            with_store store no_store (fun () ->
                with_obs trace metrics (fun () -> f pool seed quick))))
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run $ seed_arg $ quick_arg $ jobs_arg $ trace_arg $ metrics_arg
      $ check_arg $ store_arg $ no_store_arg $ progress_arg)

(* Closed-form commands: no seed, but still accept the export flags (and
   the store flags, which they harmlessly ignore — nothing to memoize). *)
let closed_form name doc f =
  let run trace metrics check store no_store progress =
    with_progress progress (fun () ->
        with_check check (fun () ->
            with_store store no_store (fun () -> with_obs trace metrics f)))
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run $ trace_arg $ metrics_arg $ check_arg $ store_arg
      $ no_store_arg $ progress_arg)

let e1 = simple "e1" "World-switch latency (Sec IV-B1)"
    (fun pool seed -> E.print_e1 fmt (E.run_e1 ~pool ~seed ()))

let table1 = simple "table1" "Table I: per-byte introspection cost"
    (fun pool seed -> E.print_table1 fmt (E.run_table1 ~pool ~seed ()))

let e3 = simple "e3" "Attacker recovery time (Sec IV-B2)"
    (fun pool seed -> E.print_e3 fmt (E.run_e3 ~pool ~seed ()))

let uprober = simple "uprober" "User-level prober responsiveness (Sec III-B1)"
    (fun pool seed -> E.print_uprober fmt (E.run_uprober ~pool ~seed ()))

let table2 = campaign "table2" "Table II: probing threshold vs period"
    (fun pool seed quick ->
      let rounds = if quick then 15 else 50 in
      E.print_table2 fmt (E.run_table2 ~pool ~seed ~rounds ()))

let fig4 = campaign "fig4" "Figure 4: probing threshold stability"
    (fun pool seed quick ->
      let rounds = if quick then 15 else 50 in
      E.print_fig4 fmt (E.run_table2 ~pool ~seed ~rounds ()))

let e6 = simple "e6" "Single-core vs all-core probing"
    (fun pool seed -> E.print_e6 fmt (E.run_e6 ~pool ~seed ()))

let race = closed_form "race" "Sec IV-C race-condition analysis"
    (fun () -> E.print_e7 fmt (E.run_e7 ()))

let timeline = closed_form "timeline" "Figure 3: two-world race timeline"
    (fun () -> E.print_timeline fmt Satin.Race.paper_worst_case)

let evasion = campaign "evasion" "E8: TZ-Evader vs PKM-style introspection"
    (fun pool seed quick ->
      E.print_e8 fmt
        (E.run_e8 ~pool ~seed ~duration_s:(if quick then 120 else 400) ()))

let areas = closed_form "areas" "E9: kernel area partition"
    (fun () -> E.print_e9 fmt (E.run_e9 ()))

let satin_detect =
  campaign "satin-detect" "E10: SATIN detecting TZ-Evader (Sec VI-B1)"
    (fun _pool seed quick ->
      E.print_e10 fmt
        (E.run_e10 ~seed ~target_rounds:(if quick then 57 else 190) ()))

let fig7 = campaign "fig7" "Figure 7: SATIN overhead on UnixBench"
    (fun pool seed quick ->
      E.print_fig7 fmt
        (E.run_fig7 ~pool ~seed ~window_s:(if quick then 8 else 30) ()))

let dkom = campaign "dkom" "E13: cross-view detection of DKOM process hiding"
    (fun _pool seed quick ->
      E.print_e13 fmt (E.run_e13 ~seed ~checks:(if quick then 10 else 30) ()))

let cache_channel =
  campaign "cache-channel" "E14: SATIN vs the cache-occupancy side channel"
    (fun _pool seed quick ->
      E.print_e14 fmt (E.run_e14 ~seed ~passes:(if quick then 1 else 3) ()))

let sweep = campaign "sweep" "Tgoal coverage/overhead sweep"
    (fun pool seed quick ->
      E.print_tgoal_sweep fmt
        (E.run_tgoal_sweep ~pool ~seed ~trials:(if quick then 2 else 4) ()))

let ablation = campaign "ablation" "SATIN randomization ablation"
    (fun pool seed quick ->
      E.print_ablation fmt
        (E.run_ablation ~pool ~seed ~passes:(if quick then 1 else 3) ()))

let inject =
  campaign "inject" "Fault injection: SATIN detection rate per fault plan"
    (fun pool seed quick ->
      E.print_inject fmt
        (E.run_inject ~pool ~seed
           ~trials:(if quick then 2 else 4)
           ~window_s:(if quick then 25 else 30)
           ()))

let degrade =
  campaign "degrade" "Graceful degradation vs secure-timer drop severity"
    (fun pool seed quick ->
      E.print_degrade fmt
        (E.run_degrade ~pool ~seed
           ~trials:(if quick then 2 else 4)
           ~window_s:(if quick then 25 else 30)
           ()))

let all = campaign "all" "Run the whole evaluation in paper order"
    (fun pool seed quick -> E.run_all ~pool ~seed ~quick fmt)

(* Print the code fingerprint mixed into every store key, so a user can
   explain why a rebuilt binary misses a warmed store: the first stdout
   line is the bare hex (script-friendly); provenance goes to stderr. *)
let fingerprint =
  let doc =
    "Print the code fingerprint (digest of this executable) that every \
     result-store key includes; records written by another build never \
     resolve, they just miss."
  in
  let run () =
    print_endline (Fingerprint.hex ());
    List.iter
      (fun (k, v) ->
        if k <> "fingerprint" then Printf.eprintf "%s: %s\n" k v)
      (Fingerprint.describe ())
  in
  Cmd.v (Cmd.info "fingerprint" ~doc) Term.(const run $ const ())

(* The incremental campaign orchestrator: a declared (experiments x seeds)
   sweep. Every trial goes through the result store when one is installed,
   so re-running a killed campaign only executes the missing trials. *)
let campaign_experiments : (string * (Runner.t -> int -> bool -> unit)) list =
  [
    ("e1", fun pool seed _ -> E.print_e1 fmt (E.run_e1 ~pool ~seed ()));
    ("table1", fun pool seed _ -> E.print_table1 fmt (E.run_table1 ~pool ~seed ()));
    ("e3", fun pool seed _ -> E.print_e3 fmt (E.run_e3 ~pool ~seed ()));
    ( "uprober",
      fun pool seed quick ->
        E.print_uprober fmt
          (E.run_uprober ~pool ~seed ~trials:(if quick then 6 else 20) ()) );
    ( "table2",
      fun pool seed quick ->
        E.print_table2 fmt
          (E.run_table2 ~pool ~seed ~rounds:(if quick then 15 else 50) ()) );
    ( "e6",
      fun pool seed quick ->
        E.print_e6 fmt
          (E.run_e6 ~pool ~seed ~rounds:(if quick then 15 else 50) ()) );
    ( "evasion",
      fun pool seed quick ->
        E.print_e8 fmt
          (E.run_e8 ~pool ~seed ~duration_s:(if quick then 120 else 400) ()) );
    ( "satin-detect",
      fun _pool seed quick ->
        E.print_e10 fmt
          (E.run_e10 ~seed ~target_rounds:(if quick then 57 else 190) ()) );
    ( "fig7",
      fun pool seed quick ->
        E.print_fig7 fmt
          (E.run_fig7 ~pool ~seed ~window_s:(if quick then 8 else 30) ()) );
    ( "ablation",
      fun pool seed quick ->
        E.print_ablation fmt
          (E.run_ablation ~pool ~seed ~passes:(if quick then 1 else 3) ()) );
    ( "dkom",
      fun _pool seed quick ->
        E.print_e13 fmt (E.run_e13 ~seed ~checks:(if quick then 10 else 30) ()) );
    ( "cache-channel",
      fun _pool seed quick ->
        E.print_e14 fmt (E.run_e14 ~seed ~passes:(if quick then 1 else 3) ()) );
    ( "sweep",
      fun pool seed quick ->
        E.print_tgoal_sweep fmt
          (E.run_tgoal_sweep ~pool ~seed ~trials:(if quick then 2 else 4) ()) );
    ( "inject",
      fun pool seed quick ->
        E.print_inject fmt
          (E.run_inject ~pool ~seed
             ~trials:(if quick then 2 else 4)
             ~window_s:(if quick then 25 else 30)
             ()) );
    ( "degrade",
      fun pool seed quick ->
        E.print_degrade fmt
          (E.run_degrade ~pool ~seed
             ~trials:(if quick then 2 else 4)
             ~window_s:(if quick then 25 else 30)
             ()) );
  ]

let campaign_cmd =
  let doc =
    "Run a declared parameter sweep (experiments x seeds) incrementally. \
     With --store, completed trials persist as they finish, so re-running \
     an interrupted campaign executes only the missing trials and a fully \
     warmed campaign recomputes nothing."
  in
  let experiments_arg =
    let doc =
      "Comma-separated experiments to run, in order. Defaults to every \
       seeded experiment."
    in
    Arg.(
      value
      & opt (list string) (List.map fst campaign_experiments)
      & info [ "experiments"; "e" ] ~docv:"NAMES" ~doc)
  in
  let seeds_arg =
    let doc = "Comma-separated PRNG seeds; the sweep runs every experiment at every seed." in
    Arg.(value & opt (list int) [ 42 ] & info [ "seeds" ] ~docv:"SEEDS" ~doc)
  in
  let run experiments seeds quick jobs trace metrics check store no_store
      progress =
    (match
       List.filter
         (fun n -> not (List.mem_assoc n campaign_experiments))
         experiments
     with
    | [] -> ()
    | unknown ->
        Printf.eprintf "campaign: unknown experiment(s) %s; valid: %s\n"
          (String.concat ", " unknown)
          (String.concat ", " (List.map fst campaign_experiments));
        exit 2);
    if seeds = [] then begin
      prerr_endline "campaign: --seeds must name at least one seed";
      exit 2
    end;
    let pool = Runner.create ~jobs () in
    with_progress progress (fun () ->
        with_check check (fun () ->
            with_store store no_store (fun () ->
                with_obs trace metrics (fun () ->
                    List.iter
                      (fun seed ->
                        List.iter
                          (fun name ->
                            Format.fprintf fmt
                              "==== campaign: %s seed=%d ====@." name seed;
                            Progress.set_label
                              (Printf.sprintf "%s seed=%d" name seed);
                            (List.assoc name campaign_experiments) pool seed
                              quick)
                          experiments)
                      seeds))))
  in
  Cmd.v (Cmd.info "campaign" ~doc)
    Term.(
      const run $ experiments_arg $ seeds_arg $ quick_arg $ jobs_arg
      $ trace_arg $ metrics_arg $ check_arg $ store_arg $ no_store_arg
      $ progress_arg)

(* ---- telemetry: aggregate capsules, export, gate ---- *)

let read_json_file path =
  let contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error e ->
      Printf.eprintf "telemetry: %s\n" e;
      exit 2
  in
  match Json.parse contents with
  | Ok j -> j
  | Error e ->
      Printf.eprintf "telemetry: %s: %s\n" path e;
      exit 2

let write_string path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let telemetry_store_dir store =
  match resolve_store store false with
  | Some dir -> dir
  | None ->
      prerr_endline
        "telemetry: no store to aggregate; pass --store DIR or set \
         $SATIN_STORE";
      exit 2

let telemetry_collect store fingerprint =
  let dir = telemetry_store_dir store in
  match Telemetry.collect ?fingerprint (Store.open_ dir) with
  | Ok r -> r
  | Error e ->
      Printf.eprintf "telemetry: %s\n" e;
      exit 2

let fingerprint_arg =
  let doc =
    "Aggregate only capsules produced by the build with this fingerprint \
     (see the fingerprint subcommand). Required when the store mixes \
     capsules from several builds."
  in
  Arg.(value & opt (some string) None & info [ "fingerprint" ] ~docv:"HEX" ~doc)

let telemetry_report_cmd =
  let doc =
    "Aggregate the store's metric capsules into per-experiment percentile \
     tables (exact merges — identical at any --jobs width, warm or cold), \
     optionally exporting JSON and OpenMetrics text."
  in
  let json_arg =
    let doc = "Write the report as JSON (satin-telemetry/v1) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let om_arg =
    let doc = "Write the report as OpenMetrics text to $(docv)." in
    Arg.(
      value & opt (some string) None & info [ "openmetrics" ] ~docv:"FILE" ~doc)
  in
  let run store fingerprint json_out om_out =
    let r = telemetry_collect store fingerprint in
    Telemetry.print_table fmt r;
    Option.iter
      (fun p -> write_string p (Json.to_string (Telemetry.to_json r) ^ "\n"))
      json_out;
    Option.iter (fun p -> write_string p (Telemetry.to_openmetrics r)) om_out
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const run $ store_arg $ fingerprint_arg $ json_arg $ om_arg)

let telemetry_gate_cmd =
  let doc =
    "Compare a current telemetry (or bench) JSON document against a \
     committed baseline and exit nonzero when any tracked series regresses \
     beyond the threshold. Documents describing different campaign \
     compositions (identity.config_hash mismatch) are refused."
  in
  let baseline_arg =
    let doc = "Baseline JSON document (e.g. BASELINE_telemetry.json)." in
    Arg.(
      required
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let current_arg =
    let doc =
      "Current JSON document to check. Defaults to aggregating the store \
       (--store/\\$SATIN_STORE) into a fresh telemetry report."
    in
    Arg.(value & opt (some string) None & info [ "current" ] ~docv:"FILE" ~doc)
  in
  let threshold_arg =
    let doc = "Relative regression threshold (0.10 = 10%)." in
    Arg.(
      value
      & opt float Telemetry.gate_threshold_default
      & info [ "threshold" ] ~docv:"FRACTION" ~doc)
  in
  let run baseline current store fingerprint threshold =
    let baseline = read_json_file baseline in
    let current =
      match current with
      | Some path -> read_json_file path
      | None -> Telemetry.to_json (telemetry_collect store fingerprint)
    in
    match Telemetry.gate ~threshold ~baseline ~current () with
    | Error e ->
        Printf.eprintf "telemetry gate: %s\n" e;
        exit 2
    | Ok g ->
        List.iter
          (Printf.eprintf "telemetry gate: note: baseline path %s missing from current\n")
          g.Telemetry.missing;
        if g.Telemetry.regressions <> [] then begin
          Printf.eprintf
            "telemetry gate: FAIL — %d regression(s) beyond %.0f%% across %d \
             tracked series\n"
            (List.length g.Telemetry.regressions)
            (threshold *. 100.0) g.Telemetry.compared;
          List.iter
            (fun (path, b, c) ->
              Printf.eprintf "  %s: baseline %.6g -> current %.6g\n" path b c)
            g.Telemetry.regressions;
          exit 1
        end
        else
          Printf.eprintf
            "telemetry gate: PASS — %d tracked series within %.0f%% of \
             baseline\n"
            g.Telemetry.compared (threshold *. 100.0)
  in
  Cmd.v (Cmd.info "gate" ~doc)
    Term.(
      const run $ baseline_arg $ current_arg $ store_arg $ fingerprint_arg
      $ threshold_arg)

let telemetry_cmd =
  let doc =
    "Aggregate persisted per-trial metric capsules into campaign telemetry: \
     percentile tables, JSON/OpenMetrics exports, and regression gating."
  in
  Cmd.group (Cmd.info "telemetry" ~doc)
    [ telemetry_report_cmd; telemetry_gate_cmd ]

let main =
  let doc = "SATIN (DSN 2019) reproduction: experiments on the simulated Juno r1" in
  Cmd.group (Cmd.info "satin_cli" ~version:"1.1.0" ~doc)
    [
      e1; table1; e3; uprober; table2; fig4; e6; race; timeline; evasion;
      areas; satin_detect; fig7; ablation; dkom; cache_channel; sweep; inject;
      degrade; all; fingerprint; campaign_cmd; telemetry_cmd;
    ]

let () = exit (Cmd.eval main)
