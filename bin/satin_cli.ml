(* Command-line driver for the SATIN reproduction experiments. *)

open Cmdliner
module E = Satin.Experiment
module Obs = Satin_obs.Obs
module Json = Satin_obs.Json
module Progress = Satin_obs.Progress
module Sanitizer = Satin_inject.Sanitizer
module Runner = Satin_runner.Runner
module Store = Satin_store.Store
module SKey = Satin_store.Key
module Memo = Satin_store.Memo
module Fingerprint = Satin_store.Fingerprint
module Telemetry = Satin_store.Telemetry
module Incremental = Satin_introspect.Incremental

let fmt = Format.std_formatter

let seed_arg =
  let doc = "PRNG seed; every experiment is deterministic in the seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let quick_arg =
  let doc = "Shrink campaign lengths for a fast run." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let jobs_arg =
  let doc =
    "Run trial fan-outs on $(docv) domains. Reports are byte-identical \
     whatever the value; the default 1 keeps every trial on the calling \
     domain. Ignored (forced back to 1) when --trace/--metrics install an \
     observability sink."
  in
  Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)

let trace_arg =
  let doc =
    "Export a Chrome trace-event JSON timeline of the run to $(docv); open \
     it at ui.perfetto.dev or chrome://tracing."
  in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let metrics_arg =
  let doc = "Export a JSON summary of the run's metrics to $(docv)." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let check_arg =
  let doc =
    "Run the simulation sanitizer: every scenario validates engine, \
     event-queue, and scheduler invariants on a sampled cadence. Exits \
     nonzero if any violation is found. Results are unchanged (the \
     sanitizer only reads state), whatever --jobs width."
  in
  Arg.(value & flag & info [ "check" ] ~doc)

let full_rehash_arg =
  let doc =
    "Disable incremental (generation-gated) host-side hashing: every scan \
     round re-hashes its full range and every Merkle verification \
     recomputes every leaf — the reference path. Reports are \
     byte-identical with or without this flag (only host wall-clock \
     changes); trials key separately in the result store so the two modes' \
     capsules never mix."
  in
  Arg.(value & flag & info [ "full-rehash" ] ~doc)

let store_arg =
  let doc =
    "Serve previously-computed trials from the result store rooted at \
     $(docv) (created if absent) and persist every newly-computed trial \
     into it, so repeated runs are incremental. Reports are byte-identical \
     warm or cold, at any --jobs width. Defaults to \\$SATIN_STORE when \
     that is set."
  in
  Arg.(value & opt (some string) None & info [ "store" ] ~docv:"DIR" ~doc)

let no_store_arg =
  let doc =
    "Never touch a result store, even when \\$SATIN_STORE is set: every \
     trial recomputes."
  in
  Arg.(value & flag & info [ "no-store" ] ~doc)

let progress_arg =
  let doc =
    "Print live heartbeats to stderr while trials run: trials done/total, \
     store hit rate, ETA, and current p50s of the headline latency series. \
     Off by default; stdout reports (and every export) are byte-identical \
     with or without it."
  in
  Arg.(value & flag & info [ "progress" ] ~doc)

let resolve_store dir no_store =
  if no_store then None
  else match dir with Some _ -> dir | None -> Sys.getenv_opt "SATIN_STORE"

(* Install the result store around [f] when one was asked for; the
   hit/miss summary goes to stderr so stdout stays byte-identical between
   warm and cold runs. Closing releases the journal fd and fsyncs it, so
   a store handed off between fleet processes is durable on exit. *)
let with_store dir no_store f =
  match resolve_store dir no_store with
  | None -> f ()
  | Some dir ->
      let store = Store.open_ dir in
      Store.install store;
      Fun.protect
        ~finally:(fun () ->
          Store.uninstall ();
          Printf.eprintf "%s\n" (Store.summary_line store);
          Store.close store)
        f

(* Enable check mode around [f]; report to stderr (stdout stays the
   byte-stable experiment report) and exit nonzero on violations. Check
   mode also enters the ambient store-key context: a sanitized run must
   never be served wholesale from a clean run's records — that would skip
   the sanitizer — so its trials key differently. *)
let with_check check f =
  if not check then f ()
  else begin
    Sanitizer.reset_global ();
    Sanitizer.set_check_mode true;
    let prev_ambient = SKey.ambient () in
    SKey.set_ambient (("check", "1") :: prev_ambient);
    Fun.protect
      ~finally:(fun () ->
        Sanitizer.set_check_mode false;
        SKey.set_ambient prev_ambient)
      f;
    let r = Sanitizer.global_report () in
    if r.Sanitizer.violations > 0 then begin
      Printf.eprintf "sanitizer: %d violation(s) in %d check(s)\n"
        r.Sanitizer.violations r.Sanitizer.checks;
      List.iter (Printf.eprintf "  %s\n") r.Sanitizer.messages;
      exit 3
    end
    else
      Printf.eprintf "sanitizer: %d check(s), 0 violations\n"
        r.Sanitizer.checks
  end

(* Force the reference full-re-hash path around [f]. Enters the ambient
   store-key context for the same reason check mode does: full-rehash
   trials compute identical results but different scan.* capsule series,
   and the two modes' records must never cross-pollinate a store. *)
let with_full_rehash full_rehash f =
  if not full_rehash then f ()
  else begin
    let prev_ambient = SKey.ambient () in
    Incremental.set_enabled false;
    SKey.set_ambient (("full-rehash", "1") :: prev_ambient);
    Fun.protect
      ~finally:(fun () ->
        Incremental.set_enabled true;
        SKey.set_ambient prev_ambient)
      f
  end

(* Install an observability sink around [f] only when an export was asked
   for, so the default path keeps the bare (un-instrumented) hot loops.
   Exports are stamped with the build/config identity so telemetry
   consumers can refuse apples-to-oranges comparisons; the stamp is taken
   after [f] so it sees the same ambient context the run keyed under. *)
let with_obs trace metrics f =
  match (trace, metrics) with
  | None, None -> f ()
  | _ ->
      let obs = Obs.create () in
      Obs.install obs;
      Fun.protect ~finally:Obs.uninstall f;
      Obs.set_identity (Some (Satin.Summary.identity ()));
      Fun.protect
        ~finally:(fun () -> Obs.set_identity None)
        (fun () ->
          Option.iter (Obs.write_trace obs) trace;
          Option.iter (Obs.write_metrics obs) metrics)

(* Live heartbeats around [f]; the final summary heartbeat is emitted even
   when [f] raises, so an interrupted campaign still reports its tally. *)
let with_progress progress f =
  if not progress then f ()
  else begin
    Progress.install ();
    Fun.protect ~finally:Progress.finish f
  end

let simple name doc f =
  let run seed jobs trace metrics check full_rehash store no_store progress =
    let pool = Runner.create ~jobs () in
    with_progress progress (fun () ->
        with_full_rehash full_rehash (fun () ->
            with_check check (fun () ->
                with_store store no_store (fun () ->
                    with_obs trace metrics (fun () -> f pool seed)))))
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run $ seed_arg $ jobs_arg $ trace_arg $ metrics_arg $ check_arg
      $ full_rehash_arg $ store_arg $ no_store_arg $ progress_arg)

(* Like [simple] but with the [--quick] flag. *)
let campaign name doc f =
  let run seed quick jobs trace metrics check full_rehash store no_store
      progress =
    let pool = Runner.create ~jobs () in
    with_progress progress (fun () ->
        with_full_rehash full_rehash (fun () ->
            with_check check (fun () ->
                with_store store no_store (fun () ->
                    with_obs trace metrics (fun () -> f pool seed quick)))))
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run $ seed_arg $ quick_arg $ jobs_arg $ trace_arg $ metrics_arg
      $ check_arg $ full_rehash_arg $ store_arg $ no_store_arg $ progress_arg)

(* Closed-form commands: no seed, but still accept the export flags (and
   the store flags, which they harmlessly ignore — nothing to memoize). *)
let closed_form name doc f =
  let run trace metrics check full_rehash store no_store progress =
    with_progress progress (fun () ->
        with_full_rehash full_rehash (fun () ->
            with_check check (fun () ->
                with_store store no_store (fun () -> with_obs trace metrics f))))
  in
  Cmd.v (Cmd.info name ~doc)
    Term.(
      const run $ trace_arg $ metrics_arg $ check_arg $ full_rehash_arg
      $ store_arg $ no_store_arg $ progress_arg)

let e1 = simple "e1" "World-switch latency (Sec IV-B1)"
    (fun pool seed -> E.print_e1 fmt (E.run_e1 ~pool ~seed ()))

let table1 = simple "table1" "Table I: per-byte introspection cost"
    (fun pool seed -> E.print_table1 fmt (E.run_table1 ~pool ~seed ()))

let e3 = simple "e3" "Attacker recovery time (Sec IV-B2)"
    (fun pool seed -> E.print_e3 fmt (E.run_e3 ~pool ~seed ()))

let uprober = simple "uprober" "User-level prober responsiveness (Sec III-B1)"
    (fun pool seed -> E.print_uprober fmt (E.run_uprober ~pool ~seed ()))

let table2 = campaign "table2" "Table II: probing threshold vs period"
    (fun pool seed quick ->
      let rounds = if quick then 15 else 50 in
      E.print_table2 fmt (E.run_table2 ~pool ~seed ~rounds ()))

let fig4 = campaign "fig4" "Figure 4: probing threshold stability"
    (fun pool seed quick ->
      let rounds = if quick then 15 else 50 in
      E.print_fig4 fmt (E.run_table2 ~pool ~seed ~rounds ()))

let e6 = simple "e6" "Single-core vs all-core probing"
    (fun pool seed -> E.print_e6 fmt (E.run_e6 ~pool ~seed ()))

let race = closed_form "race" "Sec IV-C race-condition analysis"
    (fun () -> E.print_e7 fmt (E.run_e7 ()))

let timeline = closed_form "timeline" "Figure 3: two-world race timeline"
    (fun () -> E.print_timeline fmt Satin.Race.paper_worst_case)

let evasion = campaign "evasion" "E8: TZ-Evader vs PKM-style introspection"
    (fun pool seed quick ->
      E.print_e8 fmt
        (E.run_e8 ~pool ~seed ~duration_s:(if quick then 120 else 400) ()))

let areas = closed_form "areas" "E9: kernel area partition"
    (fun () -> E.print_e9 fmt (E.run_e9 ()))

let satin_detect =
  campaign "satin-detect" "E10: SATIN detecting TZ-Evader (Sec VI-B1)"
    (fun _pool seed quick ->
      E.print_e10 fmt
        (E.run_e10 ~seed ~target_rounds:(if quick then 57 else 190) ()))

let fig7 = campaign "fig7" "Figure 7: SATIN overhead on UnixBench"
    (fun pool seed quick ->
      E.print_fig7 fmt
        (E.run_fig7 ~pool ~seed ~window_s:(if quick then 8 else 30) ()))

let dkom = campaign "dkom" "E13: cross-view detection of DKOM process hiding"
    (fun _pool seed quick ->
      E.print_e13 fmt (E.run_e13 ~seed ~checks:(if quick then 10 else 30) ()))

let cache_channel =
  campaign "cache-channel" "E14: SATIN vs the cache-occupancy side channel"
    (fun _pool seed quick ->
      E.print_e14 fmt (E.run_e14 ~seed ~passes:(if quick then 1 else 3) ()))

let cache_fidelity =
  campaign "cache-fidelity"
    "Side-channel fidelity grid: prober mode x replacement policy x AutoLock"
    (fun pool seed quick ->
      E.print_cache_fidelity fmt
        (E.run_cache_fidelity ~pool ~seed
           ~trials:(if quick then 1 else 2)
           ~window_s:(if quick then 6 else 10)
           ()))

let sweep = campaign "sweep" "Tgoal coverage/overhead sweep"
    (fun pool seed quick ->
      E.print_tgoal_sweep fmt
        (E.run_tgoal_sweep ~pool ~seed ~trials:(if quick then 2 else 4) ()))

let ablation = campaign "ablation" "SATIN randomization ablation"
    (fun pool seed quick ->
      E.print_ablation fmt
        (E.run_ablation ~pool ~seed ~passes:(if quick then 1 else 3) ()))

let inject =
  campaign "inject" "Fault injection: SATIN detection rate per fault plan"
    (fun pool seed quick ->
      E.print_inject fmt
        (E.run_inject ~pool ~seed
           ~trials:(if quick then 2 else 4)
           ~window_s:(if quick then 25 else 30)
           ()))

let degrade =
  campaign "degrade" "Graceful degradation vs secure-timer drop severity"
    (fun pool seed quick ->
      E.print_degrade fmt
        (E.run_degrade ~pool ~seed
           ~trials:(if quick then 2 else 4)
           ~window_s:(if quick then 25 else 30)
           ()))

let all = campaign "all" "Run the whole evaluation in paper order"
    (fun pool seed quick -> E.run_all ~pool ~seed ~quick fmt)

let fleet =
  campaign "fleet" "Fleet: per-device detection & overhead sweep"
    (fun pool seed quick ->
      E.print_fleet fmt
        (E.run_fleet ~pool ~seed
           ~devices:(if quick then 16 else 240)
           ~window_s:(if quick then 10 else 20)
           ()))

(* Print the code fingerprint mixed into every store key, so a user can
   explain why a rebuilt binary misses a warmed store: the first stdout
   line is the bare hex (script-friendly); provenance goes to stderr. *)
let fingerprint =
  let doc =
    "Print the code fingerprint (digest of this executable) that every \
     result-store key includes; records written by another build never \
     resolve, they just miss."
  in
  let run () =
    print_endline (Fingerprint.hex ());
    List.iter
      (fun (k, v) ->
        if k <> "fingerprint" then Printf.eprintf "%s: %s\n" k v)
      (Fingerprint.describe ())
  in
  Cmd.v (Cmd.info "fingerprint" ~doc) Term.(const run $ const ())

(* The incremental campaign orchestrator: a declared (experiments x seeds)
   sweep. Every trial goes through the result store when one is installed,
   so re-running a killed campaign only executes the missing trials. *)
let campaign_experiments : (string * (Runner.t -> int -> bool -> unit)) list =
  [
    ("e1", fun pool seed _ -> E.print_e1 fmt (E.run_e1 ~pool ~seed ()));
    ("table1", fun pool seed _ -> E.print_table1 fmt (E.run_table1 ~pool ~seed ()));
    ("e3", fun pool seed _ -> E.print_e3 fmt (E.run_e3 ~pool ~seed ()));
    ( "uprober",
      fun pool seed quick ->
        E.print_uprober fmt
          (E.run_uprober ~pool ~seed ~trials:(if quick then 6 else 20) ()) );
    ( "table2",
      fun pool seed quick ->
        E.print_table2 fmt
          (E.run_table2 ~pool ~seed ~rounds:(if quick then 15 else 50) ()) );
    ( "e6",
      fun pool seed quick ->
        E.print_e6 fmt
          (E.run_e6 ~pool ~seed ~rounds:(if quick then 15 else 50) ()) );
    ( "evasion",
      fun pool seed quick ->
        E.print_e8 fmt
          (E.run_e8 ~pool ~seed ~duration_s:(if quick then 120 else 400) ()) );
    ( "satin-detect",
      fun _pool seed quick ->
        E.print_e10 fmt
          (E.run_e10 ~seed ~target_rounds:(if quick then 57 else 190) ()) );
    ( "fig7",
      fun pool seed quick ->
        E.print_fig7 fmt
          (E.run_fig7 ~pool ~seed ~window_s:(if quick then 8 else 30) ()) );
    ( "ablation",
      fun pool seed quick ->
        E.print_ablation fmt
          (E.run_ablation ~pool ~seed ~passes:(if quick then 1 else 3) ()) );
    ( "dkom",
      fun _pool seed quick ->
        E.print_e13 fmt (E.run_e13 ~seed ~checks:(if quick then 10 else 30) ()) );
    ( "cache-channel",
      fun _pool seed quick ->
        E.print_e14 fmt (E.run_e14 ~seed ~passes:(if quick then 1 else 3) ()) );
    ( "cache-fidelity",
      fun pool seed quick ->
        E.print_cache_fidelity fmt
          (E.run_cache_fidelity ~pool ~seed
             ~trials:(if quick then 1 else 2)
             ~window_s:(if quick then 6 else 10)
             ()) );
    ( "sweep",
      fun pool seed quick ->
        E.print_tgoal_sweep fmt
          (E.run_tgoal_sweep ~pool ~seed ~trials:(if quick then 2 else 4) ()) );
    ( "inject",
      fun pool seed quick ->
        E.print_inject fmt
          (E.run_inject ~pool ~seed
             ~trials:(if quick then 2 else 4)
             ~window_s:(if quick then 25 else 30)
             ()) );
    ( "degrade",
      fun pool seed quick ->
        E.print_degrade fmt
          (E.run_degrade ~pool ~seed
             ~trials:(if quick then 2 else 4)
             ~window_s:(if quick then 25 else 30)
             ()) );
    ( "fleet",
      fun pool seed quick ->
        E.print_fleet fmt
          (E.run_fleet ~pool ~seed
             ~devices:(if quick then 16 else 240)
             ~window_s:(if quick then 10 else 20)
             ()) );
  ]

(* [fleet] is deployment-scale: it joins the registry (so sharded fleets
   can name it) but not the default sweep, which CI runs warm. *)
let default_campaign_experiments =
  List.filter (fun n -> n <> "fleet") (List.map fst campaign_experiments)

(* "i/N" -> (i, N); campaign validates range and store presence. *)
let parse_shard s =
  match String.split_on_char '/' s with
  | [ i; n ] -> (
      match (int_of_string_opt i, int_of_string_opt n) with
      | Some i, Some n when n >= 1 && i >= 0 && i < n -> Some (i, n)
      | _ -> None)
  | _ -> None

(* Spawn one worker shard: this same executable, re-running the campaign
   as shard [i] of [w] against the shared store, stdout/stderr captured
   under DIR/shards/ (each shard's stdout is itself the full canonical
   report — useful for diffing, noise if interleaved on a tty). *)
let spawn_shard ~dir ~args ~w i =
  let shards = Filename.concat dir "shards" in
  Store.mkdir_p shards;
  let open_log ext =
    Unix.openfile
      (Filename.concat shards (Printf.sprintf "shard-%d.%s" i ext))
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
      0o644
  in
  let out = open_log "out" and err = open_log "err" in
  let argv =
    Array.of_list
      ((Sys.executable_name :: args) @ [ Printf.sprintf "--shard=%d/%d" i w ])
  in
  let pid = Unix.create_process Sys.executable_name argv Unix.stdin out err in
  Unix.close out;
  Unix.close err;
  pid

let campaign_cmd =
  let doc =
    "Run a declared parameter sweep (experiments x seeds) incrementally. \
     With --store, completed trials persist as they finish, so re-running \
     an interrupted campaign executes only the missing trials and a fully \
     warmed campaign recomputes nothing. With --shard or --workers, \
     several processes sweep the same store cooperatively, each emitting \
     the full byte-identical report."
  in
  let experiments_arg =
    let doc =
      "Comma-separated experiments to run, in order. Defaults to every \
       seeded experiment except the deployment-scale $(b,fleet), which \
       must be named explicitly."
    in
    Arg.(
      value
      & opt (list string) default_campaign_experiments
      & info [ "experiments"; "e" ] ~docv:"NAMES" ~doc)
  in
  let seeds_arg =
    let doc = "Comma-separated PRNG seeds; the sweep runs every experiment at every seed." in
    Arg.(value & opt (list int) [ 42 ] & info [ "seeds" ] ~docv:"SEEDS" ~doc)
  in
  let shard_arg =
    let doc =
      "Run as shard $(docv) (e.g. 0/4): own a deterministic slice of every \
       trial fan-out, compute it, and serve the rest from the store as the \
       other shards publish — so this process still prints the full \
       report, byte-identical to an unsharded run. Requires --store; the \
       other shards are launched separately (same store, same arguments, \
       different indices)."
    in
    Arg.(value & opt (some string) None & info [ "shard" ] ~docv:"I/N" ~doc)
  in
  let workers_arg =
    let doc =
      "Launch $(docv) worker processes (this executable, --shard i/$(docv) \
       each) against the shared store, wait for them, then replay the \
       warmed campaign in-process as the canonical merged report on \
       stdout. Per-shard stdout/stderr land under DIR/shards/. Requires \
       --store; mutually exclusive with --shard."
    in
    Arg.(value & opt (some int) None & info [ "workers" ] ~docv:"N" ~doc)
  in
  let lease_ttl_arg =
    let doc =
      "Seconds a shard's claim on a trial holds before peers may steal it \
       (and the grace peers extend to an owner that has not claimed yet). \
       Lower it for quick campaigns so a killed shard's trials are \
       re-owned sooner; raise it when single trials run long."
    in
    Arg.(
      value & opt float 60.0 & info [ "lease-ttl" ] ~docv:"SECONDS" ~doc)
  in
  let report_arg =
    let doc =
      "After the sweep, aggregate the store's metric capsules and print \
       the telemetry percentile table (same output as $(b,telemetry \
       report)). Requires --store."
    in
    Arg.(value & flag & info [ "report" ] ~doc)
  in
  let run experiments seeds quick jobs trace metrics check full_rehash store
      no_store progress shard workers lease_ttl report =
    (match
       List.filter
         (fun n -> not (List.mem_assoc n campaign_experiments))
         experiments
     with
    | [] -> ()
    | unknown ->
        Printf.eprintf "campaign: unknown experiment(s) %s; valid: %s\n"
          (String.concat ", " unknown)
          (String.concat ", " (List.map fst campaign_experiments));
        exit 2);
    if seeds = [] then begin
      prerr_endline "campaign: --seeds must name at least one seed";
      exit 2
    end;
    let resolved = resolve_store store no_store in
    let shard =
      match shard with
      | None -> None
      | Some s -> (
          match parse_shard s with
          | Some _ as sh -> sh
          | None ->
              Printf.eprintf
                "campaign: --shard wants I/N with 0 <= I < N, got %s\n" s;
              exit 2)
    in
    if shard <> None && workers <> None then begin
      prerr_endline "campaign: --shard and --workers are mutually exclusive";
      exit 2
    end;
    if (shard <> None || workers <> None || report) && resolved = None then begin
      prerr_endline
        "campaign: --shard/--workers/--report need a store; pass --store \
         DIR or set $SATIN_STORE";
      exit 2
    end;
    (match workers with
    | Some w when w < 1 ->
        prerr_endline "campaign: --workers must be at least 1";
        exit 2
    | _ -> ());
    if lease_ttl <= 0.0 then begin
      prerr_endline "campaign: --lease-ttl must be positive";
      exit 2
    end;
    Memo.set_lease_ttl lease_ttl;
    let run_campaign () =
      let pool = Runner.create ~jobs () in
      with_progress progress (fun () ->
          with_full_rehash full_rehash (fun () ->
            with_check check (fun () ->
              with_store store no_store (fun () ->
                  with_obs trace metrics (fun () ->
                      List.iter
                        (fun seed ->
                          List.iter
                            (fun name ->
                              Format.fprintf fmt
                                "==== campaign: %s seed=%d ====@." name seed;
                              Progress.set_label
                                (Printf.sprintf "%s seed=%d" name seed);
                              (List.assoc name campaign_experiments) pool seed
                                quick)
                            experiments)
                        seeds)))))
    in
    (match workers with
    | Some w ->
        let dir = Option.get resolved in
        let args =
          [
            "campaign"; "--experiments"; String.concat "," experiments;
            "--seeds";
            String.concat "," (List.map string_of_int seeds);
            "--jobs"; string_of_int jobs; "--store"; dir;
            Printf.sprintf "--lease-ttl=%g" lease_ttl;
          ]
          @ (if quick then [ "--quick" ] else [])
          @ (if check then [ "--check" ] else [])
          @ (if full_rehash then [ "--full-rehash" ] else [])
        in
        let pids = List.init w (spawn_shard ~dir ~args ~w) in
        let failed =
          List.filteri
            (fun i pid ->
              match snd (Unix.waitpid [] pid) with
              | Unix.WEXITED 0 -> false
              | status ->
                  Printf.eprintf "campaign: shard %d/%d %s (see %s)\n" i w
                    (match status with
                    | Unix.WEXITED c -> Printf.sprintf "exited %d" c
                    | Unix.WSIGNALED s -> Printf.sprintf "killed by signal %d" s
                    | Unix.WSTOPPED s -> Printf.sprintf "stopped by signal %d" s)
                    (Filename.concat dir
                       (Printf.sprintf "shards/shard-%d.err" i));
                  true)
            pids
        in
        if failed <> [] then exit 1;
        (* Every trial is now in the store: the in-process replay below is
           all warm hits and prints the canonical merged report. *)
        run_campaign ()
    | None ->
        Memo.set_shard shard;
        Fun.protect ~finally:(fun () -> Memo.set_shard None) run_campaign);
    if report then
      let dir = Option.get resolved in
      let s = Store.open_ dir in
      Fun.protect
        ~finally:(fun () -> Store.close s)
        (fun () ->
          match Telemetry.collect s with
          | Ok r -> Telemetry.print_table fmt r
          | Error e ->
              Printf.eprintf "campaign: report: %s\n" e;
              exit 2)
  in
  Cmd.v (Cmd.info "campaign" ~doc)
    Term.(
      const run $ experiments_arg $ seeds_arg $ quick_arg $ jobs_arg
      $ trace_arg $ metrics_arg $ check_arg $ full_rehash_arg $ store_arg
      $ no_store_arg $ progress_arg $ shard_arg $ workers_arg $ lease_ttl_arg
      $ report_arg)

(* ---- telemetry: aggregate capsules, export, gate ---- *)

let read_json_file path =
  let contents =
    try
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    with Sys_error e ->
      Printf.eprintf "telemetry: %s\n" e;
      exit 2
  in
  match Json.parse contents with
  | Ok j -> j
  | Error e ->
      Printf.eprintf "telemetry: %s: %s\n" path e;
      exit 2

let write_string path contents =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc contents)

let telemetry_store_dir store =
  match resolve_store store false with
  | Some dir -> dir
  | None ->
      prerr_endline
        "telemetry: no store to aggregate; pass --store DIR or set \
         $SATIN_STORE";
      exit 2

let telemetry_collect store fingerprint =
  let dir = telemetry_store_dir store in
  match Telemetry.collect ?fingerprint (Store.open_ dir) with
  | Ok r -> r
  | Error e ->
      Printf.eprintf "telemetry: %s\n" e;
      exit 2

let fingerprint_arg =
  let doc =
    "Aggregate only capsules produced by the build with this fingerprint \
     (see the fingerprint subcommand). Required when the store mixes \
     capsules from several builds."
  in
  Arg.(value & opt (some string) None & info [ "fingerprint" ] ~docv:"HEX" ~doc)

let telemetry_report_cmd =
  let doc =
    "Aggregate the store's metric capsules into per-experiment percentile \
     tables (exact merges — identical at any --jobs width, warm or cold), \
     optionally exporting JSON and OpenMetrics text."
  in
  let json_arg =
    let doc = "Write the report as JSON (satin-telemetry/v1) to $(docv)." in
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)
  in
  let om_arg =
    let doc = "Write the report as OpenMetrics text to $(docv)." in
    Arg.(
      value & opt (some string) None & info [ "openmetrics" ] ~docv:"FILE" ~doc)
  in
  let run store fingerprint json_out om_out =
    let r = telemetry_collect store fingerprint in
    Telemetry.print_table fmt r;
    Option.iter
      (fun p -> write_string p (Json.to_string (Telemetry.to_json r) ^ "\n"))
      json_out;
    Option.iter (fun p -> write_string p (Telemetry.to_openmetrics r)) om_out
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(const run $ store_arg $ fingerprint_arg $ json_arg $ om_arg)

let telemetry_gate_cmd =
  let doc =
    "Compare a current telemetry (or bench) JSON document against a \
     committed baseline and exit nonzero when any tracked series regresses \
     beyond the threshold. Documents describing different campaign \
     compositions (identity.config_hash mismatch) are refused."
  in
  let baseline_arg =
    let doc = "Baseline JSON document (e.g. BASELINE_telemetry.json)." in
    Arg.(
      required
      & opt (some string) None
      & info [ "baseline" ] ~docv:"FILE" ~doc)
  in
  let current_arg =
    let doc =
      "Current JSON document to check. Defaults to aggregating the store \
       (--store/\\$SATIN_STORE) into a fresh telemetry report."
    in
    Arg.(value & opt (some string) None & info [ "current" ] ~docv:"FILE" ~doc)
  in
  let threshold_arg =
    let doc = "Relative regression threshold (0.10 = 10%)." in
    Arg.(
      value
      & opt float Telemetry.gate_threshold_default
      & info [ "threshold" ] ~docv:"FRACTION" ~doc)
  in
  let run baseline current store fingerprint threshold =
    let baseline = read_json_file baseline in
    let current =
      match current with
      | Some path -> read_json_file path
      | None -> Telemetry.to_json (telemetry_collect store fingerprint)
    in
    match Telemetry.gate ~threshold ~baseline ~current () with
    | Error e ->
        Printf.eprintf "telemetry gate: %s\n" e;
        exit 2
    | Ok g ->
        List.iter
          (Printf.eprintf "telemetry gate: note: baseline path %s missing from current\n")
          g.Telemetry.missing;
        if g.Telemetry.regressions <> [] then begin
          Printf.eprintf
            "telemetry gate: FAIL — %d regression(s) beyond %.0f%% across %d \
             tracked series\n"
            (List.length g.Telemetry.regressions)
            (threshold *. 100.0) g.Telemetry.compared;
          List.iter
            (fun (path, b, c) ->
              Printf.eprintf "  %s: baseline %.6g -> current %.6g\n" path b c)
            g.Telemetry.regressions;
          exit 1
        end
        else
          Printf.eprintf
            "telemetry gate: PASS — %d tracked series within %.0f%% of \
             baseline\n"
            g.Telemetry.compared (threshold *. 100.0)
  in
  Cmd.v (Cmd.info "gate" ~doc)
    Term.(
      const run $ baseline_arg $ current_arg $ store_arg $ fingerprint_arg
      $ threshold_arg)

let telemetry_cmd =
  let doc =
    "Aggregate persisted per-trial metric capsules into campaign telemetry: \
     percentile tables, JSON/OpenMetrics exports, and regression gating."
  in
  Cmd.group (Cmd.info "telemetry" ~doc)
    [ telemetry_report_cmd; telemetry_gate_cmd ]

let main =
  let doc = "SATIN (DSN 2019) reproduction: experiments on the simulated Juno r1" in
  Cmd.group (Cmd.info "satin_cli" ~version:"1.1.0" ~doc)
    [
      e1; table1; e3; uprober; table2; fig4; e6; race; timeline; evasion;
      areas; satin_detect; fig7; ablation; dkom; cache_channel; cache_fidelity;
      sweep; inject; degrade; fleet; all; fingerprint; campaign_cmd;
      telemetry_cmd;
    ]

let () = exit (Cmd.eval main)
