(* Command-line driver for the SATIN reproduction experiments. *)

open Cmdliner
module E = Satin.Experiment

let fmt = Format.std_formatter

let seed_arg =
  let doc = "PRNG seed; every experiment is deterministic in the seed." in
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc)

let quick_arg =
  let doc = "Shrink campaign lengths for a fast run." in
  Arg.(value & flag & info [ "quick" ] ~doc)

let simple name doc f =
  let term = Term.(const f $ seed_arg) in
  Cmd.v (Cmd.info name ~doc) term

let e1 = simple "e1" "World-switch latency (Sec IV-B1)"
    (fun seed -> E.print_e1 fmt (E.run_e1 ~seed ()))

let table1 = simple "table1" "Table I: per-byte introspection cost"
    (fun seed -> E.print_table1 fmt (E.run_table1 ~seed ()))

let e3 = simple "e3" "Attacker recovery time (Sec IV-B2)"
    (fun seed -> E.print_e3 fmt (E.run_e3 ~seed ()))

let uprober = simple "uprober" "User-level prober responsiveness (Sec III-B1)"
    (fun seed -> E.print_uprober fmt (E.run_uprober ~seed ()))

let table2 =
  let run seed quick =
    let rounds = if quick then 15 else 50 in
    let r = E.run_table2 ~seed ~rounds () in
    E.print_table2 fmt r
  in
  Cmd.v (Cmd.info "table2" ~doc:"Table II: probing threshold vs period")
    Term.(const run $ seed_arg $ quick_arg)

let fig4 =
  let run seed quick =
    let rounds = if quick then 15 else 50 in
    let r = E.run_table2 ~seed ~rounds () in
    E.print_fig4 fmt r
  in
  Cmd.v (Cmd.info "fig4" ~doc:"Figure 4: probing threshold stability")
    Term.(const run $ seed_arg $ quick_arg)

let e6 = simple "e6" "Single-core vs all-core probing"
    (fun seed -> E.print_e6 fmt (E.run_e6 ~seed ()))

let race =
  Cmd.v (Cmd.info "race" ~doc:"Sec IV-C race-condition analysis")
    Term.(const (fun () -> E.print_e7 fmt (E.run_e7 ())) $ const ())

let timeline =
  Cmd.v (Cmd.info "timeline" ~doc:"Figure 3: two-world race timeline")
    Term.(const (fun () -> E.print_timeline fmt Satin.Race.paper_worst_case) $ const ())

let evasion =
  let run seed quick =
    E.print_e8 fmt (E.run_e8 ~seed ~duration_s:(if quick then 120 else 400) ())
  in
  Cmd.v (Cmd.info "evasion" ~doc:"E8: TZ-Evader vs PKM-style introspection")
    Term.(const run $ seed_arg $ quick_arg)

let areas =
  Cmd.v (Cmd.info "areas" ~doc:"E9: kernel area partition")
    Term.(const (fun () -> E.print_e9 fmt (E.run_e9 ())) $ const ())

let satin_detect =
  let run seed quick =
    E.print_e10 fmt (E.run_e10 ~seed ~target_rounds:(if quick then 57 else 190) ())
  in
  Cmd.v (Cmd.info "satin-detect" ~doc:"E10: SATIN detecting TZ-Evader (Sec VI-B1)")
    Term.(const run $ seed_arg $ quick_arg)

let fig7 =
  let run seed quick =
    E.print_fig7 fmt (E.run_fig7 ~seed ~window_s:(if quick then 8 else 30) ())
  in
  Cmd.v (Cmd.info "fig7" ~doc:"Figure 7: SATIN overhead on UnixBench")
    Term.(const run $ seed_arg $ quick_arg)

let dkom =
  let run seed quick =
    E.print_e13 fmt (E.run_e13 ~seed ~checks:(if quick then 10 else 30) ())
  in
  Cmd.v (Cmd.info "dkom" ~doc:"E13: cross-view detection of DKOM process hiding")
    Term.(const run $ seed_arg $ quick_arg)

let cache_channel =
  let run seed quick =
    E.print_e14 fmt (E.run_e14 ~seed ~passes:(if quick then 1 else 3) ())
  in
  Cmd.v (Cmd.info "cache-channel" ~doc:"E14: SATIN vs the cache-occupancy side channel")
    Term.(const run $ seed_arg $ quick_arg)

let sweep =
  let run seed quick =
    E.print_tgoal_sweep fmt
      (E.run_tgoal_sweep ~seed ~trials:(if quick then 2 else 4) ())
  in
  Cmd.v (Cmd.info "sweep" ~doc:"Tgoal coverage/overhead sweep")
    Term.(const run $ seed_arg $ quick_arg)

let ablation =
  let run seed quick =
    E.print_ablation fmt (E.run_ablation ~seed ~passes:(if quick then 1 else 3) ())
  in
  Cmd.v (Cmd.info "ablation" ~doc:"SATIN randomization ablation")
    Term.(const run $ seed_arg $ quick_arg)

let all =
  let run seed quick = E.run_all ~seed ~quick fmt in
  Cmd.v (Cmd.info "all" ~doc:"Run the whole evaluation in paper order")
    Term.(const run $ seed_arg $ quick_arg)

let main =
  let doc = "SATIN (DSN 2019) reproduction: experiments on the simulated Juno r1" in
  Cmd.group (Cmd.info "satin_cli" ~version:"1.0.0" ~doc)
    [
      e1; table1; e3; uprober; table2; fig4; e6; race; timeline; evasion;
      areas; satin_detect; fig7; ablation; dkom; cache_channel; sweep; all;
    ]

let () = exit (Cmd.eval main)
