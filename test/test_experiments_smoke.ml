(* Smoke + invariant tests for the remaining experiment runners, and a
   multi-seed robustness check on the headline result. *)

module E = Satin.Experiment
open Satin_engine

let test_run_e8_quick () =
  let r = E.run_e8 ~seed:11 ~duration_s:60 () in
  (* Deep placement evades... *)
  Alcotest.(check bool) "scans ran" true (r.E.e8_deep.E.e8_rounds >= 4);
  Alcotest.(check int) "deep placement: zero detections" 0
    (r.E.e8_deep.E.e8_detections);
  Alcotest.(check bool) "uptime high" true (r.E.e8_deep.E.e8_uptime_fraction > 0.9);
  (* ...shallow placement is caught every round. *)
  Alcotest.(check int) "shallow placement: every scan detects"
    r.E.e8_shallow.E.e8_rounds r.E.e8_shallow.E.e8_detections;
  (* Realized hide time near the paper's 8.13 ms race budget. *)
  if not (Stats.is_empty r.E.e8_deep.E.e8_reaction) then begin
    let m = Stats.mean r.E.e8_deep.E.e8_reaction in
    if m < 6.5e-3 || m > 10.0e-3 then Alcotest.failf "reaction %g" m
  end

let test_run_fig7_tiny () =
  let r = E.run_fig7 ~seed:11 ~window_s:6 () in
  Alcotest.(check int) "12 programs" 12 (List.length r.E.f7_rows);
  let find name = List.find (fun row -> row.E.f7_program = name) r.E.f7_rows in
  let fc = find "file_copy_256" and dh = find "dhrystone2" in
  Alcotest.(check bool) "memory-bound worst" true
    (fc.E.f7_deg_1task > 3.0 *. dh.E.f7_deg_1task);
  List.iter
    (fun row ->
      if row.E.f7_deg_1task < -0.5 || row.E.f7_deg_1task > 10.0 then
        Alcotest.failf "%s degradation out of range: %g" row.E.f7_program
          row.E.f7_deg_1task)
    r.E.f7_rows

let test_run_uprober_quick () =
  let r = E.run_uprober ~seed:11 ~trials:6 () in
  Alcotest.(check int) "all checks seen" 6 r.E.up_detected;
  Alcotest.(check bool) "delay below the paper bound" true
    (Stats.max r.E.up_delays < 5.97e-3 +. 2.0e-3)

let test_run_e1_e6_seed_independence () =
  (* Different seeds draw different samples but stay inside calibration. *)
  let a = E.run_e1 ~seed:1 () and b = E.run_e1 ~seed:2 () in
  Alcotest.(check bool) "different draws" false
    (Stats.mean a.E.e1_a53 = Stats.mean b.E.e1_a53);
  let e6 = E.run_e6 ~seed:3 ~rounds:20 () in
  Alcotest.(check bool) "single-core cheaper to probe" true (e6.E.e6_ratio < 0.6)

let test_run_ablation_quick () =
  let r = E.run_ablation ~seed:11 ~passes:1 () in
  (match r.E.ab_rows with
  | [ full_reactive; full_predictive; fixed_predictive; derand_aware ] ->
      Alcotest.(check bool) "full satin detects reactive" true
        (full_reactive.E.ab_area14_detections = full_reactive.E.ab_area14_checks);
      Alcotest.(check bool) "full satin detects predictive" true
        (full_predictive.E.ab_area14_detections >= 1);
      Alcotest.(check int) "fixed period evaded" 0
        fixed_predictive.E.ab_area14_detections;
      Alcotest.(check int) "derandomized evaded" 0 derand_aware.E.ab_area14_detections;
      Alcotest.(check bool) "area-aware attacker keeps more uptime" true
        (derand_aware.E.ab_attack_uptime > fixed_predictive.E.ab_attack_uptime)
  | _ -> Alcotest.fail "four ablation rows expected")

let test_run_sweep_tiny () =
  let r = E.run_tgoal_sweep ~seed:11 ~trials:2 ~tps_s:[ 1.0; 4.0 ] () in
  match r.E.sw_rows with
  | [ fast; slow ] ->
      Alcotest.(check bool) "faster cadence detects sooner" true
        (Stats.mean fast.E.sw_detect_latency < Stats.mean slow.E.sw_detect_latency);
      Alcotest.(check bool) "faster cadence costs more" true
        (fast.E.sw_overhead_pct > slow.E.sw_overhead_pct)
  | _ -> Alcotest.fail "two sweep rows expected"

(* The headline §VI-B1 outcome must not depend on the seed. *)
let test_e10_multi_seed () =
  List.iter
    (fun seed ->
      let r = E.run_e10 ~seed ~target_rounds:38 () in
      Alcotest.(check int)
        (Printf.sprintf "seed %d: every area-14 check detects" seed)
        r.E.e10_area14_checks r.E.e10_area14_detections;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: no successful evasions" seed)
        0 r.E.e10_evasions_succeeded;
      Alcotest.(check int)
        (Printf.sprintf "seed %d: no probe false negatives" seed)
        0 r.E.e10_false_negatives)
    [ 1; 7; 123 ]

let test_run_fleet_tiny () =
  let r = E.run_fleet ~seed:11 ~devices:4 ~window_s:6 () in
  Alcotest.(check int) "fleet size recorded" 4 r.E.fl_devices;
  (* 4 devices over 8 classes: only the first 4 classes have members. *)
  Alcotest.(check int) "one row per populated class" 4
    (List.length r.E.fl_rows);
  List.iter
    (fun row ->
      Alcotest.(check int) "one device per class" 1 row.E.fr_devices;
      Alcotest.(check bool) "rounds ran" true (row.E.fr_rounds > 0.0))
    r.E.fl_rows;
  Alcotest.(check bool) "baseline measured" true (r.E.fl_baseline > 0.0);
  (* Faster cadence costs more of the workload than slower — compared
     within the non-randomized classes, since randomization itself moves
     overhead and would confound a cross-class comparison. *)
  match List.filter (fun row -> not row.E.fr_randomized) r.E.fl_rows with
  | fastest :: rest when rest <> [] ->
      let slowest = List.nth rest (List.length rest - 1) in
      Alcotest.(check bool) "faster cadence completes more rounds" true
        (fastest.E.fr_rounds >= slowest.E.fr_rounds);
      Alcotest.(check bool) "cadence orders overhead" true
        (fastest.E.fr_overhead_pct >= slowest.E.fr_overhead_pct)
  | _ -> Alcotest.fail "need two non-randomized fleet rows"

let suite =
  [
    Alcotest.test_case "run_e8 quick" `Slow test_run_e8_quick;
    Alcotest.test_case "run_fleet tiny" `Slow test_run_fleet_tiny;
    Alcotest.test_case "run_fig7 tiny" `Slow test_run_fig7_tiny;
    Alcotest.test_case "run_uprober quick" `Slow test_run_uprober_quick;
    Alcotest.test_case "e1/e6 seed independence" `Quick test_run_e1_e6_seed_independence;
    Alcotest.test_case "run_ablation quick" `Slow test_run_ablation_quick;
    Alcotest.test_case "run_sweep tiny" `Slow test_run_sweep_tiny;
    Alcotest.test_case "e10 multi-seed robustness" `Slow test_e10_multi_seed;
  ]
