module Race = Satin.Race
module Report = Satin.Report
module Stats = Satin_engine.Stats

let p = Race.paper_worst_case

let test_paper_s_bound () =
  Alcotest.(check int) "S bound" 1_218_351 (Race.s_bound p)

let test_tns_delay () =
  Alcotest.(check (float 1e-12)) "Tns_delay" 2.0e-3 (Race.tns_delay p)

let test_unprotected_fraction () =
  let f = Race.unprotected_fraction p ~kernel_size:11_916_240 in
  if Float.abs (f -. 0.898) > 0.002 then Alcotest.failf "fraction %g" f

let test_evasion_threshold () =
  let s = Race.s_bound p in
  Alcotest.(check bool) "at the bound, evasion loses" false
    (Race.evasion_succeeds p ~s:(s - 1));
  Alcotest.(check bool) "beyond the bound, evasion wins" true
    (Race.evasion_succeeds p ~s:(s + 1000))

let test_scan_vs_hide_time () =
  Alcotest.(check (float 1e-12)) "hide time" 8.13e-3 (Race.hide_time p);
  let t0 = Race.scan_time p ~bytes:0 in
  Alcotest.(check (float 1e-15)) "scan time at 0 bytes is the switch" 3.60e-6 t0

let test_of_cycle_close_to_paper () =
  let q =
    Race.of_cycle Satin_hw.Cycle_model.default ~checker_core:Satin_hw.Cycle_model.A57
      ~evader_core:Satin_hw.Cycle_model.A53
  in
  Alcotest.(check bool) "bound within 1 byte" true
    (abs (Race.s_bound q - 1_218_351) <= 1)

let test_max_area_size_below_smallest_violating () =
  (* Every canonical area respects the SATIN bound. *)
  let bound = Race.max_area_size p in
  let areas = Satin_introspect.Area.of_layout (Satin_kernel.Layout.paper_layout ()) in
  List.iter
    (fun a ->
      if a.Satin_introspect.Area.size >= bound then Alcotest.fail "area too big")
    areas

let test_monotonicity_properties () =
  (* Faster recovery helps the attacker: bound shrinks. *)
  let faster = { p with Race.tns_recover = p.Race.tns_recover /. 2.0 } in
  Alcotest.(check bool) "faster hide -> smaller S" true
    (Race.s_bound faster < Race.s_bound p);
  (* Slower checker byte rate shrinks the byte bound too. *)
  let slow_checker = { p with Race.ts_1byte = p.Race.ts_1byte *. 2.0 } in
  Alcotest.(check bool) "slower checker -> smaller byte horizon" true
    (Race.s_bound slow_checker < Race.s_bound p);
  (* A larger probing threshold (worse prober) helps the defender... wait:
     threshold enters the attacker's delay, so a LARGER threshold means the
     attacker reacts later -> larger S horizon for the defender. *)
  let sluggish_prober = { p with Race.tns_threshold = 3.6e-3 } in
  Alcotest.(check bool) "sluggish prober -> larger horizon" true
    (Race.s_bound sluggish_prober > Race.s_bound p)

let test_empty_kernel_rejected () =
  try
    ignore (Race.unprotected_fraction p ~kernel_size:0);
    Alcotest.fail "empty kernel accepted"
  with Invalid_argument _ -> ()


let test_preemptive_scan_time () =
  (* No storm: identical to the plain scan. *)
  Alcotest.(check (float 1e-15)) "no storm"
    (Race.scan_time p ~bytes:100_000)
    (Race.preemptive_scan_time p ~bytes:100_000 ~storm_hz:0.0 ~handler_s:2e-5);
  (* A 20% interrupt load dilates the front by 1.25x. *)
  let plain = Race.scan_time p ~bytes:500_000 in
  let stormed =
    Race.preemptive_scan_time p ~bytes:500_000 ~storm_hz:10_000.0 ~handler_s:2e-5
  in
  Alcotest.(check (float 1e-12)) "20%% load = 1.25x" (plain /. 0.8) stormed;
  try
    ignore (Race.preemptive_scan_time p ~bytes:1 ~storm_hz:100_000.0 ~handler_s:2e-5);
    Alcotest.fail "saturating storm accepted"
  with Invalid_argument _ -> ()

let test_storm_reopens_the_race () =
  (* SATIN's largest area is safe without a storm... *)
  let bytes = 876_616 in
  Alcotest.(check bool) "safe when non-preemptive" true
    (Race.scan_time p ~bytes < Race.hide_time p);
  (* ...but a feasible interrupt storm would reopen the race if the secure
     world were preemptive — the Sec V-B rationale for SCR_EL3.IRQ = 0. *)
  let hz = Race.storm_to_evade p ~bytes ~handler_s:2e-5 in
  Alcotest.(check bool) "finite storm suffices" true
    (hz > 0.0 && hz < 100_000.0);
  let stretched = Race.preemptive_scan_time p ~bytes ~storm_hz:(hz *. 1.1) ~handler_s:2e-5 in
  Alcotest.(check bool) "10%% above the critical rate -> evadable" true
    (stretched > Race.hide_time p);
  (* A deep placement is already evadable: required storm is zero. *)
  Alcotest.(check (float 0.0)) "already lost" 0.0
    (Race.storm_to_evade p ~bytes:5_000_000 ~handler_s:2e-5)

(* ---- report rendering ---- *)

let test_table_rendering () =
  let s = Report.table ~header:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] in
  Alcotest.(check bool) "has rule" true (String.length s > 0);
  let lines = String.split_on_char '\n' (String.trim s) in
  Alcotest.(check int) "header+rule+2 rows" 4 (List.length lines);
  (try
     ignore (Report.table ~header:[ "a" ] [ [ "1"; "2" ] ]);
     Alcotest.fail "arity mismatch accepted"
   with Invalid_argument _ -> ())

let test_sci_format () =
  Alcotest.(check string) "sci" "2.61e-04" (Report.sci 2.61e-4);
  Alcotest.(check string) "pct" "0.711%" (Report.pct 0.711)

let test_boxplot_row () =
  let st = Stats.create () in
  List.iter (Stats.add st) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
  let row =
    Report.boxplot_row ~label:"x" (Stats.boxplot st) ~width:21 ~lo:0.0 ~hi:6.0
  in
  Alcotest.(check bool) "median marker present" true (String.contains row '#');
  Alcotest.(check bool) "quartile brackets" true
    (String.contains row '[' && String.contains row ']')

let test_csv () =
  let out = Report.csv ~header:[ "a"; "b" ] [ [ "1"; "x,y" ]; [ "q\"q"; "2" ] ] in
  Alcotest.(check string) "escaped"
    "a,b\n1,\"x,y\"\n\"q\"\"q\",2\n" out;
  (try
     ignore (Report.csv ~header:[ "a" ] [ [ "1"; "2" ] ]);
     Alcotest.fail "arity mismatch accepted"
   with Invalid_argument _ -> ())

let test_bar () =
  let b = Report.bar ~label:"x" ~value:50.0 ~max_value:100.0 ~width:10 in
  Alcotest.(check bool) "half bar" true
    (String.length (String.concat "" (String.split_on_char ' ' b)) > 5);
  let zero = Report.bar ~label:"x" ~value:0.0 ~max_value:0.0 ~width:10 in
  Alcotest.(check bool) "zero-max safe" true (String.length zero > 0)

let suite =
  [
    Alcotest.test_case "paper S bound" `Quick test_paper_s_bound;
    Alcotest.test_case "Tns_delay" `Quick test_tns_delay;
    Alcotest.test_case "unprotected fraction ~90%" `Quick test_unprotected_fraction;
    Alcotest.test_case "evasion threshold (Eq. 1)" `Quick test_evasion_threshold;
    Alcotest.test_case "scan vs hide time" `Quick test_scan_vs_hide_time;
    Alcotest.test_case "of_cycle consistent" `Quick test_of_cycle_close_to_paper;
    Alcotest.test_case "areas below bound" `Quick test_max_area_size_below_smallest_violating;
    Alcotest.test_case "monotonicity" `Quick test_monotonicity_properties;
    Alcotest.test_case "empty kernel rejected" `Quick test_empty_kernel_rejected;
    Alcotest.test_case "preemptive scan time" `Quick test_preemptive_scan_time;
    Alcotest.test_case "storm reopens the race" `Quick test_storm_reopens_the_race;
    Alcotest.test_case "table rendering" `Quick test_table_rendering;
    Alcotest.test_case "sci/pct formats" `Quick test_sci_format;
    Alcotest.test_case "csv" `Quick test_csv;
    Alcotest.test_case "boxplot row" `Quick test_boxplot_row;
    Alcotest.test_case "bar" `Quick test_bar;
  ]
