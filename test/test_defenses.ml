(* Baseline (PKM-style) and SATIN defense drivers. *)

module Scenario = Satin.Scenario
open Satin_introspect
open Satin_engine
module Platform = Satin_hw.Platform
module Cpu = Satin_hw.Cpu

let run s d = Scenario.run_for s d

let test_baseline_fixed_period_rounds () =
  let s = Scenario.create ~seed:21 () in
  let b =
    Scenario.install_baseline s
      { Baseline.timing = Baseline.Fixed_period (Sim_time.s 8);
        core_choice = Baseline.Fixed_core 0 }
  in
  run s (Sim_time.s 41);
  Baseline.stop b;
  Alcotest.(check int) "five rounds in 41s at 8s" 5 (Baseline.rounds_count b);
  List.iter
    (fun r ->
      Alcotest.(check int) "fixed core" 0 r.Round.core;
      Alcotest.(check bool) "clean kernel" false (Round.detected r);
      Alcotest.(check int) "full image" 11_916_240 r.Round.len)
    (Baseline.rounds b)

let test_baseline_full_scan_duration () =
  let s = Scenario.create ~seed:22 () in
  let b =
    Scenario.install_baseline s
      { Baseline.timing = Baseline.Fixed_period (Sim_time.s 8);
        core_choice = Baseline.Fixed_core 0 }
  in
  run s (Sim_time.s 9);
  Baseline.stop b;
  match Baseline.rounds b with
  | [ r ] ->
      (* ~11.9 MB at ~1.07e-8 s/B on the A53: ≈ 0.128 s, the paper's
         8.04e-2-style full-kernel check magnitude. *)
      let d = Sim_time.to_sec_f r.Round.duration in
      if d < 0.10 || d > 0.15 then Alcotest.failf "full scan duration: %g" d
  | l -> Alcotest.failf "expected 1 round, got %d" (List.length l)

let test_baseline_random_core_spreads () =
  let s = Scenario.create ~seed:23 () in
  let b =
    Scenario.install_baseline s
      { Baseline.timing = Baseline.Random_period (Sim_time.s 4);
        core_choice = Baseline.Random_core }
  in
  run s (Sim_time.s 120);
  Baseline.stop b;
  let cores = List.sort_uniq compare (List.map (fun r -> r.Round.core) (Baseline.rounds b)) in
  Alcotest.(check bool) "several cores used" true (List.length cores >= 3)

let test_baseline_detects_static_tamper () =
  let s = Scenario.create ~seed:24 () in
  let b =
    Scenario.install_baseline s
      { Baseline.timing = Baseline.Fixed_period (Sim_time.s 2);
        core_choice = Baseline.Fixed_core 4 }
  in
  (* A rootkit with no evasion logic: persistent modification. *)
  let rk = Satin_attack.Rootkit.create s.Scenario.kernel ~cleanup_core:0 () in
  Satin_attack.Rootkit.arm rk;
  run s (Sim_time.s 7);
  Baseline.stop b;
  Alcotest.(check int) "every round detects" (Baseline.rounds_count b)
    (Baseline.detections b);
  Alcotest.(check bool) "some rounds happened" true (Baseline.rounds_count b >= 2)

let satin_config ?(t_goal = Sim_time.s 19) () =
  { Satin.default_config with t_goal }

(* A SATIN campaign long enough for two full passes with tp = 1 s. *)
let test_satin_covers_all_areas () =
  let s = Scenario.create ~seed:25 () in
  let satin = Scenario.install_satin s ~config:(satin_config ()) () in
  Alcotest.(check int) "tp = t_goal/m" (Sim_time.s 19 / 19) (Satin.tp satin);
  run s (Sim_time.s 45);
  Satin.stop satin;
  let rounds = Satin.rounds satin in
  Alcotest.(check bool) "at least two passes" true (Satin.full_passes satin >= 2);
  (* Within each pass of 19 rounds, every area appears exactly once. *)
  let rec passes l =
    if List.length l < 19 then ()
    else begin
      let pass = List.filteri (fun i _ -> i < 19) l in
      let areas = List.sort compare (List.map (fun r -> r.Round.area_index) pass) in
      Alcotest.(check (list int)) "pass covers all areas" (List.init 19 Fun.id) areas;
      passes (List.filteri (fun i _ -> i >= 19) l)
    end
  in
  passes rounds

let test_satin_round_cadence_randomized () =
  let s = Scenario.create ~seed:26 () in
  let satin = Scenario.install_satin s ~config:(satin_config ()) () in
  run s (Sim_time.s 40);
  Satin.stop satin;
  let starts = List.map (fun r -> Sim_time.to_sec_f r.Round.started) (Satin.rounds satin) in
  let gaps =
    let rec go = function
      | a :: (b :: _ as rest) -> (b -. a) :: go rest
      | _ -> []
    in
    go starts
  in
  Alcotest.(check bool) "enough rounds" true (List.length gaps > 20);
  let tp = 1.0 in
  List.iter
    (fun g ->
      if g < -0.01 || g > (2.0 *. tp) +. 0.6 then Alcotest.failf "gap out of [0,2tp]: %g" g)
    gaps;
  (* Randomization: gaps are not all equal. *)
  let distinct = List.sort_uniq (fun a b -> compare (Float.round (a *. 100.)) (Float.round (b *. 100.))) gaps in
  Alcotest.(check bool) "gaps vary" true (List.length distinct > 5)

let test_satin_uses_all_cores_randomly () =
  let s = Scenario.create ~seed:27 () in
  let satin = Scenario.install_satin s ~config:(satin_config ()) () in
  run s (Sim_time.s 40);
  Satin.stop satin;
  let cores = List.map (fun r -> r.Round.core) (Satin.rounds satin) in
  let distinct = List.sort_uniq compare cores in
  Alcotest.(check (list int)) "all six cores serve rounds" [ 0; 1; 2; 3; 4; 5 ] distinct

let test_satin_ablation_fixed_core () =
  let s = Scenario.create ~seed:28 () in
  let satin =
    Scenario.install_satin s
      ~config:{ (satin_config ()) with Satin.randomize_core = false } ()
  in
  run s (Sim_time.s 30);
  Satin.stop satin;
  let cores = List.sort_uniq compare (List.map (fun r -> r.Round.core) (Satin.rounds satin)) in
  Alcotest.(check (list int)) "only core 0" [ 0 ] cores

let test_satin_ablation_in_order_areas () =
  let s = Scenario.create ~seed:29 () in
  let satin =
    Scenario.install_satin s
      ~config:{ (satin_config ()) with Satin.randomize_area = false } ()
  in
  run s (Sim_time.s 25);
  Satin.stop satin;
  let areas = List.map (fun r -> r.Round.area_index) (Satin.rounds satin) in
  List.iteri
    (fun i a -> Alcotest.(check int) "address order" (i mod 19) a)
    areas

let test_satin_ablation_fixed_period () =
  let s = Scenario.create ~seed:30 () in
  let satin =
    Scenario.install_satin s
      ~config:{ (satin_config ()) with Satin.randomize_period = false } ()
  in
  run s (Sim_time.s 30);
  Satin.stop satin;
  let starts = List.map (fun r -> Sim_time.to_sec_f r.Round.started) (Satin.rounds satin) in
  let rec gaps = function
    | a :: (b :: _ as rest) -> (b -. a) :: gaps rest
    | _ -> []
  in
  List.iter
    (fun g -> if Float.abs (g -. 1.0) > 0.05 then Alcotest.failf "cadence not fixed: %g" g)
    (gaps starts)

let test_satin_detects_persistent_rootkit () =
  let s = Scenario.create ~seed:31 () in
  let satin = Scenario.install_satin s ~config:(satin_config ()) () in
  let rk = Satin_attack.Rootkit.create s.Scenario.kernel ~cleanup_core:0 () in
  Satin_attack.Rootkit.arm rk;
  run s (Sim_time.s 45);
  Satin.stop satin;
  let area14 =
    List.filter (fun r -> r.Round.area_index = 14) (Satin.rounds satin)
  in
  Alcotest.(check bool) "area 14 checked" true (List.length area14 >= 2);
  List.iter
    (fun r ->
      Alcotest.(check bool) "every area-14 check detects" true (Round.detected r))
    area14;
  Alcotest.(check int) "alarms recorded" (List.length area14)
    (List.length (Satin.alarms satin));
  (* No false alarms on clean areas. *)
  Alcotest.(check int) "only area 14 alarms" (Satin.detections satin)
    (List.length area14)

let test_satin_non_preemptible_round () =
  (* While a SATIN round runs, the serving core's tick pends: the integrity
     check cannot be interrupted by the normal world (SCR_EL3.IRQ = 0). *)
  let s = Scenario.create ~seed:32 () in
  ignore (Satin_kernel.Kernel.spawn_spinner s.Scenario.kernel ~core:0);
  let satin =
    Scenario.install_satin s
      ~config:{ (satin_config ()) with Satin.randomize_core = false } ()
  in
  let ticks_during_secure = ref 0 in
  ignore
    (Satin_kernel.Timer_irq.add_hook s.Scenario.kernel.Satin_kernel.Kernel.tick
       (fun ~core ->
         if core = 0 && Cpu.in_secure (Platform.core s.Scenario.platform 0) then
           incr ticks_during_secure));
  run s (Sim_time.s 10);
  Satin.stop satin;
  Alcotest.(check bool) "rounds ran" true (Satin.rounds_count satin > 5);
  Alcotest.(check int) "no tick delivered inside the secure window" 0
    !ticks_during_secure

let suite =
  [
    Alcotest.test_case "baseline fixed period" `Quick test_baseline_fixed_period_rounds;
    Alcotest.test_case "baseline scan duration" `Quick test_baseline_full_scan_duration;
    Alcotest.test_case "baseline random core" `Quick test_baseline_random_core_spreads;
    Alcotest.test_case "baseline detects static tamper" `Quick
      test_baseline_detects_static_tamper;
    Alcotest.test_case "satin covers all areas per pass" `Quick test_satin_covers_all_areas;
    Alcotest.test_case "satin cadence randomized in [0,2tp]" `Quick
      test_satin_round_cadence_randomized;
    Alcotest.test_case "satin uses all cores" `Quick test_satin_uses_all_cores_randomly;
    Alcotest.test_case "ablation: fixed core" `Quick test_satin_ablation_fixed_core;
    Alcotest.test_case "ablation: in-order areas" `Quick test_satin_ablation_in_order_areas;
    Alcotest.test_case "ablation: fixed period" `Quick test_satin_ablation_fixed_period;
    Alcotest.test_case "satin detects persistent rootkit" `Quick
      test_satin_detects_persistent_rootkit;
    Alcotest.test_case "satin round non-preemptible" `Quick test_satin_non_preemptible_round;
  ]
