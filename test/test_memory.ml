open Satin_hw

let make () =
  let m = Memory.create ~size:4096 in
  let _ =
    Memory.add_region m ~name:"ns" ~base:0 ~size:1024
      ~security:Memory.Non_secure_region
  in
  let _ =
    Memory.add_region m ~name:"sec" ~base:1024 ~size:1024
      ~security:Memory.Secure_region
  in
  m

let test_rw_roundtrip () =
  let m = make () in
  Memory.write_byte m ~world:World.Normal ~addr:10 0xAB;
  Alcotest.(check int) "read back" 0xAB (Memory.read_byte m ~world:World.Normal ~addr:10);
  Memory.write_byte m ~world:World.Secure ~addr:1030 0xCD;
  Alcotest.(check int) "secure read back" 0xCD
    (Memory.read_byte m ~world:World.Secure ~addr:1030)

let test_byte_masking () =
  let m = make () in
  Memory.write_byte m ~world:World.Normal ~addr:0 0x1FF;
  Alcotest.(check int) "masked to byte" 0xFF (Memory.read_byte m ~world:World.Normal ~addr:0)

let test_normal_cannot_touch_secure () =
  let m = make () in
  let expect_violation f =
    try
      f ();
      Alcotest.fail "expected Access_violation"
    with Memory.Access_violation { region; _ } ->
      Alcotest.(check string) "region named" "sec" region
  in
  expect_violation (fun () ->
      ignore (Memory.read_byte m ~world:World.Normal ~addr:1500));
  expect_violation (fun () -> Memory.write_byte m ~world:World.Normal ~addr:1500 1);
  expect_violation (fun () ->
      ignore (Memory.read_bytes m ~world:World.Normal ~addr:1000 ~len:100));
  expect_violation (fun () ->
      Memory.write_string m ~world:World.Normal ~addr:1020 "12345678")

let test_secure_can_touch_everything () =
  let m = make () in
  Memory.write_byte m ~world:World.Secure ~addr:10 1;
  Memory.write_byte m ~world:World.Secure ~addr:1500 2;
  Alcotest.(check int) "ns" 1 (Memory.read_byte m ~world:World.Secure ~addr:10);
  Alcotest.(check int) "sec" 2 (Memory.read_byte m ~world:World.Secure ~addr:1500)

let test_unmapped_is_non_secure () =
  let m = make () in
  Memory.write_byte m ~world:World.Normal ~addr:3000 7;
  Alcotest.(check int) "plain dram" 7 (Memory.read_byte m ~world:World.Normal ~addr:3000)

let test_bad_address () =
  let m = make () in
  Alcotest.check_raises "negative" (Memory.Bad_address (-1)) (fun () ->
      ignore (Memory.read_byte m ~world:World.Secure ~addr:(-1)));
  Alcotest.check_raises "beyond end" (Memory.Bad_address 4096) (fun () ->
      ignore (Memory.read_byte m ~world:World.Secure ~addr:4096))

let test_region_overlap_rejected () =
  let m = make () in
  (try
     ignore
       (Memory.add_region m ~name:"bad" ~base:512 ~size:1024
          ~security:Memory.Non_secure_region);
     Alcotest.fail "expected overlap rejection"
   with Invalid_argument _ -> ())

let test_region_of_addr () =
  let m = make () in
  (match Memory.region_of_addr m 1100 with
  | Some r -> Alcotest.(check string) "secure region" "sec" r.Memory.name
  | None -> Alcotest.fail "missing region");
  Alcotest.(check bool) "unmapped" true (Memory.region_of_addr m 3000 = None)

let test_regions_sorted () =
  let m = make () in
  Alcotest.(check (list string)) "sorted by base" [ "ns"; "sec" ]
    (List.map (fun r -> r.Memory.name) (Memory.regions m))

let test_write_string_and_read_bytes () =
  let m = make () in
  Memory.write_string m ~world:World.Normal ~addr:100 "hello";
  Alcotest.(check string) "snapshot" "hello"
    (Bytes.to_string (Memory.read_bytes m ~world:World.Normal ~addr:100 ~len:5))

let test_fold_range () =
  let m = make () in
  Memory.write_string m ~world:World.Normal ~addr:0 "\x01\x02\x03";
  let sum =
    Memory.fold_range m ~world:World.Normal ~addr:0 ~len:3 ~init:0 ~f:( + )
  in
  Alcotest.(check int) "fold sum" 6 sum

let test_range_straddling_secure_rejected () =
  let m = make () in
  (* Range starting in ns memory but crossing into the secure region. *)
  try
    ignore (Memory.read_bytes m ~world:World.Normal ~addr:1000 ~len:48);
    Alcotest.fail "expected violation"
  with Memory.Access_violation _ -> ()

let test_blit_within () =
  let m = make () in
  Memory.write_string m ~world:World.Normal ~addr:0 "abcd";
  Memory.blit_within m ~world:World.Normal ~src:0 ~dst:100 ~len:4;
  Alcotest.(check string) "copied" "abcd"
    (Bytes.to_string (Memory.read_bytes m ~world:World.Normal ~addr:100 ~len:4))

let test_write_watcher () =
  let m = make () in
  let hits = ref [] in
  let w = Memory.add_write_watcher m (fun ~addr ~len -> hits := (addr, len) :: !hits) in
  Memory.write_byte m ~world:World.Normal ~addr:5 1;
  Memory.write_string m ~world:World.Normal ~addr:10 "xy";
  Alcotest.(check (list (pair int int))) "watched" [ (5, 1); (10, 2) ] (List.rev !hits);
  Memory.remove_write_watcher m w;
  Memory.write_byte m ~world:World.Normal ~addr:5 2;
  Alcotest.(check int) "removed watcher silent" 2 (List.length !hits)

let test_watcher_not_fired_on_read () =
  let m = make () in
  let hits = ref 0 in
  ignore (Memory.add_write_watcher m (fun ~addr:_ ~len:_ -> incr hits));
  ignore (Memory.read_bytes m ~world:World.Normal ~addr:0 ~len:16);
  Alcotest.(check int) "reads silent" 0 !hits

let test_int64_roundtrip_and_watcher () =
  let m = make () in
  let hits = ref [] in
  ignore (Memory.add_write_watcher m (fun ~addr ~len -> hits := (addr, len) :: !hits));
  Memory.write_int64_le m ~world:World.Normal ~addr:16 0x1122334455667788L;
  Alcotest.(check int64) "read back" 0x1122334455667788L
    (Memory.read_int64_le m ~world:World.Normal ~addr:16);
  (* Little-endian: the low byte lands first. *)
  Alcotest.(check int) "low byte at addr" 0x88
    (Memory.read_byte m ~world:World.Normal ~addr:16);
  Alcotest.(check int) "high byte at addr+7" 0x11
    (Memory.read_byte m ~world:World.Normal ~addr:23);
  Alcotest.(check (list (pair int int))) "watcher saw one 8-byte write"
    [ (16, 8) ] !hits

let test_int64_access_checks () =
  let m = make () in
  (* The whole 8-byte range is validated, not just the first byte: a word
     starting in ns memory but ending in the secure region must trap. *)
  (try
     Memory.write_int64_le m ~world:World.Normal ~addr:1020 1L;
     Alcotest.fail "expected Access_violation"
   with Memory.Access_violation _ -> ());
  (try
     ignore (Memory.read_int64_le m ~world:World.Normal ~addr:1020);
     Alcotest.fail "expected Access_violation"
   with Memory.Access_violation _ -> ());
  Alcotest.check_raises "past the end" (Memory.Bad_address 4089) (fun () ->
      Memory.write_int64_le m ~world:World.Normal ~addr:4089 1L)

(* Regression for the direct (non-byte-loop) int64 write path: a write guard
   must still trap an 8-byte write that merely overlaps its range, and a
   denied write must leave no partial bytes behind. *)
let test_guard_traps_int64_write () =
  let m = make () in
  let g =
    Memory.add_write_guard m ~name:"hook" ~base:40 ~len:8
      ~decide:(fun ~addr:_ ~len:_ -> `Deny)
  in
  (try
     Memory.write_int64_le m ~world:World.Normal ~addr:36 0xFFFFFFFFFFFFFFFFL;
     Alcotest.fail "expected Write_trapped"
   with Memory.Write_trapped { guard_name; _ } ->
     Alcotest.(check string) "guard named" "hook" guard_name);
  for addr = 36 to 43 do
    Alcotest.(check int)
      (Printf.sprintf "no byte landed at %d" addr)
      0
      (Memory.read_byte m ~world:World.Secure ~addr)
  done;
  (* Secure-world writes bypass guards, as on real page tables. *)
  Memory.write_int64_le m ~world:World.Secure ~addr:40 7L;
  Alcotest.(check int64) "secure write landed" 7L
    (Memory.read_int64_le m ~world:World.Secure ~addr:40);
  Memory.remove_write_guard m g;
  Memory.write_int64_le m ~world:World.Normal ~addr:40 9L;
  Alcotest.(check int64) "unguarded write landed" 9L
    (Memory.read_int64_le m ~world:World.Normal ~addr:40)

let test_with_range_ro () =
  let m = make () in
  Memory.write_string m ~world:World.Normal ~addr:0 "\x01\x02\x03";
  let sum =
    Memory.with_range_ro m ~world:World.Normal ~addr:0 ~len:3
      ~f:(fun data off ->
        Char.code (Bytes.get data off)
        + Char.code (Bytes.get data (off + 1))
        + Char.code (Bytes.get data (off + 2)))
  in
  Alcotest.(check int) "direct sum" 6 sum;
  (* Same validation as a read: normal world cannot map a secure range. *)
  try
    Memory.with_range_ro m ~world:World.Normal ~addr:1000 ~len:48
      ~f:(fun _ _ -> ());
    Alcotest.fail "expected violation"
  with Memory.Access_violation _ -> ()

let test_generation_stamps () =
  let ps = Memory.gen_page_size in
  let m = Memory.create ~size:(4 * ps) in
  Alcotest.(check int) "fresh counter" 0 (Memory.write_generation m);
  Alcotest.(check int) "fresh page" 0 (Memory.generation m ~addr:0 ~len:ps);
  Memory.write_byte m ~world:World.Normal ~addr:5 1;
  let g1 = Memory.write_generation m in
  Alcotest.(check bool) "counter advanced" true (g1 > 0);
  Alcotest.(check int) "page 0 stamped" g1 (Memory.generation m ~addr:0 ~len:10);
  Alcotest.(check int) "page 1 untouched" 0
    (Memory.generation m ~addr:ps ~len:8);
  (* A write straddling a page boundary stamps both pages, one counter bump. *)
  Memory.write_string m ~world:World.Normal ~addr:(ps - 2) "abcd";
  let g2 = Memory.write_generation m in
  Alcotest.(check int) "one bump per write" (g1 + 1) g2;
  Alcotest.(check int) "page 0 restamped" g2 (Memory.generation m ~addr:0 ~len:1);
  Alcotest.(check int) "page 1 stamped" g2 (Memory.generation m ~addr:ps ~len:1);
  (* [generation] over a range is the max stamp of the covered pages. *)
  Memory.write_byte m ~world:World.Normal ~addr:(3 * ps) 9;
  let g3 = Memory.write_generation m in
  Alcotest.(check int) "range max" g3
    (Memory.generation m ~addr:0 ~len:(Memory.size m));
  Alcotest.(check int) "middle pages keep older stamps" g2
    (Memory.generation m ~addr:ps ~len:ps)

let test_bump_generation () =
  let ps = Memory.gen_page_size in
  let m = Memory.create ~size:(4 * ps) in
  let hits = ref 0 in
  ignore (Memory.add_write_watcher m (fun ~addr:_ ~len:_ -> incr hits));
  Memory.bump_generation m ~addr:100 ~len:(ps + 1);
  Alcotest.(check bool) "pages stamped" true
    (Memory.generation m ~addr:0 ~len:1 > 0
    && Memory.generation m ~addr:ps ~len:1 > 0);
  Alcotest.(check int) "beyond the range untouched" 0
    (Memory.generation m ~addr:(3 * ps) ~len:1);
  Alcotest.(check int) "no watcher fired, no byte written" 0 !hits;
  Alcotest.check_raises "empty range"
    (Invalid_argument "Memory.bump_generation: empty range") (fun () ->
      Memory.bump_generation m ~addr:0 ~len:0)

let test_generation_visible_in_watcher () =
  let m = make () in
  let seen = ref (-1) in
  ignore
    (Memory.add_write_watcher m (fun ~addr ~len ->
         seen := Memory.generation m ~addr ~len));
  Memory.write_byte m ~world:World.Normal ~addr:7 3;
  Alcotest.(check int) "stamp already visible to the watcher"
    (Memory.write_generation m) !seen

(* The hot write path — access check, guard screen, generation stamp,
   watcher fan-out — must allocate nothing: workloads issue millions of
   writes per campaign and the generation tracking rides along for free. *)
let test_write_path_zero_alloc () =
  let m = make () in
  let n = 10_000 in
  let v = 0x0123456789ABCDEFL in
  let byte_pass () =
    for i = 0 to n - 1 do
      Memory.write_byte m ~world:World.Normal ~addr:(i land 0x3ff) 0x5a
    done
  in
  let int64_pass () =
    for i = 0 to n - 1 do
      Memory.write_int64_le m ~world:World.Normal ~addr:(i land 0x7f * 8) v
    done
  in
  let words_per_op f =
    f ();
    let w0 = Gc.minor_words () in
    f ();
    (Gc.minor_words () -. w0) /. float_of_int n
  in
  let wb = words_per_op byte_pass in
  if wb > 0.01 then
    Alcotest.failf "write_byte allocates %.3f minor words/write (want 0)" wb;
  let wi = words_per_op int64_pass in
  if wi > 0.01 then
    Alcotest.failf "write_int64_le allocates %.3f minor words/write (want 0)"
      wi

let prop_rw_any_byte =
  QCheck.Test.make ~name:"write/read any ns byte"
    QCheck.(pair (int_bound 1023) (int_bound 255))
    (fun (addr, v) ->
      let m = make () in
      Memory.write_byte m ~world:World.Normal ~addr v;
      Memory.read_byte m ~world:World.Normal ~addr = v)

let suite =
  [
    Alcotest.test_case "rw roundtrip" `Quick test_rw_roundtrip;
    Alcotest.test_case "byte masking" `Quick test_byte_masking;
    Alcotest.test_case "normal blocked from secure" `Quick test_normal_cannot_touch_secure;
    Alcotest.test_case "secure sees all" `Quick test_secure_can_touch_everything;
    Alcotest.test_case "unmapped is non-secure" `Quick test_unmapped_is_non_secure;
    Alcotest.test_case "bad address" `Quick test_bad_address;
    Alcotest.test_case "overlap rejected" `Quick test_region_overlap_rejected;
    Alcotest.test_case "region_of_addr" `Quick test_region_of_addr;
    Alcotest.test_case "regions sorted" `Quick test_regions_sorted;
    Alcotest.test_case "write_string/read_bytes" `Quick test_write_string_and_read_bytes;
    Alcotest.test_case "fold_range" `Quick test_fold_range;
    Alcotest.test_case "straddling range rejected" `Quick test_range_straddling_secure_rejected;
    Alcotest.test_case "blit_within" `Quick test_blit_within;
    Alcotest.test_case "write watcher" `Quick test_write_watcher;
    Alcotest.test_case "watcher ignores reads" `Quick test_watcher_not_fired_on_read;
    Alcotest.test_case "int64 roundtrip + watcher" `Quick test_int64_roundtrip_and_watcher;
    Alcotest.test_case "int64 access checks" `Quick test_int64_access_checks;
    Alcotest.test_case "guard traps int64 write" `Quick test_guard_traps_int64_write;
    Alcotest.test_case "with_range_ro" `Quick test_with_range_ro;
    Alcotest.test_case "generation stamps" `Quick test_generation_stamps;
    Alcotest.test_case "bump_generation" `Quick test_bump_generation;
    Alcotest.test_case "generation visible in watcher" `Quick
      test_generation_visible_in_watcher;
    Alcotest.test_case "write path allocates nothing" `Quick
      test_write_path_zero_alloc;
    QCheck_alcotest.to_alcotest prop_rw_any_byte;
  ]
