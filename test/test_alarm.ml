module Scenario = Satin.Scenario
open Satin_introspect
open Satin_engine

let mk_round ?(area = 14) ?(core = 3) ?(offsets = [ 10; 11 ]) ~time () =
  let tampered = offsets <> [] in
  {
    Round.index = 0;
    core;
    area_index = area;
    base = 0x1000;
    len = 64;
    started = time;
    scan_started = time;
    duration = Sim_time.ms 5;
    verdict =
      {
        Checker.v_base = 0x1000;
        v_len = 64;
        v_tampered = tampered;
        v_offsets = offsets;
        v_hash_expected = 1L;
        v_hash_observed = (if tampered then 2L else 1L);
      };
  }

let test_alert_only_by_default () =
  let sink = Alarm.create () in
  Alarm.record_round sink (mk_round ~offsets:[] ~time:(Sim_time.s 1) ());
  Alarm.record_round sink (mk_round ~offsets:[ 5 ] ~time:(Sim_time.s 2) ());
  Alcotest.(check int) "clean rounds not logged" 1 (Alarm.count sink);
  Alcotest.(check int) "one alarm" 1 (List.length (Alarm.alarms sink))

let test_heartbeat_mode () =
  let sink = Alarm.create ~log_clean_rounds:true () in
  Alarm.record_round sink (mk_round ~offsets:[] ~time:(Sim_time.s 1) ());
  Alarm.record_round sink (mk_round ~offsets:[ 5 ] ~time:(Sim_time.s 2) ());
  Alcotest.(check int) "both logged" 2 (Alarm.count sink);
  Alcotest.(check int) "one alarm" 1 (List.length (Alarm.alarms sink));
  match Alarm.entries sink with
  | [ a; b ] ->
      Alcotest.(check bool) "info first" true (a.Alarm.severity = Alarm.Info);
      Alcotest.(check bool) "alert second" true (b.Alarm.severity = Alarm.Alert);
      Alcotest.(check int) "sequenced" 1 b.Alarm.seq
  | _ -> Alcotest.fail "two entries expected"

let test_chain_verifies () =
  let sink = Alarm.create ~log_clean_rounds:true () in
  for i = 1 to 20 do
    Alarm.record_round sink
      (mk_round ~offsets:(if i mod 3 = 0 then [ i ] else []) ~time:(Sim_time.s i) ())
  done;
  Alcotest.(check bool) "chain intact" true (Alarm.verify_chain sink);
  Alcotest.(check bool) "exported chain verifies" true
    (Alarm.verify_entries ~genesis:(Alarm.genesis sink) ~algo:Hash.Djb2
       (Alarm.entries sink))

let test_tampered_log_detected () =
  let sink = Alarm.create ~log_clean_rounds:true () in
  for i = 1 to 5 do
    Alarm.record_round sink (mk_round ~offsets:[ i ] ~time:(Sim_time.s i) ())
  done;
  let entries = Alarm.entries sink in
  (* An attacker rewriting history: drop an alarm from the middle. *)
  let doctored = List.filteri (fun i _ -> i <> 2) entries in
  Alcotest.(check bool) "dropped entry breaks the chain" false
    (Alarm.verify_entries ~genesis:(Alarm.genesis sink) ~algo:Hash.Djb2 doctored);
  (* ...or whitewash an alarm's offsets. *)
  let whitewashed =
    List.map
      (fun e -> if e.Alarm.seq = 1 then { e with Alarm.offsets = [] } else e)
      entries
  in
  Alcotest.(check bool) "altered entry breaks the chain" false
    (Alarm.verify_entries ~genesis:(Alarm.genesis sink) ~algo:Hash.Djb2 whitewashed)

let test_on_alarm_hook () =
  let sink = Alarm.create () in
  let seen = ref [] in
  Alarm.on_alarm sink (fun e -> seen := e.Alarm.area_index :: !seen);
  Alarm.record_round sink (mk_round ~area:7 ~offsets:[ 1 ] ~time:Sim_time.zero ());
  Alarm.record_round sink (mk_round ~area:9 ~offsets:[] ~time:Sim_time.zero ());
  Alcotest.(check (list int)) "only alerts fire the hook" [ 7 ] !seen

let test_attached_to_satin_end_to_end () =
  let s = Scenario.create ~seed:81 () in
  let satin =
    Scenario.install_satin s
      ~config:{ Satin.default_config with Satin.t_goal = Sim_time.s 19 }
      ()
  in
  let sink = Alarm.create ~log_clean_rounds:true () in
  Alarm.attach_satin sink satin;
  let rk = Satin_attack.Rootkit.create s.Scenario.kernel ~cleanup_core:0 () in
  Satin_attack.Rootkit.arm rk;
  Scenario.run_for s (Sim_time.s 25);
  Satin.stop satin;
  Alcotest.(check int) "every round chained" (Satin.rounds_count satin)
    (Alarm.count sink);
  Alcotest.(check bool) "alarms present" true (List.length (Alarm.alarms sink) >= 1);
  Alcotest.(check bool) "chain verifies" true (Alarm.verify_chain sink);
  List.iter
    (fun e -> Alcotest.(check int) "alarms are area 14" 14 e.Alarm.area_index)
    (Alarm.alarms sink)

let suite =
  [
    Alcotest.test_case "alert-only default" `Quick test_alert_only_by_default;
    Alcotest.test_case "heartbeat mode" `Quick test_heartbeat_mode;
    Alcotest.test_case "chain verifies" `Quick test_chain_verifies;
    Alcotest.test_case "tampered log detected" `Quick test_tampered_log_detected;
    Alcotest.test_case "on_alarm hook" `Quick test_on_alarm_hook;
    Alcotest.test_case "attached to SATIN" `Quick test_attached_to_satin_end_to_end;
  ]
