open Satin_introspect
open Satin_kernel

let layout = Layout.paper_layout ()

let test_canonical_matches_paper () =
  let areas = Area.of_layout layout in
  Alcotest.(check int) "19 areas" 19 (List.length areas);
  Alcotest.(check int) "total" 11_916_240 (Area.total_size areas);
  Alcotest.(check int) "max" 876_616 (Area.max_size areas);
  Alcotest.(check int) "min" 431_360 (Area.min_size areas);
  (* Contiguous, indexed in order. *)
  let _ =
    List.fold_left
      (fun (i, addr) a ->
        Alcotest.(check int) "index" i a.Area.index;
        Alcotest.(check int) "contiguous" addr a.Area.base;
        (i + 1, a.Area.base + a.Area.size))
      (0, Layout.base layout) areas
  in
  ()

let test_areas_respect_symbol_boundaries () =
  let areas = Area.of_layout layout in
  let boundaries =
    List.map (fun s -> s.Layout.sym_addr) (Layout.symbols layout)
  in
  List.iter
    (fun a ->
      if not (List.mem a.Area.base boundaries) then
        Alcotest.failf "area %d does not start on a symbol" a.Area.index)
    areas

let test_size_bound_matches_paper () =
  let bound =
    Area.size_bound ~cycle:Satin_hw.Cycle_model.default
      ~checker_core:Satin_hw.Cycle_model.A57 ~ts_1byte:`Fastest
      ~tns_threshold:1.8e-3
  in
  (* (2e-4 + 1.8e-3 + 6.13e-3 - 3.6e-6) / 6.67e-9 = 1,218,350.8 *)
  Alcotest.(check bool) "within a byte of the paper's bound" true
    (abs (bound - 1_218_351) <= 1);
  let areas = Area.of_layout layout in
  List.iter
    (fun a ->
      if a.Area.size >= bound then
        Alcotest.failf "area %d exceeds the race bound" a.Area.index)
    areas

let test_partition_respects_bound () =
  let bound = 1_218_351 in
  let areas = Area.partition layout ~bound in
  Alcotest.(check int) "greedy total preserved" (Layout.total_size layout)
    (Area.total_size areas);
  List.iter
    (fun a ->
      if a.Area.size > bound then Alcotest.failf "greedy area %d too big" a.Area.index)
    areas;
  (* The greedy partition packs tighter than the canonical one. *)
  Alcotest.(check bool) "fewer areas than canonical" true (List.length areas <= 19)

let test_partition_rejects_oversized_symbol () =
  try
    ignore (Area.partition layout ~bound:1024);
    Alcotest.fail "bound below symbol size accepted"
  with Invalid_argument _ -> ()

let test_find_containing () =
  let areas = Area.of_layout layout in
  let tbl = Layout.syscall_table layout in
  let a = Area.find_containing areas ~addr:tbl.Layout.sym_addr in
  Alcotest.(check int) "syscall table in area 14" 14 a.Area.index;
  try
    ignore (Area.find_containing areas ~addr:0);
    Alcotest.fail "expected Not_found"
  with Not_found -> ()

let prop_partition_sound =
  QCheck.Test.make ~name:"greedy partition is a tiling under any bound" ~count:25
    QCheck.(int_range 900_000 3_000_000)
    (fun bound ->
      let areas = Area.partition layout ~bound in
      let total_ok = Area.total_size areas = Layout.total_size layout in
      let sizes_ok = List.for_all (fun a -> a.Area.size <= bound && a.Area.size > 0) areas in
      let contiguous =
        let rec go addr = function
          | [] -> addr = Layout.base layout + Layout.total_size layout
          | a :: rest -> a.Area.base = addr && go (addr + a.Area.size) rest
        in
        go (Layout.base layout) areas
      in
      total_ok && sizes_ok && contiguous)

let suite =
  [
    Alcotest.test_case "canonical matches paper" `Quick test_canonical_matches_paper;
    Alcotest.test_case "symbol boundaries" `Quick test_areas_respect_symbol_boundaries;
    Alcotest.test_case "size bound (Eq. 2)" `Quick test_size_bound_matches_paper;
    Alcotest.test_case "greedy partition bound" `Quick test_partition_respects_bound;
    Alcotest.test_case "oversized symbol rejected" `Quick test_partition_rejects_oversized_symbol;
    Alcotest.test_case "find containing" `Quick test_find_containing;
    QCheck_alcotest.to_alcotest prop_partition_sound;
  ]
