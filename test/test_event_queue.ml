open Satin_engine

let test_fifo_same_time () =
  let q = Event_queue.create () in
  ignore (Event_queue.push q ~time:5 "a");
  ignore (Event_queue.push q ~time:5 "b");
  ignore (Event_queue.push q ~time:5 "c");
  let pop () = match Event_queue.pop q with Some (_, v) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "insertion order at equal time"
    [ "a"; "b"; "c" ] [ first; second; third ]

let test_time_order () =
  let q = Event_queue.create () in
  ignore (Event_queue.push q ~time:30 3);
  ignore (Event_queue.push q ~time:10 1);
  ignore (Event_queue.push q ~time:20 2);
  let times = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | Some (t, v) ->
        times := (t, v) :: !times;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (pair int int)))
    "sorted" [ (10, 1); (20, 2); (30, 3) ] (List.rev !times)

let test_cancel () =
  let q = Event_queue.create () in
  let h1 = ignore (Event_queue.push q ~time:1 "keep"); Event_queue.push q ~time:2 "drop" in
  Alcotest.(check int) "two live" 2 (Event_queue.length q);
  Event_queue.cancel q h1;
  Alcotest.(check int) "one live" 1 (Event_queue.length q);
  Alcotest.(check bool) "handle dead" false (Event_queue.is_live h1);
  (match Event_queue.pop q with
  | Some (_, v) -> Alcotest.(check string) "survivor" "keep" v
  | None -> Alcotest.fail "expected survivor");
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let test_cancel_idempotent () =
  let q = Event_queue.create () in
  let h = Event_queue.push q ~time:1 () in
  Event_queue.cancel q h;
  Event_queue.cancel q h;
  Alcotest.(check int) "still zero" 0 (Event_queue.length q)

let test_peek_skips_cancelled () =
  let q = Event_queue.create () in
  let h = Event_queue.push q ~time:1 "x" in
  ignore (Event_queue.push q ~time:5 "y");
  Event_queue.cancel q h;
  Alcotest.(check (option int)) "peek live" (Some 5) (Event_queue.peek_time q)

let test_pop_empty () =
  let q : unit Event_queue.t = Event_queue.create () in
  Alcotest.(check bool) "pop empty" true (Event_queue.pop q = None);
  Alcotest.(check bool) "peek empty" true (Event_queue.peek_time q = None)

let test_growth () =
  let q = Event_queue.create () in
  for i = 999 downto 0 do
    ignore (Event_queue.push q ~time:i i)
  done;
  Alcotest.(check int) "length" 1000 (Event_queue.length q);
  for i = 0 to 999 do
    match Event_queue.pop q with
    | Some (t, v) ->
        Alcotest.(check int) "time" i t;
        Alcotest.(check int) "value" i v
    | None -> Alcotest.fail "missing event"
  done

let test_fired_payloads_collectible () =
  (* Regression for the space leak: popped (and cancelled) slots must not
     keep a strong reference to the payload, or a long-lived queue pins
     every closure it ever fired. *)
  let q = Event_queue.create () in
  let w = Weak.create 2 in
  let () =
    (* Allocate in a local scope so the only strong refs are the queue's. *)
    let popped = Bytes.create 64 in
    let cancelled = Bytes.create 64 in
    Weak.set w 0 (Some popped);
    Weak.set w 1 (Some cancelled);
    ignore (Event_queue.push q ~time:1 popped);
    let h = Event_queue.push q ~time:2 cancelled in
    ignore (Event_queue.pop q);
    Event_queue.cancel q h;
    (* The cancelled entry is dropped lazily; draining reaches it. *)
    ignore (Event_queue.pop q)
  in
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "popped payload collected" false (Weak.check w 0);
  Alcotest.(check bool) "cancelled payload collected" false (Weak.check w 1);
  (* The queue itself must survive the test (keep it live past the GC). *)
  Alcotest.(check bool) "queue empty" true (Event_queue.is_empty q)

(* Model-based property: the queue against a reference implementation (a
   sorted association list keyed by (time, insertion seq)) under an
   arbitrary interleaving of push / cancel / pop. *)
type op = Push of int | Cancel of int | Pop

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (5, map (fun t -> Push t) (int_bound 1000));
        (2, map (fun i -> Cancel i) (int_bound 50));
        (3, return Pop);
      ])

let op_print = function
  | Push t -> Printf.sprintf "Push %d" t
  | Cancel i -> Printf.sprintf "Cancel %d" i
  | Pop -> "Pop"

let prop_matches_reference_model =
  QCheck.Test.make ~name:"queue matches sorted-list model under push/cancel/pop"
    ~count:200
    QCheck.(list_of_size Gen.(0 -- 120) (make ~print:op_print op_gen))
    (fun ops ->
      let q = Event_queue.create () in
      let handles = ref [||] in
      (* model: (seq, time, alive ref) in insertion order *)
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      let model_pop () =
        let live = List.filter (fun (_, _, a) -> !a) !model in
        match
          List.sort
            (fun (s1, t1, _) (s2, t2, _) -> compare (t1, s1) (t2, s2))
            live
        with
        | [] -> None
        | (s, t, a) :: _ ->
            a := false;
            Some (t, s)
      in
      List.iter
        (fun op ->
          match op with
          | Push t ->
              let h = Event_queue.push q ~time:t !seq in
              handles := Array.append !handles [| h |];
              model := !model @ [ (!seq, t, ref true) ];
              incr seq
          | Cancel i when i < Array.length !handles ->
              Event_queue.cancel q !handles.(i);
              let s, _, a = List.nth !model i in
              assert (s = i);
              a := false
          | Cancel _ -> ()
          | Pop ->
              let got = Event_queue.pop q in
              let want = model_pop () in
              if got <> want then ok := false)
        ops;
      let live_model = List.length (List.filter (fun (_, _, a) -> !a) !model) in
      !ok
      && Event_queue.length q = live_model
      && Event_queue.invariant_violations q = [])

let prop_heap_orders_any_sequence =
  QCheck.Test.make ~name:"pop yields non-decreasing times"
    QCheck.(list_of_size Gen.(0 -- 200) (int_bound 1000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> ignore (Event_queue.push q ~time:t t)) times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, _) -> t >= last && drain t
      in
      drain min_int)

let prop_cancel_half =
  QCheck.Test.make ~name:"cancelled events never pop"
    QCheck.(list_of_size Gen.(0 -- 100) (int_bound 1000))
    (fun times ->
      let q = Event_queue.create () in
      let handles =
        List.mapi (fun i t -> i, Event_queue.push q ~time:t t) times
      in
      List.iter (fun (i, h) -> if i mod 2 = 0 then Event_queue.cancel q h) handles;
      let rec drain n =
        match Event_queue.pop q with Some _ -> drain (n + 1) | None -> n
      in
      drain 0 = List.length times / 2)

let suite =
  [
    Alcotest.test_case "fifo at same time" `Quick test_fifo_same_time;
    Alcotest.test_case "time order" `Quick test_time_order;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "cancel idempotent" `Quick test_cancel_idempotent;
    Alcotest.test_case "peek skips cancelled" `Quick test_peek_skips_cancelled;
    Alcotest.test_case "pop empty" `Quick test_pop_empty;
    Alcotest.test_case "growth to 1000" `Quick test_growth;
    Alcotest.test_case "fired payloads collectible" `Quick
      test_fired_payloads_collectible;
    QCheck_alcotest.to_alcotest prop_matches_reference_model;
    QCheck_alcotest.to_alcotest prop_heap_orders_any_sequence;
    QCheck_alcotest.to_alcotest prop_cancel_half;
  ]
