open Satin_engine

let test_fifo_same_time () =
  let q = Event_queue.create () in
  ignore (Event_queue.push q ~time:5 "a");
  ignore (Event_queue.push q ~time:5 "b");
  ignore (Event_queue.push q ~time:5 "c");
  let pop () = match Event_queue.pop q with Some (_, v) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "insertion order at equal time"
    [ "a"; "b"; "c" ] [ first; second; third ]

let test_time_order () =
  let q = Event_queue.create () in
  ignore (Event_queue.push q ~time:30 3);
  ignore (Event_queue.push q ~time:10 1);
  ignore (Event_queue.push q ~time:20 2);
  let times = ref [] in
  let rec drain () =
    match Event_queue.pop q with
    | Some (t, v) ->
        times := (t, v) :: !times;
        drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check (list (pair int int)))
    "sorted" [ (10, 1); (20, 2); (30, 3) ] (List.rev !times)

let test_cancel () =
  let q = Event_queue.create () in
  let h1 = ignore (Event_queue.push q ~time:1 "keep"); Event_queue.push q ~time:2 "drop" in
  Alcotest.(check int) "two live" 2 (Event_queue.length q);
  Event_queue.cancel q h1;
  Alcotest.(check int) "one live" 1 (Event_queue.length q);
  Alcotest.(check bool) "handle dead" false (Event_queue.is_live q h1);
  (match Event_queue.pop q with
  | Some (_, v) -> Alcotest.(check string) "survivor" "keep" v
  | None -> Alcotest.fail "expected survivor");
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q)

let test_cancel_idempotent () =
  let q = Event_queue.create () in
  let h = Event_queue.push q ~time:1 () in
  Event_queue.cancel q h;
  Event_queue.cancel q h;
  Alcotest.(check int) "still zero" 0 (Event_queue.length q)

let test_peek_skips_cancelled () =
  let q = Event_queue.create () in
  let h = Event_queue.push q ~time:1 "x" in
  ignore (Event_queue.push q ~time:5 "y");
  Event_queue.cancel q h;
  Alcotest.(check (option int)) "peek live" (Some 5) (Event_queue.peek_time q);
  Alcotest.(check int) "peek_time_or live" 5
    (Event_queue.peek_time_or q ~default:(-1))

let test_pop_empty () =
  let q : unit Event_queue.t = Event_queue.create () in
  Alcotest.(check bool) "pop empty" true (Event_queue.pop q = None);
  Alcotest.(check bool) "peek empty" true (Event_queue.peek_time q = None);
  Alcotest.(check int) "peek_time_or empty" (-1)
    (Event_queue.peek_time_or q ~default:(-1));
  Alcotest.(check bool) "pop_into empty" false
    (Event_queue.pop_into q (fun _ _ -> Alcotest.fail "callback on empty"))

let test_pop_into () =
  let q = Event_queue.create () in
  ignore (Event_queue.push q ~time:7 "late");
  ignore (Event_queue.push q ~time:3 "early");
  let got = ref [] in
  let f time v = got := (time, v) :: !got in
  Alcotest.(check bool) "first" true (Event_queue.pop_into q f);
  Alcotest.(check bool) "second" true (Event_queue.pop_into q f);
  Alcotest.(check bool) "drained" false (Event_queue.pop_into q f);
  Alcotest.(check (list (pair int string)))
    "time order via pop_into"
    [ (3, "early"); (7, "late") ]
    (List.rev !got)

let test_pop_into_reentrant_push () =
  (* The drain callback may push: the engine's event bodies schedule
     follow-ups while the queue is mid-pop. *)
  let q = Event_queue.create () in
  ignore (Event_queue.push q ~time:1 `Seed);
  let fired = ref 0 in
  let rec f _time v =
    incr fired;
    (match v with
    | `Seed ->
        ignore (Event_queue.push q ~time:2 `Child);
        ignore (Event_queue.push q ~time:3 `Child)
    | `Child -> ());
    ignore (Event_queue.invariant_violations q = [])
  and drain () = if Event_queue.pop_into q f then drain () in
  drain ();
  Alcotest.(check int) "seed plus two children" 3 !fired;
  Alcotest.(check (list string)) "clean after reentrant drain" []
    (Event_queue.invariant_violations q)

let test_growth () =
  let q = Event_queue.create () in
  for i = 999 downto 0 do
    ignore (Event_queue.push q ~time:i i)
  done;
  Alcotest.(check int) "length" 1000 (Event_queue.length q);
  for i = 0 to 999 do
    match Event_queue.pop q with
    | Some (t, v) ->
        Alcotest.(check int) "time" i t;
        Alcotest.(check int) "value" i v
    | None -> Alcotest.fail "missing event"
  done

let test_stale_handle_after_recycle () =
  (* Slots are recycled through the free-list; a handle to a fired event
     must stay dead even after its slot is reused, and cancelling it must
     not touch the new occupant. *)
  let q = Event_queue.create () in
  let h_old = Event_queue.push q ~time:1 "old" in
  ignore (Event_queue.pop q);
  Alcotest.(check bool) "fired handle dead" false (Event_queue.is_live q h_old);
  let h_new = Event_queue.push q ~time:2 "new" in
  Event_queue.cancel q h_old;
  Alcotest.(check bool) "recycled occupant unharmed" true
    (Event_queue.is_live q h_new);
  Alcotest.(check int) "still one live" 1 (Event_queue.length q);
  (match Event_queue.pop q with
  | Some (_, v) -> Alcotest.(check string) "new survives stale cancel" "new" v
  | None -> Alcotest.fail "expected new event");
  (* Same for a cancelled-then-recycled slot. *)
  let h_c = Event_queue.push q ~time:3 "cancelled" in
  Event_queue.cancel q h_c;
  Alcotest.(check bool) "drained tombstone" true (Event_queue.pop q = None);
  let h_n2 = Event_queue.push q ~time:4 "again" in
  Event_queue.cancel q h_c;
  Alcotest.(check bool) "second occupant unharmed" true
    (Event_queue.is_live q h_n2)

let test_fired_payloads_collectible () =
  (* Regression for the space leak: popped (and cancelled) slots must not
     keep a strong reference to the payload, or a long-lived queue pins
     every closure it ever fired. *)
  let q = Event_queue.create () in
  let w = Weak.create 2 in
  let () =
    (* Allocate in a local scope so the only strong refs are the queue's. *)
    let popped = Bytes.create 64 in
    let cancelled = Bytes.create 64 in
    Weak.set w 0 (Some popped);
    Weak.set w 1 (Some cancelled);
    ignore (Event_queue.push q ~time:1 popped);
    let h = Event_queue.push q ~time:2 cancelled in
    ignore (Event_queue.pop q);
    Event_queue.cancel q h;
    (* The cancelled entry is dropped lazily; draining reaches it. *)
    ignore (Event_queue.pop q)
  in
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "popped payload collected" false (Weak.check w 0);
  Alcotest.(check bool) "cancelled payload collected" false (Weak.check w 1);
  (* The queue itself must survive the test (keep it live past the GC). *)
  Alcotest.(check bool) "queue empty" true (Event_queue.is_empty q)

let test_dispatch_allocation_free () =
  (* The perf contract behind BENCH_engine.json: draining through
     [pop_into] with a preallocated callback allocates nothing per event.
     Warm the queue, then measure [Gc.minor_words] across the drain. *)
  let q = Event_queue.create () in
  let n = 10_000 in
  let sink = ref 0 in
  let f _time v = sink := !sink + v in
  for i = 0 to n - 1 do
    ignore (Event_queue.push q ~time:(i land 1023) i)
  done;
  let w0 = Gc.minor_words () in
  let rec drain () = if Event_queue.pop_into q f then drain () in
  drain ();
  let per_event = (Gc.minor_words () -. w0) /. float_of_int n in
  Alcotest.(check int) "all events dispatched" (n * (n - 1) / 2) !sink;
  if per_event > 0.5 then
    Alcotest.failf "pop_into allocates %.2f words/event (want 0)" per_event

(* ---- timing-wheel structure tests (cascades, overflow tier, batches) ---- *)

let far_time = (1 lsl 33) + 12_345 (* beyond the 2^33 window from cur = 0 *)

let test_tombstone_purge_reaches_overflow () =
  (* Regression (found by the qcheck model): when the wheel holds only
     tombstones, the [find_next] level scan purges them and empties the
     wheel mid-scan — it must then still jump the cursor to an
     out-of-window overflow entry rather than reporting the queue empty. *)
  let q = Event_queue.create () in
  ignore (Event_queue.push q ~time:100 "a");
  let hb = Event_queue.push q ~time:200 "b" in
  ignore (Event_queue.push q ~time:far_time "far");
  (match Event_queue.pop q with
  | Some (100, "a") -> ()
  | _ -> Alcotest.fail "expected event a");
  (* Only a tombstone remains on the wheel; the sole live event is in the
     overflow heap, beyond the window. *)
  Event_queue.cancel q hb;
  Alcotest.(check (option int)) "peek purges through to the heap"
    (Some far_time) (Event_queue.peek_time q);
  let got = ref [] in
  let n =
    Event_queue.drain_batch q ~max_events:max_int (fun t v ->
        got := (t, v) :: !got)
  in
  Alcotest.(check int) "one event drained" 1 n;
  Alcotest.(check (list (pair int string))) "the far event fires"
    [ (far_time, "far") ] !got;
  Alcotest.(check bool) "drained" true (Event_queue.is_empty q);
  Alcotest.(check (list string)) "clean after purge-then-jump" []
    (Event_queue.invariant_violations q)

let test_overflow_tier_refill () =
  (* An event beyond the wheel horizon lives in the overflow heap until the
     wheel empties and the cursor jumps forward to adopt it. *)
  let q = Event_queue.create () in
  ignore (Event_queue.push q ~time:far_time "far");
  ignore (Event_queue.push q ~time:10 "near");
  Alcotest.(check (option int)) "near first" (Some 10) (Event_queue.peek_time q);
  Alcotest.(check (list string)) "clean with overflow entry" []
    (Event_queue.invariant_violations q);
  (match Event_queue.pop q with
  | Some (10, "near") -> ()
  | _ -> Alcotest.fail "expected near event");
  (match Event_queue.pop q with
  | Some (t, "far") -> Alcotest.(check int) "far fires at its time" far_time t
  | _ -> Alcotest.fail "expected far event");
  Alcotest.(check bool) "drained" true (Event_queue.is_empty q);
  Alcotest.(check (list string)) "clean after refill" []
    (Event_queue.invariant_violations q)

let test_cancel_mid_cascade () =
  (* 99_999 and 100_000 share a level-1 slot from cur = 0; cancelling one
     before the cascade must release the tombstone during the cascade and
     never fire it. *)
  let q = Event_queue.create () in
  let doomed = Event_queue.push q ~time:100_000 "doomed" in
  ignore (Event_queue.push q ~time:99_999 "walker");
  Event_queue.cancel q doomed;
  Alcotest.(check int) "one live" 1 (Event_queue.length q);
  (match Event_queue.pop q with
  | Some (99_999, "walker") -> ()
  | _ -> Alcotest.fail "expected walker");
  Alcotest.(check bool) "tombstone never fires" true (Event_queue.pop q = None);
  Alcotest.(check (list string)) "clean after cascade" []
    (Event_queue.invariant_violations q)

let test_stale_handle_across_cascade () =
  (* A handle that fired via a cascade path must stay dead after its slot
     is recycled by a later push. *)
  let q = Event_queue.create () in
  let h = Event_queue.push q ~time:5_000 "first" in
  (match Event_queue.pop q with
  | Some (_, "first") -> ()
  | _ -> Alcotest.fail "expected first");
  let h2 = Event_queue.push q ~time:6_000 "second" in
  Event_queue.cancel q h;
  Alcotest.(check bool) "stale handle dead" false (Event_queue.is_live q h);
  Alcotest.(check bool) "recycled occupant alive" true
    (Event_queue.is_live q h2);
  (match Event_queue.pop q with
  | Some (_, "second") -> ()
  | _ -> Alcotest.fail "expected second")

let test_drain_batch_cap_and_order () =
  let q = Event_queue.create () in
  for i = 0 to 4 do
    ignore (Event_queue.push q ~time:9 i)
  done;
  let got = ref [] in
  let clean_mid = ref true in
  let f _ v =
    if Event_queue.invariant_violations q <> [] then clean_mid := false;
    got := v :: !got
  in
  let n1 = Event_queue.drain_batch q ~max_events:2 f in
  Alcotest.(check int) "capped at 2" 2 n1;
  Alcotest.(check (list string)) "clean between capped batches" []
    (Event_queue.invariant_violations q);
  let n2 = Event_queue.drain_batch q ~max_events:max_int f in
  Alcotest.(check int) "remainder" 3 n2;
  Alcotest.(check bool) "invariants hold mid-batch" true !clean_mid;
  Alcotest.(check (list int)) "seq order across capped batches" [ 0; 1; 2; 3; 4 ]
    (List.rev !got)

let test_cancel_mid_batch_suppresses () =
  (* A callback cancelling a later event of the same claimed batch must
     suppress it, exactly as one-at-a-time popping would. *)
  let q = Event_queue.create () in
  ignore (Event_queue.push q ~time:3 "a");
  let b = Event_queue.push q ~time:3 "b" in
  ignore (Event_queue.push q ~time:3 "c");
  let fired = ref [] in
  let n =
    Event_queue.drain_batch q ~max_events:max_int (fun _ v ->
        Event_queue.cancel q b;
        fired := v :: !fired)
  in
  Alcotest.(check int) "two fired" 2 n;
  Alcotest.(check (list string)) "b suppressed" [ "a"; "c" ] (List.rev !fired);
  Alcotest.(check (list string)) "clean after suppressed batch" []
    (Event_queue.invariant_violations q)

let test_nested_drain_rejected () =
  let q = Event_queue.create () in
  (* Two same-tick events: the claimed-batch path. *)
  ignore (Event_queue.push q ~time:1 ());
  ignore (Event_queue.push q ~time:1 ());
  let raised = ref 0 in
  let f _ () =
    match Event_queue.pop_into q (fun _ _ -> ()) with
    | exception Invalid_argument _ -> incr raised
    | _ -> ()
  in
  let n = Event_queue.drain_batch q ~max_events:max_int f in
  Alcotest.(check int) "batch dispatched" 2 n;
  Alcotest.(check int) "nested drains rejected" 2 !raised;
  (* Single-entry fast path must reject re-entry too. *)
  ignore (Event_queue.push q ~time:2 ());
  raised := 0;
  let n = Event_queue.drain_batch q ~max_events:max_int f in
  Alcotest.(check int) "single dispatched" 1 n;
  Alcotest.(check int) "fast path rejects nesting" 1 !raised;
  Alcotest.(check (list string)) "clean after rejections" []
    (Event_queue.invariant_violations q)

(* Model-based property: the queue against a reference implementation (a
   sorted association list keyed by (time, insertion seq)) under an
   arbitrary interleaving of push / cancel / pop / pop_into / drain / peek.
   Push times mix three magnitudes: level-0 locals, mid-range times that
   land in levels 1–2 and cascade on drain, and times beyond the 2^33
   wheel horizon that exercise the overflow tier, cursor jumps, and
   heap-to-wheel refill (plus the past-time heap path once the cursor has
   jumped ahead of later small pushes). *)
type op = Push of int | Cancel of int | Pop | Pop_into | Drain_batch | Peek

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (4, map (fun t -> Push t) (int_bound 1000));
        (2, map (fun t -> Push (4096 + (t * 37))) (int_bound 60_000));
        (1, map (fun t -> Push ((1 lsl 33) + (1 lsl 20) + t)) (int_bound 5000));
        (2, map (fun i -> Cancel i) (int_bound 50));
        (2, return Pop);
        (2, return Pop_into);
        (1, return Drain_batch);
        (1, return Peek);
      ])

let op_print = function
  | Push t -> Printf.sprintf "Push %d" t
  | Cancel i -> Printf.sprintf "Cancel %d" i
  | Pop -> "Pop"
  | Pop_into -> "Pop_into"
  | Drain_batch -> "Drain_batch"
  | Peek -> "Peek"

let prop_matches_reference_model =
  QCheck.Test.make
    ~name:"queue matches sorted-list model under push/cancel/pop/drain/peek"
    ~count:200
    QCheck.(list_of_size Gen.(0 -- 120) (make ~print:op_print op_gen))
    (fun ops ->
      let q = Event_queue.create () in
      let handles = ref [||] in
      (* model: (seq, time, alive ref) in insertion order *)
      let model = ref [] in
      let seq = ref 0 in
      let ok = ref true in
      let model_live () = List.filter (fun (_, _, a) -> !a) !model in
      let model_sorted () =
        List.sort
          (fun (s1, t1, _) (s2, t2, _) -> compare (t1, s1) (t2, s2))
          (model_live ())
      in
      let model_pop () =
        match model_sorted () with
        | [] -> None
        | (s, t, a) :: _ ->
            a := false;
            Some (t, s)
      in
      List.iter
        (fun op ->
          match op with
          | Push t ->
              let h = Event_queue.push q ~time:t !seq in
              handles := Array.append !handles [| h |];
              model := !model @ [ (!seq, t, ref true) ];
              incr seq
          | Cancel i when i < Array.length !handles ->
              Event_queue.cancel q !handles.(i);
              let s, _, a = List.nth !model i in
              assert (s = i);
              a := false
          | Cancel _ -> ()
          | Pop ->
              let got = Event_queue.pop q in
              let want = model_pop () in
              if got <> want then ok := false
          | Pop_into ->
              let got = ref None in
              let popped =
                Event_queue.pop_into q (fun t v -> got := Some (t, v))
              in
              let want = model_pop () in
              if !got <> want || popped <> (want <> None) then ok := false
          | Drain_batch ->
              (* Drain the whole earliest-instant batch: every live model
                 entry sharing the earliest time, in seq order. *)
              let got = ref [] in
              let n =
                Event_queue.drain_batch q ~max_events:max_int (fun t v ->
                    got := (t, v) :: !got)
              in
              let want =
                match model_sorted () with
                | [] -> []
                | (_, t0, _) :: _ ->
                    List.filter_map
                      (fun (s, t, a) ->
                        if t = t0 then begin
                          a := false;
                          Some (t, s)
                        end
                        else None)
                      (model_sorted ())
              in
              if List.rev !got <> want || n <> List.length want then
                ok := false
          | Peek ->
              let want =
                match model_sorted () with (_, t, _) :: _ -> Some t | [] -> None
              in
              if Event_queue.peek_time q <> want then ok := false)
        ops;
      let live_model = List.length (model_live ()) in
      (* Every handle's liveness must agree with the model, including
         handles whose slots have since been recycled. *)
      let handles_agree =
        List.for_all
          (fun (s, _, a) -> Event_queue.is_live q !handles.(s) = !a)
          !model
      in
      !ok && handles_agree
      && Event_queue.length q = live_model
      && Event_queue.invariant_violations q = [])

let prop_heap_orders_any_sequence =
  QCheck.Test.make ~name:"pop yields non-decreasing times"
    QCheck.(list_of_size Gen.(0 -- 200) (int_bound 1000))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> ignore (Event_queue.push q ~time:t t)) times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, _) -> t >= last && drain t
      in
      drain min_int)

let prop_cancel_half =
  QCheck.Test.make ~name:"cancelled events never pop"
    QCheck.(list_of_size Gen.(0 -- 100) (int_bound 1000))
    (fun times ->
      let q = Event_queue.create () in
      let handles =
        List.mapi (fun i t -> i, Event_queue.push q ~time:t t) times
      in
      List.iter (fun (i, h) -> if i mod 2 = 0 then Event_queue.cancel q h) handles;
      let rec drain n =
        match Event_queue.pop q with Some _ -> drain (n + 1) | None -> n
      in
      drain 0 = List.length times / 2)

let suite =
  [
    Alcotest.test_case "fifo at same time" `Quick test_fifo_same_time;
    Alcotest.test_case "time order" `Quick test_time_order;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "cancel idempotent" `Quick test_cancel_idempotent;
    Alcotest.test_case "peek skips cancelled" `Quick test_peek_skips_cancelled;
    Alcotest.test_case "pop empty" `Quick test_pop_empty;
    Alcotest.test_case "pop_into" `Quick test_pop_into;
    Alcotest.test_case "pop_into reentrant push" `Quick
      test_pop_into_reentrant_push;
    Alcotest.test_case "growth to 1000" `Quick test_growth;
    Alcotest.test_case "stale handle after slot recycle" `Quick
      test_stale_handle_after_recycle;
    Alcotest.test_case "fired payloads collectible" `Quick
      test_fired_payloads_collectible;
    Alcotest.test_case "pop_into dispatch is allocation-free" `Quick
      test_dispatch_allocation_free;
    Alcotest.test_case "overflow tier refill" `Quick test_overflow_tier_refill;
    Alcotest.test_case "tombstone purge reaches overflow" `Quick
      test_tombstone_purge_reaches_overflow;
    Alcotest.test_case "cancel mid-cascade" `Quick test_cancel_mid_cascade;
    Alcotest.test_case "stale handle across cascade" `Quick
      test_stale_handle_across_cascade;
    Alcotest.test_case "drain_batch cap and order" `Quick
      test_drain_batch_cap_and_order;
    Alcotest.test_case "cancel mid-batch suppresses" `Quick
      test_cancel_mid_batch_suppresses;
    Alcotest.test_case "nested drain rejected" `Quick test_nested_drain_rejected;
    QCheck_alcotest.to_alcotest prop_matches_reference_model;
    QCheck_alcotest.to_alcotest prop_heap_orders_any_sequence;
    QCheck_alcotest.to_alcotest prop_cancel_half;
  ]
