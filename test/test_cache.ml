module Prng = Satin_engine.Prng
module Policy = Satin_cache.Policy
module Cache = Satin_cache.Cache

let prng () = Prng.create (Prng.derive 7 11)

(* Apply a touch trace to one set and return the state the policy sees. *)
let run_trace kind ~ways trace =
  let state = Array.make (Policy.state_words kind ~ways) 0 in
  Policy.init kind ~state ~off:0 ~ways;
  List.iteri
    (fun tick way -> Policy.touch kind ~state ~off:0 ~ways ~way ~tick:(tick + 1))
    trace;
  state

(* Every policy guarantees the just-touched way is never the next victim
   (with no locks and at least two ways). *)
let prop_no_policy_evicts_just_touched =
  QCheck.Test.make ~name:"no policy evicts the just-touched way" ~count:200
    QCheck.(
      triple (int_range 0 2) (int_range 1 4)
        (list_of_size Gen.(int_range 1 40) (int_bound 1000)))
    (fun (ki, log_ways, raw_trace) ->
      let kind = List.nth Policy.all ki in
      let ways = 1 lsl log_ways (* 2 .. 16 *) in
      let trace = List.map (fun r -> r mod ways) raw_trace in
      let state = run_trace kind ~ways trace in
      let last = List.nth trace (List.length trace - 1) in
      let v =
        Policy.victim kind ~state ~off:0 ~ways ~locked:0 ~prng:(prng ())
      in
      v >= 0 && v < ways && v <> last)

(* At two ways Tree-PLRU is exactly LRU: one bit tracks the cold way. *)
let prop_plru_is_lru_at_two_ways =
  QCheck.Test.make ~name:"tree-plru = lru on any 2-way single-set trace"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 60) (int_bound 1))
    (fun trace ->
      let lru = run_trace Policy.Lru ~ways:2 trace in
      let plru = run_trace Policy.Tree_plru ~ways:2 trace in
      Policy.victim Policy.Lru ~state:lru ~off:0 ~ways:2 ~locked:0
        ~prng:(prng ())
      = Policy.victim Policy.Tree_plru ~state:plru ~off:0 ~ways:2 ~locked:0
          ~prng:(prng ()))

let test_policy_validate () =
  Alcotest.check_raises "plru needs pow2"
    (Invalid_argument "Policy.validate: Tree_plru needs a power-of-two ways")
    (fun () -> Policy.validate Policy.Tree_plru ~ways:12);
  Policy.validate Policy.Lru ~ways:12;
  Alcotest.check_raises "ways ceiling"
    (Invalid_argument "Policy.validate: need 1 <= ways <= 62") (fun () ->
      Policy.validate Policy.Lru ~ways:63)

let two_core_cache ?(policy = Policy.Lru) ~autolock () =
  Cache.create
    ~clusters:[| [| 0; 1 |] |]
    { Cache.default_config with Cache.policy; autolock }

let test_touch_levels_and_counters () =
  let c = two_core_cache ~autolock:false () in
  let addr = 1 lsl 22 in
  Alcotest.(check int) "cold touch misses both" 2 (Cache.touch c ~core:0 ~addr);
  Alcotest.(check int) "second touch hits L1" 0 (Cache.touch c ~core:0 ~addr);
  (* Same cluster, other core: L1 is private, L2 is shared. *)
  Alcotest.(check int) "peer core hits only L2" 1 (Cache.touch c ~core:1 ~addr);
  let l1 = Cache.l1_stats c and l2 = Cache.l2_stats c in
  Alcotest.(check int) "l1 hits" 1 l1.Cache.hits;
  Alcotest.(check int) "l1 misses" 2 l1.Cache.misses;
  Alcotest.(check int) "l2 hits" 1 l2.Cache.hits;
  Alcotest.(check int) "l2 misses" 1 l2.Cache.misses;
  Alcotest.(check int) "peek is free" 0 (Cache.peek c ~core:0 ~addr);
  let l1' = Cache.l1_stats c in
  Alcotest.(check int) "peek did not count" l1.Cache.hits l1'.Cache.hits

let test_eviction_set_shape () =
  let c = two_core_cache ~autolock:false () in
  let l2_set = 777 and base = 1 lsl 26 in
  let set = Cache.eviction_set c ~l2_set ~base in
  Alcotest.(check int) "ways members" (Cache.l2_ways c) (Array.length set);
  let line = Cache.line_size c in
  let span = Cache.l2_sets c * line in
  Array.iteri
    (fun i addr ->
      Alcotest.(check bool) "above base" true (addr >= base);
      Alcotest.(check int) "line aligned" 0 (addr mod line);
      Alcotest.(check int) "maps to the set" l2_set
        (Cache.l2_set_of_addr c ~addr);
      if i > 0 then
        Alcotest.(check int) "spaced one L2 span apart" span (addr - set.(i - 1)))
    set

(* The AutoLock primitive, deterministically: core 0 parks an eviction set
   (resident in its own L1, hence pinned when the toggle is on); core 1
   then streams a full conflicting set through the shared L2. *)
let autolock_duel ~autolock =
  let c = two_core_cache ~autolock () in
  let l2_set = 129 in
  let parked = Cache.eviction_set c ~l2_set ~base:(1 lsl 26) in
  Array.iter (fun addr -> ignore (Cache.touch c ~core:0 ~addr)) parked;
  let evictor = Cache.eviction_set c ~l2_set ~base:(1 lsl 27) in
  Array.iter (fun addr -> ignore (Cache.touch c ~core:1 ~addr)) evictor;
  c, parked

let test_cross_core_eviction_without_autolock () =
  let c, parked = autolock_duel ~autolock:false in
  Array.iter
    (fun addr ->
      Alcotest.(check int) "parked line fully evicted" 2
        (Cache.peek c ~core:0 ~addr))
    parked;
  Alcotest.(check bool) "L1 copies were back-invalidated" true
    (Cache.back_invalidations c >= Array.length parked);
  Alcotest.(check int) "no locked-set skips" 0 (Cache.autolock_skips c)

let test_autolock_pins_cross_core_eviction () =
  let c, parked = autolock_duel ~autolock:true in
  Array.iter
    (fun addr ->
      Alcotest.(check bool) "parked line survives" true
        (Cache.peek c ~core:0 ~addr <= 1))
    parked;
  Alcotest.(check bool) "fully-pinned set skipped L2 allocation" true
    (Cache.autolock_skips c > 0);
  (* A core can always re-evict its own lines: the same duel from core 0
     itself must still evict (Evict+Reload depends on this). *)
  let evictor = Cache.eviction_set c ~l2_set:301 ~base:(1 lsl 27) in
  let target = Cache.eviction_set c ~l2_set:301 ~base:(1 lsl 26) in
  ignore (Cache.touch c ~core:0 ~addr:target.(0));
  Array.iter (fun addr -> ignore (Cache.touch c ~core:0 ~addr)) evictor;
  Alcotest.(check int) "own line still evictable under AutoLock" 2
    (Cache.peek c ~core:0 ~addr:target.(0))

let test_config_validation () =
  Alcotest.check_raises "clusters must partition the cores"
    (Invalid_argument "Cache.create: clusters must partition the cores")
    (fun () ->
      ignore
        (Cache.create ~clusters:[| [| 0; 2 |] |] Cache.default_config));
  Alcotest.check_raises "line sizes must match"
    (Invalid_argument "Cache.create: L1 and L2 line sizes must match")
    (fun () ->
      ignore
        (Cache.create
           ~clusters:[| [| 0 |] |]
           {
             Cache.default_config with
             Cache.l1 = { Cache.sets = 32; ways = 4; line = 32 };
           }))

let test_cluster_mapping () =
  let c =
    Cache.create ~clusters:[| [| 0; 1 |]; [| 2 |] |] Cache.default_config
  in
  Alcotest.(check int) "core 1 -> cluster 0" 0 (Cache.cluster_of_core c ~core:1);
  Alcotest.(check int) "core 2 -> cluster 1" 1 (Cache.cluster_of_core c ~core:2)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_no_policy_evicts_just_touched;
    QCheck_alcotest.to_alcotest prop_plru_is_lru_at_two_ways;
    Alcotest.test_case "policy validation" `Quick test_policy_validate;
    Alcotest.test_case "touch levels and counters" `Quick
      test_touch_levels_and_counters;
    Alcotest.test_case "eviction set shape" `Quick test_eviction_set_shape;
    Alcotest.test_case "cross-core eviction, AutoLock off" `Quick
      test_cross_core_eviction_without_autolock;
    Alcotest.test_case "AutoLock pins cross-core eviction" `Quick
      test_autolock_pins_cross_core_eviction;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "cluster mapping" `Quick test_cluster_mapping;
  ]
