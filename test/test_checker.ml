(* Scan-front race semantics: the heart of the reproduction. *)

open Satin_introspect
open Satin_hw
open Satin_engine

let setup () =
  let platform = Platform.juno_r1 ~seed:17 () in
  let memory = platform.Platform.memory in
  (* A 1 MB test region filled with a pattern. *)
  let base = 4 * 1024 * 1024 and len = 1_000_000 in
  let pattern = String.init 4096 (fun i -> Char.chr (i land 0xff)) in
  for block = 0 to (len / 4096) - 1 do
    Memory.write_string memory ~world:World.Secure ~addr:(base + (block * 4096)) pattern
  done;
  let checker =
    Checker.create ~memory ~cycle:platform.Platform.cycle
      ~prng:(Platform.split_prng platform) ~algo:Hash.Djb2 ~style:Checker.Direct_hash ()
  in
  platform, checker, base, len

let scan platform checker ~base ~len ~verdict =
  let core = Platform.core platform 4 (* A57 *) in
  Checker.start_scan checker ~engine:platform.Platform.engine ~core ~base ~len
    ~on_verdict:(fun v -> verdict := Some v)

let run platform d =
  Engine.run_until platform.Platform.engine
    (Sim_time.add (Engine.now platform.Platform.engine) d)

let test_enroll_required () =
  let platform, checker, base, len = setup () in
  let verdict = ref None in
  try
    ignore (scan platform checker ~base ~len ~verdict);
    Alcotest.fail "unenrolled scan accepted"
  with Invalid_argument _ -> ()

let test_clean_scan () =
  let platform, checker, base, len = setup () in
  let enrolled = Checker.enroll checker ~base ~len in
  let verdict = ref None in
  let duration = scan platform checker ~base ~len ~verdict in
  (* Duration within the A57 hash calibration. *)
  let per_byte = Sim_time.to_sec_f duration /. float_of_int len in
  if per_byte < 6.5e-9 || per_byte > 7.6e-9 then
    Alcotest.failf "scan rate out of calibration: %g" per_byte;
  Alcotest.(check bool) "no verdict before scan end" true (!verdict = None);
  run platform (Sim_time.ms 20);
  match !verdict with
  | Some v ->
      Alcotest.(check bool) "clean" false v.Checker.v_tampered;
      Alcotest.(check (list int)) "no offsets" [] v.Checker.v_offsets;
      Alcotest.(check int64) "hash matches" enrolled v.Checker.v_hash_observed
  | None -> Alcotest.fail "verdict missing"

let test_static_tamper_detected () =
  let platform, checker, base, len = setup () in
  ignore (Checker.enroll checker ~base ~len);
  (* Modify 8 bytes in the middle, never restore. *)
  Memory.write_string platform.Platform.memory ~world:World.Normal
    ~addr:(base + 500_000) "\xde\xad\xbe\xef\xde\xad\xbe\xef";
  let verdict = ref None in
  ignore (scan platform checker ~base ~len ~verdict);
  run platform (Sim_time.ms 20);
  match !verdict with
  | Some v ->
      Alcotest.(check bool) "tampered" true v.Checker.v_tampered;
      Alcotest.(check (list int)) "offsets"
        [ 500_000; 500_001; 500_002; 500_003; 500_004; 500_005; 500_006; 500_007 ]
        v.Checker.v_offsets;
      Alcotest.(check bool) "hash differs" false
        (Int64.equal v.Checker.v_hash_expected v.Checker.v_hash_observed)
  | None -> Alcotest.fail "verdict missing"

let test_restore_before_front_evades () =
  let platform, checker, base, len = setup () in
  ignore (Checker.enroll checker ~base ~len);
  let addr = base + 900_000 in
  let original =
    Bytes.to_string
      (Memory.read_bytes platform.Platform.memory ~world:World.Normal ~addr ~len:8)
  in
  Memory.write_string platform.Platform.memory ~world:World.Normal ~addr
    "\xde\xad\xbe\xef\xde\xad\xbe\xef";
  let verdict = ref None in
  ignore (scan platform checker ~base ~len ~verdict);
  (* The front needs ~6 ms to reach offset 900,000 on an A57; restore well
     before that. *)
  ignore
    (Engine.schedule platform.Platform.engine ~after:(Sim_time.ms 1) (fun () ->
         Memory.write_string platform.Platform.memory ~world:World.Normal ~addr
           original));
  run platform (Sim_time.ms 20);
  match !verdict with
  | Some v ->
      Alcotest.(check bool) "evaded (TOCTTOU)" false v.Checker.v_tampered;
      Alcotest.(check int64) "hash clean again" v.Checker.v_hash_expected
        v.Checker.v_hash_observed
  | None -> Alcotest.fail "verdict missing"

let test_restore_after_front_caught () =
  let platform, checker, base, len = setup () in
  ignore (Checker.enroll checker ~base ~len);
  let addr = base + 100_000 in
  let original =
    Bytes.to_string
      (Memory.read_bytes platform.Platform.memory ~world:World.Normal ~addr ~len:8)
  in
  Memory.write_string platform.Platform.memory ~world:World.Normal ~addr
    "\xde\xad\xbe\xef\xde\xad\xbe\xef";
  let verdict = ref None in
  ignore (scan platform checker ~base ~len ~verdict);
  (* Front passes offset 100,000 at ~0.7 ms; restore at 2 ms — too late,
     even though the content is pristine by scan end. *)
  ignore
    (Engine.schedule platform.Platform.engine ~after:(Sim_time.ms 2) (fun () ->
         Memory.write_string platform.Platform.memory ~world:World.Normal ~addr
           original));
  run platform (Sim_time.ms 20);
  match !verdict with
  | Some v ->
      Alcotest.(check bool) "caught despite restore" true v.Checker.v_tampered;
      Alcotest.(check int) "all 8 bytes flagged" 8 (List.length v.Checker.v_offsets);
      (* Final content is clean, so the observed hash matches: the paper's
         point that snapshot-free detection must catch it in flight. *)
      Alcotest.(check int64) "end-of-scan hash clean" v.Checker.v_hash_expected
        v.Checker.v_hash_observed
  | None -> Alcotest.fail "verdict missing"

let test_write_ahead_of_front_caught () =
  let platform, checker, base, len = setup () in
  ignore (Checker.enroll checker ~base ~len);
  let verdict = ref None in
  ignore (scan platform checker ~base ~len ~verdict);
  (* Dirty a byte ahead of the front mid-scan and leave it. *)
  ignore
    (Engine.schedule platform.Platform.engine ~after:(Sim_time.ms 1) (fun () ->
         Memory.write_byte platform.Platform.memory ~world:World.Normal
           ~addr:(base + 800_000) 0xEE));
  run platform (Sim_time.ms 20);
  match !verdict with
  | Some v ->
      Alcotest.(check bool) "caught" true v.Checker.v_tampered;
      Alcotest.(check (list int)) "offset" [ 800_000 ] v.Checker.v_offsets
  | None -> Alcotest.fail "verdict missing"

let test_write_behind_front_missed () =
  let platform, checker, base, len = setup () in
  ignore (Checker.enroll checker ~base ~len);
  let verdict = ref None in
  ignore (scan platform checker ~base ~len ~verdict);
  (* Dirty a byte the front has already passed: invisible to this round. *)
  ignore
    (Engine.schedule platform.Platform.engine ~after:(Sim_time.ms 5) (fun () ->
         Memory.write_byte platform.Platform.memory ~world:World.Normal
           ~addr:(base + 1_000) 0xEE));
  run platform (Sim_time.ms 20);
  (match !verdict with
  | Some v -> Alcotest.(check bool) "missed this round" false v.Checker.v_tampered
  | None -> Alcotest.fail "verdict missing");
  (* The next round catches it. *)
  let verdict2 = ref None in
  ignore (scan platform checker ~base ~len ~verdict:verdict2);
  run platform (Sim_time.ms 20);
  match !verdict2 with
  | Some v ->
      Alcotest.(check bool) "caught next round" true v.Checker.v_tampered
  | None -> Alcotest.fail "second verdict missing"

let test_counters () =
  let platform, checker, base, len = setup () in
  ignore (Checker.enroll checker ~base ~len);
  let verdict = ref None in
  ignore (scan platform checker ~base ~len ~verdict);
  run platform (Sim_time.ms 20);
  Memory.write_byte platform.Platform.memory ~world:World.Normal ~addr:(base + 5) 0x77;
  ignore (scan platform checker ~base ~len ~verdict);
  run platform (Sim_time.ms 20);
  Alcotest.(check int) "scans" 2 (Checker.scans_started checker);
  Alcotest.(check int) "tampered verdicts" 1 (Checker.tampered_verdicts checker)

let test_snapshot_style_also_races () =
  let platform, _, base, len = setup () in
  let checker =
    Checker.create ~memory:platform.Platform.memory ~cycle:platform.Platform.cycle
      ~prng:(Platform.split_prng platform) ~algo:Hash.Djb2 ~style:Checker.Snapshot ()
  in
  ignore (Checker.enroll checker ~base ~len);
  Memory.write_byte platform.Platform.memory ~world:World.Normal ~addr:(base + 10) 0x99;
  let verdict = ref None in
  let d = scan platform checker ~base ~len ~verdict in
  (* Snapshot per-byte cost is higher on average. *)
  Alcotest.(check bool) "positive duration" true (d > Sim_time.zero);
  run platform (Sim_time.ms 30);
  match !verdict with
  | Some v -> Alcotest.(check bool) "tampered" true v.Checker.v_tampered
  | None -> Alcotest.fail "verdict missing"

(* Regression: the [Snapshot] capture buffer is hoisted to the checker and
   sized at enroll — repeated scan rounds (clean and tampered) must never
   grow it. Before the hoist, every round allocated a fresh snapshot. *)
let test_snapshot_buffer_no_growth () =
  let platform, _, base, len = setup () in
  let checker =
    Checker.create ~memory:platform.Platform.memory ~cycle:platform.Platform.cycle
      ~prng:(Platform.split_prng platform) ~algo:Hash.Djb2 ~style:Checker.Snapshot ()
  in
  Alcotest.(check int) "empty before enroll" 0 (Checker.scratch_capacity checker);
  ignore (Checker.enroll checker ~base ~len);
  let cap = Checker.scratch_capacity checker in
  Alcotest.(check int) "sized to the enrolled range" len cap;
  (* Smaller ranges reuse the big buffer; only a larger enroll may grow it. *)
  ignore (Checker.enroll checker ~base ~len:(len / 2));
  Alcotest.(check int) "smaller enroll reuses" cap (Checker.scratch_capacity checker);
  for round = 1 to 4 do
    if round = 3 then
      Memory.write_byte platform.Platform.memory ~world:World.Normal
        ~addr:(base + 123_456) 0xEE;
    let verdict = ref None in
    ignore (scan platform checker ~base ~len ~verdict);
    run platform (Sim_time.ms 30);
    Alcotest.(check bool)
      (Printf.sprintf "verdict delivered in round %d" round)
      true (!verdict <> None);
    Alcotest.(check int)
      (Printf.sprintf "no buffer growth after round %d" round)
      cap (Checker.scratch_capacity checker)
  done

let test_enrolled_hash_lookup () =
  let _, checker, base, len = setup () in
  Alcotest.(check bool) "absent before enroll" true
    (Checker.enrolled_hash checker ~base ~len = None);
  let h = Checker.enroll checker ~base ~len in
  Alcotest.(check (option int64)) "present after" (Some h)
    (Checker.enrolled_hash checker ~base ~len)

(* Property: for a single tampered byte restored at time T, the verdict
   matches the closed-form race predicate — tampered iff the scan front
   passes the byte before the restore lands. *)
let prop_race_predicate =
  QCheck.Test.make ~name:"verdict = (pass time < restore time)" ~count:60
    QCheck.(pair (int_bound 999_999) (int_bound 9_000))
    (fun (offset, restore_us) ->
      let platform, checker, base, len = setup () in
      ignore (Checker.enroll checker ~base ~len);
      let addr = base + offset in
      let original = Memory.read_byte platform.Platform.memory ~world:World.Normal ~addr in
      Memory.write_byte platform.Platform.memory ~world:World.Normal ~addr
        ((original + 1) land 0xff);
      let verdict = ref None in
      let duration = scan platform checker ~base ~len ~verdict in
      let rate = Sim_time.to_sec_f duration /. float_of_int len in
      let pass_s = rate *. float_of_int offset in
      let restore_s = float_of_int restore_us *. 1e-6 in
      ignore
        (Engine.schedule platform.Platform.engine
           ~after:(Sim_time.of_sec_f restore_s) (fun () ->
             Memory.write_byte platform.Platform.memory ~world:World.Normal ~addr
               original));
      run platform (Sim_time.ms 30);
      match !verdict with
      | Some v ->
          (* Ties (equal instants) may go either way through event ordering;
             skip the knife edge. *)
          Float.abs (pass_s -. restore_s) < 2e-7
          || Bool.equal v.Checker.v_tampered (pass_s < restore_s)
      | None -> false)

let suite =
  [
    Alcotest.test_case "enroll required" `Quick test_enroll_required;
    Alcotest.test_case "clean scan" `Quick test_clean_scan;
    Alcotest.test_case "static tamper detected" `Quick test_static_tamper_detected;
    Alcotest.test_case "restore before front evades" `Quick test_restore_before_front_evades;
    Alcotest.test_case "restore after front caught" `Quick test_restore_after_front_caught;
    Alcotest.test_case "write ahead of front caught" `Quick test_write_ahead_of_front_caught;
    Alcotest.test_case "write behind front missed" `Quick test_write_behind_front_missed;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "snapshot style races too" `Quick test_snapshot_style_also_races;
    Alcotest.test_case "snapshot buffer never grows mid-scan" `Quick
      test_snapshot_buffer_no_growth;
    Alcotest.test_case "enrolled hash lookup" `Quick test_enrolled_hash_lookup;
    QCheck_alcotest.to_alcotest prop_race_predicate;
  ]
