(* End-to-end campaigns: the paper's headline results at reduced scale. *)

module Scenario = Satin.Scenario
module Experiment = Satin.Experiment
module Race = Satin.Race
open Satin_engine
module Satin_def = Satin_introspect.Satin
module Round = Satin_introspect.Round
module Baseline = Satin_introspect.Baseline
module Kprober = Satin_attack.Kprober
module Evader = Satin_attack.Evader
module Rootkit = Satin_attack.Rootkit

(* E8 at reduced scale: TZ-Evader defeats a PKM-style random full scan. *)
let test_evader_beats_baseline () =
  let s = Scenario.create ~seed:71 () in
  let b =
    Scenario.install_baseline s
      { Baseline.timing = Baseline.Random_period (Sim_time.s 4);
        core_choice = Baseline.Random_core }
  in
  let ev =
    Evader.deploy s.Scenario.kernel
      { Evader.default_config with
        prober = { Kprober.default_config with period = Sim_time.us 500 } }
  in
  Evader.start ev;
  Scenario.run_for s (Sim_time.s 60);
  Baseline.stop b;
  Evader.stop ev;
  Alcotest.(check bool) "rounds ran" true (Baseline.rounds_count b >= 8);
  Alcotest.(check int) "zero detections: evasion wins" 0 (Baseline.detections b);
  Alcotest.(check bool) "attack uptime > 95%" true
    (Sim_time.to_sec_f (Rootkit.attack_uptime (Evader.rootkit ev)) > 57.0)

(* E10 at reduced scale: SATIN defeats the same evader. *)
let test_satin_beats_evader () =
  let s = Scenario.create ~seed:72 () in
  let satin =
    Scenario.install_satin s
      ~config:{ Satin_def.default_config with Satin_def.t_goal = Sim_time.s 38 } ()
  in
  let ev =
    Evader.deploy s.Scenario.kernel
      { Evader.default_config with
        prober = { Kprober.default_config with period = Sim_time.us 500 } }
  in
  Evader.start ev;
  (* Two full passes: 38 rounds at tp = 2 s. *)
  Scenario.run_for s (Sim_time.s 85);
  Satin_def.stop satin;
  Evader.stop ev;
  let rounds = Satin_def.rounds satin in
  Alcotest.(check bool) "at least 2 passes" true (Satin_def.full_passes satin >= 2);
  let area14 = List.filter (fun r -> r.Round.area_index = 14) rounds in
  Alcotest.(check bool) "area 14 checked" true (List.length area14 >= 2);
  List.iter
    (fun r ->
      Alcotest.(check bool) "every area-14 check catches the hijack" true
        (Round.detected r))
    area14;
  (* The attacker did react every round — it just lost the race. *)
  Alcotest.(check bool) "evader kept hiding" true
    (Rootkit.hides (Evader.rootkit ev) >= List.length rounds - 2)

(* The prober reports every SATIN round (the §VI-B1 faithfulness claim). *)
let test_prober_faithful_against_satin () =
  let s = Scenario.create ~seed:73 () in
  let satin =
    Scenario.install_satin s
      ~config:{ Satin_def.default_config with Satin_def.t_goal = Sim_time.s 19 } ()
  in
  let prober = Kprober.deploy s.Scenario.kernel Kprober.default_config in
  Scenario.run_for s (Sim_time.s 40);
  Satin_def.stop satin;
  let rounds = Satin_def.rounds satin in
  let detections = Kprober.detections prober in
  Kprober.retire prober;
  Alcotest.(check bool) "rounds happened" true (List.length rounds >= 30);
  (* Every round matched by a detection within 50 ms. *)
  List.iter
    (fun r ->
      let s0 = Sim_time.to_sec_f r.Round.started in
      let matched =
        List.exists
          (fun d ->
            let dt = Sim_time.to_sec_f d.Kprober.det_time in
            dt >= s0 && dt <= s0 +. 0.05)
          detections
      in
      if not matched then Alcotest.failf "round at %.3f unreported" s0)
    rounds;
  (* No spurious detections. *)
  List.iter
    (fun d ->
      let dt = Sim_time.to_sec_f d.Kprober.det_time in
      let matched =
        List.exists
          (fun r ->
            let s0 = Sim_time.to_sec_f r.Round.started in
            dt >= s0 && dt <= s0 +. 0.05)
          rounds
      in
      if not matched then Alcotest.failf "false positive at %.3f" dt)
    detections

(* Determinism: identical seeds give identical campaigns. *)
let test_campaign_deterministic () =
  let campaign seed =
    let s = Scenario.create ~seed () in
    let satin =
      Scenario.install_satin s
        ~config:{ Satin_def.default_config with Satin_def.t_goal = Sim_time.s 19 } ()
    in
    Scenario.run_for s (Sim_time.s 25);
    Satin_def.stop satin;
    List.map
      (fun r -> (r.Round.started, r.Round.core, r.Round.area_index))
      (Satin_def.rounds satin)
  in
  let a = campaign 99 and b = campaign 99 and c = campaign 100 in
  Alcotest.(check bool) "same seed, same campaign" true (a = b);
  Alcotest.(check bool) "different seed, different campaign" false (a = c)

(* The quick experiment runners end-to-end (smoke + invariants). *)
let test_run_e10_quick () =
  let r = Experiment.run_e10 ~seed:7 ~target_rounds:38 ~probe_period_us:1000 () in
  Alcotest.(check int) "rounds" 38 r.Experiment.e10_rounds;
  Alcotest.(check int) "passes" 2 r.Experiment.e10_full_passes;
  Alcotest.(check int) "area14 checks" 2 r.Experiment.e10_area14_checks;
  Alcotest.(check int) "area14 detections" 2 r.Experiment.e10_area14_detections;
  Alcotest.(check int) "prober FN" 0 r.Experiment.e10_false_negatives;
  Alcotest.(check int) "prober FP" 0 r.Experiment.e10_false_positives;
  Alcotest.(check int) "no evasions" 0 r.Experiment.e10_evasions_succeeded

let test_run_e7 () =
  let r = Experiment.run_e7 () in
  Alcotest.(check int) "S" 1_218_351 r.Experiment.e7_s_bound;
  Alcotest.(check bool) "~90%" true
    (Float.abs (r.Experiment.e7_unprotected -. 0.898) < 0.003)

let test_run_e9 () =
  let r = Experiment.run_e9 () in
  Alcotest.(check int) "19" 19 r.Experiment.e9_count;
  Alcotest.(check bool) "bound holds" true r.Experiment.e9_all_below_bound;
  Alcotest.(check int) "syscall area" 14 r.Experiment.e9_syscall_area

let test_run_table2_quick () =
  let r = Experiment.run_table2 ~seed:5 ~rounds:10 ~periods_s:[ 8.0; 120.0 ] () in
  match r.Experiment.t2_rows with
  | [ a; b ] ->
      Alcotest.(check int) "10 rounds" 10 (Stats.count a.Experiment.t2_thresholds);
      let ma = Stats.mean a.Experiment.t2_thresholds in
      let mb = Stats.mean b.Experiment.t2_thresholds in
      Alcotest.(check bool) "longer period, larger threshold" true (mb > ma);
      Alcotest.(check bool) "threshold magnitude ~1e-4" true
        (ma > 5e-5 && ma < 8e-4)
  | _ -> Alcotest.fail "two rows expected"

let test_run_e1_within_calibration () =
  let r = Experiment.run_e1 ~seed:3 () in
  let check_stats s =
    Alcotest.(check bool) "range" true
      (Stats.min s >= 2.38e-6 && Stats.max s <= 3.60e-6)
  in
  check_stats r.Experiment.e1_a53;
  check_stats r.Experiment.e1_a57

let test_run_e3_matches_paper_band () =
  let r = Experiment.run_e3 ~seed:3 ~runs:20 () in
  let a53 = Stats.mean r.Experiment.e3_a53 and a57 = Stats.mean r.Experiment.e3_a57 in
  Alcotest.(check bool) "A53 near 5.8ms" true (Float.abs (a53 -. 5.80e-3) < 3e-4);
  Alcotest.(check bool) "A57 near 4.96ms" true (Float.abs (a57 -. 4.96e-3) < 3e-4)

let suite =
  [
    Alcotest.test_case "evader beats baseline (E8)" `Slow test_evader_beats_baseline;
    Alcotest.test_case "satin beats evader (E10)" `Slow test_satin_beats_evader;
    Alcotest.test_case "prober faithful vs satin" `Slow test_prober_faithful_against_satin;
    Alcotest.test_case "campaign deterministic" `Slow test_campaign_deterministic;
    Alcotest.test_case "run_e10 quick" `Slow test_run_e10_quick;
    Alcotest.test_case "run_e7" `Quick test_run_e7;
    Alcotest.test_case "run_e9" `Quick test_run_e9;
    Alcotest.test_case "run_table2 quick" `Quick test_run_table2_quick;
    Alcotest.test_case "run_e1 calibration" `Quick test_run_e1_within_calibration;
    Alcotest.test_case "run_e3 band" `Quick test_run_e3_matches_paper_band;
  ]
