(* CPU, GIC, timer, monitor, and platform assembly tests. *)

open Satin_hw
open Satin_engine

let juno () = Platform.juno_r1 ~seed:7 ()

let test_juno_shape () =
  let p = juno () in
  Alcotest.(check int) "six cores" 6 (Platform.ncores p);
  Alcotest.(check int) "four LITTLE" 4
    (List.length (Platform.cores_of_type p Cycle_model.A53));
  Alcotest.(check int) "two big" 2
    (List.length (Platform.cores_of_type p Cycle_model.A57));
  Alcotest.(check int) "core ids" 3 (Cpu.id (Platform.core p 3));
  Alcotest.(check bool) "all boot in normal world" true
    (Array.for_all (fun c -> not (Cpu.in_secure c)) p.Platform.cores)

let test_cpu_world_accounting () =
  let p = juno () in
  let c = Platform.core p 0 in
  let engine = p.Platform.engine in
  Cpu.set_world c World.Secure;
  Alcotest.(check int) "one entry" 1 (Cpu.secure_entries c);
  Engine.run_until engine (Sim_time.ms 3);
  Cpu.set_world c World.Normal;
  Alcotest.(check int) "secure time" (Sim_time.ms 3) (Cpu.secure_time_total c);
  Alcotest.(check (option int)) "exit time" (Some (Sim_time.ms 3)) (Cpu.last_exit_time c);
  (* Redundant transition is a no-op. *)
  Cpu.set_world c World.Normal;
  Alcotest.(check int) "still one entry" 1 (Cpu.secure_entries c)

let test_cpu_hooks () =
  let p = juno () in
  let c = Platform.core p 1 in
  let log = ref [] in
  Cpu.on_world_change c (fun _ w -> log := ("first", w) :: !log);
  Cpu.on_world_change c (fun _ w -> log := ("second", w) :: !log);
  Cpu.set_world c World.Secure;
  Alcotest.(check int) "both hooks" 2 (List.length !log);
  (match List.rev !log with
  | ("first", World.Secure) :: ("second", World.Secure) :: _ -> ()
  | _ -> Alcotest.fail "registration order not preserved")

let test_gic_secure_always_delivered () =
  let p = juno () in
  let hits = ref 0 in
  Gic.set_secure_handler p.Platform.gic ~irq:Platform.secure_timer_irq
    (fun ~core:_ -> incr hits);
  (* Even when the core is in the normal world. *)
  Gic.raise_irq p.Platform.gic ~core:0 ~world_of_core:World.Normal
    ~irq:Platform.secure_timer_irq;
  Gic.raise_irq p.Platform.gic ~core:0 ~world_of_core:World.Secure
    ~irq:Platform.secure_timer_irq;
  Alcotest.(check int) "secure irq always routed" 2 !hits

let test_gic_ns_pends_while_secure () =
  let p = juno () in
  let hits = ref 0 in
  Gic.set_normal_handler p.Platform.gic ~irq:Platform.tick_irq (fun ~core:_ -> incr hits);
  Gic.raise_irq p.Platform.gic ~core:2 ~world_of_core:World.Secure ~irq:Platform.tick_irq;
  Alcotest.(check int) "pended" 0 !hits;
  Alcotest.(check int) "pending count" 1 (Gic.pending_count p.Platform.gic ~core:2);
  Gic.flush_pending p.Platform.gic ~core:2
    ~world_of_core:(fun () -> Cpu.world (Platform.core p 2));
  Alcotest.(check int) "delivered on flush" 1 !hits;
  Alcotest.(check int) "drained" 0 (Gic.pending_count p.Platform.gic ~core:2);
  Gic.raise_irq p.Platform.gic ~core:2 ~world_of_core:World.Normal ~irq:Platform.tick_irq;
  Alcotest.(check int) "direct delivery in normal world" 2 !hits;
  Alcotest.(check int) "delivery counter" 2
    (Gic.delivered_count p.Platform.gic ~irq:Platform.tick_irq)

let test_gic_undeclared_rejected () =
  let p = juno () in
  try
    Gic.raise_irq p.Platform.gic ~core:0 ~world_of_core:World.Normal ~irq:99;
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let test_timer_fires_at_deadline () =
  let p = juno () in
  let fired_at = ref (-1) in
  Gic.set_secure_handler p.Platform.gic ~irq:Platform.secure_timer_irq
    (fun ~core:_ -> fired_at := Engine.now p.Platform.engine);
  Timer.arm_at p.Platform.secure_timers.(0) (Sim_time.ms 10);
  Alcotest.(check bool) "armed" true (Timer.armed p.Platform.secure_timers.(0));
  Engine.run_until p.Platform.engine (Sim_time.ms 20);
  Alcotest.(check int) "fired at deadline" (Sim_time.ms 10) !fired_at;
  Alcotest.(check bool) "disarmed after fire" false
    (Timer.armed p.Platform.secure_timers.(0));
  Alcotest.(check int) "fired count" 1 (Timer.fired_count p.Platform.secure_timers.(0))

let test_timer_rearm_replaces () =
  let p = juno () in
  let fires = ref [] in
  Gic.set_secure_handler p.Platform.gic ~irq:Platform.secure_timer_irq
    (fun ~core:_ -> fires := Engine.now p.Platform.engine :: !fires);
  let t = p.Platform.secure_timers.(1) in
  Timer.arm_at t (Sim_time.ms 10);
  Timer.arm_at t (Sim_time.ms 30);
  Engine.run_until p.Platform.engine (Sim_time.ms 50);
  Alcotest.(check (list int)) "only the re-armed deadline" [ Sim_time.ms 30 ] !fires

let test_timer_disarm () =
  let p = juno () in
  let fires = ref 0 in
  Gic.set_secure_handler p.Platform.gic ~irq:Platform.secure_timer_irq
    (fun ~core:_ -> incr fires);
  let t = p.Platform.secure_timers.(2) in
  Timer.arm_after t (Sim_time.ms 5);
  Timer.disarm t;
  Engine.run_until p.Platform.engine (Sim_time.ms 50);
  Alcotest.(check int) "never fires" 0 !fires;
  Alcotest.(check bool) "no deadline" true (Timer.deadline t = None)

let test_timer_past_deadline_fires_now () =
  let p = juno () in
  Engine.run_until p.Platform.engine (Sim_time.ms 100);
  let fired_at = ref (-1) in
  Gic.set_secure_handler p.Platform.gic ~irq:Platform.secure_timer_irq
    (fun ~core:_ -> fired_at := Engine.now p.Platform.engine);
  Timer.arm_at p.Platform.secure_timers.(0) (Sim_time.ms 50);
  Engine.run_until p.Platform.engine (Sim_time.ms 200);
  Alcotest.(check int) "clamped to now" (Sim_time.ms 100) !fired_at

let test_monitor_world_switch () =
  let p = juno () in
  let cpu = Platform.core p 4 in
  let payload_ran_at = ref (-1) in
  let exited_at = ref (-1) in
  Monitor.enter_secure p.Platform.monitor ~cpu
    ~payload:(fun () ->
      payload_ran_at := Engine.now p.Platform.engine;
      Alcotest.(check bool) "in secure during payload" true (Cpu.in_secure cpu);
      Sim_time.ms 2)
    ~on_exit:(fun () -> exited_at := Engine.now p.Platform.engine)
    ();
  Alcotest.(check bool) "secure immediately" true (Cpu.in_secure cpu);
  Engine.run_until p.Platform.engine (Sim_time.ms 10);
  Alcotest.(check bool) "back to normal" false (Cpu.in_secure cpu);
  (* Entry latency within the calibrated switch triple. *)
  let entry = Sim_time.to_sec_f !payload_ran_at in
  if entry < 2.38e-6 || entry > 3.60e-6 then
    Alcotest.failf "entry latency out of calibration: %g" entry;
  let total = Sim_time.to_sec_f !exited_at in
  if total < 2.0e-3 then Alcotest.fail "exit before payload duration";
  Alcotest.(check int) "round trips" 1 (Monitor.switches p.Platform.monitor)

let test_monitor_rejects_reentry () =
  let p = juno () in
  let cpu = Platform.core p 0 in
  Monitor.enter_secure p.Platform.monitor ~cpu ~payload:(fun () -> Sim_time.ms 5) ();
  try
    Monitor.enter_secure p.Platform.monitor ~cpu ~payload:(fun () -> Sim_time.zero) ();
    Alcotest.fail "expected reentry rejection"
  with Invalid_argument _ -> ()

let test_monitor_flushes_pended_irqs () =
  let p = juno () in
  let cpu = Platform.core p 3 in
  let tick_hits = ref [] in
  Gic.set_normal_handler p.Platform.gic ~irq:Platform.tick_irq
    (fun ~core -> tick_hits := (core, Engine.now p.Platform.engine) :: !tick_hits);
  Monitor.enter_secure p.Platform.monitor ~cpu ~payload:(fun () -> Sim_time.ms 4) ();
  (* A tick raised mid-introspection pends... *)
  Engine.run_until p.Platform.engine (Sim_time.ms 1);
  Gic.raise_irq p.Platform.gic ~core:3 ~world_of_core:(Cpu.world cpu)
    ~irq:Platform.tick_irq;
  Alcotest.(check int) "pended during secure" 0 (List.length !tick_hits);
  (* ...and is delivered right at world exit. *)
  Engine.run_until p.Platform.engine (Sim_time.ms 10);
  (match !tick_hits with
  | [ (core, time) ] ->
      Alcotest.(check int) "delivered on this core" 3 core;
      Alcotest.(check bool) "after payload end" true (time >= Sim_time.ms 4)
  | l -> Alcotest.failf "expected one delivery, got %d" (List.length l))

let test_split_prng_independent () =
  let p = juno () in
  let a = Platform.split_prng p and b = Platform.split_prng p in
  Alcotest.(check bool) "different streams" false
    (Int64.equal (Prng.next_int64 a) (Prng.next_int64 b))

let suite =
  [
    Alcotest.test_case "juno shape" `Quick test_juno_shape;
    Alcotest.test_case "cpu world accounting" `Quick test_cpu_world_accounting;
    Alcotest.test_case "cpu hooks" `Quick test_cpu_hooks;
    Alcotest.test_case "gic secure always delivered" `Quick test_gic_secure_always_delivered;
    Alcotest.test_case "gic ns pends in secure" `Quick test_gic_ns_pends_while_secure;
    Alcotest.test_case "gic undeclared rejected" `Quick test_gic_undeclared_rejected;
    Alcotest.test_case "timer fires at deadline" `Quick test_timer_fires_at_deadline;
    Alcotest.test_case "timer rearm replaces" `Quick test_timer_rearm_replaces;
    Alcotest.test_case "timer disarm" `Quick test_timer_disarm;
    Alcotest.test_case "timer past deadline" `Quick test_timer_past_deadline_fires_now;
    Alcotest.test_case "monitor world switch" `Quick test_monitor_world_switch;
    Alcotest.test_case "monitor rejects reentry" `Quick test_monitor_rejects_reentry;
    Alcotest.test_case "monitor flushes pended irqs" `Quick test_monitor_flushes_pended_irqs;
    Alcotest.test_case "split prng" `Quick test_split_prng_independent;
  ]
