open Satin_engine

(* Drain the queue, asserting the 100M-event guard was not what stopped it. *)
let drain e =
  match Engine.run_all e () with
  | Engine.Drained -> ()
  | Engine.Limit_hit -> Alcotest.fail "run_all hit its event limit"

let test_clock_starts_zero () =
  let e = Engine.create () in
  Alcotest.(check int) "boot time" 0 (Engine.now e)

let test_schedule_and_run () =
  let e = Engine.create () in
  let fired = ref [] in
  ignore (Engine.schedule e ~after:(Sim_time.ms 5) (fun () -> fired := 5 :: !fired));
  ignore (Engine.schedule e ~after:(Sim_time.ms 1) (fun () -> fired := 1 :: !fired));
  drain e;
  Alcotest.(check (list int)) "fired in time order" [ 1; 5 ] (List.rev !fired);
  Alcotest.(check int) "clock at last event" (Sim_time.ms 5) (Engine.now e)

let test_run_until_advances_clock () =
  let e = Engine.create () in
  Engine.run_until e (Sim_time.s 3);
  Alcotest.(check int) "clock advanced with empty queue" (Sim_time.s 3) (Engine.now e)

let test_run_until_inclusive () =
  let e = Engine.create () in
  let hits = ref 0 in
  ignore (Engine.schedule e ~after:(Sim_time.s 1) (fun () -> incr hits));
  ignore (Engine.schedule e ~after:(Sim_time.s 2) (fun () -> incr hits));
  Engine.run_until e (Sim_time.s 1);
  Alcotest.(check int) "boundary event fires" 1 !hits;
  Engine.run_until e (Sim_time.s 5);
  Alcotest.(check int) "rest fires" 2 !hits

let test_now_visible_in_callback () =
  let e = Engine.create () in
  let seen = ref 0 in
  ignore (Engine.schedule e ~after:(Sim_time.us 7) (fun () -> seen := Engine.now e));
  drain e;
  Alcotest.(check int) "now inside callback" (Sim_time.us 7) !seen

let test_nested_scheduling () =
  let e = Engine.create () in
  let log = ref [] in
  ignore
    (Engine.schedule e ~after:1 (fun () ->
         log := "outer" :: !log;
         ignore (Engine.schedule e ~after:1 (fun () -> log := "inner" :: !log))));
  drain e;
  Alcotest.(check (list string)) "nested" [ "outer"; "inner" ] (List.rev !log);
  Alcotest.(check int) "clock" 2 (Engine.now e)

let test_cancel () =
  let e = Engine.create () in
  let hit = ref false in
  let h = Engine.schedule e ~after:1 (fun () -> hit := true) in
  Engine.cancel e h;
  drain e;
  Alcotest.(check bool) "cancelled never fires" false !hit

let test_schedule_in_past_rejected () =
  let e = Engine.create () in
  Alcotest.check_raises "negative delay" Engine.Schedule_in_past (fun () ->
      ignore (Engine.schedule e ~after:(-1) (fun () -> ())));
  Engine.run_until e (Sim_time.s 1);
  Alcotest.check_raises "absolute past" Engine.Schedule_in_past (fun () ->
      ignore (Engine.at e ~time:(Sim_time.ms 500) (fun () -> ())))

let test_every () =
  let e = Engine.create () in
  let hits = ref 0 in
  let handle = Engine.every e ~period:(Sim_time.ms 10) (fun () -> incr hits) in
  Engine.run_until e (Sim_time.ms 35);
  Alcotest.(check int) "three periods" 3 !hits;
  Engine.cancel e !handle;
  Engine.run_until e (Sim_time.ms 100);
  Alcotest.(check int) "stopped" 3 !hits

let test_every_with_start () =
  let e = Engine.create () in
  let times = ref [] in
  ignore
    (Engine.every e ~period:(Sim_time.ms 10) ~start:(Sim_time.ms 5) (fun () ->
         times := Engine.now e :: !times));
  Engine.run_until e (Sim_time.ms 26);
  Alcotest.(check (list int)) "start offset respected"
    [ Sim_time.ms 5; Sim_time.ms 15; Sim_time.ms 25 ]
    (List.rev !times)


let test_every_cancel_from_callback () =
  (* The .mli contract: cancelling the returned ref from inside the callback
     stops the recurrence. *)
  let e = Engine.create () in
  let hits = ref 0 in
  let handle = ref (Obj.magic 0) in
  handle :=
    Engine.every e ~period:(Sim_time.ms 10) (fun () ->
        incr hits;
        if !hits = 3 then Engine.cancel e !(!handle));
  Engine.run_until e (Sim_time.ms 200);
  Alcotest.(check int) "stopped from inside" 3 !hits

let test_every_no_throwaway_entry () =
  (* Regression: [every] used to push a placeholder event just to have a
     handle for the ref, leaking one dead entry per recurrence set up. The
     only pending event must be the first real occurrence. *)
  let e = Engine.create () in
  ignore (Engine.every e ~period:(Sim_time.ms 10) (fun () -> ()));
  Alcotest.(check int) "exactly one pending event" 1 (Engine.pending e)

let test_every_past_start_raises () =
  let e = Engine.create () in
  Engine.run_until e (Sim_time.ms 100);
  Alcotest.check_raises "past start rejected"
    (Invalid_argument "Engine.every: ~start is in the past") (fun () ->
      ignore
        (Engine.every e ~period:(Sim_time.ms 10) ~start:(Sim_time.ms 50)
           (fun () -> ())));
  (* A rejected recurrence must not leave a pending event behind. *)
  Alcotest.(check int) "nothing scheduled" 0 (Engine.pending e)

let test_every_start_now_allowed () =
  (* ~start = now is the boundary: allowed, fires immediately. *)
  let e = Engine.create () in
  Engine.run_until e (Sim_time.ms 5);
  let hits = ref 0 in
  ignore
    (Engine.every e ~period:(Sim_time.ms 10) ~start:(Sim_time.ms 5) (fun () ->
         incr hits));
  Engine.run_until e (Sim_time.ms 5);
  Alcotest.(check int) "fires at start=now" 1 !hits

let test_step () =
  let e = Engine.create () in
  ignore (Engine.schedule e ~after:1 (fun () -> ()));
  Alcotest.(check bool) "step true" true (Engine.step e);
  Alcotest.(check bool) "step false when empty" false (Engine.step e)

let test_run_all_limit () =
  let e = Engine.create () in
  let rec reschedule () = ignore (Engine.schedule e ~after:1 reschedule) in
  reschedule ();
  (match Engine.run_all e ~limit:100 () with
  | Engine.Limit_hit -> ()
  | Engine.Drained -> Alcotest.fail "self-rescheduling queue reported Drained");
  Alcotest.(check int) "bounded by limit" 100 (Engine.now e);
  Alcotest.(check bool) "work still pending" true (Engine.pending e > 0)

let test_run_all_outcomes () =
  (* Exactly [limit] events with nothing left over is a drain, not a hit. *)
  let e = Engine.create () in
  for i = 1 to 10 do
    ignore (Engine.schedule e ~after:i (fun () -> ()))
  done;
  (match Engine.run_all e ~limit:10 () with
  | Engine.Drained -> ()
  | Engine.Limit_hit -> Alcotest.fail "exact drain misreported as Limit_hit");
  (* An empty queue drains trivially. *)
  match Engine.run_all e () with
  | Engine.Drained -> ()
  | Engine.Limit_hit -> Alcotest.fail "empty queue hit a limit"

let test_every_rearm_allocation_free () =
  (* Satellite of the timing-wheel PR: a pure periodic-timer workload must
     stay within 2 minor words per event in steady state — the re-arm goes
     through the wheel's O(1) insert and [run_until]'s batched dispatch,
     neither of which allocates once warm. *)
  let e = Engine.create () in
  let hits = ref 0 in
  ignore (Engine.every e ~period:(Sim_time.us 1) (fun () -> incr hits));
  (* Warm-up: slot-table growth, closure knots, first cascades. *)
  Engine.run_until e (Sim_time.ms 1);
  let c0 = !hits in
  let w0 = Gc.minor_words () in
  Engine.run_until e (Sim_time.ms 11);
  let events = !hits - c0 in
  let per_event = (Gc.minor_words () -. w0) /. float_of_int events in
  Alcotest.(check bool) "fired plenty" true (events >= 9_000);
  if per_event > 2.0 then
    Alcotest.failf "periodic re-arm allocates %.2f words/event (want <= 2)"
      per_event

let test_pending () =
  let e = Engine.create () in
  Alcotest.(check int) "empty" 0 (Engine.pending e);
  let h = Engine.schedule e ~after:1 (fun () -> ()) in
  ignore (Engine.schedule e ~after:2 (fun () -> ()));
  Alcotest.(check int) "two" 2 (Engine.pending e);
  Engine.cancel e h;
  Alcotest.(check int) "one after cancel" 1 (Engine.pending e)

let suite =
  [
    Alcotest.test_case "clock starts at zero" `Quick test_clock_starts_zero;
    Alcotest.test_case "schedule and run" `Quick test_schedule_and_run;
    Alcotest.test_case "run_until advances clock" `Quick test_run_until_advances_clock;
    Alcotest.test_case "run_until inclusive" `Quick test_run_until_inclusive;
    Alcotest.test_case "now visible in callback" `Quick test_now_visible_in_callback;
    Alcotest.test_case "nested scheduling" `Quick test_nested_scheduling;
    Alcotest.test_case "cancel" `Quick test_cancel;
    Alcotest.test_case "past rejected" `Quick test_schedule_in_past_rejected;
    Alcotest.test_case "every" `Quick test_every;
    Alcotest.test_case "every with start" `Quick test_every_with_start;
    Alcotest.test_case "every cancel from callback" `Quick test_every_cancel_from_callback;
    Alcotest.test_case "every: no throwaway entry" `Quick
      test_every_no_throwaway_entry;
    Alcotest.test_case "every: past start raises" `Quick
      test_every_past_start_raises;
    Alcotest.test_case "every: start=now allowed" `Quick
      test_every_start_now_allowed;
    Alcotest.test_case "step" `Quick test_step;
    Alcotest.test_case "run_all limit" `Quick test_run_all_limit;
    Alcotest.test_case "run_all outcomes" `Quick test_run_all_outcomes;
    Alcotest.test_case "every: re-arm allocation-free" `Quick
      test_every_rearm_allocation_free;
    Alcotest.test_case "pending" `Quick test_pending;
  ]
