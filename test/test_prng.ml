open Satin_engine

let test_determinism () =
  let a = Prng.create 7 and b = Prng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_seed_independence () =
  let a = Prng.create 1 and b = Prng.create 2 in
  let same = ref 0 in
  for _ = 1 to 100 do
    if Int64.equal (Prng.next_int64 a) (Prng.next_int64 b) then incr same
  done;
  Alcotest.(check int) "distinct streams" 0 !same

let test_copy_replays () =
  let a = Prng.create 3 in
  ignore (Prng.next_int64 a);
  let b = Prng.copy a in
  Alcotest.(check int64) "copy replays" (Prng.next_int64 a) (Prng.next_int64 b)

let test_split_diverges () =
  let a = Prng.create 5 in
  let b = Prng.split a in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Int64.equal (Prng.next_int64 a) (Prng.next_int64 b) then incr same
  done;
  Alcotest.(check int) "split independent" 0 !same

let test_float01_range () =
  let p = Prng.create 11 in
  for _ = 1 to 10_000 do
    let x = Prng.float01 p in
    if x < 0.0 || x >= 1.0 then Alcotest.failf "float01 out of range: %f" x
  done

let test_float01_mean () =
  let p = Prng.create 13 in
  let sum = ref 0.0 in
  let n = 100_000 in
  for _ = 1 to n do
    sum := !sum +. Prng.float01 p
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 0.5) > 0.01 then Alcotest.failf "mean off: %f" mean

let test_int_bounds () =
  let p = Prng.create 17 in
  for _ = 1 to 10_000 do
    let x = Prng.int p 7 in
    if x < 0 || x >= 7 then Alcotest.failf "int out of bound: %d" x
  done;
  (* power of two path *)
  for _ = 1 to 1_000 do
    let x = Prng.int p 8 in
    if x < 0 || x >= 8 then Alcotest.failf "int pow2 out of bound: %d" x
  done

let test_int_uniform () =
  let p = Prng.create 19 in
  let counts = Array.make 5 0 in
  let n = 50_000 in
  for _ = 1 to n do
    let x = Prng.int p 5 in
    counts.(x) <- counts.(x) + 1
  done;
  Array.iteri
    (fun i c ->
      let frac = float_of_int c /. float_of_int n in
      if Float.abs (frac -. 0.2) > 0.02 then
        Alcotest.failf "bucket %d skewed: %f" i frac)
    counts

let test_gaussian_moments () =
  let p = Prng.create 23 in
  let n = 100_000 in
  let sum = ref 0.0 and ss = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.gaussian p ~mu:3.0 ~sigma:2.0 in
    sum := !sum +. x;
    ss := !ss +. (x *. x)
  done;
  let mean = !sum /. float_of_int n in
  let var = (!ss /. float_of_int n) -. (mean *. mean) in
  if Float.abs (mean -. 3.0) > 0.05 then Alcotest.failf "gaussian mean %f" mean;
  if Float.abs (var -. 4.0) > 0.15 then Alcotest.failf "gaussian var %f" var

let test_exponential_mean () =
  let p = Prng.create 29 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.exponential p ~mean:0.5 in
    if x < 0.0 then Alcotest.fail "exponential negative";
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  if Float.abs (mean -. 0.5) > 0.02 then Alcotest.failf "exp mean %f" mean

let test_triangular_support_and_mean () =
  let p = Prng.create 31 in
  let n = 100_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    let x = Prng.triangular p ~low:1.0 ~mode:2.0 ~high:4.0 in
    if x < 1.0 || x > 4.0 then Alcotest.failf "triangular out of support: %f" x;
    sum := !sum +. x
  done;
  let mean = !sum /. float_of_int n in
  (* mean of triangular = (low + mode + high) / 3 *)
  if Float.abs (mean -. (7.0 /. 3.0)) > 0.02 then Alcotest.failf "tri mean %f" mean

let test_pareto_support () =
  let p = Prng.create 37 in
  for _ = 1 to 10_000 do
    let x = Prng.pareto p ~scale:2.0 ~shape:3.0 in
    if x < 2.0 then Alcotest.failf "pareto below scale: %f" x
  done

let test_shuffle_permutation () =
  let p = Prng.create 41 in
  let a = Array.init 50 Fun.id in
  Prng.shuffle p a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_bernoulli_extremes () =
  let p = Prng.create 43 in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=0 never" false (Prng.bernoulli p 0.0)
  done;
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1 always" true (Prng.bernoulli p 1.0)
  done

let test_sim_duration_positive () =
  let p = Prng.create 47 in
  for _ = 1 to 1_000 do
    let d = Prng.sim_duration p ~mean_s:1e-6 ~jitter:0.5 in
    if d <= 0 then Alcotest.fail "sim_duration not positive"
  done

let prop_pick_member =
  QCheck.Test.make ~name:"pick returns a member"
    QCheck.(array_of_size Gen.(1 -- 20) small_int)
    (fun a ->
      let p = Prng.create 53 in
      Array.mem (Prng.pick p a) a)

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "seed independence" `Quick test_seed_independence;
    Alcotest.test_case "copy replays" `Quick test_copy_replays;
    Alcotest.test_case "split diverges" `Quick test_split_diverges;
    Alcotest.test_case "float01 range" `Quick test_float01_range;
    Alcotest.test_case "float01 mean" `Slow test_float01_mean;
    Alcotest.test_case "int bounds" `Quick test_int_bounds;
    Alcotest.test_case "int uniformity" `Slow test_int_uniform;
    Alcotest.test_case "gaussian moments" `Slow test_gaussian_moments;
    Alcotest.test_case "exponential mean" `Slow test_exponential_mean;
    Alcotest.test_case "triangular support+mean" `Slow test_triangular_support_and_mean;
    Alcotest.test_case "pareto support" `Quick test_pareto_support;
    Alcotest.test_case "shuffle permutation" `Quick test_shuffle_permutation;
    Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
    Alcotest.test_case "sim_duration positive" `Quick test_sim_duration_positive;
    QCheck_alcotest.to_alcotest prop_pick_member;
  ]
