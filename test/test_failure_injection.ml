(* Adversarial and degraded-environment scenarios: what breaks each side of
   the race when its assumptions are violated. *)

module Scenario = Satin.Scenario
open Satin_engine
module Platform = Satin_hw.Platform
module Cpu = Satin_hw.Cpu
module World = Satin_hw.World
module Task = Satin_kernel.Task
module Kernel = Satin_kernel.Kernel
module Satin_def = Satin_introspect.Satin
module Round = Satin_introspect.Round
module Kprober = Satin_attack.Kprober
module Board = Satin_attack.Board
module Evader = Satin_attack.Evader
module Rootkit = Satin_attack.Rootkit

let run s d = Scenario.run_for s d

(* An equal-priority SCHED_FIFO hog starves KProber-II on one core: FIFO
   tasks run until they sleep, so the probe thread never gets the CPU and
   the other comparers flag the core exactly as if it had gone secure — the
   prober cannot tell starvation from introspection (§III-B2's reliability
   caveat, inverted). *)
let test_rt_hog_starves_kprober () =
  let s = Scenario.create ~seed:91 () in
  let prober = Kprober.deploy s.Scenario.kernel Kprober.default_config in
  run s (Sim_time.ms 20);
  Alcotest.(check bool) "quiet before" false (Kprober.suspected_any prober);
  let hog =
    Task.create ~name:"rt-hog" ~policy:(Task.Rt_fifo Task.rt_priority_max)
      ~affinity:2
      ~body:(fun _ ->
        { Task.cpu = Sim_time.ms 50; after = (fun () -> Task.Reenter) })
      ()
  in
  Kernel.spawn s.Scenario.kernel hog;
  run s (Sim_time.ms 20);
  Alcotest.(check bool) "starved core flagged as 'secure'" true
    (Kprober.suspected prober ~core:2);
  Alcotest.(check bool) "other cores unaffected" false
    (Kprober.suspected prober ~core:0);
  Kprober.retire prober

(* A *higher*-priority probe thread is immune to the same hog: priority 99
   beats 98 (why KProber-II claims the RT ceiling). *)
let test_kprober_survives_lower_rt_load () =
  let s = Scenario.create ~seed:92 () in
  let prober = Kprober.deploy s.Scenario.kernel Kprober.default_config in
  let hog =
    Task.create ~name:"rt-hog98" ~policy:(Task.Rt_fifo 98) ~affinity:2
      ~body:(fun _ ->
        { Task.cpu = Sim_time.ms 50; after = (fun () -> Task.Reenter) })
      ()
  in
  Kernel.spawn s.Scenario.kernel hog;
  run s (Sim_time.s 1);
  Alcotest.(check bool) "no false suspicion under prio-98 load" false
    (Kprober.suspected_any prober);
  Kprober.retire prober

(* CFS overload does not disturb KProber-II at all. *)
let test_kprober_immune_to_cfs_storm () =
  let s = Scenario.create ~seed:93 () in
  let prober = Kprober.deploy s.Scenario.kernel Kprober.default_config in
  for core = 0 to 5 do
    for _ = 1 to 4 do
      ignore (Kernel.spawn_spinner s.Scenario.kernel ~core)
    done
  done;
  run s (Sim_time.s 2);
  Alcotest.(check bool) "no suspicion under CFS storm" false
    (Kprober.suspected_any prober);
  (* Reports kept flowing at full rate. *)
  for core = 0 to 5 do
    Alcotest.(check bool) "reporting" true
      (Board.reports_count (Kprober.board prober) ~core > 9_000)
  done;
  Kprober.retire prober

(* SATIN keeps its coverage guarantee while the machine is saturated: the
   secure timer and the monitor do not care what the rich OS is running. *)
let test_satin_unaffected_by_overload () =
  let s = Scenario.create ~seed:94 () in
  for core = 0 to 5 do
    for _ = 1 to 3 do
      ignore (Kernel.spawn_spinner s.Scenario.kernel ~core)
    done
  done;
  let satin =
    Scenario.install_satin s
      ~config:{ Satin_def.default_config with Satin_def.t_goal = Sim_time.s 19 }
      ()
  in
  run s (Sim_time.s 21);
  Satin_def.stop satin;
  Alcotest.(check bool) "a full pass under load" true (Satin_def.full_passes satin >= 1)

(* The evader's cleanup races correctly even when its cleanup core is the
   one taken by the introspection: the hide still completes (kernel code on
   another core would do it in reality; here the model is timing-only), and
   detection still lands because the area scan beats the restore. *)
let test_round_on_cleanup_core () =
  let s = Scenario.create ~seed:95 () in
  let satin =
    Scenario.install_satin s
      ~config:
        {
          Satin_def.default_config with
          Satin_def.t_goal = Sim_time.s 19;
          randomize_core = false (* every round on core 0 *);
        }
      ()
  in
  let evader =
    Evader.deploy s.Scenario.kernel
      {
        Evader.default_config with
        cleanup_core = 0 (* same core the defender always takes *);
        prober = { Kprober.default_config with period = Sim_time.us 500 };
      }
  in
  Evader.start evader;
  run s (Sim_time.s 40);
  Satin_def.stop satin;
  Evader.stop evader;
  let area14 =
    List.filter (fun r -> r.Round.area_index = 14) (Satin_def.rounds satin)
  in
  Alcotest.(check bool) "area 14 rounds happened" true (List.length area14 >= 1);
  List.iter
    (fun r -> Alcotest.(check bool) "still detected" true (Round.detected r))
    area14

(* Secure-world starvation of the rich OS: hold every core secure at once
   (the suspension SATIN avoids); all pinned tasks stall; unpinned wake-ups
   fall back without crashing. *)
let test_all_cores_secure_freeze () =
  let s = Scenario.create ~seed:96 () in
  let t = Kernel.spawn_spinner s.Scenario.kernel ~core:0 in
  run s (Sim_time.ms 50);
  let before = Task.cpu_time t in
  Array.iter (fun c -> Cpu.set_world c World.Secure) s.Scenario.platform.Platform.cores;
  run s (Sim_time.ms 100);
  Alcotest.(check bool) "whole rich OS frozen" true
    (Sim_time.diff (Task.cpu_time t) before < Sim_time.ms 1);
  Array.iter (fun c -> Cpu.set_world c World.Normal) s.Scenario.platform.Platform.cores;
  run s (Sim_time.ms 100);
  Alcotest.(check bool) "resumes" true
    (Sim_time.diff (Task.cpu_time t) before > Sim_time.ms 90)

(* Property: SATIN on synthetic kernels — a persistent modification planted
   at a uniformly random location is detected within one full pass, for any
   layout whose areas respect the bound. *)
let prop_satin_detects_anywhere =
  QCheck.Test.make ~name:"satin detects a persistent tamper anywhere" ~count:8
    QCheck.(pair (int_range 3 9) (int_bound 1_000_000))
    (fun (areas, loc_seed) ->
      let layout =
        Satin_kernel.Layout.synthetic ~base:(2 * 1024 * 1024)
          ~total_size:2_000_000 ~areas ~seed:(areas * 7)
      in
      let s = Scenario.create ~seed:(areas + loc_seed) ~layout () in
      let satin =
        Scenario.install_satin s
          ~config:
            {
              Satin_def.default_config with
              Satin_def.t_goal = Sim_time.s areas (* tp = 1 s *);
            }
          ()
      in
      (* Plant 8 persistent bytes at a random offset in the image. *)
      let base = Satin_kernel.Layout.base layout in
      let total = Satin_kernel.Layout.total_size layout in
      let addr = base + (loc_seed mod (total - 8)) in
      let rk =
        Rootkit.create s.Scenario.kernel ~target_addr:addr ~cleanup_core:0 ()
      in
      Rootkit.arm rk;
      (* Two passes of margin. *)
      run s (Sim_time.s (2 * areas + 2));
      Satin_def.stop satin;
      Satin_def.detections satin >= 1)

let suite =
  [
    Alcotest.test_case "rt hog starves kprober" `Quick test_rt_hog_starves_kprober;
    Alcotest.test_case "kprober survives lower-prio rt" `Quick
      test_kprober_survives_lower_rt_load;
    Alcotest.test_case "kprober immune to cfs storm" `Quick
      test_kprober_immune_to_cfs_storm;
    Alcotest.test_case "satin unaffected by overload" `Quick
      test_satin_unaffected_by_overload;
    Alcotest.test_case "round on cleanup core" `Quick test_round_on_cleanup_core;
    Alcotest.test_case "all cores secure = freeze" `Quick test_all_cores_secure_freeze;
    QCheck_alcotest.to_alcotest prop_satin_detects_anywhere;
  ]
