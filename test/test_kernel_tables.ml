(* Syscall table and exception vector table. *)

open Satin_kernel
open Satin_hw

let setup () =
  let memory = Memory.create ~size:(32 * 1024 * 1024) in
  let layout = Layout.paper_layout () in
  ignore (Layout.install layout memory ~seed:1);
  memory, layout

let test_entry_addr () =
  let memory, layout = setup () in
  let tbl = Syscall_table.create memory layout in
  Alcotest.(check int) "entries" 400 (Syscall_table.entries tbl);
  let base = (Layout.syscall_table layout).Layout.sym_addr in
  Alcotest.(check int) "entry 0" base (Syscall_table.entry_addr tbl 0);
  Alcotest.(check int) "entry 178" (base + (178 * 8)) (Syscall_table.entry_addr tbl 178);
  Alcotest.(check int) "gettid addr" (base + (178 * 8)) (Syscall_table.gettid_addr tbl);
  (try
     ignore (Syscall_table.entry_addr tbl 400);
     Alcotest.fail "out of range accepted"
   with Invalid_argument _ -> ())

let test_entry_roundtrip () =
  let memory, layout = setup () in
  let tbl = Syscall_table.create memory layout in
  Syscall_table.write_entry tbl ~world:World.Normal 7 0x1122334455667788L;
  Alcotest.(check int64) "roundtrip" 0x1122334455667788L
    (Syscall_table.read_entry tbl ~world:World.Normal 7);
  (* Little-endian layout in memory. *)
  Alcotest.(check int) "LSB first" 0x88
    (Memory.read_byte memory ~world:World.Normal ~addr:(Syscall_table.entry_addr tbl 7))

let test_vector_hijack_restore () =
  let memory, layout = setup () in
  let vt = Vector_table.create memory layout in
  Alcotest.(check int) "irq vector offset" 0x280 Vector_table.irq_el1_offset;
  Alcotest.(check int) "irq vector addr" (Vector_table.base vt + 0x280)
    (Vector_table.irq_vector_addr vt);
  Alcotest.(check bool) "pristine" false (Vector_table.irq_hijacked vt);
  let original =
    Memory.read_bytes memory ~world:World.Secure ~addr:(Vector_table.irq_vector_addr vt)
      ~len:8
  in
  Vector_table.hijack_irq vt ~world:World.Normal;
  Alcotest.(check bool) "hijacked" true (Vector_table.irq_hijacked vt);
  Alcotest.(check bool) "bytes changed" false
    (Bytes.equal original
       (Memory.read_bytes memory ~world:World.Secure
          ~addr:(Vector_table.irq_vector_addr vt) ~len:8));
  Vector_table.restore_irq vt ~world:World.Normal;
  Alcotest.(check bool) "restored" false (Vector_table.irq_hijacked vt);
  Alcotest.(check bool) "bytes back" true
    (Bytes.equal original
       (Memory.read_bytes memory ~world:World.Secure
          ~addr:(Vector_table.irq_vector_addr vt) ~len:8))

let test_vector_hijack_idempotent () =
  let memory, layout = setup () in
  let vt = Vector_table.create memory layout in
  let original =
    Memory.read_bytes memory ~world:World.Secure ~addr:(Vector_table.irq_vector_addr vt)
      ~len:8
  in
  Vector_table.hijack_irq vt ~world:World.Normal;
  Vector_table.hijack_irq vt ~world:World.Normal;
  Vector_table.restore_irq vt ~world:World.Normal;
  Alcotest.(check bool) "double hijack keeps original" true
    (Bytes.equal original
       (Memory.read_bytes memory ~world:World.Secure
          ~addr:(Vector_table.irq_vector_addr vt) ~len:8))

let test_restore_without_hijack_noop () =
  let memory, layout = setup () in
  let vt = Vector_table.create memory layout in
  Vector_table.restore_irq vt ~world:World.Normal (* must not raise *)

let suite =
  [
    Alcotest.test_case "entry addressing" `Quick test_entry_addr;
    Alcotest.test_case "entry roundtrip" `Quick test_entry_roundtrip;
    Alcotest.test_case "vector hijack/restore" `Quick test_vector_hijack_restore;
    Alcotest.test_case "hijack idempotent" `Quick test_vector_hijack_idempotent;
    Alcotest.test_case "restore noop" `Quick test_restore_without_hijack_noop;
  ]
