(* Secure memory carve-out and TSP dispatcher. *)

open Satin_tz
open Satin_hw
open Satin_engine

let setup () =
  let platform = Platform.juno_r1 ~seed:3 () in
  let smem =
    Secure_memory.create ~memory:platform.Platform.memory
      ~base:(24 * 1024 * 1024) ~size:4096
  in
  platform, smem

let test_region_is_secure () =
  let platform, smem = setup () in
  let r = Secure_memory.region smem in
  Alcotest.(check string) "name" "tz_secure_ram" r.Memory.name;
  Alcotest.(check bool) "secure" true (r.Memory.security = Memory.Secure_region);
  (* The normal world cannot read it — the property SATIN's queue rests on. *)
  try
    ignore
      (Memory.read_byte platform.Platform.memory ~world:World.Normal
         ~addr:(24 * 1024 * 1024));
    Alcotest.fail "normal world read a secure cell"
  with Memory.Access_violation _ -> ()

let test_cell_roundtrip () =
  let _, smem = setup () in
  let c = Secure_memory.alloc smem ~name:"queue" ~slots:4 in
  Alcotest.(check int) "slots" 4 (Secure_memory.slots c);
  Secure_memory.set smem c 0 42L;
  Secure_memory.set smem c 3 (-1L);
  Alcotest.(check int64) "slot 0" 42L (Secure_memory.get smem c 0);
  Alcotest.(check int64) "slot 3" (-1L) (Secure_memory.get smem c 3);
  Alcotest.(check int64) "untouched slot zero" 0L (Secure_memory.get smem c 1)

let test_cell_time_roundtrip () =
  let _, smem = setup () in
  let c = Secure_memory.alloc smem ~name:"times" ~slots:2 in
  Secure_memory.set_time smem c 0 (Sim_time.ms 17);
  Alcotest.(check int) "time roundtrip" (Sim_time.ms 17) (Secure_memory.get_time smem c 0)

let test_alloc_accounting_and_limits () =
  let _, smem = setup () in
  ignore (Secure_memory.alloc smem ~name:"a" ~slots:8);
  Alcotest.(check int) "used bytes" 64 (Secure_memory.used_bytes smem);
  (try
     ignore (Secure_memory.alloc smem ~name:"a" ~slots:1);
     Alcotest.fail "duplicate name accepted"
   with Invalid_argument _ -> ());
  (try
     ignore (Secure_memory.alloc smem ~name:"huge" ~slots:10_000);
     Alcotest.fail "over-allocation accepted"
   with Invalid_argument _ -> ());
  try
    let c = Secure_memory.alloc smem ~name:"b" ~slots:1 in
    ignore (Secure_memory.get smem c 1);
    Alcotest.fail "oob index accepted"
  with Invalid_argument _ -> ()

let test_tsp_dispatch () =
  let platform, _ = setup () in
  let tsp = Tsp.install platform in
  let hits = ref [] in
  Tsp.set_timer_handler tsp (fun ~core -> hits := core :: !hits);
  Timer.arm_after platform.Platform.secure_timers.(2) (Sim_time.ms 1);
  Timer.arm_after platform.Platform.secure_timers.(5) (Sim_time.ms 2);
  Engine.run_until platform.Platform.engine (Sim_time.ms 10);
  Alcotest.(check (list int)) "dispatched per core" [ 2; 5 ] (List.rev !hits);
  Alcotest.(check int) "taken count" 2 (Tsp.timer_interrupts_taken tsp)

let test_tsp_default_handler_ignores () =
  let platform, _ = setup () in
  let tsp = Tsp.install platform in
  Timer.arm_after platform.Platform.secure_timers.(0) (Sim_time.ms 1);
  Engine.run_until platform.Platform.engine (Sim_time.ms 10);
  Alcotest.(check int) "taken without handler" 1 (Tsp.timer_interrupts_taken tsp)

let suite =
  [
    Alcotest.test_case "region is secure" `Quick test_region_is_secure;
    Alcotest.test_case "cell roundtrip" `Quick test_cell_roundtrip;
    Alcotest.test_case "cell time roundtrip" `Quick test_cell_time_roundtrip;
    Alcotest.test_case "alloc limits" `Quick test_alloc_accounting_and_limits;
    Alcotest.test_case "tsp dispatch" `Quick test_tsp_dispatch;
    Alcotest.test_case "tsp default handler" `Quick test_tsp_default_handler_ignores;
  ]
