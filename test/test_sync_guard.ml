(* Synchronous introspection, its bypass, and why the async layer matters. *)

module Scenario = Satin.Scenario
open Satin_engine
module Memory = Satin_hw.Memory
module World = Satin_hw.World
module Sync_guard = Satin_introspect.Sync_guard
module Satin_def = Satin_introspect.Satin
module Round = Satin_introspect.Round
module Rootkit = Satin_attack.Rootkit
module Kprober = Satin_attack.Kprober

let test_guard_blocks_rootkit () =
  let s = Scenario.create ~seed:101 () in
  let guard = Sync_guard.install s.Scenario.kernel in
  let rk = Rootkit.create s.Scenario.kernel ~cleanup_core:0 () in
  (try
     Rootkit.arm rk;
     Alcotest.fail "hijack not trapped"
   with Memory.Write_trapped { guard_name; _ } ->
     Alcotest.(check string) "trapped by the syscall guard"
       "sync_guard:sys_call_table" guard_name);
  Alcotest.(check int) "one trap logged" 1 (Sync_guard.trapped_count guard);
  (match Sync_guard.trapped guard with
  | [ t ] ->
      Alcotest.(check bool) "right target" true
        (t.Sync_guard.trap_target = Sync_guard.Syscall_table)
  | _ -> Alcotest.fail "trap record missing");
  Alcotest.(check bool) "table unmodified" false (Rootkit.hijacked_now rk)

let test_guard_blocks_kprober1 () =
  let s = Scenario.create ~seed:102 () in
  ignore (Sync_guard.install s.Scenario.kernel);
  try
    ignore
      (Kprober.deploy s.Scenario.kernel
         { Kprober.default_config with reporter = Kprober.Tick_reporter });
    Alcotest.fail "vector hijack not trapped"
  with Memory.Write_trapped { guard_name; _ } ->
    Alcotest.(check string) "trapped by the vector guard" "sync_guard:vectors"
      guard_name

let test_guard_allows_benign_writes () =
  let s = Scenario.create ~seed:103 () in
  ignore (Sync_guard.install s.Scenario.kernel);
  (* Writes outside the protected symbols pass through. *)
  Memory.write_byte s.Scenario.platform.Satin_hw.Platform.memory
    ~world:World.Normal
    ~addr:(16 * 1024 * 1024)
    7;
  (* Secure-world writes to the protected range pass (it owns the tables). *)
  let vec = Satin_kernel.Layout.vector_table s.Scenario.kernel.Satin_kernel.Kernel.layout in
  Memory.write_byte s.Scenario.platform.Satin_hw.Platform.memory
    ~world:World.Secure ~addr:vec.Satin_kernel.Layout.sym_addr 0

let test_ap_flip_bypasses_silently () =
  let s = Scenario.create ~seed:104 () in
  let guard = Sync_guard.install s.Scenario.kernel in
  let rk = Rootkit.create s.Scenario.kernel ~cleanup_core:0 () in
  (* §VII-A: the write-what-where exploit flips the AP bits... *)
  Sync_guard.ap_flip_exploit guard Sync_guard.Syscall_table;
  (* ...after which the same hijack lands without a trap... *)
  Rootkit.arm rk;
  Alcotest.(check bool) "hijack installed" true (Rootkit.hijacked_now rk);
  Alcotest.(check int) "no trap fired" 0 (Sync_guard.trapped_count guard);
  (* ...and the defender's self-check still looks healthy. *)
  Alcotest.(check bool) "hook still 'registered'" true
    (Sync_guard.hook_registered guard Sync_guard.Syscall_table);
  Alcotest.(check bool) "but not enforcing (ground truth)" false
    (Sync_guard.actually_enforcing guard Sync_guard.Syscall_table);
  Alcotest.(check bool) "other target still enforced" true
    (Sync_guard.actually_enforcing guard Sync_guard.Vectors)

let test_async_layer_catches_the_bypass () =
  (* §VII-C: the end-to-end story — sync introspection bypassed via the AP
     flip, the hijack lands silently, and SATIN's next pass over area 14
     raises the alarm anyway. *)
  let s = Scenario.create ~seed:105 () in
  let guard = Sync_guard.install s.Scenario.kernel in
  let satin =
    Scenario.install_satin s
      ~config:{ Satin_def.default_config with Satin_def.t_goal = Sim_time.s 19 }
      ()
  in
  let rk = Rootkit.create s.Scenario.kernel ~cleanup_core:0 () in
  Sync_guard.ap_flip_exploit guard Sync_guard.Syscall_table;
  Rootkit.arm rk;
  Scenario.run_for s (Sim_time.s 25);
  Satin_def.stop satin;
  Alcotest.(check int) "sync layer saw nothing" 0 (Sync_guard.trapped_count guard);
  Alcotest.(check bool) "async layer raised the alarm" true
    (Satin_def.detections satin >= 1);
  List.iter
    (fun r -> Alcotest.(check int) "alarm on area 14" 14 r.Round.area_index)
    (Satin_def.alarms satin)

let test_uninstall () =
  let s = Scenario.create ~seed:106 () in
  let guard = Sync_guard.install s.Scenario.kernel in
  Sync_guard.uninstall guard;
  let rk = Rootkit.create s.Scenario.kernel ~cleanup_core:0 () in
  Rootkit.arm rk;
  Alcotest.(check bool) "writes pass after uninstall" true (Rootkit.hijacked_now rk)

let suite =
  [
    Alcotest.test_case "guard blocks rootkit" `Quick test_guard_blocks_rootkit;
    Alcotest.test_case "guard blocks KProber-I" `Quick test_guard_blocks_kprober1;
    Alcotest.test_case "guard allows benign writes" `Quick test_guard_allows_benign_writes;
    Alcotest.test_case "AP flip bypasses silently" `Quick test_ap_flip_bypasses_silently;
    Alcotest.test_case "async layer catches the bypass" `Quick
      test_async_layer_catches_the_bypass;
    Alcotest.test_case "uninstall" `Quick test_uninstall;
  ]
