open Satin_hw
open Satin_engine

let cycle = Cycle_model.default

let test_triple_validation () =
  (try
     ignore (Cycle_model.triple ~min_s:2.0 ~avg_s:1.0 ~max_s:3.0);
     Alcotest.fail "expected rejection"
   with Invalid_argument _ -> ());
  let t = Cycle_model.triple ~min_s:1.0 ~avg_s:2.0 ~max_s:3.0 in
  Alcotest.(check (float 0.0)) "avg kept" 2.0 t.Cycle_model.t_avg

let test_sample_within_support () =
  let prng = Prng.create 1 in
  let t = cycle.Cycle_model.hash_1byte Cycle_model.A53 in
  for _ = 1 to 10_000 do
    let x = Cycle_model.sample prng t in
    if x < t.Cycle_model.t_min || x > t.Cycle_model.t_max then
      Alcotest.failf "sample out of support: %g" x
  done

let test_sample_mean_matches_avg () =
  let prng = Prng.create 2 in
  let t = cycle.Cycle_model.recover_8bytes Cycle_model.A53 in
  let n = 50_000 in
  let sum = ref 0.0 in
  for _ = 1 to n do
    sum := !sum +. Cycle_model.sample prng t
  done;
  let mean = !sum /. float_of_int n in
  let rel = Float.abs (mean -. t.Cycle_model.t_avg) /. t.Cycle_model.t_avg in
  if rel > 0.02 then Alcotest.failf "mean off by %.1f%%" (100.0 *. rel)

let test_degenerate_triple () =
  let prng = Prng.create 3 in
  let t = Cycle_model.triple ~min_s:5.0 ~avg_s:5.0 ~max_s:5.0 in
  Alcotest.(check (float 0.0)) "constant" 5.0 (Cycle_model.sample prng t)

let test_calibration_constants () =
  (* Spot-check the Table I / §IV-B calibration points. *)
  let h53 = cycle.Cycle_model.hash_1byte Cycle_model.A53 in
  Alcotest.(check (float 1e-12)) "A53 hash avg" 1.07e-8 h53.Cycle_model.t_avg;
  let h57 = cycle.Cycle_model.hash_1byte Cycle_model.A57 in
  Alcotest.(check (float 1e-12)) "A57 hash min" 6.67e-9 h57.Cycle_model.t_min;
  let sw = cycle.Cycle_model.world_switch Cycle_model.A53 in
  Alcotest.(check (float 1e-12)) "switch min" 2.38e-6 sw.Cycle_model.t_min;
  Alcotest.(check (float 1e-12)) "switch max" 3.60e-6 sw.Cycle_model.t_max;
  let r53 = cycle.Cycle_model.recover_8bytes Cycle_model.A53 in
  Alcotest.(check (float 1e-12)) "A53 recover avg" 5.80e-3 r53.Cycle_model.t_avg;
  Alcotest.(check (float 1e-12)) "A53 recover worst" 6.13e-3 r53.Cycle_model.t_max;
  Alcotest.(check int) "HZ within Linux range" 250 cycle.Cycle_model.tick_hz;
  Alcotest.(check (float 1e-12)) "Tsleep" 2.0e-4 cycle.Cycle_model.rt_sleep

let test_a57_faster_than_a53 () =
  let h53 = cycle.Cycle_model.hash_1byte Cycle_model.A53 in
  let h57 = cycle.Cycle_model.hash_1byte Cycle_model.A57 in
  Alcotest.(check bool) "big core faster" true
    (h57.Cycle_model.t_avg < h53.Cycle_model.t_avg)

let test_snapshot_dearer_than_hash () =
  List.iter
    (fun core ->
      let h = cycle.Cycle_model.hash_1byte core in
      let s = cycle.Cycle_model.snapshot_1byte core in
      Alcotest.(check bool) "snapshot >= hash on average" true
        (s.Cycle_model.t_avg >= h.Cycle_model.t_avg))
    [ Cycle_model.A53; Cycle_model.A57 ]

let test_per_byte_duration_scales () =
  let prng = Prng.create 4 in
  let t = cycle.Cycle_model.hash_1byte Cycle_model.A57 in
  let d = Cycle_model.per_byte_duration prng t ~bytes:1_000_000 in
  let s = Sim_time.to_sec_f d in
  if s < 1_000_000.0 *. t.Cycle_model.t_min || s > 1_000_000.0 *. t.Cycle_model.t_max
  then Alcotest.failf "duration out of range: %g" s;
  Alcotest.(check int) "zero bytes" 0
    (Cycle_model.per_byte_duration prng t ~bytes:0)

let test_staleness_mean_monotone_in_period () =
  let m8 = Cycle_model.cross_staleness_mean ~period_s:8.0 in
  let m30 = Cycle_model.cross_staleness_mean ~period_s:30.0 in
  let m300 = Cycle_model.cross_staleness_mean ~period_s:300.0 in
  Alcotest.(check bool) "monotone" true (m8 < m30 && m30 < m300);
  Alcotest.(check (float 1e-9)) "calibration point at 8s" 2.61e-4 m8;
  (* floor for very short periods *)
  Alcotest.(check (float 1e-9)) "floored" 6e-5
    (Cycle_model.cross_staleness_mean ~period_s:2e-4)

let test_staleness_samples_positive () =
  let prng = Prng.create 5 in
  for _ = 1 to 10_000 do
    let x = Cycle_model.sample_cross_staleness prng cycle ~period_s:8.0 in
    if x <= 0.0 then Alcotest.failf "non-positive staleness %g" x;
    if x > 3e-3 then Alcotest.failf "staleness beyond physical tail: %g" x
  done


let test_tail_rate_knob () =
  (* Setting the documented knob to zero suppresses the tail at short
     periods entirely. *)
  let quiet = { cycle with Cycle_model.cross_read_tail_rate_hz = 0.0 } in
  let prng = Prng.create 6 in
  for _ = 1 to 20_000 do
    let x = Cycle_model.sample_cross_staleness prng quiet ~period_s:1.0 in
    if x > 4.0e-4 then Alcotest.failf "tail fired with rate 0: %g" x
  done;
  (* A raised knob produces visibly more tails than the default. *)
  let count rate =
    let prng = Prng.create 7 in
    let c = { cycle with Cycle_model.cross_read_tail_rate_hz = rate } in
    let n = ref 0 in
    for _ = 1 to 20_000 do
      if Cycle_model.sample_cross_staleness prng c ~period_s:1.0 > 4.0e-4 then incr n
    done;
    !n
  in
  Alcotest.(check bool) "knob raises tail frequency" true (count 0.02 > count 0.004 * 2)

let test_core_type_helpers () =
  Alcotest.(check string) "A53" "A53" (Cycle_model.core_type_to_string Cycle_model.A53);
  Alcotest.(check bool) "equal" true
    (Cycle_model.equal_core_type Cycle_model.A57 Cycle_model.A57);
  Alcotest.(check bool) "not equal" false
    (Cycle_model.equal_core_type Cycle_model.A57 Cycle_model.A53)

let suite =
  [
    Alcotest.test_case "triple validation" `Quick test_triple_validation;
    Alcotest.test_case "sample within support" `Quick test_sample_within_support;
    Alcotest.test_case "sample mean ~ avg" `Slow test_sample_mean_matches_avg;
    Alcotest.test_case "degenerate triple" `Quick test_degenerate_triple;
    Alcotest.test_case "calibration constants" `Quick test_calibration_constants;
    Alcotest.test_case "A57 faster" `Quick test_a57_faster_than_a53;
    Alcotest.test_case "snapshot dearer" `Quick test_snapshot_dearer_than_hash;
    Alcotest.test_case "per-byte duration" `Quick test_per_byte_duration_scales;
    Alcotest.test_case "staleness monotone" `Quick test_staleness_mean_monotone_in_period;
    Alcotest.test_case "staleness positive" `Quick test_staleness_samples_positive;
    Alcotest.test_case "tail rate knob" `Quick test_tail_rate_knob;
    Alcotest.test_case "core type helpers" `Quick test_core_type_helpers;
  ]
