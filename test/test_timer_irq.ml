open Satin_kernel
open Satin_hw
open Satin_engine

let boot () =
  let platform = Platform.juno_r1 ~seed:13 () in
  Kernel.boot platform

let engine k = k.Kernel.platform.Platform.engine
let run k d = Engine.run_until (engine k) (Sim_time.add (Engine.now (engine k)) d)

let test_hz_validation () =
  let platform = Platform.juno_r1 ~seed:1 () in
  try
    ignore (Kernel.boot ~hz:50 platform);
    Alcotest.fail "HZ below 100 accepted"
  with Invalid_argument _ -> ()

let test_period () =
  let k = boot () in
  Alcotest.(check int) "250 Hz" 250 (Timer_irq.hz k.Kernel.tick);
  Alcotest.(check int) "4ms period" (Sim_time.ms 4) (Timer_irq.period k.Kernel.tick)

let test_ticks_with_work () =
  let k = boot () in
  ignore (Kernel.spawn_spinner k ~core:0);
  run k (Sim_time.s 1);
  let ticks = Timer_irq.ticks_delivered k.Kernel.tick ~core:0 in
  if ticks < 240 || ticks > 260 then Alcotest.failf "tick count off: %d" ticks;
  Alcotest.(check bool) "tick alive" true (Timer_irq.tick_alive k.Kernel.tick ~core:0)

let test_nohz_idle_stops_tick () =
  let k = boot () in
  run k (Sim_time.s 1);
  (* No runnable work anywhere: every core's tick dies after the first. *)
  Alcotest.(check bool) "tick stopped on idle core" false
    (Timer_irq.tick_alive k.Kernel.tick ~core:0);
  let before = Timer_irq.ticks_delivered k.Kernel.tick ~core:0 in
  run k (Sim_time.s 1);
  Alcotest.(check int) "no further ticks while idle" before
    (Timer_irq.ticks_delivered k.Kernel.tick ~core:0)

let test_enqueue_restarts_tick () =
  let k = boot () in
  run k (Sim_time.s 1);
  Alcotest.(check bool) "idle" false (Timer_irq.tick_alive k.Kernel.tick ~core:2);
  ignore (Kernel.spawn_spinner k ~core:2);
  Alcotest.(check bool) "restarted on enqueue" true
    (Timer_irq.tick_alive k.Kernel.tick ~core:2);
  let before = Timer_irq.ticks_delivered k.Kernel.tick ~core:2 in
  run k (Sim_time.ms 100);
  Alcotest.(check bool) "ticking again" true
    (Timer_irq.ticks_delivered k.Kernel.tick ~core:2 > before)

let test_hooks_run_per_tick () =
  let k = boot () in
  ignore (Kernel.spawn_spinner k ~core:1);
  let hits = ref 0 in
  let hook = Timer_irq.add_hook k.Kernel.tick (fun ~core -> if core = 1 then incr hits) in
  run k (Sim_time.ms 100);
  let ticks = Timer_irq.ticks_delivered k.Kernel.tick ~core:1 in
  Alcotest.(check bool) "hook saw (most) ticks" true (!hits >= ticks - 1);
  Timer_irq.remove_hook k.Kernel.tick hook;
  Timer_irq.remove_hook k.Kernel.tick hook (* idempotent *);
  let frozen = !hits in
  run k (Sim_time.ms 100);
  Alcotest.(check int) "hooks removed" frozen !hits

let test_ticks_pend_during_secure () =
  let k = boot () in
  ignore (Kernel.spawn_spinner k ~core:3);
  run k (Sim_time.ms 100);
  let cpu = Platform.core k.Kernel.platform 3 in
  let before = Timer_irq.ticks_delivered k.Kernel.tick ~core:3 in
  Cpu.set_world cpu World.Secure;
  run k (Sim_time.ms 100);
  let during = Timer_irq.ticks_delivered k.Kernel.tick ~core:3 in
  Alcotest.(check bool) "at most one pended tick delivered" true (during - before <= 1);
  Cpu.set_world cpu World.Normal;
  Satin_hw.Gic.flush_pending k.Kernel.platform.Platform.gic ~core:3
    ~world_of_core:(fun () -> Cpu.world cpu);
  run k (Sim_time.ms 100);
  let after = Timer_irq.ticks_delivered k.Kernel.tick ~core:3 in
  Alcotest.(check bool) "ticking resumed" true (after - during >= 20)

let suite =
  [
    Alcotest.test_case "hz validation" `Quick test_hz_validation;
    Alcotest.test_case "period" `Quick test_period;
    Alcotest.test_case "ticks with work" `Quick test_ticks_with_work;
    Alcotest.test_case "nohz idle stops tick" `Quick test_nohz_idle_stops_tick;
    Alcotest.test_case "enqueue restarts tick" `Quick test_enqueue_restarts_tick;
    Alcotest.test_case "hooks per tick" `Quick test_hooks_run_per_tick;
    Alcotest.test_case "ticks pend during secure" `Quick test_ticks_pend_during_secure;
  ]
