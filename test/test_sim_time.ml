open Satin_engine

let check = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-12))

let test_units () =
  check "us" 1_000 (Sim_time.us 1);
  check "ms" 1_000_000 (Sim_time.ms 1);
  check "s" 1_000_000_000 (Sim_time.s 1);
  check "ns" 7 (Sim_time.ns 7);
  check "zero" 0 Sim_time.zero

let test_float_roundtrip () =
  checkf "1.5 s" 1.5 (Sim_time.to_sec_f (Sim_time.of_sec_f 1.5));
  check "of_sec_f rounds" 1 (Sim_time.of_sec_f 1.4e-9);
  check "of_sec_f rounds down" 0 (Sim_time.of_sec_f 0.4e-9);
  check "of_ns_f" 3 (Sim_time.of_ns_f 2.6)

let test_arith () =
  check "add" 5 (Sim_time.add 2 3);
  check "sub" (-1) (Sim_time.sub 2 3);
  check "diff" 4 (Sim_time.diff 7 3);
  check "min" 2 (Sim_time.min 2 3);
  check "max" 3 (Sim_time.max 2 3);
  Alcotest.(check bool) "negative" true (Sim_time.is_negative (-1));
  Alcotest.(check bool) "non-negative" false (Sim_time.is_negative 0)

let test_scale () =
  check "scale by 2" (Sim_time.ms 2) (Sim_time.scale (Sim_time.ms 1) 2.0);
  check "scale by 0.5" (Sim_time.us 500) (Sim_time.scale (Sim_time.ms 1) 0.5);
  check "scale rounds" 3 (Sim_time.scale 2 1.4)

let test_pp () =
  Alcotest.(check string) "sub-second" "2.380e-06 s" (Sim_time.to_string (Sim_time.ns 2380));
  Alcotest.(check string) "seconds" "2.000 s" (Sim_time.to_string (Sim_time.s 2));
  Alcotest.(check string) "zero" "0.000 s" (Sim_time.to_string Sim_time.zero)

let prop_add_assoc =
  QCheck.Test.make ~name:"add associative/commutative"
    QCheck.(triple small_int small_int small_int)
    (fun (a, b, c) ->
      Sim_time.add a (Sim_time.add b c) = Sim_time.add (Sim_time.add a b) c
      && Sim_time.add a b = Sim_time.add b a)

let prop_roundtrip =
  QCheck.Test.make ~name:"seconds roundtrip within 1ns"
    QCheck.(float_bound_inclusive 100.0)
    (fun x ->
      let t = Sim_time.of_sec_f x in
      Float.abs (Sim_time.to_sec_f t -. x) <= 1e-9)

let suite =
  [
    Alcotest.test_case "units" `Quick test_units;
    Alcotest.test_case "float roundtrip" `Quick test_float_roundtrip;
    Alcotest.test_case "arithmetic" `Quick test_arith;
    Alcotest.test_case "scale" `Quick test_scale;
    Alcotest.test_case "formatting" `Quick test_pp;
    QCheck_alcotest.to_alcotest prop_add_assoc;
    QCheck_alcotest.to_alcotest prop_roundtrip;
  ]
