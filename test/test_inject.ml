(* The fault-injection layer and the simulation sanitizer: plans validate,
   the injector is deterministic in its seed, and — the point of the whole
   subsystem — deliberate corruption of engine state is actually caught. *)

open Satin_engine
module Fault_plan = Satin_inject.Fault_plan
module Injector = Satin_inject.Injector
module Sanitizer = Satin_inject.Sanitizer
module Scenario = Satin.Scenario
module E = Satin.Experiment
module Areas = Satin_introspect.Area

(* --- fault plans ------------------------------------------------------ *)

let test_plan_validation () =
  let bad name p =
    Alcotest.(check bool) name true
      (try
         Fault_plan.validate p;
         false
       with Invalid_argument _ -> true)
  in
  bad "prob > 1" (Fault_plan.Drop_timer_irqs { prob = 1.5 });
  bad "negative prob"
    (Fault_plan.Delay_timer_irqs { prob = -0.1; max_delay = Sim_time.ms 1 });
  bad "zero period" (Fault_plan.Flip_kernel_bits { period = 0; flips = 1 });
  bad "zero flips"
    (Fault_plan.Flip_kernel_bits { period = Sim_time.s 1; flips = 0 });
  bad "duty > 1"
    (Fault_plan.Cfs_storm
       { tasks_per_core = 1; burst = Sim_time.ms 1; duty = 1.5 });
  (* Every catalogue entry must be self-consistent. *)
  List.iter Fault_plan.validate Fault_plan.catalogue

let test_plan_names_distinct () =
  let names = List.map Fault_plan.name Fault_plan.catalogue in
  Alcotest.(check int)
    "names unique" (List.length names)
    (List.length (List.sort_uniq String.compare names));
  List.iter
    (fun n -> Alcotest.(check bool) "non-empty name" true (String.length n > 0))
    names

(* --- sanitizer: deliberate corruption is caught ----------------------- *)

let with_check f =
  Sanitizer.reset_global ();
  Sanitizer.set_check_mode true;
  Fun.protect ~finally:(fun () -> Sanitizer.set_check_mode false) f

let test_clock_rewind_caught () =
  let e = Engine.create () in
  let s = Sanitizer.attach ~name:"rewind-test" e in
  ignore (Engine.schedule e ~after:(Sim_time.ms 10) (fun () -> ()));
  Engine.run_until e (Sim_time.ms 10);
  Alcotest.(check int) "clean so far" 0 (Sanitizer.violations s);
  Engine.Unsafe.set_clock e (Sim_time.ms 3);
  let msgs = Sanitizer.check_now s in
  Alcotest.(check bool) "rewind reported" true (msgs <> []);
  Alcotest.(check bool) "violation counted" true (Sanitizer.violations s > 0)

let test_live_count_skew_caught () =
  let e = Engine.create () in
  let s = Sanitizer.attach ~name:"skew-test" e in
  ignore (Engine.schedule e ~after:(Sim_time.ms 5) (fun () -> ()));
  Alcotest.(check (list string)) "clean before skew" [] (Sanitizer.check_now s);
  Engine.Unsafe.skew_live e 2;
  Alcotest.(check bool) "skew reported" true (Sanitizer.check_now s <> [])

let test_skew_caught_on_sampled_cadence () =
  (* Corruption introduced mid-run must surface through the observer's
     sampled sweep, without anyone calling [check_now]. *)
  let e = Engine.create () in
  let s = Sanitizer.attach ~sample_every:8 ~name:"cadence-test" e in
  for i = 1 to 4 do
    ignore
      (Engine.schedule e ~after:(Sim_time.ms i) (fun () ->
           if i = 2 then Engine.Unsafe.skew_live e 1))
  done;
  for i = 5 to 32 do
    ignore (Engine.schedule e ~after:(Sim_time.ms i) (fun () -> ()))
  done;
  Engine.run_until e (Sim_time.ms 40);
  Alcotest.(check bool) "sampled sweep caught it" true
    (Sanitizer.violations s > 0)

let test_event_queue_skew_caught () =
  let q = Event_queue.create () in
  ignore (Event_queue.push q ~time:1 "x");
  Alcotest.(check (list string)) "clean" [] (Event_queue.invariant_violations q);
  Event_queue.Unsafe.skew_live q (-1);
  Alcotest.(check bool) "accounting skew reported" true
    (Event_queue.invariant_violations q <> [])

let test_sanitizer_chains_observer () =
  let e = Engine.create () in
  let seen = ref 0 in
  Engine.set_observer e (Some (fun ~time:_ ~pending:_ -> incr seen));
  let _s = Sanitizer.attach ~name:"chain-test" e in
  for i = 1 to 5 do
    ignore (Engine.schedule e ~after:(Sim_time.ms i) (fun () -> ()))
  done;
  Engine.run_until e (Sim_time.ms 10);
  Alcotest.(check int) "previous observer still runs" 5 !seen

let test_attach_rejects_bad_cadence () =
  let e = Engine.create () in
  Alcotest.(check bool) "sample_every 0 rejected" true
    (try
       ignore (Sanitizer.attach ~sample_every:0 e);
       false
     with Invalid_argument _ -> true)

let test_clean_scenario_zero_violations () =
  with_check (fun () ->
      let sc = Scenario.create ~seed:7 () in
      (match sc.Scenario.sanitizer with
      | None -> Alcotest.fail "check mode on but no sanitizer attached"
      | Some _ -> ());
      Scenario.run_for sc (Sim_time.s 2);
      (match sc.Scenario.sanitizer with
      | Some s ->
          Alcotest.(check (list string)) "final sweep clean" []
            (Sanitizer.check_now s)
      | None -> ());
      let r = Sanitizer.global_report () in
      Alcotest.(check int) "no violations" 0 r.Sanitizer.violations;
      Alcotest.(check bool) "checks actually ran" true (r.Sanitizer.checks > 0))

let test_check_mode_off_no_sanitizer () =
  Alcotest.(check bool) "mode off" false (Sanitizer.check_mode ());
  let sc = Scenario.create ~seed:7 () in
  Alcotest.(check bool) "no sanitizer attached" true
    (sc.Scenario.sanitizer = None)

let test_global_report_aggregates () =
  with_check (fun () ->
      let e = Engine.create () in
      let s = Sanitizer.attach ~name:"agg" e in
      Engine.Unsafe.skew_live e 1;
      ignore (Sanitizer.check_now s);
      let r = Sanitizer.global_report () in
      Alcotest.(check bool) "global violations" true (r.Sanitizer.violations > 0);
      Alcotest.(check bool) "message captured" true
        (List.exists
           (fun m ->
             (* each message is prefixed "[name] ..." *)
             String.length m >= 5 && String.sub m 0 5 = "[agg]")
           r.Sanitizer.messages))

(* --- injector --------------------------------------------------------- *)

let test_injector_requires_areas_for_flips () =
  let sc = Scenario.create ~seed:3 () in
  Alcotest.(check bool) "empty areas rejected" true
    (try
       ignore
         (Injector.install
            ~plan:(Fault_plan.Flip_kernel_bits { period = Sim_time.s 1; flips = 1 })
            ~seed:1 ~platform:sc.Scenario.platform ~kernel:sc.Scenario.kernel
            ~areas:[]);
       false
     with Invalid_argument _ -> true)

let test_injector_deterministic () =
  let run () =
    let sc = Scenario.create ~seed:5 () in
    let inj =
      Injector.install
        ~plan:(Fault_plan.Drop_timer_irqs { prob = 0.5 })
        ~seed:11 ~platform:sc.Scenario.platform ~kernel:sc.Scenario.kernel
        ~areas:
          (Areas.of_layout sc.Scenario.kernel.Satin_kernel.Kernel.layout)
    in
    let _satin = Scenario.install_satin sc () in
    Scenario.run_for sc (Sim_time.s 5);
    (Injector.timer_drops inj, Injector.fault_events inj)
  in
  let a = run () and b = run () in
  Alcotest.(check (pair int int)) "same seed, same faults" a b;
  Alcotest.(check bool) "faults actually injected" true (fst a > 0)

(* --- campaign trials -------------------------------------------------- *)

let test_control_trial_detects () =
  let t = E.fault_campaign_trial ~seed:42 ~window_s:25 Fault_plan.Control in
  Alcotest.(check bool) "rootkit detected under control" true t.E.ft_detected;
  Alcotest.(check int) "control injects nothing" 0 t.E.ft_faults;
  Alcotest.(check bool) "rounds completed" true (t.E.ft_rounds > 0);
  match t.E.ft_latency_s with
  | Some l -> Alcotest.(check bool) "positive latency" true (l > 0.0)
  | None -> Alcotest.fail "detected trial must report a latency"

let test_faulted_trial_reproducible () =
  let plan = Fault_plan.Delay_timer_irqs { prob = 0.5; max_delay = Sim_time.ms 1500 } in
  let a = E.fault_campaign_trial ~seed:9 ~window_s:25 plan in
  let b = E.fault_campaign_trial ~seed:9 ~window_s:25 plan in
  Alcotest.(check bool) "identical trials" true (a = b);
  Alcotest.(check bool) "faults applied" true (a.E.ft_faults > 0)

let suite =
  [
    Alcotest.test_case "plan validation" `Quick test_plan_validation;
    Alcotest.test_case "plan names distinct" `Quick test_plan_names_distinct;
    Alcotest.test_case "clock rewind caught" `Quick test_clock_rewind_caught;
    Alcotest.test_case "live-count skew caught" `Quick
      test_live_count_skew_caught;
    Alcotest.test_case "skew caught on sampled cadence" `Quick
      test_skew_caught_on_sampled_cadence;
    Alcotest.test_case "event-queue skew caught" `Quick
      test_event_queue_skew_caught;
    Alcotest.test_case "sanitizer chains observer" `Quick
      test_sanitizer_chains_observer;
    Alcotest.test_case "attach rejects bad cadence" `Quick
      test_attach_rejects_bad_cadence;
    Alcotest.test_case "clean scenario: zero violations" `Quick
      test_clean_scenario_zero_violations;
    Alcotest.test_case "check mode off: no sanitizer" `Quick
      test_check_mode_off_no_sanitizer;
    Alcotest.test_case "global report aggregates" `Quick
      test_global_report_aggregates;
    Alcotest.test_case "flip plan needs areas" `Quick
      test_injector_requires_areas_for_flips;
    Alcotest.test_case "injector deterministic" `Quick
      test_injector_deterministic;
    Alcotest.test_case "control trial detects" `Slow test_control_trial_detects;
    Alcotest.test_case "faulted trial reproducible" `Slow
      test_faulted_trial_reproducible;
  ]
