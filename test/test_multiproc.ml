(* Multi-process store access: real [satin_cli campaign] shards against
   one store directory. This is the contract the fleet orchestrator rests
   on — two concurrent writer processes, one journal, byte-identical
   reports — exercised through the shipped binary, not test doubles. *)

module Store = Satin_store.Store
module Telemetry = Satin_store.Telemetry

let cli =
  Filename.concat
    (Filename.dirname Sys.executable_name)
    (Filename.concat ".." (Filename.concat "bin" "satin_cli.exe"))

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "satin_multiproc_%d_%d" (Unix.getpid ()) !counter)
    in
    (match Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)) with
    | 0 -> ()
    | _ -> ());
    dir

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Launch the CLI with stdout/stderr captured to files; returns the pid. *)
let launch args ~out ~err =
  let fd path =
    Unix.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
  in
  let out_fd = fd out and err_fd = fd err in
  let pid =
    Unix.create_process cli
      (Array.of_list (cli :: args))
      Unix.stdin out_fd err_fd
  in
  Unix.close out_fd;
  Unix.close err_fd;
  pid

let wait_ok name pid =
  match snd (Unix.waitpid [] pid) with
  | Unix.WEXITED 0 -> ()
  | Unix.WEXITED c -> Alcotest.failf "%s exited %d" name c
  | Unix.WSIGNALED s -> Alcotest.failf "%s killed by signal %d" name s
  | Unix.WSTOPPED s -> Alcotest.failf "%s stopped by signal %d" name s

let campaign_args ~store extra =
  [ "campaign"; "-e"; "e1,e3"; "--seeds"; "5,6"; "--store"; store ] @ extra

let telemetry_table dir =
  let s = Store.open_ dir in
  Fun.protect
    ~finally:(fun () -> Store.close s)
    (fun () ->
      match Telemetry.collect s with
      | Error e -> Alcotest.failf "telemetry collect %s: %s" dir e
      | Ok r ->
          let b = Buffer.create 4096 in
          let fmt = Format.formatter_of_buffer b in
          Telemetry.print_table fmt r;
          Format.pp_print_flush fmt ();
          Buffer.contents b)

let test_two_shard_processes () =
  let scratch = tmp_dir () in
  Store.mkdir_p scratch;
  let base_store = Filename.concat scratch "store_base" in
  let shard_store = Filename.concat scratch "store_shard" in
  let path name = Filename.concat scratch name in
  (* The single-process ground truth. *)
  let base =
    launch
      (campaign_args ~store:base_store [])
      ~out:(path "base.out") ~err:(path "base.err")
  in
  wait_ok "unsharded campaign" base;
  (* Two real shard processes, concurrently, against one fresh store. *)
  let shard i =
    launch
      (campaign_args ~store:shard_store
         [ Printf.sprintf "--shard=%d/2" i; "--lease-ttl=2" ])
      ~out:(path (Printf.sprintf "shard%d.out" i))
      ~err:(path (Printf.sprintf "shard%d.err" i))
  in
  let s0 = shard 0 in
  let s1 = shard 1 in
  wait_ok "shard 0" s0;
  wait_ok "shard 1" s1;
  (* Every shard's stdout is the full canonical report. *)
  let base_out = read_file (path "base.out") in
  Alcotest.(check string)
    "shard 0 report = unsharded" base_out
    (read_file (path "shard0.out"));
  Alcotest.(check string)
    "shard 1 report = unsharded" base_out
    (read_file (path "shard1.out"));
  (* No torn/corrupt records under the concurrent writers. *)
  let quarantined =
    match Sys.readdir (Filename.concat shard_store "quarantine") with
    | entries -> Array.length entries
    | exception Sys_error _ -> 0
  in
  Alcotest.(check int) "nothing quarantined" 0 quarantined;
  (* The merged store aggregates to the byte-identical telemetry report. *)
  Alcotest.(check string)
    "telemetry report byte-identical"
    (telemetry_table base_store)
    (telemetry_table shard_store);
  (* The sharded store is complete: a warm unsharded pass recomputes
     nothing (each shard's own counters double-count its peer's trials as
     one early miss + one later hit, so completeness — not the per-shard
     tallies — is the meaningful sum). *)
  let warm =
    launch
      (campaign_args ~store:shard_store [])
      ~out:(path "warm.out") ~err:(path "warm.err")
  in
  wait_ok "warm pass" warm;
  Alcotest.(check string) "warm report = unsharded" base_out
    (read_file (path "warm.out"));
  let warm_err = read_file (path "warm.err") in
  let has_no_miss =
    (* The stderr summary is "store: H hit(s), M miss(es), ..." *)
    let needle = " 0 miss(es)" in
    let n = String.length needle and len = String.length warm_err in
    let rec scan i =
      i + n <= len && (String.sub warm_err i n = needle || scan (i + 1))
    in
    scan 0
  in
  Alcotest.(check bool) "warm pass misses nothing" true has_no_miss

let suite =
  [
    Alcotest.test_case "two shard processes, one store" `Slow
      test_two_shard_processes;
  ]
