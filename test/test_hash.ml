open Satin_introspect
open Satin_hw

(* Known-answer values computed from the reference C implementations
   (djb2: h = h*33 + c from 5381; sdbm: c + (h<<6) + (h<<16) - h;
   FNV-1a 64-bit). *)
let test_djb2_known () =
  Alcotest.(check int64) "empty" 5381L (Hash.hash_string Hash.Djb2 "");
  Alcotest.(check int64) "a" (Int64.add (Int64.mul 5381L 33L) 97L)
    (Hash.hash_string Hash.Djb2 "a");
  (* djb2("hello") computed stepwise *)
  let expect =
    List.fold_left
      (fun h c -> Int64.add (Int64.mul h 33L) (Int64.of_int (Char.code c)))
      5381L [ 'h'; 'e'; 'l'; 'l'; 'o' ]
  in
  Alcotest.(check int64) "hello" expect (Hash.hash_string Hash.Djb2 "hello")

let test_fnv1a_known () =
  Alcotest.(check int64) "empty is offset basis" 0xcbf29ce484222325L
    (Hash.hash_string Hash.Fnv1a "");
  (* FNV-1a 64 of "a" is a published constant. *)
  Alcotest.(check int64) "a" 0xaf63dc4c8601ec8cL (Hash.hash_string Hash.Fnv1a "a")

let test_sdbm_zero_start () =
  Alcotest.(check int64) "empty" 0L (Hash.hash_string Hash.Sdbm "");
  Alcotest.(check int64) "single byte" 97L (Hash.hash_string Hash.Sdbm "a")

let test_algos_differ () =
  let s = "the quick brown fox" in
  let h1 = Hash.hash_string Hash.Djb2 s in
  let h2 = Hash.hash_string Hash.Sdbm s in
  let h3 = Hash.hash_string Hash.Fnv1a s in
  Alcotest.(check bool) "djb2 <> sdbm" false (Int64.equal h1 h2);
  Alcotest.(check bool) "djb2 <> fnv" false (Int64.equal h1 h3)

let test_single_bit_sensitivity () =
  List.iter
    (fun algo ->
      let a = Hash.hash_string algo "abcdefgh" in
      let b = Hash.hash_string algo "abcdefgi" in
      if Int64.equal a b then
        Alcotest.failf "%s missed a one-byte change" (Hash.algo_to_string algo))
    Hash.all_algos

let test_streaming_matches_whole () =
  List.iter
    (fun algo ->
      let s = "stream me in pieces" in
      let whole = Hash.hash_string algo s in
      let stepped =
        String.fold_left (fun h c -> Hash.step algo h (Char.code c)) (Hash.init algo) s
      in
      Alcotest.(check int64) (Hash.algo_to_string algo) whole stepped)
    Hash.all_algos

let test_hash_region_matches_string () =
  let m = Memory.create ~size:1024 in
  Memory.write_string m ~world:World.Normal ~addr:100 "region contents";
  List.iter
    (fun algo ->
      Alcotest.(check int64)
        (Hash.algo_to_string algo)
        (Hash.hash_string algo "region contents")
        (Hash.hash_region algo m ~world:World.Secure ~addr:100 ~len:15))
    Hash.all_algos

let test_hash_bytes_matches_string () =
  let b = Bytes.of_string "bytes" in
  Alcotest.(check int64) "bytes = string" (Hash.hash_string Hash.Djb2 "bytes")
    (Hash.hash_bytes Hash.Djb2 b)

(* The unrolled [hash_sub] loops must agree with a plain [step] fold at every
   length around the 4-byte unroll boundary and at every offset. *)
let test_hash_sub_edge_lengths () =
  let data = Bytes.init 64 (fun i -> Char.chr ((i * 37) land 0xff)) in
  List.iter
    (fun algo ->
      for off = 0 to 5 do
        for len = 0 to 9 do
          let expect = ref (Hash.init algo) in
          for i = off to off + len - 1 do
            expect := Hash.step algo !expect (Char.code (Bytes.get data i))
          done;
          Alcotest.(check int64)
            (Printf.sprintf "%s off=%d len=%d" (Hash.algo_to_string algo) off
               len)
            !expect
            (Hash.hash_sub algo data ~off ~len)
        done
      done)
    Hash.all_algos

let test_hash_sub_bounds () =
  let data = Bytes.create 16 in
  let reject name f =
    try
      ignore (f ());
      Alcotest.failf "%s accepted" name
    with Invalid_argument _ -> ()
  in
  reject "negative off" (fun () -> Hash.hash_sub Hash.Djb2 data ~off:(-1) ~len:4);
  reject "negative len" (fun () -> Hash.hash_sub Hash.Djb2 data ~off:0 ~len:(-1));
  reject "past the end" (fun () -> Hash.hash_sub Hash.Djb2 data ~off:10 ~len:7)

let prop_hash_sub_matches_fold =
  QCheck.Test.make ~name:"hash_sub = step fold at any split"
    QCheck.(pair string (int_bound 64))
    (fun (s, k) ->
      let data = Bytes.of_string s in
      let off = if Bytes.length data = 0 then 0 else k mod Bytes.length data in
      let len = Bytes.length data - off in
      List.for_all
        (fun algo ->
          let expect = ref (Hash.init algo) in
          for i = off to off + len - 1 do
            expect := Hash.step algo !expect (Char.code (Bytes.get data i))
          done;
          Int64.equal !expect (Hash.hash_sub algo data ~off ~len))
        Hash.all_algos)

let prop_deterministic =
  QCheck.Test.make ~name:"hash deterministic" QCheck.string (fun s ->
      List.for_all
        (fun algo ->
          Int64.equal (Hash.hash_string algo s) (Hash.hash_string algo s))
        Hash.all_algos)

let prop_concat_streaming =
  QCheck.Test.make ~name:"hash(a^b) = resume(hash a, b)"
    QCheck.(pair string string)
    (fun (a, b) ->
      List.for_all
        (fun algo ->
          let whole = Hash.hash_string algo (a ^ b) in
          let resumed =
            String.fold_left
              (fun h c -> Hash.step algo h (Char.code c))
              (Hash.hash_string algo a) b
          in
          Int64.equal whole resumed)
        Hash.all_algos)

(* The affine factorization behind incremental scans: for the combinable
   algorithms, hashing a concatenation equals folding cached per-block
   digests with [combine_block]. Splits are arbitrary, not page-sized. *)
let prop_block_combine =
  QCheck.Test.make ~name:"hash = fold of block digests (combinable algos)"
    QCheck.(pair string (small_list small_nat))
    (fun (s, cuts) ->
      let data = Bytes.of_string s in
      let n = Bytes.length data in
      (* Turn the generated naturals into a partition of [0, n). *)
      let bounds =
        List.sort_uniq compare (0 :: n :: List.map (fun c -> c mod (n + 1)) cuts)
      in
      let rec blocks = function
        | a :: (b :: _ as rest) -> (a, b - a) :: blocks rest
        | _ -> []
      in
      List.for_all
        (fun algo ->
          if not (Hash.combinable algo) then true
          else
            let h =
              List.fold_left
                (fun h (off, len) ->
                  Hash.combine_block h
                    ~pow:(Hash.block_pow algo ~len)
                    ~digest:(Hash.block_digest algo data ~off ~len))
                (Hash.init algo) (blocks bounds)
            in
            Int64.equal h (Hash.hash_sub algo data ~off:0 ~len:n))
        Hash.all_algos)

let test_combinable_flags () =
  Alcotest.(check bool) "djb2 combinable" true (Hash.combinable Hash.Djb2);
  Alcotest.(check bool) "sdbm combinable" true (Hash.combinable Hash.Sdbm);
  Alcotest.(check bool) "fnv1a not combinable" false
    (Hash.combinable Hash.Fnv1a);
  Alcotest.(check int64) "pow^0 = 1" 1L (Hash.block_pow Hash.Djb2 ~len:0);
  Alcotest.(check int64) "pow^1 = m" 33L (Hash.block_pow Hash.Djb2 ~len:1);
  Alcotest.(check int64) "pow^2 = m*m" (Int64.mul 65599L 65599L)
    (Hash.block_pow Hash.Sdbm ~len:2)

let suite =
  [
    Alcotest.test_case "djb2 known answers" `Quick test_djb2_known;
    Alcotest.test_case "fnv1a known answers" `Quick test_fnv1a_known;
    Alcotest.test_case "sdbm basics" `Quick test_sdbm_zero_start;
    Alcotest.test_case "algos differ" `Quick test_algos_differ;
    Alcotest.test_case "single-bit sensitivity" `Quick test_single_bit_sensitivity;
    Alcotest.test_case "streaming matches whole" `Quick test_streaming_matches_whole;
    Alcotest.test_case "hash_region" `Quick test_hash_region_matches_string;
    Alcotest.test_case "hash_bytes" `Quick test_hash_bytes_matches_string;
    Alcotest.test_case "hash_sub edge lengths" `Quick test_hash_sub_edge_lengths;
    Alcotest.test_case "hash_sub bounds" `Quick test_hash_sub_bounds;
    QCheck_alcotest.to_alcotest prop_hash_sub_matches_fold;
    QCheck_alcotest.to_alcotest prop_deterministic;
    QCheck_alcotest.to_alcotest prop_concat_streaming;
    Alcotest.test_case "combinable flags + block_pow" `Quick
      test_combinable_flags;
    QCheck_alcotest.to_alcotest prop_block_combine;
  ]
