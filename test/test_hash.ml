open Satin_introspect
open Satin_hw

(* Known-answer values computed from the reference C implementations
   (djb2: h = h*33 + c from 5381; sdbm: c + (h<<6) + (h<<16) - h;
   FNV-1a 64-bit). *)
let test_djb2_known () =
  Alcotest.(check int64) "empty" 5381L (Hash.hash_string Hash.Djb2 "");
  Alcotest.(check int64) "a" (Int64.add (Int64.mul 5381L 33L) 97L)
    (Hash.hash_string Hash.Djb2 "a");
  (* djb2("hello") computed stepwise *)
  let expect =
    List.fold_left
      (fun h c -> Int64.add (Int64.mul h 33L) (Int64.of_int (Char.code c)))
      5381L [ 'h'; 'e'; 'l'; 'l'; 'o' ]
  in
  Alcotest.(check int64) "hello" expect (Hash.hash_string Hash.Djb2 "hello")

let test_fnv1a_known () =
  Alcotest.(check int64) "empty is offset basis" 0xcbf29ce484222325L
    (Hash.hash_string Hash.Fnv1a "");
  (* FNV-1a 64 of "a" is a published constant. *)
  Alcotest.(check int64) "a" 0xaf63dc4c8601ec8cL (Hash.hash_string Hash.Fnv1a "a")

let test_sdbm_zero_start () =
  Alcotest.(check int64) "empty" 0L (Hash.hash_string Hash.Sdbm "");
  Alcotest.(check int64) "single byte" 97L (Hash.hash_string Hash.Sdbm "a")

let test_algos_differ () =
  let s = "the quick brown fox" in
  let h1 = Hash.hash_string Hash.Djb2 s in
  let h2 = Hash.hash_string Hash.Sdbm s in
  let h3 = Hash.hash_string Hash.Fnv1a s in
  Alcotest.(check bool) "djb2 <> sdbm" false (Int64.equal h1 h2);
  Alcotest.(check bool) "djb2 <> fnv" false (Int64.equal h1 h3)

let test_single_bit_sensitivity () =
  List.iter
    (fun algo ->
      let a = Hash.hash_string algo "abcdefgh" in
      let b = Hash.hash_string algo "abcdefgi" in
      if Int64.equal a b then
        Alcotest.failf "%s missed a one-byte change" (Hash.algo_to_string algo))
    Hash.all_algos

let test_streaming_matches_whole () =
  List.iter
    (fun algo ->
      let s = "stream me in pieces" in
      let whole = Hash.hash_string algo s in
      let stepped =
        String.fold_left (fun h c -> Hash.step algo h (Char.code c)) (Hash.init algo) s
      in
      Alcotest.(check int64) (Hash.algo_to_string algo) whole stepped)
    Hash.all_algos

let test_hash_region_matches_string () =
  let m = Memory.create ~size:1024 in
  Memory.write_string m ~world:World.Normal ~addr:100 "region contents";
  List.iter
    (fun algo ->
      Alcotest.(check int64)
        (Hash.algo_to_string algo)
        (Hash.hash_string algo "region contents")
        (Hash.hash_region algo m ~world:World.Secure ~addr:100 ~len:15))
    Hash.all_algos

let test_hash_bytes_matches_string () =
  let b = Bytes.of_string "bytes" in
  Alcotest.(check int64) "bytes = string" (Hash.hash_string Hash.Djb2 "bytes")
    (Hash.hash_bytes Hash.Djb2 b)

let prop_deterministic =
  QCheck.Test.make ~name:"hash deterministic" QCheck.string (fun s ->
      List.for_all
        (fun algo ->
          Int64.equal (Hash.hash_string algo s) (Hash.hash_string algo s))
        Hash.all_algos)

let prop_concat_streaming =
  QCheck.Test.make ~name:"hash(a^b) = resume(hash a, b)"
    QCheck.(pair string string)
    (fun (a, b) ->
      List.for_all
        (fun algo ->
          let whole = Hash.hash_string algo (a ^ b) in
          let resumed =
            String.fold_left
              (fun h c -> Hash.step algo h (Char.code c))
              (Hash.hash_string algo a) b
          in
          Int64.equal whole resumed)
        Hash.all_algos)

let suite =
  [
    Alcotest.test_case "djb2 known answers" `Quick test_djb2_known;
    Alcotest.test_case "fnv1a known answers" `Quick test_fnv1a_known;
    Alcotest.test_case "sdbm basics" `Quick test_sdbm_zero_start;
    Alcotest.test_case "algos differ" `Quick test_algos_differ;
    Alcotest.test_case "single-bit sensitivity" `Quick test_single_bit_sensitivity;
    Alcotest.test_case "streaming matches whole" `Quick test_streaming_matches_whole;
    Alcotest.test_case "hash_region" `Quick test_hash_region_matches_string;
    Alcotest.test_case "hash_bytes" `Quick test_hash_bytes_matches_string;
    QCheck_alcotest.to_alcotest prop_deterministic;
    QCheck_alcotest.to_alcotest prop_concat_streaming;
  ]
