(* Board, probers, rootkit, and the TZ-Evader orchestration. *)

open Satin_attack
open Satin_engine
module Scenario = Satin.Scenario
module Platform = Satin_hw.Platform
module Cpu = Satin_hw.Cpu
module World = Satin_hw.World
module Memory = Satin_hw.Memory
module Kernel = Satin_kernel.Kernel

let run s d = Scenario.run_for s d

(* ---- board ---- *)

let test_board_reports () =
  let s = Scenario.create ~seed:41 () in
  let b = Board.create ~platform:s.Scenario.platform ~period:(Sim_time.us 200) in
  run s (Sim_time.ms 1);
  Board.report b ~core:2;
  Alcotest.(check int) "stored now" (Sim_time.ms 1) (Board.last_report b ~core:2);
  Alcotest.(check int) "count" 1 (Board.reports_count b ~core:2);
  Alcotest.(check int) "other core untouched" 0 (Board.reports_count b ~core:3)

let test_board_lateness_grows_with_silence () =
  let s = Scenario.create ~seed:42 () in
  let period = Sim_time.us 200 in
  let b = Board.create ~platform:s.Scenario.platform ~period in
  Board.report b ~core:1;
  run s period;
  let l1 = Board.lateness b ~reader:0 ~target:1 ~staleness_scale:1.0 in
  run s (Sim_time.ms 2);
  let l2 = Board.lateness b ~reader:0 ~target:1 ~staleness_scale:1.0 in
  Alcotest.(check bool) "grows" true (l2 > l1 +. 1.5e-3);
  Alcotest.(check bool) "reflects silence" true (l2 > 1.8e-3)

let test_board_staleness_cached_per_window () =
  let s = Scenario.create ~seed:43 () in
  let b = Board.create ~platform:s.Scenario.platform ~period:(Sim_time.s 8) in
  Board.report b ~core:1;
  let a1 = Board.observed_age b ~reader:0 ~target:1 ~staleness_scale:1.0 in
  let a2 = Board.observed_age b ~reader:2 ~target:1 ~staleness_scale:1.0 in
  Alcotest.(check (float 1e-12)) "same draw within a round" a1 a2

(* ---- KProber ---- *)

let deploy_prober ?(period = Sim_time.us 200) ?(reporter = Kprober.Rt_reporter) s =
  Kprober.deploy s.Scenario.kernel
    { Kprober.default_config with period; reporter }

let test_kprober_quiet_no_detection () =
  let s = Scenario.create ~seed:44 () in
  let p = deploy_prober s in
  run s (Sim_time.s 2);
  Alcotest.(check (list pass)) "no detections" []
    (List.map (fun _ -> ()) (Kprober.detections p));
  Alcotest.(check bool) "nothing suspected" false (Kprober.suspected_any p);
  (* All cores reported thousands of times. *)
  for core = 0 to 5 do
    Alcotest.(check bool) "reporting" true (Board.reports_count (Kprober.board p) ~core > 5000)
  done

let test_kprober_detects_secure_entry () =
  let s = Scenario.create ~seed:45 () in
  let p = deploy_prober s in
  run s (Sim_time.ms 10);
  let cpu = Platform.core s.Scenario.platform 3 in
  Cpu.set_world cpu World.Secure;
  let entry = Scenario.now s in
  run s (Sim_time.ms 10);
  (match Kprober.detections p with
  | [ d ] ->
      Alcotest.(check int) "right core" 3 d.Kprober.det_core;
      let delay = Sim_time.to_sec_f (Sim_time.diff d.Kprober.det_time entry) in
      (* Tns_delay ≈ Tns_sched + Tns_threshold = 2e-4 + 1.8e-3 *)
      if delay < 1.8e-3 || delay > 3.5e-3 then
        Alcotest.failf "detection delay out of model: %g" delay
  | l -> Alcotest.failf "expected 1 detection, got %d" (List.length l));
  Alcotest.(check bool) "suspected" true (Kprober.suspected p ~core:3);
  (* Release the core: the prober clears. *)
  Cpu.set_world cpu World.Normal;
  run s (Sim_time.ms 10);
  Alcotest.(check bool) "cleared" false (Kprober.suspected p ~core:3)

let test_kprober_clear_hook () =
  let s = Scenario.create ~seed:46 () in
  let p = deploy_prober s in
  let cleared = ref [] in
  Kprober.on_clear p (fun ~core -> cleared := core :: !cleared);
  run s (Sim_time.ms 10);
  let cpu = Platform.core s.Scenario.platform 1 in
  Cpu.set_world cpu World.Secure;
  run s (Sim_time.ms 10);
  Cpu.set_world cpu World.Normal;
  run s (Sim_time.ms 10);
  Alcotest.(check (list int)) "clear fired once" [ 1 ] !cleared

let test_kprober_tick_reporter_leaves_trace () =
  let s = Scenario.create ~seed:47 () in
  let vt = s.Scenario.kernel.Kernel.vectors in
  Alcotest.(check bool) "pristine before" false
    (Satin_kernel.Vector_table.irq_hijacked vt);
  let p = deploy_prober ~period:(Sim_time.ms 1) ~reporter:Kprober.Tick_reporter s in
  (* KProber-I's deployment dirties the exception vector — the extra
     attacking trace §III-C1 warns about. *)
  Alcotest.(check bool) "vector hijacked" true
    (Satin_kernel.Vector_table.irq_hijacked vt);
  run s (Sim_time.ms 100);
  (* Reports flow from the tick path at ≥ HZ. *)
  for core = 0 to 5 do
    let n = Board.reports_count (Kprober.board p) ~core in
    if n < 20 then Alcotest.failf "core %d only %d tick reports" core n
  done;
  Kprober.retire p;
  Alcotest.(check bool) "trace cleaned on retire" false
    (Satin_kernel.Vector_table.irq_hijacked vt)

let test_kprober_tick_reporter_detects () =
  let s = Scenario.create ~seed:48 () in
  let p = deploy_prober ~period:(Sim_time.ms 1) ~reporter:Kprober.Tick_reporter s in
  run s (Sim_time.ms 50);
  Cpu.set_world (Platform.core s.Scenario.platform 2) World.Secure;
  run s (Sim_time.ms 30);
  Alcotest.(check bool) "detected via missed ticks" true (Kprober.suspected p ~core:2);
  ignore p

let test_kprober_retire_stops_probing () =
  let s = Scenario.create ~seed:49 () in
  let p = deploy_prober s in
  run s (Sim_time.ms 5);
  Kprober.retire p;
  run s (Sim_time.ms 5);
  let before = Board.reports_count (Kprober.board p) ~core:0 in
  run s (Sim_time.ms 20);
  Alcotest.(check int) "no reports after retire" before
    (Board.reports_count (Kprober.board p) ~core:0)


let test_kprober1_retire_stops_spinners () =
  let s = Scenario.create ~seed:59 () in
  let p = deploy_prober ~period:(Sim_time.ms 1) ~reporter:Kprober.Tick_reporter s in
  run s (Sim_time.ms 50);
  Kprober.retire p;
  run s (Sim_time.ms 50);
  (* With the spinners exited and probes stopped, every core goes NO_HZ
     idle: the spinner load is gone. *)
  for core = 0 to 5 do
    Alcotest.(check bool)
      (Printf.sprintf "core %d idle after retire" core)
      true
      (Satin_kernel.Sched.current s.Scenario.kernel.Kernel.sched ~core = None)
  done

(* ---- user-level prober ---- *)

let test_uprober_detects_with_coarser_threshold () =
  let s = Scenario.create ~seed:50 () in
  let p = Uprober.deploy s.Scenario.kernel Uprober.default_config in
  (* One full quiet round: no false positives. *)
  run s (Sim_time.s 9);
  Alcotest.(check int) "quiet" 0 (List.length (Uprober.detections p));
  (* Take a core mid-burst of the next round and hold it. *)
  run s (Sim_time.s 7 ) (* now at 16 s *);
  run s (Sim_time.ms 20) (* 20 ms into the 16 s round's burst *);
  Cpu.set_world (Platform.core s.Scenario.platform 4) World.Secure;
  run s (Sim_time.ms 60);
  Alcotest.(check bool) "detected mid-burst" true (Uprober.suspected p ~core:4);
  Cpu.set_world (Platform.core s.Scenario.platform 4) World.Normal;
  Uprober.retire p

let test_uprober_flags_core_missing_at_round_start () =
  let s = Scenario.create ~seed:58 () in
  let p = Uprober.deploy s.Scenario.kernel Uprober.default_config in
  run s (Sim_time.s 9);
  (* Core already secure when the 16 s round begins. *)
  run s (Sim_time.s 6);
  Cpu.set_world (Platform.core s.Scenario.platform 2) World.Secure;
  run s (Sim_time.s 1);
  run s (Sim_time.ms 100);
  Alcotest.(check bool) "flagged after warmup" true (Uprober.suspected p ~core:2);
  Cpu.set_world (Platform.core s.Scenario.platform 2) World.Normal;
  Uprober.retire p

(* ---- rootkit ---- *)

let test_rootkit_arm_hide_rearm_cycle () =
  let s = Scenario.create ~seed:51 () in
  let rk = Rootkit.create s.Scenario.kernel ~cleanup_core:0 () in
  Alcotest.(check bool) "dormant clean" false (Rootkit.hijacked_now rk);
  Rootkit.arm rk;
  Alcotest.(check bool) "armed dirty" true (Rootkit.hijacked_now rk);
  Alcotest.(check bool) "is_armed" true (Rootkit.is_armed rk);
  Rootkit.start_hide rk ();
  Alcotest.(check bool) "hiding state" true (Rootkit.state rk = Rootkit.Hiding);
  run s (Sim_time.ms 20);
  Alcotest.(check bool) "hidden clean" false (Rootkit.hijacked_now rk);
  Alcotest.(check int) "one hide" 1 (Rootkit.hides rk);
  (match Rootkit.last_hide_duration rk with
  | Some d ->
      let x = Sim_time.to_sec_f d in
      (* A53 recovery calibration: 5.42–6.13 ms *)
      if x < 5.4e-3 || x > 6.2e-3 then Alcotest.failf "hide duration %g" x
  | None -> Alcotest.fail "no hide duration");
  Rootkit.start_rearm rk ();
  run s (Sim_time.ms 20);
  Alcotest.(check bool) "re-armed dirty" true (Rootkit.hijacked_now rk);
  Alcotest.(check int) "one rearm" 1 (Rootkit.rearms rk)

let test_rootkit_progressive_restore () =
  let s = Scenario.create ~seed:52 () in
  let rk = Rootkit.create s.Scenario.kernel ~cleanup_core:0 () in
  Rootkit.arm rk;
  let addr = Rootkit.target_addr rk in
  let read_count_dirty original =
    let live =
      Memory.read_bytes s.Scenario.platform.Platform.memory ~world:World.Secure
        ~addr ~len:8
    in
    let d = ref 0 in
    Bytes.iteri (fun i c -> if c <> original.[i] then incr d) live;
    !d
  in
  let original =
    (* after arm, the original is what hide restores to; read from the
       rootkit's own view by hiding fully once. *)
    Bytes.to_string
      (Memory.read_bytes s.Scenario.platform.Platform.memory ~world:World.Secure
         ~addr ~len:8)
  in
  ignore original;
  Rootkit.start_hide rk ();
  (* Mid-hide: some bytes restored, some still evil. *)
  run s (Sim_time.ms 3);
  let evil = "\x41\x41\x41\x41\xef\xbe\xad\xde" in
  ignore evil;
  let still_dirty = read_count_dirty (
    let b = Bytes.create 8 in
    Bytes.set_int64_le b 0 0xdeadbeef41414141L;
    Bytes.to_string b) in
  (* [still_dirty] counts bytes differing from the evil value = restored. *)
  Alcotest.(check bool) "partially restored at 3ms" true (still_dirty >= 1 && still_dirty <= 7);
  run s (Sim_time.ms 10);
  Alcotest.(check bool) "fully clean" false (Rootkit.hijacked_now rk)

let test_rootkit_state_machine_guards () =
  let s = Scenario.create ~seed:53 () in
  let rk = Rootkit.create s.Scenario.kernel ~cleanup_core:0 () in
  (* hide from dormant is a no-op *)
  Rootkit.start_hide rk ();
  Alcotest.(check bool) "still dormant" true (Rootkit.state rk = Rootkit.Dormant);
  Rootkit.arm rk;
  (try
     Rootkit.arm rk;
     Alcotest.fail "double arm accepted"
   with Invalid_argument _ -> ());
  (* rearm while armed is a no-op *)
  Rootkit.start_rearm rk ();
  Alcotest.(check bool) "still armed" true (Rootkit.state rk = Rootkit.Armed);
  (* double hide: second is a no-op *)
  Rootkit.start_hide rk ();
  Rootkit.start_hide rk ();
  run s (Sim_time.ms 20);
  Alcotest.(check int) "one hide only" 1 (Rootkit.hides rk)

let test_rootkit_uptime_accounting () =
  let s = Scenario.create ~seed:54 () in
  let rk = Rootkit.create s.Scenario.kernel ~cleanup_core:4 () in
  Rootkit.arm rk;
  run s (Sim_time.ms 100);
  Rootkit.start_hide rk ();
  run s (Sim_time.ms 100);
  let up = Sim_time.to_sec_f (Rootkit.attack_uptime rk) in
  (* armed 100ms + ~5ms of hiding counted until the last byte clears *)
  if up < 0.100 || up > 0.112 then Alcotest.failf "uptime %g" up;
  run s (Sim_time.ms 100);
  Alcotest.(check (float 1e-3)) "uptime frozen while hidden" up
    (Sim_time.to_sec_f (Rootkit.attack_uptime rk))

let test_rootkit_a57_faster_cleanup () =
  let s = Scenario.create ~seed:55 () in
  let hide_on core =
    let rk = Rootkit.create ~target_addr:(6 * 1024 * 1024 + (core * 64))
        s.Scenario.kernel ~cleanup_core:core ()
    in
    Rootkit.arm rk;
    Rootkit.start_hide rk ();
    run s (Sim_time.ms 20);
    match Rootkit.last_hide_duration rk with
    | Some d -> Sim_time.to_sec_f d
    | None -> Alcotest.fail "hide incomplete"
  in
  let a53 = hide_on 0 and a57 = hide_on 4 in
  Alcotest.(check bool) "A57 cleans faster" true (a57 < a53)

(* ---- evader ---- *)

let test_evader_reacts_and_recovers () =
  let s = Scenario.create ~seed:56 () in
  let ev =
    Evader.deploy s.Scenario.kernel
      { Evader.default_config with
        prober = { Kprober.default_config with period = Sim_time.us 200 } }
  in
  Evader.start ev;
  run s (Sim_time.ms 50);
  Alcotest.(check bool) "armed while quiet" true (Rootkit.is_armed (Evader.rootkit ev));
  (* Fake a defender entering the secure world on core 5 for 7 ms. *)
  let cpu = Platform.core s.Scenario.platform 5 in
  Cpu.set_world cpu World.Secure;
  run s (Sim_time.ms 7);
  Cpu.set_world cpu World.Normal;
  run s (Sim_time.ms 30);
  Alcotest.(check int) "one evasion" 1 (Evader.evasions ev);
  Alcotest.(check bool) "re-armed after all-clear" true
    (Rootkit.is_armed (Evader.rootkit ev));
  (match Evader.hide_reaction_times ev with
  | [ r ] ->
      (* entry -> hidden ≈ Tns_delay + Tns_recover ≈ 8e-3 *)
      if r < 6e-3 || r > 11e-3 then Alcotest.failf "reaction %g" r
  | l -> Alcotest.failf "expected 1 reaction, got %d" (List.length l));
  Evader.stop ev

let test_evader_does_not_rearm_while_suspected () =
  let s = Scenario.create ~seed:57 () in
  let ev =
    Evader.deploy s.Scenario.kernel
      { Evader.default_config with
        prober = { Kprober.default_config with period = Sim_time.us 200 } }
  in
  Evader.start ev;
  run s (Sim_time.ms 20);
  let cpu = Platform.core s.Scenario.platform 2 in
  Cpu.set_world cpu World.Secure;
  (* Long introspection: the evader must stay hidden for its whole span. *)
  run s (Sim_time.ms 100);
  Alcotest.(check bool) "hidden while defender active" true
    (Rootkit.state (Evader.rootkit ev) = Rootkit.Hidden);
  Alcotest.(check bool) "hijack absent" false (Rootkit.hijacked_now (Evader.rootkit ev));
  Cpu.set_world cpu World.Normal;
  run s (Sim_time.ms 30);
  Alcotest.(check bool) "re-armed after exit" true (Rootkit.is_armed (Evader.rootkit ev));
  Evader.stop ev

let suite =
  [
    Alcotest.test_case "board reports" `Quick test_board_reports;
    Alcotest.test_case "board lateness grows" `Quick test_board_lateness_grows_with_silence;
    Alcotest.test_case "board staleness cached" `Quick test_board_staleness_cached_per_window;
    Alcotest.test_case "kprober quiet" `Quick test_kprober_quiet_no_detection;
    Alcotest.test_case "kprober detects secure entry" `Quick test_kprober_detects_secure_entry;
    Alcotest.test_case "kprober clear hook" `Quick test_kprober_clear_hook;
    Alcotest.test_case "kprober-I leaves vector trace" `Quick
      test_kprober_tick_reporter_leaves_trace;
    Alcotest.test_case "kprober-I detects" `Quick test_kprober_tick_reporter_detects;
    Alcotest.test_case "kprober retire" `Quick test_kprober_retire_stops_probing;
    Alcotest.test_case "kprober-I retire stops spinners" `Quick
      test_kprober1_retire_stops_spinners;
    Alcotest.test_case "uprober detects" `Quick test_uprober_detects_with_coarser_threshold;
    Alcotest.test_case "uprober flags missing at round start" `Quick
      test_uprober_flags_core_missing_at_round_start;
    Alcotest.test_case "rootkit cycle" `Quick test_rootkit_arm_hide_rearm_cycle;
    Alcotest.test_case "rootkit progressive restore" `Quick test_rootkit_progressive_restore;
    Alcotest.test_case "rootkit state guards" `Quick test_rootkit_state_machine_guards;
    Alcotest.test_case "rootkit uptime" `Quick test_rootkit_uptime_accounting;
    Alcotest.test_case "rootkit A57 faster" `Quick test_rootkit_a57_faster_cleanup;
    Alcotest.test_case "evader reacts and recovers" `Quick test_evader_reacts_and_recovers;
    Alcotest.test_case "evader stays hidden while watched" `Quick
      test_evader_does_not_rearm_while_suspected;
  ]
