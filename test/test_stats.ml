open Satin_engine

let feed xs =
  let s = Stats.create () in
  List.iter (Stats.add s) xs;
  s

let checkf = Alcotest.(check (float 1e-9))

let test_basic () =
  let s = feed [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check int) "count" 4 (Stats.count s);
  checkf "mean" 2.5 (Stats.mean s);
  checkf "min" 1.0 (Stats.min s);
  checkf "max" 4.0 (Stats.max s);
  checkf "total" 10.0 (Stats.total s)

let test_stddev () =
  let s = feed [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  (* population sd of this classic set is 2; sample sd = sqrt(32/7) *)
  checkf "sample stddev" (sqrt (32.0 /. 7.0)) (Stats.stddev s);
  let single = feed [ 42.0 ] in
  checkf "single sample sd" 0.0 (Stats.stddev single)

let test_empty_raises () =
  let s = Stats.create () in
  Alcotest.(check bool) "is_empty" true (Stats.is_empty s);
  (try
     ignore (Stats.mean s);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

let test_quantiles () =
  let s = feed [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  checkf "median" 3.0 (Stats.median s);
  checkf "q0" 1.0 (Stats.quantile s 0.0);
  checkf "q1" 5.0 (Stats.quantile s 1.0);
  checkf "q25" 2.0 (Stats.quantile s 0.25);
  (* interpolation between order statistics *)
  let s2 = feed [ 0.0; 10.0 ] in
  checkf "interpolated median" 5.0 (Stats.median s2)

let test_quantile_unsorted_input () =
  let s = feed [ 5.0; 1.0; 3.0; 2.0; 4.0 ] in
  checkf "median of shuffled" 3.0 (Stats.median s)

let test_add_after_quantile () =
  (* The sorted cache must be invalidated by a later add. *)
  let s = feed [ 1.0; 3.0 ] in
  checkf "median before" 2.0 (Stats.median s);
  Stats.add s 100.0;
  checkf "median after add" 3.0 (Stats.median s)

let test_boxplot_no_outliers () =
  let s = feed [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  let b = Stats.boxplot s in
  checkf "median" 3.0 b.Stats.median;
  checkf "q1" 2.0 b.Stats.q1;
  checkf "q3" 4.0 b.Stats.q3;
  checkf "low whisker" 1.0 b.Stats.low_whisker;
  checkf "high whisker" 5.0 b.Stats.high_whisker;
  Alcotest.(check int) "no outliers" 0 (List.length b.Stats.outliers)

let test_boxplot_outlier () =
  let s = feed [ 1.0; 2.0; 3.0; 4.0; 100.0 ] in
  let b = Stats.boxplot s in
  Alcotest.(check (list (float 1e-9))) "outlier found" [ 100.0 ] b.Stats.outliers;
  checkf "high whisker excludes outlier" 4.0 b.Stats.high_whisker

let test_add_time () =
  let s = Stats.create () in
  Stats.add_time s (Sim_time.ms 2);
  checkf "seconds conversion" 0.002 (Stats.mean s)

let test_to_array_order () =
  let s = feed [ 3.0; 1.0; 2.0 ] in
  Alcotest.(check (array (float 1e-9))) "insertion order" [| 3.0; 1.0; 2.0 |]
    (Stats.to_array s)

let test_summary_row () =
  let s = feed [ 1e-4; 2e-4; 3e-4 ] in
  Alcotest.(check string) "paper format" "2.00e-04 / 3.00e-04 / 1.00e-04"
    (Stats.summary_row s)

let test_running_matches_exact () =
  let xs = List.init 1000 (fun i -> float_of_int ((i * 37) mod 101)) in
  let exact = feed xs in
  let r = Stats.Running.create () in
  List.iter (Stats.Running.add r) xs;
  checkf "mean" (Stats.mean exact) (Stats.Running.mean r);
  Alcotest.(check (float 1e-6)) "stddev" (Stats.stddev exact) (Stats.Running.stddev r);
  checkf "min" (Stats.min exact) (Stats.Running.min r);
  checkf "max" (Stats.max exact) (Stats.Running.max r);
  Alcotest.(check (float 1e-6)) "total" (Stats.total exact) (Stats.Running.total r)


let test_histogram () =
  let s = feed [ 0.0; 0.5; 1.0; 1.5; 2.0 ] in
  let h = Stats.histogram s ~bins:2 in
  (match h with
  | [ (e0, c0); (e1, c1) ] ->
      checkf "first edge" 0.0 e0;
      checkf "second edge" 1.0 e1;
      Alcotest.(check int) "low bin" 2 c0;
      Alcotest.(check int) "high bin (max inclusive)" 3 c1
  | _ -> Alcotest.fail "two bins expected");
  let const = feed [ 5.0; 5.0; 5.0 ] in
  (match Stats.histogram const ~bins:4 with
  | (_, c) :: rest ->
      Alcotest.(check int) "constant sample in one bin" 3 c;
      List.iter (fun (_, c) -> Alcotest.(check int) "others empty" 0 c) rest
  | [] -> Alcotest.fail "bins expected");
  try
    ignore (Stats.histogram s ~bins:0);
    Alcotest.fail "zero bins accepted"
  with Invalid_argument _ -> ()

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile monotone in q"
    QCheck.(list_of_size Gen.(2 -- 50) (float_bound_inclusive 100.0))
    (fun xs ->
      let s = feed xs in
      let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 1.0 ] in
      let vals = List.map (Stats.quantile s) qs in
      let rec mono = function
        | a :: (b :: _ as rest) -> a <= b +. 1e-12 && mono rest
        | _ -> true
      in
      mono vals)

let test_nan_rejected () =
  let s = feed [ 1.0; 2.0 ] in
  Alcotest.(check bool) "add nan raises" true
    (try
       Stats.add s Float.nan;
       false
     with Invalid_argument _ -> true);
  (* The rejected sample must not have touched the accumulator. *)
  Alcotest.(check int) "count unchanged" 2 (Stats.count s);
  checkf "mean unchanged" 1.5 (Stats.mean s);
  let r = Stats.Running.create () in
  Stats.Running.add r 1.0;
  Alcotest.(check bool) "Running.add nan raises" true
    (try
       Stats.Running.add r (0.0 /. 0.0);
       false
     with Invalid_argument _ -> true);
  Alcotest.(check int) "running count unchanged" 1 (Stats.Running.count r)

let test_infinities_accepted () =
  (* The contract draws the line at NaN: infinities order correctly. *)
  let s = feed [ 1.0; Float.infinity; Float.neg_infinity ] in
  Alcotest.(check int) "count" 3 (Stats.count s);
  Alcotest.(check bool) "min is -inf" true (Stats.min s = Float.neg_infinity);
  Alcotest.(check bool) "max is +inf" true (Stats.max s = Float.infinity)

let prop_mean_between_min_max =
  QCheck.Test.make ~name:"min <= mean <= max"
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 1000.0))
    (fun xs ->
      let s = feed xs in
      Stats.min s <= Stats.mean s +. 1e-9 && Stats.mean s <= Stats.max s +. 1e-9)

let suite =
  [
    Alcotest.test_case "basic" `Quick test_basic;
    Alcotest.test_case "stddev" `Quick test_stddev;
    Alcotest.test_case "empty raises" `Quick test_empty_raises;
    Alcotest.test_case "quantiles" `Quick test_quantiles;
    Alcotest.test_case "quantile unsorted" `Quick test_quantile_unsorted_input;
    Alcotest.test_case "cache invalidation" `Quick test_add_after_quantile;
    Alcotest.test_case "boxplot no outliers" `Quick test_boxplot_no_outliers;
    Alcotest.test_case "boxplot outlier" `Quick test_boxplot_outlier;
    Alcotest.test_case "add_time" `Quick test_add_time;
    Alcotest.test_case "to_array order" `Quick test_to_array_order;
    Alcotest.test_case "summary row format" `Quick test_summary_row;
    Alcotest.test_case "running matches exact" `Quick test_running_matches_exact;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "nan rejected" `Quick test_nan_rejected;
    Alcotest.test_case "infinities accepted" `Quick test_infinities_accepted;
    QCheck_alcotest.to_alcotest prop_quantile_monotone;
    QCheck_alcotest.to_alcotest prop_mean_between_min_max;
  ]
