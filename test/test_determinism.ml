(* The parallel runner's contract: a pooled run is a pure wall-clock
   optimization. The full quick-campaign report and the machine-readable
   summaries must be byte-identical at jobs=1 and jobs=4, whatever the
   seed. *)

module E = Satin.Experiment
module S = Satin.Summary
module Runner = Satin_runner.Runner
module Json = Satin_obs.Json

let report ~pool ~seed =
  let buf = Buffer.create (1 lsl 16) in
  let fmt = Format.formatter_of_buffer buf in
  E.run_all ~pool ~seed ~quick:true fmt;
  Format.pp_print_flush fmt ();
  Buffer.contents buf

(* First divergence position, for a failure message that actually helps. *)
let check_identical what seq par =
  if not (String.equal seq par) then begin
    let n = min (String.length seq) (String.length par) in
    let i = ref 0 in
    while !i < n && seq.[!i] = par.[!i] do
      incr i
    done;
    let context s =
      let from = max 0 (!i - 40) in
      String.sub s from (min 80 (String.length s - from))
    in
    Alcotest.failf "%s diverges at byte %d:\n  jobs=1: %S\n  jobs=4: %S" what
      !i (context seq) (context par)
  end

let test_report_identical seed () =
  let seq = report ~pool:Runner.sequential ~seed in
  let par = report ~pool:(Runner.create ~clamp:false ~jobs:4 ()) ~seed in
  check_identical (Printf.sprintf "run_all ~quick report (seed %d)" seed) seq
    par

(* The bench harness's --json path: structured summaries of the pooled
   experiments, serialized. None of these builders includes wall-clock. *)
let summary ~pool ~seed =
  Json.to_string
    (Json.Obj
       [
         ("e1", S.e1 (E.run_e1 ~pool ~seed ()));
         ("table2", S.table2 (E.run_table2 ~pool ~seed ~rounds:15 ()));
         ("uprober", S.uprober (E.run_uprober ~pool ~seed ~trials:6 ()));
         ( "sweep",
           S.sweep
             (E.run_tgoal_sweep ~pool ~seed ~trials:2 ~tps_s:[ 1.0; 4.0 ] ())
         );
       ])

let test_json_identical seed () =
  let seq = summary ~pool:Runner.sequential ~seed in
  let par = summary ~pool:(Runner.create ~clamp:false ~jobs:4 ()) ~seed in
  check_identical (Printf.sprintf "--json summary (seed %d)" seed) seq par

let seeds = [ 7; 11; 42 ]

let suite =
  List.concat_map
    (fun seed ->
      [
        Alcotest.test_case
          (Printf.sprintf "run_all report jobs 1 = 4 (seed %d)" seed)
          `Slow (test_report_identical seed);
        Alcotest.test_case
          (Printf.sprintf "json summary jobs 1 = 4 (seed %d)" seed)
          `Slow (test_json_identical seed);
      ])
    seeds
