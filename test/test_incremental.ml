(* Incremental scan hashing: the cached-block fast path must be
   observationally identical to a full re-hash — same verdicts, same
   caught offsets, same observed hashes, same Merkle roots — under any
   interleaving of writes, restores, and scans. The only permitted
   difference is host work, which we check via the rehash counters. *)

open Satin_introspect
open Satin_hw
open Satin_engine

let ps = Memory.gen_page_size

(* ------------------------------------------------------------------ *)
(* Fixtures                                                            *)
(* ------------------------------------------------------------------ *)

let pattern_byte off = (off * 131) land 0xff

let setup ?(seed = 23) ?(algo = Hash.Djb2) ?(style = Checker.Direct_hash)
    ?(len = (16 * ps) + 123) () =
  let platform = Platform.juno_r1 ~seed () in
  let memory = platform.Platform.memory in
  let base = 4 * 1024 * 1024 in
  let block = Bytes.create 256 in
  for off0 = 0 to (len - 1) / 256 do
    let n = min 256 (len - (off0 * 256)) in
    for j = 0 to n - 1 do
      Bytes.set block j (Char.chr (pattern_byte ((off0 * 256) + j)))
    done;
    Memory.write_string memory ~world:World.Secure ~addr:(base + (off0 * 256))
      (Bytes.sub_string block 0 n)
  done;
  let checker =
    Checker.create ~memory ~cycle:platform.Platform.cycle
      ~prng:(Platform.split_prng platform) ~algo ~style ()
  in
  (platform, checker, base, len)

let scan platform checker ~base ~len ~verdicts =
  let core = Platform.core platform 4 in
  ignore
    (Checker.start_scan checker ~engine:platform.Platform.engine ~core ~base
       ~len ~on_verdict:(fun v -> verdicts := v :: !verdicts))

let run_ms platform ms =
  Engine.run_until platform.Platform.engine
    (Sim_time.add (Engine.now platform.Platform.engine) (Sim_time.ms ms))

(* ------------------------------------------------------------------ *)
(* Toggle semantics                                                    *)
(* ------------------------------------------------------------------ *)

let test_toggle () =
  Alcotest.(check bool) "incremental is the default" true
    (Incremental.enabled ());
  Incremental.with_enabled false (fun () ->
      Alcotest.(check bool) "disabled in scope" false (Incremental.enabled ()));
  Alcotest.(check bool) "restored" true (Incremental.enabled ());
  (try
     Incremental.with_enabled false (fun () -> failwith "boom")
   with Failure _ -> ());
  Alcotest.(check bool) "restored on exception" true (Incremental.enabled ())

(* ------------------------------------------------------------------ *)
(* Caching behaviour (counters)                                        *)
(* ------------------------------------------------------------------ *)

let test_quiescent_rescan_all_cached () =
  let platform, checker, base, len = setup () in
  let enrolled = Checker.enroll checker ~base ~len in
  let verdicts = ref [] in
  scan platform checker ~base ~len ~verdicts;
  run_ms platform 20;
  let r1 = Checker.blocks_rehashed checker in
  Alcotest.(check bool) "first scan rehashes" true (r1 > 0);
  scan platform checker ~base ~len ~verdicts;
  run_ms platform 20;
  Alcotest.(check int) "quiescent rescan rehashes nothing" r1
    (Checker.blocks_rehashed checker);
  Alcotest.(check bool) "rescan served from cache" true
    (Checker.blocks_cached checker > 0);
  match !verdicts with
  | [ v2; v1 ] ->
      Alcotest.(check bool) "scan 1 clean" false v1.Checker.v_tampered;
      Alcotest.(check bool) "scan 2 clean" false v2.Checker.v_tampered;
      Alcotest.(check int64) "hash 1" enrolled v1.Checker.v_hash_observed;
      Alcotest.(check int64) "hash 2" enrolled v2.Checker.v_hash_observed
  | _ -> Alcotest.fail "expected two verdicts"

let test_dirty_rescan_rehashes_only_touched () =
  let platform, checker, base, len = setup () in
  ignore (Checker.enroll checker ~base ~len);
  let verdicts = ref [] in
  scan platform checker ~base ~len ~verdicts;
  run_ms platform 20;
  let r1 = Checker.blocks_rehashed checker in
  (* Dirty exactly one page, with a persistent modification. *)
  Memory.write_string platform.Platform.memory ~world:World.Normal
    ~addr:(base + (3 * ps) + 17) "\xde\xad";
  scan platform checker ~base ~len ~verdicts;
  run_ms platform 20;
  let delta = Checker.blocks_rehashed checker - r1 in
  (* The touched block is re-examined by the dirty-range pass and again by
     the verdict hash; anything near r1 means caching broke. *)
  Alcotest.(check bool) "only the touched block re-hashed" true
    (delta >= 1 && delta <= 4);
  match !verdicts with
  | [ v2; _ ] ->
      Alcotest.(check bool) "tamper caught" true v2.Checker.v_tampered;
      Alcotest.(check (list int)) "offsets exact"
        [ (3 * ps) + 17; (3 * ps) + 18 ]
        v2.Checker.v_offsets
  | _ -> Alcotest.fail "expected two verdicts"

let test_tamper_restore_roundtrip () =
  let platform, checker, base, len = setup () in
  let enrolled = Checker.enroll checker ~base ~len in
  let addr = base + (7 * ps) + 200 in
  let original =
    Bytes.to_string
      (Memory.read_bytes platform.Platform.memory ~world:World.Normal ~addr
         ~len:4)
  in
  Memory.write_string platform.Platform.memory ~world:World.Normal ~addr
    "\x01\x02\x03\x04";
  Memory.write_string platform.Platform.memory ~world:World.Normal ~addr
    original;
  let verdicts = ref [] in
  scan platform checker ~base ~len ~verdicts;
  run_ms platform 20;
  match !verdicts with
  | [ v ] ->
      Alcotest.(check bool) "restored before scan: clean" false
        v.Checker.v_tampered;
      Alcotest.(check int64) "hash matches enrolled" enrolled
        v.Checker.v_hash_observed
  | _ -> Alcotest.fail "expected one verdict"

(* ------------------------------------------------------------------ *)
(* Merkle incremental live hashing                                     *)
(* ------------------------------------------------------------------ *)

let test_merkle_incremental_counters () =
  let memory = Memory.create ~size:(1024 * 1024) in
  let base = 4096 and len = 16 * 4096 in
  for i = 0 to len - 1 do
    Memory.write_byte memory ~world:World.Secure ~addr:(base + i)
      (pattern_byte i)
  done;
  let t = Merkle.build Hash.Djb2 memory ~base ~len in
  Alcotest.(check bool) "verifies clean" true (Merkle.verify_root t memory);
  let r1 = Merkle.live_leaf_rehashes t in
  Alcotest.(check bool) "quiescent verify cached" true
    (Merkle.verify_root t memory
    && Merkle.live_leaf_rehashes t = r1
    && Merkle.live_leaf_cached t > 0);
  Memory.write_byte memory ~world:World.Normal ~addr:(base + (9 * 4096) + 5)
    0xEE;
  Alcotest.(check (list int)) "dirty page pinpointed" [ 9 ]
    (Merkle.dirty_pages t memory);
  Alcotest.(check int) "exactly one leaf re-hashed" (r1 + 1)
    (Merkle.live_leaf_rehashes t);
  Alcotest.(check bool) "root mismatch" false (Merkle.verify_root t memory);
  Merkle.update_page t memory ~page:9;
  Alcotest.(check bool) "clean after authorized update" true
    (Merkle.verify_root t memory);
  (* Incremental and reference roots agree on the updated tree. *)
  let live_incr = Incremental.with_enabled true (fun () -> Merkle.root t) in
  Alcotest.(check bool) "roots stable" true (Int64.equal live_incr (Merkle.root t))

(* ------------------------------------------------------------------ *)
(* Differential properties: incremental == full re-hash                *)
(* ------------------------------------------------------------------ *)

type op = Tamper of int | Restore of int

(* Replay one generated trace — three scans with writes and restores
   interleaved at generated sim-times — and collect every observable:
   verdict flags, caught offsets, observed/expected hashes, in order. *)
let run_scan_trace ~incremental ~algo ~style ops =
  Incremental.with_enabled incremental (fun () ->
      let platform, checker, base, len = setup ~algo ~style () in
      ignore (Checker.enroll checker ~base ~len);
      let memory = platform.Platform.memory in
      let verdicts = ref [] in
      scan platform checker ~base ~len ~verdicts;
      List.iter
        (fun (ms, op) ->
          ignore
            (Engine.schedule platform.Platform.engine
               ~after:(Sim_time.us (ms * 100)) (fun () ->
                 match op with
                 | Tamper off ->
                     Memory.write_string memory ~world:World.Normal
                       ~addr:(base + off) "\xde\xad\xbe\xef"
                 | Restore off ->
                     for j = 0 to 3 do
                       Memory.write_byte memory ~world:World.Normal
                         ~addr:(base + off + j)
                         (pattern_byte (off + j))
                     done)))
        ops;
      run_ms platform 20;
      scan platform checker ~base ~len ~verdicts;
      run_ms platform 20;
      scan platform checker ~base ~len ~verdicts;
      run_ms platform 20;
      List.rev_map
        (fun v ->
          ( v.Checker.v_tampered,
            v.Checker.v_offsets,
            v.Checker.v_hash_observed,
            v.Checker.v_hash_expected ))
        !verdicts)

let trace_gen =
  QCheck.Gen.(
    let len = (16 * ps) + 123 in
    let op =
      pair (int_bound 80)
        (map2
           (fun restore off -> if restore then Restore off else Tamper off)
           bool
           (int_bound (len - 5)))
    in
    triple (list_size (int_range 0 12) op)
      (oneofl [ Hash.Djb2; Hash.Sdbm; Hash.Fnv1a ])
      (oneofl [ Checker.Direct_hash; Checker.Snapshot ]))

let prop_scan_differential =
  QCheck.Test.make ~count:25
    ~name:"incremental scans == full re-hash (verdicts, offsets, hashes)"
    (QCheck.make trace_gen)
    (fun (ops, algo, style) ->
      let incr = run_scan_trace ~incremental:true ~algo ~style ops in
      let full = run_scan_trace ~incremental:false ~algo ~style ops in
      incr = full)

(* Host-side Merkle differential: a random sequence of page writes,
   restores and tree queries must produce identical roots and dirty-page
   reports whether the live hashing is cached or recomputed. *)
type mop = Mwrite of int * int | Mrestore of int | Mquery | Mupdate of int

let run_merkle_trace ~incremental ops =
  Incremental.with_enabled incremental (fun () ->
      let memory = Memory.create ~size:(256 * 1024) in
      let base = 4096 and len = (11 * 4096) + 100 in
      for i = 0 to len - 1 do
        Memory.write_byte memory ~world:World.Secure ~addr:(base + i)
          (pattern_byte i)
      done;
      let t = Merkle.build Hash.Djb2 memory ~base ~len in
      let out = ref [] in
      List.iter
        (fun op ->
          match op with
          | Mwrite (off, v) ->
              Memory.write_byte memory ~world:World.Normal ~addr:(base + off) v
          | Mrestore off ->
              Memory.write_byte memory ~world:World.Normal ~addr:(base + off)
                (pattern_byte off)
          | Mquery ->
              out :=
                (Merkle.verify_root t memory, Merkle.dirty_pages t memory)
                :: !out
          | Mupdate page -> Merkle.update_page t memory ~page)
        ops;
      out := (Merkle.verify_root t memory, Merkle.dirty_pages t memory) :: !out;
      List.rev !out)

let merkle_trace_gen =
  QCheck.Gen.(
    let len = (11 * 4096) + 100 in
    let op =
      frequency
        [
          (4, map2 (fun o v -> Mwrite (o, v)) (int_bound (len - 1)) (int_bound 255));
          (2, map (fun o -> Mrestore o) (int_bound (len - 1)));
          (3, return Mquery);
          (1, map (fun p -> Mupdate p) (int_bound 10));
        ]
    in
    list_size (int_range 0 30) op)

let prop_merkle_differential =
  QCheck.Test.make ~count:50
    ~name:"incremental merkle == full recompute (roots, dirty pages)"
    (QCheck.make merkle_trace_gen)
    (fun ops ->
      run_merkle_trace ~incremental:true ops
      = run_merkle_trace ~incremental:false ops)

let suite =
  [
    Alcotest.test_case "toggle semantics" `Quick test_toggle;
    Alcotest.test_case "quiescent rescan all cached" `Quick
      test_quiescent_rescan_all_cached;
    Alcotest.test_case "dirty rescan rehashes only touched" `Quick
      test_dirty_rescan_rehashes_only_touched;
    Alcotest.test_case "tamper/restore roundtrip" `Quick
      test_tamper_restore_roundtrip;
    Alcotest.test_case "merkle incremental counters" `Quick
      test_merkle_incremental_counters;
    QCheck_alcotest.to_alcotest prop_scan_differential;
    QCheck_alcotest.to_alcotest prop_merkle_differential;
  ]
