open Satin_engine

let make () =
  let t = Trace.create () in
  Trace.record t 10 "a";
  Trace.record t 20 "b";
  Trace.record t 30 "a";
  Trace.record t 45 "c";
  t

let test_order_and_length () =
  let t = make () in
  Alcotest.(check int) "length" 4 (Trace.length t);
  Alcotest.(check (list string)) "values in order" [ "a"; "b"; "a"; "c" ]
    (Trace.values t);
  Alcotest.(check (list int)) "times in order" [ 10; 20; 30; 45 ]
    (List.map (fun e -> e.Trace.time) (Trace.to_list t))

let test_filter_count () =
  let t = make () in
  Alcotest.(check int) "count a" 2 (Trace.count (( = ) "a") t);
  Alcotest.(check int) "filter a" 2 (List.length (Trace.filter (( = ) "a") t))

let test_find () =
  let t = make () in
  (match Trace.find_first (( = ) "a") t with
  | Some e -> Alcotest.(check int) "first a" 10 e.Trace.time
  | None -> Alcotest.fail "missing");
  (match Trace.find_last (( = ) "a") t with
  | Some e -> Alcotest.(check int) "last a" 30 e.Trace.time
  | None -> Alcotest.fail "missing");
  Alcotest.(check bool) "find none" true (Trace.find_first (( = ) "z") t = None);
  match Trace.last t with
  | Some e -> Alcotest.(check string) "last overall" "c" e.Trace.value
  | None -> Alcotest.fail "missing last"

let test_gaps () =
  let t = make () in
  Alcotest.(check (list int)) "gaps between a's" [ 20 ] (Trace.gaps (( = ) "a") t);
  Alcotest.(check (list int)) "gaps all" [ 10; 10; 15 ] (Trace.gaps (fun _ -> true) t);
  Alcotest.(check (list int)) "gaps single" [] (Trace.gaps (( = ) "b") t);
  Alcotest.(check (list int)) "gaps none" [] (Trace.gaps (( = ) "z") t)

let test_clear () =
  let t = make () in
  Trace.clear t;
  Alcotest.(check int) "cleared" 0 (Trace.length t);
  Alcotest.(check bool) "no last" true (Trace.last t = None)

let test_iter_fold () =
  let t = make () in
  let seen = ref [] in
  Trace.iter (fun time v -> seen := (time, v) :: !seen) t;
  Alcotest.(check (list (pair int string)))
    "iter visits in order"
    [ (10, "a"); (20, "b"); (30, "a"); (45, "c") ]
    (List.rev !seen);
  Alcotest.(check int) "fold sums times" 105
    (Trace.fold (fun acc time _ -> acc + time) 0 t);
  Alcotest.(check string) "fold concatenates in order" "abac"
    (Trace.fold (fun acc _ v -> acc ^ v) "" t);
  let empty : int Trace.t = Trace.create () in
  Trace.iter (fun _ _ -> Alcotest.fail "iter on empty") empty;
  Alcotest.(check int) "fold on empty" 7
    (Trace.fold (fun acc _ _ -> acc + 1) 7 empty)

let test_empty () =
  let t : int Trace.t = Trace.create () in
  Alcotest.(check int) "empty length" 0 (Trace.length t);
  Alcotest.(check bool) "empty list" true (Trace.to_list t = [])

let suite =
  [
    Alcotest.test_case "order and length" `Quick test_order_and_length;
    Alcotest.test_case "filter and count" `Quick test_filter_count;
    Alcotest.test_case "find first/last" `Quick test_find;
    Alcotest.test_case "gaps" `Quick test_gaps;
    Alcotest.test_case "iter and fold" `Quick test_iter_fold;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "empty" `Quick test_empty;
  ]
