(* Scheduler semantics: RT preemption, CFS fairness, affinity, world pauses. *)

open Satin_kernel
open Satin_hw
open Satin_engine

let boot () =
  let platform = Platform.juno_r1 ~seed:11 () in
  Kernel.boot platform

let engine kernel = kernel.Kernel.platform.Platform.engine
let run kernel d = Engine.run_until (engine kernel) (Sim_time.add (Engine.now (engine kernel)) d)

let cpu_hog ?affinity name =
  Task.create ~name ~policy:Task.Cfs ?affinity
    ~body:(fun _ -> { Task.cpu = Sim_time.ms 1; after = (fun () -> Task.Reenter) })
    ()

let test_spawn_and_run () =
  let k = boot () in
  let units = ref 0 in
  let t =
    Task.create ~name:"worker" ~policy:Task.Cfs ~affinity:0
      ~body:(fun _ ->
        { Task.cpu = Sim_time.ms 1; after = (fun () -> incr units; Task.Reenter) })
      ()
  in
  Kernel.spawn k t;
  run k (Sim_time.ms 100);
  Alcotest.(check int) "~100 units in 100ms alone" 100 !units

let test_double_spawn_rejected () =
  let k = boot () in
  let t = cpu_hog "dup" in
  Kernel.spawn k t;
  try
    Kernel.spawn k t;
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let test_bad_affinity_rejected () =
  let k = boot () in
  try
    Kernel.spawn k (cpu_hog ~affinity:17 "bad");
    Alcotest.fail "expected rejection"
  with Invalid_argument _ -> ()

let test_cfs_fairness_two_hogs () =
  let k = boot () in
  let a = cpu_hog ~affinity:1 "a" and b = cpu_hog ~affinity:1 "b" in
  Kernel.spawn k a;
  Kernel.spawn k b;
  run k (Sim_time.s 1);
  let ca = Sim_time.to_sec_f (Task.cpu_time a)
  and cb = Sim_time.to_sec_f (Task.cpu_time b) in
  if Float.abs (ca -. cb) > 0.02 then Alcotest.failf "unfair: %.3f vs %.3f" ca cb;
  if ca +. cb < 0.95 then Alcotest.failf "core underutilized: %.3f" (ca +. cb)

let test_rt_preempts_cfs () =
  let k = boot () in
  let hog = cpu_hog ~affinity:2 "hog" in
  Kernel.spawn k hog;
  run k (Sim_time.ms 10);
  let wake_latencies = ref [] in
  let expected_wake = ref Sim_time.zero in
  let rt =
    Task.create ~name:"rt" ~policy:(Task.Rt_fifo 99) ~affinity:2
      ~body:(fun _ ->
        {
          Task.cpu = Sim_time.us 10;
          after =
            (fun () ->
              let now = Engine.now (engine k) in
              if !expected_wake > Sim_time.zero then
                wake_latencies :=
                  Sim_time.diff now (Sim_time.add !expected_wake (Sim_time.us 10))
                  :: !wake_latencies;
              expected_wake := Sim_time.add now (Sim_time.ms 1);
              Task.Sleep (Sim_time.ms 1));
        })
      ()
  in
  Kernel.spawn k rt;
  run k (Sim_time.ms 200);
  Alcotest.(check bool) "rt ran many times" true (List.length !wake_latencies > 100);
  (* RT wakes must not wait for the CFS slice to end. *)
  List.iter
    (fun l ->
      if l > Sim_time.us 50 then
        Alcotest.failf "rt wake latency too high: %s" (Sim_time.to_string l))
    !wake_latencies;
  (* The hog still makes progress between RT bursts. *)
  Alcotest.(check bool) "hog progressed" true
    (Task.cpu_time hog > Sim_time.ms 150)

let test_rt_priority_order () =
  let k = boot () in
  let order = ref [] in
  let finished p = order := p :: !order in
  (* Three RT tasks made runnable while the core is held in the secure
     world: on release they must run in priority order. *)
  Cpu.set_world (Platform.core k.Kernel.platform 3) World.Secure;
  let make prio =
    Task.create ~name:(Printf.sprintf "rt%d" prio) ~policy:(Task.Rt_fifo prio)
      ~affinity:3
      ~body:(fun _ ->
        { Task.cpu = Sim_time.us 100; after = (fun () -> finished prio; Task.Exit) })
      ()
  in
  Kernel.spawn k (make 10);
  Kernel.spawn k (make 90);
  Kernel.spawn k (make 50);
  run k (Sim_time.ms 1);
  Cpu.set_world (Platform.core k.Kernel.platform 3) World.Normal;
  run k (Sim_time.ms 10);
  Alcotest.(check (list int)) "highest priority first" [ 90; 50; 10 ] (List.rev !order)

let test_pinned_task_stalls_when_core_secure () =
  let k = boot () in
  let t = cpu_hog ~affinity:4 "pinned" in
  Kernel.spawn k t;
  run k (Sim_time.ms 50);
  let before = Task.cpu_time t in
  Cpu.set_world (Platform.core k.Kernel.platform 4) World.Secure;
  run k (Sim_time.ms 50);
  let during = Task.cpu_time t in
  Alcotest.(check bool) "no progress while core secure" true
    (Sim_time.diff during before < Sim_time.ms 2);
  Cpu.set_world (Platform.core k.Kernel.platform 4) World.Normal;
  run k (Sim_time.ms 50);
  Alcotest.(check bool) "resumes after exit" true
    (Sim_time.diff (Task.cpu_time t) during > Sim_time.ms 40)

let test_unpinned_task_migrates_at_wake () =
  let k = boot () in
  let woke_on = ref [] in
  let t =
    Task.create ~name:"sleeper" ~policy:Task.Cfs
      ~body:(fun task ->
        {
          Task.cpu = Sim_time.us 100;
          after =
            (fun () ->
              woke_on := Task.assigned_core task :: !woke_on;
              Task.Sleep (Sim_time.ms 10));
        })
      ()
  in
  Kernel.spawn k t;
  run k (Sim_time.ms 25);
  let home = match Task.assigned_core t with Some c -> c | None -> -1 in
  (* Hold the home core in the secure world across several wake-ups. *)
  Cpu.set_world (Platform.core k.Kernel.platform home) World.Secure;
  run k (Sim_time.ms 50);
  Cpu.set_world (Platform.core k.Kernel.platform home) World.Normal;
  let cores_used = List.sort_uniq compare (List.filter_map Fun.id !woke_on) in
  Alcotest.(check bool) "migrated off the stolen core" true
    (List.length cores_used > 1)

let test_sleep_wakes_on_time () =
  let k = boot () in
  let wakes = ref [] in
  let t =
    Task.create ~name:"timer" ~policy:(Task.Rt_fifo 50) ~affinity:5
      ~body:(fun _ ->
        {
          Task.cpu = Sim_time.zero;
          after =
            (fun () ->
              wakes := Engine.now (engine k) :: !wakes;
              Task.Sleep (Sim_time.ms 10));
        })
      ()
  in
  Kernel.spawn k t;
  run k (Sim_time.ms 45);
  Alcotest.(check int) "five activations (incl. spawn)" 5 (List.length !wakes)

let test_exit_removes_task () =
  let k = boot () in
  let t =
    Task.create ~name:"one-shot" ~policy:Task.Cfs ~affinity:0
      ~body:(fun _ -> { Task.cpu = Sim_time.us 100; after = (fun () -> Task.Exit) })
      ()
  in
  Kernel.spawn k t;
  run k (Sim_time.ms 10);
  Alcotest.(check bool) "exited" true (Sched.exited t);
  Alcotest.(check bool) "off the core" true (Sched.current k.Kernel.sched ~core:0 = None)

let test_block_and_wake () =
  let k = boot () in
  let resumed = ref false in
  let t =
    Task.create ~name:"blocker" ~policy:Task.Cfs ~affinity:0
      ~body:(fun task ->
        if Task.dispatches task = 1 then
          { Task.cpu = Sim_time.us 10; after = (fun () -> Task.Block) }
        else { Task.cpu = Sim_time.us 10; after = (fun () -> resumed := true; Task.Exit) })
      ()
  in
  Kernel.spawn k t;
  run k (Sim_time.ms 10);
  Alcotest.(check bool) "blocked, not resumed" false !resumed;
  Kernel.wake k t;
  run k (Sim_time.ms 10);
  Alcotest.(check bool) "woken and finished" true !resumed

let test_zero_cpu_livelock_guard () =
  let k = boot () in
  let t =
    Task.create ~name:"livelock" ~policy:(Task.Rt_fifo 99) ~affinity:0
      ~body:(fun _ -> { Task.cpu = Sim_time.zero; after = (fun () -> Task.Reenter) })
      ()
  in
  try
    Kernel.spawn k t;
    run k (Sim_time.ms 1);
    Alcotest.fail "livelock not caught"
  with Invalid_argument _ -> ()


let test_stale_sleep_timer_invalidated () =
  (* A task woken early from a sleep and then sleeping again must not be
     woken by the first sleep's leftover timer. *)
  let k = boot () in
  let activations = ref [] in
  let t =
    Task.create ~name:"napper" ~policy:(Task.Rt_fifo 50) ~affinity:1
      ~body:(fun _ ->
        {
          Task.cpu = Sim_time.us 10;
          after =
            (fun () ->
              activations := Engine.now (engine k) :: !activations;
              Task.Sleep (Sim_time.ms 100));
        })
      ()
  in
  Kernel.spawn k t;
  run k (Sim_time.ms 10) (* first activation at ~0, sleeping until ~100ms *);
  Kernel.wake k t (* woken early at 10ms; next sleep ends at ~110ms *);
  run k (Sim_time.ms 85) (* t=95ms: the stale 100ms timer must NOT fire *);
  Alcotest.(check int) "no spurious wake from the stale timer" 2
    (List.length !activations);
  run k (Sim_time.ms 30);
  Alcotest.(check int) "legitimate wake at ~110ms" 3 (List.length !activations)

let test_cfs_zero_cpu_livelock_guard () =
  let k = boot () in
  let t =
    Task.create ~name:"cfs-livelock" ~policy:Task.Cfs ~affinity:2
      ~body:(fun _ -> { Task.cpu = Sim_time.zero; after = (fun () -> Task.Reenter) })
      ()
  in
  try
    Kernel.spawn k t;
    run k (Sim_time.ms 1);
    Alcotest.fail "CFS zero-cpu livelock not caught"
  with Invalid_argument _ -> ()

let test_sleeper_preempts_hog_on_wake () =
  (* Sleeper credit: an interactive CFS task waking after a long sleep
     preempts a CPU hog promptly instead of waiting out its slice. *)
  let k = boot () in
  ignore (cpu_hog ~affinity:3 "hog3");
  Kernel.spawn k (cpu_hog ~affinity:3 "hog3b");
  let latencies = ref [] in
  let expected = ref Sim_time.zero in
  let t =
    Task.create ~name:"interactive" ~policy:Task.Cfs ~affinity:3
      ~body:(fun _ ->
        {
          Task.cpu = Sim_time.us 50;
          after =
            (fun () ->
              let now = Engine.now (engine k) in
              if !expected > Sim_time.zero then
                latencies := Sim_time.diff now !expected :: !latencies;
              expected := Sim_time.add now (Sim_time.ms 20);
              Task.Sleep (Sim_time.ms 20));
        })
      ()
  in
  Kernel.spawn k t;
  run k (Sim_time.s 1);
  Alcotest.(check bool) "many activations" true (List.length !latencies > 30);
  let worst = List.fold_left Sim_time.max Sim_time.zero !latencies in
  if worst > Sim_time.ms 2 then
    Alcotest.failf "wake-to-run latency too high under load: %s"
      (Sim_time.to_string worst)

let test_context_switch_counter () =
  let k = boot () in
  Kernel.spawn k (cpu_hog ~affinity:0 "x");
  Kernel.spawn k (cpu_hog ~affinity:0 "y");
  run k (Sim_time.ms 100);
  Alcotest.(check bool) "switches counted" true (Sched.context_switches k.Kernel.sched > 10)

let test_spawn_load_duty_cycle () =
  let k = boot () in
  let t =
    Kernel.spawn_load k ~name:"halfload" ~affinity:1 ~burst:(Sim_time.ms 1) ~duty:0.5 ()
  in
  run k (Sim_time.s 1);
  let cpu = Sim_time.to_sec_f (Task.cpu_time t) in
  if Float.abs (cpu -. 0.5) > 0.05 then Alcotest.failf "duty off: %.3f" cpu

let suite =
  [
    Alcotest.test_case "spawn and run" `Quick test_spawn_and_run;
    Alcotest.test_case "double spawn rejected" `Quick test_double_spawn_rejected;
    Alcotest.test_case "bad affinity rejected" `Quick test_bad_affinity_rejected;
    Alcotest.test_case "cfs fairness" `Quick test_cfs_fairness_two_hogs;
    Alcotest.test_case "rt preempts cfs" `Quick test_rt_preempts_cfs;
    Alcotest.test_case "rt priority order" `Quick test_rt_priority_order;
    Alcotest.test_case "pinned task stalls (side channel)" `Quick
      test_pinned_task_stalls_when_core_secure;
    Alcotest.test_case "unpinned task migrates" `Quick test_unpinned_task_migrates_at_wake;
    Alcotest.test_case "sleep wakes on time" `Quick test_sleep_wakes_on_time;
    Alcotest.test_case "exit removes task" `Quick test_exit_removes_task;
    Alcotest.test_case "block and wake" `Quick test_block_and_wake;
    Alcotest.test_case "zero-cpu livelock guard" `Quick test_zero_cpu_livelock_guard;
    Alcotest.test_case "cfs zero-cpu livelock guard" `Quick test_cfs_zero_cpu_livelock_guard;
    Alcotest.test_case "stale sleep timer invalidated" `Quick test_stale_sleep_timer_invalidated;
    Alcotest.test_case "sleeper preempts hog on wake" `Quick test_sleeper_preempts_hog_on_wake;
    Alcotest.test_case "context switch counter" `Quick test_context_switch_counter;
    Alcotest.test_case "spawn_load duty" `Quick test_spawn_load_duty_cycle;
  ]
