open Satin_runner
module Obs = Satin_obs.Obs
module Metrics = Satin_obs.Metrics
module Prng = Satin_engine.Prng

(* A trial body with enough per-trial work that a 4-domain pool genuinely
   interleaves claims, yet a result that depends only on the index. *)
let busy_trial i =
  let prng = Prng.create (Prng.derive 42 i) in
  let acc = ref 0.0 in
  for _ = 1 to 1_000 do
    acc := !acc +. Prng.float01 prng
  done;
  (i, !acc)

let test_submission_order () =
  let pool = Runner.create ~clamp:false ~jobs:4 () in
  let results = Runner.map pool 100 busy_trial in
  Alcotest.(check int) "all trials ran" 100 (Array.length results);
  Array.iteri
    (fun i (j, _) -> Alcotest.(check int) "index in submission slot" i j)
    results

let test_parallel_matches_sequential () =
  let seq = Runner.map Runner.sequential 50 busy_trial in
  let par = Runner.map (Runner.create ~clamp:false ~jobs:4 ()) 50 busy_trial in
  Alcotest.(check bool) "identical results" true (seq = par)

let test_empty_and_negative () =
  let pool = Runner.create ~clamp:false ~jobs:4 () in
  Alcotest.(check int) "empty batch" 0 (Array.length (Runner.map pool 0 busy_trial));
  try
    ignore (Runner.map pool (-1) busy_trial);
    Alcotest.fail "negative batch accepted"
  with Invalid_argument _ -> ()

let test_create_rejects_bad_jobs () =
  try
    ignore (Runner.create ~jobs:0 ());
    Alcotest.fail "jobs=0 accepted"
  with Invalid_argument _ -> ()

(* The clamp caps dispatch width at the host's core count while the
   requested width stays visible for reporting; ~clamp:false (which the
   rest of this suite uses to genuinely exercise the multi-domain path on
   small hosts) keeps the requested width. *)
let test_jobs_clamped_to_cores () =
  let cores = Domain.recommended_domain_count () in
  let over = Runner.create ~jobs:(cores + 7) () in
  Alcotest.(check int) "requested width kept" (cores + 7) (Runner.jobs over);
  Alcotest.(check int) "dispatch width clamped" cores
    (Runner.effective_jobs over);
  let under = Runner.create ~jobs:1 () in
  Alcotest.(check int) "within-cores width untouched" 1
    (Runner.effective_jobs under);
  let unclamped = Runner.create ~clamp:false ~jobs:(cores + 7) () in
  Alcotest.(check int) "clamp:false keeps requested width" (cores + 7)
    (Runner.effective_jobs unclamped);
  (* A clamped pool still runs every trial and preserves order. *)
  let results = Runner.map over 25 busy_trial in
  Alcotest.(check int) "clamped pool ran the batch" 25 (Array.length results);
  Array.iteri (fun i (j, _) -> Alcotest.(check int) "order" i j) results

exception Boom of int

(* Whatever domain finishes first, the re-raised failure must be the
   lowest-indexed one — the same exception a sequential run stops on. *)
let test_exception_propagation () =
  List.iter
    (fun jobs ->
      let pool = Runner.create ~clamp:false ~jobs () in
      try
        ignore
          (Runner.map pool 20 (fun i ->
               ignore (busy_trial i);
               if i mod 7 = 3 then raise (Boom i);
               i));
        Alcotest.fail "expected Boom"
      with Boom i ->
        Alcotest.(check int)
          (Printf.sprintf "lowest failure at jobs=%d" jobs)
          3 i)
    [ 1; 4 ]

(* All trials run to completion even when one fails early: the pool's
   failure policy is collect-then-raise, not cancel. *)
let test_failure_does_not_cancel () =
  let ran = Array.make 10 false in
  (try
     ignore
       (Runner.map (Runner.create ~clamp:false ~jobs:4 ()) 10 (fun i ->
            ran.(i) <- true;
            if i = 0 then failwith "early"))
   with Failure _ -> ());
  Array.iteri
    (fun i r -> Alcotest.(check bool) (Printf.sprintf "trial %d ran" i) true r)
    ran

let test_nested_use_rejected () =
  List.iter
    (fun jobs ->
      let pool = Runner.create ~clamp:false ~jobs () in
      let inner = Runner.create () in
      try
        ignore
          (Runner.map pool 2 (fun _ -> ignore (Runner.map inner 2 busy_trial)));
        Alcotest.failf "nested map accepted at jobs=%d" jobs
      with Invalid_argument _ -> ())
    [ 1; 4 ];
  (* The rejection flag must not stick after a batch completes. *)
  let pool = Runner.create ~clamp:false ~jobs:4 () in
  ignore (Runner.map pool 4 busy_trial);
  ignore (Runner.map pool 4 busy_trial)

let test_map_list () =
  let pool = Runner.create ~clamp:false ~jobs:4 () in
  Alcotest.(check (list int)) "map_list order" [ 2; 4; 6; 8 ]
    (Runner.map_list pool [ 1; 2; 3; 4 ] (fun x -> 2 * x))

let test_wall_clock_recorded () =
  let pool = Runner.create ~clamp:false ~jobs:2 () in
  ignore (Runner.map pool 8 busy_trial);
  Alcotest.(check bool) "wall clock non-negative" true
    (Runner.last_batch_wall_s pool >= 0.0)

(* With a sink installed the pool degrades to one domain (the sink is a
   process-global and not domain-safe) and the batch is fully accounted:
   same results, every trial attributed to domain 0. *)
let test_metrics_under_sink () =
  let obs = Obs.create () in
  Obs.install obs;
  Fun.protect ~finally:Obs.uninstall (fun () ->
      let pool = Runner.create ~clamp:false ~jobs:4 () in
      let results = Runner.map pool 12 busy_trial in
      Alcotest.(check bool) "results unchanged under sink" true
        (results = Runner.map Runner.sequential 12 busy_trial);
      let m = Obs.metrics obs in
      Alcotest.(check (option int)) "trials counted" (Some 24)
        (Metrics.counter_value m "runner.trials");
      Alcotest.(check (option int)) "batches counted" (Some 2)
        (Metrics.counter_value m "runner.batches");
      Alcotest.(check (option int)) "all trials on domain 0" (Some 24)
        (Metrics.counter_value m "runner.domain_trials"
           ~labels:[ ("domain", "0") ]);
      Alcotest.(check (option (float 0.0))) "queue drained" (Some 0.0)
        (Metrics.gauge_value m "runner.queue_depth"))

let suite =
  [
    Alcotest.test_case "submission order" `Quick test_submission_order;
    Alcotest.test_case "parallel = sequential" `Quick test_parallel_matches_sequential;
    Alcotest.test_case "empty and negative batches" `Quick test_empty_and_negative;
    Alcotest.test_case "bad jobs rejected" `Quick test_create_rejects_bad_jobs;
    Alcotest.test_case "jobs clamped to cores" `Quick test_jobs_clamped_to_cores;
    Alcotest.test_case "lowest-index exception wins" `Quick test_exception_propagation;
    Alcotest.test_case "failure does not cancel" `Quick test_failure_does_not_cancel;
    Alcotest.test_case "nested use rejected" `Quick test_nested_use_rejected;
    Alcotest.test_case "map_list" `Quick test_map_list;
    Alcotest.test_case "wall clock recorded" `Quick test_wall_clock_recorded;
    Alcotest.test_case "metrics under sink" `Quick test_metrics_under_sink;
  ]
