(* Campaign telemetry: capsule persistence through Memo, aggregation into
   byte-stable reports, OpenMetrics export, and the regression gate. *)

module Key = Satin_store.Key
module Store = Satin_store.Store
module Memo = Satin_store.Memo
module Telemetry = Satin_store.Telemetry
module Runner = Satin_runner.Runner
module Obs = Satin_obs.Obs
module Json = Satin_obs.Json

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "satin_telemetry_test_%d_%d" (Unix.getpid ()) !counter)
    in
    (match Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)) with
    | 0 -> ()
    | _ -> ());
    dir

let with_store dir f =
  let s = Store.open_ dir in
  Store.install s;
  Fun.protect ~finally:Store.uninstall (fun () -> f s)

(* A synthetic trial that fills all three series kinds. Memo wraps each
   trial in [Obs.with_capture], so these hooks land in the capsule even
   with no sink installed. *)
let trial i =
  Obs.incr ~by:(i + 1) "t.work";
  Obs.incr ~labels:[ ("core", string_of_int (i mod 2)) ] "t.core_hits";
  Obs.set_gauge "t.depth" (float_of_int i);
  Obs.observe "t.lat" (float_of_int i +. 0.5);
  Obs.observe "t.lat" (float_of_int i +. 1.5);
  i * 2

let run_campaign pool dir =
  with_store dir (fun s ->
      let r =
        Memo.map pool ~experiment:"tele" ~seed:42
          ~config:[ ("n", "8") ]
          8 trial
      in
      (r, Store.counters s))

let report_strings dir =
  let s = Store.open_ dir in
  match Telemetry.collect s with
  | Error e -> Alcotest.fail e
  | Ok r ->
      let buf = Buffer.create 256 in
      let fmt = Format.formatter_of_buffer buf in
      Telemetry.print_table fmt r;
      Format.pp_print_flush fmt ();
      (Buffer.contents buf, Json.to_string (Telemetry.to_json r))

let test_memo_persists_and_replays_capsules () =
  let dir = tmp_dir () in
  let cold, c1 = run_campaign Runner.sequential dir in
  Alcotest.(check int) "cold: capsule per trial" 8 c1.Store.capsule_writes;
  Alcotest.(check int) "cold: no capsule hits" 0 c1.Store.capsule_hits;
  let warm, c2 = run_campaign Runner.sequential dir in
  Alcotest.(check int) "warm: every capsule consulted" 8
    c2.Store.capsule_hits;
  Alcotest.(check int) "warm: none missing" 0 c2.Store.capsule_misses;
  Alcotest.(check int) "warm: nothing rewritten" 0 c2.Store.capsule_writes;
  Alcotest.(check bool) "results identical" true (cold = warm)

let test_report_byte_stable_across_jobs_and_warmth () =
  let dir1 = tmp_dir () and dir4 = tmp_dir () in
  ignore (run_campaign Runner.sequential dir1);
  ignore (run_campaign (Runner.create ~clamp:false ~jobs:4 ()) dir4);
  let t1, j1 = report_strings dir1 in
  let t4, j4 = report_strings dir4 in
  Alcotest.(check string) "table: jobs 1 = jobs 4" t1 t4;
  Alcotest.(check string) "json: jobs 1 = jobs 4" j1 j4;
  (* a warm re-run adds no capsules and must not perturb the report *)
  ignore (run_campaign Runner.sequential dir1);
  let t1', j1' = report_strings dir1 in
  Alcotest.(check string) "table: cold = warm" t1 t1';
  Alcotest.(check string) "json: cold = warm" j1 j1'

let test_collect_aggregates_exactly () =
  let dir = tmp_dir () in
  ignore (run_campaign Runner.sequential dir);
  let s = Store.open_ dir in
  match Telemetry.collect s with
  | Error e -> Alcotest.fail e
  | Ok r -> (
      Alcotest.(check int) "all trials absorbed" 8 r.Telemetry.trials;
      Alcotest.(check int) "none skipped" 0 r.Telemetry.skipped;
      match r.Telemetry.experiments with
      | [ ("tele", agg) ] -> (
          Alcotest.(check int) "experiment trials" 8 agg.Telemetry.exp_trials;
          (* counters sum exactly: 1+2+...+8 *)
          (match List.assoc_opt ("t.work", []) agg.Telemetry.series with
          | Some (Telemetry.Total (total, dist)) ->
              Alcotest.(check int) "exact counter total" 36 total;
              Alcotest.(check int) "per-trial distribution" 8
                (Telemetry.Histogram.count dist)
          | _ -> Alcotest.fail "t.work missing or wrong kind");
          (* labelled counter series stay distinct *)
          (match
             List.assoc_opt ("t.core_hits", [ ("core", "0") ])
               agg.Telemetry.series
           with
          | Some (Telemetry.Total (total, _)) ->
              Alcotest.(check int) "core=0 hits" 4 total
          | _ -> Alcotest.fail "labelled series missing");
          (* histograms merge the full sample population *)
          match List.assoc_opt ("t.lat", []) agg.Telemetry.series with
          | Some (Telemetry.Merged h) ->
              Alcotest.(check int) "16 latency samples" 16
                (Telemetry.Histogram.count h);
              Alcotest.(check (float 0.0)) "exact min" 0.5
                (Telemetry.Histogram.min h);
              Alcotest.(check (float 0.0)) "exact max" 8.5
                (Telemetry.Histogram.max h)
          | _ -> Alcotest.fail "t.lat missing or wrong kind")
      | l ->
          Alcotest.failf "expected one experiment, got %d" (List.length l))

let test_openmetrics_shape () =
  let dir = tmp_dir () in
  ignore (run_campaign Runner.sequential dir);
  let s = Store.open_ dir in
  match Telemetry.collect s with
  | Error e -> Alcotest.fail e
  | Ok r ->
      let om = Telemetry.to_openmetrics r in
      let ends_with suffix =
        let ls = String.length suffix and l = String.length om in
        l >= ls && String.sub om (l - ls) ls = suffix
      in
      Alcotest.(check bool) "terminated by # EOF" true (ends_with "# EOF\n");
      let contains needle =
        let lh = String.length om and ln = String.length needle in
        let rec go i =
          i + ln <= lh && (String.sub om i ln = needle || go (i + 1))
        in
        go 0
      in
      Alcotest.(check bool) "counter family mangled + _total" true
        (contains "satin_t_work_total{");
      Alcotest.(check bool) "summary quantiles present" true
        (contains "quantile=\"0.99\"");
      Alcotest.(check bool) "type metadata present" true (contains "# TYPE ")

(* ---- gate ---- *)

let doc fields =
  Json.Obj
    (("identity", Json.Obj [ ("config_hash", Json.String "abc") ]) :: fields)

let gate ?threshold ~baseline ~current () =
  match Telemetry.gate ?threshold ~baseline ~current () with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_gate_directions_and_threshold () =
  let base =
    doc
      [
        ("p50", Json.Float 1.0);
        ("events_per_s", Json.Float 100.0);
        ("label", Json.String "not numeric");
      ]
  in
  let same = gate ~baseline:base ~current:base () in
  Alcotest.(check int) "both tracked paths compared" 2 same.Telemetry.compared;
  Alcotest.(check int) "self-compare passes" 0
    (List.length same.Telemetry.regressions);
  (* both directions regress when moving the wrong way *)
  let worse =
    doc [ ("p50", Json.Float 1.2); ("events_per_s", Json.Float 80.0) ]
  in
  let r = gate ~baseline:base ~current:worse () in
  Alcotest.(check int) "both regressions caught" 2
    (List.length r.Telemetry.regressions);
  (* improvements in either direction never fail *)
  let better =
    doc [ ("p50", Json.Float 0.5); ("events_per_s", Json.Float 200.0) ]
  in
  Alcotest.(check int) "improvements pass" 0
    (List.length (gate ~baseline:base ~current:better ()).Telemetry.regressions);
  (* the threshold is relative: +5% passes at 0.10, fails at 0.01 *)
  let slight =
    doc [ ("p50", Json.Float 1.05); ("events_per_s", Json.Float 100.0) ]
  in
  Alcotest.(check int) "within default threshold" 0
    (List.length (gate ~baseline:base ~current:slight ()).Telemetry.regressions);
  Alcotest.(check int) "beyond tight threshold" 1
    (List.length
       (gate ~threshold:0.01 ~baseline:base ~current:slight ())
         .Telemetry.regressions);
  (* vanished paths are reported as missing, not as regressions *)
  let partial = doc [ ("p50", Json.Float 1.0) ] in
  let m = gate ~baseline:base ~current:partial () in
  Alcotest.(check (list string)) "missing path listed" [ "events_per_s" ]
    m.Telemetry.missing;
  Alcotest.(check int) "no false regression" 0
    (List.length m.Telemetry.regressions)

let test_gate_refuses_config_mismatch () =
  let a = doc [ ("p50", Json.Float 1.0) ] in
  let b =
    Json.Obj
      [
        ("identity", Json.Obj [ ("config_hash", Json.String "zzz") ]);
        ("p50", Json.Float 1.0);
      ]
  in
  match Telemetry.gate ~baseline:a ~current:b () with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "mismatched config_hash accepted"

let test_gate_ignores_fingerprints () =
  (* Fingerprints change every build; the gate must neither compare them
     nor fail when they differ. *)
  let mk fp =
    Json.Obj
      [
        ( "identity",
          Json.Obj
            [
              ("fingerprint", Json.String fp);
              ("config_hash", Json.String "abc");
            ] );
        ("p50", Json.Float 1.0);
      ]
  in
  let r = gate ~baseline:(mk (String.make 32 'a')) ~current:(mk (String.make 32 'b')) () in
  Alcotest.(check int) "clean pass across builds" 0
    (List.length r.Telemetry.regressions);
  Alcotest.(check (list string)) "no missing paths" [] r.Telemetry.missing

let test_gate_fails_on_injected_regression () =
  (* The acceptance scenario: aggregate a real campaign store, export it,
     inject a synthetic slowdown into every p50/p90/p99, and require the
     gate to fail. *)
  let dir = tmp_dir () in
  ignore (run_campaign Runner.sequential dir);
  let s = Store.open_ dir in
  match Telemetry.collect s with
  | Error e -> Alcotest.fail e
  | Ok r ->
      let baseline = Telemetry.to_json r in
      let rec inflate = function
        | Json.Obj fields ->
            Json.Obj
              (List.map
                 (fun (k, v) ->
                   match (k, v) with
                   | ("p50" | "p90" | "p99"), Json.Float x ->
                       (k, Json.Float (x *. 10.0))
                   | ("p50" | "p90" | "p99"), Json.Int n ->
                       (k, Json.Int (n * 10))
                   | _ -> (k, inflate v))
                 fields)
        | Json.List l -> Json.List (List.map inflate l)
        | v -> v
      in
      let current = inflate baseline in
      Alcotest.(check bool) "perturbation changed the document" true
        (current <> baseline);
      (match Telemetry.gate ~baseline ~current () with
      | Error e -> Alcotest.fail e
      | Ok g ->
          Alcotest.(check bool) "regressions detected" true
            (g.Telemetry.regressions <> []));
      (* and the unperturbed export gates cleanly against itself *)
      match Telemetry.gate ~baseline ~current:baseline () with
      | Error e -> Alcotest.fail e
      | Ok g ->
          Alcotest.(check int) "self-gate passes" 0
            (List.length g.Telemetry.regressions)

(* ---- corruption ---- *)

let find_capsule_files dir =
  let rec walk acc p =
    if Sys.is_directory p then
      Array.fold_left (fun acc f -> walk acc (Filename.concat p f)) acc
        (Sys.readdir p)
    else if Filename.check_suffix p ".cap" then p :: acc
    else acc
  in
  walk [] (Filename.concat dir "capsules")

let test_corrupt_capsule_quarantined () =
  let dir = tmp_dir () in
  let s = Store.open_ dir in
  let key = Key.make ~experiment:"c" ~seed:1 ~trial_index:0 () in
  Store.add_capsule s ~key ~experiment:"c" "{\"payload\":true}";
  (match find_capsule_files dir with
  | [ path ] ->
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let bytes = really_input_string ic len |> Bytes.of_string in
      close_in ic;
      let pos = len - 1 in
      Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 1));
      let oc = open_out_bin path in
      output_bytes oc bytes;
      close_out oc
  | files ->
      Alcotest.failf "expected exactly one capsule file, found %d"
        (List.length files));
  Alcotest.(check (option string)) "corrupt capsule not served" None
    (Store.find_capsule s ~key);
  Alcotest.(check int) "counted as corrupt" 1 (Store.counters s).Store.corrupt;
  Alcotest.(check int) "no live capsule files" 0
    (List.length (find_capsule_files dir));
  let quarantined =
    Array.to_list (Sys.readdir (Filename.concat dir "quarantine"))
  in
  Alcotest.(check bool) "quarantine holds a .cap" true
    (List.exists (fun f -> Filename.check_suffix f ".cap") quarantined)

let test_collect_skips_corrupt_capsules () =
  let dir = tmp_dir () in
  ignore (run_campaign Runner.sequential dir);
  (* flip a bit in one capsule; collect must absorb the other seven *)
  (match find_capsule_files dir with
  | path :: _ ->
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let bytes = really_input_string ic len |> Bytes.of_string in
      close_in ic;
      Bytes.set bytes (len - 1)
        (Char.chr (Char.code (Bytes.get bytes (len - 1)) lxor 1));
      let oc = open_out_bin path in
      output_bytes oc bytes;
      close_out oc
  | [] -> Alcotest.fail "no capsule files written");
  let s = Store.open_ dir in
  match Telemetry.collect s with
  | Error e -> Alcotest.fail e
  | Ok r -> Alcotest.(check int) "seven survivors" 7 r.Telemetry.trials

let test_collect_empty_store_errors () =
  let dir = tmp_dir () in
  let s = Store.open_ dir in
  match Telemetry.collect s with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty store produced a report"

let suite =
  [
    Alcotest.test_case "memo persists + replays capsules" `Quick
      test_memo_persists_and_replays_capsules;
    Alcotest.test_case "report byte-stable (jobs, warmth)" `Quick
      test_report_byte_stable_across_jobs_and_warmth;
    Alcotest.test_case "collect aggregates exactly" `Quick
      test_collect_aggregates_exactly;
    Alcotest.test_case "openmetrics shape" `Quick test_openmetrics_shape;
    Alcotest.test_case "gate directions + threshold" `Quick
      test_gate_directions_and_threshold;
    Alcotest.test_case "gate refuses config mismatch" `Quick
      test_gate_refuses_config_mismatch;
    Alcotest.test_case "gate ignores fingerprints" `Quick
      test_gate_ignores_fingerprints;
    Alcotest.test_case "gate fails on injected regression" `Quick
      test_gate_fails_on_injected_regression;
    Alcotest.test_case "corrupt capsule quarantined" `Quick
      test_corrupt_capsule_quarantined;
    Alcotest.test_case "collect skips corrupt capsules" `Quick
      test_collect_skips_corrupt_capsules;
    Alcotest.test_case "collect on empty store errors" `Quick
      test_collect_empty_store_errors;
  ]
