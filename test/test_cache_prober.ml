module Scenario = Satin.Scenario
open Satin_engine
module Platform = Satin_hw.Platform
module Cpu = Satin_hw.Cpu
module World = Satin_hw.World
module Cache_prober = Satin_attack.Cache_prober

let quiet_config =
  { Cache_prober.default_config with noise_rate_hz = 0.0 }

let run s d = Scenario.run_for s d

let test_cluster_mapping () =
  let platform = Platform.juno_r1 ~seed:3 () in
  Alcotest.(check int) "core 0" 0 (Cache_prober.cluster_of_core platform ~core:0);
  Alcotest.(check int) "core 3" 0 (Cache_prober.cluster_of_core platform ~core:3);
  Alcotest.(check int) "core 4" 1 (Cache_prober.cluster_of_core platform ~core:4);
  Alcotest.(check int) "core 5" 1 (Cache_prober.cluster_of_core platform ~core:5)

(* Regression: the mapping must come from the computed topology, not the
   Juno's hardcoded 4+4 split. On a 2xA53 + 4xA57 board, core 2 is in
   cluster 1 (the old [core <= 3 -> 0] rule said 0), and a homogeneous
   board is one cluster. *)
let test_cluster_mapping_non_juno () =
  let open Satin_hw.Cycle_model in
  let asym =
    Platform.create ~seed:3 ~core_types:[| A53; A53; A57; A57; A57; A57 |] ()
  in
  Alcotest.(check int) "asym core 1" 0 (Cache_prober.cluster_of_core asym ~core:1);
  Alcotest.(check int) "asym core 2" 1 (Cache_prober.cluster_of_core asym ~core:2);
  Alcotest.(check int) "asym core 5" 1 (Cache_prober.cluster_of_core asym ~core:5);
  Alcotest.(check int) "asym clusters" 2
    (Array.length (Cache_prober.clusters_of_platform asym));
  let homo = Platform.create ~seed:3 ~core_types:[| A57; A57; A57 |] () in
  Alcotest.(check int) "homogeneous is one cluster" 1
    (Array.length (Cache_prober.clusters_of_platform homo));
  Alcotest.(check int) "homogeneous core 2" 0
    (Cache_prober.cluster_of_core homo ~core:2)

let test_quiet_no_alarms () =
  let s = Scenario.create ~seed:85 () in
  let p = Cache_prober.deploy s.Scenario.kernel quiet_config in
  run s (Sim_time.s 1);
  Alcotest.(check int) "no detections" 0 (List.length (Cache_prober.detections p));
  Alcotest.(check bool) "cluster 0 clean" false (Cache_prober.suspected p ~cluster:0);
  Cache_prober.retire p

let test_detects_scan_in_cluster () =
  let s = Scenario.create ~seed:86 () in
  let p = Cache_prober.deploy s.Scenario.kernel quiet_config in
  run s (Sim_time.ms 5);
  (* A 5 ms secure residency on core 2 (A53 cluster). *)
  let cpu = Platform.core s.Scenario.platform 2 in
  Cpu.set_world cpu World.Secure;
  let entry = Scenario.now s in
  run s (Sim_time.ms 5);
  Cpu.set_world cpu World.Normal;
  (match Cache_prober.detections p with
  | d :: _ ->
      Alcotest.(check int) "right cluster" 0 d.Cache_prober.det_cluster;
      Alcotest.(check bool) "not noise" false d.Cache_prober.det_noise;
      let delay = Sim_time.to_sec_f (Sim_time.diff d.Cache_prober.det_time entry) in
      (* eviction lag (100 us) + at most one probe period (200 us) + jitter *)
      if delay < 1.0e-4 || delay > 6.0e-4 then
        Alcotest.failf "cache-channel delay out of model: %g" delay
  | [] -> Alcotest.fail "no detection");
  Alcotest.(check bool) "other cluster untouched" false
    (Cache_prober.suspected p ~cluster:1);
  (* After the scan, re-primed sets probe clean again. *)
  run s (Sim_time.ms 2);
  Alcotest.(check bool) "cleared" false (Cache_prober.suspected p ~cluster:0);
  Cache_prober.retire p

let test_detects_finished_scan_retrospectively () =
  let s = Scenario.create ~seed:87 () in
  (* Probe slowly so the scan fits entirely between two probes. *)
  let p =
    Cache_prober.deploy s.Scenario.kernel
      { quiet_config with period = Sim_time.ms 20 }
  in
  run s (Sim_time.ms 25);
  let cpu = Platform.core s.Scenario.platform 5 in
  Cpu.set_world cpu World.Secure;
  run s (Sim_time.ms 5);
  Cpu.set_world cpu World.Normal;
  run s (Sim_time.ms 25);
  (match Cache_prober.detections p with
  | d :: _ ->
      Alcotest.(check int) "A57 cluster" 1 d.Cache_prober.det_cluster
  | [] -> Alcotest.fail "finished scan missed");
  Cache_prober.retire p

let test_short_residency_below_lag_invisible () =
  let s = Scenario.create ~seed:88 () in
  let p = Cache_prober.deploy s.Scenario.kernel quiet_config in
  run s (Sim_time.ms 5);
  let cpu = Platform.core s.Scenario.platform 1 in
  Cpu.set_world cpu World.Secure;
  run s (Sim_time.us 50) (* below the 100 us eviction lag *);
  Cpu.set_world cpu World.Normal;
  run s (Sim_time.ms 5);
  Alcotest.(check int) "sub-lag residency invisible" 0
    (List.length (Cache_prober.detections p));
  Cache_prober.retire p

let test_noise_produces_false_alarms () =
  let s = Scenario.create ~seed:89 () in
  let p =
    Cache_prober.deploy s.Scenario.kernel
      { Cache_prober.default_config with noise_rate_hz = 5.0 }
  in
  run s (Sim_time.s 2);
  Alcotest.(check bool) "noise fired" true (Cache_prober.false_alarms p > 0);
  List.iter
    (fun d ->
      Alcotest.(check bool) "all alarms are noise here" true
        d.Satin_attack.Cache_prober.det_noise)
    (Cache_prober.detections p);
  Cache_prober.retire p

let test_e14_end_to_end () =
  let r = Satin.Experiment.run_e14 ~seed:5 ~passes:1 () in
  Alcotest.(check bool) "rounds ran" true (r.Satin.Experiment.e14_rounds >= 15);
  Alcotest.(check bool) "area 14 checked" true (r.Satin.Experiment.e14_area14_checks >= 1);
  Alcotest.(check int) "all detected despite the faster channel"
    r.Satin.Experiment.e14_area14_checks
    r.Satin.Experiment.e14_area14_detections;
  if not (Stats.is_empty r.Satin.Experiment.e14_reaction) then begin
    let mean = Stats.mean r.Satin.Experiment.e14_reaction in
    (* ~ eviction lag + probe period + Tns_recover: faster than KProber's
       ~8.2e-3 but still slower than the scan front. *)
    if mean < 5.0e-3 || mean > 7.5e-3 then
      Alcotest.failf "cache-channel reaction out of model: %g" mean
  end

let suite =
  [
    Alcotest.test_case "cluster mapping" `Quick test_cluster_mapping;
    Alcotest.test_case "cluster mapping non-4+4" `Quick
      test_cluster_mapping_non_juno;
    Alcotest.test_case "quiet no alarms" `Quick test_quiet_no_alarms;
    Alcotest.test_case "detects scan in cluster" `Quick test_detects_scan_in_cluster;
    Alcotest.test_case "retrospective detection" `Quick
      test_detects_finished_scan_retrospectively;
    Alcotest.test_case "sub-lag residency invisible" `Quick
      test_short_residency_below_lag_invisible;
    Alcotest.test_case "noise false alarms" `Quick test_noise_produces_false_alarms;
    Alcotest.test_case "E14 end to end" `Slow test_e14_end_to_end;
  ]
