module Scenario = Satin.Scenario
open Satin_workload
open Satin_engine
module Platform = Satin_hw.Platform
module Cpu = Satin_hw.Cpu
module World = Satin_hw.World

let run s d = Scenario.run_for s d

let test_program_table () =
  Alcotest.(check int) "12 programs" 12 (List.length Unixbench.programs);
  let p = Unixbench.find_program "file_copy_256" in
  Alcotest.(check (float 0.0)) "fc256 fully memory bound" 1.0 p.Unixbench.mem_sensitivity;
  (try
     ignore (Unixbench.find_program "nope");
     Alcotest.fail "expected Not_found"
   with Not_found -> ());
  (* The paper's two worst cases carry the largest refill sensitivity. *)
  let worst =
    List.sort
      (fun a b -> compare b.Unixbench.refill_sensitivity a.Unixbench.refill_sensitivity)
      Unixbench.programs
  in
  match worst with
  | a :: b :: _ ->
      Alcotest.(check (list string)) "worst two" [ "context_switching"; "file_copy_256" ]
        (List.sort compare [ a.Unixbench.prog_name; b.Unixbench.prog_name ])
  | _ -> Alcotest.fail "short table"

let test_score_counts_units () =
  let s = Scenario.create ~seed:61 () in
  let p = Unixbench.find_program "dhrystone2" in
  let inst = Unixbench.launch s.Scenario.kernel p ~copies:1 () in
  run s (Sim_time.s 2);
  let units = Unixbench.completed_units inst in
  (* 500 us per unit on a dedicated core: ~4000 units in 2 s. *)
  if units < 3800 || units > 4100 then Alcotest.failf "units %d" units;
  let score = Unixbench.score inst ~at:(Scenario.now s) in
  Alcotest.(check (float 1.0)) "score = units/s" (float_of_int units /. 2.0) score;
  Unixbench.stop inst

let test_copies_share_cores () =
  let s = Scenario.create ~seed:62 () in
  let p = Unixbench.find_program "whetstone" in
  let inst = Unixbench.launch s.Scenario.kernel p ~copies:6 () in
  run s (Sim_time.s 1);
  let units = Unixbench.completed_units inst in
  (* six copies on six cores: ~6x the single-copy rate *)
  if units < 11_000 || units > 12_200 then Alcotest.failf "units %d" units;
  Unixbench.stop inst

let test_stop_halts () =
  let s = Scenario.create ~seed:63 () in
  let p = Unixbench.find_program "syscall" in
  let inst = Unixbench.launch s.Scenario.kernel p ~copies:1 () in
  run s (Sim_time.ms 100);
  Unixbench.stop inst;
  run s (Sim_time.ms 10);
  let frozen = Unixbench.completed_units inst in
  run s (Sim_time.ms 500);
  Alcotest.(check int) "no units after stop" frozen (Unixbench.completed_units inst)

let test_contention_slows_memory_bound () =
  let s = Scenario.create ~seed:64 () in
  let p = Unixbench.find_program "file_copy_256" in
  let inst = Unixbench.launch s.Scenario.kernel p ~affinity:1 ~copies:1 () in
  run s (Sim_time.s 1);
  let before = Unixbench.completed_units inst in
  (* Hold another core in the secure world for a full second. *)
  Cpu.set_world (Platform.core s.Scenario.platform 5) World.Secure;
  run s (Sim_time.s 1);
  Cpu.set_world (Platform.core s.Scenario.platform 5) World.Normal;
  let during = Unixbench.completed_units inst - before in
  (* Dilation 1 + 3.5 during the scan: throughput drops to ~22%. *)
  if during > before / 3 then
    Alcotest.failf "memory-bound not slowed: %d vs %d" during before;
  Unixbench.stop inst

let test_contention_spares_cpu_bound () =
  let s = Scenario.create ~seed:65 () in
  let p = Unixbench.find_program "dhrystone2" in
  let inst = Unixbench.launch s.Scenario.kernel p ~affinity:1 ~copies:1 () in
  run s (Sim_time.s 1);
  let before = Unixbench.completed_units inst in
  Cpu.set_world (Platform.core s.Scenario.platform 5) World.Secure;
  run s (Sim_time.s 1);
  Cpu.set_world (Platform.core s.Scenario.platform 5) World.Normal;
  let during = Unixbench.completed_units inst - before in
  if during < before * 95 / 100 then
    Alcotest.failf "cpu-bound slowed too much: %d vs %d" during before;
  Unixbench.stop inst

let test_refill_window_bites_same_core_only () =
  let s = Scenario.create ~seed:66 () in
  let p = Unixbench.find_program "context_switching" in
  let on_core = Unixbench.launch s.Scenario.kernel p ~affinity:2 ~copies:1 () in
  let off_core = Unixbench.launch s.Scenario.kernel p ~affinity:3 ~copies:1 () in
  run s (Sim_time.s 1);
  let base_on = Unixbench.completed_units on_core in
  let base_off = Unixbench.completed_units off_core in
  (* Brief secure visit on core 2; measure the refill window that follows. *)
  Cpu.set_world (Platform.core s.Scenario.platform 2) World.Secure;
  run s (Sim_time.ms 5);
  Cpu.set_world (Platform.core s.Scenario.platform 2) World.Normal;
  run s (Sim_time.ms 220);
  let d_on = Unixbench.completed_units on_core - base_on in
  let d_off = Unixbench.completed_units off_core - base_off in
  if d_on >= d_off * 70 / 100 then
    Alcotest.failf "refill did not bite the visited core: %d vs %d" d_on d_off;
  Unixbench.stop on_core;
  Unixbench.stop off_core

let suite =
  [
    Alcotest.test_case "program table" `Quick test_program_table;
    Alcotest.test_case "score counts units" `Quick test_score_counts_units;
    Alcotest.test_case "copies share cores" `Quick test_copies_share_cores;
    Alcotest.test_case "stop halts" `Quick test_stop_halts;
    Alcotest.test_case "contention slows memory-bound" `Quick
      test_contention_slows_memory_bound;
    Alcotest.test_case "contention spares cpu-bound" `Quick
      test_contention_spares_cpu_bound;
    Alcotest.test_case "refill bites visited core" `Quick
      test_refill_window_bites_same_core_only;
  ]
