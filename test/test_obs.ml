(* The observability layer: metrics registry semantics, Chrome trace-event
   export (golden), and determinism of exports across same-seed runs. *)

module Json = Satin_obs.Json
module Metrics = Satin_obs.Metrics
module Tracing = Satin_obs.Tracing
module Obs = Satin_obs.Obs
module Stats = Satin_engine.Stats
module E = Satin.Experiment

let test_counter () =
  let m = Metrics.create () in
  Metrics.incr m "hits";
  Metrics.incr m ~by:4 "hits";
  Alcotest.(check (option int)) "accumulates" (Some 5)
    (Metrics.counter_value m "hits");
  Alcotest.(check (option int)) "unknown series" None
    (Metrics.counter_value m "misses");
  let h = Metrics.counter m "hits" in
  incr h;
  Alcotest.(check (option int)) "handle shares storage" (Some 6)
    (Metrics.counter_value m "hits")

let test_gauge () =
  let m = Metrics.create () in
  Metrics.set m "depth" 3.5;
  Metrics.set m "depth" 1.25;
  Alcotest.(check (option (float 0.0))) "last write wins" (Some 1.25)
    (Metrics.gauge_value m "depth")

let test_histogram () =
  let m = Metrics.create () in
  List.iter (Metrics.observe m "lat") [ 1.0; 2.0; 3.0; 4.0 ];
  match Metrics.histogram_stats m "lat" with
  | None -> Alcotest.fail "missing histogram"
  | Some s ->
      Alcotest.(check int) "count" 4 (Stats.count s);
      Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
      Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min s);
      Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max s)

let test_label_order_insensitive () =
  let m = Metrics.create () in
  Metrics.incr m ~labels:[ ("core", "0"); ("world", "s") ] "x";
  Metrics.incr m ~labels:[ ("world", "s"); ("core", "0") ] "x";
  Alcotest.(check int) "one series" 1 (Metrics.series_count m);
  Alcotest.(check (option int))
    "both orders hit it" (Some 2)
    (Metrics.counter_value m ~labels:[ ("core", "0"); ("world", "s") ] "x")

let test_duplicate_label_key () =
  let m = Metrics.create () in
  Alcotest.check_raises "duplicate key"
    (Invalid_argument "Metrics: duplicate label key \"core\" on metric \"x\"")
    (fun () -> Metrics.incr m ~labels:[ ("core", "0"); ("core", "1") ] "x")

let test_kind_mismatch () =
  let m = Metrics.create () in
  Metrics.incr m "x";
  Alcotest.check_raises "counter reused as gauge"
    (Invalid_argument "Metrics.gauge: \"x\" is already a counter") (fun () ->
      Metrics.set m "x" 1.0);
  Alcotest.check_raises "counter reused as histogram"
    (Invalid_argument "Metrics.histogram: \"x\" is already a counter")
    (fun () -> Metrics.observe m "x" 1.0);
  (* Same name under different labels is a distinct series: no clash. *)
  Metrics.set m ~labels:[ ("k", "v") ] "x" 1.0

(* Golden render of a tiny two-span scenario: a world switch on core 0
   wrapping an area check, with a detection instant on another track. *)
let test_chrome_golden () =
  let tr = Tracing.create () in
  Tracing.set_track_name tr 0 "core 0";
  Tracing.begin_span tr ~time:1_000 ~track:0 ~cat:"world" "secure-world";
  Tracing.begin_span tr ~time:2_500 ~track:0 ~cat:"introspect"
    ~args:[ ("area", Json.Int 14) ]
    "check area 14";
  Tracing.end_span tr ~time:4_000 ~track:0;
  Tracing.instant tr ~time:4_500 ~track:1 ~cat:"alarm" "detection";
  Tracing.end_span tr ~time:5_000 ~track:0;
  let expected =
    String.concat ""
      [
        {|{"traceEvents":[|};
        {|{"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"satin"}},|};
        {|{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"core 0"}},|};
        {|{"name":"secure-world","ph":"B","ts":1,"pid":0,"tid":0,"cat":"world"},|};
        {|{"name":"check area 14","ph":"B","ts":2.5,"pid":0,"tid":0,"cat":"introspect","args":{"area":14}},|};
        {|{"name":"check area 14","ph":"E","ts":4,"pid":0,"tid":0},|};
        {|{"name":"detection","ph":"i","ts":4.5,"pid":0,"tid":1,"cat":"alarm","s":"t"},|};
        {|{"name":"secure-world","ph":"E","ts":5,"pid":0,"tid":0}|};
        {|],"displayTimeUnit":"ns"}|};
      ]
  in
  let actual = Json.to_string (Tracing.to_chrome_json tr) in
  Alcotest.(check string) "golden chrome trace" expected actual;
  (* The export must survive our own strict parser. *)
  match Json.parse actual with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("export does not reparse: " ^ e)

let test_end_span_pops_innermost () =
  let tr = Tracing.create () in
  Tracing.begin_span tr ~time:0 ~track:3 "outer";
  Tracing.begin_span tr ~time:1 ~track:3 "inner";
  Tracing.end_span tr ~time:2 ~track:3;
  Tracing.end_span tr ~time:3 ~track:3;
  let names =
    List.filter_map
      (fun (e : Tracing.event) ->
        if e.Tracing.ph = Tracing.End then Some e.Tracing.name else None)
      (Tracing.events tr)
  in
  Alcotest.(check (list string)) "LIFO ends" [ "inner"; "outer" ] names

let run_e10_with_obs () =
  let obs = Obs.create () in
  Obs.install obs;
  Fun.protect ~finally:Obs.uninstall (fun () ->
      ignore (E.run_e10 ~seed:11 ~target_rounds:6 ()));
  obs

let test_determinism () =
  let a = run_e10_with_obs () in
  let b = run_e10_with_obs () in
  Alcotest.(check string) "trace exports byte-identical"
    (Json.to_string (Obs.trace_json a))
    (Json.to_string (Obs.trace_json b));
  Alcotest.(check string) "metrics exports byte-identical"
    (Json.to_string (Obs.metrics_json a))
    (Json.to_string (Obs.metrics_json b));
  (* And the campaign actually produced spans, not an empty document. *)
  match Json.member "traceEvents" (Obs.trace_json a) with
  | Some (Json.List evs) ->
      Alcotest.(check bool) "non-trivial trace" true (List.length evs > 10)
  | _ -> Alcotest.fail "missing traceEvents"

let test_wall_metrics_segregated () =
  (* The --metrics byte-stability fix: wall-clock observations land in a
     separate registry and never leak into the deterministic export. Two
     runs that differ ONLY in their wall-clock samples must export
     byte-identical metrics_json. *)
  let run wall_sample =
    let obs = Obs.create () in
    Obs.install obs;
    Fun.protect ~finally:Obs.uninstall (fun () ->
        Obs.incr "deterministic.counter";
        Obs.observe "deterministic.histo" 0.25;
        Obs.observe_wall "runner.batch_wall_s" wall_sample);
    obs
  in
  let a = run 0.001 and b = run 123.456 in
  Alcotest.(check string) "metrics_json ignores wall-clock samples"
    (Json.to_string (Obs.metrics_json a))
    (Json.to_string (Obs.metrics_json b));
  (* The wall registry did record them, under its own schema... *)
  (match Json.member "schema" (Obs.wall_metrics_json a) with
  | Some (Json.String s) ->
      Alcotest.(check string) "wall schema" "satin-wall-metrics/v1" s
  | _ -> Alcotest.fail "wall export missing schema");
  Alcotest.(check bool) "wall exports differ (they saw different samples)"
    true
    (Json.to_string (Obs.wall_metrics_json a)
    <> Json.to_string (Obs.wall_metrics_json b));
  (* ...and the deterministic export does not mention the wall metric. *)
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no wall metric in deterministic export" false
    (contains (Json.to_string (Obs.metrics_json a)) "batch_wall")

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick test_counter;
    Alcotest.test_case "gauge semantics" `Quick test_gauge;
    Alcotest.test_case "histogram semantics" `Quick test_histogram;
    Alcotest.test_case "label order insensitivity" `Quick
      test_label_order_insensitive;
    Alcotest.test_case "duplicate label key raises" `Quick
      test_duplicate_label_key;
    Alcotest.test_case "kind mismatch raises" `Quick test_kind_mismatch;
    Alcotest.test_case "chrome trace golden" `Quick test_chrome_golden;
    Alcotest.test_case "end_span pops innermost" `Quick
      test_end_span_pops_innermost;
    Alcotest.test_case "wall metrics segregated" `Quick
      test_wall_metrics_segregated;
    Alcotest.test_case "same-seed exports identical" `Slow test_determinism;
  ]
