(* The observability layer: metrics registry semantics, Chrome trace-event
   export (golden), and determinism of exports across same-seed runs. *)

module Json = Satin_obs.Json
module Metrics = Satin_obs.Metrics
module Tracing = Satin_obs.Tracing
module Obs = Satin_obs.Obs
module Histogram = Satin_obs.Histogram
module Capsule = Satin_obs.Capsule
module Stats = Satin_engine.Stats
module E = Satin.Experiment

let test_counter () =
  let m = Metrics.create () in
  Metrics.incr m "hits";
  Metrics.incr m ~by:4 "hits";
  Alcotest.(check (option int)) "accumulates" (Some 5)
    (Metrics.counter_value m "hits");
  Alcotest.(check (option int)) "unknown series" None
    (Metrics.counter_value m "misses");
  let h = Metrics.counter m "hits" in
  incr h;
  Alcotest.(check (option int)) "handle shares storage" (Some 6)
    (Metrics.counter_value m "hits")

let test_gauge () =
  let m = Metrics.create () in
  Metrics.set m "depth" 3.5;
  Metrics.set m "depth" 1.25;
  Alcotest.(check (option (float 0.0))) "last write wins" (Some 1.25)
    (Metrics.gauge_value m "depth")

let test_histogram () =
  let m = Metrics.create () in
  List.iter (Metrics.observe m "lat") [ 1.0; 2.0; 3.0; 4.0 ];
  match Metrics.histogram_stats m "lat" with
  | None -> Alcotest.fail "missing histogram"
  | Some s ->
      Alcotest.(check int) "count" 4 (Stats.count s);
      Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
      Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min s);
      Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max s)

let test_label_order_insensitive () =
  let m = Metrics.create () in
  Metrics.incr m ~labels:[ ("core", "0"); ("world", "s") ] "x";
  Metrics.incr m ~labels:[ ("world", "s"); ("core", "0") ] "x";
  Alcotest.(check int) "one series" 1 (Metrics.series_count m);
  Alcotest.(check (option int))
    "both orders hit it" (Some 2)
    (Metrics.counter_value m ~labels:[ ("core", "0"); ("world", "s") ] "x")

let test_duplicate_label_key () =
  let m = Metrics.create () in
  Alcotest.check_raises "duplicate key"
    (Invalid_argument "Metrics: duplicate label key \"core\" on metric \"x\"")
    (fun () -> Metrics.incr m ~labels:[ ("core", "0"); ("core", "1") ] "x")

let test_kind_mismatch () =
  let m = Metrics.create () in
  Metrics.incr m "x";
  Alcotest.check_raises "counter reused as gauge"
    (Invalid_argument "Metrics.gauge: \"x\" is already a counter") (fun () ->
      Metrics.set m "x" 1.0);
  Alcotest.check_raises "counter reused as histogram"
    (Invalid_argument "Metrics.histogram: \"x\" is already a counter")
    (fun () -> Metrics.observe m "x" 1.0);
  (* Same name under different labels is a distinct series: no clash. *)
  Metrics.set m ~labels:[ ("k", "v") ] "x" 1.0

(* Golden render of a tiny two-span scenario: a world switch on core 0
   wrapping an area check, with a detection instant on another track. *)
let test_chrome_golden () =
  let tr = Tracing.create () in
  Tracing.set_track_name tr 0 "core 0";
  Tracing.begin_span tr ~time:1_000 ~track:0 ~cat:"world" "secure-world";
  Tracing.begin_span tr ~time:2_500 ~track:0 ~cat:"introspect"
    ~args:[ ("area", Json.Int 14) ]
    "check area 14";
  Tracing.end_span tr ~time:4_000 ~track:0;
  Tracing.instant tr ~time:4_500 ~track:1 ~cat:"alarm" "detection";
  Tracing.end_span tr ~time:5_000 ~track:0;
  let expected =
    String.concat ""
      [
        {|{"traceEvents":[|};
        {|{"name":"process_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"satin"}},|};
        {|{"name":"thread_name","ph":"M","ts":0,"pid":0,"tid":0,"args":{"name":"core 0"}},|};
        {|{"name":"secure-world","ph":"B","ts":1,"pid":0,"tid":0,"cat":"world"},|};
        {|{"name":"check area 14","ph":"B","ts":2.5,"pid":0,"tid":0,"cat":"introspect","args":{"area":14}},|};
        {|{"name":"check area 14","ph":"E","ts":4,"pid":0,"tid":0},|};
        {|{"name":"detection","ph":"i","ts":4.5,"pid":0,"tid":1,"cat":"alarm","s":"t"},|};
        {|{"name":"secure-world","ph":"E","ts":5,"pid":0,"tid":0}|};
        {|],"displayTimeUnit":"ns"}|};
      ]
  in
  let actual = Json.to_string (Tracing.to_chrome_json tr) in
  Alcotest.(check string) "golden chrome trace" expected actual;
  (* The export must survive our own strict parser. *)
  match Json.parse actual with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("export does not reparse: " ^ e)

let test_end_span_pops_innermost () =
  let tr = Tracing.create () in
  Tracing.begin_span tr ~time:0 ~track:3 "outer";
  Tracing.begin_span tr ~time:1 ~track:3 "inner";
  Tracing.end_span tr ~time:2 ~track:3;
  Tracing.end_span tr ~time:3 ~track:3;
  let names =
    List.filter_map
      (fun (e : Tracing.event) ->
        if e.Tracing.ph = Tracing.End then Some e.Tracing.name else None)
      (Tracing.events tr)
  in
  Alcotest.(check (list string)) "LIFO ends" [ "inner"; "outer" ] names

let run_e10_with_obs () =
  let obs = Obs.create () in
  Obs.install obs;
  Fun.protect ~finally:Obs.uninstall (fun () ->
      ignore (E.run_e10 ~seed:11 ~target_rounds:6 ()));
  obs

let test_determinism () =
  let a = run_e10_with_obs () in
  let b = run_e10_with_obs () in
  Alcotest.(check string) "trace exports byte-identical"
    (Json.to_string (Obs.trace_json a))
    (Json.to_string (Obs.trace_json b));
  Alcotest.(check string) "metrics exports byte-identical"
    (Json.to_string (Obs.metrics_json a))
    (Json.to_string (Obs.metrics_json b));
  (* And the campaign actually produced spans, not an empty document. *)
  match Json.member "traceEvents" (Obs.trace_json a) with
  | Some (Json.List evs) ->
      Alcotest.(check bool) "non-trivial trace" true (List.length evs > 10)
  | _ -> Alcotest.fail "missing traceEvents"

let test_wall_metrics_segregated () =
  (* The --metrics byte-stability fix: wall-clock observations land in a
     separate registry and never leak into the deterministic export. Two
     runs that differ ONLY in their wall-clock samples must export
     byte-identical metrics_json. *)
  let run wall_sample =
    let obs = Obs.create () in
    Obs.install obs;
    Fun.protect ~finally:Obs.uninstall (fun () ->
        Obs.incr "deterministic.counter";
        Obs.observe "deterministic.histo" 0.25;
        Obs.observe_wall "runner.batch_wall_s" wall_sample);
    obs
  in
  let a = run 0.001 and b = run 123.456 in
  Alcotest.(check string) "metrics_json ignores wall-clock samples"
    (Json.to_string (Obs.metrics_json a))
    (Json.to_string (Obs.metrics_json b));
  (* The wall registry did record them, under its own schema... *)
  (match Json.member "schema" (Obs.wall_metrics_json a) with
  | Some (Json.String s) ->
      Alcotest.(check string) "wall schema" "satin-wall-metrics/v1" s
  | _ -> Alcotest.fail "wall export missing schema");
  Alcotest.(check bool) "wall exports differ (they saw different samples)"
    true
    (Json.to_string (Obs.wall_metrics_json a)
    <> Json.to_string (Obs.wall_metrics_json b));
  (* ...and the deterministic export does not mention the wall metric. *)
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "no wall metric in deterministic export" false
    (contains (Json.to_string (Obs.metrics_json a)) "batch_wall")

(* ---- Json float codec ----

   The emitter promises shortest round-trip numbers (with the "5." patch
   for %g's bare-dot output); the parser returns Int for numbers without
   a fraction or exponent. So the invariant is numeric, not syntactic:
   whatever shape comes back must equal the emitted float exactly. *)

let float_shape_gen =
  QCheck.Gen.(
    oneof
      [
        float;
        (* integral values: "%g" prints "5", which reparses as Int *)
        map float_of_int int;
        map Float.of_int small_signed_int;
        (* spread across the exponent range, negatives included *)
        map
          (fun ((m, e), neg) ->
            let v = Float.ldexp m e in
            if neg then -.v else v)
          (pair (pair (float_range 0.5 1.0) (int_range (-300) 300)) bool);
      ])

let prop_json_float_roundtrip =
  QCheck.Test.make ~count:2000 ~name:"Json.float round-trips numerically"
    (QCheck.make ~print:string_of_float float_shape_gen)
    (fun x ->
      let s = Json.to_string (Json.List [ Json.float x ]) in
      match Json.parse s with
      | Ok (Json.List [ v ]) -> (
          if Float.is_nan x || not (Float.is_finite x) then v = Json.Null
          else
            match v with
            | Json.Int n -> float_of_int n = x
            | Json.Float f -> f = x
            | _ -> QCheck.Test.fail_reportf "non-number back from %s" s)
      | Ok _ | Error _ -> QCheck.Test.fail_reportf "reparse failed: %s" s)

let test_json_float_edges () =
  let rt x =
    let s = Json.to_string (Json.float x) in
    Alcotest.(check bool)
      (Printf.sprintf "%S has no bare trailing dot" s)
      false
      (String.length s > 0 && s.[String.length s - 1] = '.');
    match Json.parse s with
    | Ok (Json.Int n) ->
        Alcotest.(check bool) (s ^ " numeric") true (float_of_int n = x)
    | Ok (Json.Float f) -> Alcotest.(check bool) (s ^ " numeric") true (f = x)
    | Ok _ | Error _ -> Alcotest.failf "bad reparse of %s" s
  in
  List.iter rt
    [
      5.0; -5.0; 0.5; -0.5; 1e6; 1e22; -1.5e-8; 123456789.25;
      Float.max_float; -.Float.min_float; 0.0;
    ];
  Alcotest.(check string) "NaN becomes null" "null"
    (Json.to_string (Json.float Float.nan));
  Alcotest.(check string) "infinity becomes null" "null"
    (Json.to_string (Json.float Float.infinity))

(* ---- mergeable histograms ---- *)

let hist_of_list l =
  let t = Histogram.create () in
  List.iter (Histogram.add t) l;
  t

let samples_arb =
  let sample =
    QCheck.Gen.(
      oneof
        [
          float;
          map float_of_int small_signed_int;
          return 0.0;
          map
            (fun ((m, e), neg) ->
              let v = Float.ldexp m e in
              if neg then -.v else v)
            (pair (pair (float_range 0.5 1.0) (int_range (-80) 80)) bool);
        ])
  in
  QCheck.make
    ~print:QCheck.Print.(list string_of_float)
    QCheck.Gen.(
      list_size (int_range 0 40)
        (map (fun x -> if Float.is_nan x then 0.0 else x) sample))

let prop_histogram_merge_laws =
  QCheck.Test.make ~count:500
    ~name:"histogram merge is commutative, associative, = concatenation"
    QCheck.(triple samples_arb samples_arb samples_arb)
    (fun (xs, ys, zs) ->
      let a = hist_of_list xs and b = hist_of_list ys and c = hist_of_list zs in
      Histogram.equal (Histogram.merge a b) (Histogram.merge b a)
      && Histogram.equal
           (Histogram.merge (Histogram.merge a b) c)
           (Histogram.merge a (Histogram.merge b c))
      && Histogram.equal (Histogram.merge a b) (hist_of_list (xs @ ys)))

let prop_histogram_codec_and_bounds =
  QCheck.Test.make ~count:500
    ~name:"histogram codec round-trips; stats stay in [min, max]"
    samples_arb
    (fun xs ->
      let t = hist_of_list xs in
      let s = Json.to_string (Histogram.to_json t) in
      match Result.bind (Json.parse s) Histogram.of_json with
      | Error e -> QCheck.Test.fail_reportf "decode: %s" e
      | Ok t' ->
          Histogram.equal t t'
          && Json.to_string (Histogram.to_json t') = s
          && (Histogram.is_empty t
             || begin
                  let mn = Histogram.min t and mx = Histogram.max t in
                  let inside v = mn <= v && v <= mx in
                  inside (Histogram.mean t)
                  && List.for_all
                       (fun q -> inside (Histogram.quantile t q))
                       [ 0.0; 0.5; 0.9; 0.99; 1.0 ]
                end))

let test_histogram_exact_extremes () =
  let t = hist_of_list [ 4.0; 1.0; 9.5; -2.0; 0.0 ] in
  Alcotest.(check int) "count" 5 (Histogram.count t);
  Alcotest.(check (float 0.0)) "min exact" (-2.0) (Histogram.min t);
  Alcotest.(check (float 0.0)) "max exact" 9.5 (Histogram.max t);
  Alcotest.(check (float 0.0)) "q=0 is min" (-2.0) (Histogram.quantile t 0.0);
  Alcotest.(check (float 0.0)) "q=1 is max" 9.5 (Histogram.quantile t 1.0);
  (* single sample: every statistic collapses to it, clamp included *)
  let one = hist_of_list [ 1.0 ] in
  Alcotest.(check (float 0.0)) "singleton mean" 1.0 (Histogram.mean one);
  Alcotest.(check (float 0.0)) "singleton p50" 1.0 (Histogram.quantile one 0.5);
  Alcotest.check_raises "empty mean raises"
    (Invalid_argument "Histogram.mean: empty histogram") (fun () ->
      ignore (Histogram.mean (Histogram.create ())))

(* ---- capsules ---- *)

let test_capsule_roundtrip () =
  let m = Metrics.create () in
  Metrics.incr m ~by:3 "sched.dispatches";
  Metrics.incr m ~labels:[ ("core", "1") ] "kprober.suspects";
  Metrics.set m "engine.queue_depth" 4.0;
  List.iter (Metrics.observe m "checker.scan") [ 0.5; 1.25; 8.0 ];
  let c =
    Capsule.of_metrics ~experiment:"rt" ~seed:7 ~trial:2
      ~fingerprint:(String.make 32 'a')
      ~config:[ ("rounds", "50"); ("ctx:check", "1") ]
      m
  in
  let s = Json.to_string (Capsule.to_json c) in
  match Capsule.of_string s with
  | Error e -> Alcotest.fail e
  | Ok c2 ->
      Alcotest.(check string) "canonical re-render byte-identical" s
        (Json.to_string (Capsule.to_json c2));
      Alcotest.(check string) "experiment survives" "rt" c2.Capsule.experiment;
      Alcotest.(check int) "trial survives" 2 c2.Capsule.trial;
      Alcotest.(check int) "seed survives" 7 c2.Capsule.seed;
      Alcotest.(check int) "all series survive" 4
        (List.length c2.Capsule.series);
      (* config comes back sorted by field name *)
      Alcotest.(check (list (pair string string)))
        "config sorted"
        [ ("ctx:check", "1"); ("rounds", "50") ]
        c2.Capsule.config

let test_capsule_rejects_duplicate_config () =
  let m = Metrics.create () in
  try
    ignore
      (Capsule.of_metrics ~experiment:"x" ~seed:0 ~trial:0 ~fingerprint:"f"
         ~config:[ ("a", "1"); ("a", "2") ]
         m);
    Alcotest.fail "duplicate config field accepted"
  with Invalid_argument _ -> ()

let test_capsule_rejects_junk () =
  (match Capsule.of_string "{\"schema\":\"satin-capsule/v9\"}" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "foreign schema accepted");
  match Capsule.of_string "not json" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "junk accepted"

(* ---- per-domain capture ---- *)

let test_with_capture () =
  Alcotest.(check bool) "idle: not capturing" false (Obs.capturing ());
  let outer, () =
    Obs.with_capture (fun () ->
        Alcotest.(check bool) "capturing inside" true (Obs.capturing ());
        Alcotest.(check bool) "active without a sink" true (Obs.active ());
        Obs.incr "c";
        Obs.observe "h" 1.0;
        (* nesting: the innermost capture wins for its extent *)
        let inner, () = Obs.with_capture (fun () -> Obs.incr "c") in
        Alcotest.(check (option int))
          "inner saw only its own" (Some 1)
          (Metrics.counter_value inner "c"))
  in
  Alcotest.(check (option int))
    "outer missed the nested incr" (Some 1)
    (Metrics.counter_value outer "c");
  Alcotest.(check bool) "histogram captured" true
    (Metrics.histogram_stats outer "h" <> None);
  Alcotest.(check bool) "sealed afterwards" false (Obs.capturing ());
  Alcotest.(check bool) "inactive afterwards" false (Obs.active ())

let test_capture_is_per_domain () =
  (* A capture on this domain must not leak samples from another domain,
     and the other domain must not observe a capture it never opened. *)
  let m, () =
    Obs.with_capture (fun () ->
        Obs.incr "mine";
        let d =
          Domain.spawn (fun () ->
              let was_capturing = Obs.capturing () in
              Obs.incr "theirs";
              was_capturing)
        in
        Alcotest.(check bool)
          "worker domain not capturing" false (Domain.join d))
  in
  Alcotest.(check (option int)) "own sample kept" (Some 1)
    (Metrics.counter_value m "mine");
  Alcotest.(check (option int)) "foreign sample excluded" None
    (Metrics.counter_value m "theirs")

(* ---- per-domain track ownership ---- *)

let test_tracing_cross_domain_raises () =
  let tr = Tracing.create () in
  Tracing.begin_span tr ~time:0 ~track:5 "owner-span";
  let intrude f =
    Domain.join
      (Domain.spawn (fun () ->
           try
             f ();
             false
           with Invalid_argument _ -> true))
  in
  Alcotest.(check bool) "foreign begin_span on open track raises" true
    (intrude (fun () -> Tracing.begin_span tr ~time:1 ~track:5 "intruder"));
  Alcotest.(check bool) "foreign end_span raises" true
    (intrude (fun () -> Tracing.end_span tr ~time:2 ~track:5));
  (* the owner is unaffected and can close normally *)
  Tracing.end_span tr ~time:3 ~track:5;
  (* with the stack empty, ownership transfers cleanly *)
  let d =
    Domain.spawn (fun () ->
        try
          Tracing.begin_span tr ~time:4 ~track:5 "new-owner";
          Tracing.end_span tr ~time:5 ~track:5;
          true
        with Invalid_argument _ -> false)
  in
  Alcotest.(check bool) "empty track transfers ownership" true (Domain.join d)

(* Progress ETA formatting: before any trial completes (or with a frozen
   clock) the rate is 0 and the naive ETA is inf/nan — the heartbeat must
   show a "--" placeholder, never "infs" or "nans". *)
let test_progress_eta_placeholder () =
  let eta = Satin_obs.Progress.eta_string in
  let check name want got =
    Alcotest.(check (option string)) name want got
  in
  check "no trial finished yet" (Some "--")
    (eta ~finished:0 ~total:10 ~elapsed:3.0);
  check "zero elapsed (frozen clock)" (Some "--")
    (eta ~finished:5 ~total:10 ~elapsed:0.0);
  check "negative elapsed (clock skew)" (Some "--")
    (eta ~finished:5 ~total:10 ~elapsed:(-1.0));
  check "steady rate" (Some "5.0s") (eta ~finished:5 ~total:10 ~elapsed:5.0);
  check "done" None (eta ~finished:10 ~total:10 ~elapsed:5.0);
  check "overshoot" None (eta ~finished:12 ~total:10 ~elapsed:5.0);
  check "empty batch" None (eta ~finished:0 ~total:0 ~elapsed:1.0)

let suite =
  [
    Alcotest.test_case "counter semantics" `Quick test_counter;
    Alcotest.test_case "gauge semantics" `Quick test_gauge;
    Alcotest.test_case "histogram semantics" `Quick test_histogram;
    Alcotest.test_case "label order insensitivity" `Quick
      test_label_order_insensitive;
    Alcotest.test_case "duplicate label key raises" `Quick
      test_duplicate_label_key;
    Alcotest.test_case "kind mismatch raises" `Quick test_kind_mismatch;
    Alcotest.test_case "chrome trace golden" `Quick test_chrome_golden;
    Alcotest.test_case "end_span pops innermost" `Quick
      test_end_span_pops_innermost;
    Alcotest.test_case "wall metrics segregated" `Quick
      test_wall_metrics_segregated;
    QCheck_alcotest.to_alcotest prop_json_float_roundtrip;
    Alcotest.test_case "json float edge cases" `Quick test_json_float_edges;
    QCheck_alcotest.to_alcotest prop_histogram_merge_laws;
    QCheck_alcotest.to_alcotest prop_histogram_codec_and_bounds;
    Alcotest.test_case "histogram exact extremes" `Quick
      test_histogram_exact_extremes;
    Alcotest.test_case "capsule round-trip" `Quick test_capsule_roundtrip;
    Alcotest.test_case "capsule duplicate config rejected" `Quick
      test_capsule_rejects_duplicate_config;
    Alcotest.test_case "capsule rejects junk" `Quick test_capsule_rejects_junk;
    Alcotest.test_case "with_capture scoping" `Quick test_with_capture;
    Alcotest.test_case "capture is per-domain" `Quick
      test_capture_is_per_domain;
    Alcotest.test_case "tracing cross-domain guard" `Quick
      test_tracing_cross_domain_raises;
    Alcotest.test_case "progress eta placeholder" `Quick
      test_progress_eta_placeholder;
    Alcotest.test_case "same-seed exports identical" `Slow test_determinism;
  ]
