(* Dynamic kernel data: process table, DKOM hiding, cross-view detection. *)

module Scenario = Satin.Scenario
open Satin_engine
module Memory = Satin_hw.Memory
module World = Satin_hw.World
module Platform = Satin_hw.Platform
module Proc_table = Satin_kernel.Proc_table
module Dkom = Satin_introspect.Dkom
module Dkom_rootkit = Satin_attack.Dkom_rootkit
module Kprober = Satin_attack.Kprober

let make_table () =
  let memory = Memory.create ~size:(4 * 1024 * 1024) in
  memory, Proc_table.create ~memory ~base:(1024 * 1024) ~capacity:32

let prng () = Prng.create 5

let test_spawn_and_walk () =
  let _, t = make_table () in
  Proc_table.spawn t ~pid:1 ();
  Proc_table.spawn t ~pid:2 ();
  Proc_table.spawn t ~pid:3 ~runnable:false ();
  Alcotest.(check (list int)) "tasks view" [ 1; 2; 3 ]
    (Proc_table.pids_via_tasks t ~world:World.Normal);
  Alcotest.(check (list int)) "runqueue view" [ 1; 2 ]
    (Proc_table.pids_via_runqueue t ~world:World.Normal);
  Alcotest.(check int) "live count" 3 (Proc_table.live_count t)

let test_exit_unlinks () =
  let _, t = make_table () in
  Proc_table.spawn t ~pid:1 ();
  Proc_table.spawn t ~pid:2 ();
  Proc_table.exit_process t ~pid:1;
  Alcotest.(check (list int)) "tasks after exit" [ 2 ]
    (Proc_table.pids_via_tasks t ~world:World.Normal);
  Alcotest.(check (list int)) "runq after exit" [ 2 ]
    (Proc_table.pids_via_runqueue t ~world:World.Normal);
  (* Slot reuse. *)
  Proc_table.spawn t ~pid:9 ();
  Alcotest.(check int) "live" 2 (Proc_table.live_count t)

let test_capacity_and_duplicates () =
  let _, t = make_table () in
  for pid = 1 to 32 do
    Proc_table.spawn t ~pid ()
  done;
  (try
     Proc_table.spawn t ~pid:99 ();
     Alcotest.fail "over capacity accepted"
   with Invalid_argument _ -> ());
  try
    Proc_table.exit_process t ~pid:1;
    Proc_table.spawn t ~pid:2 ();
    Alcotest.fail "duplicate pid accepted"
  with Invalid_argument _ -> ()

let test_unlink_relink () =
  let _, t = make_table () in
  for pid = 1 to 5 do
    Proc_table.spawn t ~pid ()
  done;
  Proc_table.unlink_tasks t ~world:World.Normal ~pid:3;
  Alcotest.(check (list int)) "hidden from tasks" [ 1; 2; 4; 5 ]
    (Proc_table.pids_via_tasks t ~world:World.Normal);
  Alcotest.(check (list int)) "still scheduled" [ 1; 2; 3; 4; 5 ]
    (Proc_table.pids_via_runqueue t ~world:World.Normal);
  Alcotest.(check bool) "tasks_linked false" false (Proc_table.tasks_linked t ~pid:3);
  (* Idempotent unlink must not corrupt the list. *)
  Proc_table.unlink_tasks t ~world:World.Normal ~pid:3;
  Proc_table.relink_tasks t ~world:World.Normal ~pid:3;
  Alcotest.(check (list int)) "restored in place" [ 1; 2; 3; 4; 5 ]
    (Proc_table.pids_via_tasks t ~world:World.Normal);
  Proc_table.relink_tasks t ~world:World.Normal ~pid:3;
  Alcotest.(check (list int)) "idempotent relink" [ 1; 2; 3; 4; 5 ]
    (Proc_table.pids_via_tasks t ~world:World.Normal)

let test_cross_view_clean () =
  let _, t = make_table () in
  for pid = 1 to 6 do
    Proc_table.spawn t ~pid ~runnable:(pid mod 2 = 0) ()
  done;
  let r = Dkom.check t ~prng:(prng ()) in
  Alcotest.(check (list int)) "no hidden" [] r.Dkom.hidden_pids;
  (* Non-runnable processes are ghosts (benign): listed, not scheduled. *)
  Alcotest.(check (list int)) "benign ghosts" [ 1; 3; 5 ] r.Dkom.ghost_pids;
  Alcotest.(check bool) "not flagged" false (Dkom.hidden r);
  Alcotest.(check bool) "walk takes time" true (r.Dkom.duration > Sim_time.zero)

let test_cross_view_catches_dkom () =
  let _, t = make_table () in
  for pid = 1 to 6 do
    Proc_table.spawn t ~pid ()
  done;
  Proc_table.unlink_tasks t ~world:World.Normal ~pid:4;
  let r = Dkom.check t ~prng:(prng ()) in
  Alcotest.(check (list int)) "hidden found" [ 4 ] r.Dkom.hidden_pids;
  Alcotest.(check bool) "flagged" true (Dkom.hidden r);
  Alcotest.(check int) "counts" 5 r.Dkom.tasks_count;
  Alcotest.(check int) "runq count" 6 r.Dkom.runqueue_count

let test_walk_cost_scales () =
  let _, t = make_table () in
  for pid = 1 to 30 do
    Proc_table.spawn t ~pid ()
  done;
  let r = Dkom.check t ~prng:(prng ()) in
  let per_node = Sim_time.to_sec_f r.Dkom.duration /. 62.0 in
  if per_node < 8.0e-8 || per_node > 1.5e-7 then
    Alcotest.failf "per-node cost out of model: %g" per_node

let test_dkom_rootkit_reacts_to_long_introspection () =
  let s = Scenario.create ~seed:97 () in
  let table =
    Proc_table.create ~memory:s.Scenario.platform.Platform.memory
      ~base:(16 * 1024 * 1024) ~capacity:16
  in
  for pid = 1 to 5 do
    Proc_table.spawn table ~pid ()
  done;
  Proc_table.spawn table ~pid:1337 ();
  let rk =
    Dkom_rootkit.deploy s.Scenario.kernel table ~pid:1337
      ~prober_config:{ Kprober.default_config with period = Sim_time.us 500 }
  in
  Dkom_rootkit.start rk;
  Scenario.run_for s (Sim_time.ms 20);
  Alcotest.(check bool) "hidden while quiet" true (Dkom_rootkit.is_hidden rk);
  Alcotest.(check bool) "not in tasks list" false
    (Proc_table.tasks_linked table ~pid:1337);
  (* A long secure residency (a full-kernel scan) is visible to the prober:
     the rootkit relinks. *)
  let cpu = Platform.core s.Scenario.platform 4 in
  Satin_hw.Cpu.set_world cpu World.Secure;
  Scenario.run_for s (Sim_time.ms 50);
  Alcotest.(check bool) "relinked under observation" true
    (Proc_table.tasks_linked table ~pid:1337);
  Alcotest.(check bool) "one relink" true (Dkom_rootkit.relinks rk >= 1);
  Satin_hw.Cpu.set_world cpu World.Normal;
  Scenario.run_for s (Sim_time.ms 50);
  Alcotest.(check bool) "re-hidden after all-clear" true (Dkom_rootkit.is_hidden rk);
  Dkom_rootkit.stop rk

let test_e13_end_to_end () =
  let r = Satin.Experiment.run_e13 ~seed:7 ~checks:8 () in
  Alcotest.(check int) "all checks performed" 8 r.Satin.Experiment.e13_checks;
  Alcotest.(check int) "all detected" 8 r.Satin.Experiment.e13_detections;
  Alcotest.(check int) "no relinks: checks invisible to the side channel" 0
    r.Satin.Experiment.e13_relinks

let prop_unlink_relink_roundtrip =
  QCheck.Test.make ~name:"unlink+relink restores any pid" ~count:40
    QCheck.(pair (int_range 2 20) (int_bound 1000))
    (fun (n, pick) ->
      let _, t = make_table () in
      for pid = 1 to n do
        Proc_table.spawn t ~pid ()
      done;
      let before = Proc_table.pids_via_tasks t ~world:World.Normal in
      let victim = 1 + (pick mod n) in
      Proc_table.unlink_tasks t ~world:World.Normal ~pid:victim;
      let hidden = Proc_table.pids_via_tasks t ~world:World.Normal in
      Proc_table.relink_tasks t ~world:World.Normal ~pid:victim;
      let after = Proc_table.pids_via_tasks t ~world:World.Normal in
      (not (List.mem victim hidden))
      && List.length hidden = n - 1
      && after = before)

let suite =
  [
    Alcotest.test_case "spawn and walk" `Quick test_spawn_and_walk;
    Alcotest.test_case "exit unlinks" `Quick test_exit_unlinks;
    Alcotest.test_case "capacity and duplicates" `Quick test_capacity_and_duplicates;
    Alcotest.test_case "unlink/relink" `Quick test_unlink_relink;
    Alcotest.test_case "cross-view clean" `Quick test_cross_view_clean;
    Alcotest.test_case "cross-view catches dkom" `Quick test_cross_view_catches_dkom;
    Alcotest.test_case "walk cost scales" `Quick test_walk_cost_scales;
    Alcotest.test_case "dkom rootkit reacts" `Quick
      test_dkom_rootkit_reacts_to_long_introspection;
    Alcotest.test_case "E13 end to end" `Quick test_e13_end_to_end;
    QCheck_alcotest.to_alcotest prop_unlink_relink_roundtrip;
  ]
