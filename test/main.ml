let () =
  Alcotest.run "satin"
    [
      ("sim_time", Test_sim_time.suite);
      ("prng", Test_prng.suite);
      ("event_queue", Test_event_queue.suite);
      ("engine", Test_engine.suite);
      ("stats", Test_stats.suite);
      ("trace", Test_trace.suite);
      ("obs", Test_obs.suite);
      ("memory", Test_memory.suite);
      ("cycle_model", Test_cycle_model.suite);
      ("hw_platform", Test_hw_platform.suite);
      ("layout", Test_layout.suite);
      ("sched", Test_sched.suite);
      ("timer_irq", Test_timer_irq.suite);
      ("kernel_tables", Test_kernel_tables.suite);
      ("tz", Test_tz.suite);
      ("hash", Test_hash.suite);
      ("area", Test_area.suite);
      ("checker", Test_checker.suite);
      ("defenses", Test_defenses.suite);
      ("attack", Test_attack.suite);
      ("workload", Test_workload.suite);
      ("race_report", Test_race.suite);
      ("integration", Test_integration.suite);
      ("alarm", Test_alarm.suite);
      ("failure_injection", Test_failure_injection.suite);
      ("dkom", Test_dkom.suite);
      ("cache_prober", Test_cache_prober.suite);
      ("sync_guard", Test_sync_guard.suite);
      ("merkle", Test_merkle.suite);
      ("inject", Test_inject.suite);
      ("runner", Test_runner.suite);
      ("experiments_smoke", Test_experiments_smoke.suite);
      ("determinism", Test_determinism.suite);
      ("gantt", Test_gantt.suite);
    ]
