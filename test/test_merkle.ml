open Satin_introspect
open Satin_hw

let setup ?(len = 64 * 1024) () =
  let memory = Memory.create ~size:(1024 * 1024) in
  let base = 4096 in
  for i = 0 to (len / 256) - 1 do
    Memory.write_string memory ~world:World.Secure ~addr:(base + (i * 256))
      (String.init 256 (fun j -> Char.chr ((i + j) land 0xff)))
  done;
  memory, base, len

let test_build_shape () =
  let memory, base, len = setup () in
  let t = Merkle.build Hash.Djb2 memory ~base ~len in
  Alcotest.(check int) "16 pages" 16 (Merkle.pages t);
  Alcotest.(check int) "page size" 4096 (Merkle.page_size t);
  Alcotest.(check int) "footprint = 8B x (2*16-1)" (8 * 31) (Merkle.secure_bytes t);
  Alcotest.(check bool) "verifies clean" true (Merkle.verify_root t memory);
  Alcotest.(check (list int)) "no dirty pages" [] (Merkle.dirty_pages t memory)

let test_non_pow2_and_short_tail () =
  let memory, base, _ = setup ~len:(10 * 4096) () in
  (* 10 pages + a 100-byte tail page = 11 leaves, padded to 16. *)
  let t = Merkle.build Hash.Djb2 memory ~base ~len:((10 * 4096) + 100) in
  Alcotest.(check int) "11 pages" 11 (Merkle.pages t);
  Alcotest.(check bool) "verifies" true (Merkle.verify_root t memory);
  (* Tampering inside the short tail is caught. *)
  Memory.write_byte memory ~world:World.Normal ~addr:(base + (10 * 4096) + 50) 0xAA;
  Alcotest.(check (list int)) "tail page dirty" [ 10 ] (Merkle.dirty_pages t memory)

let test_detects_and_pinpoints () =
  let memory, base, len = setup () in
  let t = Merkle.build Hash.Djb2 memory ~base ~len in
  Memory.write_byte memory ~world:World.Normal ~addr:(base + (5 * 4096) + 7) 0xEE;
  Memory.write_byte memory ~world:World.Normal ~addr:(base + (12 * 4096)) 0xEE;
  Alcotest.(check bool) "root mismatch" false (Merkle.verify_root t memory);
  Alcotest.(check (list int)) "pages pinpointed" [ 5; 12 ] (Merkle.dirty_pages t memory)

let test_update_page_absorbs_change () =
  let memory, base, len = setup () in
  let t = Merkle.build Hash.Djb2 memory ~base ~len in
  Memory.write_byte memory ~world:World.Normal ~addr:(base + (3 * 4096)) 0x11;
  Alcotest.(check bool) "dirty before" false (Merkle.verify_root t memory);
  Merkle.update_page t memory ~page:3;
  Alcotest.(check bool) "clean after authorized update" true
    (Merkle.verify_root t memory);
  Alcotest.(check (list int)) "no dirty pages" [] (Merkle.dirty_pages t memory)

let test_update_cost_logarithmic () =
  let memory, base, _ = setup ~len:(16 * 4096) () in
  let t = Merkle.build Hash.Djb2 memory ~base ~len:(16 * 4096) in
  Alcotest.(check int) "no rehashes yet" 0 (Merkle.node_rehashes t);
  Merkle.update_page t memory ~page:9;
  (* 16 leaves -> depth 4 internal rehashes. *)
  Alcotest.(check int) "log2(16) path rehashes" 4 (Merkle.node_rehashes t)

let test_bad_page_rejected () =
  let memory, base, len = setup () in
  let t = Merkle.build Hash.Djb2 memory ~base ~len in
  try
    Merkle.update_page t memory ~page:16;
    Alcotest.fail "bad page accepted"
  with Invalid_argument _ -> ()

let test_footprint_vs_golden () =
  (* The headline saving: the paper-sized image needs ~12 MB of golden
     content but < 50 KB of tree. *)
  let layout = Satin_kernel.Layout.paper_layout () in
  let memory = Memory.create ~size:(32 * 1024 * 1024) in
  ignore (Satin_kernel.Layout.install layout memory ~seed:1);
  let t =
    Merkle.build Hash.Djb2 memory
      ~base:(Satin_kernel.Layout.base layout)
      ~len:(Satin_kernel.Layout.total_size layout)
  in
  Alcotest.(check bool) "under 64 KiB" true (Merkle.secure_bytes t < 65_536);
  Alcotest.(check bool) "clean" true (Merkle.verify_root t memory)

let prop_tamper_always_pinpointed =
  QCheck.Test.make ~name:"any single-byte tamper lands in exactly its page"
    ~count:40
    QCheck.(int_bound ((16 * 4096) - 1))
    (fun off ->
      let memory, base, len = setup () in
      let t = Merkle.build Hash.Djb2 memory ~base ~len in
      let before = Memory.read_byte memory ~world:World.Normal ~addr:(base + off) in
      Memory.write_byte memory ~world:World.Normal ~addr:(base + off)
        ((before + 1) land 0xff);
      Merkle.dirty_pages t memory = [ off / 4096 ])

let suite =
  [
    Alcotest.test_case "build shape" `Quick test_build_shape;
    Alcotest.test_case "non-pow2 + short tail" `Quick test_non_pow2_and_short_tail;
    Alcotest.test_case "detects and pinpoints" `Quick test_detects_and_pinpoints;
    Alcotest.test_case "authorized update" `Quick test_update_page_absorbs_change;
    Alcotest.test_case "O(log n) update" `Quick test_update_cost_logarithmic;
    Alcotest.test_case "bad page rejected" `Quick test_bad_page_rejected;
    Alcotest.test_case "footprint vs golden copy" `Quick test_footprint_vs_golden;
    QCheck_alcotest.to_alcotest prop_tamper_always_pinpointed;
  ]
