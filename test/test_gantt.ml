module Scenario = Satin.Scenario
module Gantt = Satin.Gantt
open Satin_engine
module Platform = Satin_hw.Platform
module Cpu = Satin_hw.Cpu
module World = Satin_hw.World

let test_records_windows () =
  let s = Scenario.create ~seed:111 () in
  let r = Gantt.record s.Scenario.platform in
  let cpu = Platform.core s.Scenario.platform 2 in
  Scenario.run_for s (Sim_time.ms 10);
  Cpu.set_world cpu World.Secure;
  Scenario.run_for s (Sim_time.ms 5);
  Cpu.set_world cpu World.Normal;
  Scenario.run_for s (Sim_time.ms 10);
  (match Gantt.secure_windows r ~core:2 with
  | [ (entry, exit) ] ->
      Alcotest.(check int) "entry" (Sim_time.ms 10) entry;
      Alcotest.(check int) "exit" (Sim_time.ms 15) exit
  | l -> Alcotest.failf "expected one window, got %d" (List.length l));
  Alcotest.(check (list (pair int int))) "other core untouched" []
    (Gantt.secure_windows r ~core:0)

let test_open_window_closed_at_now () =
  let s = Scenario.create ~seed:112 () in
  let r = Gantt.record s.Scenario.platform in
  Cpu.set_world (Platform.core s.Scenario.platform 1) World.Secure;
  Scenario.run_for s (Sim_time.ms 7);
  match Gantt.secure_windows r ~core:1 with
  | [ (_, exit) ] -> Alcotest.(check int) "closed at now" (Sim_time.ms 7) exit
  | _ -> Alcotest.fail "open window missing"

let test_render_paints_secure_and_markers () =
  let s = Scenario.create ~seed:113 () in
  let r = Gantt.record s.Scenario.platform in
  let cpu = Platform.core s.Scenario.platform 0 in
  Scenario.run_for s (Sim_time.ms 40);
  Cpu.set_world cpu World.Secure;
  Scenario.run_for s (Sim_time.ms 20);
  Cpu.set_world cpu World.Normal;
  Scenario.run_for s (Sim_time.ms 40);
  let out =
    Gantt.render r
      ~markers:[ { Gantt.m_time = Sim_time.ms 90; m_core = 0; m_char = '!' } ]
      ~t0:Sim_time.zero ~t1:(Sim_time.ms 100) ~width:50 ()
  in
  let lines = String.split_on_char '\n' out in
  Alcotest.(check int) "header + 6 lanes + trailing" 8 (List.length lines);
  let lane0 = List.nth lines 1 in
  Alcotest.(check bool) "secure painted" true (String.contains lane0 '#');
  Alcotest.(check bool) "marker painted" true (String.contains lane0 '!');
  let lane3 = List.nth lines 4 in
  Alcotest.(check bool) "idle lane clean" false (String.contains lane3 '#')

let test_short_window_still_visible () =
  let s = Scenario.create ~seed:114 () in
  let r = Gantt.record s.Scenario.platform in
  let cpu = Platform.core s.Scenario.platform 5 in
  Scenario.run_for s (Sim_time.s 50);
  Cpu.set_world cpu World.Secure;
  Scenario.run_for s (Sim_time.ms 7);
  Cpu.set_world cpu World.Normal;
  Scenario.run_for s (Sim_time.s 50);
  (* 7 ms on a 100 s axis: far below one column, must still paint. *)
  let out = Gantt.render r ~t0:Sim_time.zero ~t1:(Sim_time.s 100) ~width:80 () in
  let lane5 = List.nth (String.split_on_char '\n' out) 6 in
  Alcotest.(check bool) "still visible" true (String.contains lane5 '#')

let test_render_validation () =
  let s = Scenario.create ~seed:115 () in
  let r = Gantt.record s.Scenario.platform in
  (try
     ignore (Gantt.render r ~t0:(Sim_time.s 1) ~t1:(Sim_time.s 1) ~width:50 ());
     Alcotest.fail "empty window accepted"
   with Invalid_argument _ -> ());
  try
    ignore (Gantt.render r ~t0:Sim_time.zero ~t1:(Sim_time.s 1) ~width:5 ());
    Alcotest.fail "tiny width accepted"
  with Invalid_argument _ -> ()

let suite =
  [
    Alcotest.test_case "records windows" `Quick test_records_windows;
    Alcotest.test_case "open window closed at now" `Quick test_open_window_closed_at_now;
    Alcotest.test_case "render paints" `Quick test_render_paints_secure_and_markers;
    Alcotest.test_case "short window visible" `Quick test_short_window_still_visible;
    Alcotest.test_case "render validation" `Quick test_render_validation;
  ]
