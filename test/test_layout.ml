open Satin_kernel
open Satin_hw

let layout = Layout.paper_layout ()

let test_paper_dimensions () =
  Alcotest.(check int) "total" 11_916_240 (Layout.total_size layout);
  let sizes = Layout.canonical_area_sizes layout in
  Alcotest.(check int) "19 areas" 19 (List.length sizes);
  Alcotest.(check int) "sum" 11_916_240 (List.fold_left ( + ) 0 sizes);
  Alcotest.(check int) "largest" 876_616 (List.fold_left max 0 sizes);
  Alcotest.(check int) "smallest" 431_360 (List.fold_left min max_int sizes)

let test_symbols_tile_image () =
  let syms = Layout.symbols layout in
  let rec walk addr = function
    | [] -> Alcotest.(check int) "ends at image end" (Layout.base layout + Layout.total_size layout) addr
    | s :: rest ->
        Alcotest.(check int) (Printf.sprintf "gap-free at %s" s.Layout.sym_name)
          addr s.Layout.sym_addr;
        if s.Layout.sym_size <= 0 then Alcotest.fail "non-positive symbol";
        walk (s.Layout.sym_addr + s.Layout.sym_size) rest
  in
  walk (Layout.base layout) syms

let test_symbol_names_unique () =
  let syms = Layout.symbols layout in
  let names = List.map (fun s -> s.Layout.sym_name) syms in
  let sorted = List.sort_uniq compare names in
  Alcotest.(check int) "unique names" (List.length names) (List.length sorted)

let test_special_symbols () =
  let tbl = Layout.syscall_table layout in
  Alcotest.(check string) "syscall table" "sys_call_table" tbl.Layout.sym_name;
  Alcotest.(check int) "400 entries x 8" 3200 tbl.Layout.sym_size;
  Alcotest.(check int) "in area 14" 14 (Layout.area_index_of_addr layout tbl.Layout.sym_addr);
  let vec = Layout.vector_table layout in
  Alcotest.(check string) "vectors" "vectors" vec.Layout.sym_name;
  Alcotest.(check int) "2 KiB" 2048 vec.Layout.sym_size;
  Alcotest.(check int) "at image start" (Layout.base layout) vec.Layout.sym_addr;
  Alcotest.(check int) "in area 0" 0 (Layout.area_index_of_addr layout vec.Layout.sym_addr)

let test_area_index_boundaries () =
  let base = Layout.base layout in
  Alcotest.(check int) "first byte" 0 (Layout.area_index_of_addr layout base);
  Alcotest.(check int) "last byte" 18
    (Layout.area_index_of_addr layout (base + Layout.total_size layout - 1));
  let first_size = List.hd (Layout.canonical_area_sizes layout) in
  Alcotest.(check int) "area boundary" 1
    (Layout.area_index_of_addr layout (base + first_size));
  (try
     ignore (Layout.area_index_of_addr layout (base - 1));
     Alcotest.fail "below image accepted"
   with Invalid_argument _ -> ())

let test_find_symbol () =
  let s = Layout.find_symbol layout "sys_call_table" in
  Alcotest.(check bool) "found" true (s.Layout.sym_size = 3200);
  try
    ignore (Layout.find_symbol layout "no_such_symbol");
    Alcotest.fail "expected Not_found"
  with Not_found -> ()

let test_install_content () =
  let memory = Memory.create ~size:(32 * 1024 * 1024) in
  let region = Layout.install layout memory ~seed:0xBEEF in
  Alcotest.(check string) "region name" "kernel_image" region.Memory.name;
  Alcotest.(check int) "region size" (Layout.total_size layout) region.Memory.size;
  (* Content is deterministic in the seed... *)
  let m2 = Memory.create ~size:(32 * 1024 * 1024) in
  ignore (Layout.install layout m2 ~seed:0xBEEF);
  let a = Memory.read_bytes memory ~world:World.Secure ~addr:(Layout.base layout) ~len:4096 in
  let b = Memory.read_bytes m2 ~world:World.Secure ~addr:(Layout.base layout) ~len:4096 in
  Alcotest.(check bool) "deterministic" true (Bytes.equal a b);
  (* ...and not all zero. *)
  Alcotest.(check bool) "non-trivial" false
    (Bytes.for_all (fun c -> c = '\000') a);
  (* Syscall table entries look like kernel pointers. *)
  let tbl = Syscall_table.create memory layout in
  let e0 = Syscall_table.read_entry tbl ~world:World.Secure 0 in
  Alcotest.(check int64) "entry 0" 0xffff000008080000L e0;
  let e178 = Syscall_table.read_entry tbl ~world:World.Secure Layout.gettid_nr in
  Alcotest.(check int64) "gettid entry"
    (Int64.add 0xffff000008080000L (Int64.of_int (178 * 0x400)))
    e178

let test_synthetic_layout () =
  let l = Layout.synthetic ~base:4096 ~total_size:1_000_000 ~areas:7 ~seed:3 in
  let sizes = Layout.canonical_area_sizes l in
  Alcotest.(check int) "area count" 7 (List.length sizes);
  Alcotest.(check int) "sum" 1_000_000 (List.fold_left ( + ) 0 sizes);
  List.iter (fun s -> if s <= 0 then Alcotest.fail "empty synthetic area") sizes;
  (* special symbols exist *)
  ignore (Layout.syscall_table l);
  ignore (Layout.vector_table l)

let prop_synthetic_valid =
  QCheck.Test.make ~name:"synthetic layouts tile exactly" ~count:30
    QCheck.(pair (int_range 2 12) (int_range 100_000 2_000_000))
    (fun (areas, total) ->
      let l = Layout.synthetic ~base:0 ~total_size:total ~areas ~seed:(areas + total) in
      let sizes = Layout.canonical_area_sizes l in
      List.length sizes = areas
      && List.fold_left ( + ) 0 sizes = total
      && List.for_all (fun s -> s > 0) sizes
      &&
      let syms = Layout.symbols l in
      let sum = List.fold_left (fun acc s -> acc + s.Layout.sym_size) 0 syms in
      sum = total)

let suite =
  [
    Alcotest.test_case "paper dimensions" `Quick test_paper_dimensions;
    Alcotest.test_case "symbols tile image" `Quick test_symbols_tile_image;
    Alcotest.test_case "symbol names unique" `Quick test_symbol_names_unique;
    Alcotest.test_case "special symbols" `Quick test_special_symbols;
    Alcotest.test_case "area index boundaries" `Quick test_area_index_boundaries;
    Alcotest.test_case "find symbol" `Quick test_find_symbol;
    Alcotest.test_case "install content" `Quick test_install_content;
    Alcotest.test_case "synthetic layout" `Quick test_synthetic_layout;
    QCheck_alcotest.to_alcotest prop_synthetic_valid;
  ]
