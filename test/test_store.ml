module Key = Satin_store.Key
module Codec = Satin_store.Codec
module Store = Satin_store.Store
module Memo = Satin_store.Memo
module Fingerprint = Satin_store.Fingerprint
module Runner = Satin_runner.Runner

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "satin_store_test_%d_%d" (Unix.getpid ()) !counter)
    in
    (match Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)) with
    | 0 -> ()
    | _ -> ());
    dir

(* ---- codec ---- *)

(* Arbitrary pure-data payloads: the codec must round-trip anything the
   experiment summaries are built from. *)
let payload_arb =
  QCheck.(
    pair string (pair (list (pair small_int float)) (array small_string)))

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec round-trips any pure payload"
    QCheck.(pair string payload_arb)
    (fun (experiment, payload) ->
      let bytes = Codec.encode ~experiment payload in
      match Codec.decode bytes with
      | Ok v -> v = payload
      | Error e -> QCheck.Test.fail_reportf "decode: %s" (Codec.error_to_string e))

let prop_codec_detects_flip =
  (* Flipping any single bit of the record must yield an error, never a
     silently different payload. (Flips inside the header may surface as
     any header error; flips in the payload must be Bad_checksum.) *)
  QCheck.Test.make ~name:"codec rejects any single-bit flip"
    QCheck.(pair payload_arb (pair small_nat (int_bound 7)))
    (fun (payload, (pos, bit)) ->
      let bytes = Bytes.of_string (Codec.encode ~experiment:"flip" payload) in
      let pos = pos mod Bytes.length bytes in
      Bytes.set bytes pos
        (Char.chr (Char.code (Bytes.get bytes pos) lxor (1 lsl bit)));
      match Codec.decode (Bytes.to_string bytes) with
      | Error _ -> true
      | Ok v ->
          (* The only acceptable Ok is the flip landing in the stored
             checksum's hex case or similar being impossible: require the
             payload to come back exact, else fail. *)
          if v = payload then
            QCheck.Test.fail_reportf
              "flip at byte %d bit %d was absorbed silently" pos bit
          else
            QCheck.Test.fail_reportf "flip at byte %d bit %d decoded Ok" pos
              bit)

let test_codec_errors () =
  let record = Codec.encode ~experiment:"e1" (1, 2.0) in
  (match (Codec.decode "not a record" : (unit, _) result) with
  | Error Codec.Bad_magic -> ()
  | _ -> Alcotest.fail "junk accepted");
  (match
     (Codec.decode
        (Printf.sprintf "satin-store/v9\ne1\n%s\n4\nabcd" (String.make 32 '0'))
       : (unit, _) result)
   with
  | Error (Codec.Bad_version v) ->
      Alcotest.(check string) "foreign version reported" "satin-store/v9" v
  | _ -> Alcotest.fail "foreign version accepted");
  (match
     (Codec.decode (String.sub record 0 (String.length record - 3))
       : (unit, _) result)
   with
  | Error (Codec.Truncated | Codec.Bad_checksum) -> ()
  | _ -> Alcotest.fail "truncated record accepted");
  match Codec.experiment record with
  | Ok e -> Alcotest.(check string) "header experiment" "e1" e
  | Error e -> Alcotest.fail (Codec.error_to_string e)

(* ---- keys ---- *)

let test_key_field_order_independent () =
  let a =
    Key.make ~experiment:"table2" ~seed:42 ~trial_index:3
      ~config:[ ("rounds", "50"); ("period_s", Key.f 0.5) ]
      ()
  in
  let b =
    Key.make ~experiment:"table2" ~seed:42 ~trial_index:3
      ~config:[ ("period_s", Key.f 0.5); ("rounds", "50") ]
      ()
  in
  Alcotest.(check string) "order-independent" a b;
  Alcotest.(check string)
    "canonical encodings equal"
    (Key.canonical [ ("b", "2"); ("a", "1") ])
    (Key.canonical [ ("a", "1"); ("b", "2") ])

let test_key_sensitivity () =
  let base ?(experiment = "e1") ?(seed = 42) ?(trial = 0)
      ?(config = [ ("runs", "100") ]) () =
    Key.make ~experiment ~seed ~trial_index:trial ~config ()
  in
  let k = base () in
  Alcotest.(check bool) "seed matters" true (k <> base ~seed:43 ());
  Alcotest.(check bool) "trial matters" true (k <> base ~trial:1 ());
  Alcotest.(check bool)
    "experiment matters" true
    (k <> base ~experiment:"e3" ());
  Alcotest.(check bool)
    "config value matters" true
    (k <> base ~config:[ ("runs", "101") ] ());
  Alcotest.(check bool)
    "config field matters" true
    (k <> base ~config:[ ("runs", "100"); ("extra", "1") ] ());
  (* Ambient context (the CLI's --check marker) must change every key. *)
  Key.set_ambient [ ("check", "1") ];
  let k_check = base () in
  Key.set_ambient [];
  Alcotest.(check bool) "ambient context matters" true (k <> k_check);
  Alcotest.(check string) "ambient restored" k (base ());
  (* A rebuilt binary (different fingerprint) must never share keys. *)
  Fingerprint.override_for_testing (Some (String.make 32 'f'));
  let k_other_build = base () in
  Fingerprint.override_for_testing None;
  Alcotest.(check bool) "fingerprint matters" true (k <> k_other_build);
  Alcotest.(check string) "fingerprint restored" k (base ())

let test_key_rejects_duplicate_fields () =
  try
    ignore (Key.canonical [ ("a", "1"); ("a", "2") ]);
    Alcotest.fail "duplicate field accepted"
  with Invalid_argument _ -> ()

let test_key_escaping () =
  (* Values containing the separator bytes must not be confusable with
     differently-split fields. *)
  let a = Key.canonical [ ("a", "1\nb=2") ] in
  let b = Key.canonical [ ("a", "1"); ("b", "2") ] in
  Alcotest.(check bool) "newline-in-value not confusable" true (a <> b)

(* ---- store ---- *)

let test_store_roundtrip_and_persistence () =
  let dir = tmp_dir () in
  let s = Store.open_ dir in
  let key = Key.make ~experiment:"rt" ~seed:1 ~trial_index:0 () in
  Alcotest.(check bool) "cold miss" true (Store.find s ~key = (None : int option));
  Store.add s ~key ~experiment:"rt" 1234;
  Alcotest.(check (option int)) "hit after add" (Some 1234) (Store.find s ~key);
  (* A fresh handle on the same directory replays the index. *)
  let s2 = Store.open_ dir in
  Alcotest.(check (option int)) "hit after reopen" (Some 1234) (Store.find s2 ~key);
  Alcotest.(check int) "one live record" 1 (Store.live_records s2);
  let c = Store.counters s in
  Alcotest.(check int) "hits counted" 1 c.Store.hits;
  Alcotest.(check int) "misses counted" 1 c.Store.misses;
  Alcotest.(check int) "writes counted" 1 c.Store.writes

let find_record_file dir =
  let rec walk acc p =
    if Sys.is_directory p then
      Array.fold_left (fun acc f -> walk acc (Filename.concat p f)) acc
        (Sys.readdir p)
    else if Filename.check_suffix p ".rec" then p :: acc
    else acc
  in
  walk [] (Filename.concat dir "objects")

let test_store_quarantines_corruption () =
  let dir = tmp_dir () in
  let s = Store.open_ dir in
  let key = Key.make ~experiment:"corrupt" ~seed:7 ~trial_index:0 () in
  Store.add s ~key ~experiment:"corrupt" [| 1.0; 2.0; 3.0 |];
  (match find_record_file dir with
  | [ path ] ->
      (* Flip one bit in the payload on disk. *)
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let bytes = really_input_string ic len |> Bytes.of_string in
      close_in ic;
      let pos = len - 1 in
      Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 1));
      let oc = open_out_bin path in
      output_bytes oc bytes;
      close_out oc
  | files ->
      Alcotest.failf "expected exactly one record file, found %d"
        (List.length files));
  (* The flipped record must read as a miss, never as data... *)
  Alcotest.(check bool)
    "corrupt record not served" true
    (Store.find s ~key = (None : float array option));
  Alcotest.(check int) "corruption counted" 1 (Store.counters s).Store.corrupt;
  (* ...and the file must land in quarantine, not be served on reopen. *)
  Alcotest.(check int) "no live record files" 0
    (List.length (find_record_file dir));
  Alcotest.(check bool)
    "quarantine holds the record" true
    (Array.length (Sys.readdir (Filename.concat dir "quarantine")) = 1);
  let s2 = Store.open_ dir in
  Alcotest.(check bool)
    "miss after reopen" true
    (Store.find s2 ~key = (None : float array option))

let test_store_gc_bound () =
  let dir = tmp_dir () in
  (* Each record is a few hundred bytes; a 1 KiB bound forces eviction. *)
  let s = Store.open_ ~max_bytes:1024 dir in
  let keys =
    Array.init 8 (fun i -> Key.make ~experiment:"gc" ~seed:1 ~trial_index:i ())
  in
  Array.iteri (fun i key -> Store.add s ~key ~experiment:"gc" (String.make 200 (Char.chr (65 + i)))) keys;
  Alcotest.(check bool) "bound enforced" true (Store.live_bytes s <= 1024);
  Alcotest.(check bool)
    "evictions happened" true
    ((Store.counters s).Store.evictions > 0);
  (* Newest record always survives; oldest is the first to go. *)
  Alcotest.(check bool)
    "newest retained" true
    (Store.find s ~key:keys.(7) = Some (String.make 200 'H'));
  Alcotest.(check bool)
    "oldest evicted" true
    (Store.find s ~key:keys.(0) = (None : string option));
  (* A reopen agrees with the journal after evictions. *)
  let s2 = Store.open_ ~max_bytes:1024 dir in
  Alcotest.(check int)
    "reopen sees surviving records" (Store.live_records s)
    (Store.live_records s2)

(* ---- memo ---- *)

let with_store dir f =
  let s = Store.open_ dir in
  Store.install s;
  Fun.protect ~finally:Store.uninstall (fun () -> f s)

let trial i = (i, float_of_int (i * i) /. 7.0)

let test_memo_counts_and_resume () =
  let dir = tmp_dir () in
  let run () =
    with_store dir (fun s ->
        let r =
          Memo.map Runner.sequential ~experiment:"memo" ~seed:42
            ~config:[ ("n", "10") ]
            10 trial
        in
        (r, Store.counters s))
  in
  let cold, c1 = run () in
  Alcotest.(check int) "cold: all miss" 10 c1.Store.misses;
  Alcotest.(check int) "cold: no hits" 0 c1.Store.hits;
  let warm, c2 = run () in
  Alcotest.(check int) "warm: all hit" 10 c2.Store.hits;
  Alcotest.(check int) "warm: no misses" 0 c2.Store.misses;
  Alcotest.(check bool) "warm results identical" true (cold = warm);
  (* Partial warmth — e.g. a campaign killed mid-batch: grow the fan-out
     and only the new indices are computed. *)
  let bigger, c3 =
    with_store dir (fun s ->
        let r =
          Memo.map Runner.sequential ~experiment:"memo" ~seed:42
            ~config:[ ("n", "10") ]
            15 trial
        in
        (r, Store.counters s))
  in
  Alcotest.(check int) "resume: old trials hit" 10 c3.Store.hits;
  Alcotest.(check int) "resume: only new trials computed" 5 c3.Store.misses;
  Array.iteri
    (fun i v -> Alcotest.(check bool) "resume values correct" true (v = trial i))
    bigger

let test_memo_warm_matches_any_pool_width () =
  let dir = tmp_dir () in
  let run pool =
    with_store dir (fun _ ->
        Memo.map pool ~experiment:"width" ~seed:9
          ~trial_config:(fun i -> [ ("tp", Key.f (float_of_int i)) ])
          20 trial)
  in
  let cold = run Runner.sequential in
  let warm_par = run (Runner.create ~clamp:false ~jobs:4 ()) in
  let no_store =
    Memo.map (Runner.create ~clamp:false ~jobs:4 ()) ~experiment:"width" ~seed:9
      ~trial_config:(fun i -> [ ("tp", Key.f (float_of_int i)) ])
      20 trial
  in
  Alcotest.(check bool) "warm jobs=4 = cold jobs=1" true (cold = warm_par);
  Alcotest.(check bool) "store path = storeless path" true (cold = no_store)

let test_memo_without_store_is_plain_map () =
  Store.uninstall ();
  let r = Memo.map Runner.sequential ~experiment:"plain" ~seed:1 5 trial in
  Alcotest.(check bool) "plain map" true (r = Array.init 5 trial)

(* ---- multi-writer: two handles on one directory ---- *)

let test_store_two_handles () =
  let dir = tmp_dir () in
  let a = Store.open_ dir in
  let b = Store.open_ dir in
  let key i = Key.make ~experiment:"mw" ~seed:3 ~trial_index:i () in
  Store.add a ~key:(key 0) ~experiment:"mw" "from-a";
  (* B has never seen this key: its find must refresh from the journal
     and serve A's record as a hit, not recompute-worthy miss. *)
  Alcotest.(check (option string))
    "B sees A's add without reopening" (Some "from-a")
    (Store.find b ~key:(key 0));
  Store.add b ~key:(key 1) ~experiment:"mw" "from-b";
  Alcotest.(check (option string))
    "A sees B's add" (Some "from-b")
    (Store.find a ~key:(key 1));
  Alcotest.(check (list string)) "A invariants clean" []
    (Store.invariant_violations a);
  Alcotest.(check (list string)) "B invariants clean" []
    (Store.invariant_violations b);
  Store.sync a;
  Store.sync b;
  Alcotest.(check int) "A sees both live" 2 (Store.live_records a);
  Alcotest.(check int) "B sees both live" 2 (Store.live_records b);
  Store.close a;
  Store.close b;
  (* Every journal line must be complete and well-formed — no torn or
     interleaved writes from the two handles. *)
  let ic = open_in_bin (Filename.concat dir "index.log") in
  let raw =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  Alcotest.(check bool)
    "journal newline-terminated" true
    (String.length raw > 0 && raw.[String.length raw - 1] = '\n');
  List.iter
    (fun line ->
      if line <> "" then
        match String.split_on_char ' ' line with
        | [ "+"; k; size; "mw" ] ->
            Alcotest.(check bool) "key is hex" true (String.length k = 32);
            Alcotest.(check bool)
              "size numeric" true
              (int_of_string_opt size <> None)
        | [ ("-" | "!"); _ ] -> ()
        | _ -> Alcotest.failf "malformed journal line %S" line)
    (String.split_on_char '\n' raw);
  let c = Store.open_ dir in
  Alcotest.(check int) "reopen sees both" 2 (Store.live_records c);
  Alcotest.(check (list string)) "reopen invariants clean" []
    (Store.invariant_violations c);
  Store.close c

(* ---- consistency under arbitrary add/evict/quarantine interleavings ---- *)

type store_op = Op_add of int | Op_find of int | Op_corrupt of int

let op_arb =
  QCheck.(
    map
      (fun (which, k) ->
        match which mod 3 with
        | 0 -> Op_add k
        | 1 -> Op_find k
        | _ -> Op_corrupt k)
      (pair int (int_bound 5)))

let object_path_of dir key =
  Filename.concat dir
    (Filename.concat "objects"
       (Filename.concat (String.sub key 0 2)
          (Filename.concat (String.sub key 2 2) (key ^ ".rec"))))

let prop_store_consistent =
  (* A small bound forces constant eviction, and re-adding an evicted key
     exercises the stale-order-entry paths; after every op the live
     table, order queue, and byte total must agree. *)
  QCheck.Test.make ~count:60 ~name:"store invariants hold under any op mix"
    QCheck.(list_of_size (Gen.int_range 1 40) op_arb)
    (fun ops ->
      let dir = tmp_dir () in
      let s = Store.open_ ~max_bytes:700 dir in
      let key i = Key.make ~experiment:"prop" ~seed:1 ~trial_index:i () in
      List.iter
        (fun op ->
          (match op with
          | Op_add i ->
              Store.add s ~key:(key i) ~experiment:"prop"
                (String.make 200 (Char.chr (97 + i)))
          | Op_find i -> ignore (Store.find s ~key:(key i) : string option)
          | Op_corrupt i ->
              let path = object_path_of dir (key i) in
              if Sys.file_exists path then begin
                let oc = open_out_bin path in
                output_string oc "garbage";
                close_out oc;
                ignore (Store.find s ~key:(key i) : string option)
              end);
          match Store.invariant_violations s with
          | [] -> ()
          | v ->
              QCheck.Test.fail_reportf "after op: %s" (String.concat "; " v))
        ops;
      let s2 = Store.open_ ~max_bytes:700 dir in
      let ok =
        Store.invariant_violations s2 = []
        && Store.live_records s2 = Store.live_records s
      in
      Store.close s;
      Store.close s2;
      ok)

(* ---- mkdir_p ---- *)

let test_mkdir_p () =
  let dir = tmp_dir () in
  let deep = List.fold_left Filename.concat dir [ "a"; "b"; "c"; "d" ] in
  Store.mkdir_p deep;
  Alcotest.(check bool) "deep path created" true (Sys.is_directory deep);
  (* Idempotent: every level already existing is success, not an error. *)
  Store.mkdir_p deep;
  (* Racing creators: domains hammering the same fan-out path must all
     succeed (the old file_exists-then-mkdir version threw EEXIST here). *)
  let race = List.fold_left Filename.concat dir [ "race"; "x"; "y" ] in
  let domains =
    Array.init 4 (fun _ -> Domain.spawn (fun () -> Store.mkdir_p race))
  in
  Array.iter Domain.join domains;
  Alcotest.(check bool) "raced path created" true (Sys.is_directory race);
  (* Relative paths terminate: dirname's fixpoint is ".", which exists. *)
  let cwd = Sys.getcwd () in
  Store.mkdir_p dir;
  Sys.chdir dir;
  Fun.protect
    ~finally:(fun () -> Sys.chdir cwd)
    (fun () ->
      Store.mkdir_p "rel/sub/dir";
      Alcotest.(check bool)
        "relative path created" true
        (Sys.is_directory "rel/sub/dir"))

(* ---- claims ---- *)

let test_claims () =
  let dir = tmp_dir () in
  let s = Store.open_ dir in
  let key = Key.make ~experiment:"claim" ~seed:1 ~trial_index:0 () in
  Alcotest.(check bool) "fresh claim granted" true
    (Store.try_claim s ~key ~ttl_s:30.0);
  Alcotest.(check bool) "own claim re-granted (refresh)" true
    (Store.try_claim s ~key ~ttl_s:30.0);
  (match Store.claim_lease s ~key with
  | Some l ->
      Alcotest.(check int) "lease names us" (Unix.getpid ()) l.Store.lease_pid;
      Alcotest.(check bool) "lease live" true (Store.lease_live l)
  | None -> Alcotest.fail "granted lease unreadable");
  Store.release_claim s ~key;
  Alcotest.(check bool) "released lease gone" true
    (Store.claim_lease s ~key = None);
  (* A lease held by another host is respected until its expiry passes. *)
  let lease_file = Filename.concat dir (Filename.concat "claims" (key ^ ".lease")) in
  let write_lease pid host expiry =
    let oc = open_out_bin lease_file in
    Printf.fprintf oc "%d %s %.3f\n" pid host expiry;
    close_out oc
  in
  write_lease 1 "some-other-host" (Unix.gettimeofday () +. 60.0);
  Alcotest.(check bool) "foreign live lease blocks" false
    (Store.try_claim s ~key ~ttl_s:30.0);
  write_lease 1 "some-other-host" (Unix.gettimeofday () -. 1.0);
  Alcotest.(check bool) "expired lease stolen" true
    (Store.try_claim s ~key ~ttl_s:30.0);
  (* A same-host lease whose pid is provably dead is stolen before its
     expiry. (Scanned for, not forked: on OCaml 5 [Unix.fork] is refused
     once any test has spawned a domain.) *)
  let dead_pid =
    let rec scan p =
      if p < 2 then Alcotest.fail "no dead pid found"
      else
        match Unix.kill p 0 with
        | () -> scan (p - 1)
        | exception Unix.Unix_error (Unix.ESRCH, _, _) -> p
        | exception Unix.Unix_error _ -> scan (p - 1)
    in
    scan 99999
  in
  let host =
    String.map (fun c -> if c = ' ' then '_' else c) (Unix.gethostname ())
  in
  write_lease dead_pid host (Unix.gettimeofday () +. 60.0);
  Alcotest.(check bool) "dead-pid lease stolen" true
    (Store.try_claim s ~key ~ttl_s:30.0);
  let c = Store.counters s in
  Alcotest.(check int) "claims counted" 4 c.Store.claims;
  Alcotest.(check int) "steals counted" 2 c.Store.claim_steals;
  Store.close s

(* ---- sharded memo ---- *)

let test_memo_sharded () =
  let dir = tmp_dir () in
  let expected = Array.init 8 trial in
  let run () =
    Memo.map Runner.sequential ~experiment:"shard" ~seed:3
      ~config:[ ("n", "8") ]
      8 trial
  in
  Memo.set_lease_ttl 0.2;
  Fun.protect
    ~finally:(fun () ->
      Memo.set_shard None;
      Memo.set_lease_ttl 60.0)
    (fun () ->
      (* A lone shard: it computes its owned half immediately and, after
         the grace (one TTL) with no peer claiming, steals the rest — so
         it still returns the full, unsharded-identical result array. *)
      let claims =
        with_store dir (fun s ->
            Memo.set_shard (Some (0, 2));
            let r = run () in
            Alcotest.(check bool) "lone shard = unsharded" true (r = expected);
            Alcotest.(check (list string)) "invariants clean" []
              (Store.invariant_violations s);
            (Store.counters s).Store.claims)
      in
      Alcotest.(check bool) "lone shard claimed trials" true (claims > 0);
      (* Warm pass as the other shard: everything resolves in phase 1. *)
      with_store dir (fun s ->
          Memo.set_shard (Some (1, 2));
          let r = run () in
          Alcotest.(check bool) "warm other shard = unsharded" true
            (r = expected);
          let c = Store.counters s in
          Alcotest.(check int) "warm pass all hits" 8 c.Store.hits;
          Alcotest.(check int) "warm pass no misses" 0 c.Store.misses))

let suite =
  [
    QCheck_alcotest.to_alcotest prop_codec_roundtrip;
    QCheck_alcotest.to_alcotest prop_codec_detects_flip;
    Alcotest.test_case "codec typed errors" `Quick test_codec_errors;
    Alcotest.test_case "key field-order independent" `Quick
      test_key_field_order_independent;
    Alcotest.test_case "key sensitivity" `Quick test_key_sensitivity;
    Alcotest.test_case "key duplicate fields rejected" `Quick
      test_key_rejects_duplicate_fields;
    Alcotest.test_case "key escaping" `Quick test_key_escaping;
    Alcotest.test_case "store round-trip + reopen" `Quick
      test_store_roundtrip_and_persistence;
    Alcotest.test_case "store quarantines corruption" `Quick
      test_store_quarantines_corruption;
    Alcotest.test_case "store GC bound" `Quick test_store_gc_bound;
    Alcotest.test_case "memo hit/miss + resume" `Quick
      test_memo_counts_and_resume;
    Alcotest.test_case "memo warm at any width" `Quick
      test_memo_warm_matches_any_pool_width;
    Alcotest.test_case "memo without store" `Quick
      test_memo_without_store_is_plain_map;
    Alcotest.test_case "store two handles, one dir" `Quick
      test_store_two_handles;
    QCheck_alcotest.to_alcotest prop_store_consistent;
    Alcotest.test_case "mkdir_p create-first" `Quick test_mkdir_p;
    Alcotest.test_case "claims: grant, block, steal" `Quick test_claims;
    Alcotest.test_case "memo sharded in-process" `Quick test_memo_sharded;
  ]
