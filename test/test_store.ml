module Key = Satin_store.Key
module Codec = Satin_store.Codec
module Store = Satin_store.Store
module Memo = Satin_store.Memo
module Fingerprint = Satin_store.Fingerprint
module Runner = Satin_runner.Runner

let tmp_dir =
  let counter = ref 0 in
  fun () ->
    incr counter;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "satin_store_test_%d_%d" (Unix.getpid ()) !counter)
    in
    (match Sys.command (Printf.sprintf "rm -rf %s" (Filename.quote dir)) with
    | 0 -> ()
    | _ -> ());
    dir

(* ---- codec ---- *)

(* Arbitrary pure-data payloads: the codec must round-trip anything the
   experiment summaries are built from. *)
let payload_arb =
  QCheck.(
    pair string (pair (list (pair small_int float)) (array small_string)))

let prop_codec_roundtrip =
  QCheck.Test.make ~name:"codec round-trips any pure payload"
    QCheck.(pair string payload_arb)
    (fun (experiment, payload) ->
      let bytes = Codec.encode ~experiment payload in
      match Codec.decode bytes with
      | Ok v -> v = payload
      | Error e -> QCheck.Test.fail_reportf "decode: %s" (Codec.error_to_string e))

let prop_codec_detects_flip =
  (* Flipping any single bit of the record must yield an error, never a
     silently different payload. (Flips inside the header may surface as
     any header error; flips in the payload must be Bad_checksum.) *)
  QCheck.Test.make ~name:"codec rejects any single-bit flip"
    QCheck.(pair payload_arb (pair small_nat (int_bound 7)))
    (fun (payload, (pos, bit)) ->
      let bytes = Bytes.of_string (Codec.encode ~experiment:"flip" payload) in
      let pos = pos mod Bytes.length bytes in
      Bytes.set bytes pos
        (Char.chr (Char.code (Bytes.get bytes pos) lxor (1 lsl bit)));
      match Codec.decode (Bytes.to_string bytes) with
      | Error _ -> true
      | Ok v ->
          (* The only acceptable Ok is the flip landing in the stored
             checksum's hex case or similar being impossible: require the
             payload to come back exact, else fail. *)
          if v = payload then
            QCheck.Test.fail_reportf
              "flip at byte %d bit %d was absorbed silently" pos bit
          else
            QCheck.Test.fail_reportf "flip at byte %d bit %d decoded Ok" pos
              bit)

let test_codec_errors () =
  let record = Codec.encode ~experiment:"e1" (1, 2.0) in
  (match (Codec.decode "not a record" : (unit, _) result) with
  | Error Codec.Bad_magic -> ()
  | _ -> Alcotest.fail "junk accepted");
  (match
     (Codec.decode
        (Printf.sprintf "satin-store/v9\ne1\n%s\n4\nabcd" (String.make 32 '0'))
       : (unit, _) result)
   with
  | Error (Codec.Bad_version v) ->
      Alcotest.(check string) "foreign version reported" "satin-store/v9" v
  | _ -> Alcotest.fail "foreign version accepted");
  (match
     (Codec.decode (String.sub record 0 (String.length record - 3))
       : (unit, _) result)
   with
  | Error (Codec.Truncated | Codec.Bad_checksum) -> ()
  | _ -> Alcotest.fail "truncated record accepted");
  match Codec.experiment record with
  | Ok e -> Alcotest.(check string) "header experiment" "e1" e
  | Error e -> Alcotest.fail (Codec.error_to_string e)

(* ---- keys ---- *)

let test_key_field_order_independent () =
  let a =
    Key.make ~experiment:"table2" ~seed:42 ~trial_index:3
      ~config:[ ("rounds", "50"); ("period_s", Key.f 0.5) ]
      ()
  in
  let b =
    Key.make ~experiment:"table2" ~seed:42 ~trial_index:3
      ~config:[ ("period_s", Key.f 0.5); ("rounds", "50") ]
      ()
  in
  Alcotest.(check string) "order-independent" a b;
  Alcotest.(check string)
    "canonical encodings equal"
    (Key.canonical [ ("b", "2"); ("a", "1") ])
    (Key.canonical [ ("a", "1"); ("b", "2") ])

let test_key_sensitivity () =
  let base ?(experiment = "e1") ?(seed = 42) ?(trial = 0)
      ?(config = [ ("runs", "100") ]) () =
    Key.make ~experiment ~seed ~trial_index:trial ~config ()
  in
  let k = base () in
  Alcotest.(check bool) "seed matters" true (k <> base ~seed:43 ());
  Alcotest.(check bool) "trial matters" true (k <> base ~trial:1 ());
  Alcotest.(check bool)
    "experiment matters" true
    (k <> base ~experiment:"e3" ());
  Alcotest.(check bool)
    "config value matters" true
    (k <> base ~config:[ ("runs", "101") ] ());
  Alcotest.(check bool)
    "config field matters" true
    (k <> base ~config:[ ("runs", "100"); ("extra", "1") ] ());
  (* Ambient context (the CLI's --check marker) must change every key. *)
  Key.set_ambient [ ("check", "1") ];
  let k_check = base () in
  Key.set_ambient [];
  Alcotest.(check bool) "ambient context matters" true (k <> k_check);
  Alcotest.(check string) "ambient restored" k (base ());
  (* A rebuilt binary (different fingerprint) must never share keys. *)
  Fingerprint.override_for_testing (Some (String.make 32 'f'));
  let k_other_build = base () in
  Fingerprint.override_for_testing None;
  Alcotest.(check bool) "fingerprint matters" true (k <> k_other_build);
  Alcotest.(check string) "fingerprint restored" k (base ())

let test_key_rejects_duplicate_fields () =
  try
    ignore (Key.canonical [ ("a", "1"); ("a", "2") ]);
    Alcotest.fail "duplicate field accepted"
  with Invalid_argument _ -> ()

let test_key_escaping () =
  (* Values containing the separator bytes must not be confusable with
     differently-split fields. *)
  let a = Key.canonical [ ("a", "1\nb=2") ] in
  let b = Key.canonical [ ("a", "1"); ("b", "2") ] in
  Alcotest.(check bool) "newline-in-value not confusable" true (a <> b)

(* ---- store ---- *)

let test_store_roundtrip_and_persistence () =
  let dir = tmp_dir () in
  let s = Store.open_ dir in
  let key = Key.make ~experiment:"rt" ~seed:1 ~trial_index:0 () in
  Alcotest.(check bool) "cold miss" true (Store.find s ~key = (None : int option));
  Store.add s ~key ~experiment:"rt" 1234;
  Alcotest.(check (option int)) "hit after add" (Some 1234) (Store.find s ~key);
  (* A fresh handle on the same directory replays the index. *)
  let s2 = Store.open_ dir in
  Alcotest.(check (option int)) "hit after reopen" (Some 1234) (Store.find s2 ~key);
  Alcotest.(check int) "one live record" 1 (Store.live_records s2);
  let c = Store.counters s in
  Alcotest.(check int) "hits counted" 1 c.Store.hits;
  Alcotest.(check int) "misses counted" 1 c.Store.misses;
  Alcotest.(check int) "writes counted" 1 c.Store.writes

let find_record_file dir =
  let rec walk acc p =
    if Sys.is_directory p then
      Array.fold_left (fun acc f -> walk acc (Filename.concat p f)) acc
        (Sys.readdir p)
    else if Filename.check_suffix p ".rec" then p :: acc
    else acc
  in
  walk [] (Filename.concat dir "objects")

let test_store_quarantines_corruption () =
  let dir = tmp_dir () in
  let s = Store.open_ dir in
  let key = Key.make ~experiment:"corrupt" ~seed:7 ~trial_index:0 () in
  Store.add s ~key ~experiment:"corrupt" [| 1.0; 2.0; 3.0 |];
  (match find_record_file dir with
  | [ path ] ->
      (* Flip one bit in the payload on disk. *)
      let ic = open_in_bin path in
      let len = in_channel_length ic in
      let bytes = really_input_string ic len |> Bytes.of_string in
      close_in ic;
      let pos = len - 1 in
      Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 1));
      let oc = open_out_bin path in
      output_bytes oc bytes;
      close_out oc
  | files ->
      Alcotest.failf "expected exactly one record file, found %d"
        (List.length files));
  (* The flipped record must read as a miss, never as data... *)
  Alcotest.(check bool)
    "corrupt record not served" true
    (Store.find s ~key = (None : float array option));
  Alcotest.(check int) "corruption counted" 1 (Store.counters s).Store.corrupt;
  (* ...and the file must land in quarantine, not be served on reopen. *)
  Alcotest.(check int) "no live record files" 0
    (List.length (find_record_file dir));
  Alcotest.(check bool)
    "quarantine holds the record" true
    (Array.length (Sys.readdir (Filename.concat dir "quarantine")) = 1);
  let s2 = Store.open_ dir in
  Alcotest.(check bool)
    "miss after reopen" true
    (Store.find s2 ~key = (None : float array option))

let test_store_gc_bound () =
  let dir = tmp_dir () in
  (* Each record is a few hundred bytes; a 1 KiB bound forces eviction. *)
  let s = Store.open_ ~max_bytes:1024 dir in
  let keys =
    Array.init 8 (fun i -> Key.make ~experiment:"gc" ~seed:1 ~trial_index:i ())
  in
  Array.iteri (fun i key -> Store.add s ~key ~experiment:"gc" (String.make 200 (Char.chr (65 + i)))) keys;
  Alcotest.(check bool) "bound enforced" true (Store.live_bytes s <= 1024);
  Alcotest.(check bool)
    "evictions happened" true
    ((Store.counters s).Store.evictions > 0);
  (* Newest record always survives; oldest is the first to go. *)
  Alcotest.(check bool)
    "newest retained" true
    (Store.find s ~key:keys.(7) = Some (String.make 200 'H'));
  Alcotest.(check bool)
    "oldest evicted" true
    (Store.find s ~key:keys.(0) = (None : string option));
  (* A reopen agrees with the journal after evictions. *)
  let s2 = Store.open_ ~max_bytes:1024 dir in
  Alcotest.(check int)
    "reopen sees surviving records" (Store.live_records s)
    (Store.live_records s2)

(* ---- memo ---- *)

let with_store dir f =
  let s = Store.open_ dir in
  Store.install s;
  Fun.protect ~finally:Store.uninstall (fun () -> f s)

let trial i = (i, float_of_int (i * i) /. 7.0)

let test_memo_counts_and_resume () =
  let dir = tmp_dir () in
  let run () =
    with_store dir (fun s ->
        let r =
          Memo.map Runner.sequential ~experiment:"memo" ~seed:42
            ~config:[ ("n", "10") ]
            10 trial
        in
        (r, Store.counters s))
  in
  let cold, c1 = run () in
  Alcotest.(check int) "cold: all miss" 10 c1.Store.misses;
  Alcotest.(check int) "cold: no hits" 0 c1.Store.hits;
  let warm, c2 = run () in
  Alcotest.(check int) "warm: all hit" 10 c2.Store.hits;
  Alcotest.(check int) "warm: no misses" 0 c2.Store.misses;
  Alcotest.(check bool) "warm results identical" true (cold = warm);
  (* Partial warmth — e.g. a campaign killed mid-batch: grow the fan-out
     and only the new indices are computed. *)
  let bigger, c3 =
    with_store dir (fun s ->
        let r =
          Memo.map Runner.sequential ~experiment:"memo" ~seed:42
            ~config:[ ("n", "10") ]
            15 trial
        in
        (r, Store.counters s))
  in
  Alcotest.(check int) "resume: old trials hit" 10 c3.Store.hits;
  Alcotest.(check int) "resume: only new trials computed" 5 c3.Store.misses;
  Array.iteri
    (fun i v -> Alcotest.(check bool) "resume values correct" true (v = trial i))
    bigger

let test_memo_warm_matches_any_pool_width () =
  let dir = tmp_dir () in
  let run pool =
    with_store dir (fun _ ->
        Memo.map pool ~experiment:"width" ~seed:9
          ~trial_config:(fun i -> [ ("tp", Key.f (float_of_int i)) ])
          20 trial)
  in
  let cold = run Runner.sequential in
  let warm_par = run (Runner.create ~clamp:false ~jobs:4 ()) in
  let no_store =
    Memo.map (Runner.create ~clamp:false ~jobs:4 ()) ~experiment:"width" ~seed:9
      ~trial_config:(fun i -> [ ("tp", Key.f (float_of_int i)) ])
      20 trial
  in
  Alcotest.(check bool) "warm jobs=4 = cold jobs=1" true (cold = warm_par);
  Alcotest.(check bool) "store path = storeless path" true (cold = no_store)

let test_memo_without_store_is_plain_map () =
  Store.uninstall ();
  let r = Memo.map Runner.sequential ~experiment:"plain" ~seed:1 5 trial in
  Alcotest.(check bool) "plain map" true (r = Array.init 5 trial)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_codec_roundtrip;
    QCheck_alcotest.to_alcotest prop_codec_detects_flip;
    Alcotest.test_case "codec typed errors" `Quick test_codec_errors;
    Alcotest.test_case "key field-order independent" `Quick
      test_key_field_order_independent;
    Alcotest.test_case "key sensitivity" `Quick test_key_sensitivity;
    Alcotest.test_case "key duplicate fields rejected" `Quick
      test_key_rejects_duplicate_fields;
    Alcotest.test_case "key escaping" `Quick test_key_escaping;
    Alcotest.test_case "store round-trip + reopen" `Quick
      test_store_roundtrip_and_persistence;
    Alcotest.test_case "store quarantines corruption" `Quick
      test_store_quarantines_corruption;
    Alcotest.test_case "store GC bound" `Quick test_store_gc_bound;
    Alcotest.test_case "memo hit/miss + resume" `Quick
      test_memo_counts_and_resume;
    Alcotest.test_case "memo warm at any width" `Quick
      test_memo_warm_matches_any_pool_width;
    Alcotest.test_case "memo without store" `Quick
      test_memo_without_store_is_plain_map;
  ]
