(** Closed-form race-condition analysis (§III-B2, §IV-C).

    Equation (1): the evasion succeeds when

    [Ts_switch + S·Ts_1byte > Tns_delay + Tns_recover]

    where [Tns_delay = Tns_sched + Tns_threshold]. Equation (2) rearranges
    for the number of bytes [S] the checker may inspect before the attacker
    finishes hiding; any malicious byte deeper than [S] into the scan is
    unreachable in time. *)

type params = {
  ts_switch : float; (** world-switch entry latency, s *)
  ts_1byte : float; (** checker's per-byte scan cost, s *)
  tns_sched : float; (** prober round period, s *)
  tns_threshold : float; (** probing threshold, s *)
  tns_recover : float; (** attacker's trace-recovery time, s *)
}

val paper_worst_case : params
(** §IV-C's evaluation point, worst for the attacker: checker on an A57 at
    its fastest byte rate (6.67 ns), attacker recovering at its slowest
    (6.13 ms) with the largest observed threshold (1.8 ms) and
    [Tns_sched] = 200 µs; [Ts_switch] = 3.60 µs. *)

val of_cycle :
  Satin_hw.Cycle_model.t ->
  checker_core:Satin_hw.Cycle_model.core_type ->
  evader_core:Satin_hw.Cycle_model.core_type ->
  params
(** The same worst-for-attacker convention, read out of a cycle model. *)

val tns_delay : params -> float
(** [tns_sched + tns_threshold]. *)

val s_bound : params -> int
(** Equation (2): the largest [S] for which the evasion still wins
    (1,218,351 bytes at {!paper_worst_case}). *)

val evasion_succeeds : params -> s:int -> bool
(** Equation (1) for a malicious byte reached after [s] scanned bytes. *)

val unprotected_fraction : params -> kernel_size:int -> float
(** Fraction of a [kernel_size]-byte image beyond the {!s_bound} horizon
    (≈ 0.90 for the paper's 11,916,240-byte kernel). *)

val max_area_size : params -> int
(** SATIN's area-size bound (§V-B): with areas smaller than this, the scan
    of a whole area completes before the attacker can finish hiding, no
    matter where in the area the malicious bytes sit. *)

val scan_time : params -> bytes:int -> float
(** [ts_switch + bytes·ts_1byte]: seconds from wake-up until the scan front
    passes the [bytes]-th byte. *)

val hide_time : params -> float
(** [tns_delay + tns_recover]: seconds from wake-up until the attacker's
    last byte is restored. *)

(** {1 Why SATIN blocks interrupts during a round (§V-B)}

    If the secure world were preemptive (§II-B: non-secure interrupts routed
    into S-EL1 and honoured), the normal world could stretch a scan with an
    interrupt storm: every delivered interrupt suspends the scan for one
    handler round-trip, dilating the front self-consistently. *)

val preemptive_scan_time :
  params -> bytes:int -> storm_hz:float -> handler_s:float -> float
(** Time for the front to reach byte [bytes] when a [storm_hz] interrupt
    flood, each costing [handler_s] of secure-side suspension, is allowed to
    preempt the scan: [(ts_switch + bytes·ts_1byte) / (1 − storm_hz·handler_s)].
    Raises [Invalid_argument] if the storm saturates the core
    ([storm_hz·handler_s ≥ 1], a denial-of-scan). *)

val storm_to_evade : params -> bytes:int -> handler_s:float -> float
(** The interrupt rate at which a preemptive scan of [bytes] becomes slower
    than the hide — i.e. the storm the attacker needs to reopen the §IV race
    that SATIN's area bound had closed. [infinity] when even a saturating
    storm cannot help (the area is so small the hide loses regardless). *)
