module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Platform = Satin_hw.Platform
module Cpu = Satin_hw.Cpu
module World = Satin_hw.World

type recorder = {
  engine : Engine.t;
  ncores : int;
  (* Per core: completed (entry, exit) windows, newest first, plus the
     currently open entry if the core is in the secure world. *)
  windows : (Sim_time.t * Sim_time.t) list array;
  open_entry : Sim_time.t option array;
}

let record platform =
  let ncores = Platform.ncores platform in
  let r =
    {
      engine = platform.Platform.engine;
      ncores;
      windows = Array.make ncores [];
      open_entry = Array.make ncores None;
    }
  in
  Array.iter
    (fun cpu ->
      let core = Cpu.id cpu in
      if Cpu.in_secure cpu then r.open_entry.(core) <- Some (Engine.now r.engine);
      Cpu.on_world_change cpu (fun _ world ->
          let now = Engine.now r.engine in
          match world with
          | World.Secure -> r.open_entry.(core) <- Some now
          | World.Normal -> (
              match r.open_entry.(core) with
              | Some entry ->
                  r.windows.(core) <- (entry, now) :: r.windows.(core);
                  r.open_entry.(core) <- None
              | None -> ())))
    platform.Platform.cores;
  r

let secure_windows r ~core =
  let closed = List.rev r.windows.(core) in
  match r.open_entry.(core) with
  | Some entry -> closed @ [ (entry, Engine.now r.engine) ]
  | None -> closed

type marker = { m_time : Sim_time.t; m_core : int; m_char : char }

let render r ?(markers = []) ~t0 ~t1 ~width () =
  if t1 <= t0 then invalid_arg "Gantt.render: empty window";
  if width < 10 then invalid_arg "Gantt.render: width < 10";
  let span = Sim_time.to_sec_f (Sim_time.diff t1 t0) in
  let col time =
    let frac = Sim_time.to_sec_f (Sim_time.diff time t0) /. span in
    Stdlib.min (width - 1) (Stdlib.max 0 (int_of_float (frac *. float_of_int width)))
  in
  let lanes = Array.init r.ncores (fun _ -> Bytes.make width '.') in
  for core = 0 to r.ncores - 1 do
    List.iter
      (fun (entry, exit) ->
        if exit > t0 && entry < t1 then
          for c = col (Sim_time.max entry t0) to col (Sim_time.min exit t1) do
            Bytes.set lanes.(core) c '#'
          done)
      (secure_windows r ~core)
  done;
  List.iter
    (fun m ->
      if m.m_time >= t0 && m.m_time < t1 then
        if m.m_core >= 0 && m.m_core < r.ncores then
          Bytes.set lanes.(m.m_core) (col m.m_time) m.m_char
        else if m.m_core = -1 then
          Array.iter (fun lane -> Bytes.set lane (col m.m_time) m.m_char) lanes)
    markers;
  let header =
    Printf.sprintf "%-7s %s .. %s" "core"
      (Sim_time.to_string t0) (Sim_time.to_string t1)
  in
  let rows =
    List.init r.ncores (fun core ->
        Printf.sprintf "core %-2d %s" core (Bytes.to_string lanes.(core)))
  in
  String.concat "\n" (header :: rows) ^ "\n"
