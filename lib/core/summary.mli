(** Machine-readable summaries of experiment results.

    One function per {!Experiment} result type, each producing a
    {!Satin_obs.Json.t} mirroring the fields the [print_*] renderers show —
    the structured counterpart of the paper-shaped tables, consumed by
    [bench/main.exe --json] and downstream tooling. {!stats} is the shared
    shape for sample sets: count/mean/min/max plus exact p50/p90/p99. *)

module Json = Satin_obs.Json

val identity : unit -> Json.t
(** [{"fingerprint": ..., "config_hash": ...}] — the producing binary's
    {!Satin_store.Fingerprint} and a digest of the ambient key context.
    Embedded into bench [--json] documents and (via
    {!Satin_obs.Obs.set_identity}) metrics exports, so telemetry consumers
    can refuse to compare documents from different campaign setups. *)

val stats : Satin_engine.Stats.t -> Json.t
(** [Null]-safe: an empty sample set renders as [{"count": 0}]. *)

val e1 : Experiment.e1_result -> Json.t
val table1 : Experiment.table1_result -> Json.t
val e3 : Experiment.e3_result -> Json.t
val uprober : Experiment.uprober_result -> Json.t
val table2 : Experiment.table2_result -> Json.t
val e6 : Experiment.e6_result -> Json.t
val e7 : Experiment.e7_result -> Json.t
val e8 : Experiment.e8_result -> Json.t
val e9 : Experiment.e9_result -> Json.t
val e10 : Experiment.e10_result -> Json.t
val fig7 : Experiment.fig7_result -> Json.t
val ablation : Experiment.ablation_result -> Json.t
val e13 : Experiment.e13_result -> Json.t
val e14 : Experiment.e14_result -> Json.t
val cache_fidelity : Experiment.cache_fidelity_result -> Json.t
val sweep : Experiment.sweep_result -> Json.t
val inject : Experiment.inject_result -> Json.t
val degrade : Experiment.degrade_result -> Json.t
val timeline : Race.params -> Json.t
