(** ASCII Gantt rendering of a campaign.

    One lane per core over a time window: [.] normal world, [#] secure
    world (an introspection round), with single-character markers overlaid
    (e.g. [!] for an alarm, [h] for a completed hide). A recorder subscribes
    to every core's world transitions so the full history is available —
    the {!Satin_hw.Cpu} accounting alone only keeps the last entry/exit. *)

type recorder

val record : Satin_hw.Platform.t -> recorder
(** Start recording world transitions on every core of the platform. Call
    before the campaign begins. *)

type marker = {
  m_time : Satin_engine.Sim_time.t;
  m_core : int; (** lane; [-1] draws on every lane *)
  m_char : char;
}

val render :
  recorder ->
  ?markers:marker list ->
  t0:Satin_engine.Sim_time.t ->
  t1:Satin_engine.Sim_time.t ->
  width:int ->
  unit ->
  string
(** Lanes for the window [\[t0, t1)], [width] columns. Secure windows
    shorter than one column still paint their column (a 7 ms round remains
    visible on a 100 s axis). Markers are painted last, clipped to the
    window. Raises [Invalid_argument] if [t1 <= t0] or [width < 10]. *)

val secure_windows : recorder -> core:int -> (Satin_engine.Sim_time.t * Satin_engine.Sim_time.t) list
(** Completed [(entry, exit)] windows recorded so far, oldest first (an
    open window is closed at the current instant). *)
