(** SATIN (DSN 2019) reproduction — public entry point.

    Start with {!Scenario} to assemble the simulated Juno r1 platform (rich
    OS + secure world + checker), install a defense
    ({!Scenario.install_satin} or {!Scenario.install_baseline}), deploy
    attacks from [Satin_attack], and advance simulated time with
    {!Scenario.run_for}. {!Race} holds the paper's closed-form race
    analysis (Equations 1–2); {!Experiment} regenerates every table and
    figure of the evaluation; {!Report} renders them.

    Lower layers are available as their own libraries: [Satin_engine]
    (discrete-event core), [Satin_hw] (TrustZone hardware), [Satin_kernel]
    (rich OS), [Satin_tz] (secure world), [Satin_introspect] (defenses),
    [Satin_attack] (TZ-Evader and friends), [Satin_workload] (UnixBench
    models). See README.md and DESIGN.md. *)

module Scenario = Scenario
module Race = Race
module Experiment = Experiment
module Report = Report
module Gantt = Gantt
module Summary = Summary
