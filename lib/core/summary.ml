module Json = Satin_obs.Json
module Stats = Satin_engine.Stats
module Cycle_model = Satin_hw.Cycle_model

let identity () =
  Json.Obj
    [
      ("fingerprint", Json.String (Satin_store.Fingerprint.hex ()));
      ( "config_hash",
        Json.String
          (Digest.to_hex
             (Digest.string
                (Satin_store.Key.canonical (Satin_store.Key.ambient ())))) );
    ]

let stats (s : Stats.t) : Json.t =
  if Stats.is_empty s then Json.Obj [ ("count", Json.Int 0) ]
  else
    Json.Obj
      [
        ("count", Json.Int (Stats.count s));
        ("mean", Json.float (Stats.mean s));
        ("min", Json.float (Stats.min s));
        ("max", Json.float (Stats.max s));
        ("stddev", Json.float (Stats.stddev s));
        ("p50", Json.float (Stats.quantile s 0.50));
        ("p90", Json.float (Stats.quantile s 0.90));
        ("p99", Json.float (Stats.quantile s 0.99));
      ]

let e1 (r : Experiment.e1_result) =
  Json.Obj
    [
      ("runs", Json.Int r.Experiment.e1_runs);
      ("a53_switch_s", stats r.Experiment.e1_a53);
      ("a57_switch_s", stats r.Experiment.e1_a57);
    ]

let table1 (r : Experiment.table1_result) =
  Json.Obj
    [
      ( "rows",
        Json.List
          (List.map
             (fun (row : Experiment.table1_row) ->
               Json.Obj
                 [
                   ( "core",
                     Json.String
                       (Cycle_model.core_type_to_string row.Experiment.t1_core)
                   );
                   ("hash_per_byte_s", stats row.Experiment.t1_hash);
                   ("snapshot_per_byte_s", stats row.Experiment.t1_snapshot);
                 ])
             r.Experiment.t1_rows) );
      ("verified_clean", Json.Bool r.Experiment.t1_verified_clean);
    ]

let e3 (r : Experiment.e3_result) =
  Json.Obj
    [
      ("a53_recover_s", stats r.Experiment.e3_a53);
      ("a57_recover_s", stats r.Experiment.e3_a57);
    ]

let uprober (r : Experiment.uprober_result) =
  Json.Obj
    [
      ("delays_s", stats r.Experiment.up_delays);
      ("trials", Json.Int r.Experiment.up_trials);
      ("detected", Json.Int r.Experiment.up_detected);
      ("check_duration_s", Json.float r.Experiment.up_check_duration_s);
    ]

let table2 (r : Experiment.table2_result) =
  Json.Obj
    [
      ("rounds", Json.Int r.Experiment.t2_rounds);
      ( "rows",
        Json.List
          (List.map
             (fun (row : Experiment.table2_row) ->
               Json.Obj
                 [
                   ("period_s", Json.float row.Experiment.t2_period_s);
                   ("thresholds_s", stats row.Experiment.t2_thresholds);
                 ])
             r.Experiment.t2_rows) );
    ]

let e6 (r : Experiment.e6_result) =
  Json.Obj
    [
      ("all_core_avg_s", Json.float r.Experiment.e6_all_avg);
      ("single_core_avg_s", Json.float r.Experiment.e6_single_avg);
      ("ratio", Json.float r.Experiment.e6_ratio);
    ]

let race_params (p : Race.params) =
  Json.Obj
    [
      ("ts_switch_s", Json.float p.Race.ts_switch);
      ("ts_1byte_s", Json.float p.Race.ts_1byte);
      ("tns_sched_s", Json.float p.Race.tns_sched);
      ("tns_threshold_s", Json.float p.Race.tns_threshold);
      ("tns_recover_s", Json.float p.Race.tns_recover);
    ]

let e7 (r : Experiment.e7_result) =
  Json.Obj
    [
      ("params", race_params r.Experiment.e7_params);
      ("s_bound_bytes", Json.Int r.Experiment.e7_s_bound);
      ("kernel_size_bytes", Json.Int r.Experiment.e7_kernel_size);
      ("unprotected_fraction", Json.float r.Experiment.e7_unprotected);
    ]

let e8_campaign (c : Experiment.e8_campaign) =
  Json.Obj
    [
      ("rounds", Json.Int c.Experiment.e8_rounds);
      ("detections", Json.Int c.Experiment.e8_detections);
      ("evasions", Json.Int c.Experiment.e8_evasions);
      ("uptime_fraction", Json.float c.Experiment.e8_uptime_fraction);
      ("reaction_s", stats c.Experiment.e8_reaction);
    ]

let e8 (r : Experiment.e8_result) =
  Json.Obj
    [
      ("deep", e8_campaign r.Experiment.e8_deep);
      ("shallow", e8_campaign r.Experiment.e8_shallow);
    ]

let e9 (r : Experiment.e9_result) =
  Json.Obj
    [
      ("area_count", Json.Int r.Experiment.e9_count);
      ("total_bytes", Json.Int r.Experiment.e9_total);
      ("max_area_bytes", Json.Int r.Experiment.e9_max);
      ("min_area_bytes", Json.Int r.Experiment.e9_min);
      ("bound_bytes", Json.Int r.Experiment.e9_bound);
      ("all_below_bound", Json.Bool r.Experiment.e9_all_below_bound);
      ("greedy_count", Json.Int r.Experiment.e9_greedy_count);
      ("syscall_area", Json.Int r.Experiment.e9_syscall_area);
    ]

let e10 (r : Experiment.e10_result) =
  Json.Obj
    [
      ("rounds", Json.Int r.Experiment.e10_rounds);
      ("full_passes", Json.Int r.Experiment.e10_full_passes);
      ("area14_checks", Json.Int r.Experiment.e10_area14_checks);
      ("area14_detections", Json.Int r.Experiment.e10_area14_detections);
      ("area14_gap_mean_s", Json.float r.Experiment.e10_area14_gap_mean_s);
      ("full_pass_time_s", Json.float r.Experiment.e10_full_pass_time_s);
      ("prober_reported", Json.Int r.Experiment.e10_prober_reported);
      ("false_negatives", Json.Int r.Experiment.e10_false_negatives);
      ("false_positives", Json.Int r.Experiment.e10_false_positives);
      ("evasions_attempted", Json.Int r.Experiment.e10_evasions_attempted);
      ("evasions_succeeded", Json.Int r.Experiment.e10_evasions_succeeded);
    ]

let fig7 (r : Experiment.fig7_result) =
  Json.Obj
    [
      ( "rows",
        Json.List
          (List.map
             (fun (row : Experiment.fig7_row) ->
               Json.Obj
                 [
                   ("program", Json.String row.Experiment.f7_program);
                   ("degradation_1task_pct", Json.float row.Experiment.f7_deg_1task);
                   ("degradation_6task_pct", Json.float row.Experiment.f7_deg_6task);
                 ])
             r.Experiment.f7_rows) );
      ("avg_1task_pct", Json.float r.Experiment.f7_avg_1task);
      ("avg_6task_pct", Json.float r.Experiment.f7_avg_6task);
    ]

let ablation (r : Experiment.ablation_result) =
  Json.Obj
    [
      ( "rows",
        Json.List
          (List.map
             (fun (row : Experiment.ablation_row) ->
               Json.Obj
                 [
                   ("label", Json.String row.Experiment.ab_label);
                   ("area14_checks", Json.Int row.Experiment.ab_area14_checks);
                   ( "area14_detections",
                     Json.Int row.Experiment.ab_area14_detections );
                   ("attack_uptime", Json.float row.Experiment.ab_attack_uptime);
                 ])
             r.Experiment.ab_rows) );
    ]

let e13 (r : Experiment.e13_result) =
  Json.Obj
    [
      ("checks", Json.Int r.Experiment.e13_checks);
      ("detections", Json.Int r.Experiment.e13_detections);
      ("relinks", Json.Int r.Experiment.e13_relinks);
      ("walk_cost_s", stats r.Experiment.e13_walk_cost);
      ("hidden_fraction", Json.float r.Experiment.e13_hidden_fraction);
    ]

let e14 (r : Experiment.e14_result) =
  Json.Obj
    [
      ("rounds", Json.Int r.Experiment.e14_rounds);
      ("area14_checks", Json.Int r.Experiment.e14_area14_checks);
      ("area14_detections", Json.Int r.Experiment.e14_area14_detections);
      ("reaction_s", stats r.Experiment.e14_reaction);
      ("false_alarms", Json.Int r.Experiment.e14_false_alarms);
      ("wasted_hides", Json.Int r.Experiment.e14_wasted_hides);
      ("uptime_fraction", Json.float r.Experiment.e14_uptime_fraction);
    ]

let cache_fidelity (r : Experiment.cache_fidelity_result) =
  Json.Obj
    [
      ("trials", Json.Int r.Experiment.cf_trials);
      ("window_s", Json.Int r.Experiment.cf_window_s);
      ( "rows",
        Json.List
          (List.map
             (fun (row : Experiment.cache_row) ->
               Json.Obj
                 [
                   ( "fidelity",
                     Json.String
                       (Satin_attack.Cache_prober.fidelity_to_string
                          row.Experiment.cr_fidelity) );
                   ( "policy",
                     Json.String
                       (Satin_cache.Policy.kind_to_string
                          row.Experiment.cr_policy)
                   );
                   ("autolock", Json.Bool row.Experiment.cr_autolock);
                   ("scans", Json.Int row.Experiment.cr_scans);
                   ("detected", Json.Int row.Experiment.cr_detected);
                   ("alarms", Json.Int row.Experiment.cr_alarms);
                   ("false_alarms", Json.Int row.Experiment.cr_false_alarms);
                 ])
             r.Experiment.cf_rows) );
      ( "validation",
        Json.List
          (List.map
             (fun (row : Experiment.cache_validation_row) ->
               Json.Obj
                 [
                   ("workload", Json.String row.Experiment.cv_name);
                   ("bytes", Json.Int row.Experiment.cv_bytes);
                   ("l1_rate", Json.float row.Experiment.cv_l1_rate);
                   ("l2_rate", Json.float row.Experiment.cv_l2_rate);
                   ("mem_rate", Json.float row.Experiment.cv_mem_rate);
                 ])
             r.Experiment.cf_validation) );
    ]

let sweep (r : Experiment.sweep_result) =
  Json.Obj
    [
      ( "rows",
        Json.List
          (List.map
             (fun (row : Experiment.sweep_row) ->
               Json.Obj
                 [
                   ("tp_s", Json.float row.Experiment.sw_tp_s);
                   ("tgoal_s", Json.float row.Experiment.sw_tgoal_s);
                   ("detect_latency_s", stats row.Experiment.sw_detect_latency);
                   ("overhead_pct", Json.float row.Experiment.sw_overhead_pct);
                 ])
             r.Experiment.sw_rows) );
    ]

let inject (r : Experiment.inject_result) =
  Json.Obj
    [
      ("window_s", Json.Int r.Experiment.inj_window_s);
      ( "rows",
        Json.List
          (List.map
             (fun (row : Experiment.inject_row) ->
               Json.Obj
                 [
                   ("plan", Json.String row.Experiment.inj_plan);
                   ("trials", Json.Int row.Experiment.inj_trials);
                   ("detected", Json.Int row.Experiment.inj_detected);
                   ("first_alarm_s", stats row.Experiment.inj_latency);
                   ("rounds_mean", Json.float row.Experiment.inj_rounds);
                   ("faults_mean", Json.float row.Experiment.inj_faults);
                 ])
             r.Experiment.inj_rows) );
    ]

let degrade (r : Experiment.degrade_result) =
  Json.Obj
    [
      ("window_s", Json.Int r.Experiment.dg_window_s);
      ( "rows",
        Json.List
          (List.map
             (fun (row : Experiment.degrade_row) ->
               Json.Obj
                 [
                   ("drop_prob", Json.float row.Experiment.dg_drop_prob);
                   ("trials", Json.Int row.Experiment.dg_trials);
                   ("detected", Json.Int row.Experiment.dg_detected);
                   ("first_alarm_s", stats row.Experiment.dg_latency);
                   ("rounds_mean", Json.float row.Experiment.dg_rounds);
                   ("drops_mean", Json.float row.Experiment.dg_drops);
                 ])
             r.Experiment.dg_rows) );
    ]

let timeline (p : Race.params) =
  Json.Obj
    [
      ("params", race_params p);
      ("s_bound_bytes", Json.Int (Race.s_bound p));
      ("hide_time_s", Json.float (Race.hide_time p));
      ("max_area_bytes", Json.Int (Race.max_area_size p));
    ]
