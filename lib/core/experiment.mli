(** Typed runners for every table and figure of the paper's evaluation.

    Each [run_*] function builds its own scenario(s) from a seed, advances
    the simulation, and returns a result record; each [print_*] renders the
    paper-shaped table or figure to a formatter. {!run_all} executes the
    full evaluation in paper order. See DESIGN.md §4 for the experiment
    index and EXPERIMENTS.md for paper-vs-measured numbers. *)

module Stats = Satin_engine.Stats
module Cycle_model = Satin_hw.Cycle_model
module Runner = Satin_runner.Runner

(** Every fan-out below is expressed as a pure trial body — a function of the
    experiment seed and a [trial_index] that builds its own scenario/PRNG from
    a derived seed — routed through a {!Runner.t}. [?pool] defaults to
    {!Runner.sequential}; passing a parallel pool changes wall-clock time
    only, never results: trial [i] is seeded identically whichever domain
    runs it and results are merged in submission order. *)

(** {1 E1 — world-switch latency (§IV-B1)} *)

type e1_result = { e1_a53 : Stats.t; e1_a57 : Stats.t; e1_runs : int }

val e1_trial : seed:int -> runs:int -> trial_index:int -> Stats.t
(** Trial 0 samples the A53 cluster, trial 1 the A57 cluster. *)

val run_e1 : ?pool:Runner.t -> ?seed:int -> ?runs:int -> unit -> e1_result
val print_e1 : Format.formatter -> e1_result -> unit

(** {1 Table I — secure-world introspection time per byte} *)

type table1_row = {
  t1_core : Cycle_model.core_type;
  t1_hash : Stats.t; (** per-byte direct-hash cost, s *)
  t1_snapshot : Stats.t; (** per-byte snapshot cost, s *)
}

type table1_result = { t1_rows : table1_row list; t1_verified_clean : bool }

val table1_trial : seed:int -> runs:int -> trial_index:int -> table1_row
(** Trial 0 is the A53 row, trial 1 the A57 row. *)

val run_table1 :
  ?pool:Runner.t -> ?seed:int -> ?runs:int -> unit -> table1_result

val print_table1 : Format.formatter -> table1_result -> unit

(** {1 E3 — attacker recovery time (§IV-B2)} *)

type e3_result = { e3_a53 : Stats.t; e3_a57 : Stats.t }

val e3_trial : seed:int -> runs:int -> trial_index:int -> Stats.t
(** Trial 0 cleans up on an A53, trial 1 on an A57. *)

val run_e3 : ?pool:Runner.t -> ?seed:int -> ?runs:int -> unit -> e3_result
val print_e3 : Format.formatter -> e3_result -> unit

(** {1 E2b — user-level prober responsiveness (§III-B1)} *)

type uprober_result = {
  up_delays : Stats.t;
      (** seconds from a probing-round boundary (with a kernel check already
          holding a core) to the user-level prober's report; the paper
          measures [Tns_delay] < 5.97×10⁻³ s at 8 s rounds *)
  up_trials : int;
  up_detected : int;
  up_check_duration_s : float;
      (** one full-kernel integrity check on an A57 core — the paper's
          8.04×10⁻² s comparison point *)
}

val uprober_trial :
  seed:int -> trial_index:int -> float option * float option
(** One probing-responsiveness trial on core [trial_index mod ncores] of a
    fresh scenario: returns the entry→report delay (None if the prober
    missed) and, on A57 trials, one full-kernel check duration. *)

val run_uprober :
  ?pool:Runner.t -> ?seed:int -> ?trials:int -> unit -> uprober_result

val print_uprober : Format.formatter -> uprober_result -> unit

(** {1 Table II / Figure 4 — probing threshold vs probing period} *)

type table2_row = { t2_period_s : float; t2_thresholds : Stats.t }

type table2_result = { t2_rows : table2_row list; t2_rounds : int }

val table2_trial :
  seed:int -> rounds:int -> periods:float array -> trial_index:int -> table2_row
(** One probing period, one row — seeded [seed + 17 * trial_index] as the
    sequential version always was. *)

val run_table2 :
  ?pool:Runner.t ->
  ?seed:int ->
  ?rounds:int ->
  ?periods_s:float list ->
  unit ->
  table2_result

val print_table2 : Format.formatter -> table2_result -> unit
val print_fig4 : Format.formatter -> table2_result -> unit

(** {1 E6 — single-core vs all-core probing} *)

type e6_result = {
  e6_all_avg : float;
  e6_single_avg : float;
  e6_ratio : float; (** single / all (paper: ≈ 1/4) *)
}

val e6_trial : seed:int -> rounds:int -> trial_index:int -> Stats.t
(** Trial 0 probes all six cores, trial 1 the pinned single-core setup. *)

val run_e6 : ?pool:Runner.t -> ?seed:int -> ?rounds:int -> unit -> e6_result
val print_e6 : Format.formatter -> e6_result -> unit

(** {1 E7 — race-condition analysis (§IV-C)} *)

type e7_result = {
  e7_params : Race.params;
  e7_s_bound : int;
  e7_kernel_size : int;
  e7_unprotected : float;
}

val run_e7 : unit -> e7_result
val print_e7 : Format.formatter -> e7_result -> unit

(** {1 E8 — TZ-Evader vs existing (PKM-style) introspection} *)

type e8_campaign = {
  e8_rounds : int; (** full-kernel scans performed *)
  e8_detections : int;
  e8_evasions : int; (** completed hides *)
  e8_uptime_fraction : float; (** attack collection time / wall time *)
  e8_reaction : Stats.t; (** world-entry → hide-complete, s *)
}

type e8_result = {
  e8_deep : e8_campaign; (** GETTID, ~45% into the image — evades *)
  e8_shallow : e8_campaign; (** IRQ vector, start of image — caught *)
}

val e8_trial : seed:int -> duration_s:int -> trial_index:int -> e8_campaign
(** Trial 0 is the deep GETTID hijack, trial 1 the shallow IRQ-vector one. *)

val run_e8 :
  ?pool:Runner.t -> ?seed:int -> ?duration_s:int -> unit -> e8_result

val print_e8 : Format.formatter -> e8_result -> unit

(** {1 E9 — area partition (§VI-A2)} *)

type e9_result = {
  e9_count : int;
  e9_total : int;
  e9_max : int;
  e9_min : int;
  e9_bound : int;
  e9_all_below_bound : bool;
  e9_greedy_count : int; (** areas produced by the general greedy partition *)
  e9_syscall_area : int; (** canonical area holding sys_call_table (paper: 14) *)
}

val run_e9 : unit -> e9_result
val print_e9 : Format.formatter -> e9_result -> unit

(** {1 E10 — SATIN defeating TZ-Evader (§VI-B1)} *)

type e10_result = {
  e10_rounds : int; (** analysed rounds (paper: 190) *)
  e10_full_passes : int; (** paper: 10 *)
  e10_area14_checks : int; (** paper: 10 *)
  e10_area14_detections : int; (** paper: 10 — every check catches it *)
  e10_area14_gap_mean_s : float; (** paper: ~141 s *)
  e10_full_pass_time_s : float; (** paper: ~152 s *)
  e10_prober_reported : int; (** rounds the attacker's prober noticed *)
  e10_false_negatives : int; (** rounds missed by the prober *)
  e10_false_positives : int; (** probe alarms with no secure entry *)
  e10_evasions_attempted : int;
  e10_evasions_succeeded : int; (** hides completing before the scan front *)
}

val run_e10 :
  ?seed:int ->
  ?target_rounds:int ->
  ?probe_period_us:int ->
  unit ->
  e10_result
(** [probe_period_us] defaults to 500 (paper: 200). It must stay well below
    the smallest area's scan time (~2.9 ms on an A57) or short rounds can
    fall inside the prober's blind spot and produce attacker-side false
    negatives — an artifact of slowing the prober down for simulation
    speed, not of the defense. *)

val print_e10 : Format.formatter -> e10_result -> unit

(** {1 Figure 7 — SATIN overhead on UnixBench} *)

type fig7_row = {
  f7_program : string;
  f7_deg_1task : float; (** percent degradation, 1 copy *)
  f7_deg_6task : float; (** percent degradation, 6 copies *)
}

type fig7_result = {
  f7_rows : fig7_row list;
  f7_avg_1task : float;
  f7_avg_6task : float;
}

val fig7_trial : seed:int -> window_s:int -> trial_index:int -> float
(** One UnixBench score: program [trial_index / 4], copies 1 or 6 from
    [(trial_index / 2) mod 2], SATIN off/on from [trial_index mod 2]. *)

val run_fig7 :
  ?pool:Runner.t -> ?seed:int -> ?window_s:int -> unit -> fig7_result

val print_fig7 : Format.formatter -> fig7_result -> unit

(** {1 E12 — the Figure 3 race timeline} *)

val print_timeline : Format.formatter -> Race.params -> unit

(** {1 Ablation — which SATIN randomization defeats which attacker} *)

type ablation_row = {
  ab_label : string;
  ab_area14_checks : int;
  ab_area14_detections : int;
  ab_attack_uptime : float; (** fraction of wall time the hijack is live *)
}

type ablation_result = { ab_rows : ablation_row list }

val ablation_trial : seed:int -> passes:int -> trial_index:int -> ablation_row
(** The four de-randomization variants, in the table's row order. *)

val run_ablation :
  ?pool:Runner.t -> ?seed:int -> ?passes:int -> unit -> ablation_result

val print_ablation : Format.formatter -> ablation_result -> unit

(** {1 E13 — cross-view detection of DKOM hiding (beyond the paper)} *)

type e13_result = {
  e13_checks : int; (** cross-view passes performed *)
  e13_detections : int; (** passes that saw the hidden process *)
  e13_relinks : int;
      (** attacker's evasive relinks — expect 0: the whole secure residency
          of a cross-view pass is far below the probing threshold, so the
          CPU side channel never fires *)
  e13_walk_cost : Stats.t; (** walk durations, s *)
  e13_hidden_fraction : float;
      (** fraction of wall time the process stayed hidden from tasks-list
          tools — the attack still "works" against userland, only the
          introspection sees through it *)
}

val run_e13 : ?seed:int -> ?checks:int -> unit -> e13_result
val print_e13 : Format.formatter -> e13_result -> unit

(** {1 E14 — SATIN vs the cache-occupancy side channel (§VI-C2)} *)

type e14_result = {
  e14_rounds : int;
  e14_area14_checks : int;
  e14_area14_detections : int; (** expect all of them, as with KProber *)
  e14_reaction : Stats.t;
      (** entry→hidden, s — roughly 3× faster than the availability channel
          (no 1.8 ms threshold to wait out), yet still slower than the scan
          front's ~2–3 ms to the tampered bytes *)
  e14_false_alarms : int; (** benign evictions the channel cannot filter *)
  e14_wasted_hides : int; (** hides spent chasing noise *)
  e14_uptime_fraction : float;
}

val run_e14 : ?seed:int -> ?passes:int -> unit -> e14_result
val print_e14 : Format.formatter -> e14_result -> unit

(** {1 Tgoal sweep — the coverage/overhead tradeoff (beyond the paper)} *)

type sweep_row = {
  sw_tp_s : float; (** round period tp *)
  sw_tgoal_s : float; (** full-coverage horizon m·tp *)
  sw_detect_latency : Stats.t;
      (** seconds from arming the evading rootkit to SATIN's first alarm *)
  sw_overhead_pct : float;
      (** file-copy-256 (worst-case workload) degradation at this cadence *)
}

type sweep_result = { sw_rows : sweep_row list }

val sweep_latency_trial :
  seed:int -> trials:int -> tps:float array -> trial_index:int -> float option
(** One time-to-first-alarm trial at tp [tps.(trial_index / trials)]. *)

val sweep_score_trial :
  seed:int -> tps:float array -> trial_index:int -> float
(** One worst-case-workload score at cadence [tps.(trial_index / 2)], SATIN
    off on even indices and on on odd ones. *)

val run_tgoal_sweep :
  ?pool:Runner.t ->
  ?seed:int ->
  ?trials:int ->
  ?tps_s:float list ->
  unit ->
  sweep_result
(** For each tp, measures mean time-to-first-alarm against a TZ-Evader-
    protected rootkit armed at t = 0, and the worst-case workload overhead
    at the same cadence. Defaults: 4 trials, tp ∈ {0.5, 1, 2, 4} s. *)

val print_tgoal_sweep : Format.formatter -> sweep_result -> unit

(** {1 Fault injection — detection rate per fault plan (beyond the paper)} *)

type fault_trial = {
  ft_detected : bool;
  ft_latency_s : float option;
      (** rootkit arm → first alarmed round's wake-up, seconds *)
  ft_rounds : int; (** rounds SATIN completed inside the window *)
  ft_faults : int; (** perturbations applied: drops+delays+spikes+flips *)
}

val fault_campaign_trial :
  seed:int -> window_s:int -> Satin_inject.Fault_plan.t -> fault_trial
(** One campaign: injector installed first (so the very first secure-timer
    arms pass the fault hooks), SATIN at [tp] = 1 s, a persistent GETTID
    rootkit armed after enrollment, [window_s] simulated seconds. *)

type inject_row = {
  inj_plan : string;
  inj_trials : int;
  inj_detected : int; (** trials in which SATIN raised at least one alarm *)
  inj_latency : Stats.t; (** time to first alarm, s, over detected trials *)
  inj_rounds : float; (** mean rounds completed *)
  inj_faults : float; (** mean perturbations applied *)
}

type inject_result = { inj_rows : inject_row list; inj_window_s : int }

val inject_trial :
  seed:int ->
  trials:int ->
  window_s:int ->
  plans:Satin_inject.Fault_plan.t array ->
  trial_index:int ->
  fault_trial
(** Plan [trial_index / trials], trial seed [derive seed trial_index]. *)

val run_inject :
  ?pool:Runner.t ->
  ?seed:int ->
  ?trials:int ->
  ?window_s:int ->
  ?plans:Satin_inject.Fault_plan.t list ->
  unit ->
  inject_result
(** Defaults: 4 trials per plan, 30 s window,
    {!Satin_inject.Fault_plan.catalogue}. *)

val print_inject : Format.formatter -> inject_result -> unit

(** {1 Graceful degradation — detection vs timer-drop severity} *)

type degrade_row = {
  dg_drop_prob : float;
  dg_trials : int;
  dg_detected : int;
  dg_latency : Stats.t;
  dg_rounds : float;
  dg_drops : float; (** mean secure-timer arms swallowed per trial *)
}

type degrade_result = { dg_rows : degrade_row list; dg_window_s : int }

val degrade_trial :
  seed:int ->
  trials:int ->
  window_s:int ->
  probs:float array ->
  trial_index:int ->
  fault_trial
(** Drop probability [probs.(trial_index / trials)] (0 means [Control]). *)

val run_degrade :
  ?pool:Runner.t ->
  ?seed:int ->
  ?trials:int ->
  ?window_s:int ->
  ?drop_probs:float list ->
  unit ->
  degrade_result
(** Defaults: 4 trials per severity, 30 s window, drop probabilities
    [0.0; 0.2; 0.4; 0.6]. *)

val print_degrade : Format.formatter -> degrade_result -> unit

(** {1 Fleet — per-device detection/overhead sweep}

    A deployment-scale campaign: [devices] simulated Junos, each with its
    own PRNG stream, running SATIN under one of {!fleet_classes} (probing
    cadence × randomization posture) against a persistent rootkit and the
    worst-case UnixBench workload. Device [i]'s class is
    [i mod #classes] and its seed [derive seed i] — the population is a
    pure function of the index, so growing the fleet (or sweeping it with
    [campaign --shard]) only appends devices and reuses every stored
    per-device record. *)

type fleet_class = { fc_tp_s : float; fc_randomized : bool }

val fleet_classes : fleet_class list
(** Eight classes: cadence 0.5/1/2/4 s × randomizations all-on/all-off. *)

type fleet_device = {
  fd_detected : bool;
  fd_latency_s : float option; (** arm -> first alarmed round's wake-up, s *)
  fd_rounds : int;
  fd_score : float; (** workload throughput with SATIN running *)
}

val fleet_class_of : trial_index:int -> fleet_class

val fleet_device_trial :
  seed:int -> window_s:int -> trial_index:int -> fleet_device

val fleet_baseline_trial : seed:int -> window_s:int -> trial_index:int -> float
(** The overhead denominator: the same workload with no SATIN installed. *)

type fleet_row = {
  fr_tp_s : float;
  fr_randomized : bool;
  fr_devices : int;
  fr_detected : int;
  fr_latency : Stats.t;
  fr_rounds : float; (** mean rounds completed per device *)
  fr_overhead_pct : float; (** vs the fleet-wide no-SATIN baseline *)
}

type fleet_result = {
  fl_rows : fleet_row list;
  fl_devices : int;
  fl_window_s : int;
  fl_baseline : float; (** mean no-SATIN workload score *)
  fl_detected : int; (** devices that alarmed, fleet-wide *)
  fl_latency : Stats.t; (** fleet-wide time to first alarm *)
}

val run_fleet :
  ?pool:Runner.t ->
  ?seed:int ->
  ?devices:int ->
  ?window_s:int ->
  unit ->
  fleet_result
(** Defaults: 240 devices, 20 s window. [devices] is not part of the trial
    keys — only the per-device class and window are — so any two fleets
    of the same seed/window share their common prefix of records. *)

val print_fleet : Format.formatter -> fleet_result -> unit

(** {1 Cache fidelity — prober mode x replacement policy x AutoLock}

    The side-channel grid over the modeled L1/L2 hierarchy
    ({!Satin_cache.Cache}): every combination of prober fidelity
    ({!Satin_attack.Cache_prober.fidelity}), replacement policy and the
    AutoLock toggle runs the full stack — a scan driver streaming a 2 MiB
    kernel range through core 1 at randomized intervals, per-core CFS
    spinners for benign footprint noise, and the prober watching from the
    cluster's first core. Ground truth comes from the driver's own scan
    intervals. Plus a cachetrace-style hit-rate validation table for the
    hierarchy itself. *)

type cache_cell = {
  cc_fidelity : Satin_attack.Cache_prober.fidelity;
  cc_policy : Satin_cache.Policy.kind;
  cc_autolock : bool;
}

val cache_cells : cache_cell list
(** 18 cells: {abstract, prime+probe, evict+reload} x {lru, tree-plru,
    random} x {AutoLock off, on}. *)

val cache_config_of_cell : cache_cell -> Satin_cache.Cache.config

type cache_trial = {
  ctr_scans : int; (** scans the driver completed inside the window *)
  ctr_detected : int; (** scans with a cluster-0 alarm inside their window *)
  ctr_alarms : int; (** alarm rounds fired, both clusters *)
  ctr_false_alarms : int; (** alarms with no secure residency to explain them *)
}

val cache_fidelity_trial :
  seed:int ->
  trials:int ->
  window_s:int ->
  cells:cache_cell array ->
  trial_index:int ->
  cache_trial
(** Cell [trial_index / trials], trial seed [derive seed trial_index]. *)

type cache_row = {
  cr_fidelity : Satin_attack.Cache_prober.fidelity;
  cr_policy : Satin_cache.Policy.kind;
  cr_autolock : bool;
  cr_trials : int;
  cr_scans : int;
  cr_detected : int;
  cr_alarms : int;
  cr_false_alarms : int;
}

type cache_validation_row = {
  cv_name : string;
  cv_bytes : int;
  cv_l1_rate : float; (** steady-state fraction of accesses served by L1 *)
  cv_l2_rate : float;
  cv_mem_rate : float;
}

type cache_fidelity_result = {
  cf_rows : cache_row list;
  cf_validation : cache_validation_row list;
  cf_trials : int;
  cf_window_s : int;
}

val run_cache_fidelity :
  ?pool:Runner.t ->
  ?seed:int ->
  ?trials:int ->
  ?window_s:int ->
  unit ->
  cache_fidelity_result
(** Defaults: 2 trials per cell, 10 s windows. The cell's fidelity mode and
    full cache configuration are part of every trial's store key. *)

val print_cache_fidelity : Format.formatter -> cache_fidelity_result -> unit

(** {1 Everything} *)

val run_all : ?pool:Runner.t -> ?seed:int -> ?quick:bool -> Format.formatter -> unit
(** Runs every experiment and prints every table/figure. [quick] shrinks
    campaign lengths (fewer rounds/passes) for CI-speed runs; the default
    is the paper-scale campaign. [pool] parallelizes every trial fan-out;
    the report is byte-identical whatever the pool's width. Each
    experiment's wall-clock is recorded under the [experiment.wall_s]
    metric when an observability sink is installed. *)
