(** Full-system scenario builder.

    One call assembles the paper's evaluation platform: the simulated Juno
    r1, a booted rich OS with the lsk-4.4-style kernel image, the secure
    world (TSP + secure memory carve-out), and an integrity checker. Defense
    and attack components are then installed on top by the experiments (or
    by library users). *)

type t = {
  platform : Satin_hw.Platform.t;
  kernel : Satin_kernel.Kernel.t;
  tsp : Satin_tz.Tsp.t;
  secure_memory : Satin_tz.Secure_memory.t;
  checker : Satin_introspect.Checker.t;
  sanitizer : Satin_inject.Sanitizer.t option;
      (** present iff {!Satin_inject.Sanitizer.check_mode} was on at
          creation ([--check]): an invariant sanitizer chained onto the
          engine observer, validating engine/queue/scheduler state on a
          sampled cadence *)
}

val create :
  ?seed:int ->
  ?cycle:Satin_hw.Cycle_model.t ->
  ?cache:Satin_cache.Cache.config ->
  ?layout:Satin_kernel.Layout.t ->
  ?algo:Satin_introspect.Hash.algo ->
  ?style:Satin_introspect.Checker.style ->
  unit ->
  t
(** Defaults: seed 42, Juno r1 calibration, the default cache geometry
    ({!Satin_cache.Cache.default_config}), the paper kernel layout, djb2,
    direct hash. *)

val run_for : t -> Satin_engine.Sim_time.t -> unit
(** Advance the simulation by a duration. Under [--check], every
    [run_for]/[run_until] ends with one full sanitizer sweep, so even a
    scenario too short to reach the sampled cadence gets validated. *)

val run_until : t -> Satin_engine.Sim_time.t -> unit

val now : t -> Satin_engine.Sim_time.t

val engine : t -> Satin_engine.Engine.t

val install_satin :
  t -> ?config:Satin_introspect.Satin.config -> unit -> Satin_introspect.Satin.t
(** Installs and starts SATIN with its default (or given) configuration. *)

val install_baseline :
  t -> Satin_introspect.Baseline.config -> Satin_introspect.Baseline.t
(** Installs and starts a PKM-style baseline defense. *)
