module Cycle_model = Satin_hw.Cycle_model

type params = {
  ts_switch : float;
  ts_1byte : float;
  tns_sched : float;
  tns_threshold : float;
  tns_recover : float;
}

let paper_worst_case =
  {
    ts_switch = 3.60e-6;
    ts_1byte = 6.67e-9;
    tns_sched = 2.0e-4;
    tns_threshold = 1.8e-3;
    tns_recover = 6.13e-3;
  }

let of_cycle cycle ~checker_core ~evader_core =
  let open Cycle_model in
  {
    ts_switch = (cycle.world_switch checker_core).t_max;
    ts_1byte = (cycle.hash_1byte checker_core).t_min;
    tns_sched = cycle.rt_sleep;
    tns_threshold = 1.8e-3;
    tns_recover = (cycle.recover_8bytes evader_core).t_max;
  }

let tns_delay p = p.tns_sched +. p.tns_threshold

let s_bound p =
  int_of_float
    (Float.round ((tns_delay p +. p.tns_recover -. p.ts_switch) /. p.ts_1byte))

let scan_time p ~bytes = p.ts_switch +. (float_of_int bytes *. p.ts_1byte)
let hide_time p = tns_delay p +. p.tns_recover

let evasion_succeeds p ~s = scan_time p ~bytes:s > hide_time p

let unprotected_fraction p ~kernel_size =
  if kernel_size <= 0 then invalid_arg "Race.unprotected_fraction: empty kernel";
  let s = float_of_int (s_bound p) and n = float_of_int kernel_size in
  Float.max 0.0 (1.0 -. (s /. n))

let max_area_size = s_bound

let preemptive_scan_time p ~bytes ~storm_hz ~handler_s =
  if storm_hz < 0.0 || handler_s < 0.0 then
    invalid_arg "Race.preemptive_scan_time: negative storm parameters";
  let load = storm_hz *. handler_s in
  if load >= 1.0 then
    invalid_arg "Race.preemptive_scan_time: storm saturates the core";
  scan_time p ~bytes /. (1.0 -. load)

let storm_to_evade p ~bytes ~handler_s =
  if handler_s <= 0.0 then invalid_arg "Race.storm_to_evade: handler_s <= 0";
  (* Solve preemptive_scan_time = hide_time for storm_hz. *)
  let base = scan_time p ~bytes in
  let hide = hide_time p in
  if base >= hide then 0.0 (* already evadable without any storm *)
  else
    let load = 1.0 -. (base /. hide) in
    if load >= 1.0 then infinity else load /. handler_s
