module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Platform = Satin_hw.Platform
module Obs = Satin_obs.Obs

type t = {
  platform : Platform.t;
  kernel : Satin_kernel.Kernel.t;
  tsp : Satin_tz.Tsp.t;
  secure_memory : Satin_tz.Secure_memory.t;
  checker : Satin_introspect.Checker.t;
  sanitizer : Satin_inject.Sanitizer.t option;
}

(* The secure carve-out sits well above the ~13.4 MiB end of the kernel
   image within the 32 MiB simulated DRAM. *)
let secure_base = 24 * 1024 * 1024
let secure_size = 1024 * 1024

let create ?(seed = 42) ?cycle ?cache ?layout
    ?(algo = Satin_introspect.Hash.Djb2)
    ?(style = Satin_introspect.Checker.Direct_hash) () =
  let platform = Platform.juno_r1 ~seed ?cycle ?cache () in
  (* The engine observer feeds the global sink and/or the current domain's
     capsule capture; track naming is a sink-only (tracing) concern. *)
  if Obs.enabled () || Obs.capturing () then Obs.attach_engine platform.Platform.engine;
  if Obs.enabled () then
    Array.iter
      (fun cpu ->
        Obs.name_track (Satin_hw.Cpu.id cpu)
          (Printf.sprintf "core %d (%s)" (Satin_hw.Cpu.id cpu)
             (Satin_hw.Cycle_model.core_type_to_string
                (Satin_hw.Cpu.core_type cpu))))
      platform.Platform.cores;
  let kernel = Satin_kernel.Kernel.boot ?layout platform in
  let tsp = Satin_tz.Tsp.install platform in
  let secure_memory =
    Satin_tz.Secure_memory.create ~memory:platform.Platform.memory
      ~base:secure_base ~size:secure_size
  in
  let checker =
    Satin_introspect.Checker.create ~cache:platform.Platform.cache
      ~memory:platform.Platform.memory ~cycle:platform.Platform.cycle
      ~prng:(Platform.split_prng platform) ~algo ~style ()
  in
  (* Under --check, every scenario carries its own sanitizer instance
     (domain-confined; aggregates are global atomics), chained after any
     observer the obs layer installed above. *)
  let sanitizer =
    if Satin_inject.Sanitizer.check_mode () then
      Some
        (Satin_inject.Sanitizer.attach
           ~name:(Printf.sprintf "scenario seed=%d" seed)
           ~sched:kernel.Satin_kernel.Kernel.sched platform.Platform.engine)
    else None
  in
  { platform; kernel; tsp; secure_memory; checker; sanitizer }

let engine t = t.platform.Platform.engine
let now t = Engine.now (engine t)
let run_until t time =
  Engine.run_until (engine t) time;
  (* One full sweep per run call: short scenarios never reach the sampled
     cadence, and corruption introduced after the last sampled event must
     still be caught (the sweep is a pure read at a deterministic instant,
     so results stay byte-identical at any jobs width). *)
  match t.sanitizer with
  | Some s -> ignore (Satin_inject.Sanitizer.check_now s)
  | None -> ()

let run_for t d = run_until t (Sim_time.add (now t) d)

let install_satin t ?(config = Satin_introspect.Satin.default_config) () =
  let satin =
    Satin_introspect.Satin.install ~tsp:t.tsp ~kernel:t.kernel ~checker:t.checker
      ~secure_memory:t.secure_memory config
  in
  Satin_introspect.Satin.start satin;
  satin

let install_baseline t config =
  let b =
    Satin_introspect.Baseline.install ~tsp:t.tsp ~kernel:t.kernel
      ~checker:t.checker config
  in
  Satin_introspect.Baseline.start b;
  b
