(** Plain-text rendering of experiment results: aligned tables in the
    paper's format (scientific notation for sub-second timings), section
    banners, and ASCII boxplots/bars for the figures. *)

val section : string -> string
(** A banner line, e.g. ["==== Table I ... ===="]. *)

val table : header:string list -> string list list -> string
(** Column-aligned table with a rule under the header. All rows must have
    the header's arity. *)

val csv : header:string list -> string list list -> string
(** RFC-4180-style CSV of the same data {!table} renders — for piping an
    experiment's rows into a plotting tool. Fields containing commas,
    quotes, or newlines are quoted; quotes are doubled. *)

val sci : float -> string
(** ["2.61e-04"]-style scientific notation (the paper's table format). *)

val sci_time : Satin_engine.Sim_time.t -> string

val pct : float -> string
(** Percentage with three decimals, e.g. ["0.711%"] (Figure 7's format). *)

val boxplot_row :
  label:string -> Satin_engine.Stats.boxplot -> width:int -> lo:float -> hi:float -> string
(** One ASCII boxplot lane ["|----[==|==]-----| oo"] scaled to [\[lo,hi\]]. *)

val bar : label:string -> value:float -> max_value:float -> width:int -> string
(** Horizontal bar for figure-style series. *)
