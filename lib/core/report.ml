module Stats = Satin_engine.Stats
module Sim_time = Satin_engine.Sim_time

let section title =
  let pad = max 0 (70 - String.length title - 10) in
  Printf.sprintf "\n==== %s %s\n" title (String.make pad '=')

let table ~header rows =
  List.iter
    (fun row ->
      if List.length row <> List.length header then
        invalid_arg "Report.table: row arity mismatch")
    rows;
  let cells = header :: rows in
  let ncols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 cells
  in
  let widths = List.init ncols width in
  let render_row row =
    String.concat "  "
      (List.mapi
         (fun c cell -> Printf.sprintf "%-*s" (List.nth widths c) cell)
         row)
  in
  let rule =
    String.concat "  " (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row header :: rule :: List.map render_row rows)
  ^ "\n"

let csv_field f =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n') f then
    "\"" ^ String.concat "\"\"" (String.split_on_char '"' f) ^ "\""
  else f

let csv ~header rows =
  List.iter
    (fun row ->
      if List.length row <> List.length header then
        invalid_arg "Report.csv: row arity mismatch")
    rows;
  String.concat "\n"
    (List.map (fun row -> String.concat "," (List.map csv_field row)) (header :: rows))
  ^ "\n"

let sci x = Printf.sprintf "%.2e" x
let sci_time t = sci (Sim_time.to_sec_f t)
let pct x = Printf.sprintf "%.3f%%" x

let boxplot_row ~label (b : Stats.boxplot) ~width ~lo ~hi =
  let span = if hi > lo then hi -. lo else 1.0 in
  let pos x =
    let p = int_of_float (float_of_int (width - 1) *. ((x -. lo) /. span)) in
    min (width - 1) (max 0 p)
  in
  let lane = Bytes.make width ' ' in
  let put i c = Bytes.set lane i c in
  let lw = pos b.Stats.low_whisker
  and q1 = pos b.Stats.q1
  and med = pos b.Stats.median
  and q3 = pos b.Stats.q3
  and hw = pos b.Stats.high_whisker in
  for i = lw to hw do
    put i '-'
  done;
  for i = q1 to q3 do
    put i '='
  done;
  put lw '|';
  put hw '|';
  put q1 '[';
  put q3 ']';
  put med '#';
  List.iter (fun o -> put (pos o) 'o') b.Stats.outliers;
  Printf.sprintf "%-10s %s" label (Bytes.to_string lane)

let bar ~label ~value ~max_value ~width =
  let frac = if max_value > 0.0 then value /. max_value else 0.0 in
  let n = int_of_float (Float.round (frac *. float_of_int width)) in
  let n = min width (max 0 n) in
  Printf.sprintf "%-20s %s %s" label (String.make n '#') (pct value)
