module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Prng = Satin_engine.Prng
module Stats = Satin_engine.Stats
module Trace = Satin_engine.Trace
module Platform = Satin_hw.Platform
module Cpu = Satin_hw.Cpu
module Monitor = Satin_hw.Monitor
module Cycle_model = Satin_hw.Cycle_model
module Layout = Satin_kernel.Layout
module Hash = Satin_introspect.Hash
module Checker = Satin_introspect.Checker
module Areas = Satin_introspect.Area
module Satin_def = Satin_introspect.Satin
module Baseline = Satin_introspect.Baseline
module Round = Satin_introspect.Round
module Cache = Satin_cache.Cache
module Cache_policy = Satin_cache.Policy
module Kprober = Satin_attack.Kprober
module Cache_prober = Satin_attack.Cache_prober
module Rootkit = Satin_attack.Rootkit
module Evader = Satin_attack.Evader
module Unixbench = Satin_workload.Unixbench
module Runner = Satin_runner.Runner
module Obs = Satin_obs.Obs
module Memo = Satin_store.Memo

let sec = Sim_time.to_sec_f

(* Seed-derivation scheme for parallel trials: trial [i] of an experiment
   seeded [s] always runs from [Prng.derive s i], whatever domain executes
   it, so jobs=1 and jobs=N produce byte-identical reports. *)
let derive = Prng.derive

(* Every fan-out below goes through [Memo.map]: with no store installed it
   is exactly [Runner.map]; with one, resolved trials are served from disk
   and only misses hit the pool. The [~config] list must name every runtime
   parameter the trial body reads besides (seed, trial_index) — that list,
   canonically encoded, is what keeps two differently-parameterized trials
   from colliding in the store. *)
let keyf = Satin_store.Key.f

(* ------------------------------------------------------------------ *)
(* E1 — world-switch latency                                           *)
(* ------------------------------------------------------------------ *)

type e1_result = { e1_a53 : Stats.t; e1_a57 : Stats.t; e1_runs : int }

(* Trial 0 samples the A53 cluster, trial 1 the A57 cluster, each on its own
   independently-seeded platform. *)
let e1_trial ~seed ~runs ~trial_index =
  let platform = Platform.juno_r1 ~seed:(derive seed trial_index) () in
  let core = if trial_index = 0 then 0 else 4 in
  let stats = Stats.create () in
  for _ = 1 to runs do
    Stats.add_time stats
      (Monitor.payload_start_delay platform.Platform.monitor
         ~cpu:(Platform.core platform core))
  done;
  stats

let run_e1 ?(pool = Runner.sequential) ?(seed = 42) ?(runs = 50) () =
  match
    Memo.map pool ~experiment:"e1" ~seed
      ~config:[ ("runs", string_of_int runs) ]
      2
      (fun i -> e1_trial ~seed ~runs ~trial_index:i)
  with
  | [| a53; a57 |] -> { e1_a53 = a53; e1_a57 = a57; e1_runs = runs }
  | _ -> assert false

let print_e1 fmt r =
  Format.fprintf fmt "%s"
    (Report.section
       (Printf.sprintf "E1: world-switch latency Ts_switch (%d runs, s)"
          r.e1_runs));
  Format.fprintf fmt "%s"
    (Report.table
       ~header:[ "Core"; "Average"; "Max"; "Min" ]
       [
         [ "A53"; Report.sci (Stats.mean r.e1_a53); Report.sci (Stats.max r.e1_a53);
           Report.sci (Stats.min r.e1_a53) ];
         [ "A57"; Report.sci (Stats.mean r.e1_a57); Report.sci (Stats.max r.e1_a57);
           Report.sci (Stats.min r.e1_a57) ];
       ]);
  Format.fprintf fmt "paper: 2.38e-06 .. 3.60e-06 s on both core types@."

(* ------------------------------------------------------------------ *)
(* Table I — per-byte introspection cost                               *)
(* ------------------------------------------------------------------ *)

type table1_row = {
  t1_core : Cycle_model.core_type;
  t1_hash : Stats.t;
  t1_snapshot : Stats.t;
}

type table1_result = { t1_rows : table1_row list; t1_verified_clean : bool }

(* Trial 0 = A53 row, trial 1 = A57 row, each from its own derived Prng. *)
let table1_trial ~seed ~runs ~trial_index =
  let core = if trial_index = 0 then Cycle_model.A53 else Cycle_model.A57 in
  let prng = Prng.create (derive seed trial_index) in
  let cycle = Cycle_model.default in
  let n = Layout.paper_total_size in
  let per_byte triple =
    let stats = Stats.create () in
    for _ = 1 to runs do
      let d = Cycle_model.per_byte_duration prng triple ~bytes:n in
      Stats.add stats (sec d /. float_of_int n)
    done;
    stats
  in
  {
    t1_core = core;
    t1_hash = per_byte (cycle.Cycle_model.hash_1byte core);
    t1_snapshot = per_byte (cycle.Cycle_model.snapshot_1byte core);
  }

let run_table1 ?(pool = Runner.sequential) ?(seed = 42) ?(runs = 50) () =
  let rows =
    Memo.map pool ~experiment:"table1" ~seed
      ~config:[ ("runs", string_of_int runs) ]
      2
      (fun i -> table1_trial ~seed ~runs ~trial_index:i)
  in
  (* Functional check: a real hash over the installed image matches its
     enrolled value on a quiescent system. *)
  let n = Layout.paper_total_size in
  let scenario = Scenario.create ~seed () in
  let base = Layout.base scenario.Scenario.kernel.Satin_kernel.Kernel.layout in
  let enrolled = Checker.enroll scenario.Scenario.checker ~base ~len:n in
  let rehash =
    Hash.hash_region Hash.Djb2 scenario.Scenario.platform.Platform.memory
      ~world:Satin_hw.World.Secure ~addr:base ~len:n
  in
  {
    t1_rows = Array.to_list rows;
    t1_verified_clean = Int64.equal enrolled rehash;
  }

let print_table1 fmt r =
  Format.fprintf fmt "%s"
    (Report.section "Table I: secure world introspection time (s/byte)");
  let rows =
    List.concat_map
      (fun row ->
        let name = Cycle_model.core_type_to_string row.t1_core in
        [
          [ name ^ "-Average"; Report.sci (Stats.mean row.t1_hash);
            Report.sci (Stats.mean row.t1_snapshot) ];
          [ name ^ "-Max"; Report.sci (Stats.max row.t1_hash);
            Report.sci (Stats.max row.t1_snapshot) ];
          [ name ^ "-Min"; Report.sci (Stats.min row.t1_hash);
            Report.sci (Stats.min row.t1_snapshot) ];
        ])
      r.t1_rows
  in
  Format.fprintf fmt "%s"
    (Report.table ~header:[ "Core-Time"; "Hash 1-Byte"; "Snapshot 1-byte" ] rows);
  Format.fprintf fmt
    "integrity check on quiescent image: %s@.paper: A53 hash avg 1.07e-08, A57 hash avg 6.71e-09; direct hash beats snapshot@."
    (if r.t1_verified_clean then "hash matches enrolled value" else "MISMATCH")

(* ------------------------------------------------------------------ *)
(* E3 — attacker recovery time                                         *)
(* ------------------------------------------------------------------ *)

type e3_result = { e3_a53 : Stats.t; e3_a57 : Stats.t }

let measure_recovery ~seed ~runs ~cleanup_core =
  let scenario = Scenario.create ~seed () in
  let rootkit = Rootkit.create scenario.Scenario.kernel ~cleanup_core () in
  let stats = Stats.create () in
  Rootkit.arm rootkit;
  for _ = 1 to runs do
    Rootkit.start_hide rootkit ();
    Scenario.run_for scenario (Sim_time.ms 20);
    (match Rootkit.last_hide_duration rootkit with
    | Some d -> Stats.add_time stats d
    | None -> failwith "E3: hide did not complete");
    Rootkit.start_rearm rootkit ();
    Scenario.run_for scenario (Sim_time.ms 20)
  done;
  stats

(* Trial 0 cleans up on an A53, trial 1 on an A57; each campaign already
   builds its own scenario, so the bodies parallelize as-is. *)
let e3_trial ~seed ~runs ~trial_index =
  if trial_index = 0 then measure_recovery ~seed ~runs ~cleanup_core:0
  else measure_recovery ~seed:(seed + 1) ~runs ~cleanup_core:4

let run_e3 ?(pool = Runner.sequential) ?(seed = 42) ?(runs = 50) () =
  match
    Memo.map pool ~experiment:"e3" ~seed
      ~config:[ ("runs", string_of_int runs) ]
      2
      (fun i -> e3_trial ~seed ~runs ~trial_index:i)
  with
  | [| a53; a57 |] -> { e3_a53 = a53; e3_a57 = a57 }
  | _ -> assert false

let print_e3 fmt r =
  Format.fprintf fmt "%s"
    (Report.section "E3: attacker trace-recovery time Tns_recover (s)");
  Format.fprintf fmt "%s"
    (Report.table
       ~header:[ "Cleanup core"; "Average"; "Max"; "Min" ]
       [
         [ "A53"; Report.sci (Stats.mean r.e3_a53); Report.sci (Stats.max r.e3_a53);
           Report.sci (Stats.min r.e3_a53) ];
         [ "A57"; Report.sci (Stats.mean r.e3_a57); Report.sci (Stats.max r.e3_a57);
           Report.sci (Stats.min r.e3_a57) ];
       ]);
  Format.fprintf fmt "paper: A53 avg 5.80e-03 s, A57 avg 4.96e-03 s@."

(* ------------------------------------------------------------------ *)
(* E2b — user-level prober responsiveness (§III-B1)                    *)
(* ------------------------------------------------------------------ *)

type uprober_result = {
  up_delays : Stats.t;
  up_trials : int;
  up_detected : int;
  up_check_duration_s : float;
}

(* One trial: a fresh scenario with a busy fair scheduler, a deployed
   user-level prober, and a full-kernel check started 30 ms into a probing
   round on core [trial_index mod ncores] (the probe threads are mid-burst).
   Returns the entry→report delay (None if the prober missed or the core was
   unavailable) and, on A57 trials, the duration of the full-kernel check
   (the paper's 8.04e-2 s comparison point). *)
let uprober_trial ~seed ~trial_index =
  let scenario = Scenario.create ~seed:(derive seed trial_index) () in
  let platform = scenario.Scenario.platform in
  let engine = Scenario.engine scenario in
  (* Background CFS load so the probe threads ride a busy fair scheduler. *)
  for core = 0 to Platform.ncores platform - 1 do
    ignore (Satin_kernel.Kernel.spawn_spinner scenario.Scenario.kernel ~core)
  done;
  let period = Satin_attack.Uprober.default_config.Satin_attack.Uprober.period in
  let prober =
    Satin_attack.Uprober.deploy scenario.Scenario.kernel
      Satin_attack.Uprober.default_config
  in
  let layout = scenario.Scenario.kernel.Satin_kernel.Kernel.layout in
  let kbase = Layout.base layout and klen = Layout.total_size layout in
  ignore (Checker.enroll scenario.Scenario.checker ~base:kbase ~len:klen);
  let core = trial_index mod Platform.ncores platform in
  let boundary =
    Sim_time.scale period (float_of_int ((Engine.now engine / period) + 2))
  in
  Engine.run_until engine (Sim_time.add boundary (Sim_time.ms 30));
  let cpu = Platform.core platform core in
  let result =
    if Cpu.in_secure cpu then (None, None)
    else begin
      let entry = Engine.now engine in
      Monitor.enter_secure platform.Satin_hw.Platform.monitor ~cpu
        ~payload:(fun () ->
          Checker.start_scan scenario.Scenario.checker ~engine ~core:cpu
            ~base:kbase ~len:klen
            ~on_verdict:(fun _ -> ()))
        ();
      (* Wait for the prober to flag this core (or give up after 1 s). *)
      let deadline = Sim_time.add boundary (Sim_time.s 1) in
      let rec wait () =
        if
          (not (Satin_attack.Uprober.suspected prober ~core))
          && Engine.now engine < deadline
        then begin
          Engine.run_until engine (Sim_time.add (Engine.now engine) (Sim_time.ms 1));
          wait ()
        end
      in
      wait ();
      let delay =
        Option.map
          (fun d -> sec (Sim_time.diff d.Kprober.det_time entry))
          (List.find_opt
             (fun d -> d.Kprober.det_core = core && d.Kprober.det_time >= entry)
             (Satin_attack.Uprober.detections prober))
      in
      let check_duration =
        if Cpu.core_type cpu = Cycle_model.A57 then begin
          Engine.run_until engine
            (Sim_time.add (Engine.now engine) (Sim_time.ms 200));
          match (Cpu.last_exit_time cpu, Cpu.last_entry_time cpu) with
          | Some ex, Some en -> Some (sec (Sim_time.diff ex en))
          | _ -> None
        end
        else None
      in
      (delay, check_duration)
    end
  in
  Satin_attack.Uprober.retire prober;
  result

let run_uprober ?(pool = Runner.sequential) ?(seed = 42) ?(trials = 20) () =
  (* No [~config]: a trial depends on (seed, trial_index) alone, so a
     20-trial campaign resumes the records of an earlier 6-trial one. *)
  let results =
    Memo.map pool ~experiment:"uprober" ~seed trials (fun i ->
        uprober_trial ~seed ~trial_index:i)
  in
  let delays = Stats.create () in
  let detected = ref 0 in
  let check_duration = ref 0.0 in
  Array.iter
    (fun (delay, dur) ->
      (match delay with
      | Some d ->
          incr detected;
          Stats.add delays d
      | None -> ());
      match dur with
      | Some d when !check_duration = 0.0 -> check_duration := d
      | _ -> ())
    results;
  {
    up_delays = delays;
    up_trials = trials;
    up_detected = !detected;
    up_check_duration_s = !check_duration;
  }

let print_uprober fmt r =
  Format.fprintf fmt "%s"
    (Report.section "E2b: user-level prober responsiveness (Sec III-B1)");
  Format.fprintf fmt "%s"
    (Report.table
       ~header:[ "Quantity"; "Measured"; "Paper" ]
       [
         [ "kernel checks probed";
           Printf.sprintf "%d / %d" r.up_detected r.up_trials; "detects" ];
         [ "entry -> user-prober report (avg s)";
           (if Stats.is_empty r.up_delays then "n/a"
            else Report.sci (Stats.mean r.up_delays));
           "< 5.97e-03" ];
         [ "report delay (max s)";
           (if Stats.is_empty r.up_delays then "n/a"
            else Report.sci (Stats.max r.up_delays));
           "< 5.97e-03" ];
         [ "one full-kernel check on an A57 (s)"; Report.sci r.up_check_duration_s;
           "8.04e-02" ];
       ]);
  Format.fprintf fmt
    "the stealthy user-level prober comfortably outpaces a full-kernel check@."

(* ------------------------------------------------------------------ *)
(* Table II / Figure 4 — probing threshold                             *)
(* ------------------------------------------------------------------ *)

type table2_row = { t2_period_s : float; t2_thresholds : Stats.t }

type table2_result = { t2_rows : table2_row list; t2_rounds : int }

let measure_thresholds ~seed ~rounds ~period ~watched =
  let scenario = Scenario.create ~seed () in
  let config =
    { Kprober.default_config with period; watched_cores = watched; threshold = infinity }
  in
  let prober = Kprober.deploy scenario.Scenario.kernel config in
  Kprober.set_record_lateness prober true;
  let warmup = 2 in
  Scenario.run_for scenario (Sim_time.scale period (float_of_int (rounds + warmup + 1)));
  Kprober.retire prober;
  (* Per probing round, the threshold is the largest lateness any comparer
     computed in that round (§IV-B2). *)
  let maxima = Hashtbl.create 64 in
  Trace.iter
    (fun time (_, lateness) ->
      let window = time / period in
      let cur = try Hashtbl.find maxima window with Not_found -> neg_infinity in
      if lateness > cur then Hashtbl.replace maxima window lateness)
    (Kprober.lateness_trace prober);
  let stats = Stats.create () in
  let windows = Hashtbl.fold (fun w v acc -> (w, v) :: acc) maxima [] in
  let windows = List.sort compare windows in
  List.iteri
    (fun i (_, v) -> if i >= warmup && i < warmup + rounds then Stats.add stats v)
    windows;
  stats

let default_periods = [ 8.0; 16.0; 30.0; 120.0; 300.0 ]

(* Each probing period is an independent trial: its own scenario, seeded
   [seed + 17 * trial_index] exactly as the sequential version always was, so
   pooled runs reproduce the sequential rows byte for byte. *)
let table2_trial ~seed ~rounds ~periods ~trial_index =
  let p = periods.(trial_index) in
  {
    t2_period_s = p;
    t2_thresholds =
      measure_thresholds
        ~seed:(seed + (17 * trial_index))
        ~rounds ~period:(Sim_time.of_sec_f p) ~watched:[];
  }

let run_table2 ?(pool = Runner.sequential) ?(seed = 42) ?(rounds = 50)
    ?(periods_s = default_periods) () =
  let periods = Array.of_list periods_s in
  let rows =
    Memo.map pool ~experiment:"table2" ~seed
      ~config:[ ("rounds", string_of_int rounds) ]
      ~trial_config:(fun i -> [ ("period_s", keyf periods.(i)) ])
      (Array.length periods)
      (fun i -> table2_trial ~seed ~rounds ~periods ~trial_index:i)
  in
  { t2_rows = Array.to_list rows; t2_rounds = rounds }

let print_table2 fmt r =
  Format.fprintf fmt "%s"
    (Report.section
       (Printf.sprintf "Table II: probing threshold on multi-core (%d rounds, s)"
          r.t2_rounds));
  Format.fprintf fmt "%s"
    (Report.table
       ~header:[ "Probing Period"; "Average"; "Max"; "Min" ]
       (List.map
          (fun row ->
            [
              Printf.sprintf "%g s" row.t2_period_s;
              Report.sci (Stats.mean row.t2_thresholds);
              Report.sci (Stats.max row.t2_thresholds);
              Report.sci (Stats.min row.t2_thresholds);
            ])
          r.t2_rows));
  Format.fprintf fmt
    "paper: avg 2.61e-04 (8 s) rising to 6.61e-04 (300 s); max ~1.8e-03@."

let print_fig4 fmt r =
  Format.fprintf fmt "%s"
    (Report.section "Figure 4: KProber probing threshold stability (boxplots)");
  let hi =
    List.fold_left
      (fun acc row -> Float.max acc (Stats.max row.t2_thresholds))
      0.0 r.t2_rows
  in
  List.iter
    (fun row ->
      Format.fprintf fmt "%s@."
        (Report.boxplot_row
           ~label:(Printf.sprintf "%gs" row.t2_period_s)
           (Stats.boxplot row.t2_thresholds)
           ~width:64 ~lo:0.0 ~hi))
    r.t2_rows;
  Format.fprintf fmt "scale: 0 .. %s s@." (Report.sci hi)

(* ------------------------------------------------------------------ *)
(* E6 — single-core probing                                            *)
(* ------------------------------------------------------------------ *)

type e6_result = { e6_all_avg : float; e6_single_avg : float; e6_ratio : float }

(* Trial 0 probes all six cores; trial 1 pins one Reporter on the target core
   and Reporter+Comparer on another (§IV-A1's single-core probing setup).
   Seeds match the historical sequential derivation. *)
let e6_trial ~seed ~rounds ~trial_index =
  let period = Sim_time.s 8 in
  if trial_index = 0 then measure_thresholds ~seed ~rounds ~period ~watched:[]
  else measure_thresholds ~seed:(seed + 1) ~rounds ~period ~watched:[ 0; 1 ]

let run_e6 ?(pool = Runner.sequential) ?(seed = 42) ?(rounds = 50) () =
  match
    Memo.map pool ~experiment:"e6" ~seed
      ~config:[ ("rounds", string_of_int rounds) ]
      2
      (fun i -> e6_trial ~seed ~rounds ~trial_index:i)
  with
  | [| all; single |] ->
      let e6_all_avg = Stats.mean all and e6_single_avg = Stats.mean single in
      { e6_all_avg; e6_single_avg; e6_ratio = e6_single_avg /. e6_all_avg }
  | _ -> assert false

let print_e6 fmt r =
  Format.fprintf fmt "%s"
    (Report.section "E6: probing one core vs all cores (8 s period)");
  Format.fprintf fmt "%s"
    (Report.table
       ~header:[ "Setup"; "Average threshold" ]
       [
         [ "all 6 cores"; Report.sci r.e6_all_avg ];
         [ "single core"; Report.sci r.e6_single_avg ];
         [ "ratio single/all"; Printf.sprintf "%.2f" r.e6_ratio ];
       ]);
  Format.fprintf fmt
    "paper: single-core threshold ~1/4 of all-core -> fixed introspection affinity is easier to probe@."

(* ------------------------------------------------------------------ *)
(* E7 — race-condition analysis                                        *)
(* ------------------------------------------------------------------ *)

type e7_result = {
  e7_params : Race.params;
  e7_s_bound : int;
  e7_kernel_size : int;
  e7_unprotected : float;
}

let run_e7 () =
  let p = Race.paper_worst_case in
  let n = Layout.paper_total_size in
  {
    e7_params = p;
    e7_s_bound = Race.s_bound p;
    e7_kernel_size = n;
    e7_unprotected = Race.unprotected_fraction p ~kernel_size:n;
  }

let print_e7 fmt r =
  Format.fprintf fmt "%s" (Report.section "E7: race-condition analysis (Sec IV-C)");
  let p = r.e7_params in
  Format.fprintf fmt "%s"
    (Report.table
       ~header:[ "Parameter"; "Value" ]
       [
         [ "Ts_switch"; Report.sci p.Race.ts_switch ];
         [ "Ts_1byte (A57 fastest)"; Report.sci p.Race.ts_1byte ];
         [ "Tns_sched"; Report.sci p.Race.tns_sched ];
         [ "Tns_threshold (worst)"; Report.sci p.Race.tns_threshold ];
         [ "Tns_recover (worst)"; Report.sci p.Race.tns_recover ];
         [ "S bound (Eq. 2)"; string_of_int r.e7_s_bound ];
         [ "kernel size"; string_of_int r.e7_kernel_size ];
         [ "unprotected fraction"; Printf.sprintf "%.1f%%" (100.0 *. r.e7_unprotected) ];
       ]);
  Format.fprintf fmt "paper: S <= 1218351 bytes, ~90%% of the kernel unprotected@."

(* ------------------------------------------------------------------ *)
(* E8 — TZ-Evader vs PKM-style full-kernel introspection               *)
(* ------------------------------------------------------------------ *)

type e8_campaign = {
  e8_rounds : int;
  e8_detections : int;
  e8_evasions : int;
  e8_uptime_fraction : float;
  e8_reaction : Stats.t;
}

type e8_result = { e8_deep : e8_campaign; e8_shallow : e8_campaign }

let evader_config_fast target_addr =
  {
    Evader.default_config with
    prober = { Kprober.default_config with period = Sim_time.us 1000 };
    target_addr;
  }

let run_e8_campaign ~seed ~duration_s ~target_addr =
  let scenario = Scenario.create ~seed () in
  let baseline =
    Scenario.install_baseline scenario
      {
        Baseline.timing = Baseline.Random_period (Sim_time.s 8);
        core_choice = Baseline.Random_core;
      }
  in
  let evader = Evader.deploy scenario.Scenario.kernel (evader_config_fast target_addr) in
  Evader.start evader;
  let span = Sim_time.s duration_s in
  Scenario.run_for scenario span;
  Baseline.stop baseline;
  Evader.stop evader;
  let reaction = Stats.create () in
  List.iter (Stats.add reaction) (Evader.hide_reaction_times evader);
  {
    e8_rounds = Baseline.rounds_count baseline;
    e8_detections = Baseline.detections baseline;
    e8_evasions = Evader.evasions evader;
    e8_uptime_fraction =
      sec (Rootkit.attack_uptime (Evader.rootkit evader)) /. sec span;
    e8_reaction = reaction;
  }

(* Trial 0: GETTID hijack deep in the unprotected zone; trial 1: IRQ-vector
   hijack near the image start. Seeds match the historical sequential run. *)
let e8_trial ~seed ~duration_s ~trial_index =
  if trial_index = 0 then run_e8_campaign ~seed ~duration_s ~target_addr:None
  else
    let layout = Layout.paper_layout () in
    let vec = Layout.vector_table layout in
    run_e8_campaign ~seed:(seed + 1) ~duration_s
      ~target_addr:(Some (vec.Layout.sym_addr + 0x280))

let run_e8 ?(pool = Runner.sequential) ?(seed = 42) ?(duration_s = 400) () =
  match
    Memo.map pool ~experiment:"e8" ~seed
      ~config:[ ("duration_s", string_of_int duration_s) ]
      2
      (fun i -> e8_trial ~seed ~duration_s ~trial_index:i)
  with
  | [| deep; shallow |] -> { e8_deep = deep; e8_shallow = shallow }
  | _ -> assert false

let print_e8_campaign fmt label c =
  Format.fprintf fmt "%s"
    (Report.table
       ~header:[ label; "value" ]
       [
         [ "full-kernel scans"; string_of_int c.e8_rounds ];
         [ "defender detections"; string_of_int c.e8_detections ];
         [ "attacker hides completed"; string_of_int c.e8_evasions ];
         [ "attack uptime"; Printf.sprintf "%.1f%%" (100.0 *. c.e8_uptime_fraction) ];
         [ "entry->hidden (avg s)";
           (if Stats.is_empty c.e8_reaction then "n/a"
            else Report.sci (Stats.mean c.e8_reaction)) ];
       ])

let print_e8 fmt r =
  Format.fprintf fmt "%s"
    (Report.section
       "E8: TZ-Evader vs existing asynchronous introspection (random core+time, full scan)");
  print_e8_campaign fmt "GETTID hijack (45% deep: inside the ~90% unprotected zone)" r.e8_deep;
  Format.pp_print_newline fmt ();
  print_e8_campaign fmt "IRQ-vector hijack (image start: inside the ~10% protected zone)"
    r.e8_shallow;
  Format.fprintf fmt
    "paper: the evasion defeats existing introspection whenever the trace lies beyond the S bound@."

(* ------------------------------------------------------------------ *)
(* E9 — area partition                                                 *)
(* ------------------------------------------------------------------ *)

type e9_result = {
  e9_count : int;
  e9_total : int;
  e9_max : int;
  e9_min : int;
  e9_bound : int;
  e9_all_below_bound : bool;
  e9_greedy_count : int;
  e9_syscall_area : int;
}

let run_e9 () =
  let layout = Layout.paper_layout () in
  let areas = Areas.of_layout layout in
  let bound = Race.s_bound Race.paper_worst_case in
  let greedy = Areas.partition layout ~bound in
  {
    e9_count = List.length areas;
    e9_total = Areas.total_size areas;
    e9_max = Areas.max_size areas;
    e9_min = Areas.min_size areas;
    e9_bound = bound;
    e9_all_below_bound = List.for_all (fun a -> a.Areas.size < bound) areas;
    e9_greedy_count = List.length greedy;
    e9_syscall_area =
      Layout.area_index_of_addr layout (Layout.syscall_table layout).Layout.sym_addr;
  }

let print_e9 fmt r =
  Format.fprintf fmt "%s" (Report.section "E9: kernel area partition (Sec VI-A2)");
  Format.fprintf fmt "%s"
    (Report.table
       ~header:[ "Quantity"; "Value"; "Paper" ]
       [
         [ "areas"; string_of_int r.e9_count; "19" ];
         [ "total bytes"; string_of_int r.e9_total; "11916240" ];
         [ "largest area"; string_of_int r.e9_max; "876616" ];
         [ "smallest area"; string_of_int r.e9_min; "431360" ];
         [ "size bound"; string_of_int r.e9_bound; "1218351" ];
         [ "all areas < bound"; string_of_bool r.e9_all_below_bound; "true" ];
         [ "greedy partition areas"; string_of_int r.e9_greedy_count; "-" ];
         [ "sys_call_table area"; string_of_int r.e9_syscall_area; "14" ];
       ])

(* ------------------------------------------------------------------ *)
(* E10 — SATIN defeating TZ-Evader                                     *)
(* ------------------------------------------------------------------ *)

type e10_result = {
  e10_rounds : int;
  e10_full_passes : int;
  e10_area14_checks : int;
  e10_area14_detections : int;
  e10_area14_gap_mean_s : float;
  e10_full_pass_time_s : float;
  e10_prober_reported : int;
  e10_false_negatives : int;
  e10_false_positives : int;
  e10_evasions_attempted : int;
  e10_evasions_succeeded : int;
}

(* The three single-scenario campaigns below (E10, E13, E14) have no trial
   fan-out to intercept, so each whole campaign is memoized as a one-trial
   batch on the sequential pool: same store key discipline, one record. *)
let memo_campaign ~experiment ~seed ~config body =
  match
    Memo.map Runner.sequential ~experiment ~seed ~config 1 (fun _ -> body ())
  with
  | [| r |] -> r
  | _ -> assert false

let run_e10_campaign ~seed ~target_rounds ~probe_period_us () =
  let scenario = Scenario.create ~seed () in
  let satin = Scenario.install_satin scenario () in
  let evader =
    Evader.deploy scenario.Scenario.kernel
      {
        Evader.default_config with
        prober =
          { Kprober.default_config with period = Sim_time.us probe_period_us };
      }
  in
  Evader.start evader;
  let step = Sim_time.s 10 in
  let cap = 40 * target_rounds / 19 * 19 in
  (* Safety cap on simulated seconds: ~4x the expected campaign length. *)
  let rec drive () =
    if Satin_def.rounds_count satin < target_rounds
       && sec (Scenario.now scenario) < float_of_int cap
    then begin
      Scenario.run_for scenario step;
      drive ()
    end
  in
  drive ();
  Satin_def.stop satin;
  Evader.stop evader;
  let rounds =
    List.filteri (fun i _ -> i < target_rounds) (Satin_def.rounds satin)
  in
  let syscall_area = 14 in
  let area14 = List.filter (fun r -> r.Round.area_index = syscall_area) rounds in
  let area14_detected = List.filter Round.detected area14 in
  let gaps =
    let times = List.map (fun r -> sec r.Round.started) area14 in
    let rec pair = function
      | a :: (b :: _ as rest) -> (b -. a) :: pair rest
      | [ _ ] | [] -> []
    in
    pair times
  in
  let gap_mean =
    match gaps with
    | [] -> 0.0
    | l -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)
  in
  (* Full-pass time: rounds per pass x average inter-round gap. *)
  let pass_time =
    match rounds with
    | [] | [ _ ] -> 0.0
    | first :: _ ->
        let last = List.nth rounds (List.length rounds - 1) in
        sec (Sim_time.diff last.Round.started first.Round.started)
        /. float_of_int (List.length rounds - 1)
        *. 19.0
  in
  (* Prober faithfulness: match each defender round against a probe alarm in
     [start, start+50ms]. *)
  let detections = Array.of_list (Kprober.detections (Evader.prober evader)) in
  let consumed = Array.make (Array.length detections) false in
  let reported =
    List.filter
      (fun r ->
        let s = sec r.Round.started in
        let found = ref false in
        Array.iteri
          (fun i (d : Kprober.detection) ->
            if (not !found) && not consumed.(i) then begin
              let dt = sec d.Kprober.det_time in
              if dt >= s && dt <= s +. 0.05 then begin
                consumed.(i) <- true;
                found := true
              end
            end)
          detections;
        !found)
      rounds
  in
  let horizon =
    match rounds with
    | [] -> 0.0
    | _ ->
        let last = List.nth rounds (List.length rounds - 1) in
        sec last.Round.started +. 0.05
  in
  let false_positives = ref 0 in
  Array.iteri
    (fun i (d : Kprober.detection) ->
      if (not consumed.(i)) && sec d.Kprober.det_time <= horizon then
        incr false_positives)
    detections;
  let false_positives = !false_positives in
  {
    e10_rounds = List.length rounds;
    e10_full_passes = Satin_def.full_passes satin;
    e10_area14_checks = List.length area14;
    e10_area14_detections = List.length area14_detected;
    e10_area14_gap_mean_s = gap_mean;
    e10_full_pass_time_s = pass_time;
    e10_prober_reported = List.length reported;
    e10_false_negatives = List.length rounds - List.length reported;
    e10_false_positives = false_positives;
    e10_evasions_attempted = List.length area14;
    e10_evasions_succeeded = List.length area14 - List.length area14_detected;
  }

let run_e10 ?(seed = 42) ?(target_rounds = 190) ?(probe_period_us = 500) () =
  memo_campaign ~experiment:"e10" ~seed
    ~config:
      [
        ("target_rounds", string_of_int target_rounds);
        ("probe_period_us", string_of_int probe_period_us);
      ]
    (run_e10_campaign ~seed ~target_rounds ~probe_period_us)

let print_e10 fmt r =
  Format.fprintf fmt "%s"
    (Report.section "E10: SATIN vs TZ-Evader detection campaign (Sec VI-B1)");
  Format.fprintf fmt "%s"
    (Report.table
       ~header:[ "Quantity"; "Measured"; "Paper" ]
       [
         [ "introspection rounds"; string_of_int r.e10_rounds; "190" ];
         [ "full kernel passes"; string_of_int r.e10_full_passes; "10" ];
         [ "area-14 checks"; string_of_int r.e10_area14_checks; "10" ];
         [ "area-14 detections"; string_of_int r.e10_area14_detections; "10" ];
         [ "mean gap between area-14 checks (s)";
           Printf.sprintf "%.0f" r.e10_area14_gap_mean_s; "141" ];
         [ "full-pass time (s)"; Printf.sprintf "%.0f" r.e10_full_pass_time_s; "~152" ];
         [ "rounds reported by KProber"; string_of_int r.e10_prober_reported;
           "190 (all)" ];
         [ "probe false negatives"; string_of_int r.e10_false_negatives; "0" ];
         [ "probe false positives"; string_of_int r.e10_false_positives; "0" ];
         [ "evasion attempts on area 14"; string_of_int r.e10_evasions_attempted; "10" ];
         [ "evasions succeeded"; string_of_int r.e10_evasions_succeeded; "0" ];
       ])

(* ------------------------------------------------------------------ *)
(* Figure 7 — SATIN overhead on UnixBench                              *)
(* ------------------------------------------------------------------ *)

type fig7_row = {
  f7_program : string;
  f7_deg_1task : float;
  f7_deg_6task : float;
}

type fig7_result = {
  f7_rows : fig7_row list;
  f7_avg_1task : float;
  f7_avg_6task : float;
}

(* The overhead campaign drives SATIN much harder than the detection
   campaign: one round per second (Tgoal = 19 s over 19 areas), the
   worst-case configuration a deployment that wants a 19-second detection
   horizon would run. *)
let overhead_satin_config =
  { Satin_def.default_config with t_goal = Sim_time.s 19 }

let fig7_score ~seed ~window_s ~program ~copies ~with_satin =
  let scenario = Scenario.create ~seed () in
  if with_satin then
    ignore (Scenario.install_satin scenario ~config:overhead_satin_config ());
  let inst = Unixbench.launch scenario.Scenario.kernel program ~copies () in
  Scenario.run_for scenario (Sim_time.s window_s);
  let s = Unixbench.score inst ~at:(Scenario.now scenario) in
  Unixbench.stop inst;
  s

(* Each (program, copies, satin on/off) cell is one trial with its own
   scenario at the same seed — exactly what the sequential loop always built,
   so pooled runs reproduce sequential scores byte for byte. Trials are
   flattened as program-major: [trial_index / 4] picks the program,
   [(trial_index / 2) mod 2] the copy count, [trial_index mod 2] on/off. *)
let fig7_trial ~seed ~window_s ~trial_index =
  let programs = Array.of_list Unixbench.programs in
  let program = programs.(trial_index / 4) in
  let copies = if trial_index / 2 mod 2 = 0 then 1 else 6 in
  let with_satin = trial_index mod 2 = 1 in
  fig7_score ~seed ~window_s ~program ~copies ~with_satin

let run_fig7 ?(pool = Runner.sequential) ?(seed = 42) ?(window_s = 30) () =
  let programs = Array.of_list Unixbench.programs in
  let scores =
    Memo.map pool ~experiment:"fig7" ~seed
      ~config:[ ("window_s", string_of_int window_s) ]
      ~trial_config:(fun i ->
        [
          ("program", programs.(i / 4).Unixbench.prog_name);
          ("copies", if i / 2 mod 2 = 0 then "1" else "6");
          ("satin", if i mod 2 = 1 then "1" else "0");
        ])
      (4 * Array.length programs)
      (fun i -> fig7_trial ~seed ~window_s ~trial_index:i)
  in
  let degradation ~off ~on =
    if off <= 0.0 then 0.0 else 100.0 *. (off -. on) /. off
  in
  let rows =
    List.mapi
      (fun pi p ->
        let base = 4 * pi in
        {
          f7_program = p.Unixbench.prog_name;
          f7_deg_1task =
            degradation ~off:scores.(base) ~on:scores.(base + 1);
          f7_deg_6task =
            degradation ~off:scores.(base + 2) ~on:scores.(base + 3);
        })
      (Array.to_list programs)
  in
  let avg f = List.fold_left (fun acc r -> acc +. f r) 0.0 rows /. float_of_int (List.length rows) in
  {
    f7_rows = rows;
    f7_avg_1task = avg (fun r -> r.f7_deg_1task);
    f7_avg_6task = avg (fun r -> r.f7_deg_6task);
  }

let print_fig7 fmt r =
  Format.fprintf fmt "%s"
    (Report.section "Figure 7: SATIN overhead (UnixBench, % degradation)");
  let max_v =
    List.fold_left
      (fun acc row -> Float.max acc (Float.max row.f7_deg_1task row.f7_deg_6task))
      0.0 r.f7_rows
  in
  Format.fprintf fmt "-- 1-task --@.";
  List.iter
    (fun row ->
      Format.fprintf fmt "%s@."
        (Report.bar ~label:row.f7_program ~value:row.f7_deg_1task ~max_value:max_v
           ~width:40))
    r.f7_rows;
  Format.fprintf fmt "-- 6-task --@.";
  List.iter
    (fun row ->
      Format.fprintf fmt "%s@."
        (Report.bar ~label:row.f7_program ~value:row.f7_deg_6task ~max_value:max_v
           ~width:40))
    r.f7_rows;
  Format.fprintf fmt "average: 1-task %s, 6-task %s@." (Report.pct r.f7_avg_1task)
    (Report.pct r.f7_avg_6task);
  Format.fprintf fmt
    "paper: 0.711%% (1-task), 0.848%% (6-task); worst: file copy 256B 3.556%%, context switching 3.912%%@."

(* ------------------------------------------------------------------ *)
(* E12 — the Figure 3 timeline                                         *)
(* ------------------------------------------------------------------ *)

let print_timeline fmt p =
  Format.fprintf fmt "%s"
    (Report.section "Figure 3: race between the two worlds (model timeline)");
  let s_bound = Race.s_bound p in
  let rows =
    [
      ("t_start", 0.0, "secure timer fires; core leaves the normal world");
      ("switch done", p.Race.ts_switch, "S-EL1 starts the introspection");
      ( "probe trips",
        Race.tns_delay p,
        "attacker notices the stalled core (Tns_sched + Tns_threshold)" );
      ( "hide done",
        Race.hide_time p,
        "last malicious byte restored (…+ Tns_recover)" );
      ( "front @ S bound",
        Race.scan_time p ~bytes:s_bound,
        Printf.sprintf "scan front reaches byte %d - the race horizon" s_bound );
    ]
  in
  List.iter
    (fun (label, time, desc) ->
      Format.fprintf fmt "  %-14s %-12s %s@." label (Report.sci time) desc)
    rows;
  Format.fprintf fmt
    "malicious bytes before the horizon are caught; beyond it the evasion wins (Eq. 1)@.";
  (* Why the round must be non-preemptible (Sec V-B): with a preemptive
     secure world, an interrupt storm reopens the race on the largest area. *)
  let bytes = 876_616 and handler_s = 2e-5 in
  let hz = Race.storm_to_evade p ~bytes ~handler_s in
  Format.fprintf fmt
    "if the secure world were preemptive, a %.0f Hz interrupt storm (20 us handlers)@.\
     would stretch the largest area's scan past the hide - hence SCR_EL3.IRQ = 0 (Sec V-B)@."
    hz

(* ------------------------------------------------------------------ *)
(* Ablation — which randomization defeats which attacker               *)
(* ------------------------------------------------------------------ *)

type ablation_row = {
  ab_label : string;
  ab_area14_checks : int;
  ab_area14_detections : int;
  ab_attack_uptime : float;
}

type ablation_result = { ab_rows : ablation_row list }

(* A predictive attacker for de-randomized SATIN: it knows tp (and, when
   [area_aware], the in-order area schedule), pre-hides shortly before each
   predicted wake-up and re-arms after the round. *)
let run_predictive ~scenario ~satin ~rootkit ~area_aware =
  let engine = Scenario.engine scenario in
  let tp = Satin_def.tp satin in
  let guard = Sim_time.ms 60 in
  let rearm_after = Sim_time.ms 120 in
  let round_counter = ref 0 in
  let rec schedule_for expected =
    let idx = !round_counter in
    let is_target = (not area_aware) || idx mod 19 = 14 in
    ignore
      (Engine.at engine
         ~time:(Sim_time.max (Engine.now engine) (Sim_time.sub expected guard))
         (fun () -> if is_target then Rootkit.start_hide rootkit ()));
    ignore
      (Engine.at engine
         ~time:(Sim_time.add expected rearm_after)
         (fun () ->
           incr round_counter;
           Rootkit.start_rearm rootkit ();
           schedule_for (Sim_time.add expected tp)))
  in
  schedule_for (Sim_time.add (Engine.now engine) tp)

let run_ablation_variant ~seed ~passes ~config ~attacker =
  let scenario = Scenario.create ~seed () in
  let satin = Scenario.install_satin scenario ~config () in
  let span = Sim_time.scale config.Satin_def.t_goal (float_of_int passes +. 0.5) in
  let rootkit =
    match attacker with
    | `Reactive ->
        let evader =
          Evader.deploy scenario.Scenario.kernel
            {
              Evader.default_config with
              prober =
                { Kprober.default_config with period = Sim_time.us 1000 };
            }
        in
        Evader.start evader;
        Evader.rootkit evader
    | `Predictive area_aware ->
        let rootkit = Rootkit.create scenario.Scenario.kernel ~cleanup_core:0 () in
        Rootkit.arm rootkit;
        run_predictive ~scenario ~satin ~rootkit ~area_aware;
        rootkit
  in
  Scenario.run_for scenario span;
  Satin_def.stop satin;
  let rounds = Satin_def.rounds satin in
  let area14 = List.filter (fun r -> r.Round.area_index = 14) rounds in
  {
    ab_label = "";
    ab_area14_checks = List.length area14;
    ab_area14_detections = List.length (List.filter Round.detected area14);
    ab_attack_uptime = sec (Rootkit.attack_uptime rootkit) /. sec span;
  }

(* The four de-randomization variants, each an independent trial at the
   historical [seed + k] derivation. *)
let ablation_trial ~seed ~passes ~trial_index =
  let full = Satin_def.default_config in
  let fixed_period = { full with Satin_def.randomize_period = false } in
  let fixed_all =
    {
      full with
      Satin_def.randomize_period = false;
      randomize_area = false;
      randomize_core = false;
    }
  in
  let label l r = { r with ab_label = l } in
  match trial_index with
  | 0 ->
      label "full SATIN vs reactive evader"
        (run_ablation_variant ~seed ~passes ~config:full ~attacker:`Reactive)
  | 1 ->
      label "full SATIN vs predictive evader"
        (run_ablation_variant ~seed:(seed + 1) ~passes ~config:full
           ~attacker:(`Predictive false))
  | 2 ->
      label "fixed period vs predictive evader"
        (run_ablation_variant ~seed:(seed + 2) ~passes ~config:fixed_period
           ~attacker:(`Predictive false))
  | _ ->
      label "fixed period+core+order vs area-aware evader"
        (run_ablation_variant ~seed:(seed + 3) ~passes ~config:fixed_all
           ~attacker:(`Predictive true))

let run_ablation ?(pool = Runner.sequential) ?(seed = 42) ?(passes = 3) () =
  let rows =
    Memo.map pool ~experiment:"ablation" ~seed
      ~config:[ ("passes", string_of_int passes) ]
      4
      (fun i -> ablation_trial ~seed ~passes ~trial_index:i)
  in
  { ab_rows = Array.to_list rows }

let print_ablation fmt r =
  Format.fprintf fmt "%s"
    (Report.section "Ablation: SATIN randomizations vs attacker knowledge");
  Format.fprintf fmt "%s"
    (Report.table
       ~header:[ "Variant"; "area-14 checks"; "detected"; "attack uptime" ]
       (List.map
          (fun row ->
            [
              row.ab_label;
              string_of_int row.ab_area14_checks;
              string_of_int row.ab_area14_detections;
              Printf.sprintf "%.1f%%" (100.0 *. row.ab_attack_uptime);
            ])
          r.ab_rows))

(* ------------------------------------------------------------------ *)
(* E13 — cross-view detection of DKOM process hiding                   *)
(* ------------------------------------------------------------------ *)

type e13_result = {
  e13_checks : int;
  e13_detections : int;
  e13_relinks : int;
  e13_walk_cost : Stats.t;
  e13_hidden_fraction : float;
}

let run_e13_campaign ~seed ~checks () =
  let scenario = Scenario.create ~seed () in
  let platform = scenario.Scenario.platform in
  let engine = Scenario.engine scenario in
  (* Kernel heap with a population of processes; pid 1337 is the malware. *)
  let table =
    Satin_kernel.Proc_table.create ~memory:platform.Platform.memory
      ~base:(16 * 1024 * 1024) ~capacity:128
  in
  for pid = 1 to 60 do
    Satin_kernel.Proc_table.spawn table ~pid ~runnable:(pid mod 3 <> 0) ()
  done;
  Satin_kernel.Proc_table.spawn table ~pid:1337 ();
  let rootkit =
    Satin_attack.Dkom_rootkit.deploy scenario.Scenario.kernel table ~pid:1337
      ~prober_config:
        { Kprober.default_config with period = Sim_time.ms 1 }
  in
  Satin_attack.Dkom_rootkit.start rootkit;
  let prng = Platform.split_prng platform in
  let walk_cost = Stats.create () in
  let detections = ref 0 in
  let performed = ref 0 in
  (* Sample the hidden/visible duty cycle between checks. *)
  let hidden_samples = ref 0 and samples = ref 0 in
  ignore
    (Engine.every engine ~period:(Sim_time.ms 50) (fun () ->
         incr samples;
         if not (Satin_kernel.Proc_table.tasks_linked table ~pid:1337) then
           incr hidden_samples));
  (* The defense: a cross-view pass every ~2 s on a random core, activated
     by the secure timer like every other secure service. *)
  let defense_prng = Platform.split_prng platform in
  let rec do_check n =
    if n < checks then begin
      let delay = Sim_time.of_sec_f (Prng.uniform defense_prng 1.0 3.0) in
      Scenario.run_for scenario delay;
      let core =
        Platform.core platform (Prng.int defense_prng (Platform.ncores platform))
      in
      if Cpu.in_secure core then do_check n
      else begin
        incr performed;
        Monitor.enter_secure platform.Platform.monitor ~cpu:core
          ~payload:(fun () ->
            let report = Satin_introspect.Dkom.check table ~prng in
            Stats.add_time walk_cost report.Satin_introspect.Dkom.duration;
            if Satin_introspect.Dkom.hidden report then incr detections;
            report.Satin_introspect.Dkom.duration)
          ();
        Scenario.run_for scenario (Sim_time.ms 100);
        do_check (n + 1)
      end
    end
  in
  do_check 0;
  Satin_attack.Dkom_rootkit.stop rootkit;
  {
    e13_checks = !performed;
    e13_detections = !detections;
    e13_relinks = Satin_attack.Dkom_rootkit.relinks rootkit;
    e13_walk_cost = walk_cost;
    e13_hidden_fraction =
      (if !samples = 0 then 0.0
       else float_of_int !hidden_samples /. float_of_int !samples);
  }

let run_e13 ?(seed = 42) ?(checks = 30) () =
  memo_campaign ~experiment:"e13" ~seed
    ~config:[ ("checks", string_of_int checks) ]
    (run_e13_campaign ~seed ~checks)

let print_e13 fmt r =
  Format.fprintf fmt "%s"
    (Report.section
       "E13: cross-view introspection vs DKOM process hiding (beyond the paper)");
  Format.fprintf fmt "%s"
    (Report.table
       ~header:[ "Quantity"; "Value" ]
       [
         [ "cross-view checks"; string_of_int r.e13_checks ];
         [ "hidden process detected"; string_of_int r.e13_detections ];
         [ "attacker relinks (evasion attempts)"; string_of_int r.e13_relinks ];
         [ "walk cost (avg s)";
           (if Stats.is_empty r.e13_walk_cost then "n/a"
            else Report.sci (Stats.mean r.e13_walk_cost)) ];
         [ "time hidden from tasks-list tools";
           Printf.sprintf "%.1f%%" (100.0 *. r.e13_hidden_fraction) ];
       ]);
  Format.fprintf fmt
    "a cross-view pass holds the core for ~2e-05 s: below the probing threshold,@.\
     so the attacker never even notices the checks (0 relinks) and is seen every time@."

(* ------------------------------------------------------------------ *)
(* E14 — SATIN vs a cache-occupancy side-channel evader                *)
(* ------------------------------------------------------------------ *)

type e14_result = {
  e14_rounds : int;
  e14_area14_checks : int;
  e14_area14_detections : int;
  e14_reaction : Stats.t;
  e14_false_alarms : int;
  e14_wasted_hides : int;
  e14_uptime_fraction : float;
}

let run_e14_campaign ~seed ~passes () =
  let scenario = Scenario.create ~seed () in
  let t_goal = Sim_time.s 76 in
  let satin =
    Scenario.install_satin scenario
      ~config:{ Satin_def.default_config with Satin_def.t_goal } ()
  in
  let kernel = scenario.Scenario.kernel in
  let rootkit = Rootkit.create kernel ~cleanup_core:0 () in
  let prober =
    Satin_attack.Cache_prober.deploy kernel Satin_attack.Cache_prober.default_config
  in
  let engine = Scenario.engine scenario in
  let reaction = Stats.create () in
  let wasted = ref 0 in
  let rearm_pending = ref None in
  let cancel_rearm () =
    match !rearm_pending with
    | Some h ->
        Engine.cancel engine h;
        rearm_pending := None
    | None -> ()
  in
  (* The cache channel cannot tell noise from introspection: every alarm
     triggers a hide. *)
  Satin_attack.Cache_prober.on_suspect prober
    (fun (d : Satin_attack.Cache_prober.detection) ->
      cancel_rearm ();
      if Rootkit.is_armed rootkit then begin
        if d.Satin_attack.Cache_prober.det_noise then incr wasted;
        let entry =
          (* earliest in-progress secure entry, for the reaction metric;
             alarms without one are noise *)
          Array.fold_left
            (fun acc core ->
              match Cpu.last_entry_time core with
              | Some e when Cpu.in_secure core -> (
                  match acc with Some a -> Some (Sim_time.min a e) | None -> Some e)
              | _ -> acc)
            None scenario.Scenario.platform.Platform.cores
        in
        Rootkit.start_hide rootkit
          ~on_hidden:(fun () ->
            match entry with
            | Some e ->
                Stats.add reaction (sec (Sim_time.diff (Engine.now engine) e))
            | None -> ())
          ()
      end);
  let clusters_clean () =
    (not (Satin_attack.Cache_prober.suspected prober ~cluster:0))
    && not (Satin_attack.Cache_prober.suspected prober ~cluster:1)
  in
  let try_rearm () =
    cancel_rearm ();
    rearm_pending :=
      Some
        (Engine.schedule engine ~after:(Sim_time.ms 2) (fun () ->
             rearm_pending := None;
             if clusters_clean () then Rootkit.start_rearm rootkit ()))
  in
  Satin_attack.Cache_prober.on_clear prober (fun ~cluster:_ ->
      if Rootkit.state rootkit = Rootkit.Hidden then try_rearm ());
  (* Safety net: a hide that finished while the cluster already probed
     clean needs a re-arm path too. *)
  ignore
    (Engine.every engine ~period:(Sim_time.ms 10) (fun () ->
         if
           Rootkit.state rootkit = Rootkit.Hidden
           && clusters_clean ()
           && !rearm_pending = None
         then try_rearm ()));
  let span = Sim_time.scale t_goal (float_of_int passes +. 0.3) in
  Rootkit.arm rootkit;
  Scenario.run_for scenario span;
  Satin_def.stop satin;
  Satin_attack.Cache_prober.retire prober;
  let rounds = Satin_def.rounds satin in
  let area14 = List.filter (fun r -> r.Round.area_index = 14) rounds in
  {
    e14_rounds = List.length rounds;
    e14_area14_checks = List.length area14;
    e14_area14_detections = List.length (List.filter Round.detected area14);
    e14_reaction = reaction;
    e14_false_alarms = Satin_attack.Cache_prober.false_alarms prober;
    e14_wasted_hides = !wasted;
    e14_uptime_fraction = sec (Rootkit.attack_uptime rootkit) /. sec span;
  }

let run_e14 ?(seed = 42) ?(passes = 3) () =
  memo_campaign ~experiment:"e14" ~seed
    ~config:[ ("passes", string_of_int passes) ]
    (run_e14_campaign ~seed ~passes)

let print_e14 fmt r =
  Format.fprintf fmt "%s"
    (Report.section
       "E14: SATIN vs cache-occupancy side channel (Sec VI-C2, beyond the paper)");
  Format.fprintf fmt "%s"
    (Report.table
       ~header:[ "Quantity"; "Value" ]
       [
         [ "introspection rounds"; string_of_int r.e14_rounds ];
         [ "area-14 checks"; string_of_int r.e14_area14_checks ];
         [ "area-14 detections"; string_of_int r.e14_area14_detections ];
         [ "entry->hidden via cache channel (avg s)";
           (if Stats.is_empty r.e14_reaction then "n/a"
            else Report.sci (Stats.mean r.e14_reaction)) ];
         [ "benign-eviction false alarms"; string_of_int r.e14_false_alarms ];
         [ "hides wasted on noise"; string_of_int r.e14_wasted_hides ];
         [ "attack uptime"; Printf.sprintf "%.1f%%" (100.0 *. r.e14_uptime_fraction) ];
       ]);
  Format.fprintf fmt
    "the cache channel reacts ~3x faster than KProber, and SATIN still catches every check@."

(* ------------------------------------------------------------------ *)
(* Tgoal sweep — coverage/overhead tradeoff                            *)
(* ------------------------------------------------------------------ *)

type sweep_row = {
  sw_tp_s : float;
  sw_tgoal_s : float;
  sw_detect_latency : Stats.t;
  sw_overhead_pct : float;
}

type sweep_result = { sw_rows : sweep_row list }

let time_to_first_alarm ~seed ~tp_s =
  let scenario = Scenario.create ~seed () in
  let t_goal = Sim_time.of_sec_f (tp_s *. 19.0) in
  let satin =
    Scenario.install_satin scenario
      ~config:{ Satin_def.default_config with Satin_def.t_goal } ()
  in
  let evader =
    Evader.deploy scenario.Scenario.kernel
      {
        Evader.default_config with
        prober = { Kprober.default_config with period = Sim_time.ms 2 };
      }
  in
  Evader.start evader;
  let armed_at = Scenario.now scenario in
  let deadline =
    Sim_time.add armed_at (Sim_time.scale t_goal 3.0)
  in
  let rec drive () =
    if Satin_def.detections satin = 0 && Scenario.now scenario < deadline then begin
      Scenario.run_for scenario (Sim_time.ms 500);
      drive ()
    end
  in
  drive ();
  Satin_def.stop satin;
  Evader.stop evader;
  match Satin_def.alarms satin with
  | alarm :: _ -> Some (sec (Sim_time.diff alarm.Round.started armed_at))
  | [] -> None

(* One detection-latency trial: tp picked by [trial_index / trials], the
   historical [seed + trial * 31] derivation within each tp. *)
let sweep_latency_trial ~seed ~trials ~tps ~trial_index =
  let tp_s = tps.(trial_index / trials) in
  time_to_first_alarm ~seed:(seed + (trial_index mod trials * 31)) ~tp_s

(* One overhead trial: the worst-case workload (file copy 256B) at cadence
   [tps.(trial_index / 2)], with SATIN off (even index) or on (odd). *)
let sweep_score_trial ~seed ~tps ~trial_index =
  let tp_s = tps.(trial_index / 2) in
  let with_satin = trial_index mod 2 = 1 in
  let program = Unixbench.find_program "file_copy_256" in
  let t_goal_s = int_of_float (Float.round (tp_s *. 19.0)) in
  let s = Scenario.create ~seed () in
  if with_satin then
    ignore
      (Scenario.install_satin s
         ~config:
           {
             Satin_def.default_config with
             Satin_def.t_goal = Sim_time.s (max 1 t_goal_s);
           }
         ());
  let inst = Unixbench.launch s.Scenario.kernel program ~copies:1 () in
  Scenario.run_for s (Sim_time.s 20);
  Unixbench.score inst ~at:(Scenario.now s)

let run_tgoal_sweep ?(pool = Runner.sequential) ?(seed = 42) ?(trials = 4)
    ?(tps_s = [ 0.5; 1.0; 2.0; 4.0 ]) () =
  let tps = Array.of_list tps_s in
  let ntps = Array.length tps in
  let latencies =
    (* [trials] shapes the seed derivation inside the body, so it is part
       of the key alongside the trial's own cadence. *)
    Memo.map pool ~experiment:"sweep-latency" ~seed
      ~config:[ ("trials", string_of_int trials) ]
      ~trial_config:(fun i -> [ ("tp_s", keyf tps.(i / trials)) ])
      (ntps * trials)
      (fun i -> sweep_latency_trial ~seed ~trials ~tps ~trial_index:i)
  in
  let scores =
    Memo.map pool ~experiment:"sweep-score" ~seed
      ~trial_config:(fun i ->
        [
          ("tp_s", keyf tps.(i / 2));
          ("satin", if i mod 2 = 1 then "1" else "0");
        ])
      (ntps * 2)
      (fun i -> sweep_score_trial ~seed ~tps ~trial_index:i)
  in
  let rows =
    List.mapi
      (fun ti tp_s ->
        let latency = Stats.create () in
        for trial = 0 to trials - 1 do
          match latencies.((ti * trials) + trial) with
          | Some l -> Stats.add latency l
          | None -> ()
        done;
        let off = scores.(2 * ti) and on = scores.((2 * ti) + 1) in
        {
          sw_tp_s = tp_s;
          sw_tgoal_s = tp_s *. 19.0;
          sw_detect_latency = latency;
          sw_overhead_pct =
            (if off <= 0.0 then 0.0 else 100.0 *. (off -. on) /. off);
        })
      tps_s
  in
  { sw_rows = rows }

let print_tgoal_sweep fmt r =
  Format.fprintf fmt "%s"
    (Report.section
       "Tgoal sweep: detection latency vs overhead (beyond the paper)");
  Format.fprintf fmt "%s"
    (Report.table
       ~header:
         [ "tp"; "Tgoal"; "time to first alarm (avg)"; "worst-workload overhead" ]
       (List.map
          (fun row ->
            [
              Printf.sprintf "%.1f s" row.sw_tp_s;
              Printf.sprintf "%.0f s" row.sw_tgoal_s;
              (if Stats.is_empty row.sw_detect_latency then "n/a"
               else Printf.sprintf "%.1f s" (Stats.mean row.sw_detect_latency));
              Report.pct row.sw_overhead_pct;
            ])
          r.sw_rows));
  Format.fprintf fmt
    "shorter periods catch the rootkit sooner and cost proportionally more throughput@."

(* ------------------------------------------------------------------ *)
(* Fault injection — detection rate and graceful degradation           *)
(* ------------------------------------------------------------------ *)

module Fault_plan = Satin_inject.Fault_plan
module Injector = Satin_inject.Injector

(* One fault campaign: install the injector (so even the first secure-timer
   arms pass through the fault hooks), start SATIN at tp = 1 s, arm a
   persistent GETTID rootkit after enrollment, run for [window_s], and
   report what the defense managed under the perturbation. *)
type fault_trial = {
  ft_detected : bool;
  ft_latency_s : float option; (** arm -> first alarmed round's wake-up, s *)
  ft_rounds : int; (** rounds SATIN completed inside the window *)
  ft_faults : int; (** perturbations applied: drops+delays+spikes+flips *)
}

let fault_campaign_trial ~seed ~window_s plan =
  let scenario = Scenario.create ~seed () in
  let kernel = scenario.Scenario.kernel in
  let injector =
    Injector.install ~plan ~seed:(derive seed 97)
      ~platform:scenario.Scenario.platform ~kernel
      ~areas:(Areas.of_layout kernel.Satin_kernel.Kernel.layout)
  in
  let satin =
    Scenario.install_satin scenario
      ~config:{ Satin_def.default_config with Satin_def.t_goal = Sim_time.s 19 }
      ()
  in
  let rootkit = Rootkit.create kernel ~cleanup_core:0 () in
  Rootkit.arm rootkit;
  let armed_at = Scenario.now scenario in
  let first_alarm = ref None in
  Satin_def.on_round satin (fun r ->
      if Round.detected r && !first_alarm = None then
        first_alarm := Some r.Round.started);
  Scenario.run_for scenario (Sim_time.s window_s);
  Satin_def.stop satin;
  {
    ft_detected = Satin_def.detections satin > 0;
    ft_latency_s =
      Option.map (fun t -> sec (Sim_time.diff t armed_at)) !first_alarm;
    ft_rounds = Satin_def.rounds_count satin;
    ft_faults = Injector.fault_events injector;
  }

type inject_row = {
  inj_plan : string; (** {!Satin_inject.Fault_plan.to_string} of the plan *)
  inj_trials : int;
  inj_detected : int;
  inj_latency : Stats.t;
  inj_rounds : float;
  inj_faults : float;
}

type inject_result = { inj_rows : inject_row list; inj_window_s : int }

let inject_trial ~seed ~trials ~window_s ~plans ~trial_index =
  let plan = plans.(trial_index / trials) in
  fault_campaign_trial ~seed:(derive seed trial_index) ~window_s plan

let collect_fault_rows ~trials results label plans =
  List.mapi
    (fun pi plan ->
      let slice = Array.sub results (pi * trials) trials in
      let latency = Stats.create () in
      Array.iter
        (fun ft -> Option.iter (Stats.add latency) ft.ft_latency_s)
        slice;
      let mean_of f =
        Array.fold_left (fun acc ft -> acc +. float_of_int (f ft)) 0.0 slice
        /. float_of_int trials
      in
      {
        inj_plan = label plan;
        inj_trials = trials;
        inj_detected =
          Array.fold_left
            (fun acc ft -> if ft.ft_detected then acc + 1 else acc)
            0 slice;
        inj_latency = latency;
        inj_rounds = mean_of (fun ft -> ft.ft_rounds);
        inj_faults = mean_of (fun ft -> ft.ft_faults);
      })
    plans

let run_inject ?(pool = Runner.sequential) ?(seed = 42) ?(trials = 4)
    ?(window_s = 30) ?(plans = Fault_plan.catalogue) () =
  let plan_arr = Array.of_list plans in
  (* The fault plan (with its severity parameters) is part of every trial's
     key: a campaign under [Drop_timer_irqs] can never be served the clean
     [Control] record of the same seed, or vice versa. *)
  let results =
    Memo.map pool ~experiment:"inject" ~seed
      ~config:
        [ ("trials", string_of_int trials); ("window_s", string_of_int window_s) ]
      ~trial_config:(fun i ->
        [ ("plan", Fault_plan.to_string plan_arr.(i / trials)) ])
      (Array.length plan_arr * trials)
      (fun i -> inject_trial ~seed ~trials ~window_s ~plans:plan_arr ~trial_index:i)
  in
  {
    inj_rows = collect_fault_rows ~trials results Fault_plan.to_string plans;
    inj_window_s = window_s;
  }

let print_inject fmt r =
  Format.fprintf fmt "%s"
    (Report.section
       (Printf.sprintf
          "Fault injection: SATIN detection rate per fault plan (%d s window)"
          r.inj_window_s));
  Format.fprintf fmt "%s"
    (Report.table
       ~header:
         [ "fault plan"; "detected"; "first alarm (avg)"; "rounds"; "faults" ]
       (List.map
          (fun row ->
            [
              row.inj_plan;
              Printf.sprintf "%d/%d" row.inj_detected row.inj_trials;
              (if Stats.is_empty row.inj_latency then "n/a"
               else Printf.sprintf "%.1f s" (Stats.mean row.inj_latency));
              Printf.sprintf "%.1f" row.inj_rounds;
              Printf.sprintf "%.1f" row.inj_faults;
            ])
          r.inj_rows));
  Format.fprintf fmt
    "timer and switch faults starve rounds; scheduling pressure should not \
     touch the secure-world cadence@."

type degrade_row = {
  dg_drop_prob : float;
  dg_trials : int;
  dg_detected : int;
  dg_latency : Stats.t;
  dg_rounds : float;
  dg_drops : float; (** mean secure-timer arms swallowed per trial *)
}

type degrade_result = { dg_rows : degrade_row list; dg_window_s : int }

let degrade_trial ~seed ~trials ~window_s ~probs ~trial_index =
  let prob = probs.(trial_index / trials) in
  let plan =
    if prob <= 0.0 then Fault_plan.Control
    else Fault_plan.Drop_timer_irqs { prob }
  in
  fault_campaign_trial ~seed:(derive seed trial_index) ~window_s plan

let run_degrade ?(pool = Runner.sequential) ?(seed = 42) ?(trials = 4)
    ?(window_s = 30) ?(drop_probs = [ 0.0; 0.2; 0.4; 0.6 ]) () =
  let probs = Array.of_list drop_probs in
  let results =
    Memo.map pool ~experiment:"degrade" ~seed
      ~config:
        [ ("trials", string_of_int trials); ("window_s", string_of_int window_s) ]
      ~trial_config:(fun i ->
        let prob = probs.(i / trials) in
        let plan =
          if prob <= 0.0 then Fault_plan.Control
          else Fault_plan.Drop_timer_irqs { prob }
        in
        [ ("plan", Fault_plan.to_string plan) ])
      (Array.length probs * trials)
      (fun i -> degrade_trial ~seed ~trials ~window_s ~probs ~trial_index:i)
  in
  let rows =
    collect_fault_rows ~trials results
      (fun p -> Printf.sprintf "%.2f" p)
      drop_probs
  in
  {
    dg_rows =
      List.map2
        (fun prob row ->
          {
            dg_drop_prob = prob;
            dg_trials = row.inj_trials;
            dg_detected = row.inj_detected;
            dg_latency = row.inj_latency;
            dg_rounds = row.inj_rounds;
            dg_drops = row.inj_faults;
          })
        drop_probs rows;
    dg_window_s = window_s;
  }

let print_degrade fmt r =
  Format.fprintf fmt "%s"
    (Report.section
       (Printf.sprintf
          "Graceful degradation: detection vs secure-timer drop rate (%d s \
           window)"
          r.dg_window_s));
  Format.fprintf fmt "%s"
    (Report.table
       ~header:
         [ "drop prob"; "detected"; "first alarm (avg)"; "rounds"; "drops" ]
       (List.map
          (fun row ->
            [
              Printf.sprintf "%.2f" row.dg_drop_prob;
              Printf.sprintf "%d/%d" row.dg_detected row.dg_trials;
              (if Stats.is_empty row.dg_latency then "n/a"
               else Printf.sprintf "%.1f s" (Stats.mean row.dg_latency));
              Printf.sprintf "%.1f" row.dg_rounds;
              Printf.sprintf "%.1f" row.dg_drops;
            ])
          r.dg_rows));
  Format.fprintf fmt
    "dropped wake-ups kill cores' round chains one by one: coverage decays \
     smoothly rather than collapsing@."

(* ------------------------------------------------------------------ *)
(* Fleet — per-device detection/overhead sweep (sharded campaigns)     *)
(* ------------------------------------------------------------------ *)

(* The fleet experiment models a deployment: hundreds of devices, each a
   fresh Juno with its own PRNG stream, running SATIN under one of a few
   device classes (probing cadence × randomization posture) against a
   persistent rootkit and the worst-case UnixBench workload. Device [i]'s
   class is [i mod #classes] and its seed [derive seed i], so the device
   population is determined by the index alone — growing [devices] (or
   sweeping it across shards) only appends devices, every existing
   per-device record stays valid. *)

type fleet_class = { fc_tp_s : float; fc_randomized : bool }

let fleet_classes =
  List.concat_map
    (fun tp ->
      [
        { fc_tp_s = tp; fc_randomized = true };
        { fc_tp_s = tp; fc_randomized = false };
      ])
    [ 0.5; 1.0; 2.0; 4.0 ]

type fleet_device = {
  fd_detected : bool;
  fd_latency_s : float option; (** arm -> first alarmed round's wake-up, s *)
  fd_rounds : int;
  fd_score : float; (** workload throughput with SATIN running *)
}

let fleet_class_of ~trial_index =
  List.nth fleet_classes (trial_index mod List.length fleet_classes)

let fleet_device_trial ~seed ~window_s ~trial_index =
  let cls = fleet_class_of ~trial_index in
  let s = Scenario.create ~seed:(derive seed trial_index) () in
  let t_goal_s = max 1 (int_of_float (Float.round (cls.fc_tp_s *. 19.0))) in
  let satin =
    Scenario.install_satin s
      ~config:
        {
          Satin_def.t_goal = Sim_time.s t_goal_s;
          randomize_area = cls.fc_randomized;
          randomize_period = cls.fc_randomized;
          randomize_core = cls.fc_randomized;
        }
      ()
  in
  let rootkit = Rootkit.create s.Scenario.kernel ~cleanup_core:0 () in
  Rootkit.arm rootkit;
  let armed_at = Scenario.now s in
  let first_alarm = ref None in
  Satin_def.on_round satin (fun r ->
      if Round.detected r && !first_alarm = None then
        first_alarm := Some r.Round.started);
  let program = Unixbench.find_program "file_copy_256" in
  let inst = Unixbench.launch s.Scenario.kernel program ~copies:1 () in
  Scenario.run_for s (Sim_time.s window_s);
  Satin_def.stop satin;
  {
    fd_detected = Satin_def.detections satin > 0;
    fd_latency_s =
      Option.map (fun t -> sec (Sim_time.diff t armed_at)) !first_alarm;
    fd_rounds = Satin_def.rounds_count satin;
    fd_score = Unixbench.score inst ~at:(Scenario.now s);
  }

(* The overhead denominator: the same workload on a device with no SATIN
   at all. Class-independent, so a handful of seed-varied baselines serve
   the whole fleet; the seed offset keeps baseline devices disjoint from
   fleet devices of the same index. *)
let fleet_baseline_trial ~seed ~window_s ~trial_index =
  let s = Scenario.create ~seed:(derive seed (0x5EED + trial_index)) () in
  let program = Unixbench.find_program "file_copy_256" in
  let inst = Unixbench.launch s.Scenario.kernel program ~copies:1 () in
  Scenario.run_for s (Sim_time.s window_s);
  Unixbench.score inst ~at:(Scenario.now s)

type fleet_row = {
  fr_tp_s : float;
  fr_randomized : bool;
  fr_devices : int;
  fr_detected : int;
  fr_latency : Stats.t;
  fr_rounds : float; (** mean rounds completed per device *)
  fr_overhead_pct : float; (** vs the fleet-wide no-SATIN baseline *)
}

type fleet_result = {
  fl_rows : fleet_row list;
  fl_devices : int;
  fl_window_s : int;
  fl_baseline : float; (** mean no-SATIN workload score *)
  fl_detected : int; (** devices that alarmed, fleet-wide *)
  fl_latency : Stats.t; (** fleet-wide time to first alarm *)
}

let run_fleet ?(pool = Runner.sequential) ?(seed = 42) ?(devices = 240)
    ?(window_s = 20) () =
  if devices < 1 then invalid_arg "run_fleet: need at least one device";
  (* [devices] stays out of the key config: a device's record depends only
     on its own identity, so a grown (or sharded) fleet reuses every
     already-computed device. *)
  let results =
    Memo.map pool ~experiment:"fleet" ~seed
      ~config:[ ("window_s", string_of_int window_s) ]
      ~trial_config:(fun i ->
        let c = fleet_class_of ~trial_index:i in
        [
          ("tp_s", keyf c.fc_tp_s);
          ("randomized", if c.fc_randomized then "1" else "0");
        ])
      devices
      (fun i -> fleet_device_trial ~seed ~window_s ~trial_index:i)
  in
  let nbase = min devices 8 in
  let baselines =
    Memo.map pool ~experiment:"fleet-baseline" ~seed
      ~config:[ ("window_s", string_of_int window_s) ]
      nbase
      (fun i -> fleet_baseline_trial ~seed ~window_s ~trial_index:i)
  in
  let baseline =
    Array.fold_left ( +. ) 0.0 baselines /. float_of_int nbase
  in
  let ncls = List.length fleet_classes in
  let rows =
    List.filteri
      (fun ci _ -> ci < devices) (* small fleets may not reach every class *)
      (List.mapi
         (fun ci cls ->
           let members = ref [] in
           Array.iteri
             (fun i d -> if i mod ncls = ci then members := d :: !members)
             results;
           let members = !members in
           let n = List.length members in
           let latency = Stats.create () in
           List.iter
             (fun d -> Option.iter (Stats.add latency) d.fd_latency_s)
             members;
           let mean f =
             if n = 0 then 0.0
             else
               List.fold_left (fun a d -> a +. f d) 0.0 members
               /. float_of_int n
           in
           {
             fr_tp_s = cls.fc_tp_s;
             fr_randomized = cls.fc_randomized;
             fr_devices = n;
             fr_detected =
               List.fold_left
                 (fun a d -> if d.fd_detected then a + 1 else a)
                 0 members;
             fr_latency = latency;
             fr_rounds = mean (fun d -> float_of_int d.fd_rounds);
             fr_overhead_pct =
               (if baseline <= 0.0 then 0.0
                else
                  100.0 *. (baseline -. mean (fun d -> d.fd_score))
                  /. baseline);
           })
         fleet_classes)
  in
  let fleet_latency = Stats.create () in
  Array.iter
    (fun d -> Option.iter (Stats.add fleet_latency) d.fd_latency_s)
    results;
  {
    fl_rows = rows;
    fl_devices = devices;
    fl_window_s = window_s;
    fl_baseline = baseline;
    fl_detected =
      Array.fold_left
        (fun a d -> if d.fd_detected then a + 1 else a)
        0 results;
    fl_latency = fleet_latency;
  }

let print_fleet fmt r =
  Format.fprintf fmt "%s"
    (Report.section
       (Printf.sprintf
          "Fleet: per-device detection & overhead, %d device(s), %d s window"
          r.fl_devices r.fl_window_s));
  Format.fprintf fmt "%s"
    (Report.table
       ~header:
         [
           "tp"; "randomized"; "devices"; "detected"; "first alarm (avg)";
           "rounds"; "overhead";
         ]
       (List.map
          (fun row ->
            [
              Printf.sprintf "%.1f s" row.fr_tp_s;
              (if row.fr_randomized then "yes" else "no");
              string_of_int row.fr_devices;
              Printf.sprintf "%d/%d" row.fr_detected row.fr_devices;
              (if Stats.is_empty row.fr_latency then "n/a"
               else Printf.sprintf "%.1f s" (Stats.mean row.fr_latency));
              Printf.sprintf "%.1f" row.fr_rounds;
              Report.pct row.fr_overhead_pct;
            ])
          r.fl_rows));
  Format.fprintf fmt
    "fleet-wide: %d/%d device(s) alarmed%s; baseline score %.1f@."
    r.fl_detected r.fl_devices
    (if Stats.is_empty r.fl_latency then ""
     else
       Printf.sprintf ", first alarm avg %.1f s" (Stats.mean r.fl_latency))
    r.fl_baseline

(* ------------------------------------------------------------------ *)
(* Cache fidelity — prober mode x replacement policy x AutoLock        *)
(* ------------------------------------------------------------------ *)

(* Each cell runs the full modeled stack: a scan driver streams a 2 MiB
   kernel range through core 1's hierarchy at randomized intervals, one
   CFS spinner per core supplies benign footprint traffic, and the cache
   prober watches in the cell's fidelity mode over the cell's cache
   configuration. Ground truth comes from the driver's own scan
   intervals, so detection rate and false alarms are exact. *)

type cache_cell = {
  cc_fidelity : Cache_prober.fidelity;
  cc_policy : Cache_policy.kind;
  cc_autolock : bool;
}

let cache_cells =
  List.concat_map
    (fun fidelity ->
      List.concat_map
        (fun policy ->
          [
            { cc_fidelity = fidelity; cc_policy = policy; cc_autolock = false };
            { cc_fidelity = fidelity; cc_policy = policy; cc_autolock = true };
          ])
        Cache_policy.all)
    [ Cache_prober.Abstract; Cache_prober.Prime_probe; Cache_prober.Evict_reload ]

let cache_config_of_cell cell =
  {
    Cache.default_config with
    Cache.policy = cell.cc_policy;
    autolock = cell.cc_autolock;
  }

type cache_trial = {
  ctr_scans : int;
  ctr_detected : int;
  ctr_alarms : int;
  ctr_false_alarms : int;
}

(* The introspected range: the first 2 MiB of the kernel image — big
   enough to sweep every L2 set of the default geometry (1 MiB) twice,
   small enough for a ~20 ms scan, so a 200 us-period prober sees many
   rounds inside each scan. *)
let cache_scan_len layout = min (Layout.total_size layout) (2 * 1024 * 1024)

let cache_fidelity_trial ~seed ~trials ~window_s ~cells ~trial_index =
  let cell = cells.(trial_index / trials) in
  let s =
    Scenario.create ~seed:(derive seed trial_index)
      ~cache:(cache_config_of_cell cell) ()
  in
  let platform = s.Scenario.platform in
  let engine = Scenario.engine s in
  let kernel = s.Scenario.kernel in
  (* One CFS spinner per core: its 8 KiB dispatch footprint is the benign
     traffic the modeled probers must not mistake for introspection. *)
  Array.iteri
    (fun i _ ->
      Satin_kernel.Kernel.spawn kernel
        (Satin_kernel.Task.create
           ~name:(Printf.sprintf "spin/%d" i)
           ~policy:Satin_kernel.Task.Cfs ~affinity:i
           ~body:(fun _ ->
             {
               Satin_kernel.Task.cpu = Sim_time.us 80;
               after = (fun () -> Satin_kernel.Task.Sleep (Sim_time.us 420));
             })
           ()))
    platform.Platform.cores;
  let layout = kernel.Satin_kernel.Kernel.layout in
  let kbase = Layout.base layout in
  let scan_len = cache_scan_len layout in
  ignore (Checker.enroll s.Scenario.checker ~base:kbase ~len:scan_len);
  let prober =
    Cache_prober.deploy kernel
      {
        Cache_prober.default_config with
        Cache_prober.fidelity = cell.cc_fidelity;
        er_region = Some (kbase, scan_len);
      }
  in
  (* Scan driver on core 1 (cluster 0; the prober's cluster-0 thread sits
     on core 0, so every detection is cross-core): baseline.ml's pattern,
     with randomized inter-scan gaps from the scenario's split stream. *)
  let scan_prng = Platform.split_prng platform in
  let cpu = Platform.core platform 1 in
  let scans = ref [] in
  let rec arm_next () =
    let gap = Prng.uniform scan_prng 0.25 0.6 in
    ignore
      (Engine.schedule engine ~after:(Sim_time.of_sec_f gap) (fun () -> scan ()))
  and scan () =
    if Cpu.in_secure cpu then arm_next ()
    else
      Monitor.enter_secure platform.Platform.monitor ~cpu
        ~payload:(fun () ->
          let t0 = Engine.now engine in
          Checker.start_scan s.Scenario.checker ~engine ~core:cpu ~base:kbase
            ~len:scan_len
            ~on_verdict:(fun _ -> scans := (t0, Engine.now engine) :: !scans))
        ~on_exit:(fun () -> arm_next ())
        ()
  in
  arm_next ();
  Scenario.run_for s (Sim_time.s window_s);
  Cache_prober.retire prober;
  let dets = Cache_prober.detections prober in
  let period_s = sec Cache_prober.default_config.Cache_prober.period in
  (* A scan counts as detected when cluster 0 alarmed between its start and
     two probe periods past its end (the retrospective window). *)
  let detected =
    List.fold_left
      (fun acc (t0, t1) ->
        let lo = sec t0 and hi = sec t1 +. (2.0 *. period_s) in
        if
          List.exists
            (fun d ->
              d.Cache_prober.det_cluster = 0
              &&
              let ts = sec d.Cache_prober.det_time in
              ts >= lo && ts <= hi)
            dets
        then acc + 1
        else acc)
      0 !scans
  in
  {
    ctr_scans = List.length !scans;
    ctr_detected = detected;
    ctr_alarms = List.length dets;
    ctr_false_alarms = Cache_prober.false_alarms prober;
  }

type cache_row = {
  cr_fidelity : Cache_prober.fidelity;
  cr_policy : Cache_policy.kind;
  cr_autolock : bool;
  cr_trials : int;
  cr_scans : int;
  cr_detected : int;
  cr_alarms : int;
  cr_false_alarms : int;
}

type cache_validation_row = {
  cv_name : string;
  cv_bytes : int;
  cv_l1_rate : float;
  cv_l2_rate : float;
  cv_mem_rate : float;
}

(* Cachetrace-style validation: steady-state hit rates of three canonical
   working sets against the default geometry. A working set inside the
   32 KiB L1 must hit L1 ~always; one inside the 1 MiB L2 but past the L1
   must hit L2 ~always; a 4 MiB stream must miss both. *)
let cache_validation_workloads =
  [
    ("hot loop", 16 * 1024);
    ("L2-resident", 512 * 1024);
    ("streaming", 4 * 1024 * 1024);
  ]

let cache_validation_row (name, bytes) =
  let cache = Cache.create ~clusters:[| [| 0 |] |] Cache.default_config in
  let line = Cache.line_size cache in
  let lines = bytes / line in
  let base = 1 lsl 20 in
  for i = 0 to lines - 1 do
    ignore (Cache.touch cache ~core:0 ~addr:(base + (i * line)))
  done;
  let l1 = ref 0 and l2 = ref 0 and mem = ref 0 in
  for i = 0 to lines - 1 do
    match Cache.touch cache ~core:0 ~addr:(base + (i * line)) with
    | 0 -> incr l1
    | 1 -> incr l2
    | _ -> incr mem
  done;
  let total = float_of_int lines in
  {
    cv_name = name;
    cv_bytes = bytes;
    cv_l1_rate = float_of_int !l1 /. total;
    cv_l2_rate = float_of_int !l2 /. total;
    cv_mem_rate = float_of_int !mem /. total;
  }

type cache_fidelity_result = {
  cf_rows : cache_row list;
  cf_validation : cache_validation_row list;
  cf_trials : int;
  cf_window_s : int;
}

let run_cache_fidelity ?(pool = Runner.sequential) ?(seed = 42) ?(trials = 2)
    ?(window_s = 10) () =
  let cells = Array.of_list cache_cells in
  let results =
    Memo.map pool ~experiment:"cache-fidelity" ~seed
      ~config:
        [ ("trials", string_of_int trials); ("window_s", string_of_int window_s) ]
      ~trial_config:(fun i ->
        let cell = cells.(i / trials) in
        ("fidelity", Cache_prober.fidelity_to_string cell.cc_fidelity)
        :: Cache.config_to_key (cache_config_of_cell cell))
      (Array.length cells * trials)
      (fun i -> cache_fidelity_trial ~seed ~trials ~window_s ~cells ~trial_index:i)
  in
  let rows =
    List.mapi
      (fun ci cell ->
        let slice = Array.sub results (ci * trials) trials in
        let sum f = Array.fold_left (fun a t -> a + f t) 0 slice in
        {
          cr_fidelity = cell.cc_fidelity;
          cr_policy = cell.cc_policy;
          cr_autolock = cell.cc_autolock;
          cr_trials = trials;
          cr_scans = sum (fun t -> t.ctr_scans);
          cr_detected = sum (fun t -> t.ctr_detected);
          cr_alarms = sum (fun t -> t.ctr_alarms);
          cr_false_alarms = sum (fun t -> t.ctr_false_alarms);
        })
      cache_cells
  in
  {
    cf_rows = rows;
    cf_validation = List.map cache_validation_row cache_validation_workloads;
    cf_trials = trials;
    cf_window_s = window_s;
  }

let print_cache_fidelity fmt r =
  Format.fprintf fmt "%s"
    (Report.section
       (Printf.sprintf
          "Cache fidelity: prober mode x replacement policy x AutoLock (%d \
           trial(s)/cell, %d s windows)"
          r.cf_trials r.cf_window_s));
  Format.fprintf fmt "%s"
    (Report.table
       ~header:
         [ "mode"; "policy"; "AutoLock"; "scans"; "detected"; "false alarms" ]
       (List.map
          (fun row ->
            [
              Cache_prober.fidelity_to_string row.cr_fidelity;
              Cache_policy.kind_to_string row.cr_policy;
              (if row.cr_autolock then "on" else "off");
              string_of_int row.cr_scans;
              (if row.cr_scans = 0 then "n/a"
               else
                 Printf.sprintf "%d/%d (%.0f%%)" row.cr_detected row.cr_scans
                   (100.0
                   *. float_of_int row.cr_detected
                   /. float_of_int row.cr_scans));
              string_of_int row.cr_false_alarms;
            ])
          r.cf_rows));
  Format.fprintf fmt "%s"
    (Report.table
       ~header:[ "working set"; "size"; "L1 hits"; "L2 hits"; "memory" ]
       (List.map
          (fun v ->
            [
              v.cv_name;
              Printf.sprintf "%d KiB" (v.cv_bytes / 1024);
              Report.pct (100.0 *. v.cv_l1_rate);
              Report.pct (100.0 *. v.cv_l2_rate);
              Report.pct (100.0 *. v.cv_mem_rate);
            ])
          r.cf_validation));
  Format.fprintf fmt
    "AutoLock pins the attacker's L1-resident eviction sets against the \
     scanning core: prime+probe detection collapses (or, under LRU, drowns \
     in locked-set false alarms); evict+reload survives via own-line \
     re-eviction, random replacement defeats single-pass eviction outright; \
     the abstract rows are cache-blind controls@."

(* ------------------------------------------------------------------ *)
(* run_all                                                             *)
(* ------------------------------------------------------------------ *)

(* Run [f], record its wall-clock under experiment.wall_s{experiment=name},
   and hand the result to [print]. Wall-clock goes to the segregated
   real-time registry only — never into the report or the deterministic
   --metrics export — so pooled and sequential runs stay byte-identical. *)
let timed name print fmt f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Obs.observe_wall "experiment.wall_s"
    ~labels:[ ("experiment", name) ]
    (Unix.gettimeofday () -. t0);
  print fmt r

let run_all ?(pool = Runner.sequential) ?(seed = 42) ?(quick = false) fmt =
  let rounds = if quick then 15 else 50 in
  timed "e1" print_e1 fmt (fun () -> run_e1 ~pool ~seed ());
  timed "table1" print_table1 fmt (fun () -> run_table1 ~pool ~seed ());
  timed "uprober" print_uprober fmt (fun () ->
      run_uprober ~pool ~seed ~trials:(if quick then 6 else 20) ());
  timed "e3" print_e3 fmt (fun () ->
      run_e3 ~pool ~seed ~runs:(if quick then 10 else 50) ());
  let t2 = ref None in
  timed "table2" print_table2 fmt (fun () ->
      let r = run_table2 ~pool ~seed ~rounds () in
      t2 := Some r;
      r);
  (match !t2 with Some r -> print_fig4 fmt r | None -> assert false);
  timed "e6" print_e6 fmt (fun () -> run_e6 ~pool ~seed ~rounds ());
  print_e7 fmt (run_e7 ());
  print_timeline fmt Race.paper_worst_case;
  timed "e8" print_e8 fmt (fun () ->
      run_e8 ~pool ~seed ~duration_s:(if quick then 120 else 400) ());
  print_e9 fmt (run_e9 ());
  timed "e10" print_e10 fmt (fun () ->
      run_e10 ~seed ~target_rounds:(if quick then 57 else 190) ());
  timed "fig7" print_fig7 fmt (fun () ->
      run_fig7 ~pool ~seed ~window_s:(if quick then 8 else 30) ());
  timed "ablation" print_ablation fmt (fun () ->
      run_ablation ~pool ~seed ~passes:(if quick then 1 else 3) ());
  timed "e13" print_e13 fmt (fun () ->
      run_e13 ~seed ~checks:(if quick then 10 else 30) ());
  timed "e14" print_e14 fmt (fun () ->
      run_e14 ~seed ~passes:(if quick then 1 else 3) ());
  timed "cache_fidelity" print_cache_fidelity fmt (fun () ->
      run_cache_fidelity ~pool ~seed
        ~trials:(if quick then 1 else 2)
        ~window_s:(if quick then 6 else 10)
        ());
  timed "tgoal_sweep" print_tgoal_sweep fmt (fun () ->
      run_tgoal_sweep ~pool ~seed
        ~trials:(if quick then 2 else 4)
        ~tps_s:(if quick then [ 1.0; 4.0 ] else [ 0.5; 1.0; 2.0; 4.0 ])
        ());
  timed "inject" print_inject fmt (fun () ->
      run_inject ~pool ~seed
        ~trials:(if quick then 2 else 4)
        ~window_s:(if quick then 25 else 30)
        ());
  timed "degrade" print_degrade fmt (fun () ->
      run_degrade ~pool ~seed
        ~trials:(if quick then 2 else 4)
        ~window_s:(if quick then 25 else 30)
        ())
