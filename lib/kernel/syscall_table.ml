module Memory = Satin_hw.Memory

type t = { memory : Memory.t; base : int; entries : int }

let create memory layout =
  let sym = Layout.syscall_table layout in
  { memory; base = sym.Layout.sym_addr; entries = sym.Layout.sym_size / 8 }

let entries t = t.entries

let entry_addr t n =
  if n < 0 || n >= t.entries then
    invalid_arg (Printf.sprintf "Syscall_table: entry %d out of range" n);
  t.base + (n * 8)

let read_entry t ~world n =
  Memory.read_int64_le t.memory ~world ~addr:(entry_addr t n)

let write_entry t ~world n value =
  Memory.write_int64_le t.memory ~world ~addr:(entry_addr t n) value

let gettid_addr t = entry_addr t Layout.gettid_nr
