(** Kernel process accounting structures (dynamic kernel data).

    A model of the two linked structures a Linux kernel keeps per process:
    the all-tasks list (the [init_task.tasks] circular doubly-linked list
    that [ps] ultimately walks) and the run queue membership. Both live in
    kernel {e heap} memory — physically readable by the secure world but
    legitimately mutable, so hash-based integrity checking cannot cover
    them; this is the dynamic-data / semantic-gap territory the paper's
    introduction points at ([8], [14], [33], [48]).

    The classic DKOM rootkit hides a process by unlinking its PCB from the
    all-tasks list while leaving it schedulable: the process keeps running
    but disappears from every tasks-list walk. The {!unlink_tasks} /
    {!relink_tasks} primitives implement exactly that (the node keeps its
    own pointers so it can splice itself back in). Cross-view detection
    compares the two walks — see {!Satin_introspect.Dkom}. *)

type t

val node_size : int
(** Bytes per PCB node (64). *)

val create :
  memory:Satin_hw.Memory.t -> base:int -> capacity:int -> t
(** Declares a non-secure ["kernel_heap"] region holding up to [capacity]
    PCBs (plus two sentinel nodes) and initializes empty lists. *)

val capacity : t -> int
val live_count : t -> int

val spawn : t -> pid:int -> ?runnable:bool -> unit -> unit
(** Allocate and link a PCB on both lists ([runnable] defaults true; a
    non-runnable process sits only on the all-tasks list). Raises
    [Invalid_argument] on duplicate pid or a full table. *)

val exit_process : t -> pid:int -> unit
(** Unlink from both lists and free the slot. Raises [Not_found]. *)

val addr_of_pid : t -> pid:int -> int
(** Physical address of the PCB. Raises [Not_found]. *)

val pids_via_tasks : t -> world:Satin_hw.World.t -> int list
(** Walk the all-tasks list through physical memory, ascending order of
    encounter. This is what a tasks-list-based tool (or introspector) sees. *)

val pids_via_runqueue : t -> world:Satin_hw.World.t -> int list
(** Walk the run-queue list — what the scheduler actually runs. *)

val unlink_tasks : t -> world:Satin_hw.World.t -> pid:int -> unit
(** DKOM hide: splice the PCB out of the all-tasks list only. The node
    keeps its own pointers. Idempotent. *)

val relink_tasks : t -> world:Satin_hw.World.t -> pid:int -> unit
(** Undo {!unlink_tasks} by re-splicing the node between its remembered
    neighbours. Idempotent. *)

val tasks_linked : t -> pid:int -> bool
(** Whether the PCB is currently reachable from the all-tasks head. *)

val invariant_violations : t -> string list
(** Structural self-check, sampled by the simulation sanitizer; empty when
    healthy. Verifies next/prev mutual consistency and termination of both
    circular lists, that every linked PCB belongs to an allocated live pid,
    that no walk lists a pid twice, and that slot accounting balances
    (free + live = capacity, no slot on both sides). Deliberately does
    {e not} flag DKOM cross-view divergence — that is the detector's
    observable, not a simulation bug. *)
