(** Kernel tasks (threads).

    A task's behaviour is a [body] callback invoked each time the scheduler
    dispatches it. The body declares how much CPU the next step needs; when
    that CPU has been fully consumed (possibly across several preempted
    slices), the [after] continuation runs — at the simulated instant the
    work completes — performing the task's side effects and telling the
    scheduler what comes next.

    Scheduling policies mirror Linux: [Cfs] tasks share the core fairly by
    virtual runtime; [Rt_fifo] tasks (SCHED_FIFO) always preempt CFS tasks
    and run until they sleep, higher [priority] first — the property
    KProber-II builds on (§III-C2). *)

type policy = Cfs | Rt_fifo of int  (** priority in 1..99, higher wins *)

val rt_priority_max : int
(** 99, as [sched_get_priority_max(SCHED_FIFO)]. *)

type state = Ready | Running | Sleeping | Exited

(** What a task does once its current CPU demand is satisfied. *)
type after =
  | Reenter  (** call [body] again immediately (CPU-bound loop) *)
  | Sleep of Satin_engine.Sim_time.t  (** sleep, then become ready again *)
  | Block  (** wait until explicitly woken *)
  | Exit

type step = { cpu : Satin_engine.Sim_time.t; after : unit -> after }
(** One step: consume [cpu] (may be zero), then run [after]. *)

type t

val create :
  name:string ->
  policy:policy ->
  ?affinity:int ->
  body:(t -> step) ->
  unit ->
  t
(** [affinity] pins the task to one core forever (the probers rely on this:
    a pinned task cannot be migrated away from a core that entered the
    secure world). Unpinned tasks are placed once at spawn time. *)

val id : t -> int
val name : t -> string
val policy : t -> policy
val affinity : t -> int option
val state : t -> state
val is_pinned : t -> bool

val cpu_time : t -> Satin_engine.Sim_time.t
(** Total CPU consumed so far. *)

val vruntime : t -> float
(** CFS virtual runtime, seconds. *)

val dispatches : t -> int
(** Number of times the scheduler put this task on a core. *)

val pp : Format.formatter -> t -> unit

(**/**)

(* Scheduler-internal state; exposed for Sched, not for clients. *)

val set_state : t -> state -> unit
val set_vruntime : t -> float -> unit
val add_cpu_time : t -> Satin_engine.Sim_time.t -> unit
val incr_dispatches : t -> unit
val body : t -> t -> step
val assigned_core : t -> int option
val set_assigned_core : t -> int option -> unit
val remaining : t -> step option
val set_remaining : t -> step option -> unit

val sleep_epoch : t -> int
(** Invalidation counter for pending sleep-expiry timers: a timer armed for
    an earlier epoch must not wake the task (it was woken externally and may
    be sleeping again for a different reason). *)

val bump_sleep_epoch : t -> unit
