(** Scheduling-clock tick (timer interrupt) machinery.

    Each core's non-secure generic timer is programmed to fire at
    [CONFIG_HZ]; the handler runs the registered tick hooks, drives
    {!Sched.scheduler_tick}, and re-arms the timer. Linux's
    [CONFIG_NO_HZ_IDLE] is modelled: a core with no runnable work lets its
    tick die and it is restarted when a task is enqueued — which is why
    KProber-I keeps a spinner thread on every core (§III-C1).

    Tick hooks are the injection point KProber-I abuses after hijacking the
    IRQ exception vector: a hook runs in interrupt context on every tick
    delivered to its core, before the scheduler work. *)

type t

type hook = core:int -> unit

val create :
  platform:Satin_hw.Platform.t -> sched:Sched.t -> hz:int -> t
(** Registers the GIC handler for {!Satin_hw.Platform.tick_irq} and
    subscribes to scheduler enqueues for tick restart. Does not start
    ticking until {!start}. *)

val start : t -> unit
(** Arms the first tick on every core. *)

type hook_id

val add_hook : t -> hook -> hook_id
(** Appends a tick hook (runs on every core's tick, in order). *)

val remove_hook : t -> hook_id -> unit
(** Removes one hook (a rootkit cleaning its own injection must not clobber
    anyone else's). Idempotent. *)

val remove_hooks : t -> unit
(** Clears all hooks. *)

val hz : t -> int
val period : t -> Satin_engine.Sim_time.t

val ticks_delivered : t -> core:int -> int

val tick_alive : t -> core:int -> bool
(** Whether the core's tick is currently programmed (false when NO_HZ idle
    has stopped it). *)
