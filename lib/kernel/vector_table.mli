(** AArch64 exception vector table.

    Sixteen 128-byte entries starting at the ["vectors"] symbol (the address
    normally held in [VBAR_EL1]). KProber-I redirects the IRQ vector of the
    current-EL-with-SPx group (offset 0x280) to its own code — a kernel-text
    modification the defender can spot when it scans area 0 (§III-C1,
    §IV-A1). *)

type t

val create : Satin_hw.Memory.t -> Layout.t -> t

val base : t -> int

val irq_el1_offset : int
(** 0x280: IRQ, current EL with SPx. *)

val irq_vector_addr : t -> int

val hijack_irq : t -> world:Satin_hw.World.t -> unit
(** Overwrites the first 8 bytes of the IRQ vector with a detour stub.
    Idempotent. *)

val restore_irq : t -> world:Satin_hw.World.t -> unit
(** Puts the original bytes back. *)

val irq_hijacked : t -> bool
(** Whether the in-memory bytes currently differ from the pristine ones. *)
