(** Rich OS CPU scheduler.

    A per-core run-queue scheduler modelling the two Linux scheduling classes
    the paper's attack relies on:

    - SCHED_FIFO real-time tasks always preempt CFS tasks the moment they
      wake, run until they sleep, and among themselves are ordered by static
      priority (FIFO within a priority). KProber-II registers its probe
      threads at priority 99 so nothing in the normal world can delay them
      (§III-C2).
    - CFS tasks share the core by virtual runtime with a latency-target
      slice, wakeup preemption, and tick-driven rebalancing — enough fidelity
      that the user-level prober of §III-B1 sees realistic scheduling delays
      when it competes with other fair tasks.

    Tasks pinned with an affinity never migrate. Unpinned tasks are placed on
    the least-loaded core at spawn and migrate at wake-up if their core is
    currently held by the secure world — exactly why the paper's probers must
    pin their threads.

    When a core enters the secure world its current task is preempted and
    parked; nothing runs there until the core returns. *)

type t

val create : Satin_hw.Platform.t -> t
(** Builds run queues for every core and subscribes to world changes. *)

val spawn : t -> Task.t -> unit
(** Places the task (affinity or least-loaded core) and makes it runnable.
    Raises [Invalid_argument] if the affinity names an unknown core or the
    task was already spawned. *)

val wake : t -> Task.t -> unit
(** Makes a blocked/sleeping task runnable; no-op if it is not sleeping. *)

val scheduler_tick : t -> core:int -> unit
(** Tick-driven fairness check; called by the timer interrupt handler. *)

val current : t -> core:int -> Task.t option

val has_work : t -> core:int -> bool
(** True if the core has a running or queued task (drives NO_HZ_IDLE). *)

val runnable_count : t -> core:int -> int

val on_enqueue : t -> (core:int -> unit) -> unit
(** Hook fired whenever a task becomes runnable on a core — the tick
    machinery uses it to restart a stopped idle tick. *)

val context_switches : t -> int
(** Total dispatches across all cores. *)

val invariant_violations : t -> string list
(** Structural self-check, sampled by the simulation sanitizer; empty when
    healthy. Checks per core: a secure-held core has no current task; the
    current task is [Running] and queued tasks are [Ready]; [rt_queue] is in
    descending static priority and [cfs_queue] in ascending vruntime; no
    task appears on two queues (or both current and queued). *)

val exited : Task.t -> bool

(** Scheduling parameters (Linux-flavoured defaults). *)
module Params : sig
  val sched_latency : Satin_engine.Sim_time.t (** 6 ms *)

  val min_granularity : Satin_engine.Sim_time.t (** 0.75 ms *)

  val wakeup_granularity : Satin_engine.Sim_time.t (** 1 ms *)
end
