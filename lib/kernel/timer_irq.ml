module Sim_time = Satin_engine.Sim_time
module Platform = Satin_hw.Platform
module Timer = Satin_hw.Timer
module Gic = Satin_hw.Gic

type hook = core:int -> unit

type hook_id = int

type t = {
  platform : Platform.t;
  sched : Sched.t;
  hz : int;
  period : Sim_time.t;
  mutable hooks : (hook_id * hook) list;
  mutable next_hook_id : hook_id;
  ticks : int array;
  alive : bool array;
}

let arm t core =
  t.alive.(core) <- true;
  Timer.arm_after t.platform.Platform.tick_timers.(core) t.period

let handle t ~core =
  t.ticks.(core) <- t.ticks.(core) + 1;
  List.iter (fun (_, f) -> f ~core) t.hooks;
  Sched.scheduler_tick t.sched ~core;
  (* NO_HZ_IDLE: only keep ticking while there is work. *)
  if Sched.has_work t.sched ~core then arm t core
  else t.alive.(core) <- false

let create ~platform ~sched ~hz =
  if hz < 100 || hz > 1000 then
    invalid_arg "Timer_irq.create: HZ outside Linux's 100..1000 range";
  let n = Platform.ncores platform in
  let t =
    {
      platform;
      sched;
      hz;
      period = Sim_time.ns (1_000_000_000 / hz);
      hooks = [];
      next_hook_id = 0;
      ticks = Array.make n 0;
      alive = Array.make n false;
    }
  in
  Gic.set_normal_handler platform.Platform.gic ~irq:Platform.tick_irq
    (fun ~core -> handle t ~core);
  Sched.on_enqueue sched (fun ~core -> if not t.alive.(core) then arm t core);
  t

let start t =
  for core = 0 to Platform.ncores t.platform - 1 do
    arm t core
  done

let add_hook t hook =
  let id = t.next_hook_id in
  t.next_hook_id <- id + 1;
  t.hooks <- t.hooks @ [ (id, hook) ];
  id

let remove_hook t id = t.hooks <- List.filter (fun (i, _) -> i <> id) t.hooks
let remove_hooks t = t.hooks <- []
let hz t = t.hz
let period t = t.period
let ticks_delivered t ~core = t.ticks.(core)
let tick_alive t ~core = t.alive.(core)
