module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Cpu = Satin_hw.Cpu
module Platform = Satin_hw.Platform
module Cache = Satin_cache.Cache
module Obs = Satin_obs.Obs

(* Every CFS task owns a fixed 8 KiB working-set footprint in a dedicated
   address window (above the 32 MiB simulated DRAM — the cache model is
   presence-only, so footprints need no backing store). Dispatching the
   task re-touches it on the dispatching core: hot re-dispatches are all
   cache hits, a migration or a competing working set refills through the
   shared L2 — the benign-eviction noise floor the cache probers must
   threshold above. RT tasks (probers, introspection threads) model as
   footprint-free tight loops. Slots are assigned per scheduler in
   first-dispatch order — task ids come from a process-global counter, so
   keying the address on them would make the footprint (and the probers'
   noise floor) depend on how many tasks earlier scenarios created. *)
let footprint_bytes = 8192
let footprint_window = 1 lsl 27

module Params = struct
  let sched_latency = Sim_time.us 6_000
  let min_granularity = Sim_time.us 750
  let wakeup_granularity = Sim_time.us 1_000
end

type running = {
  r_task : Task.t;
  r_after : unit -> Task.after;
  mutable r_left : Sim_time.t; (* CPU still owed to the current step *)
  mutable r_started : Sim_time.t;
  mutable r_handle : Engine.handle option;
}

type core_sched = {
  cpu : Cpu.t;
  mutable rt_queue : Task.t list; (* desc priority; FIFO within a priority *)
  mutable cfs_queue : Task.t list; (* asc vruntime *)
  mutable cur : running option;
  mutable min_vruntime : float;
}

type t = {
  engine : Engine.t;
  cache : Cache.t;
  cores : core_sched array;
  mutable enqueue_hooks : (core:int -> unit) list;
  mutable switches : int;
  mutable spawned : (int, unit) Hashtbl.t;
  rt_enqueued : (int, Sim_time.t) Hashtbl.t;
      (* task id -> enqueue instant, for the RT dispatch-latency metric;
         populated only while an observability sink is installed *)
  footprint_slots : (int, int) Hashtbl.t; (* task id -> footprint slot *)
  mutable footprint_next : int;
}

let footprint_base t task =
  let id = Task.id task in
  let slot =
    match Hashtbl.find_opt t.footprint_slots id with
    | Some s -> s
    | None ->
        let s = t.footprint_next in
        t.footprint_next <- s + 1;
        Hashtbl.add t.footprint_slots id s;
        s
  in
  footprint_window + (slot mod 4096 * footprint_bytes)

let exited task = Task.state task = Task.Exited

let rt_prio task =
  match Task.policy task with Task.Rt_fifo p -> p | Task.Cfs -> -1

(* ---- queue plumbing ---- *)

let insert_rt cs task ~front =
  let p = rt_prio task in
  let rec go = function
    | [] -> [ task ]
    | hd :: tl ->
        let hp = rt_prio hd in
        if p > hp || (front && p = hp) then task :: hd :: tl else hd :: go tl
  in
  cs.rt_queue <- go cs.rt_queue

let insert_cfs cs task =
  let v = Task.vruntime task in
  let rec go = function
    | [] -> [ task ]
    | hd :: tl -> if v < Task.vruntime hd then task :: hd :: tl else hd :: go tl
  in
  cs.cfs_queue <- go cs.cfs_queue

let remove_task cs task =
  cs.rt_queue <- List.filter (fun x -> x != task) cs.rt_queue;
  cs.cfs_queue <- List.filter (fun x -> x != task) cs.cfs_queue

let nr_cfs cs =
  List.length cs.cfs_queue
  + match cs.cur with
    | Some r when Task.policy r.r_task = Task.Cfs -> 1
    | Some _ | None -> 0

let cfs_slice cs =
  let n = max 1 (nr_cfs cs) in
  Sim_time.max Params.min_granularity
    (Sim_time.ns (Params.sched_latency / n))

(* ---- core run loop ---- *)

(* Advance the queue floor monotonically towards the smallest vruntime
   still runnable (Linux's update_min_vruntime). *)
let update_min_vruntime cs =
  let candidate =
    match cs.cur, cs.cfs_queue with
    | Some r, head :: _ when Task.policy r.r_task = Task.Cfs ->
        Some (Float.min (Task.vruntime r.r_task) (Task.vruntime head))
    | Some r, [] when Task.policy r.r_task = Task.Cfs ->
        Some (Task.vruntime r.r_task)
    | _, head :: _ -> Some (Task.vruntime head)
    | _, [] -> None
  in
  match candidate with
  | Some v when v > cs.min_vruntime -> cs.min_vruntime <- v
  | Some _ | None -> ()

let charge cs r elapsed =
  Task.add_cpu_time r.r_task elapsed;
  (if Task.policy r.r_task = Task.Cfs then begin
     let v = Task.vruntime r.r_task +. Sim_time.to_sec_f elapsed in
     Task.set_vruntime r.r_task v;
     update_min_vruntime cs
   end);
  r.r_left <- Sim_time.sub r.r_left elapsed

let rec dispatch ?(fuel = 64) t cs =
  if cs.cur = None && not (Cpu.in_secure cs.cpu) then begin
    match pick cs with
    | None -> ()
    | Some task ->
        (* The pick is always a queue head: pop it without filtering. *)
        (match cs.rt_queue, cs.cfs_queue with
        | hd :: tl, _ when hd == task -> cs.rt_queue <- tl
        | _, hd :: tl when hd == task -> cs.cfs_queue <- tl
        | _ -> remove_task cs task);
        Task.set_state task Task.Running;
        Task.incr_dispatches task;
        if Task.policy task = Task.Cfs then
          Cache.touch_range t.cache ~core:(Cpu.id cs.cpu)
            ~addr:(footprint_base t task) ~len:footprint_bytes;
        t.switches <- t.switches + 1;
        if Obs.active () then begin
          Obs.incr "sched.dispatches";
          match Task.policy task, Hashtbl.find_opt t.rt_enqueued (Task.id task) with
          | Task.Rt_fifo _, Some enq ->
              Hashtbl.remove t.rt_enqueued (Task.id task);
              Obs.observe_time "sched.rt_dispatch_latency"
                (Sim_time.diff (Engine.now t.engine) enq)
          | _ -> ()
        end;
        begin_step t cs task ~fuel
  end

and pick cs =
  match cs.rt_queue with
  | task :: _ -> Some task
  | [] -> ( match cs.cfs_queue with task :: _ -> Some task | [] -> None)

and begin_step t cs task ~fuel =
  let step =
    match Task.remaining task with
    | Some s ->
        Task.set_remaining task None;
        s
    | None -> Task.body task task
  in
  if step.Task.cpu = Sim_time.zero then begin
    if fuel = 0 then
      invalid_arg
        (Printf.sprintf "Sched: task %s livelocks on zero-cpu steps"
           (Task.name task));
    apply_after t cs task step.Task.after ~fuel:(fuel - 1)
  end
  else begin
    let r =
      {
        r_task = task;
        r_after = step.Task.after;
        r_left = step.Task.cpu;
        r_started = Engine.now t.engine;
        r_handle = None;
      }
    in
    cs.cur <- Some r;
    arm_slice t cs r
  end

and arm_slice t cs r =
  let grant =
    match Task.policy r.r_task with
    | Task.Rt_fifo _ -> r.r_left
    | Task.Cfs -> Sim_time.min r.r_left (cfs_slice cs)
  in
  r.r_started <- Engine.now t.engine;
  r.r_handle <- Some (Engine.schedule t.engine ~after:grant (slice_end t cs r))

and slice_end t cs r () =
  r.r_handle <- None;
  let elapsed = Sim_time.diff (Engine.now t.engine) r.r_started in
  charge cs r elapsed;
  if r.r_left > Sim_time.zero then begin
    (* Step unfinished: a CFS slice expired. Requeue fairly if someone with a
       smaller vruntime is waiting; otherwise keep running. *)
    match cs.cfs_queue with
    | other :: _ when Task.vruntime other < Task.vruntime r.r_task ->
        Task.set_remaining r.r_task (Some { Task.cpu = r.r_left; after = r.r_after });
        Task.set_state r.r_task Task.Ready;
        insert_cfs cs r.r_task;
        cs.cur <- None;
        dispatch t cs
    | _ :: _ | [] -> arm_slice t cs r
  end
  else begin
    cs.cur <- None;
    apply_after t cs r.r_task r.r_after ~fuel:64
  end

and apply_after t cs task after ~fuel =
  match after () with
  | Task.Reenter -> (
      match Task.policy task with
      | Task.Rt_fifo _ -> begin_step t cs task ~fuel
      | Task.Cfs ->
          (* Fair re-entry: back to the queue, then pick the best — carrying
             the fuel so a zero-cpu Reenter loop cannot spin forever at one
             instant through the dispatch path. *)
          Task.set_state task Task.Ready;
          insert_cfs cs task;
          dispatch ~fuel t cs)
  | Task.Sleep d ->
      Task.set_state task Task.Sleeping;
      Task.bump_sleep_epoch task;
      let epoch = Task.sleep_epoch task in
      ignore
        (Engine.schedule t.engine ~after:d (fun () ->
             if Task.state task = Task.Sleeping && Task.sleep_epoch task = epoch
             then wake t task));
      dispatch t cs
  | Task.Block ->
      Task.set_state task Task.Sleeping;
      (* Invalidate any still-pending sleep timer from an earlier state. *)
      Task.bump_sleep_epoch task;
      dispatch t cs
  | Task.Exit ->
      Task.set_state task Task.Exited;
      dispatch t cs

(* ---- preemption ---- *)

and preempt t cs =
  match cs.cur with
  | None -> ()
  | Some r ->
      (match r.r_handle with
      | Some h -> Engine.cancel t.engine h
      | None -> ());
      r.r_handle <- None;
      let elapsed = Sim_time.diff (Engine.now t.engine) r.r_started in
      charge cs r elapsed;
      Task.set_remaining r.r_task
        (Some { Task.cpu = Sim_time.max Sim_time.zero r.r_left; after = r.r_after });
      Task.set_state r.r_task Task.Ready;
      (match Task.policy r.r_task with
      | Task.Rt_fifo _ -> insert_rt cs r.r_task ~front:true
      | Task.Cfs -> insert_cfs cs r.r_task);
      if Obs.active () then
        Obs.incr "sched.preemptions"
          ~labels:[ ("core", string_of_int (Cpu.id cs.cpu)) ];
      cs.cur <- None

and wake t task =
  match Task.state task with
  | Task.Sleeping ->
      Task.set_state task Task.Ready;
      (* Any sleep-expiry timer still in flight is now stale. *)
      Task.bump_sleep_epoch task;
      (* Sleeper credit (GENTLE_FAIR_SLEEPERS): a waking task is placed half
         a latency period behind the queue floor, so an interactive task can
         preempt a CPU hog on wake-up. *)
      (if Task.policy task = Task.Cfs then begin
         let credit =
           (match Task.affinity task, Task.assigned_core task with
            | Some c, _ | None, Some c -> t.cores.(c).min_vruntime
            | None, None -> 0.0)
           -. (Sim_time.to_sec_f Params.sched_latency /. 2.0)
         in
         if Task.vruntime task < credit then Task.set_vruntime task credit
       end);
      let core =
        match Task.affinity task with
        | Some c -> c
        | None -> (
            match Task.assigned_core task with
            | Some c when not (Cpu.in_secure t.cores.(c).cpu) -> c
            | Some _ | None -> least_loaded_normal t)
      in
      Task.set_assigned_core task (Some core);
      enqueue t core task
  | Task.Ready | Task.Running | Task.Exited -> ()

and least_loaded_normal t =
  (* Prefer awake cores; fall back to core 0 when everything is secure. *)
  let best = ref None in
  Array.iteri
    (fun i cs ->
      if not (Cpu.in_secure cs.cpu) then begin
        let load =
          List.length cs.rt_queue + List.length cs.cfs_queue
          + (match cs.cur with Some _ -> 1 | None -> 0)
        in
        match !best with
        | Some (_, l) when l <= load -> ()
        | Some _ | None -> best := Some (i, load)
      end)
    t.cores;
  match !best with Some (i, _) -> i | None -> 0

and enqueue t core task =
  let cs = t.cores.(core) in
  (match Task.policy task with
  | Task.Rt_fifo _ ->
      if Obs.active () then
        Hashtbl.replace t.rt_enqueued (Task.id task) (Engine.now t.engine);
      insert_rt cs task ~front:false
  | Task.Cfs ->
      (* A waking CFS task must not monopolize: bring it up to the queue's
         current floor. *)
      if Task.vruntime task < cs.min_vruntime then
        Task.set_vruntime task cs.min_vruntime;
      insert_cfs cs task);
  List.iter (fun f -> f ~core) t.enqueue_hooks;
  check_preempt t cs task;
  dispatch t cs

and check_preempt t cs woken =
  match cs.cur with
  | None -> ()
  | Some r -> (
      match Task.policy woken, Task.policy r.r_task with
      | Task.Rt_fifo _, Task.Cfs -> preempt t cs
      | Task.Rt_fifo wp, Task.Rt_fifo cp -> if wp > cp then preempt t cs
      | Task.Cfs, Task.Cfs ->
          let gap = Task.vruntime r.r_task -. Task.vruntime woken in
          if gap > Sim_time.to_sec_f Params.wakeup_granularity then preempt t cs
      | Task.Cfs, Task.Rt_fifo _ -> ())

let create platform =
  let engine = platform.Platform.engine in
  let t =
    {
      engine;
      cache = platform.Platform.cache;
      cores =
        Array.map
          (fun cpu ->
            { cpu; rt_queue = []; cfs_queue = []; cur = None; min_vruntime = 0.0 })
          platform.Platform.cores;
      enqueue_hooks = [];
      switches = 0;
      spawned = Hashtbl.create 64;
      rt_enqueued = Hashtbl.create 16;
      footprint_slots = Hashtbl.create 64;
      footprint_next = 0;
    }
  in
  Array.iter
    (fun cs ->
      Cpu.on_world_change cs.cpu (fun _ world ->
          match world with
          | Satin_hw.World.Secure -> preempt t cs
          | Satin_hw.World.Normal -> dispatch t cs))
    t.cores;
  t

let spawn t task =
  if Hashtbl.mem t.spawned (Task.id task) then
    invalid_arg (Printf.sprintf "Sched.spawn: %s already spawned" (Task.name task));
  Hashtbl.replace t.spawned (Task.id task) ();
  let core =
    match Task.affinity task with
    | Some c ->
        if c < 0 || c >= Array.length t.cores then
          invalid_arg "Sched.spawn: affinity names an unknown core";
        c
    | None -> least_loaded_normal t
  in
  Task.set_assigned_core task (Some core);
  enqueue t core task

let wake = wake

let scheduler_tick t ~core =
  let cs = t.cores.(core) in
  match cs.cur with
  | Some r when Task.policy r.r_task = Task.Cfs -> (
      match cs.cfs_queue with
      | other :: _
        when Task.vruntime r.r_task -. Task.vruntime other
             > Sim_time.to_sec_f Params.wakeup_granularity ->
          preempt t cs;
          dispatch t cs
      | _ :: _ | [] -> ())
  | Some _ | None -> dispatch t cs

let current t ~core =
  match t.cores.(core).cur with Some r -> Some r.r_task | None -> None

let has_work t ~core =
  let cs = t.cores.(core) in
  cs.cur <> None || cs.rt_queue <> [] || cs.cfs_queue <> []

let runnable_count t ~core =
  let cs = t.cores.(core) in
  List.length cs.rt_queue + List.length cs.cfs_queue
  + match cs.cur with Some _ -> 1 | None -> 0

let on_enqueue t f = t.enqueue_hooks <- t.enqueue_hooks @ [ f ]
let context_switches t = t.switches

let invariant_violations t =
  let out = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  Array.iteri
    (fun core cs ->
      (* A core held by the secure world parks its current task. *)
      (match cs.cur with
      | Some r when Cpu.in_secure cs.cpu ->
          fail "core %d: secure world but %s still current" core
            (Task.name r.r_task)
      | Some r when Task.state r.r_task <> Task.Running ->
          fail "core %d: current task %s not in Running state" core
            (Task.name r.r_task)
      | Some _ | None -> ());
      let check_queued which task =
        if Task.state task <> Task.Ready then
          fail "core %d: %s-queued task %s not in Ready state" core which
            (Task.name task)
      in
      List.iter (check_queued "rt") cs.rt_queue;
      List.iter (check_queued "cfs") cs.cfs_queue;
      (* rt_queue descending static priority. *)
      let rec rt_order = function
        | a :: (b :: _ as tl) ->
            if rt_prio a < rt_prio b then
              fail "core %d: rt_queue out of priority order (%s < %s)" core
                (Task.name a) (Task.name b);
            rt_order tl
        | [ _ ] | [] -> ()
      in
      rt_order cs.rt_queue;
      (* cfs_queue ascending vruntime. *)
      let rec cfs_order = function
        | a :: (b :: _ as tl) ->
            if Task.vruntime a > Task.vruntime b then
              fail "core %d: cfs_queue out of vruntime order (%s > %s)" core
                (Task.name a) (Task.name b);
            cfs_order tl
        | [ _ ] | [] -> ()
      in
      cfs_order cs.cfs_queue;
      (* No task queued twice, and no current task also queued. *)
      let all =
        (match cs.cur with Some r -> [ r.r_task ] | None -> [])
        @ cs.rt_queue @ cs.cfs_queue
      in
      let rec dup = function
        | a :: tl ->
            if List.memq a tl then
              fail "core %d: task %s present twice in the run queues" core
                (Task.name a);
            dup tl
        | [] -> ()
      in
      dup all)
    t.cores;
  List.rev !out
