(** Rich OS kernel image layout (System.map model).

    The paper's normal world runs an OpenEmbedded Linux (lsk-4.4-armlt) whose
    static kernel spans 11,916,240 bytes, which SATIN divides into 19
    introspection areas aligned to System.map entries, the largest area being
    876,616 bytes and the smallest 431,360 bytes (§IV-C, §VI-A2).

    This module rebuilds that image synthetically: a symbol table whose
    consecutive symbols tile the same 11,916,240 bytes, grouped so a
    partition along symbol boundaries can reproduce the paper's 19 canonical
    areas exactly. Two symbols are load-bearing for the experiments:

    - ["vectors"] — the AArch64 exception vector table (2 KiB), in area 0;
      KProber-I's IRQ-vector hijack dirties it.
    - ["sys_call_table"] — 400 8-byte entries, placed inside area 14; the
      sample rootkit hijacks entry 178 (GETTID on arm64). *)

type symbol = {
  sym_name : string;
  sym_addr : int; (** absolute physical address *)
  sym_size : int;
}

type t

val paper_layout : ?base:int -> unit -> t
(** The lsk-4.4-style image described above. [base] defaults to 2 MiB. *)

val synthetic : base:int -> total_size:int -> areas:int -> seed:int -> t
(** A generated layout for property tests and the area-tuning example:
    [areas] canonical areas of pseudo-random sizes tiling [total_size]. *)

val base : t -> int
val total_size : t -> int
val symbols : t -> symbol list
(** Ascending by address; consecutive, gap-free, tiling the image. *)

val canonical_area_sizes : t -> int list
(** Sizes of the canonical areas, in address order. For {!paper_layout}:
    19 sizes summing to 11,916,240, max 876,616, min 431,360. *)

val find_symbol : t -> string -> symbol
(** Raises [Not_found]. *)

val syscall_table : t -> symbol
val vector_table : t -> symbol

val area_index_of_addr : t -> int -> int
(** Canonical area index containing an absolute address. Raises
    [Invalid_argument] if outside the image. *)

val install : t -> Satin_hw.Memory.t -> seed:int -> Satin_hw.Memory.region
(** Declares the kernel image as a non-secure region and fills it with
    deterministic content (so hashes are meaningful), including a distinct
    recognizable pattern for the syscall table entries. *)

val paper_total_size : int
(** 11,916,240. *)

val gettid_nr : int
(** 178, the arm64 [__NR_gettid]. *)
