(** The kernel's system call table.

    An array of 8-byte handler pointers living in the static kernel image
    (so covered by integrity introspection). The paper's sample attack
    replaces the GETTID entry with a pointer to malicious code — an 8-byte
    modification the introspection detects iff its scan passes any of those
    bytes while they are modified (§IV-A2). *)

type t

val create : Satin_hw.Memory.t -> Layout.t -> t

val entries : t -> int
val entry_addr : t -> int -> int
(** Physical address of entry [n]. Raises [Invalid_argument] out of range. *)

val read_entry : t -> world:Satin_hw.World.t -> int -> int64
val write_entry : t -> world:Satin_hw.World.t -> int -> int64 -> unit

val gettid_addr : t -> int
(** Address of the GETTID (syscall 178) entry. *)
