(** Rich OS assembly: the normal world's operating system.

    [boot] installs the kernel image into physical memory, creates the
    scheduler and tick machinery, and starts ticking — after which tasks can
    be spawned and the secure world can start introspecting the image. *)

type t = {
  platform : Satin_hw.Platform.t;
  layout : Layout.t;
  region : Satin_hw.Memory.region;
  sched : Sched.t;
  tick : Timer_irq.t;
  syscalls : Syscall_table.t;
  vectors : Vector_table.t;
}

val boot :
  ?hz:int -> ?layout:Layout.t -> ?content_seed:int -> Satin_hw.Platform.t -> t
(** Defaults: [hz] from the platform cycle model, the paper's lsk-4.4 style
    {!Layout.paper_layout}, content seed 0xBEEF. *)

val spawn : t -> Task.t -> unit
val wake : t -> Task.t -> unit

val spawn_spinner : t -> core:int -> Task.t
(** A CFS CPU hog pinned to [core] (KProber-I uses one per core to defeat
    NO_HZ_IDLE; also handy as background load). Returns the task. *)

val spawn_load : t -> name:string -> ?affinity:int -> burst:Satin_engine.Sim_time.t -> duty:float -> unit -> Task.t
(** A periodic CFS load: runs [burst] of CPU then sleeps so that its duty
    cycle is [duty] (0 < duty <= 1). *)

val now : t -> Satin_engine.Sim_time.t
