module Memory = Satin_hw.Memory
module World = Satin_hw.World

let node_size = 64

(* Field offsets within a PCB node. *)
let off_pid = 0
let off_tasks_next = 8
let off_tasks_prev = 16
let off_run_next = 24
let off_run_prev = 32
let off_live = 40

type t = {
  memory : Memory.t;
  base : int;
  capacity : int;
  pid_slot : (int, int) Hashtbl.t; (* pid -> slot index *)
  mutable free : int list;
}

let slot_addr t slot = t.base + (slot * node_size)
let tasks_head t = slot_addr t 0
let run_head t = slot_addr t 1

let read_word t ~world addr = Memory.read_int64_le t.memory ~world ~addr
let write_word t ~world addr v = Memory.write_int64_le t.memory ~world ~addr v

let read_addr t ~world addr = Int64.to_int (read_word t ~world addr)
let write_addr t ~world addr v = write_word t ~world addr (Int64.of_int v)

let create ~memory ~base ~capacity =
  if capacity <= 0 then invalid_arg "Proc_table.create: capacity must be positive";
  let size = (capacity + 2) * node_size in
  ignore
    (Memory.add_region memory ~name:"kernel_heap" ~base ~size
       ~security:Memory.Non_secure_region);
  let t =
    {
      memory;
      base;
      capacity;
      pid_slot = Hashtbl.create 32;
      free = List.init capacity (fun i -> i + 2);
    }
  in
  (* Empty circular lists: each sentinel points to itself. *)
  let th = tasks_head t and rh = run_head t in
  write_addr t ~world:World.Secure (th + off_tasks_next) th;
  write_addr t ~world:World.Secure (th + off_tasks_prev) th;
  write_addr t ~world:World.Secure (rh + off_run_next) rh;
  write_addr t ~world:World.Secure (rh + off_run_prev) rh;
  t

let capacity t = t.capacity
let live_count t = Hashtbl.length t.pid_slot

let addr_of_pid t ~pid =
  match Hashtbl.find_opt t.pid_slot pid with
  | Some slot -> slot_addr t slot
  | None -> raise Not_found

(* Insert [node] at the tail of the circular list anchored at [head], using
   field offsets [next]/[prev]. *)
let list_insert t ~world ~head ~next ~prev node =
  let tail = read_addr t ~world (head + prev) in
  write_addr t ~world (node + prev) tail;
  write_addr t ~world (node + next) head;
  write_addr t ~world (tail + next) node;
  write_addr t ~world (head + prev) node

let list_unlink t ~world ~next ~prev node =
  let n = read_addr t ~world (node + next) in
  let p = read_addr t ~world (node + prev) in
  write_addr t ~world (p + next) n;
  write_addr t ~world (n + prev) p

let list_relink t ~world ~next ~prev node =
  let n = read_addr t ~world (node + next) in
  let p = read_addr t ~world (node + prev) in
  write_addr t ~world (p + next) node;
  write_addr t ~world (n + prev) node

let spawn t ~pid ?(runnable = true) () =
  if Hashtbl.mem t.pid_slot pid then
    invalid_arg (Printf.sprintf "Proc_table.spawn: pid %d exists" pid);
  match t.free with
  | [] -> invalid_arg "Proc_table.spawn: table full"
  | slot :: rest ->
      t.free <- rest;
      Hashtbl.replace t.pid_slot pid slot;
      let node = slot_addr t slot in
      let world = World.Normal in
      write_word t ~world (node + off_pid) (Int64.of_int pid);
      write_word t ~world (node + off_live) 1L;
      list_insert t ~world ~head:(tasks_head t) ~next:off_tasks_next
        ~prev:off_tasks_prev node;
      if runnable then
        list_insert t ~world ~head:(run_head t) ~next:off_run_next
          ~prev:off_run_prev node
      else begin
        (* Park the run links pointing at the node itself so a later unlink
           of the run list is harmless. *)
        write_addr t ~world (node + off_run_next) node;
        write_addr t ~world (node + off_run_prev) node
      end

let walk t ~world ~head ~next =
  let limit = t.capacity + 2 in
  let rec go addr acc n =
    if addr = head || n > limit then List.rev acc
    else
      let pid = Int64.to_int (read_word t ~world (addr + off_pid)) in
      go (read_addr t ~world (addr + next)) (pid :: acc) (n + 1)
  in
  go (read_addr t ~world (head + next)) [] 0

let pids_via_tasks t ~world =
  walk t ~world ~head:(tasks_head t) ~next:off_tasks_next

let pids_via_runqueue t ~world = walk t ~world ~head:(run_head t) ~next:off_run_next

let tasks_linked t ~pid =
  List.mem pid (pids_via_tasks t ~world:World.Secure)

let unlink_tasks t ~world ~pid =
  let node = addr_of_pid t ~pid in
  if tasks_linked t ~pid then
    list_unlink t ~world ~next:off_tasks_next ~prev:off_tasks_prev node

let relink_tasks t ~world ~pid =
  let node = addr_of_pid t ~pid in
  if not (tasks_linked t ~pid) then
    list_relink t ~world ~next:off_tasks_next ~prev:off_tasks_prev node

let invariant_violations t =
  let world = World.Secure in
  let out = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> out := s :: !out) fmt in
  let limit = t.capacity + 2 in
  (* Walk a list checking next/prev mutual consistency and termination.
     Note the checks hold even mid-DKOM: an unlinked node is simply not
     reachable, and cross-view divergence is the detector's business, not
     a structural corruption. *)
  let check_list name head next prev =
    let rec go addr n =
      if addr <> head then
        if n > limit then fail "%s list does not terminate (cycle?)" name
        else begin
          let nxt = read_addr t ~world (addr + next) in
          if read_addr t ~world (nxt + prev) <> addr then
            fail "%s list: node 0x%x next/prev mismatch" name addr;
          let pid = Int64.to_int (read_word t ~world (addr + off_pid)) in
          (match Hashtbl.find_opt t.pid_slot pid with
          | Some slot when slot_addr t slot = addr -> ()
          | Some _ ->
              fail "%s list: pid %d linked at 0x%x but allocated elsewhere"
                name pid addr
          | None -> fail "%s list: pid %d linked but not allocated" name pid);
          if read_word t ~world (addr + off_live) <> 1L then
            fail "%s list: pid %d linked but live flag clear" name pid;
          go nxt (n + 1)
        end
    in
    go (read_addr t ~world (head + next)) 0
  in
  check_list "tasks" (tasks_head t) off_tasks_next off_tasks_prev;
  check_list "runqueue" (run_head t) off_run_next off_run_prev;
  (* Every runnable process must be a live allocated one; duplicates in a
     walk mean a splice went wrong. *)
  let run = pids_via_runqueue t ~world in
  let rec dups = function
    | p :: tl ->
        if List.mem p tl then fail "runqueue lists pid %d twice" p;
        dups tl
    | [] -> ()
  in
  dups run;
  dups (pids_via_tasks t ~world);
  (* Free-list accounting: free + live = capacity, no slot on both sides. *)
  if List.length t.free + Hashtbl.length t.pid_slot <> t.capacity then
    fail "slot accounting: %d free + %d live <> capacity %d"
      (List.length t.free)
      (Hashtbl.length t.pid_slot)
      t.capacity;
  Hashtbl.iter
    (fun pid slot ->
      if List.mem slot t.free then
        fail "slot %d of live pid %d is also on the free list" slot pid)
    t.pid_slot;
  List.rev !out

let exit_process t ~pid =
  let node = addr_of_pid t ~pid in
  let world = World.Normal in
  if tasks_linked t ~pid then
    list_unlink t ~world ~next:off_tasks_next ~prev:off_tasks_prev node;
  if List.mem pid (pids_via_runqueue t ~world) then
    list_unlink t ~world ~next:off_run_next ~prev:off_run_prev node;
  write_word t ~world (node + off_live) 0L;
  let slot = Hashtbl.find t.pid_slot pid in
  Hashtbl.remove t.pid_slot pid;
  t.free <- slot :: t.free
