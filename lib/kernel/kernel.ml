module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Platform = Satin_hw.Platform

type t = {
  platform : Platform.t;
  layout : Layout.t;
  region : Satin_hw.Memory.region;
  sched : Sched.t;
  tick : Timer_irq.t;
  syscalls : Syscall_table.t;
  vectors : Vector_table.t;
}

let boot ?hz ?layout ?(content_seed = 0xBEEF) platform =
  let layout = match layout with Some l -> l | None -> Layout.paper_layout () in
  let hz =
    match hz with Some h -> h | None -> platform.Platform.cycle.Satin_hw.Cycle_model.tick_hz
  in
  let region = Layout.install layout platform.Platform.memory ~seed:content_seed in
  let sched = Sched.create platform in
  let tick = Timer_irq.create ~platform ~sched ~hz in
  Timer_irq.start tick;
  {
    platform;
    layout;
    region;
    sched;
    tick;
    syscalls = Syscall_table.create platform.Platform.memory layout;
    vectors = Vector_table.create platform.Platform.memory layout;
  }

let spawn t task = Sched.spawn t.sched task
let wake t task = Sched.wake t.sched task

let spawn_spinner t ~core =
  let task =
    Task.create
      ~name:(Printf.sprintf "spinner/%d" core)
      ~policy:Task.Cfs ~affinity:core
      ~body:(fun _ ->
        { Task.cpu = Sim_time.us 1_000; after = (fun () -> Task.Reenter) })
      ()
  in
  spawn t task;
  task

let spawn_load t ~name ?affinity ~burst ~duty () =
  if duty <= 0.0 || duty > 1.0 then
    invalid_arg "Kernel.spawn_load: duty must be in (0, 1]";
  let sleep =
    Sim_time.max Sim_time.zero
      (Sim_time.of_sec_f (Sim_time.to_sec_f burst *. ((1.0 /. duty) -. 1.0)))
  in
  let body _ =
    {
      Task.cpu = burst;
      after =
        (fun () -> if sleep = Sim_time.zero then Task.Reenter else Task.Sleep sleep);
    }
  in
  let task = Task.create ~name ~policy:Task.Cfs ?affinity ~body () in
  spawn t task;
  task

let now t = Engine.now t.platform.Platform.engine
