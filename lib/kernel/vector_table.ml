module Memory = Satin_hw.Memory

type t = { memory : Memory.t; base : int; mutable original : string option }

let irq_el1_offset = 0x280
let stub = "\xde\xad\xbe\xef\x0b\xad\xf0\x0d" (* detour branch, 8 bytes *)

let create memory layout =
  { memory; base = (Layout.vector_table layout).Layout.sym_addr; original = None }

let base t = t.base
let irq_vector_addr t = t.base + irq_el1_offset

let current_bytes t ~world =
  Bytes.to_string
    (Memory.read_bytes t.memory ~world ~addr:(irq_vector_addr t)
       ~len:(String.length stub))

let hijack_irq t ~world =
  if t.original = None then
    t.original <- Some (current_bytes t ~world);
  Memory.write_string t.memory ~world ~addr:(irq_vector_addr t) stub

let restore_irq t ~world =
  match t.original with
  | Some bytes -> Memory.write_string t.memory ~world ~addr:(irq_vector_addr t) bytes
  | None -> ()

let irq_hijacked t =
  match t.original with
  | None -> false
  | Some bytes -> current_bytes t ~world:Satin_hw.World.Secure <> bytes
