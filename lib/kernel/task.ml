module Sim_time = Satin_engine.Sim_time

type policy = Cfs | Rt_fifo of int

let rt_priority_max = 99

type state = Ready | Running | Sleeping | Exited

type after = Reenter | Sleep of Sim_time.t | Block | Exit

type step = { cpu : Sim_time.t; after : unit -> after }

type t = {
  id : int;
  name : string;
  policy : policy;
  affinity : int option;
  body : t -> step;
  mutable state : state;
  mutable vruntime : float;
  mutable cpu_time : Sim_time.t;
  mutable dispatches : int;
  mutable assigned_core : int option;
  mutable remaining : step option;
  mutable sleep_epoch : int;
}

(* Atomic: scenarios on concurrent runner domains create tasks in
   parallel, and a lost update here would alias two ids inside one
   scheduler's per-id tables. Nothing simulation-visible may depend on the
   id *value* (it reflects process history) — only on distinctness. *)
let next_id = Atomic.make 0

let create ~name ~policy ?affinity ~body () =
  (match policy with
  | Rt_fifo p when p < 1 || p > rt_priority_max ->
      invalid_arg "Task.create: RT priority out of 1..99"
  | Rt_fifo _ | Cfs -> ());
  {
    id = Atomic.fetch_and_add next_id 1 + 1;
    name;
    policy;
    affinity;
    body;
    state = Ready;
    vruntime = 0.0;
    cpu_time = Sim_time.zero;
    dispatches = 0;
    assigned_core = None;
    remaining = None;
    sleep_epoch = 0;
  }

let id t = t.id
let name t = t.name
let policy t = t.policy
let affinity t = t.affinity
let state t = t.state
let is_pinned t = t.affinity <> None
let cpu_time t = t.cpu_time
let vruntime t = t.vruntime
let dispatches t = t.dispatches

let pp fmt t =
  let policy_str =
    match t.policy with
    | Cfs -> "cfs"
    | Rt_fifo p -> Printf.sprintf "rt:%d" p
  in
  Format.fprintf fmt "task%d<%s,%s>" t.id t.name policy_str

let set_state t s = t.state <- s
let set_vruntime t v = t.vruntime <- v
let add_cpu_time t d = t.cpu_time <- Sim_time.add t.cpu_time d
let incr_dispatches t = t.dispatches <- t.dispatches + 1
let body t = t.body
let assigned_core t = t.assigned_core
let set_assigned_core t c = t.assigned_core <- c
let remaining t = t.remaining
let set_remaining t r = t.remaining <- r
let sleep_epoch t = t.sleep_epoch
let bump_sleep_epoch t = t.sleep_epoch <- t.sleep_epoch + 1
