module Prng = Satin_engine.Prng
module Memory = Satin_hw.Memory

type symbol = { sym_name : string; sym_addr : int; sym_size : int }

type t = {
  base : int;
  total_size : int;
  symbols : symbol list;
  area_sizes : int list;
  syscall_table : symbol;
  vector_table : symbol;
}

let paper_total_size = 11_916_240
let gettid_nr = 178
let syscall_table_entries = 400
let syscall_table_size = syscall_table_entries * 8
let vector_table_size = 2048

(* The paper's 19 canonical areas: sum 11,916,240, max 876,616 (area 0),
   min 431,360 (area 18); §VI-A2. The interior sizes are synthetic but match
   the reported envelope. *)
let paper_area_sizes =
  [ 876_616; 560_264 ]
  @ List.init 16 (fun i -> 568_000 + (8_000 * i))
  @ [ 431_360 ]

(* A pool of plausible lsk-4.4 arm64 symbol names; combined with a counter
   suffix to stay unique. *)
let name_pool =
  [|
    "el1_irq"; "el0_svc"; "vectors_end"; "kmalloc"; "kfree"; "do_fork";
    "schedule"; "pick_next_task_fair"; "enqueue_task_rt"; "hrtimer_interrupt";
    "tick_sched_timer"; "handle_IPI"; "gic_handle_irq"; "do_el0_svc";
    "sys_read"; "sys_write"; "sys_openat"; "vfs_read"; "ext4_readpage";
    "tcp_sendmsg"; "ip_rcv"; "dev_queue_xmit"; "__memcpy"; "__memset";
    "strncpy_from_user"; "copy_page"; "flush_tlb_mm"; "set_pte_at";
    "handle_mm_fault"; "do_page_fault"; "wake_up_process"; "mutex_lock";
    "spin_lock_irqsave"; "rcu_read_lock"; "ktime_get"; "getnstimeofday64";
    "proc_create"; "register_filesystem"; "kobject_add"; "sysfs_create_file";
  |]

let chunk_symbols prng ~prefix ~addr ~size ~start_idx =
  (* Tile [size] bytes starting at [addr] with symbols of 16–96 KiB. *)
  let rec go acc addr remaining idx =
    if remaining = 0 then List.rev acc, idx
    else
      let chunk =
        if remaining <= 24_576 then remaining
        else min remaining (16_384 + Prng.int prng 81_920)
      in
      (* Avoid a tiny tail symbol. *)
      let chunk =
        if remaining - chunk > 0 && remaining - chunk < 4_096 then remaining
        else chunk
      in
      let name = Printf.sprintf "%s_%s" name_pool.(idx mod Array.length name_pool)
          (string_of_int idx)
      in
      ignore prefix;
      let sym = { sym_name = name; sym_addr = addr; sym_size = chunk } in
      go (sym :: acc) (addr + chunk) (remaining - chunk) (idx + 1)
  in
  go [] addr size start_idx

let build ~base ~area_sizes ~seed ~special =
  (* [special] maps an area index to a list of (name, size, offset_fraction)
     symbols carved at roughly that fraction of the area. *)
  let prng = Prng.create seed in
  let syms = ref [] in
  let idx = ref 0 in
  let addr = ref base in
  List.iteri
    (fun area_i size ->
      let specials = special area_i in
      let cursor = ref !addr in
      let remaining_start = !addr in
      List.iter
        (fun (name, ssize, frac) ->
          let target =
            remaining_start + int_of_float (frac *. float_of_int size)
          in
          let gap = max 0 (min (target - !cursor)
                             (remaining_start + size - ssize - !cursor)) in
          if gap > 0 then begin
            let chunks, nidx =
              chunk_symbols prng ~prefix:name ~addr:!cursor ~size:gap
                ~start_idx:!idx
            in
            idx := nidx;
            syms := List.rev_append chunks !syms;
            cursor := !cursor + gap
          end;
          syms := { sym_name = name; sym_addr = !cursor; sym_size = ssize } :: !syms;
          cursor := !cursor + ssize)
        specials;
      let tail = remaining_start + size - !cursor in
      if tail > 0 then begin
        let chunks, nidx =
          chunk_symbols prng ~prefix:"tail" ~addr:!cursor ~size:tail
            ~start_idx:!idx
        in
        idx := nidx;
        syms := List.rev_append chunks !syms
      end;
      addr := remaining_start + size)
    area_sizes;
  List.rev !syms

let find_in syms name = List.find (fun s -> s.sym_name = name) syms

let paper_layout ?(base = 2 * 1024 * 1024) () =
  let special = function
    | 0 -> [ ("vectors", vector_table_size, 0.0) ]
    | 14 -> [ ("sys_call_table", syscall_table_size, 0.45) ]
    | _ -> []
  in
  let symbols = build ~base ~area_sizes:paper_area_sizes ~seed:0xA5A5 ~special in
  {
    base;
    total_size = paper_total_size;
    symbols;
    area_sizes = paper_area_sizes;
    syscall_table = find_in symbols "sys_call_table";
    vector_table = find_in symbols "vectors";
  }

let synthetic ~base ~total_size ~areas ~seed =
  if areas <= 0 || total_size < areas * 4096 then
    invalid_arg "Layout.synthetic: bad dimensions";
  let prng = Prng.create seed in
  let avg = total_size / areas in
  let sizes = Array.make areas 0 in
  let assigned = ref 0 in
  for i = 0 to areas - 2 do
    let lo = max 4096 (avg * 7 / 10) and hi = avg * 13 / 10 in
    let s = lo + Prng.int prng (max 1 (hi - lo)) in
    let s = min s (total_size - !assigned - ((areas - 1 - i) * 4096)) in
    sizes.(i) <- s;
    assigned := !assigned + s
  done;
  sizes.(areas - 1) <- total_size - !assigned;
  let area_sizes = Array.to_list sizes in
  let special = function
    | 0 -> [ ("vectors", vector_table_size, 0.0) ]
    | i when i = areas / 2 -> [ ("sys_call_table", syscall_table_size, 0.5) ]
    | _ -> []
  in
  let symbols = build ~base ~area_sizes ~seed ~special in
  {
    base;
    total_size;
    symbols;
    area_sizes;
    syscall_table = find_in symbols "sys_call_table";
    vector_table = find_in symbols "vectors";
  }

let base t = t.base
let total_size t = t.total_size
let symbols t = t.symbols
let canonical_area_sizes t = t.area_sizes
let find_symbol t name = find_in t.symbols name
let syscall_table t = t.syscall_table
let vector_table t = t.vector_table

let area_index_of_addr t addr =
  if addr < t.base || addr >= t.base + t.total_size then
    invalid_arg "Layout.area_index_of_addr: outside kernel image";
  let rec go i start = function
    | [] -> invalid_arg "Layout.area_index_of_addr: unreachable"
    | size :: rest ->
        if addr < start + size then i else go (i + 1) (start + size) rest
  in
  go 0 t.base t.area_sizes

let install t memory ~seed =
  let region =
    Memory.add_region memory ~name:"kernel_image" ~base:t.base ~size:t.total_size
      ~security:Memory.Non_secure_region
  in
  let prng = Prng.create seed in
  (* Fill the image 8 bytes at a time with deterministic pseudo-random
     content so that integrity hashes are non-trivial. *)
  let buf = Buffer.create t.total_size in
  while Buffer.length buf < t.total_size do
    Buffer.add_int64_le buf (Prng.next_int64 prng)
  done;
  Memory.write_string memory ~world:Satin_hw.World.Secure ~addr:t.base
    (String.sub (Buffer.contents buf) 0 t.total_size);
  (* Syscall table entries look like kernel text pointers. *)
  let tbl = Buffer.create syscall_table_size in
  for n = 0 to syscall_table_entries - 1 do
    Buffer.add_int64_le tbl
      (Int64.add 0xffff000008080000L (Int64.of_int (n * 0x400)))
  done;
  Memory.write_string memory ~world:Satin_hw.World.Secure
    ~addr:t.syscall_table.sym_addr (Buffer.contents tbl);
  region
