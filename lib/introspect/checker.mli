(** Integrity-checking primitive with faithful race semantics.

    A checker owns the golden (boot-time) content and hashes of enrolled
    kernel ranges and performs timed scans over physical memory. The crucial
    modelling decision: a scan is {e not} an instantaneous hash. Its scan
    front advances linearly at the sampled per-byte rate, and a tampered byte
    is detected iff it still differs from the golden content {e at the
    instant the front passes it} — precisely the TOCTTOU race of §III-B2
    that TZ-Evader exploits and SATIN's area bound defeats. Bytes restored
    before the front arrives are missed; bytes dirtied behind the front are
    missed until the next round (the paper's attacker only cleans, but the
    model handles both directions).

    Two styles, timed from Table I's calibration:
    - [Direct_hash]: stream the live memory through the hash (cheaper,
      no buffer — the style the paper recommends).
    - [Snapshot]: copy then hash (slightly dearer per byte and needs a
      buffer; the capture front races the attacker the same way). The
      capture buffer is allocated once per checker and reused across scan
      rounds — see {!scratch_capacity}. *)

type style = Direct_hash | Snapshot

val style_to_string : style -> string
val pp_style : Format.formatter -> style -> unit

type t

val create :
  ?cache:Satin_cache.Cache.t ->
  memory:Satin_hw.Memory.t ->
  cycle:Satin_hw.Cycle_model.t ->
  prng:Satin_engine.Prng.t ->
  algo:Hash.algo ->
  style:style ->
  unit ->
  t
(** With [?cache] (normally the platform's), every scan also drives the
    modeled L1/L2 hierarchy: the front's streaming reads are replayed as
    chunked line fills on the scanning core, pacing the cross-core eviction
    signal the modeled cache probers detect. Without it, scans leave the
    cache untouched (the pre-cache behaviour). *)

val algo : t -> Hash.algo
val style : t -> style

val scratch_capacity : t -> int
(** Size in bytes of the per-checker capture buffer ([Snapshot] style).
    Grows only at {!enroll} (to the largest enrolled range), never during
    a scan round — the zero-buffer-growth regression test pins this. *)

val enroll : t -> base:int -> len:int -> int64
(** Capture the golden content and hash of a range (trusted boot). Returns
    the authorized hash. Re-enrolling a range replaces its golden state. *)

val enrolled_hash : t -> base:int -> len:int -> int64 option

type verdict = {
  v_base : int;
  v_len : int;
  v_tampered : bool;
  v_offsets : int list; (** offsets (from [v_base]) caught modified, ascending *)
  v_hash_expected : int64;
  v_hash_observed : int64; (** hash of the content at scan completion *)
}

val start_scan :
  t ->
  engine:Satin_engine.Engine.t ->
  core:Satin_hw.Cpu.t ->
  base:int ->
  len:int ->
  on_verdict:(verdict -> unit) ->
  Satin_engine.Sim_time.t
(** Begin scanning now on [core]; returns the scan's total duration (pass
    this to the monitor payload). [on_verdict] fires when the front reaches
    the end of the range. The range must be enrolled. *)

val per_byte_triple :
  t -> Satin_hw.Cycle_model.core_type -> Satin_hw.Cycle_model.triple
(** The calibrated per-byte cost triple for this checker's style. *)

val scans_started : t -> int
val tampered_verdicts : t -> int

val blocks_rehashed : t -> int
(** Cumulative count of page-aligned blocks whose bytes the host actually
    compared/re-hashed across all rounds (both the scan-start dirty sweep
    and the verdict pass). With {!Incremental} enabled, a quiescent rescan
    re-hashes nothing; with it disabled every block counts here. *)

val blocks_cached : t -> int
(** Cumulative count of blocks skipped because their
    {!Satin_hw.Memory.generation} stamp had not advanced since they were
    last proven byte-equal to golden (one int compare instead of a sweep).
    Per-round values are also emitted as [scan.blocks_rehashed] /
    [scan.blocks_cached] counters and the [scan.rehash_fraction] histogram
    when {!Satin_obs.Obs} is active. *)
