(** Process-wide toggle for incremental host-side hashing.

    When enabled (the default), {!Checker} and {!Merkle} skip re-hashing
    blocks whose {!Satin_hw.Memory.generation} stamp has not advanced since
    they were last proven clean, reusing cached block digests. When
    disabled, every scan re-hashes in full — the reference path. The two
    modes are byte-identical in every observable output (verdicts, offsets,
    hashes, event timeline); only host CPU time differs. *)

val enabled : unit -> bool
val set_enabled : bool -> unit

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Runs [f] with the toggle forced to the given value, restoring the
    previous value afterwards (exception-safe). *)
