(** Alarm sink with a tamper-evident audit log.

    §V-B: "If the integrity checking module finds any abnormal small area,
    it can raise an alarm to the server side or the device user." This
    module is that channel: defenses report rounds into a sink; tampered
    rounds become alarms. Entries are hash-chained (each entry's digest
    covers the previous digest), so a normal-world attacker who later gains
    the log cannot rewrite history without breaking the chain — the
    lightweight attestation story of §VII-D. The sink itself lives in the
    secure world in a real deployment; here the chain is verifiable by
    anyone holding the genesis value. *)

type severity = Info | Alert

type entry = {
  seq : int;
  time : Satin_engine.Sim_time.t;
  severity : severity;
  area_index : int;
  core : int;
  offsets : int list; (** modified offsets caught (empty for Info) *)
  digest : int64; (** chain digest including the previous entry's *)
}

type t

val create : ?algo:Hash.algo -> ?log_clean_rounds:bool -> unit -> t
(** [log_clean_rounds] (default false) also chains an Info entry per clean
    round — a heartbeat proving the introspection kept running. *)

val genesis : t -> int64

val attach_satin : t -> Satin.t -> unit
(** Subscribe to a SATIN instance's rounds. *)

val attach_baseline : t -> Baseline.t -> unit

val record_round : t -> Round.t -> unit
(** Manual feed (what the attach functions use). *)

val entries : t -> entry list
(** Oldest first. *)

val alarms : t -> entry list
(** Alert entries only, oldest first. *)

val count : t -> int
val head_digest : t -> int64

val verify_chain : t -> bool
(** Recompute the chain from genesis; [false] if any entry was altered. *)

val verify_entries : genesis:int64 -> algo:Hash.algo -> entry list -> bool
(** Chain verification for an exported log (e.g. on the "server side"). *)

val on_alarm : t -> (entry -> unit) -> unit
