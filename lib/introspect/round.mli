(** One completed introspection round (shared by all defenses). *)

type t = {
  index : int; (** 0-based round counter *)
  core : int; (** core that performed the check *)
  area_index : int; (** index of the scanned area; 0 for full-kernel scans *)
  base : int;
  len : int;
  started : Satin_engine.Sim_time.t; (** wake-up instant (timer fire) *)
  scan_started : Satin_engine.Sim_time.t; (** after the world switch *)
  duration : Satin_engine.Sim_time.t; (** scan duration *)
  verdict : Checker.verdict;
}

val detected : t -> bool
val pp : Format.formatter -> t -> unit
