type algo = Djb2 | Sdbm | Fnv1a

let algo_to_string = function
  | Djb2 -> "djb2"
  | Sdbm -> "sdbm"
  | Fnv1a -> "fnv1a"

let pp_algo fmt a = Format.pp_print_string fmt (algo_to_string a)
let all_algos = [ Djb2; Sdbm; Fnv1a ]

let init = function
  | Djb2 -> 5381L
  | Sdbm -> 0L
  | Fnv1a -> 0xcbf29ce484222325L

let step algo h byte =
  let b = Int64.of_int (byte land 0xff) in
  match algo with
  | Djb2 ->
      (* h * 33 + c *)
      Int64.add (Int64.mul h 33L) b
  | Sdbm ->
      (* c + (h << 6) + (h << 16) - h *)
      Int64.add b
        (Int64.sub (Int64.add (Int64.shift_left h 6) (Int64.shift_left h 16)) h)
  | Fnv1a -> Int64.mul (Int64.logxor h b) 0x100000001b3L

let absorb_int64 algo h v =
  let acc = ref h in
  for i = 0 to 7 do
    acc :=
      step algo !acc (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
  done;
  !acc

(* Algorithm-specialized, 4x-unrolled loops over raw bytes. [step] dispatches
   on the algorithm per byte and costs a closure call per byte when used with
   [fold_range]; on the multi-MiB regions the introspection rounds scan, the
   specialized loops below are the difference between the hash dominating a
   campaign and it disappearing into the noise. Each single step is
   bit-identical to [step algo]. *)

let[@inline] djb2_step h c =
  (* h * 33 + c, with the multiply strength-reduced. *)
  Int64.add (Int64.add (Int64.shift_left h 5) h) (Int64.of_int c)

let[@inline] sdbm_step h c =
  Int64.add (Int64.of_int c)
    (Int64.sub (Int64.add (Int64.shift_left h 6) (Int64.shift_left h 16)) h)

let[@inline] fnv1a_step h c =
  Int64.mul (Int64.logxor h (Int64.of_int c)) 0x100000001b3L

let hash_sub_seeded algo ~seed data ~off ~len =
  if off < 0 || len < 0 || off + len > Bytes.length data then
    invalid_arg "Hash.hash_sub_seeded: range out of bounds";
  let stop = off + len in
  let stop4 = stop - 3 in
  let[@inline] byte i = Char.code (Bytes.unsafe_get data i) in
  match algo with
  | Djb2 ->
      let h = ref seed in
      let i = ref off in
      while !i < stop4 do
        let h0 = djb2_step !h (byte !i) in
        let h1 = djb2_step h0 (byte (!i + 1)) in
        let h2 = djb2_step h1 (byte (!i + 2)) in
        h := djb2_step h2 (byte (!i + 3));
        i := !i + 4
      done;
      while !i < stop do
        h := djb2_step !h (byte !i);
        incr i
      done;
      !h
  | Sdbm ->
      let h = ref seed in
      let i = ref off in
      while !i < stop4 do
        let h0 = sdbm_step !h (byte !i) in
        let h1 = sdbm_step h0 (byte (!i + 1)) in
        let h2 = sdbm_step h1 (byte (!i + 2)) in
        h := sdbm_step h2 (byte (!i + 3));
        i := !i + 4
      done;
      while !i < stop do
        h := sdbm_step !h (byte !i);
        incr i
      done;
      !h
  | Fnv1a ->
      let h = ref seed in
      let i = ref off in
      while !i < stop4 do
        let h0 = fnv1a_step !h (byte !i) in
        let h1 = fnv1a_step h0 (byte (!i + 1)) in
        let h2 = fnv1a_step h1 (byte (!i + 2)) in
        h := fnv1a_step h2 (byte (!i + 3));
        i := !i + 4
      done;
      while !i < stop do
        h := fnv1a_step !h (byte !i);
        incr i
      done;
      !h

let hash_sub algo data ~off ~len =
  hash_sub_seeded algo ~seed:(init algo) data ~off ~len

(* Block combine. Djb2 and Sdbm are affine recurrences h' = h*m + c
   (mod 2^64), so hashing s1 ++ s2 factors as
       H(s1 ++ s2) = H(s1) * m^|s2| + K(s2)
   where K(s2) is the same recurrence run from state 0 — a seed-independent
   per-block digest that can be cached and recombined in O(blocks). Fnv1a's
   step xors before multiplying; multiplication does not distribute over
   xor, so it is NOT combinable and incremental consumers must fall back to
   a full re-hash when any block is dirty. *)

let multiplier = function Djb2 -> 33L | Sdbm -> 65599L | Fnv1a -> 0L
let combinable = function Djb2 | Sdbm -> true | Fnv1a -> false

let block_pow algo ~len =
  if not (combinable algo) then
    invalid_arg "Hash.block_pow: algorithm is not combinable";
  if len < 0 then invalid_arg "Hash.block_pow: negative length";
  let r = ref 1L and b = ref (multiplier algo) and e = ref len in
  while !e > 0 do
    if !e land 1 = 1 then r := Int64.mul !r !b;
    b := Int64.mul !b !b;
    e := !e asr 1
  done;
  !r

let block_digest algo data ~off ~len = hash_sub_seeded algo ~seed:0L data ~off ~len

let block_digest_string algo s ~off ~len =
  block_digest algo (Bytes.unsafe_of_string s) ~off ~len

let[@inline] combine_block h ~pow ~digest = Int64.add (Int64.mul h pow) digest

let hash_bytes algo b = hash_sub algo b ~off:0 ~len:(Bytes.length b)
let hash_string algo s = hash_bytes algo (Bytes.unsafe_of_string s)

let hash_region algo memory ~world ~addr ~len =
  Satin_hw.Memory.with_range_ro memory ~world ~addr ~len ~f:(fun data off ->
      hash_sub algo data ~off ~len)
