type algo = Djb2 | Sdbm | Fnv1a

let algo_to_string = function
  | Djb2 -> "djb2"
  | Sdbm -> "sdbm"
  | Fnv1a -> "fnv1a"

let pp_algo fmt a = Format.pp_print_string fmt (algo_to_string a)
let all_algos = [ Djb2; Sdbm; Fnv1a ]

let init = function
  | Djb2 -> 5381L
  | Sdbm -> 0L
  | Fnv1a -> 0xcbf29ce484222325L

let step algo h byte =
  let b = Int64.of_int (byte land 0xff) in
  match algo with
  | Djb2 ->
      (* h * 33 + c *)
      Int64.add (Int64.mul h 33L) b
  | Sdbm ->
      (* c + (h << 6) + (h << 16) - h *)
      Int64.add b
        (Int64.sub (Int64.add (Int64.shift_left h 6) (Int64.shift_left h 16)) h)
  | Fnv1a -> Int64.mul (Int64.logxor h b) 0x100000001b3L

let absorb_int64 algo h v =
  let acc = ref h in
  for i = 0 to 7 do
    acc :=
      step algo !acc (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xff)
  done;
  !acc

let hash_string algo s =
  let h = ref (init algo) in
  String.iter (fun c -> h := step algo !h (Char.code c)) s;
  !h

let hash_bytes algo b = hash_string algo (Bytes.unsafe_to_string b)

let hash_region algo memory ~world ~addr ~len =
  Satin_hw.Memory.fold_range memory ~world ~addr ~len ~init:(init algo)
    ~f:(step algo)
