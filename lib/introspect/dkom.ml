module Sim_time = Satin_engine.Sim_time
module Prng = Satin_engine.Prng
module World = Satin_hw.World
module Cycle_model = Satin_hw.Cycle_model
module Proc_table = Satin_kernel.Proc_table

type report = {
  hidden_pids : int list;
  ghost_pids : int list;
  tasks_count : int;
  runqueue_count : int;
  duration : Sim_time.t;
}

let node_visit_cost =
  Cycle_model.triple ~min_s:8.0e-8 ~avg_s:1.1e-7 ~max_s:1.5e-7

let check table ~prng =
  let tasks = Proc_table.pids_via_tasks table ~world:World.Secure in
  let runq = Proc_table.pids_via_runqueue table ~world:World.Secure in
  let in_list l x = List.mem x l in
  let hidden_pids = List.filter (fun p -> not (in_list tasks p)) runq in
  let ghost_pids = List.filter (fun p -> not (in_list runq p)) tasks in
  let nodes = List.length tasks + List.length runq + 2 in
  let duration =
    Cycle_model.per_byte_duration prng node_visit_cost ~bytes:nodes
  in
  {
    hidden_pids;
    ghost_pids;
    tasks_count = List.length tasks;
    runqueue_count = List.length runq;
    duration;
  }

let hidden r = r.hidden_pids <> []
