module Memory = Satin_hw.Memory
module World = Satin_hw.World

type t = {
  algo : Hash.algo;
  base : int;
  len : int;
  page_size : int;
  pages : int;
  leaves_pow2 : int; (* leaf slots, padded to a power of two *)
  nodes : int64 array; (* heap layout: node i has children 2i+1, 2i+2 *)
  scratch : int64 array;
      (* [live_root]'s workspace, allocated once at [build] instead of per
         verification round. Padding-leaf slots are seeded from [nodes] at
         build time and never change; every round overwrites the real
         leaves and all internal nodes (DESIGN §10). *)
  mutable rehashes : int;
}

let base t = t.base
let length t = t.len
let page_size t = t.page_size
let pages t = t.pages
let node_rehashes t = t.rehashes

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (2 * k)

(* Hash of one live page (short final page allowed). *)
let leaf_hash t memory page =
  let off = page * t.page_size in
  let len = min t.page_size (t.len - off) in
  if len <= 0 then Hash.init t.algo
  else
    Hash.hash_region t.algo memory ~world:World.Secure ~addr:(t.base + off) ~len

(* Internal node: absorb both children's digests. *)
let combine algo a b =
  Hash.absorb_int64 algo (Hash.absorb_int64 algo (Hash.init algo) a) b

let leaf_index t page = t.leaves_pow2 - 1 + page

let build ?(page_size = 4096) algo memory ~base ~len =
  if page_size <= 0 then invalid_arg "Merkle.build: page_size must be positive";
  if len <= 0 then invalid_arg "Merkle.build: empty range";
  let pages = (len + page_size - 1) / page_size in
  let leaves_pow2 = pow2_at_least pages 1 in
  let t =
    {
      algo;
      base;
      len;
      page_size;
      pages;
      leaves_pow2;
      nodes = Array.make ((2 * leaves_pow2) - 1) (Hash.init algo);
      scratch = Array.make ((2 * leaves_pow2) - 1) (Hash.init algo);
      rehashes = 0;
    }
  in
  for page = 0 to pages - 1 do
    t.nodes.(leaf_index t page) <- leaf_hash t memory page
  done;
  for i = leaves_pow2 - 2 downto 0 do
    t.nodes.(i) <- combine algo t.nodes.((2 * i) + 1) t.nodes.((2 * i) + 2)
  done;
  Array.blit t.nodes 0 t.scratch 0 (Array.length t.nodes);
  t

let root t = t.nodes.(0)
let secure_bytes t = 8 * Array.length t.nodes

let live_root t memory =
  (* Recompute bottom-up into the preallocated scratch without touching
     the stored tree: real leaves and every internal node are overwritten
     each round; padding leaves were seeded at build and are immutable. *)
  let scratch = t.scratch in
  for page = 0 to t.pages - 1 do
    scratch.(leaf_index t page) <- leaf_hash t memory page
  done;
  for i = t.leaves_pow2 - 2 downto 0 do
    scratch.(i) <- combine t.algo scratch.((2 * i) + 1) scratch.((2 * i) + 2)
  done;
  scratch.(0)

let verify_root t memory = Int64.equal (live_root t memory) (root t)

let dirty_pages t memory =
  let dirty = ref [] in
  for page = t.pages - 1 downto 0 do
    if not (Int64.equal (leaf_hash t memory page) t.nodes.(leaf_index t page))
    then dirty := page :: !dirty
  done;
  !dirty

let update_page t memory ~page =
  if page < 0 || page >= t.pages then invalid_arg "Merkle.update_page: bad page";
  let idx = ref (leaf_index t page) in
  t.nodes.(!idx) <- leaf_hash t memory page;
  while !idx > 0 do
    idx := (!idx - 1) / 2;
    t.nodes.(!idx) <-
      combine t.algo t.nodes.((2 * !idx) + 1) t.nodes.((2 * !idx) + 2);
    t.rehashes <- t.rehashes + 1
  done
