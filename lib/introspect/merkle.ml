module Memory = Satin_hw.Memory
module World = Satin_hw.World

type t = {
  algo : Hash.algo;
  base : int;
  len : int;
  page_size : int;
  pages : int;
  leaves_pow2 : int; (* leaf slots, padded to a power of two *)
  nodes : int64 array; (* heap layout: node i has children 2i+1, 2i+2 *)
  scratch : int64 array;
      (* [live_root]'s workspace, allocated once at [build] instead of per
         verification round. Padding-leaf slots are seeded from [nodes] at
         build time and never change. Invariant: a real leaf slot holds the
         hash of the page's current content whenever
         [leaf_gen.(page) >= Memory.generation] of that page (stamps only
         grow, so a write since the leaf was computed always shows). *)
  leaf_gen : int array;
      (* per real leaf: max page stamp at the moment its scratch slot was
         computed; -1 = never computed (forces the first round to hash) *)
  node_dirty : bool array;
      (* scratch slots recomputed since the last bottom-up propagation;
         marks survive across [dirty_pages] calls until [live_root]
         consumes them *)
  mutable pending : bool;
  mutable gen_mem : Memory.t;
      (* memory object the stamps refer to; a different memory invalidates
         every cached leaf *)
  mutable rehashes : int;
  mutable live_leaf_rehashes : int;
  mutable live_leaf_cached : int;
}

let base t = t.base
let length t = t.len
let page_size t = t.page_size
let pages t = t.pages
let node_rehashes t = t.rehashes
let live_leaf_rehashes t = t.live_leaf_rehashes
let live_leaf_cached t = t.live_leaf_cached

let rec pow2_at_least n k = if k >= n then k else pow2_at_least n (2 * k)

(* Hash of one live page (short final page allowed). *)
let leaf_hash t memory page =
  let off = page * t.page_size in
  let len = min t.page_size (t.len - off) in
  if len <= 0 then Hash.init t.algo
  else
    Hash.hash_region t.algo memory ~world:World.Secure ~addr:(t.base + off) ~len

(* Internal node: absorb both children's digests. *)
let combine algo a b =
  Hash.absorb_int64 algo (Hash.absorb_int64 algo (Hash.init algo) a) b

let leaf_index t page = t.leaves_pow2 - 1 + page

let build ?(page_size = 4096) algo memory ~base ~len =
  if page_size <= 0 then invalid_arg "Merkle.build: page_size must be positive";
  if len <= 0 then invalid_arg "Merkle.build: empty range";
  let pages = (len + page_size - 1) / page_size in
  let leaves_pow2 = pow2_at_least pages 1 in
  let t =
    {
      algo;
      base;
      len;
      page_size;
      pages;
      leaves_pow2;
      nodes = Array.make ((2 * leaves_pow2) - 1) (Hash.init algo);
      scratch = Array.make ((2 * leaves_pow2) - 1) (Hash.init algo);
      leaf_gen = Array.make (max pages 1) (-1);
      node_dirty = Array.make ((2 * leaves_pow2) - 1) false;
      pending = false;
      gen_mem = memory;
      rehashes = 0;
      live_leaf_rehashes = 0;
      live_leaf_cached = 0;
    }
  in
  for page = 0 to pages - 1 do
    t.nodes.(leaf_index t page) <- leaf_hash t memory page
  done;
  for i = leaves_pow2 - 2 downto 0 do
    t.nodes.(i) <- combine algo t.nodes.((2 * i) + 1) t.nodes.((2 * i) + 2)
  done;
  Array.blit t.nodes 0 t.scratch 0 (Array.length t.nodes);
  t

let root t = t.nodes.(0)
let secure_bytes t = 8 * Array.length t.nodes

(* Bring every stale scratch leaf up to date with live memory, marking the
   recomputed slots for the next bottom-up propagation. A leaf is stale iff
   the max page stamp over its bytes advanced past the stamp recorded when
   its slot was last hashed (or it was never hashed). *)
let refresh_leaves t memory =
  if memory != t.gen_mem then begin
    (* Stamps from a different memory object are meaningless: drop every
       cached leaf and re-key. *)
    t.gen_mem <- memory;
    Array.fill t.leaf_gen 0 (Array.length t.leaf_gen) (-1)
  end;
  for page = 0 to t.pages - 1 do
    let off = page * t.page_size in
    let len = min t.page_size (t.len - off) in
    let stamp = Memory.generation memory ~addr:(t.base + off) ~len in
    if t.leaf_gen.(page) >= stamp then
      t.live_leaf_cached <- t.live_leaf_cached + 1
    else begin
      t.scratch.(leaf_index t page) <- leaf_hash t memory page;
      t.leaf_gen.(page) <- stamp;
      t.node_dirty.(leaf_index t page) <- true;
      t.pending <- true;
      t.live_leaf_rehashes <- t.live_leaf_rehashes + 1
    end
  done

(* Recombine only internal nodes with a recomputed descendant, then clear
   the marks. O(nodes) boolean scan, O(changed * log n) hashing. *)
let propagate t =
  if t.pending then begin
    for i = t.leaves_pow2 - 2 downto 0 do
      if t.node_dirty.((2 * i) + 1) || t.node_dirty.((2 * i) + 2) then begin
        t.scratch.(i) <-
          combine t.algo t.scratch.((2 * i) + 1) t.scratch.((2 * i) + 2);
        t.node_dirty.(i) <- true
      end
    done;
    Array.fill t.node_dirty 0 (Array.length t.node_dirty) false;
    t.pending <- false
  end

let live_root t memory =
  if Incremental.enabled () then begin
    refresh_leaves t memory;
    propagate t;
    t.scratch.(0)
  end
  else begin
    (* Reference path: recompute bottom-up into the preallocated scratch
       without touching the stored tree. This rewrites every slot from
       live content, so any pending incremental marks are satisfied and
       cleared. *)
    let scratch = t.scratch in
    for page = 0 to t.pages - 1 do
      scratch.(leaf_index t page) <- leaf_hash t memory page
    done;
    for i = t.leaves_pow2 - 2 downto 0 do
      scratch.(i) <- combine t.algo scratch.((2 * i) + 1) scratch.((2 * i) + 2)
    done;
    Array.fill t.node_dirty 0 (Array.length t.node_dirty) false;
    t.pending <- false;
    scratch.(0)
  end

let verify_root t memory = Int64.equal (live_root t memory) (root t)

let dirty_pages t memory =
  if Incremental.enabled () then begin
    (* Reuse the leaf cache: a cached scratch leaf is the live page hash,
       so the comparison against the stored leaf is the same test without
       re-hashing quiescent pages. Marks accumulate for the next
       [live_root] propagation. *)
    refresh_leaves t memory;
    let dirty = ref [] in
    for page = t.pages - 1 downto 0 do
      if
        not
          (Int64.equal t.scratch.(leaf_index t page) t.nodes.(leaf_index t page))
      then dirty := page :: !dirty
    done;
    !dirty
  end
  else begin
    let dirty = ref [] in
    for page = t.pages - 1 downto 0 do
      if not (Int64.equal (leaf_hash t memory page) t.nodes.(leaf_index t page))
      then dirty := page :: !dirty
    done;
    !dirty
  end

let update_page t memory ~page =
  if page < 0 || page >= t.pages then invalid_arg "Merkle.update_page: bad page";
  let idx = ref (leaf_index t page) in
  t.nodes.(!idx) <- leaf_hash t memory page;
  while !idx > 0 do
    idx := (!idx - 1) / 2;
    t.nodes.(!idx) <-
      combine t.algo t.nodes.((2 * !idx) + 1) t.nodes.((2 * !idx) + 2);
    t.rehashes <- t.rehashes + 1
  done
