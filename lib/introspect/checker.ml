module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Prng = Satin_engine.Prng
module Memory = Satin_hw.Memory
module World = Satin_hw.World
module Cpu = Satin_hw.Cpu
module Cycle_model = Satin_hw.Cycle_model
module Cache = Satin_cache.Cache
module Obs = Satin_obs.Obs

type style = Direct_hash | Snapshot

let style_to_string = function
  | Direct_hash -> "direct-hash"
  | Snapshot -> "snapshot"

let pp_style fmt s = Format.pp_print_string fmt (style_to_string s)

type golden = { g_len : int; g_content : string; g_hash : int64 }

type t = {
  memory : Memory.t;
  cycle : Cycle_model.t;
  prng : Prng.t;
  algo : Hash.algo;
  style : style;
  cache : Cache.t option;
      (* when present, a scan's streaming reads fill the modeled cache
         hierarchy as the front advances — the eviction signal the
         modeled cache probers time (DESIGN §14) *)
  golden : (int * int, golden) Hashtbl.t; (* keyed by (base, len) *)
  mutable scratch : Bytes.t;
      (* [Snapshot]-style capture buffer, hoisted to checker creation and
         grown (only) at [enroll] to the largest enrolled range: scan
         rounds reuse it instead of allocating a fresh snapshot per round
         (DESIGN §10). Each use is transient — capture, analyze, return —
         within a single event callback, so one buffer per checker is
         enough even with several areas mid-scan. *)
  mutable scans : int;
  mutable tampered : int;
}

let create ?cache ~memory ~cycle ~prng ~algo ~style () =
  {
    memory;
    cycle;
    prng;
    algo;
    style;
    cache;
    golden = Hashtbl.create 32;
    scratch = Bytes.create 0;
    scans = 0;
    tampered = 0;
  }

let algo t = t.algo
let style t = t.style
let scratch_capacity t = Bytes.length t.scratch

let enroll t ~base ~len =
  let content =
    Memory.with_range_ro t.memory ~world:World.Secure ~addr:base ~len
      ~f:(fun data off -> Bytes.sub_string data off len)
  in
  if len > Bytes.length t.scratch then t.scratch <- Bytes.create len;
  let hash = Hash.hash_string t.algo content in
  Hashtbl.replace t.golden (base, len) { g_len = len; g_content = content; g_hash = hash };
  hash

let enrolled_hash t ~base ~len =
  Option.map (fun g -> g.g_hash) (Hashtbl.find_opt t.golden (base, len))

type verdict = {
  v_base : int;
  v_len : int;
  v_tampered : bool;
  v_offsets : int list;
  v_hash_expected : int64;
  v_hash_observed : int64;
}

let per_byte_triple t core_type =
  match t.style with
  | Direct_hash -> t.cycle.Cycle_model.hash_1byte core_type
  | Snapshot -> t.cycle.Cycle_model.snapshot_1byte core_type

(* Present the live range to [f] as [(data, off)] without a per-round
   allocation: [Direct_hash] analyzes the memory backing store in place
   (the paper's streaming style); [Snapshot] captures into the per-checker
   scratch buffer first — same bytes at the same instant, so detection
   outcomes and hashes are identical, but the capture models the
   copy-then-analyze style without allocating a fresh buffer per round. *)
let with_live t ~base ~len ~f =
  match t.style with
  | Direct_hash ->
      Memory.with_range_ro t.memory ~world:World.Secure ~addr:base ~len ~f
  | Snapshot ->
      Memory.with_range_ro t.memory ~world:World.Secure ~addr:base ~len
        ~f:(fun data off -> Bytes.blit data off t.scratch 0 len);
      f t.scratch 0

(* Word-level equality of [data[doff..)] against golden content: eight
   bytes per comparison over the aligned middle, byte tail after. One
   explicit bounds check up front licenses the unchecked word loads in the
   loop ([with_live] hands us a [with_range_ro]-validated window, but the
   offsets are computed here, so the hoisted check keeps the unsafe loads
   honest while still paying it once per block instead of twice per
   word). *)
let range_equal data doff golden goff blen =
  if
    blen < 0 || doff < 0 || goff < 0
    || doff + blen > Bytes.length data
    || goff + blen > String.length golden
  then invalid_arg "Checker.range_equal: range outside buffers";
  let i = ref 0 and equal = ref true in
  let stop8 = blen - 7 in
  while !equal && !i < stop8 do
    if
      Int64.equal
        (Memory.unsafe_get_int64_ne data (doff + !i))
        (Memory.unsafe_string_get_int64_ne golden (goff + !i))
    then i := !i + 8
    else equal := false
  done;
  while !equal && !i < blen do
    if Bytes.unsafe_get data (doff + !i) = String.unsafe_get golden (goff + !i)
    then incr i
    else equal := false
  done;
  !equal

(* Collect maximal dirty ranges (offset, len) of the current content
   relative to golden. Block-compare first so the clean common case costs
   one word-level sweep per 4 KiB instead of a byte loop over megabytes. *)
let diff_block = 4096

let dirty_ranges t golden ~base =
  let len = golden.g_len in
  with_live t ~base ~len ~f:(fun data off ->
      let ranges = ref [] in
      let run_start = ref (-1) in
      let flush i =
        if !run_start >= 0 then begin
          ranges := (!run_start, i - !run_start) :: !ranges;
          run_start := -1
        end
      in
      let block = ref 0 in
      while !block * diff_block < len do
        let lo = !block * diff_block in
        let blen = min diff_block (len - lo) in
        if not (range_equal data (off + lo) golden.g_content lo blen) then
          for i = lo to lo + blen - 1 do
            if
              Bytes.unsafe_get data (off + i)
              <> String.unsafe_get golden.g_content i
            then begin
              if !run_start < 0 then run_start := i
            end
            else flush i
          done
        else flush lo;
        incr block
      done;
      flush len;
      List.rev !ranges)

let start_scan t ~engine ~core ~base ~len ~on_verdict =
  let golden =
    match Hashtbl.find_opt t.golden (base, len) with
    | Some g -> g
    | None ->
        invalid_arg
          (Printf.sprintf "Checker.start_scan: range (%#x,%d) not enrolled" base len)
  in
  t.scans <- t.scans + 1;
  if Obs.active () then begin
    Obs.incr "checker.scans";
    Obs.observe "checker.scan_bytes" (float_of_int len)
  end;
  let rate_s = Cycle_model.sample t.prng (per_byte_triple t (Cpu.core_type core)) in
  let duration = Sim_time.of_sec_f (rate_s *. float_of_int len) in
  let t0 = Engine.now engine in
  let pass_time offset =
    Sim_time.add t0 (Sim_time.of_sec_f (rate_s *. float_of_int offset))
  in
  let front_offset () =
    int_of_float (Sim_time.to_sec_f (Sim_time.diff (Engine.now engine) t0) /. rate_s)
  in
  (* The scan's streaming reads, replayed into the modeled cache at the
     pace of the front: one bulk fill per ~16 KiB of progress (256 lines,
     ~160 us of A53 hashing — finer than the probers' 200 us rounds, so a
     mid-scan probe sees the eviction set partially evicted, not an
     instantaneous sweep). Pure cache-state mutation: no PRNG draw, no
     memory access, so pre-cache experiment outputs are untouched. *)
  (match t.cache with
  | Some cache ->
      let core_id = Cpu.id core in
      let chunk = 256 * Cache.line_size cache in
      let rec fill off =
        if off < len then begin
          let n = min chunk (len - off) in
          ignore
            (Engine.at engine ~time:(pass_time off) (fun () ->
                 Cache.touch_range cache ~core:core_id ~addr:(base + off) ~len:n));
          fill (off + chunk)
        end
      in
      fill 0
  | None -> ());
  let caught : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  (* Check a suspicious range when the scan front passes it: whatever still
     differs from golden there is detected. Long ranges are chunked so the
     detection instant tracks the front at 256-byte granularity (the paper's
     8-byte traces are a single chunk); a pass time already behind "now"
     (the front is mid-byte) is clamped — the front is there right now. *)
  let check_chunk (offset, rlen) =
    let time = Sim_time.max (pass_time offset) (Engine.now engine) in
    ignore
      (Engine.at engine ~time (fun () ->
           (* One range check for the whole chunk instead of a per-byte
              [read_byte] (whose access check walks the region list). *)
           Memory.with_range_ro t.memory ~world:World.Secure
             ~addr:(base + offset) ~len:rlen ~f:(fun data off ->
               for i = 0 to rlen - 1 do
                 if
                   Bytes.unsafe_get data (off + i)
                   <> String.unsafe_get golden.g_content (offset + i)
                 then Hashtbl.replace caught (offset + i) ()
               done)))
  in
  let check_at_pass (offset, rlen) =
    let chunk = 256 in
    let rec go off remaining =
      if remaining > 0 then begin
        let n = min chunk remaining in
        check_chunk (off, n);
        go (off + n) (remaining - n)
      end
    in
    go offset rlen
  in
  List.iter check_at_pass (dirty_ranges t golden ~base);
  (* Writes racing the scan: anything landing ahead of the front gets a
     pass-time check; writes behind the front are already missed. *)
  let watcher =
    Memory.add_write_watcher t.memory (fun ~addr ~len:wlen ->
        let lo = max addr base and hi = min (addr + wlen) (base + len) in
        if lo < hi then begin
          let front = front_offset () in
          let lo_off = max (lo - base) front in
          let hi_off = hi - base in
          if lo_off < hi_off then check_at_pass (lo_off, hi_off - lo_off)
        end)
  in
  ignore
    (Engine.schedule engine ~after:duration (fun () ->
         Memory.remove_write_watcher t.memory watcher;
         let offsets = Hashtbl.fold (fun k () acc -> k :: acc) caught [] in
         let offsets = List.sort compare offsets in
         let tampered = offsets <> [] in
         if tampered then begin
           t.tampered <- t.tampered + 1;
           Obs.incr "checker.tampered_verdicts"
         end;
         let observed =
           (* Fast path: content back to golden means the observed hash is
              the authorized one — spare the streaming hash. Either way,
              no snapshot copy: the live view is zero-copy (or the reused
              scratch for [Snapshot]). *)
           with_live t ~base ~len ~f:(fun data off ->
               if range_equal data off golden.g_content 0 len then
                 golden.g_hash
               else Hash.hash_sub t.algo data ~off ~len)
         in
         on_verdict
           {
             v_base = base;
             v_len = len;
             v_tampered = tampered;
             v_offsets = offsets;
             v_hash_expected = golden.g_hash;
             v_hash_observed = observed;
           }));
  duration

let scans_started t = t.scans
let tampered_verdicts t = t.tampered
