module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Prng = Satin_engine.Prng
module Memory = Satin_hw.Memory
module World = Satin_hw.World
module Cpu = Satin_hw.Cpu
module Cycle_model = Satin_hw.Cycle_model
module Cache = Satin_cache.Cache
module Obs = Satin_obs.Obs

type style = Direct_hash | Snapshot

let style_to_string = function
  | Direct_hash -> "direct-hash"
  | Snapshot -> "snapshot"

let pp_style fmt s = Format.pp_print_string fmt (style_to_string s)

(* Per-enrolled-range incremental state, one slot per page-aligned block
   (absolute 4 KiB pages, so a block maps to exactly one
   [Memory.generation] stamp; first/last blocks may be partial).

   [c_clean_gen.(b)] is the page stamp at the moment block [b] was last
   proven byte-equal to golden; the block is still equal iff the page stamp
   has not advanced past it (the simulator is single-threaded, so the
   stamp-read/compare pair inside one event callback cannot be interleaved
   by a write). [c_live_digest]/[c_digest_gen] cache the seed-independent
   digest of a {e tampered} block's live content, valid while the stamp is
   unchanged. [c_gold_digest]/[c_pow] are fixed at enroll (combinable
   algorithms only). *)
type block_cache = {
  c_bounds : int array; (* nblocks+1 block-start offsets; last entry = len *)
  c_clean_gen : int array;
  c_live_digest : int64 array;
  c_digest_gen : int array;
  c_gold_digest : int64 array;
  c_pow : int64 array;
}

type golden = {
  g_len : int;
  g_content : string;
  g_hash : int64;
  g_blocks : block_cache;
}

let block_bounds ~base ~len =
  let ps = Memory.gen_page_size in
  let p0 = base / ps and plast = (base + len - 1) / ps in
  let n = plast - p0 + 1 in
  let bounds = Array.make (n + 1) len in
  bounds.(0) <- 0;
  for i = 1 to n - 1 do
    bounds.(i) <- (((p0 + i) * ps) - base)
  done;
  bounds

type t = {
  memory : Memory.t;
  cycle : Cycle_model.t;
  prng : Prng.t;
  algo : Hash.algo;
  style : style;
  cache : Cache.t option;
      (* when present, a scan's streaming reads fill the modeled cache
         hierarchy as the front advances — the eviction signal the
         modeled cache probers time (DESIGN §14) *)
  golden : (int * int, golden) Hashtbl.t; (* keyed by (base, len) *)
  mutable scratch : Bytes.t;
      (* [Snapshot]-style capture buffer, hoisted to checker creation and
         grown (only) at [enroll] to the largest enrolled range: scan
         rounds reuse it instead of allocating a fresh snapshot per round
         (DESIGN §10). Each use is transient — capture, analyze, return —
         within a single event callback, so one buffer per checker is
         enough even with several areas mid-scan. *)
  mutable scans : int;
  mutable tampered : int;
  mutable blocks_rehashed : int;
  mutable blocks_cached : int;
}

(* Per-scan block accounting, allocated once per [start_scan] so the Obs
   emission at the verdict attributes exactly this scan's work even when
   rounds over different areas overlap in simulated time. *)
type scan_counts = { mutable sc_rehashed : int; mutable sc_cached : int }

let count_rehashed t sc n =
  t.blocks_rehashed <- t.blocks_rehashed + n;
  sc.sc_rehashed <- sc.sc_rehashed + n

let count_cached t sc n =
  t.blocks_cached <- t.blocks_cached + n;
  sc.sc_cached <- sc.sc_cached + n

let create ?cache ~memory ~cycle ~prng ~algo ~style () =
  {
    memory;
    cycle;
    prng;
    algo;
    style;
    cache;
    golden = Hashtbl.create 32;
    scratch = Bytes.create 0;
    scans = 0;
    tampered = 0;
    blocks_rehashed = 0;
    blocks_cached = 0;
  }

let algo t = t.algo
let style t = t.style
let scratch_capacity t = Bytes.length t.scratch

let make_block_cache t ~base ~content =
  let len = String.length content in
  let bounds = block_bounds ~base ~len in
  let n = Array.length bounds - 1 in
  let gold = Array.make n 0L and pow = Array.make n 1L in
  if Hash.combinable t.algo then
    for b = 0 to n - 1 do
      let lo = bounds.(b) and hi = bounds.(b + 1) in
      gold.(b) <- Hash.block_digest_string t.algo content ~off:lo ~len:(hi - lo);
      pow.(b) <- Hash.block_pow t.algo ~len:(hi - lo)
    done;
  {
    c_bounds = bounds;
    c_clean_gen = Array.make n (-1);
    c_live_digest = Array.make n 0L;
    c_digest_gen = Array.make n (-1);
    c_gold_digest = gold;
    c_pow = pow;
  }

let enroll t ~base ~len =
  let content =
    Memory.with_range_ro t.memory ~world:World.Secure ~addr:base ~len
      ~f:(fun data off -> Bytes.sub_string data off len)
  in
  if len > Bytes.length t.scratch then t.scratch <- Bytes.create len;
  let hash = Hash.hash_string t.algo content in
  Hashtbl.replace t.golden (base, len)
    {
      g_len = len;
      g_content = content;
      g_hash = hash;
      g_blocks = make_block_cache t ~base ~content;
    };
  hash

let enrolled_hash t ~base ~len =
  Option.map (fun g -> g.g_hash) (Hashtbl.find_opt t.golden (base, len))

type verdict = {
  v_base : int;
  v_len : int;
  v_tampered : bool;
  v_offsets : int list;
  v_hash_expected : int64;
  v_hash_observed : int64;
}

let per_byte_triple t core_type =
  match t.style with
  | Direct_hash -> t.cycle.Cycle_model.hash_1byte core_type
  | Snapshot -> t.cycle.Cycle_model.snapshot_1byte core_type

(* Present the live range to [f] as [(data, off)] without a per-round
   allocation: [Direct_hash] analyzes the memory backing store in place
   (the paper's streaming style); [Snapshot] captures into the per-checker
   scratch buffer first — same bytes at the same instant, so detection
   outcomes and hashes are identical, but the capture models the
   copy-then-analyze style without allocating a fresh buffer per round. *)
let with_live t ~base ~len ~f =
  match t.style with
  | Direct_hash ->
      Memory.with_range_ro t.memory ~world:World.Secure ~addr:base ~len ~f
  | Snapshot ->
      Memory.with_range_ro t.memory ~world:World.Secure ~addr:base ~len
        ~f:(fun data off -> Bytes.blit data off t.scratch 0 len);
      f t.scratch 0

(* Word-level equality of [data[doff..)] against golden content: eight
   bytes per comparison over the aligned middle, byte tail after. One
   explicit bounds check up front licenses the unchecked word loads in the
   loop ([with_live] hands us a [with_range_ro]-validated window, but the
   offsets are computed here, so the hoisted check keeps the unsafe loads
   honest while still paying it once per block instead of twice per
   word). *)
let range_equal data doff golden goff blen =
  if
    blen < 0 || doff < 0 || goff < 0
    || doff + blen > Bytes.length data
    || goff + blen > String.length golden
  then invalid_arg "Checker.range_equal: range outside buffers";
  let i = ref 0 and equal = ref true in
  let stop8 = blen - 7 in
  while !equal && !i < stop8 do
    if
      Int64.equal
        (Memory.unsafe_get_int64_ne data (doff + !i))
        (Memory.unsafe_string_get_int64_ne golden (goff + !i))
    then i := !i + 8
    else equal := false
  done;
  while !equal && !i < blen do
    if Bytes.unsafe_get data (doff + !i) = String.unsafe_get golden (goff + !i)
    then incr i
    else equal := false
  done;
  !equal

(* Collect maximal dirty ranges (offset, len) of the current content
   relative to golden. Block-compare first so the clean common case costs
   one word-level sweep per 4 KiB instead of a byte loop over megabytes. *)
let diff_block = 4096

let dirty_ranges_full t sc golden ~base =
  let len = golden.g_len in
  count_rehashed t sc (Array.length golden.g_blocks.c_bounds - 1);
  with_live t ~base ~len ~f:(fun data off ->
      let ranges = ref [] in
      let run_start = ref (-1) in
      let flush i =
        if !run_start >= 0 then begin
          ranges := (!run_start, i - !run_start) :: !ranges;
          run_start := -1
        end
      in
      let block = ref 0 in
      while !block * diff_block < len do
        let lo = !block * diff_block in
        let blen = min diff_block (len - lo) in
        if not (range_equal data (off + lo) golden.g_content lo blen) then
          for i = lo to lo + blen - 1 do
            if
              Bytes.unsafe_get data (off + i)
              <> String.unsafe_get golden.g_content i
            then begin
              if !run_start < 0 then run_start := i
            end
            else flush i
          done
        else flush lo;
        incr block
      done;
      flush len;
      List.rev !ranges)

(* Incremental variant: a block whose page stamp has not advanced past its
   [c_clean_gen] is known byte-equal to golden (nothing wrote it since it
   was last proven equal), so it contributes no dirty run and costs one int
   compare instead of a word-level sweep. Stale blocks are compared as
   before, and a compare that proves equality re-stamps the block. The
   maximal dirty ranges produced are a pure function of the live content,
   so the result is identical to [dirty_ranges_full] (runs still span
   block boundaries; flushes happen exactly at clean bytes / clean
   blocks). Reads the backing store directly — the [Snapshot] blit is pure
   host work with no modeled cost, so skipping it changes nothing
   observable. *)
let dirty_ranges_incr t sc golden ~base =
  let len = golden.g_len in
  let c = golden.g_blocks in
  let n = Array.length c.c_bounds - 1 in
  Memory.with_range_ro t.memory ~world:World.Secure ~addr:base ~len
    ~f:(fun data off ->
      let ranges = ref [] in
      let run_start = ref (-1) in
      let flush i =
        if !run_start >= 0 then begin
          ranges := (!run_start, i - !run_start) :: !ranges;
          run_start := -1
        end
      in
      for b = 0 to n - 1 do
        let lo = Array.unsafe_get c.c_bounds b in
        let hi = Array.unsafe_get c.c_bounds (b + 1) in
        let blen = hi - lo in
        let stamp = Memory.generation t.memory ~addr:(base + lo) ~len:blen in
        if Array.unsafe_get c.c_clean_gen b >= stamp then begin
          count_cached t sc 1;
          flush lo
        end
        else begin
          count_rehashed t sc 1;
          if range_equal data (off + lo) golden.g_content lo blen then begin
            Array.unsafe_set c.c_clean_gen b stamp;
            flush lo
          end
          else
            for i = lo to hi - 1 do
              if
                Bytes.unsafe_get data (off + i)
                <> String.unsafe_get golden.g_content i
              then begin
                if !run_start < 0 then run_start := i
              end
              else flush i
            done
        end
      done;
      flush len;
      List.rev !ranges)

let dirty_ranges t sc golden ~base =
  if Incremental.enabled () then dirty_ranges_incr t sc golden ~base
  else dirty_ranges_full t sc golden ~base

(* Observed hash at the verdict instant. Full path: one whole-range compare
   (equal → the enrolled hash, spared the streaming pass) or a full
   [hash_sub]. Incremental path: walk blocks; stamp-clean ones contribute
   their cached golden digest, stale ones are compared (re-stamping on
   equality) and, when tampered, their live digest is (re)computed only if
   the stamp moved since it was last cached. For combinable algorithms the
   per-block digests recombine to the exact [hash_sub] value (affine
   factorization, see {!Hash.combine_block}); FNV-1a does not factor, so a
   range that is dirty at the verdict falls back to one honest full
   re-hash — the quiescent case (every block clean) is still O(blocks). *)
let observed_hash_full t golden ~base =
  let len = golden.g_len in
  with_live t ~base ~len ~f:(fun data off ->
      if range_equal data off golden.g_content 0 len then golden.g_hash
      else Hash.hash_sub t.algo data ~off ~len)

let observed_hash_incr t sc golden ~base =
  let len = golden.g_len in
  let c = golden.g_blocks in
  let n = Array.length c.c_bounds - 1 in
  let comb = Hash.combinable t.algo in
  Memory.with_range_ro t.memory ~world:World.Secure ~addr:base ~len
    ~f:(fun data off ->
      let h = ref (Hash.init t.algo) in
      let any_dirty = ref false in
      for b = 0 to n - 1 do
        let lo = Array.unsafe_get c.c_bounds b in
        let hi = Array.unsafe_get c.c_bounds (b + 1) in
        let blen = hi - lo in
        let stamp = Memory.generation t.memory ~addr:(base + lo) ~len:blen in
        let clean =
          if Array.unsafe_get c.c_clean_gen b >= stamp then begin
            count_cached t sc 1;
            true
          end
          else begin
            count_rehashed t sc 1;
            if range_equal data (off + lo) golden.g_content lo blen then begin
              Array.unsafe_set c.c_clean_gen b stamp;
              true
            end
            else false
          end
        in
        if clean then begin
          if comb then
            h :=
              Hash.combine_block !h
                ~pow:(Array.unsafe_get c.c_pow b)
                ~digest:(Array.unsafe_get c.c_gold_digest b)
        end
        else begin
          any_dirty := true;
          if comb then begin
            if Array.unsafe_get c.c_digest_gen b <> stamp then begin
              Array.unsafe_set c.c_live_digest b
                (Hash.block_digest t.algo data ~off:(off + lo) ~len:blen);
              Array.unsafe_set c.c_digest_gen b stamp
            end;
            h :=
              Hash.combine_block !h
                ~pow:(Array.unsafe_get c.c_pow b)
                ~digest:(Array.unsafe_get c.c_live_digest b)
          end
        end
      done;
      if not !any_dirty then golden.g_hash
      else if comb then !h
      else Hash.hash_sub t.algo data ~off ~len)

let observed_hash t sc golden ~base =
  if Incremental.enabled () then observed_hash_incr t sc golden ~base
  else begin
    count_rehashed t sc (Array.length golden.g_blocks.c_bounds - 1);
    observed_hash_full t golden ~base
  end

let start_scan t ~engine ~core ~base ~len ~on_verdict =
  let golden =
    match Hashtbl.find_opt t.golden (base, len) with
    | Some g -> g
    | None ->
        invalid_arg
          (Printf.sprintf "Checker.start_scan: range (%#x,%d) not enrolled" base len)
  in
  t.scans <- t.scans + 1;
  if Obs.active () then begin
    Obs.incr "checker.scans";
    Obs.observe "checker.scan_bytes" (float_of_int len)
  end;
  let sc = { sc_rehashed = 0; sc_cached = 0 } in
  let rate_s = Cycle_model.sample t.prng (per_byte_triple t (Cpu.core_type core)) in
  let duration = Sim_time.of_sec_f (rate_s *. float_of_int len) in
  let t0 = Engine.now engine in
  let pass_time offset =
    Sim_time.add t0 (Sim_time.of_sec_f (rate_s *. float_of_int offset))
  in
  let front_offset () =
    int_of_float (Sim_time.to_sec_f (Sim_time.diff (Engine.now engine) t0) /. rate_s)
  in
  (* The scan's streaming reads, replayed into the modeled cache at the
     pace of the front: one bulk fill per ~16 KiB of progress (256 lines,
     ~160 us of A53 hashing — finer than the probers' 200 us rounds, so a
     mid-scan probe sees the eviction set partially evicted, not an
     instantaneous sweep). Pure cache-state mutation: no PRNG draw, no
     memory access, so pre-cache experiment outputs are untouched. *)
  (match t.cache with
  | Some cache ->
      let core_id = Cpu.id core in
      let chunk = 256 * Cache.line_size cache in
      let rec fill off =
        if off < len then begin
          let n = min chunk (len - off) in
          ignore
            (Engine.at engine ~time:(pass_time off) (fun () ->
                 Cache.touch_range cache ~core:core_id ~addr:(base + off) ~len:n));
          fill (off + chunk)
        end
      in
      fill 0
  | None -> ());
  let caught : (int, unit) Hashtbl.t = Hashtbl.create 8 in
  (* Check a suspicious range when the scan front passes it: whatever still
     differs from golden there is detected. Long ranges are chunked so the
     detection instant tracks the front at 256-byte granularity (the paper's
     8-byte traces are a single chunk); a pass time already behind "now"
     (the front is mid-byte) is clamped — the front is there right now. *)
  (* Dirty-aware chunk check: if every block covering the chunk is
     stamp-clean at fire time, its bytes are known equal to golden and the
     compare loop would record nothing — skip it. (A chunk is <= 256 bytes,
     so this tests at most two stamps.) *)
  let chunk_clean offset rlen =
    let c = golden.g_blocks in
    let ps = Memory.gen_page_size in
    let p0 = base / ps in
    let first = ((base + offset) / ps) - p0 in
    let last = ((base + offset + rlen - 1) / ps) - p0 in
    let clean = ref true in
    for b = first to last do
      let lo = c.c_bounds.(b) and hi = c.c_bounds.(b + 1) in
      let stamp = Memory.generation t.memory ~addr:(base + lo) ~len:(hi - lo) in
      if c.c_clean_gen.(b) < stamp then clean := false
    done;
    !clean
  in
  let check_chunk (offset, rlen) =
    let time = Sim_time.max (pass_time offset) (Engine.now engine) in
    ignore
      (Engine.at engine ~time (fun () ->
           if not (Incremental.enabled () && chunk_clean offset rlen) then
             (* One range check for the whole chunk instead of a per-byte
                [read_byte] (whose access check walks the region list). *)
             Memory.with_range_ro t.memory ~world:World.Secure
               ~addr:(base + offset) ~len:rlen ~f:(fun data off ->
                 for i = 0 to rlen - 1 do
                   if
                     Bytes.unsafe_get data (off + i)
                     <> String.unsafe_get golden.g_content (offset + i)
                   then Hashtbl.replace caught (offset + i) ()
                 done)))
  in
  let check_at_pass (offset, rlen) =
    let chunk = 256 in
    let rec go off remaining =
      if remaining > 0 then begin
        let n = min chunk remaining in
        check_chunk (off, n);
        go (off + n) (remaining - n)
      end
    in
    go offset rlen
  in
  List.iter check_at_pass (dirty_ranges t sc golden ~base);
  (* Writes racing the scan: anything landing ahead of the front gets a
     pass-time check; writes behind the front are already missed. *)
  let watcher =
    Memory.add_write_watcher t.memory (fun ~addr ~len:wlen ->
        let lo = max addr base and hi = min (addr + wlen) (base + len) in
        if lo < hi then begin
          let front = front_offset () in
          let lo_off = max (lo - base) front in
          let hi_off = hi - base in
          if lo_off < hi_off then check_at_pass (lo_off, hi_off - lo_off)
        end)
  in
  ignore
    (Engine.schedule engine ~after:duration (fun () ->
         Memory.remove_write_watcher t.memory watcher;
         let offsets = Hashtbl.fold (fun k () acc -> k :: acc) caught [] in
         let offsets = List.sort compare offsets in
         let tampered = offsets <> [] in
         if tampered then begin
           t.tampered <- t.tampered + 1;
           Obs.incr "checker.tampered_verdicts"
         end;
         let observed = observed_hash t sc golden ~base in
         if Obs.active () then begin
           Obs.incr "scan.blocks_rehashed" ~by:sc.sc_rehashed;
           Obs.incr "scan.blocks_cached" ~by:sc.sc_cached;
           let total = sc.sc_rehashed + sc.sc_cached in
           if total > 0 then
             Obs.observe "scan.rehash_fraction"
               (float_of_int sc.sc_rehashed /. float_of_int total)
         end;
         on_verdict
           {
             v_base = base;
             v_len = len;
             v_tampered = tampered;
             v_offsets = offsets;
             v_hash_expected = golden.g_hash;
             v_hash_observed = observed;
           }));
  duration

let scans_started t = t.scans
let tampered_verdicts t = t.tampered
let blocks_rehashed t = t.blocks_rehashed
let blocks_cached t = t.blocks_cached
