module Sim_time = Satin_engine.Sim_time

type t = {
  index : int;
  core : int;
  area_index : int;
  base : int;
  len : int;
  started : Sim_time.t;
  scan_started : Sim_time.t;
  duration : Sim_time.t;
  verdict : Checker.verdict;
}

let detected t = t.verdict.Checker.v_tampered

let pp fmt t =
  Format.fprintf fmt "round %d: core %d area %d [%#x,+%d) at %a (%a) -> %s"
    t.index t.core t.area_index t.base t.len Sim_time.pp t.started Sim_time.pp
    t.duration
    (if detected t then "TAMPERED" else "clean")
