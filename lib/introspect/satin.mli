(** SATIN: secure and trustworthy asynchronous introspection (§V).

    The paper's contribution. Three randomizations defeat TZ-Evader:

    - {b Random introspection area} (integrity checking module, §V-B): the
      kernel is divided into areas below the Equation (2) size bound; each
      round scans one area drawn without replacement from the shared area
      set kept in secure memory, refilled when exhausted — so every [m]
      rounds cover the whole kernel while one round finishes before an
      evader can hide.
    - {b Random wake-up time} (self activation module, §V-C): each round is
      triggered by a per-core {e secure} timer programmed to the base period
      [tp = Tgoal / m] plus a uniform deviation in [(-tp, tp)], making the
      next check unpredictable; consecutive rounds are 0–2·tp apart.
    - {b Random CPU affinity} (multi-core collaboration, §V-D): rounds
      rotate over all cores via a wake-up time queue in secure memory — a
      batch of [n] future wake times dealt to the cores by a fresh random
      permutation per generation, with no observable cross-core interrupt.

    Each randomization can be disabled independently for the ablation bench. *)

type config = {
  t_goal : Satin_engine.Sim_time.t;
      (** time within which every area must be scanned at least once;
          [tp = t_goal / #areas] *)
  randomize_area : bool; (** false: round-robin areas in address order *)
  randomize_period : bool; (** false: deviation 0, wake exactly every [tp] *)
  randomize_core : bool; (** false: all rounds on core 0 *)
}

val default_config : config
(** The paper's: [t_goal] = 152 s over the 19-area layout (so [tp] = 8 s),
    all randomizations on. *)

type t

val install :
  tsp:Satin_tz.Tsp.t ->
  kernel:Satin_kernel.Kernel.t ->
  checker:Checker.t ->
  secure_memory:Satin_tz.Secure_memory.t ->
  ?areas:Area.t list ->
  config ->
  t
(** Enrolls every area (trusted-boot hashing, §VI-A2), sets up the area set
    and wake-up time queue in secure memory, and claims the TSP secure-timer
    handler. [areas] defaults to the layout's canonical areas. Call
    {!start}. *)

val start : t -> unit
(** Trusted-boot self-activation: deals the first generation of wake times
    and arms every core's secure timer. *)

val stop : t -> unit

val areas : t -> Area.t list
val tp : t -> Satin_engine.Sim_time.t
val rounds : t -> Round.t list
val rounds_count : t -> int
val detections : t -> int
val alarms : t -> Round.t list
(** Rounds whose verdict was tampered, oldest first. *)

val on_round : t -> (Round.t -> unit) -> unit

val full_passes : t -> int
(** Number of completed whole-kernel passes (area-set refills). *)
