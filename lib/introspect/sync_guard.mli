(** Synchronous introspection (SPROBES / TZ-RKP model) and its §VII-A limits.

    The paper's threat model assumes the attacker already holds root
    {e despite} deployed synchronous introspection. This module supplies
    both halves of that argument:

    - the {b defense}: write-protect the security-critical invariant
      structures (exception vector table, syscall table) so that any
      normal-world write traps to the secure world and is denied inline —
      the SPROBES/TZ-RKP mechanism. A naive rootkit or KProber-I install
      dies with {!Satin_hw.Memory.Write_trapped} before a byte lands.
    - the {b bypass} (§VII-A, citing the KNOX bypass [26]): a
      write-what-where kernel exploit flips the Access Permission bits of
      the guarded pages' PTEs. The trap simply stops firing; the guard
      object stays registered, so the defender's "is my hook installed?"
      self-check still passes. After {!ap_flip_exploit} the same rootkit
      write succeeds silently.

    Which is precisely why asynchronous introspection is needed as the
    second layer (§VII-C): it checks {e state}, not {e transitions}, so the
    modification is caught on the next scan no matter how it got there. *)

type target = Vectors | Syscall_table

type trap = {
  trap_time : Satin_engine.Sim_time.t;
  trap_addr : int;
  trap_target : target;
}

type t

val install : Satin_kernel.Kernel.t -> t
(** Protect both targets: all normal-world writes denied. *)

val trapped : t -> trap list
(** Denied write attempts, oldest first. *)

val trapped_count : t -> int

val hook_registered : t -> target -> bool
(** The defender's self-check: is the guard object still installed? Keeps
    answering [true] after an AP flip — the blind spot. *)

val actually_enforcing : t -> target -> bool
(** Ground truth (what only the page tables know). *)

val ap_flip_exploit : t -> target -> unit
(** The attacker's write-what-where: silently stop enforcement for one
    target. *)

val uninstall : t -> unit
