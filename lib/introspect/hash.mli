(** Integrity hash functions.

    The paper's prototype hashes kernel areas with djb2 (Bernstein); sdbm and
    FNV-1a are provided as drop-in alternatives for ablation. All three are
    64-bit, streaming, and non-cryptographic — adequate for detecting
    modifications by an attacker who cannot observe the stored reference
    values (they live in secure memory). *)

type algo = Djb2 | Sdbm | Fnv1a

val algo_to_string : algo -> string
val pp_algo : Format.formatter -> algo -> unit
val all_algos : algo list

val init : algo -> int64
val step : algo -> int64 -> int -> int64
(** [step algo h byte] absorbs one byte (0–255). *)

val absorb_int64 : algo -> int64 -> int64 -> int64
(** [absorb_int64 algo h v] absorbs [v]'s eight little-endian bytes into the
    running state [h] (used when chaining digests: Merkle nodes, the alarm
    log). *)

val hash_string : algo -> string -> int64
val hash_bytes : algo -> bytes -> int64

val hash_sub : algo -> Bytes.t -> off:int -> len:int -> int64
(** [hash_sub algo data ~off ~len] hashes [len] bytes of [data] starting at
    [off] with an algorithm-specialized unrolled loop — bit-identical to
    folding {!step} over the same bytes, several times faster. Raises
    [Invalid_argument] if the range exceeds [data]. *)

val hash_sub_seeded :
  algo -> seed:int64 -> Bytes.t -> off:int -> len:int -> int64
(** {!hash_sub} starting from an arbitrary state instead of {!init} — the
    primitive the block-combine machinery is built on. [hash_sub_seeded a
    ~seed:(init a)] is exactly [hash_sub a]. *)

(** {1 Block combine}

    Djb2 and Sdbm are affine byte recurrences [h' = h*m + c] (mod 2^64), so
    the hash of a concatenation factors:
    [H(s1 ++ s2) = H(s1) * m^|s2| + K(s2)] where [K] is the recurrence run
    from state [0] — a seed-independent per-block digest. The incremental
    checker caches [K] per page-aligned block and recombines in O(blocks)
    instead of O(bytes). FNV-1a xors before multiplying and does {e not}
    factor; {!combinable} is [false] for it and callers must re-hash in
    full when any block changed. *)

val combinable : algo -> bool

val block_pow : algo -> len:int -> int64
(** [m^len] (mod 2^64) for the algorithm's multiplier, by repeated squaring.
    Raises [Invalid_argument] for a non-combinable algorithm. *)

val block_digest : algo -> Bytes.t -> off:int -> len:int -> int64
(** Seed-independent digest [K] of a block: the recurrence run from [0]. *)

val block_digest_string : algo -> string -> off:int -> len:int -> int64

val combine_block : int64 -> pow:int64 -> digest:int64 -> int64
(** [combine_block h ~pow ~digest = h * pow + digest]: absorbs a whole block
    whose {!block_digest} is [digest] and whose {!block_pow} is [pow] into
    running state [h]. Bit-identical to feeding the block's bytes one at a
    time (combinable algorithms only). *)

val hash_region :
  algo ->
  Satin_hw.Memory.t ->
  world:Satin_hw.World.t ->
  addr:int ->
  len:int ->
  int64
(** Streaming hash straight out of physical memory (the "direct hash"
    introspection style — no snapshot buffer). *)
