(** Integrity hash functions.

    The paper's prototype hashes kernel areas with djb2 (Bernstein); sdbm and
    FNV-1a are provided as drop-in alternatives for ablation. All three are
    64-bit, streaming, and non-cryptographic — adequate for detecting
    modifications by an attacker who cannot observe the stored reference
    values (they live in secure memory). *)

type algo = Djb2 | Sdbm | Fnv1a

val algo_to_string : algo -> string
val pp_algo : Format.formatter -> algo -> unit
val all_algos : algo list

val init : algo -> int64
val step : algo -> int64 -> int -> int64
(** [step algo h byte] absorbs one byte (0–255). *)

val absorb_int64 : algo -> int64 -> int64 -> int64
(** [absorb_int64 algo h v] absorbs [v]'s eight little-endian bytes into the
    running state [h] (used when chaining digests: Merkle nodes, the alarm
    log). *)

val hash_string : algo -> string -> int64
val hash_bytes : algo -> bytes -> int64

val hash_sub : algo -> Bytes.t -> off:int -> len:int -> int64
(** [hash_sub algo data ~off ~len] hashes [len] bytes of [data] starting at
    [off] with an algorithm-specialized unrolled loop — bit-identical to
    folding {!step} over the same bytes, several times faster. Raises
    [Invalid_argument] if the range exceeds [data]. *)

val hash_region :
  algo ->
  Satin_hw.Memory.t ->
  world:Satin_hw.World.t ->
  addr:int ->
  len:int ->
  int64
(** Streaming hash straight out of physical memory (the "direct hash"
    introspection style — no snapshot buffer). *)
