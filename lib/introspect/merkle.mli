(** Page-granular Merkle hash tree over a kernel range.

    The {!Checker} keeps full golden content in secure memory — precise, but
    it costs as much secure RAM as the kernel itself (11.9 MB on the paper's
    board). A hash tree over 4 KiB pages stores 8 bytes per page plus the
    internal nodes (~46 KiB total for the paper's image, a 250× saving),
    while still:

    - verifying a whole range by recomputing leaves and comparing bottom-up;
    - pinpointing {e which} pages changed ({!dirty_pages});
    - absorbing {e authorized} changes (a kernel live-patch, a legitimate
      [ro_after_init] transition) in O(log n) node rehashes
      ({!update_page}), where the flat golden-copy approach must recopy the
      area.

    This is an engineering extension beyond the paper (its prototype hashes
    19 flat areas); the area-based race argument is orthogonal — a SATIN
    deployment can hold one tree per area. *)

type t

val build :
  ?page_size:int ->
  Hash.algo ->
  Satin_hw.Memory.t ->
  base:int ->
  len:int ->
  t
(** Snapshot the range's page hashes (secure-world reads) and build the
    tree. [page_size] defaults to 4096 and must be positive. *)

val base : t -> int
val length : t -> int
val page_size : t -> int
val pages : t -> int
val root : t -> int64

val secure_bytes : t -> int
(** Secure-memory footprint of the stored tree (8 bytes per node). *)

val verify_root : t -> Satin_hw.Memory.t -> bool
(** Fold the live leaves up and compare against the stored root; [true] iff
    they match. With {!Incremental} enabled only pages whose
    {!Satin_hw.Memory.generation} stamp advanced since their cached leaf
    was computed are re-hashed (plus the O(changed * log n) internal
    recombines); disabled, every leaf is recomputed. The returned root is
    bit-identical either way. *)

val dirty_pages : t -> Satin_hw.Memory.t -> int list
(** Page indices whose live hash differs from the stored leaf, ascending. *)

val update_page : t -> Satin_hw.Memory.t -> page:int -> unit
(** Authorized update: re-hash one page and the path to the root. Raises
    [Invalid_argument] on a bad index. *)

val node_rehashes : t -> int
(** Cumulative internal-node rehash count — lets tests pin the O(log n)
    update cost. *)

val live_leaf_rehashes : t -> int
(** Cumulative leaves re-hashed from live memory by {!live_root} /
    {!dirty_pages} (incremental mode; the reference path does not count). *)

val live_leaf_cached : t -> int
(** Cumulative leaves served from the generation-stamped cache. *)
