(** Kernel introspection areas.

    SATIN's divide-and-conquer step (§V-B): the kernel image is split along
    System.map symbol boundaries into areas small enough that one area can be
    fully scanned before an evader that has just noticed the world switch can
    finish hiding. The size bound is the paper's Equation (2) rearranged:

    size < (Tns_delay + Tns_recover − Ts_switch) / Ts_1byte

    with the attacker given the benefit of every worst case (fastest probe,
    slowest checker byte rate is {e not} assumed — the paper evaluates the
    bound at the A57's fastest rate, 6.67 ns/B, giving 1,218,351 bytes). *)

type t = {
  index : int;
  base : int;
  size : int;
  label : string; (** name of the first symbol in the area *)
}

val pp : Format.formatter -> t -> unit

val of_layout : Satin_kernel.Layout.t -> t list
(** The canonical areas of the layout (the paper's 19 for
    {!Satin_kernel.Layout.paper_layout}), labelled by their first symbol. *)

val partition : Satin_kernel.Layout.t -> bound:int -> t list
(** Greedy aggregation of consecutive symbols into areas of at most [bound]
    bytes each. Raises [Invalid_argument] if some single symbol exceeds
    [bound]. Yields fewer, larger areas than {!of_layout} when [bound]
    allows — the general algorithm for arbitrary kernels. *)

val size_bound :
  cycle:Satin_hw.Cycle_model.t ->
  checker_core:Satin_hw.Cycle_model.core_type ->
  ts_1byte:[ `Fastest | `Average ] ->
  tns_threshold:float ->
  int
(** Equation (2)'s byte bound. [tns_threshold] is the attacker's probing
    threshold (the paper uses its observed worst case, 1.8×10⁻³ s);
    [Tns_sched] comes from the cycle model's [rt_sleep], [Tns_recover] from
    the slow (A53) recovery worst case, and [Ts_switch] from the switch
    triple's maximum. *)

val total_size : t list -> int
val max_size : t list -> int
val min_size : t list -> int

val find_containing : t list -> addr:int -> t
(** Raises [Not_found]. *)
