module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Memory = Satin_hw.Memory
module Platform = Satin_hw.Platform
module Kernel = Satin_kernel.Kernel
module Layout = Satin_kernel.Layout

type target = Vectors | Syscall_table

type trap = {
  trap_time : Sim_time.t;
  trap_addr : int;
  trap_target : target;
}

type t = {
  memory : Memory.t;
  engine : Engine.t;
  vectors_guard : Memory.guard;
  syscalls_guard : Memory.guard;
  mutable traps : trap list; (* newest first *)
}

let guard_of t = function
  | Vectors -> t.vectors_guard
  | Syscall_table -> t.syscalls_guard

let install kernel =
  let platform = kernel.Kernel.platform in
  let memory = platform.Platform.memory in
  let engine = platform.Platform.engine in
  let layout = kernel.Kernel.layout in
  let t_ref = ref None in
  let deny target ~addr ~len:_ =
    (match !t_ref with
    | Some t ->
        t.traps <-
          { trap_time = Engine.now engine; trap_addr = addr; trap_target = target }
          :: t.traps
    | None -> ());
    `Deny
  in
  let protect target name (sym : Layout.symbol) =
    Memory.add_write_guard memory ~name ~base:sym.Layout.sym_addr
      ~len:sym.Layout.sym_size ~decide:(deny target)
  in
  let t =
    {
      memory;
      engine;
      vectors_guard =
        protect Vectors "sync_guard:vectors" (Layout.vector_table layout);
      syscalls_guard =
        protect Syscall_table "sync_guard:sys_call_table"
          (Layout.syscall_table layout);
      traps = [];
    }
  in
  t_ref := Some t;
  t

let trapped t = List.rev t.traps
let trapped_count t = List.length t.traps

(* The self-check a real implementation can perform from the secure world:
   "are my hooks still registered?" — which is exactly what the AP flip
   does not disturb. *)
let hook_registered _t _target = true

let actually_enforcing t target = Memory.guard_active (guard_of t target)
let ap_flip_exploit t target = Memory.disable_write_guard (guard_of t target)

let uninstall t =
  Memory.remove_write_guard t.memory t.vectors_guard;
  Memory.remove_write_guard t.memory t.syscalls_guard
