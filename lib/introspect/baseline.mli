(** Prior-art asynchronous introspection (Samsung PKM style).

    The state of the art the paper attacks (§III): a secure-world service
    that periodically — optionally at randomized instants, optionally on a
    random core — scans the {e entire} kernel image in one round. Because a
    full-image scan takes ~10⁻¹ s while TZ-Evader needs only ~8×10⁻³ s to
    notice the world switch and hide, this defense loses the race for ~90%
    of the kernel (§IV-C), which experiment E8 demonstrates. *)

type core_choice = Fixed_core of int | Random_core

type timing =
  | Fixed_period of Satin_engine.Sim_time.t
      (** next wake exactly one period after the previous one *)
  | Random_period of Satin_engine.Sim_time.t
      (** base period [tp]; next wake drawn uniformly from [\[0, 2·tp\]]
          after the previous one *)

type config = { timing : timing; core_choice : core_choice }

type t

val install :
  tsp:Satin_tz.Tsp.t ->
  kernel:Satin_kernel.Kernel.t ->
  checker:Checker.t ->
  config ->
  t
(** Enrolls the full kernel image with the checker and claims the TSP's
    secure-timer handler. Call {!start} to begin. *)

val start : t -> unit
(** Arms the first wake-up one period from now. *)

val stop : t -> unit

val rounds : t -> Round.t list
val rounds_count : t -> int
val detections : t -> int
val on_round : t -> (Round.t -> unit) -> unit
