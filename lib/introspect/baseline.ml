module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Prng = Satin_engine.Prng
module Trace = Satin_engine.Trace
module Platform = Satin_hw.Platform
module Cpu = Satin_hw.Cpu
module Timer = Satin_hw.Timer
module Monitor = Satin_hw.Monitor

type core_choice = Fixed_core of int | Random_core

type timing = Fixed_period of Sim_time.t | Random_period of Sim_time.t

type config = { timing : timing; core_choice : core_choice }

type t = {
  tsp : Satin_tz.Tsp.t;
  platform : Platform.t;
  checker : Checker.t;
  config : config;
  prng : Prng.t;
  kbase : int;
  klen : int;
  trace : Round.t Trace.t;
  mutable round_hooks : (Round.t -> unit) list;
  mutable round_index : int;
  mutable detections : int;
  mutable running : bool;
}

let rec install ~tsp ~kernel ~checker config =
  let platform = Satin_tz.Tsp.platform tsp in
  let layout = kernel.Satin_kernel.Kernel.layout in
  let kbase = Satin_kernel.Layout.base layout in
  let klen = Satin_kernel.Layout.total_size layout in
  ignore (Checker.enroll checker ~base:kbase ~len:klen);
  let t =
    {
      tsp;
      platform;
      checker;
      config;
      prng = Platform.split_prng platform;
      kbase;
      klen;
      trace = Trace.create ();
      round_hooks = [];
      round_index = 0;
      detections = 0;
      running = false;
    }
  in
  Satin_tz.Tsp.set_timer_handler tsp (fun ~core -> handle t ~core);
  t

and handle t ~core =
  if t.running then begin
    let engine = t.platform.Platform.engine in
    let cpu = Platform.core t.platform core in
    if Cpu.in_secure cpu then
      (* The timer raced another secure entry on this core; retry shortly. *)
      Timer.arm_after t.platform.Platform.secure_timers.(core) (Sim_time.ms 1)
    else begin
    let started = Engine.now engine in
    let index = t.round_index in
    t.round_index <- t.round_index + 1;
    Monitor.enter_secure t.platform.Platform.monitor ~cpu
      ~payload:(fun () ->
        let scan_started = Engine.now engine in
        Checker.start_scan t.checker ~engine ~core:cpu ~base:t.kbase ~len:t.klen
          ~on_verdict:(fun verdict ->
            if verdict.Checker.v_tampered then t.detections <- t.detections + 1;
            let round =
              {
                Round.index;
                core;
                area_index = 0;
                base = t.kbase;
                len = t.klen;
                started;
                scan_started;
                duration = Sim_time.diff (Engine.now engine) scan_started;
                verdict;
              }
            in
            Trace.record t.trace (Engine.now engine) round;
            List.iter (fun f -> f round) t.round_hooks))
      ~on_exit:(fun () -> arm_next t)
      ()
    end
  end

and arm_next t =
  if t.running then begin
    let delay =
      match t.config.timing with
      | Fixed_period p -> p
      | Random_period p -> Sim_time.of_sec_f (Prng.uniform t.prng 0.0 (2.0 *. Sim_time.to_sec_f p))
    in
    let core =
      match t.config.core_choice with
      | Fixed_core c -> c
      | Random_core -> Prng.int t.prng (Platform.ncores t.platform)
    in
    Timer.arm_after t.platform.Platform.secure_timers.(core) delay
  end

let start t =
  if not t.running then begin
    t.running <- true;
    arm_next t
  end

let stop t =
  t.running <- false;
  Satin_tz.Tsp.clear_timer_handler t.tsp;
  Array.iter Timer.disarm t.platform.Platform.secure_timers

let rounds t = Trace.values t.trace
let rounds_count t = Trace.length t.trace
let detections t = t.detections
let on_round t f = t.round_hooks <- t.round_hooks @ [ f ]
