(* Process-wide switch for incremental (generation-gated) host hashing.
   Default on; the [--full-rehash] CLI flag and the differential tests turn
   it off to force the reference full-re-hash path. The toggle changes HOST
   work only — modeled timing, scheduled events, race semantics and verdicts
   are byte-identical either way (enforced by test_incremental and the CI
   differential gate). *)

let flag = ref true
let enabled () = !flag
let set_enabled v = flag := v

let with_enabled v f =
  let prev = !flag in
  flag := v;
  Fun.protect ~finally:(fun () -> flag := prev) f
