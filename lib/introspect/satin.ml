module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Prng = Satin_engine.Prng
module Trace = Satin_engine.Trace
module Platform = Satin_hw.Platform
module Cpu = Satin_hw.Cpu
module Timer = Satin_hw.Timer
module Monitor = Satin_hw.Monitor
module Secure_memory = Satin_tz.Secure_memory
module Obs = Satin_obs.Obs

type config = {
  t_goal : Sim_time.t;
  randomize_area : bool;
  randomize_period : bool;
  randomize_core : bool;
}

let default_config =
  {
    t_goal = Sim_time.s 152;
    randomize_area = true;
    randomize_period = true;
    randomize_core = true;
  }

type t = {
  tsp : Satin_tz.Tsp.t;
  platform : Platform.t;
  checker : Checker.t;
  smem : Secure_memory.t;
  config : config;
  prng : Prng.t;
  areas : Area.t array;
  tp : Sim_time.t;
  (* Secure-memory state: the shared area set, the wake-up time queue and
     its availability bits, and the next generation's base instant. *)
  area_set : Secure_memory.cell;
  wake_queue : Secure_memory.cell;
  wake_live : Secure_memory.cell;
  gen_base : Secure_memory.cell;
  trace : Round.t Trace.t;
  alarms : Round.t Trace.t;
  mutable round_hooks : (Round.t -> unit) list;
  mutable round_index : int;
  mutable area_cursor : int; (* ablation: in-order area selection *)
  mutable detections : int;
  mutable full_passes : int;
  mutable running : bool;
}

let ncores t = Platform.ncores t.platform
let m t = Array.length t.areas

(* ---- area set in secure memory ---- *)

let area_set_refill t =
  for i = 0 to m t - 1 do
    Secure_memory.set t.smem t.area_set i 1L
  done

let area_set_available t =
  let rec go i acc =
    if i < 0 then acc
    else go (i - 1) (if Secure_memory.get t.smem t.area_set i = 1L then i :: acc else acc)
  in
  go (m t - 1) []

let next_area t =
  let available = area_set_available t in
  let available =
    match available with
    | [] ->
        (* Set exhausted: refill with all areas (§V-B). *)
        area_set_refill t;
        area_set_available t
    | _ :: _ -> available
  in
  let choice =
    if t.config.randomize_area then
      List.nth available (Prng.int t.prng (List.length available))
    else begin
      (* Ablation: deterministic address-order sweep. *)
      let c = t.area_cursor mod m t in
      t.area_cursor <- t.area_cursor + 1;
      if List.mem c available then c else List.hd available
    end
  in
  Secure_memory.set t.smem t.area_set choice 0L;
  (* Drawing the last area completes one whole-kernel pass. *)
  if area_set_available t = [] then t.full_passes <- t.full_passes + 1;
  t.areas.(choice)

(* ---- wake-up time queue in secure memory (§V-D) ---- *)

let deviation t =
  if t.config.randomize_period then
    let tp_s = Sim_time.to_sec_f t.tp in
    Sim_time.of_sec_f (Prng.uniform t.prng (-.tp_s) tp_s)
  else Sim_time.zero

let generate_generation t =
  (* Fill the queue with the next n wake instants: base + (j+1)·tp ± dev. *)
  let base = Secure_memory.get_time t.smem t.gen_base 0 in
  let n = ncores t in
  for j = 0 to n - 1 do
    let time =
      Sim_time.add base (Sim_time.add (Sim_time.scale t.tp (float_of_int (j + 1))) (deviation t))
    in
    Secure_memory.set_time t.smem t.wake_queue j (Sim_time.max Sim_time.zero time);
    Secure_memory.set t.smem t.wake_live j 1L
  done;
  Secure_memory.set_time t.smem t.gen_base 0
    (Sim_time.add base (Sim_time.scale t.tp (float_of_int n)))

let queue_extract t =
  let n = ncores t in
  let live = ref [] in
  for j = n - 1 downto 0 do
    if Secure_memory.get t.smem t.wake_live j = 1L then live := j :: !live
  done;
  let live =
    match !live with
    | [] ->
        generate_generation t;
        List.init n (fun j -> j)
    | l -> l
  in
  (* Random slot choice realizes the per-generation random assignment. *)
  let slot =
    if t.config.randomize_core then List.nth live (Prng.int t.prng (List.length live))
    else List.hd live
  in
  Secure_memory.set t.smem t.wake_live slot 0L;
  Secure_memory.get_time t.smem t.wake_queue slot

(* ---- rounds ---- *)

let handle t ~core =
  if t.running then begin
    let cpu = Platform.core t.platform core in
    if Cpu.in_secure cpu then
      (* Secure timer raced our own round; push the wake slightly. *)
      Timer.arm_after t.platform.Platform.secure_timers.(core) (Sim_time.ms 1)
    else begin
      let engine = t.platform.Platform.engine in
      let started = Engine.now engine in
      let index = t.round_index in
      t.round_index <- t.round_index + 1;
      Monitor.enter_secure t.platform.Platform.monitor ~cpu
        ~payload:(fun () ->
          let area = next_area t in
          let scan_started = Engine.now engine in
          if Obs.active () then
            Obs.span_begin ~time:scan_started ~track:core ~cat:"introspect"
              ~args:
                [
                  ("area", Satin_obs.Json.Int area.Area.index);
                  ("base", Satin_obs.Json.Int area.Area.base);
                  ("len", Satin_obs.Json.Int area.Area.size);
                ]
              (Printf.sprintf "check area %d" area.Area.index);
          let duration =
            Checker.start_scan t.checker ~engine ~core:cpu ~base:area.Area.base
              ~len:area.Area.size
              ~on_verdict:(fun verdict ->
                let round =
                  {
                    Round.index;
                    core;
                    area_index = area.Area.index;
                    base = area.Area.base;
                    len = area.Area.size;
                    started;
                    scan_started;
                    duration = Sim_time.diff (Engine.now engine) scan_started;
                    verdict;
                  }
                in
                if Obs.active () then begin
                  Obs.span_end ~time:(Engine.now engine) ~track:core;
                  Obs.incr "satin.rounds";
                  Obs.observe_time "satin.check_duration"
                    ~labels:[ ("area", string_of_int area.Area.index) ]
                    round.Round.duration
                end;
                if verdict.Checker.v_tampered then begin
                  t.detections <- t.detections + 1;
                  if Obs.active () then begin
                    Obs.incr "satin.detections";
                    Obs.instant ~time:(Engine.now engine) ~track:core
                      ~cat:"alarm"
                      ~args:[ ("area", Satin_obs.Json.Int area.Area.index) ]
                      "detection"
                  end;
                  Trace.record t.alarms (Engine.now engine) round
                end;
                Trace.record t.trace (Engine.now engine) round;
                List.iter (fun f -> f round) t.round_hooks)
          in
          (* Self activation (§V-C): still in the secure world, take the next
             assigned wake time from the queue and program the secure timer.
             Never arm inside our own round's secure window, and keep a
             floor between consecutive rounds of one core so a late-drawn
             wake time cannot glue two rounds together. The floor scales
             with tp so sub-second Tgoal configurations keep their cadence. *)
          let next_wake = queue_extract t in
          let floor = Sim_time.min (Sim_time.ms 50) (Sim_time.ns (t.tp / 4)) in
          let not_before =
            Sim_time.add (Engine.now engine) (Sim_time.add duration floor)
          in
          Timer.arm_at t.platform.Platform.secure_timers.(core)
            (Sim_time.max next_wake not_before);
          duration)
        ()
    end
  end

let start t =
  if not t.running then begin
    t.running <- true;
    let now = Engine.now t.platform.Platform.engine in
    Secure_memory.set_time t.smem t.gen_base 0 now;
    (* Trusted boot: deal the first generation straight to the timers. *)
    generate_generation t;
    let n = ncores t in
    if t.config.randomize_core then begin
      let order = Array.init n (fun i -> i) in
      Prng.shuffle t.prng order;
      Array.iteri
        (fun slot core ->
          Secure_memory.set t.smem t.wake_live slot 0L;
          Timer.arm_at t.platform.Platform.secure_timers.(core)
            (Secure_memory.get_time t.smem t.wake_queue slot))
        order
    end
    else begin
      (* Ablation: a single fixed core serves every round. *)
      Secure_memory.set t.smem t.wake_live 0 0L;
      Timer.arm_at t.platform.Platform.secure_timers.(0)
        (Secure_memory.get_time t.smem t.wake_queue 0)
    end
  end

let install ~tsp ~kernel ~checker ~secure_memory ?areas config =
  let platform = Satin_tz.Tsp.platform tsp in
  let layout = kernel.Satin_kernel.Kernel.layout in
  let areas =
    match areas with Some a -> Array.of_list a | None -> Array.of_list (Area.of_layout layout)
  in
  if Array.length areas = 0 then invalid_arg "Satin.install: no areas";
  Array.iter
    (fun a -> ignore (Checker.enroll checker ~base:a.Area.base ~len:a.Area.size))
    areas;
  let n = Platform.ncores platform in
  let t =
    {
      tsp;
      platform;
      checker;
      smem = secure_memory;
      config;
      prng = Platform.split_prng platform;
      areas;
      tp = Sim_time.ns (config.t_goal / Array.length areas);
      area_set = Secure_memory.alloc secure_memory ~name:"satin.area_set" ~slots:(Array.length areas);
      wake_queue = Secure_memory.alloc secure_memory ~name:"satin.wake_queue" ~slots:n;
      wake_live = Secure_memory.alloc secure_memory ~name:"satin.wake_live" ~slots:n;
      gen_base = Secure_memory.alloc secure_memory ~name:"satin.gen_base" ~slots:1;
      trace = Trace.create ();
      alarms = Trace.create ();
      round_hooks = [];
      round_index = 0;
      area_cursor = 0;
      detections = 0;
      full_passes = 0;
      running = false;
    }
  in
  area_set_refill t;
  Satin_tz.Tsp.set_timer_handler tsp (fun ~core -> handle t ~core);
  t

let stop t =
  t.running <- false;
  Satin_tz.Tsp.clear_timer_handler t.tsp;
  Array.iter Timer.disarm t.platform.Platform.secure_timers

let areas t = Array.to_list t.areas
let tp t = t.tp
let rounds t = Trace.values t.trace
let rounds_count t = Trace.length t.trace
let detections t = t.detections
let alarms t = Trace.values t.alarms
let on_round t f = t.round_hooks <- t.round_hooks @ [ f ]
let full_passes t = t.full_passes
