module Sim_time = Satin_engine.Sim_time

type severity = Info | Alert

type entry = {
  seq : int;
  time : Sim_time.t;
  severity : severity;
  area_index : int;
  core : int;
  offsets : int list;
  digest : int64;
}

type t = {
  algo : Hash.algo;
  log_clean_rounds : bool;
  genesis : int64;
  mutable log : entry list; (* newest first *)
  mutable next_seq : int;
  mutable alarm_hooks : (entry -> unit) list;
}

let genesis_value = 0x5a71a17e_0001L

let create ?(algo = Hash.Djb2) ?(log_clean_rounds = false) () =
  {
    algo;
    log_clean_rounds;
    genesis = genesis_value;
    log = [];
    next_seq = 0;
    alarm_hooks = [];
  }

let genesis t = t.genesis

(* Serialize an entry's payload (everything but the digest) and absorb it
   into the chain after the previous digest. *)
let payload_string ~seq ~time ~severity ~area_index ~core ~offsets =
  Printf.sprintf "%d|%d|%s|%d|%d|%s" seq time
    (match severity with Info -> "i" | Alert -> "A")
    area_index core
    (String.concat "," (List.map string_of_int offsets))

let chain_digest algo ~prev ~payload =
  let h = Hash.absorb_int64 algo (Hash.init algo) prev in
  String.fold_left (fun acc c -> Hash.step algo acc (Char.code c)) h payload

let head_digest t =
  match t.log with [] -> t.genesis | e :: _ -> e.digest

let append t ~time ~severity ~area_index ~core ~offsets =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let payload = payload_string ~seq ~time ~severity ~area_index ~core ~offsets in
  let digest = chain_digest t.algo ~prev:(head_digest t) ~payload in
  let entry = { seq; time; severity; area_index; core; offsets; digest } in
  t.log <- entry :: t.log;
  if severity = Alert then List.iter (fun f -> f entry) t.alarm_hooks;
  entry

let record_round t (round : Round.t) =
  let tampered = Round.detected round in
  if tampered || t.log_clean_rounds then
    ignore
      (append t ~time:round.Round.started
         ~severity:(if tampered then Alert else Info)
         ~area_index:round.Round.area_index ~core:round.Round.core
         ~offsets:round.Round.verdict.Checker.v_offsets)

let attach_satin t satin = Satin.on_round satin (record_round t)
let attach_baseline t baseline = Baseline.on_round baseline (record_round t)

let entries t = List.rev t.log
let alarms t = List.rev (List.filter (fun e -> e.severity = Alert) t.log)
let count t = List.length t.log

let verify_entries ~genesis ~algo log =
  let rec go prev expected_seq = function
    | [] -> true
    | e :: rest ->
        let payload =
          payload_string ~seq:e.seq ~time:e.time ~severity:e.severity
            ~area_index:e.area_index ~core:e.core ~offsets:e.offsets
        in
        e.seq = expected_seq
        && Int64.equal e.digest (chain_digest algo ~prev ~payload)
        && go e.digest (expected_seq + 1) rest
  in
  go genesis 0 log

let verify_chain t = verify_entries ~genesis:t.genesis ~algo:t.algo (entries t)

let on_alarm t f = t.alarm_hooks <- t.alarm_hooks @ [ f ]
