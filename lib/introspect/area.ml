module Layout = Satin_kernel.Layout
module Cycle_model = Satin_hw.Cycle_model

type t = { index : int; base : int; size : int; label : string }

let pp fmt a =
  Format.fprintf fmt "area %d [%#x, +%d) %s" a.index a.base a.size a.label

let label_of_symbols base symbols =
  match List.find_opt (fun s -> s.Layout.sym_addr = base) symbols with
  | Some s -> s.Layout.sym_name
  | None -> "?"

let of_layout layout =
  let symbols = Layout.symbols layout in
  let _, areas =
    List.fold_left
      (fun (base, acc) (index, size) ->
        let label = label_of_symbols base symbols in
        (base + size, { index; base; size; label } :: acc))
      (Layout.base layout, [])
      (List.mapi (fun i s -> i, s) (Layout.canonical_area_sizes layout))
  in
  List.rev areas

let partition layout ~bound =
  if bound <= 0 then invalid_arg "Area.partition: bound must be positive";
  let symbols = Layout.symbols layout in
  List.iter
    (fun s ->
      if s.Layout.sym_size > bound then
        invalid_arg
          (Printf.sprintf "Area.partition: symbol %s (%d B) exceeds bound %d"
             s.Layout.sym_name s.Layout.sym_size bound))
    symbols;
  let close idx base size acc =
    { index = idx; base; size; label = label_of_symbols base symbols } :: acc
  in
  let rec go idx base size acc = function
    | [] -> if size > 0 then List.rev (close idx base size acc) else List.rev acc
    | s :: rest ->
        if size + s.Layout.sym_size > bound then
          go (idx + 1) s.Layout.sym_addr s.Layout.sym_size (close idx base size acc)
            rest
        else go idx base (size + s.Layout.sym_size) acc rest
  in
  match symbols with
  | [] -> []
  | first :: rest -> go 0 first.Layout.sym_addr first.Layout.sym_size [] rest

let size_bound ~cycle ~checker_core ~ts_1byte ~tns_threshold =
  let open Cycle_model in
  let rate =
    let tr = cycle.hash_1byte checker_core in
    match ts_1byte with `Fastest -> tr.t_min | `Average -> tr.t_avg
  in
  let tns_sched = cycle.rt_sleep in
  let tns_recover = (cycle.recover_8bytes A53).t_max in
  let ts_switch = (cycle.world_switch checker_core).t_max in
  let budget = tns_sched +. tns_threshold +. tns_recover -. ts_switch in
  int_of_float (budget /. rate)

let total_size areas = List.fold_left (fun acc a -> acc + a.size) 0 areas

let max_size = function
  | [] -> invalid_arg "Area.max_size: empty"
  | areas -> List.fold_left (fun acc a -> max acc a.size) 0 areas

let min_size = function
  | [] -> invalid_arg "Area.min_size: empty"
  | areas -> List.fold_left (fun acc a -> min acc a.size) max_int areas

let find_containing areas ~addr =
  match List.find_opt (fun a -> addr >= a.base && addr < a.base + a.size) areas with
  | Some a -> a
  | None -> raise Not_found
