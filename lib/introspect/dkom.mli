(** Cross-view detection of DKOM process hiding.

    Hash-based integrity checking (the paper's main mechanism) only covers
    invariant kernel bytes; the process lists mutate legitimately. This
    plugin closes that gap the way the fine-grained introspection systems
    cited in the paper's introduction do: walk the all-tasks list and the
    run queue through physical memory from the secure world and diff the
    views. A DKOM-hidden process — unlinked from the tasks list but still
    scheduled — appears only in the run-queue walk.

    The walk is timed against the cycle model: each node is a dependent
    pointer chase (~a cache miss per node), so even a thousand-process
    system is examined in well under 10^-4 s. That asymmetry is the
    interesting result of experiment E13: TZ-Evader needs ~2×10⁻³ s merely
    to {e notice} the world switch, so a cross-view check is over before
    any relink can start — dynamic-data checks win the §IV race by an order
    of magnitude even without SATIN's area trick. *)

type report = {
  hidden_pids : int list; (** scheduled but missing from the tasks list *)
  ghost_pids : int list; (** listed but not schedulable (non-runnable or decoy) *)
  tasks_count : int;
  runqueue_count : int;
  duration : Satin_engine.Sim_time.t; (** simulated walk time *)
}

val node_visit_cost : Satin_hw.Cycle_model.triple
(** Per-node pointer-chase cost (≈ one DRAM round trip, 80–150 ns). *)

val check :
  Satin_kernel.Proc_table.t -> prng:Satin_engine.Prng.t -> report
(** One cross-view pass with secure-world reads. Pure with respect to the
    simulation clock: callers run it inside a secure window and account
    [duration] themselves (e.g. as part of a monitor payload). *)

val hidden : report -> bool
