module Platform = Satin_hw.Platform
module Gic = Satin_hw.Gic

type t = {
  platform : Platform.t;
  mutable handler : (core:int -> unit) option;
  mutable taken : int;
}

let install platform =
  let t = { platform; handler = None; taken = 0 } in
  Gic.set_secure_handler platform.Platform.gic ~irq:Platform.secure_timer_irq
    (fun ~core ->
      t.taken <- t.taken + 1;
      match t.handler with Some f -> f ~core | None -> ());
  t

let set_timer_handler t f =
  match t.handler with
  | Some _ ->
      invalid_arg
        "Tsp.set_timer_handler: a secure-timer service is already installed"
  | None -> t.handler <- Some f

let clear_timer_handler t = t.handler <- None
let timer_interrupts_taken t = t.taken
let platform t = t.platform
