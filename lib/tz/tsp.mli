(** Test Secure Payload (S-EL1 secure OS model).

    The TSP is the thin secure-world dispatcher ARM Trusted Firmware ships
    for testing; the paper modifies its secure-timer interrupt handler to run
    the introspection (§IV-A). Here it binds the platform's secure timer
    interrupt to a replaceable handler. The handler runs with secure
    privilege on the interrupted core; it is expected to drive
    {!Satin_hw.Monitor.enter_secure} for any long-running work. *)

type t

val install : Satin_hw.Platform.t -> t
(** Claims the secure timer interrupt. Only one TSP per platform. *)

val set_timer_handler : t -> (core:int -> unit) -> unit
(** Installs the secure-timer interrupt handler. Raises [Invalid_argument]
    if one is already installed — two defenses silently fighting over the
    timer would disable each other; call {!clear_timer_handler} first (the
    defenses' [stop] functions do). *)

val clear_timer_handler : t -> unit

val timer_interrupts_taken : t -> int

val platform : t -> Satin_hw.Platform.t
