(** Secure-world memory carve-out.

    A TZASC-protected region plus a tiny allocator of named cells, each a
    fixed-size array of 64-bit words physically stored inside the region.
    SATIN keeps its authorized hash table, kernel-area bookkeeping, and
    wake-up time queue here: the state is genuinely unreachable from the
    normal world (a normal-world read raises
    {!Satin_hw.Memory.Access_violation}), which is what makes the wake-up
    pattern unobservable (§V-C, §V-D). *)

type t

type cell

val create : memory:Satin_hw.Memory.t -> base:int -> size:int -> t
(** Declares [\[base, base+size)] as a secure region named
    ["tz_secure_ram"]. *)

val region : t -> Satin_hw.Memory.region

val alloc : t -> name:string -> slots:int -> cell
(** A named array of [slots] int64 words. Raises [Invalid_argument] when the
    region is exhausted or the name is taken. *)

val slots : cell -> int
val get : t -> cell -> int -> int64
val set : t -> cell -> int -> int64 -> unit
(** Cell accesses execute with secure-world privilege. Index out of range
    raises [Invalid_argument]. *)

val get_time : t -> cell -> int -> Satin_engine.Sim_time.t
val set_time : t -> cell -> int -> Satin_engine.Sim_time.t -> unit
(** Convenience: store simulated instants as nanosecond words. *)

val used_bytes : t -> int
