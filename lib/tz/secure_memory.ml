module Memory = Satin_hw.Memory
module World = Satin_hw.World

type cell = { cell_name : string; base : int; slots : int }

type t = {
  memory : Memory.t;
  region : Memory.region;
  mutable next_free : int;
  mutable cells : cell list;
}

let create ~memory ~base ~size =
  let region =
    Memory.add_region memory ~name:"tz_secure_ram" ~base ~size
      ~security:Memory.Secure_region
  in
  { memory; region; next_free = base; cells = [] }

let region t = t.region

let alloc t ~name ~slots =
  if slots <= 0 then invalid_arg "Secure_memory.alloc: slots must be positive";
  if List.exists (fun c -> c.cell_name = name) t.cells then
    invalid_arg (Printf.sprintf "Secure_memory.alloc: cell %s exists" name);
  let bytes = slots * 8 in
  let limit = t.region.Memory.base + t.region.Memory.size in
  if t.next_free + bytes > limit then
    invalid_arg "Secure_memory.alloc: secure region exhausted";
  let cell = { cell_name = name; base = t.next_free; slots } in
  t.next_free <- t.next_free + bytes;
  t.cells <- cell :: t.cells;
  cell

let slots c = c.slots

let check c i =
  if i < 0 || i >= c.slots then
    invalid_arg (Printf.sprintf "Secure_memory: %s[%d] out of range" c.cell_name i)

let get t c i =
  check c i;
  Memory.read_int64_le t.memory ~world:World.Secure ~addr:(c.base + (i * 8))

let set t c i value =
  check c i;
  Memory.write_int64_le t.memory ~world:World.Secure ~addr:(c.base + (i * 8)) value

let get_time t c i = Int64.to_int (get t c i)
let set_time t c i v = set t c i (Int64.of_int v)

let used_bytes t = t.next_free - t.region.Memory.base
