(** Deterministic Domain-based work pool for trial fan-outs.

    Every table and figure of the evaluation is an embarrassingly-parallel
    fan-out of independently-seeded trials. [map] executes the trial bodies
    on up to [jobs] domains and returns the results {e in submission order},
    so a report assembled from the results is byte-identical whatever the
    number of domains or the scheduling of trials onto them.

    The determinism contract rests on the trial bodies, not on the pool:
    a trial must derive everything stochastic from its own seed (build its
    own [Scenario]/[Prng] from {!Satin_engine.Prng.derive}) and must not
    read or write mutable state shared with any other trial. The pool
    enforces what it can mechanically: results land in a per-index slot,
    exceptions are re-raised in submission order, and nested use (calling
    [map] from inside a trial) is rejected.

    The global {!Satin_obs.Obs} sink is process-wide mutable state, so when
    a sink is installed ([--trace]/[--metrics]) the pool degrades to
    sequential execution — same results, full instrumentation, no data
    races. Pool-level metrics ([runner.batches], [runner.trials],
    [runner.domain_trials{domain=i}], [runner.batch_wall_s],
    [runner.queue_depth]) are recorded by the submitting domain only. *)

type t

val create : ?clamp:bool -> ?jobs:int -> unit -> t
(** [create ~jobs ()] is a pool running trial batches on up to [jobs]
    domains (including the caller's). Default 1 — today's sequential
    behavior. Raises [Invalid_argument] if [jobs < 1]. No domains are
    spawned until {!map} runs a batch needing them.

    By default the dispatch width is clamped to
    [Domain.recommended_domain_count ()] — oversubscribing a host with
    more domains than cores ran experiments at 0.22–0.74x of sequential
    (GC synchronization with nothing to overlap); a warning is printed on
    stderr when the clamp engages. [~clamp:false] disables the clamp (the
    pool's own tests use it to exercise the multi-domain machinery on
    small hosts). The requested width stays visible via {!jobs}; the
    dispatch width via {!effective_jobs}. *)

val sequential : t
(** [create ~jobs:1 ()]. *)

val jobs : t -> int
(** The requested width. *)

val effective_jobs : t -> int
(** The width batches actually dispatch at: [jobs] clamped to the host's
    recommended domain count (unless created with [~clamp:false]). *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map pool n f] evaluates [f 0 .. f (n-1)] and returns the results in
    index order. With [jobs > 1] (and no obs sink installed) trials run
    work-stealing on [min jobs n] domains; result order is index order
    regardless.

    If one or more trials raise, the remaining trials still run to
    completion and the exception of the {e lowest-indexed} failed trial is
    re-raised (with its backtrace) in the caller — so which error surfaces
    does not depend on domain scheduling.

    Raises [Invalid_argument] when called from inside a running trial
    (nested fan-outs would deadlock the fixed-size pool and break the
    submission-order guarantee), or when [n < 0]. *)

val map_cached :
  t ->
  int ->
  lookup:(int -> 'a option) ->
  ?on_computed:(int -> 'a -> unit) ->
  (int -> 'a) ->
  'a array
(** [map_cached pool n ~lookup ~on_computed f] is {!map} with an external
    result cache threaded through: every index is first offered to
    [lookup] (run sequentially on the submitting domain, in index order),
    and only the unresolved indices are dispatched to the pool as a [map]
    batch. [on_computed i v] runs right after trial [i]'s body returns, on
    the domain that ran it — the persistence hook, called per-trial so an
    interrupted batch keeps its completed work. Results are returned in
    submission order; error propagation for the dispatched subset follows
    {!map} (lowest submitted index wins). Resolved trials count under the
    [runner.trials_resolved] metric and are never dispatched, so a fully
    resolved batch spawns no domains. *)

val map_list : t -> 'a list -> ('a -> 'b) -> 'b list
(** [map_list pool items f] is {!map} over a list, preserving order. *)

val last_batch_wall_s : t -> float
(** Wall-clock seconds of the pool's most recent completed batch (0. before
    any batch ran). Real time, not simulated time. *)
