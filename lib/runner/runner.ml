module Obs = Satin_obs.Obs
module Progress = Satin_obs.Progress

type t = { jobs : int; effective_jobs : int; mutable last_wall_s : float }

(* Domains beyond the host's cores only add GC-synchronization stalls:
   BENCH_runner.json showed --jobs 4 running at 0.22-0.74x of --jobs 1 on
   a 1-core host before the clamp. The requested width is kept for
   reporting; dispatch uses the clamped width. *)
let host_cores () = Domain.recommended_domain_count ()

let create ?(clamp = true) ?(jobs = 1) () =
  if jobs < 1 then invalid_arg "Runner.create: jobs must be >= 1";
  let cores = host_cores () in
  if clamp && jobs > cores then
    Printf.eprintf
      "runner: --jobs %d exceeds the %d available core(s); clamping to %d\n%!"
      jobs cores cores;
  let effective_jobs = if clamp then min jobs cores else jobs in
  { jobs; effective_jobs; last_wall_s = 0.0 }

let sequential = create ()
let jobs t = t.jobs
let effective_jobs t = t.effective_jobs
let last_batch_wall_s t = t.last_wall_s

(* Set while the current domain is executing a trial body; [map] from a
   flagged domain is a nested fan-out and is rejected. *)
let in_trial = Domain.DLS.new_key (fun () -> false)

type 'a cell =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

let run_trial f i =
  match f i with
  | v ->
      Progress.trial_done ~hit:false;
      Done v
  | exception e ->
      let bt = Printexc.get_raw_backtrace () in
      Failed (e, bt)

(* Submission-order collection: Array.map visits indices in order, so the
   lowest-indexed failure is the one re-raised. *)
let collect results =
  Array.map
    (function
      | Done v -> v
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | Pending -> assert false)
    results

let record_metrics ~n ~requested ~effective ~wall executed =
  Obs.incr "runner.batches";
  Obs.incr "runner.trials" ~by:n;
  Obs.set_gauge "runner.queue_depth" 0.0;
  (* Wall time is the one nondeterministic reading here; it goes to the
     segregated real-time registry so --metrics output stays byte-stable.
     The pool widths join it because the effective width is a property of
     the host (the clamp), not of the simulated run. *)
  Obs.observe_wall "runner.batch_wall_s" wall;
  Obs.observe_wall "runner.jobs_requested" (float_of_int requested);
  Obs.observe_wall "runner.jobs_effective" (float_of_int effective);
  Array.iteri
    (fun w c ->
      Obs.incr "runner.domain_trials"
        ~labels:[ ("domain", string_of_int w) ]
        ~by:c)
    executed

let map pool n f =
  if n < 0 then invalid_arg "Runner.map: negative batch size";
  if Domain.DLS.get in_trial then
    invalid_arg "Runner.map: nested use (map called from inside a trial)";
  (* The obs sink is a process-global; trial bodies instrument through it,
     so a batch under an installed sink runs sequentially (same results —
     that is the whole point of the pool — just no overlap). *)
  let jobs = if Obs.enabled () then 1 else min pool.effective_jobs n in
  Obs.set_gauge "runner.queue_depth" (float_of_int n);
  Progress.batch_start n;
  let wall0 = Unix.gettimeofday () in
  let results = Array.make n Pending in
  let executed =
    if jobs <= 1 then begin
      Domain.DLS.set in_trial true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set in_trial false)
        (fun () ->
          for i = 0 to n - 1 do
            results.(i) <- run_trial f i
          done);
      [| n |]
    end
    else begin
      let next = Atomic.make 0 in
      let executed = Array.make jobs 0 in
      (* Work stealing over a chunked atomic cursor: each worker claims a
         run of [chunk] indices per fetch-and-add, amortizing the shared-
         counter traffic and domain wake-ups over several trials while
         leaving enough chunks (about 8 per worker) for load balancing.
         Each worker writes private result slots, so domains never touch
         the same location and the result array is index-ordered by
         construction. *)
      let chunk = max 1 (n / (jobs * 8)) in
      let worker w =
        Domain.DLS.set in_trial true;
        let count = ref 0 in
        let rec loop () =
          let lo = Atomic.fetch_and_add next chunk in
          if lo < n then begin
            let hi = min (lo + chunk) n in
            for i = lo to hi - 1 do
              results.(i) <- run_trial f i;
              incr count
            done;
            loop ()
          end
        in
        loop ();
        Domain.DLS.set in_trial false;
        executed.(w) <- !count
      in
      let others =
        Array.init (jobs - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
      in
      Fun.protect
        ~finally:(fun () -> Array.iter Domain.join others)
        (fun () -> worker 0);
      executed
    end
  in
  let wall = Unix.gettimeofday () -. wall0 in
  pool.last_wall_s <- wall;
  record_metrics ~n ~requested:pool.jobs ~effective:jobs ~wall executed;
  collect results

let map_cached pool n ~lookup ?(on_computed = fun _ _ -> ()) f =
  if n < 0 then invalid_arg "Runner.map_cached: negative batch size";
  (* Resolution runs on the submitting domain, in index order, before any
     dispatch — the resolved set (and therefore the miss set handed to the
     pool) is independent of jobs width. *)
  let resolved = Array.init n lookup in
  let misses = ref [] in
  for i = n - 1 downto 0 do
    if resolved.(i) = None then misses := i :: !misses
  done;
  let misses = Array.of_list !misses in
  let resolved_count = n - Array.length misses in
  Obs.incr "runner.trials_resolved" ~by:resolved_count;
  (* Progress accounting split: this layer reports the warm trials, the
     inner [map] reports the misses it actually runs — together exactly
     [n], with no double count. *)
  if Progress.enabled () && resolved_count > 0 then begin
    Progress.batch_start resolved_count;
    for _ = 1 to resolved_count do
      Progress.trial_done ~hit:true
    done
  end;
  let computed =
    map pool (Array.length misses) (fun j ->
        let i = misses.(j) in
        let v = f i in
        on_computed i v;
        v)
  in
  Array.iteri (fun j i -> resolved.(i) <- Some computed.(j)) misses;
  Array.map (function Some v -> v | None -> assert false) resolved

let map_list pool items f =
  let arr = Array.of_list items in
  Array.to_list (map pool (Array.length arr) (fun i -> f arr.(i)))
