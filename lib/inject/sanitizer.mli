(** Runtime invariant sanitizer for the simulation substrate.

    The sanitizer rides the engine's observer hook and validates, on a
    sampled cadence, that the simulation's own bookkeeping is still
    coherent:

    - {e clock monotonicity} (every event; one comparison): fired events
      must carry non-decreasing instants — a rewind means engine-state
      corruption;
    - {e event-queue health} (sampled):
      {!Satin_engine.Engine.invariant_violations} — heap order, live-count
      accounting, vacated-slot clearing;
    - {e scheduler coherence} (sampled, when a {!Satin_kernel.Sched.t} is
      given): per-core world/run-state consistency, queue ordering, no
      double-queued task;
    - {e process-table structure} (sampled, when a
      {!Satin_kernel.Proc_table.t} is given): list linkage, slot
      accounting.

    It is surfaced as [--check] on every [satin_cli] subcommand and on
    [bench/main.exe]: {!set_check_mode} flips a global flag that
    [Scenario.create] consults to auto-attach an instance to every scenario
    it builds; violations aggregate into process-global counters
    ({!global_report}) and the drivers exit nonzero when any were found.

    Domain safety: the per-scenario instance is confined to the domain
    running that trial; the global aggregates are atomics plus a
    mutex-guarded capped message list. Because the sanitizer only {e reads}
    simulation state and integer totals commute, a [--check] campaign stays
    byte-identical at any [--jobs] width. *)

(** {1 Global check mode} *)

val set_check_mode : bool -> unit
(** Enable/disable auto-attachment in [Scenario.create]. Off by default. *)

val check_mode : unit -> bool

type report = { checks : int; violations : int; messages : string list }
(** [messages] is capped at 32 entries (each prefixed by the instance
    name); [checks]/[violations] keep exact totals. *)

val global_report : unit -> report

val reset_global : unit -> unit

(** {1 Per-engine instances} *)

type t

val attach :
  ?sample_every:int ->
  ?name:string ->
  ?sched:Satin_kernel.Sched.t ->
  ?proc_table:Satin_kernel.Proc_table.t ->
  Satin_engine.Engine.t ->
  t
(** Chains onto the engine's observer (preserving any observer already
    installed, e.g. the metrics one) and samples the structural checks every
    [sample_every] fired events (default 512; must be >= 1, enforced with
    [Invalid_argument]). Monotonicity is checked on every event. *)

val check_now : t -> string list
(** Run a full structural sweep immediately; returns (and records) the
    violations found. Drivers call this once more after a run so corruption
    introduced after the last sampled event still counts. *)

val checks : t -> int
(** Checks this instance has run (sampled + explicit). *)

val violations : t -> int
