module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Sched = Satin_kernel.Sched
module Proc_table = Satin_kernel.Proc_table
module Obs = Satin_obs.Obs

(* ---- global state ----

   Campaigns fan trials out over domains, so the global aggregates are a
   pair of atomics plus a mutex-guarded capped message list. Per-trial
   check/violation counts are deterministic (the sanitizer only reads
   simulation state), and integer addition commutes, so the totals are
   byte-identical whatever the jobs width. *)

let mode = Atomic.make false
let set_check_mode on = Atomic.set mode on
let check_mode () = Atomic.get mode

let g_checks = Atomic.make 0
let g_violations = Atomic.make 0
let message_cap = 32
let g_messages : string list ref = ref []
let g_mutex = Mutex.create ()

type report = { checks : int; violations : int; messages : string list }

let global_report () =
  Mutex.lock g_mutex;
  let messages = List.rev !g_messages in
  Mutex.unlock g_mutex;
  {
    checks = Atomic.get g_checks;
    violations = Atomic.get g_violations;
    messages;
  }

let reset_global () =
  Atomic.set g_checks 0;
  Atomic.set g_violations 0;
  Mutex.lock g_mutex;
  g_messages := [];
  Mutex.unlock g_mutex

(* ---- per-engine instance ---- *)

type t = {
  name : string;
  engine : Engine.t;
  sched : Sched.t option;
  proc_table : Proc_table.t option;
  sample_every : int;
  mutable last_time : Sim_time.t;
  mutable events_seen : int;
  mutable checks : int;
  mutable violations : int;
}

let default_sample_every = 512

let checks t = t.checks
let violations t = t.violations

let record t found =
  t.checks <- t.checks + 1;
  Atomic.incr g_checks;
  Obs.incr "sanitizer.checks";
  match found with
  | [] -> ()
  | found ->
      let n = List.length found in
      t.violations <- t.violations + n;
      ignore (Atomic.fetch_and_add g_violations n);
      Obs.incr "sanitizer.violations" ~by:n;
      Mutex.lock g_mutex;
      List.iter
        (fun v ->
          if List.length !g_messages < message_cap then
            g_messages := Printf.sprintf "[%s] %s" t.name v :: !g_messages)
        found;
      Mutex.unlock g_mutex

let structural_violations t =
  Engine.invariant_violations t.engine
  @ (match t.sched with
    | Some s -> List.map (fun v -> "sched: " ^ v) (Sched.invariant_violations s)
    | None -> [])
  @
  match t.proc_table with
  | Some p ->
      List.map (fun v -> "proc_table: " ^ v) (Proc_table.invariant_violations p)
  | None -> []

let check_now t =
  let clock = Engine.now t.engine in
  let found =
    if clock < t.last_time then
      [
        Printf.sprintf "clock rewound: %s observed after %s"
          (Sim_time.to_string clock)
          (Sim_time.to_string t.last_time);
      ]
    else []
  in
  if clock > t.last_time then t.last_time <- clock;
  let found = found @ structural_violations t in
  record t found;
  found

let attach ?(sample_every = default_sample_every) ?(name = "sanitizer") ?sched
    ?proc_table engine =
  if sample_every < 1 then
    invalid_arg "Sanitizer.attach: sample_every must be >= 1";
  let t =
    {
      name;
      engine;
      sched;
      proc_table;
      sample_every;
      last_time = Engine.now engine;
      events_seen = 0;
      checks = 0;
      violations = 0;
    }
  in
  (* Chain behind any previously installed observer (e.g. Obs.attach_engine)
     instead of replacing it — the engine has a single observer slot. *)
  let previous = Engine.observer engine in
  Engine.set_observer engine
    (Some
       (fun ~time ~pending ->
         (match previous with
         | Some f -> f ~time ~pending
         | None -> ());
         (* Monotonicity is one comparison, so it runs on every event; the
            structural sweeps are O(state) and run on the sampled cadence. *)
         if time < t.last_time then
           record t
             [
               Printf.sprintf "clock rewound: event at %s after %s"
                 (Sim_time.to_string time)
                 (Sim_time.to_string t.last_time);
             ]
         else t.last_time <- time;
         t.events_seen <- t.events_seen + 1;
         if t.events_seen mod t.sample_every = 0 then
           record t (structural_violations t)));
  t
