(** Deterministic fault plans.

    A plan names one family of perturbations the {!Injector} applies to a
    scenario: every stochastic choice inside a plan flows from the
    injector's derived PRNG, so a faulted campaign is exactly as
    reproducible — and as parallelizable under the runner — as a clean one.

    The families map onto the hazards a real SATIN deployment faces:

    - {e timer faults} ([Drop_timer_irqs], [Delay_timer_irqs]): the secure
      timer's compare write is swallowed or its deadline slips — a flaky
      interrupt path degrades the self-activation module (§V-C);
    - {e switch spikes} ([Spike_world_switch]): [Ts_switch] episodes far
      above the calibrated triple (cold caches, SMC contention) stretch the
      race window of §IV-C;
    - {e memory corruption} ([Flip_kernel_bits]): bits flip inside enrolled
      kernel areas; the checker/Merkle alarm path must catch them when the
      scan front passes;
    - {e scheduling pressure} ([Starve_rt_probers], [Cfs_storm]): SCHED_FIFO
      hogs at prober priority and CFS task storms stress the normal-world
      substrate the attacks (and any normal-world agent) depend on —
      secure-world rounds must ride through unaffected. *)

type t =
  | Control  (** no perturbation — the campaign baseline *)
  | Drop_timer_irqs of { prob : float }
      (** each secure-timer arm is swallowed with probability [prob]; a
          dropped arm means that core's next wake-up never comes *)
  | Delay_timer_irqs of { prob : float; max_delay : Satin_engine.Sim_time.t }
      (** each secure-timer arm slips by a uniform extra in
          [\[0, max_delay)] with probability [prob] *)
  | Spike_world_switch of { prob : float; factor : float }
      (** each sampled world-switch cost is multiplied by [factor] with
          probability [prob] *)
  | Flip_kernel_bits of { period : Satin_engine.Sim_time.t; flips : int }
      (** every [period], flip [flips] random bit(s) at random offsets of
          random enrolled areas *)
  | Starve_rt_probers of {
      priority : int;
      burst : Satin_engine.Sim_time.t;
      duty : float;
    }
      (** one SCHED_FIFO hog per core at [priority], running [burst] then
          sleeping to hold the given duty cycle *)
  | Cfs_storm of {
      tasks_per_core : int;
      burst : Satin_engine.Sim_time.t;
      duty : float;
    }  (** [tasks_per_core] periodic CFS loads per core *)

val name : t -> string
(** Short stable identifier (["drop-timer"], ["cfs-storm"], ...) used in
    reports and JSON summaries. *)

val to_string : t -> string
(** Human-readable description including the severity parameters. *)

val pp : Format.formatter -> t -> unit

val validate : t -> unit
(** Raises [Invalid_argument] on out-of-range parameters (probabilities
    outside [0,1], non-positive periods/bursts, duty outside (0,1]...). *)

val catalogue : t list
(** The default campaign: [Control] plus one representative plan per fault
    family. *)
