module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Prng = Satin_engine.Prng
module Platform = Satin_hw.Platform
module Timer = Satin_hw.Timer
module Monitor = Satin_hw.Monitor
module Memory = Satin_hw.Memory
module World = Satin_hw.World
module Kernel = Satin_kernel.Kernel
module Task = Satin_kernel.Task
module Area = Satin_introspect.Area
module Obs = Satin_obs.Obs

type t = {
  plan : Fault_plan.t;
  platform : Platform.t;
  mutable switch_spikes : int;
  mutable flips : int;
  mutable flip_sites : (int * Sim_time.t) list; (* addr, instant; newest first *)
  mutable tasks : Task.t list;
}

let plan t = t.plan

let timer_drops t =
  Array.fold_left
    (fun acc timer -> acc + Timer.dropped_count timer)
    0 t.platform.Platform.secure_timers

let timer_delays t =
  Array.fold_left
    (fun acc timer -> acc + Timer.delayed_count timer)
    0 t.platform.Platform.secure_timers

let switch_spikes t = t.switch_spikes
let flips_injected t = t.flips
let flip_sites t = List.rev t.flip_sites
let storm_tasks t = t.tasks

let fault_events t =
  timer_drops t + timer_delays t + t.switch_spikes + t.flips

(* Duty-cycle hog: [burst] of CPU, then sleep long enough that
   burst / (burst + sleep) = duty. *)
let hog_body ~burst ~duty =
  let sleep = Sim_time.scale burst ((1.0 -. duty) /. duty) in
  fun _task -> { Task.cpu = burst; after = (fun () -> Task.Sleep sleep) }

let install ~plan ~seed ~platform ~kernel ~areas =
  Fault_plan.validate plan;
  let prng = Prng.create seed in
  let engine = platform.Platform.engine in
  let t =
    { plan; platform; switch_spikes = 0; flips = 0; flip_sites = []; tasks = [] }
  in
  (match plan with
  | Fault_plan.Control -> ()
  | Fault_plan.Drop_timer_irqs { prob } ->
      Array.iter
        (fun timer ->
          Timer.set_fault_hook timer
            (Some
               (fun ~deadline:_ ->
                 if Prng.bernoulli prng prob then begin
                   Obs.incr "inject.timer_drops";
                   Timer.Drop
                 end
                 else Timer.Deliver)))
        platform.Platform.secure_timers
  | Fault_plan.Delay_timer_irqs { prob; max_delay } ->
      Array.iter
        (fun timer ->
          Timer.set_fault_hook timer
            (Some
               (fun ~deadline:_ ->
                 if Prng.bernoulli prng prob then begin
                   Obs.incr "inject.timer_delays";
                   Timer.Delay
                     (Sim_time.of_sec_f
                        (Prng.uniform prng 0.0 (Sim_time.to_sec_f max_delay)))
                 end
                 else Timer.Deliver)))
        platform.Platform.secure_timers
  | Fault_plan.Spike_world_switch { prob; factor } ->
      Monitor.set_switch_fault platform.Platform.monitor
        (Some
           (fun cost ->
             if Prng.bernoulli prng prob then begin
               t.switch_spikes <- t.switch_spikes + 1;
               Obs.incr "inject.switch_spikes";
               Sim_time.scale cost factor
             end
             else cost))
  | Fault_plan.Flip_kernel_bits { period; flips } ->
      let areas = Array.of_list areas in
      if Array.length areas = 0 then
        invalid_arg "Injector.install: Flip_kernel_bits needs areas";
      let memory = platform.Platform.memory in
      ignore
        (Engine.every engine ~period (fun () ->
             for _ = 1 to flips do
               let area = Prng.pick prng areas in
               let addr = area.Area.base + Prng.int prng area.Area.size in
               let bit = Prng.int prng 8 in
               let old = Memory.read_byte memory ~world:World.Normal ~addr in
               Memory.write_byte memory ~world:World.Normal ~addr
                 (old lxor (1 lsl bit));
               t.flips <- t.flips + 1;
               t.flip_sites <- (addr, Engine.now engine) :: t.flip_sites;
               Obs.incr "inject.bit_flips"
             done))
  | Fault_plan.Starve_rt_probers { priority; burst; duty } ->
      t.tasks <-
        List.init (Platform.ncores platform) (fun core ->
            let task =
              Task.create
                ~name:(Printf.sprintf "rt-hog-%d" core)
                ~policy:(Task.Rt_fifo priority) ~affinity:core
                ~body:(hog_body ~burst ~duty) ()
            in
            Kernel.spawn kernel task;
            task)
  | Fault_plan.Cfs_storm { tasks_per_core; burst; duty } ->
      t.tasks <-
        List.concat_map
          (fun core ->
            List.init tasks_per_core (fun i ->
                Kernel.spawn_load kernel
                  ~name:(Printf.sprintf "storm-%d-%d" core i)
                  ~affinity:core ~burst ~duty ()))
          (List.init (Platform.ncores platform) Fun.id));
  t
