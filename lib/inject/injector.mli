(** Applies a {!Fault_plan} to a built scenario.

    [install] perturbs the platform and kernel through the dedicated fault
    hooks — {!Satin_hw.Timer.set_fault_hook},
    {!Satin_hw.Monitor.set_switch_fault}, a periodic bit-flip event, or
    spawned hog tasks — and returns a handle whose counters the experiments
    read back. All randomness comes from a PRNG created from [seed], so an
    injected campaign stays deterministic and parallelizable.

    Install the injector {e before} starting the defense so the very first
    secure-timer arms already pass through the fault hook; bit flips only
    begin one period in, safely after trusted-boot enrollment at t = 0. *)

type t

val install :
  plan:Fault_plan.t ->
  seed:int ->
  platform:Satin_hw.Platform.t ->
  kernel:Satin_kernel.Kernel.t ->
  areas:Satin_introspect.Area.t list ->
  t
(** Raises [Invalid_argument] on an invalid plan (see
    {!Fault_plan.validate}) or an empty [areas] list with
    [Flip_kernel_bits]. *)

val plan : t -> Fault_plan.t

val timer_drops : t -> int
(** Secure-timer arms swallowed so far (summed over all cores). *)

val timer_delays : t -> int
(** Secure-timer arms postponed so far. *)

val switch_spikes : t -> int
(** World-switch cost samples that were spiked. *)

val flips_injected : t -> int

val flip_sites : t -> (int * Satin_engine.Sim_time.t) list
(** [(address, instant)] of every injected bit flip, oldest first. *)

val storm_tasks : t -> Satin_kernel.Task.t list
(** The hog/storm tasks spawned by scheduling-pressure plans. *)

val fault_events : t -> int
(** Total perturbations applied: drops + delays + spikes + flips. *)
