module Sim_time = Satin_engine.Sim_time

type t =
  | Control
  | Drop_timer_irqs of { prob : float }
  | Delay_timer_irqs of { prob : float; max_delay : Sim_time.t }
  | Spike_world_switch of { prob : float; factor : float }
  | Flip_kernel_bits of { period : Sim_time.t; flips : int }
  | Starve_rt_probers of { priority : int; burst : Sim_time.t; duty : float }
  | Cfs_storm of { tasks_per_core : int; burst : Sim_time.t; duty : float }

let name = function
  | Control -> "control"
  | Drop_timer_irqs _ -> "drop-timer"
  | Delay_timer_irqs _ -> "delay-timer"
  | Spike_world_switch _ -> "spike-switch"
  | Flip_kernel_bits _ -> "flip-bits"
  | Starve_rt_probers _ -> "starve-rt"
  | Cfs_storm _ -> "cfs-storm"

let to_string = function
  | Control -> "control (no fault)"
  | Drop_timer_irqs { prob } ->
      Printf.sprintf "drop-timer (p=%.2f per arm)" prob
  | Delay_timer_irqs { prob; max_delay } ->
      Printf.sprintf "delay-timer (p=%.2f, up to %s)" prob
        (Sim_time.to_string max_delay)
  | Spike_world_switch { prob; factor } ->
      Printf.sprintf "spike-switch (p=%.2f, x%.0f)" prob factor
  | Flip_kernel_bits { period; flips } ->
      Printf.sprintf "flip-bits (%d bit(s) every %s)" flips
        (Sim_time.to_string period)
  | Starve_rt_probers { priority; burst; duty } ->
      Printf.sprintf "starve-rt (prio %d, burst %s, duty %.2f)" priority
        (Sim_time.to_string burst) duty
  | Cfs_storm { tasks_per_core; burst; duty } ->
      Printf.sprintf "cfs-storm (%d/core, burst %s, duty %.2f)" tasks_per_core
        (Sim_time.to_string burst) duty

let pp fmt t = Format.pp_print_string fmt (to_string t)

let validate = function
  | Control -> ()
  | Drop_timer_irqs { prob } | Delay_timer_irqs { prob; _ }
  | Spike_world_switch { prob; _ } ->
      if not (prob >= 0.0 && prob <= 1.0) then
        invalid_arg "Fault_plan: probability out of [0,1]"
  | Flip_kernel_bits { period; flips } ->
      if period <= Sim_time.zero then
        invalid_arg "Fault_plan.Flip_kernel_bits: period must be positive";
      if flips <= 0 then
        invalid_arg "Fault_plan.Flip_kernel_bits: flips must be positive"
  | Starve_rt_probers { priority; burst; duty } ->
      if priority < 1 || priority > Satin_kernel.Task.rt_priority_max then
        invalid_arg "Fault_plan.Starve_rt_probers: priority out of 1..99";
      if burst <= Sim_time.zero then
        invalid_arg "Fault_plan.Starve_rt_probers: burst must be positive";
      if not (duty > 0.0 && duty < 1.0) then
        invalid_arg "Fault_plan.Starve_rt_probers: duty out of (0,1)"
  | Cfs_storm { tasks_per_core; burst; duty } ->
      if tasks_per_core <= 0 then
        invalid_arg "Fault_plan.Cfs_storm: tasks_per_core must be positive";
      if burst <= Sim_time.zero then
        invalid_arg "Fault_plan.Cfs_storm: burst must be positive";
      if not (duty > 0.0 && duty <= 1.0) then
        invalid_arg "Fault_plan.Cfs_storm: duty out of (0,1]"

(* The catalogue the detection-rate campaign sweeps: one plan per fault
   family, each at a severity chosen to visibly perturb a 30-second
   tp = 1 s campaign without flooring it. *)
let catalogue =
  [
    Control;
    Drop_timer_irqs { prob = 0.25 };
    Delay_timer_irqs { prob = 0.5; max_delay = Sim_time.ms 1_500 };
    Spike_world_switch { prob = 0.5; factor = 25.0 };
    Flip_kernel_bits { period = Sim_time.s 5; flips = 1 };
    Starve_rt_probers
      {
        priority = Satin_kernel.Task.rt_priority_max;
        burst = Sim_time.ms 10;
        duty = 0.5;
      };
    Cfs_storm { tasks_per_core = 4; burst = Sim_time.ms 5; duty = 0.8 };
  ]
