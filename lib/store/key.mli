(** Content-addressed keys for trial results.

    A key digests everything a trial's result can depend on:

    - the {e experiment id} (["e1"], ["table2"], ...);
    - the {e canonical config encoding} — the runtime parameters of the
      trial body (runs, rounds, probing period, fault plan, ...) as a
      field/value list, sorted by field name so the digest is independent
      of construction order;
    - the experiment {e seed} and {e trial index} (the derivation inputs of
      the trial's PRNG);
    - the {e code fingerprint} ({!Fingerprint.hex}), so records never
      survive a rebuild;
    - the {e ambient context} — process-wide execution modes that are not
      per-experiment parameters but still shape results or their meaning.
      The CLI sets [("check", "1")] under [--check]: a sanitized run served
      entirely from a clean run's cache would silently skip the sanitizer,
      so check-mode trials must never collide with clean ones. Fault plans
      take the other route and live in the per-trial config (see
      {!Satin.Experiment.run_inject}), which equally keeps a faulted trial
      from colliding with the clean trial of the same seed. *)

type config = (string * string) list
(** Field/value pairs. Field names must be unique; both components may
    contain any bytes (the canonical encoding escapes them). *)

val f : float -> string
(** Canonical float rendering (round-trip exact), for config values. *)

val canonical : config -> string
(** The canonical encoding: fields sorted by name, each rendered as an
    escaped [name=value] line. Two configs listing the same fields in any
    order encode identically. Raises [Invalid_argument] on a duplicate
    field name. *)

val set_ambient : config -> unit
(** Replace the ambient context mixed into every subsequent key. *)

val ambient : unit -> config

val make :
  experiment:string -> seed:int -> trial_index:int -> ?config:config ->
  unit -> string
(** The 32-char lowercase hex key of one trial. *)
