let magic = "satin-store/v1"

type error =
  | Bad_magic
  | Bad_version of string
  | Truncated
  | Bad_checksum
  | Garbled

let error_to_string = function
  | Bad_magic -> "not a satin-store record"
  | Bad_version v -> Printf.sprintf "unsupported record version %S" v
  | Truncated -> "truncated record"
  | Bad_checksum -> "payload checksum mismatch"
  | Garbled -> "checksum passed but payload failed to deserialize"

let escape_line s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* The checksum covers the (escaped) experiment line as well as the
   payload: a corrupted experiment name must read as a damaged record, not
   as a clean record filed under a different experiment. *)
let checksum ~experiment_line payload =
  Digest.to_hex (Digest.string (experiment_line ^ "\n" ^ payload))

let encode_raw ~experiment payload =
  let experiment_line = escape_line experiment in
  String.concat ""
    [
      magic; "\n";
      experiment_line; "\n";
      checksum ~experiment_line payload; "\n";
      string_of_int (String.length payload); "\n";
      payload;
    ]

let encode ~experiment v = encode_raw ~experiment (Marshal.to_string v [])

(* [line s pos] is the substring up to the next '\n' and the position just
   past it, or None when no newline remains. *)
let line s pos =
  match String.index_from_opt s pos '\n' with
  | None -> None
  | Some nl -> Some (String.sub s pos (nl - pos), nl + 1)

let header s =
  match line s 0 with
  | None -> Error Bad_magic
  | Some (l0, p1) ->
      if not (String.equal l0 magic) then
        if String.length l0 >= 12 && String.equal (String.sub l0 0 12) "satin-store/"
        then Error (Bad_version l0)
        else Error Bad_magic
      else begin
        match line s p1 with
        | None -> Error Truncated
        | Some (exp, p2) -> (
            match line s p2 with
            | None -> Error Truncated
            | Some (sum, p3) -> (
                match line s p3 with
                | None -> Error Truncated
                | Some (len_s, p4) -> (
                    match int_of_string_opt len_s with
                    | None -> Error Truncated
                    | Some len -> Ok (exp, sum, len, p4))))
      end

let experiment s = Result.map (fun (exp, _, _, _) -> exp) (header s)

let decode_raw s =
  match header s with
  | Error e -> Error e
  | Ok (exp, sum, len, pos) ->
      if len < 0 || String.length s - pos <> len then Error Truncated
      else
        let payload = String.sub s pos len in
        if not (String.equal (checksum ~experiment_line:exp payload) sum) then
          Error Bad_checksum
        else Ok (exp, payload)

let decode s =
  match decode_raw s with
  | Error e -> Error e
  | Ok (_, payload) -> (
      try Ok (Marshal.from_string payload 0) with _ -> Error Garbled)
