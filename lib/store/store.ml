module Obs = Satin_obs.Obs

let src = Logs.Src.create "satin.store" ~doc:"trial result store"

module Log = (val Logs.src_log src : Logs.LOG)

type counters = {
  hits : int;
  misses : int;
  writes : int;
  evictions : int;
  corrupt : int;
  capsule_hits : int;
  capsule_misses : int;
  capsule_writes : int;
  claims : int;
  claim_steals : int;
}

(* A live record carries the journal sequence number of the [+] line that
   made it live. The FIFO order queue stores (key, seq) pairs: an entry is
   valid only while the key is live *under that same seq*, so an evicted-
   then-re-added key can never be evicted through its stale first entry,
   and stale entries can never make the GC under- or over-evict. *)
type entry = { size : int; seq : int }

type t = {
  dir : string;
  max_bytes : int;
  mutex : Mutex.t;
  live : (string, entry) Hashtbl.t;
  order : (string * int) Queue.t; (* insertion order; stale entries skipped *)
  mutable next_seq : int;
  mutable total_bytes : int;
  mutable index_fd : Unix.file_descr; (* O_APPEND journal writer *)
  mutable lock_fd : Unix.file_descr; (* fcntl-lock anchor (.lock) *)
  mutable read_pos : int; (* journal bytes already applied in-memory *)
  mutable closed : bool;
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
  mutable evictions : int;
  mutable corrupt : int;
  mutable capsule_hits : int;
  mutable capsule_misses : int;
  mutable capsule_writes : int;
  mutable claims : int;
  mutable claim_steals : int;
}

let dir t = t.dir

let is_hex_key k =
  String.length k = 32
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) k

let object_path t key =
  Filename.concat t.dir
    (Filename.concat "objects"
       (Filename.concat (String.sub key 0 2)
          (Filename.concat (String.sub key 2 2) (key ^ ".rec"))))

let quarantine_path t key =
  Filename.concat t.dir (Filename.concat "quarantine" (key ^ ".rec"))

let capsule_path t key =
  Filename.concat t.dir
    (Filename.concat "capsules"
       (Filename.concat (String.sub key 0 2)
          (Filename.concat (String.sub key 2 2) (key ^ ".cap"))))

let capsule_quarantine_path t key =
  Filename.concat t.dir (Filename.concat "quarantine" (key ^ ".cap"))

let index_path dir = Filename.concat dir "index.log"
let lock_path dir = Filename.concat dir ".lock"
let claims_dir dir = Filename.concat dir "claims"
let claim_path t key = Filename.concat (claims_dir t.dir) (key ^ ".lease")

(* Create-first: one syscall in the common case, and EEXIST — the only
   outcome of several workers racing to create the same fan-out dir — is
   success at every level. ENOENT walks up one parent at a time; a
   dirname fixpoint that still cannot be created (e.g. a relative path
   whose every prefix is missing from a vanished cwd) propagates instead
   of recursing forever. *)
let rec mkdir_p path =
  try Unix.mkdir path 0o755 with
  | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  | Unix.Unix_error ((Unix.ENOENT | Unix.ENOTDIR), _, _) as e ->
      let parent = Filename.dirname path in
      if parent = path then raise e
      else begin
        mkdir_p parent;
        try Unix.mkdir path 0o755
        with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
      end

(* One journal line per event:
     + <key> <size> <experiment>      record added
     - <key>                          record evicted
     ! <key>                          record quarantined
   The experiment id is informational (diagnostics, future GC policies);
   it is the last field so embedded spaces need no escaping. *)
let index_line_add key size experiment =
  Printf.sprintf "+ %s %d %s\n" key size
    (String.map (fun c -> if c = '\n' then ' ' else c) experiment)

(* Append one complete line in a single write(2). The journal fd is
   O_APPEND, so concurrent writers' lines land whole and in some total
   order — never interleaved mid-line. (A short write on a local regular
   file does not happen for lines this small; the loop is belt and
   braces for exotic filesystems.) *)
let append_index t line =
  let b = Bytes.unsafe_of_string line in
  let len = Bytes.length b in
  let rec go pos =
    if pos < len then go (pos + Unix.write t.index_fd b pos (len - pos))
  in
  go 0

(* Cross-process critical section: an fcntl record lock on [.lock].
   Serializes journal bookkeeping, GC, and claim handoffs between
   processes; within a process the handle mutex already serializes, and
   the kernel grants a process's re-request on a region it holds, so two
   handles in one process cannot deadlock each other. fcntl locks die
   with their process, so a crashed worker never wedges the store. *)
let with_file_lock t f =
  Unix.lockf t.lock_fd Unix.F_LOCK 0;
  Fun.protect
    ~finally:(fun () ->
      try Unix.lockf t.lock_fd Unix.F_ULOCK 0 with Unix.Unix_error _ -> ())
    f

let apply_line t l =
  match String.split_on_char ' ' l with
  | "+" :: key :: size :: _ when is_hex_key key -> (
      match int_of_string_opt size with
      | Some size
        when (not (Hashtbl.mem t.live key))
             && Sys.file_exists (object_path t key) ->
          let seq = t.next_seq in
          t.next_seq <- seq + 1;
          Hashtbl.replace t.live key { size; seq };
          Queue.push (key, seq) t.order;
          t.total_bytes <- t.total_bytes + size
      | _ -> ())
  | ("-" | "!") :: key :: _ -> (
      match Hashtbl.find_opt t.live key with
      | Some e ->
          Hashtbl.remove t.live key;
          t.total_bytes <- t.total_bytes - e.size
      | None -> ())
  | _ -> () (* tolerate foreign or damaged lines *)

(* Adopt journal lines appended since the last refresh — our own (already
   applied in-memory, so idempotent via the live check) and, the point,
   those of concurrent writer processes. Only complete lines are applied:
   a line becomes visible atomically with its writer's single O_APPEND
   write, and a torn tail (which only a non-compliant filesystem could
   show) is left for the next refresh. Caller holds the mutex. *)
let refresh_locked t =
  match open_in_bin (index_path t.dir) with
  | exception Sys_error _ -> ()
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          if len > t.read_pos then begin
            seek_in ic t.read_pos;
            let chunk = really_input_string ic (len - t.read_pos) in
            match String.rindex_opt chunk '\n' with
            | None -> ()
            | Some last ->
                String.sub chunk 0 last |> String.split_on_char '\n'
                |> List.iter (fun l -> if l <> "" then apply_line t l);
                t.read_pos <- t.read_pos + last + 1
          end)

(* Drop stale (evicted/quarantined/superseded) entries so a long-lived
   journal cannot grow the queue without bound. Caller holds the mutex. *)
let compact_order t =
  let q = Queue.create () in
  Queue.iter
    (fun (key, seq) ->
      match Hashtbl.find_opt t.live key with
      | Some e when e.seq = seq -> Queue.push (key, seq) q
      | _ -> ())
    t.order;
  Queue.clear t.order;
  Queue.transfer q t.order

let open_ ?(max_bytes = 512 * 1024 * 1024) dir =
  if max_bytes <= 0 then invalid_arg "Store.open_: max_bytes must be positive";
  mkdir_p (Filename.concat dir "objects");
  mkdir_p (Filename.concat dir "capsules");
  mkdir_p (Filename.concat dir "quarantine");
  mkdir_p (claims_dir dir);
  let index_fd =
    Unix.openfile (index_path dir)
      [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
      0o644
  in
  let lock_fd =
    Unix.openfile (lock_path dir) [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644
  in
  let t =
    {
      dir;
      max_bytes;
      mutex = Mutex.create ();
      live = Hashtbl.create 256;
      order = Queue.create ();
      next_seq = 0;
      total_bytes = 0;
      index_fd;
      lock_fd;
      read_pos = 0;
      closed = false;
      hits = 0;
      misses = 0;
      writes = 0;
      evictions = 0;
      corrupt = 0;
      capsule_hits = 0;
      capsule_misses = 0;
      capsule_writes = 0;
      claims = 0;
      claim_steals = 0;
    }
  in
  Mutex.protect t.mutex (fun () ->
      refresh_locked t;
      compact_order t);
  t

let close t =
  Mutex.protect t.mutex (fun () ->
      if not t.closed then begin
        t.closed <- true;
        (try Unix.fsync t.index_fd with Unix.Unix_error _ -> ());
        (try Unix.close t.index_fd with Unix.Unix_error _ -> ());
        try Unix.close t.lock_fd with Unix.Unix_error _ -> ()
      end)

let sync t = Mutex.protect t.mutex (fun () -> refresh_locked t)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Atomic publication: write next to the final path, rename over it. The
   temp name carries pid + key, so concurrent stores never collide and a
   crash leaves only a harmless .tmp the next GC ignores. *)
let write_file_atomic path content =
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content);
  Sys.rename tmp path

let drop_live t key =
  match Hashtbl.find_opt t.live key with
  | Some e ->
      Hashtbl.remove t.live key;
      t.total_bytes <- t.total_bytes - e.size
  | None -> ()

let quarantine t key err =
  let path = object_path t key in
  (try Sys.rename path (quarantine_path t key)
   with Sys_error _ -> (try Sys.remove path with Sys_error _ -> ()));
  drop_live t key;
  append_index t (Printf.sprintf "! %s\n" key);
  t.corrupt <- t.corrupt + 1;
  Obs.incr "store.corrupt";
  Log.warn (fun m ->
      m "quarantined record %s: %s" key (Codec.error_to_string err))

let find_locked t ~key =
  let miss () =
    t.misses <- t.misses + 1;
    Obs.incr "store.misses";
    None
  in
  (* A live-table miss may just mean another process added the record
     since our last look at the journal: adopt its lines and re-check.
     This is what lets concurrent shards serve each other's trials
     without reopening the store. *)
  if not (Hashtbl.mem t.live key) then refresh_locked t;
  if not (Hashtbl.mem t.live key) then miss ()
  else
    match read_file (object_path t key) with
    | exception Sys_error _ ->
        (* Journal said live but the file is gone (external deletion or a
           concurrent GC); settle the books and recompute. *)
        drop_live t key;
        append_index t (Printf.sprintf "- %s\n" key);
        miss ()
    | raw -> (
        match Codec.decode raw with
        | Ok v ->
            t.hits <- t.hits + 1;
            Obs.incr "store.hits";
            Some v
        | Error err ->
            quarantine t key err;
            miss ())

let find t ~key = Mutex.protect t.mutex (fun () -> find_locked t ~key)

(* Whether [key] currently resolves, without touching the hit/miss
   counters — the polling primitive of the sharded waiting loop, which
   may probe a pending trial many times before its owner publishes. *)
let contains t ~key =
  Mutex.protect t.mutex (fun () ->
      if not (Hashtbl.mem t.live key) then refresh_locked t;
      Hashtbl.mem t.live key)

(* Caller holds the mutex (and, under multi-writer use, the file lock).
   Evict oldest-first until under the bound, skipping stale queue
   entries; the newest record always survives even when it alone exceeds
   the bound. *)
let enforce_bound t =
  while
    t.total_bytes > t.max_bytes
    && Hashtbl.length t.live > 1
    && not (Queue.is_empty t.order)
  do
    let key, seq = Queue.pop t.order in
    match Hashtbl.find_opt t.live key with
    | Some e when e.seq = seq ->
        drop_live t key;
        (try Sys.remove (object_path t key) with Sys_error _ -> ());
        (* The sidecar capsule rides on its record's lifetime: an evicted
           trial will be recomputed (and its capsule re-sealed) anyway. *)
        (try Sys.remove (capsule_path t key) with Sys_error _ -> ());
        append_index t (Printf.sprintf "- %s\n" key);
        t.evictions <- t.evictions + 1;
        Obs.incr "store.evictions"
    | _ -> () (* stale entry: already evicted/quarantined/superseded *)
  done

let add t ~key ~experiment v =
  if not (is_hex_key key) then invalid_arg "Store.add: malformed key";
  let record = Codec.encode ~experiment v in
  Mutex.protect t.mutex (fun () ->
      with_file_lock t (fun () ->
          (* Adopt concurrent writers' adds/evictions first, so the GC
             below reasons about the store's real size, not this handle's
             stale view of it. *)
          refresh_locked t;
          let path = object_path t key in
          mkdir_p (Filename.dirname path);
          write_file_atomic path record;
          if not (Hashtbl.mem t.live key) then begin
            let size = String.length record in
            let seq = t.next_seq in
            t.next_seq <- seq + 1;
            Hashtbl.replace t.live key { size; seq };
            Queue.push (key, seq) t.order;
            t.total_bytes <- t.total_bytes + size;
            append_index t (index_line_add key size experiment)
          end;
          t.writes <- t.writes + 1;
          Obs.incr "store.writes";
          enforce_bound t))

(* ---- claims ----

   A claim is a lease on one pending trial: `claims/<key>.lease` holding
   "pid host expiry" (expiry in Unix seconds). Workers claim a trial
   before computing it so peers can tell "someone is on this" from "the
   owner died"; a lease is stale once its expiry passes, or sooner when
   it names a provably-dead pid on this host. Claim handoffs run under
   the store-wide file lock, so two workers can never both win a steal.
   Claims are advisory: losing or duplicating one costs at most one
   redundant recomputation of a pure trial (the duplicate add rewrites
   identical bytes), never a wrong result. *)

type lease = { lease_pid : int; lease_host : string; lease_expiry : float }

let hostname = lazy (
  String.map (fun c -> if c = ' ' then '_' else c) (Unix.gethostname ()))

let read_lease_file path =
  match read_file path with
  | exception Sys_error _ -> None
  | raw -> (
      match String.split_on_char ' ' (String.trim raw) with
      | [ pid; host; expiry ] -> (
          match (int_of_string_opt pid, float_of_string_opt expiry) with
          | Some p, Some e ->
              Some { lease_pid = p; lease_host = host; lease_expiry = e }
          | _ -> None)
      | _ -> None)

let lease_live l =
  let now = Unix.gettimeofday () in
  l.lease_expiry > now
  && not
       (l.lease_host = Lazy.force hostname
       && l.lease_pid <> Unix.getpid ()
       &&
       match Unix.kill l.lease_pid 0 with
       | () -> false
       | exception Unix.Unix_error (Unix.ESRCH, _, _) -> true
       | exception Unix.Unix_error _ -> false)

let claim_lease t ~key =
  if not (is_hex_key key) then invalid_arg "Store.claim_lease: malformed key";
  Mutex.protect t.mutex (fun () -> read_lease_file (claim_path t key))

let try_claim t ~key ~ttl_s =
  if not (is_hex_key key) then invalid_arg "Store.try_claim: malformed key";
  if ttl_s <= 0.0 then invalid_arg "Store.try_claim: ttl_s must be positive";
  Mutex.protect t.mutex (fun () ->
      with_file_lock t (fun () ->
          let path = claim_path t key in
          let grant ~stolen =
            mkdir_p (claims_dir t.dir);
            write_file_atomic path
              (Printf.sprintf "%d %s %.3f\n" (Unix.getpid ())
                 (Lazy.force hostname)
                 (Unix.gettimeofday () +. ttl_s));
            t.claims <- t.claims + 1;
            Obs.incr "store.claims";
            if stolen then begin
              t.claim_steals <- t.claim_steals + 1;
              Obs.incr "store.claim_steals";
              Log.info (fun m -> m "stole stale lease on %s" key)
            end;
            true
          in
          match read_lease_file path with
          | None -> grant ~stolen:false
          | Some l
            when l.lease_pid = Unix.getpid ()
                 && l.lease_host = Lazy.force hostname ->
              grant ~stolen:false (* our own: refresh the expiry *)
          | Some l when not (lease_live l) -> grant ~stolen:true
          | Some _ -> false))

let release_claim t ~key =
  if not (is_hex_key key) then
    invalid_arg "Store.release_claim: malformed key";
  Mutex.protect t.mutex (fun () ->
      with_file_lock t (fun () ->
          try Sys.remove (claim_path t key) with Sys_error _ -> ()))

(* ---- capsules ----

   Capsules are a sidecar area keyed like records but framed around raw
   JSON payloads ([Codec.encode_raw]) so any build can read them back.
   They are not journaled and not counted against [max_bytes]: the journal
   and the bound govern trial results (the expensive thing to recompute);
   a capsule is small and always regenerable by re-running its trial. *)

let add_capsule t ~key ~experiment payload =
  if not (is_hex_key key) then invalid_arg "Store.add_capsule: malformed key";
  let record = Codec.encode_raw ~experiment payload in
  Mutex.protect t.mutex (fun () ->
      let path = capsule_path t key in
      mkdir_p (Filename.dirname path);
      write_file_atomic path record;
      t.capsule_writes <- t.capsule_writes + 1;
      Obs.incr "store.capsule_writes")

let quarantine_capsule t key err =
  let path = capsule_path t key in
  (try Sys.rename path (capsule_quarantine_path t key)
   with Sys_error _ -> (try Sys.remove path with Sys_error _ -> ()));
  t.corrupt <- t.corrupt + 1;
  Obs.incr "store.corrupt";
  Log.warn (fun m ->
      m "quarantined capsule %s: %s" key (Codec.error_to_string err))

let find_capsule t ~key =
  Mutex.protect t.mutex (fun () ->
      let miss () =
        t.capsule_misses <- t.capsule_misses + 1;
        Obs.incr "store.capsule_misses";
        None
      in
      match read_file (capsule_path t key) with
      | exception Sys_error _ -> miss ()
      | raw -> (
          match Codec.decode_raw raw with
          | Ok (_, payload) ->
              t.capsule_hits <- t.capsule_hits + 1;
              Obs.incr "store.capsule_hits";
              Some payload
          | Error err ->
              quarantine_capsule t key err;
              miss ()))

let fold_capsules t ~init ~f =
  Mutex.protect t.mutex (fun () ->
      let root = Filename.concat t.dir "capsules" in
      let subdirs dir =
        match Sys.readdir dir with
        | exception Sys_error _ -> []
        | entries ->
            let l = Array.to_list entries in
            List.sort String.compare l
      in
      (* Sorted at every level, so the fold order — and any report built
         from it — is deterministic regardless of filesystem order. *)
      List.fold_left
        (fun acc d1 ->
          let p1 = Filename.concat root d1 in
          if not (Sys.is_directory p1) then acc
          else
            List.fold_left
              (fun acc d2 ->
                let p2 = Filename.concat p1 d2 in
                if not (Sys.is_directory p2) then acc
                else
                  List.fold_left
                    (fun acc file ->
                      if not (Filename.check_suffix file ".cap") then acc
                      else
                        let key = Filename.chop_suffix file ".cap" in
                        if not (is_hex_key key) then acc
                        else
                          match read_file (Filename.concat p2 file) with
                          | exception Sys_error _ -> acc
                          | raw -> (
                              match Codec.decode_raw raw with
                              | Ok (experiment, payload) ->
                                  f acc ~key ~experiment payload
                              | Error err ->
                                  quarantine_capsule t key err;
                                  acc))
                    acc (subdirs p2))
              acc (subdirs p1))
        init (subdirs root))

let counters t =
  Mutex.protect t.mutex (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        writes = t.writes;
        evictions = t.evictions;
        corrupt = t.corrupt;
        capsule_hits = t.capsule_hits;
        capsule_misses = t.capsule_misses;
        capsule_writes = t.capsule_writes;
        claims = t.claims;
        claim_steals = t.claim_steals;
      })

let live_records t = Mutex.protect t.mutex (fun () -> Hashtbl.length t.live)
let live_bytes t = Mutex.protect t.mutex (fun () -> t.total_bytes)

let invariant_violations t =
  Mutex.protect t.mutex (fun () ->
      let v = ref [] in
      let note fmt = Printf.ksprintf (fun s -> v := s :: !v) fmt in
      let sum = Hashtbl.fold (fun _ e acc -> acc + e.size) t.live 0 in
      if sum <> t.total_bytes then
        note "total_bytes %d <> sum of live sizes %d" t.total_bytes sum;
      if t.total_bytes < 0 then note "total_bytes negative: %d" t.total_bytes;
      let seen = Hashtbl.create 16 in
      Queue.iter
        (fun (key, seq) ->
          if seq >= t.next_seq then
            note "order entry (%s, %d) beyond next_seq %d" key seq t.next_seq;
          match Hashtbl.find_opt t.live key with
          | Some e when e.seq = seq ->
              if Hashtbl.mem seen key then
                note "live key %s has duplicate valid order entries" key
              else Hashtbl.replace seen key ()
          | _ -> ())
        t.order;
      Hashtbl.iter
        (fun key _ ->
          if not (Hashtbl.mem seen key) then
            note "live key %s missing from the order queue" key)
        t.live;
      List.rev !v)

let summary_line t =
  let c = counters t in
  let claims =
    if c.claims = 0 then ""
    else Printf.sprintf "; claims: %d (%d stolen)" c.claims c.claim_steals
  in
  Printf.sprintf
    "store: %d hit(s), %d miss(es), %d write(s), %d evicted, %d corrupt; %d \
     record(s), %d bytes live (%s); capsules: %d hit(s), %d miss(es), %d \
     write(s)%s"
    c.hits c.misses c.writes c.evictions c.corrupt (live_records t)
    (live_bytes t) t.dir c.capsule_hits c.capsule_misses c.capsule_writes
    claims

let ambient = ref None
let install t = ambient := Some t
let uninstall () = ambient := None
let current () = !ambient
