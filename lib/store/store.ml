module Obs = Satin_obs.Obs

let src = Logs.Src.create "satin.store" ~doc:"trial result store"

module Log = (val Logs.src_log src : Logs.LOG)

type counters = {
  hits : int;
  misses : int;
  writes : int;
  evictions : int;
  corrupt : int;
  capsule_hits : int;
  capsule_misses : int;
  capsule_writes : int;
}

type t = {
  dir : string;
  max_bytes : int;
  mutex : Mutex.t;
  live : (string, int) Hashtbl.t; (* key -> record size, bytes *)
  order : string Queue.t; (* insertion order; may hold stale keys *)
  mutable total_bytes : int;
  mutable index : out_channel;
  mutable hits : int;
  mutable misses : int;
  mutable writes : int;
  mutable evictions : int;
  mutable corrupt : int;
  mutable capsule_hits : int;
  mutable capsule_misses : int;
  mutable capsule_writes : int;
}

let dir t = t.dir

let is_hex_key k =
  String.length k = 32
  && String.for_all (function '0' .. '9' | 'a' .. 'f' -> true | _ -> false) k

let object_path t key =
  Filename.concat t.dir
    (Filename.concat "objects"
       (Filename.concat (String.sub key 0 2)
          (Filename.concat (String.sub key 2 2) (key ^ ".rec"))))

let quarantine_path t key =
  Filename.concat t.dir (Filename.concat "quarantine" (key ^ ".rec"))

let capsule_path t key =
  Filename.concat t.dir
    (Filename.concat "capsules"
       (Filename.concat (String.sub key 0 2)
          (Filename.concat (String.sub key 2 2) (key ^ ".cap"))))

let capsule_quarantine_path t key =
  Filename.concat t.dir (Filename.concat "quarantine" (key ^ ".cap"))

let index_path dir = Filename.concat dir "index.log"

let rec mkdir_p path =
  if not (Sys.file_exists path) then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

(* One journal line per event:
     + <key> <size> <experiment>      record added
     - <key>                          record evicted
     ! <key>                          record quarantined
   The experiment id is informational (diagnostics, future GC policies);
   it is the last field so embedded spaces need no escaping. *)
let index_line_add key size experiment =
  Printf.sprintf "+ %s %d %s\n" key size
    (String.map (fun c -> if c = '\n' then ' ' else c) experiment)

let replay_index t =
  let path = index_path t.dir in
  if Sys.file_exists path then begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        try
          while true do
            let l = input_line ic in
            match String.split_on_char ' ' l with
            | "+" :: key :: size :: _ when is_hex_key key -> (
                match int_of_string_opt size with
                | Some size when Sys.file_exists (object_path t key) ->
                    if not (Hashtbl.mem t.live key) then begin
                      Hashtbl.replace t.live key size;
                      Queue.push key t.order;
                      t.total_bytes <- t.total_bytes + size
                    end
                | _ -> ())
            | ("-" | "!") :: key :: _ -> (
                match Hashtbl.find_opt t.live key with
                | Some size ->
                    Hashtbl.remove t.live key;
                    t.total_bytes <- t.total_bytes - size
                | None -> ())
            | _ -> () (* tolerate torn trailing writes *)
          done
        with End_of_file -> ())
  end

let open_ ?(max_bytes = 512 * 1024 * 1024) dir =
  if max_bytes <= 0 then invalid_arg "Store.open_: max_bytes must be positive";
  mkdir_p (Filename.concat dir "objects");
  mkdir_p (Filename.concat dir "capsules");
  mkdir_p (Filename.concat dir "quarantine");
  let t =
    {
      dir;
      max_bytes;
      mutex = Mutex.create ();
      live = Hashtbl.create 256;
      order = Queue.create ();
      total_bytes = 0;
      index = stdout (* replaced below *);
      hits = 0;
      misses = 0;
      writes = 0;
      evictions = 0;
      corrupt = 0;
      capsule_hits = 0;
      capsule_misses = 0;
      capsule_writes = 0;
    }
  in
  replay_index t;
  t.index <-
    open_out_gen [ Open_append; Open_creat ] 0o644 (index_path dir);
  t

let append_index t line =
  output_string t.index line;
  flush t.index

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Atomic publication: write next to the final path, rename over it. The
   temp name carries pid + key, so concurrent stores never collide and a
   crash leaves only a harmless .tmp the next GC ignores. *)
let write_file_atomic path content =
  let tmp = Printf.sprintf "%s.%d.tmp" path (Unix.getpid ()) in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc content);
  Sys.rename tmp path

let drop_live t key =
  match Hashtbl.find_opt t.live key with
  | Some size ->
      Hashtbl.remove t.live key;
      t.total_bytes <- t.total_bytes - size
  | None -> ()

let quarantine t key err =
  let path = object_path t key in
  (try Sys.rename path (quarantine_path t key)
   with Sys_error _ -> (try Sys.remove path with Sys_error _ -> ()));
  drop_live t key;
  append_index t (Printf.sprintf "! %s\n" key);
  t.corrupt <- t.corrupt + 1;
  Obs.incr "store.corrupt";
  Log.warn (fun m ->
      m "quarantined record %s: %s" key (Codec.error_to_string err))

let find t ~key =
  Mutex.protect t.mutex (fun () ->
      let miss () =
        t.misses <- t.misses + 1;
        Obs.incr "store.misses";
        None
      in
      if not (Hashtbl.mem t.live key) then miss ()
      else
        match read_file (object_path t key) with
        | exception Sys_error _ ->
            (* Journal said live but the file is gone (external deletion);
               settle the books and recompute. *)
            drop_live t key;
            append_index t (Printf.sprintf "- %s\n" key);
            miss ()
        | raw -> (
            match Codec.decode raw with
            | Ok v ->
                t.hits <- t.hits + 1;
                Obs.incr "store.hits";
                Some v
            | Error err ->
                quarantine t key err;
                miss ()))

(* Caller holds the mutex. Evict oldest-first until under the bound; the
   queue may hold keys already evicted or quarantined — skip those. The
   most recent record survives even when it alone exceeds the bound. *)
let enforce_bound t =
  while
    t.total_bytes > t.max_bytes
    && Queue.length t.order > 0
    && not (Queue.length t.order = 1 && Hashtbl.mem t.live (Queue.peek t.order))
  do
    let key = Queue.pop t.order in
    if Hashtbl.mem t.live key then begin
      drop_live t key;
      (try Sys.remove (object_path t key) with Sys_error _ -> ());
      (* The sidecar capsule rides on its record's lifetime: an evicted
         trial will be recomputed (and its capsule re-sealed) anyway. *)
      (try Sys.remove (capsule_path t key) with Sys_error _ -> ());
      append_index t (Printf.sprintf "- %s\n" key);
      t.evictions <- t.evictions + 1;
      Obs.incr "store.evictions"
    end
  done

let add t ~key ~experiment v =
  if not (is_hex_key key) then invalid_arg "Store.add: malformed key";
  let record = Codec.encode ~experiment v in
  Mutex.protect t.mutex (fun () ->
      let path = object_path t key in
      mkdir_p (Filename.dirname path);
      write_file_atomic path record;
      if not (Hashtbl.mem t.live key) then begin
        let size = String.length record in
        Hashtbl.replace t.live key size;
        Queue.push key t.order;
        t.total_bytes <- t.total_bytes + size;
        append_index t (index_line_add key size experiment)
      end;
      t.writes <- t.writes + 1;
      Obs.incr "store.writes";
      enforce_bound t)

(* ---- capsules ----

   Capsules are a sidecar area keyed like records but framed around raw
   JSON payloads ([Codec.encode_raw]) so any build can read them back.
   They are not journaled and not counted against [max_bytes]: the journal
   and the bound govern trial results (the expensive thing to recompute);
   a capsule is small and always regenerable by re-running its trial. *)

let add_capsule t ~key ~experiment payload =
  if not (is_hex_key key) then invalid_arg "Store.add_capsule: malformed key";
  let record = Codec.encode_raw ~experiment payload in
  Mutex.protect t.mutex (fun () ->
      let path = capsule_path t key in
      mkdir_p (Filename.dirname path);
      write_file_atomic path record;
      t.capsule_writes <- t.capsule_writes + 1;
      Obs.incr "store.capsule_writes")

let quarantine_capsule t key err =
  let path = capsule_path t key in
  (try Sys.rename path (capsule_quarantine_path t key)
   with Sys_error _ -> (try Sys.remove path with Sys_error _ -> ()));
  t.corrupt <- t.corrupt + 1;
  Obs.incr "store.corrupt";
  Log.warn (fun m ->
      m "quarantined capsule %s: %s" key (Codec.error_to_string err))

let find_capsule t ~key =
  Mutex.protect t.mutex (fun () ->
      let miss () =
        t.capsule_misses <- t.capsule_misses + 1;
        Obs.incr "store.capsule_misses";
        None
      in
      match read_file (capsule_path t key) with
      | exception Sys_error _ -> miss ()
      | raw -> (
          match Codec.decode_raw raw with
          | Ok (_, payload) ->
              t.capsule_hits <- t.capsule_hits + 1;
              Obs.incr "store.capsule_hits";
              Some payload
          | Error err ->
              quarantine_capsule t key err;
              miss ()))

let fold_capsules t ~init ~f =
  Mutex.protect t.mutex (fun () ->
      let root = Filename.concat t.dir "capsules" in
      let subdirs dir =
        match Sys.readdir dir with
        | exception Sys_error _ -> []
        | entries ->
            let l = Array.to_list entries in
            List.sort String.compare l
      in
      (* Sorted at every level, so the fold order — and any report built
         from it — is deterministic regardless of filesystem order. *)
      List.fold_left
        (fun acc d1 ->
          let p1 = Filename.concat root d1 in
          if not (Sys.is_directory p1) then acc
          else
            List.fold_left
              (fun acc d2 ->
                let p2 = Filename.concat p1 d2 in
                if not (Sys.is_directory p2) then acc
                else
                  List.fold_left
                    (fun acc file ->
                      if not (Filename.check_suffix file ".cap") then acc
                      else
                        let key = Filename.chop_suffix file ".cap" in
                        if not (is_hex_key key) then acc
                        else
                          match read_file (Filename.concat p2 file) with
                          | exception Sys_error _ -> acc
                          | raw -> (
                              match Codec.decode_raw raw with
                              | Ok (experiment, payload) ->
                                  f acc ~key ~experiment payload
                              | Error err ->
                                  quarantine_capsule t key err;
                                  acc))
                    acc (subdirs p2))
              acc (subdirs p1))
        init (subdirs root))

let counters t =
  Mutex.protect t.mutex (fun () ->
      {
        hits = t.hits;
        misses = t.misses;
        writes = t.writes;
        evictions = t.evictions;
        corrupt = t.corrupt;
        capsule_hits = t.capsule_hits;
        capsule_misses = t.capsule_misses;
        capsule_writes = t.capsule_writes;
      })

let live_records t = Mutex.protect t.mutex (fun () -> Hashtbl.length t.live)
let live_bytes t = Mutex.protect t.mutex (fun () -> t.total_bytes)

let summary_line t =
  let c = counters t in
  Printf.sprintf
    "store: %d hit(s), %d miss(es), %d write(s), %d evicted, %d corrupt; %d \
     record(s), %d bytes live (%s); capsules: %d hit(s), %d miss(es), %d \
     write(s)"
    c.hits c.misses c.writes c.evictions c.corrupt (live_records t)
    (live_bytes t) t.dir c.capsule_hits c.capsule_misses c.capsule_writes

let ambient = ref None
let install t = ambient := Some t
let uninstall () = ambient := None
let current () = !ambient
