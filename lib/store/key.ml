type config = (string * string) list

let f x = Printf.sprintf "%.17g" x

(* Escape so that field/value boundaries ('=', '\n') survive arbitrary
   bytes in either component. *)
let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '=' -> Buffer.add_string buf "\\e"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render buf prefix pairs =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) pairs in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg ("Store key: duplicate config field " ^ a);
        check rest
    | _ -> ()
  in
  check sorted;
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf prefix;
      Buffer.add_string buf (escape k);
      Buffer.add_char buf '=';
      Buffer.add_string buf (escape v);
      Buffer.add_char buf '\n')
    sorted

let canonical pairs =
  let buf = Buffer.create 128 in
  render buf "cfg:" pairs;
  Buffer.contents buf

let ambient_ctx = ref []
let set_ambient ctx = ambient_ctx := ctx
let ambient () = !ambient_ctx

let make ~experiment ~seed ~trial_index ?(config = []) () =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "satin-store/v1\n";
  Buffer.add_string buf ("fp=" ^ Fingerprint.hex () ^ "\n");
  Buffer.add_string buf ("exp=" ^ escape experiment ^ "\n");
  Buffer.add_string buf ("seed=" ^ string_of_int seed ^ "\n");
  Buffer.add_string buf ("trial=" ^ string_of_int trial_index ^ "\n");
  render buf "ctx:" !ambient_ctx;
  render buf "cfg:" config;
  Digest.to_hex (Digest.string (Buffer.contents buf))
