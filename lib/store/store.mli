(** Content-addressed, on-disk trial-result store.

    Layout under the store directory:

    {v
    objects/ab/cd/<32-hex-key>.rec   records, two-level fan-out
    capsules/ab/cd/<32-hex-key>.cap  metric capsules (sidecar, JSON payload)
    quarantine/<32-hex-key>.rec      records that failed verification
    quarantine/<32-hex-key>.cap      capsules that failed verification
    index.log                        append-only journal of adds/evictions
    v}

    Records are {!Codec} [satin-store/v1] bytes, written atomically
    (temp file + rename), one file per {!Key}. The index journal is the
    insertion-order ground truth: each add appends a [+] line, each
    eviction a [-] line, each quarantine a [!] line, so a store killed
    mid-campaign replays to exactly the records that finished — the basis
    of resume-after-interrupt. Entries whose files have vanished are
    dropped on replay.

    {!find} verifies every record before serving it; a record failing
    magic/version/length/checksum is moved to [quarantine/] (never served,
    never silently deleted) and the lookup reports a miss, so one flipped
    bit costs one recomputation. {!add} enforces the size bound by evicting
    the oldest records first (the newest record is always retained, so the
    bound is best-effort when a single record exceeds it).

    All operations are serialized on an internal mutex: worker domains may
    {!add} concurrently while the submitting domain looks up. Counters for
    hits/misses/writes/evictions/corruptions are kept locally (for
    {!summary_line}) and mirrored to {!Satin_obs.Obs} as [store.*] metrics
    when a sink is installed.

    One store can be made ambient with {!install} — the same pattern as the
    {!Satin_obs.Obs} sink: experiments are assembled deep inside runners,
    and "the store of the current run" is process-wide by nature. *)

type t

val open_ : ?max_bytes:int -> string -> t
(** Open (creating directories as needed) the store rooted at the given
    directory and replay its index. [max_bytes] bounds the total size of
    live records (default 512 MiB). Raises [Sys_error]/[Unix.Unix_error]
    if the directory cannot be created. *)

val dir : t -> string

val find : t -> key:string -> 'a option
(** Serve the record stored under [key], verifying it first. [None] on
    absence or on a quarantined record. The caller asserts the result type,
    which holds whenever [key] came from {!Key.make} (the fingerprint pins
    the binary). *)

val add : t -> key:string -> experiment:string -> 'a -> unit
(** Persist one trial result (atomic write + index append), then enforce
    the size bound. Overwrites any existing record under [key] (necessarily
    with identical content). Safe to call from worker domains. *)

(** {1 Metric capsules}

    Capsules are a sidecar area under [capsules/], keyed exactly like
    records but holding raw JSON payloads in the {!Codec.encode_raw}
    envelope — readable by any build, which is the point: telemetry
    aggregates capsules across campaign runs and binaries. A capsule rides
    on its record's lifetime (evicting a record deletes its capsule) but is
    neither journaled nor counted against [max_bytes]: capsules are small
    and always regenerable by re-running the trial. Corrupt capsules are
    quarantined to [quarantine/<key>.cap] and read as misses. *)

val add_capsule : t -> key:string -> experiment:string -> string -> unit
(** Persist one capsule payload (atomic write). Safe to call from worker
    domains. Raises [Invalid_argument] on a malformed key. *)

val find_capsule : t -> key:string -> string option
(** The verified capsule payload stored under [key], or [None] on absence
    or quarantine. *)

val fold_capsules :
  t -> init:'acc -> f:('acc -> key:string -> experiment:string -> string -> 'acc) -> 'acc
(** Fold over every verified capsule in the store, in sorted key order —
    deterministic regardless of filesystem enumeration order, so reports
    built from a walk are byte-stable. Corrupt capsules encountered on the
    way are quarantined and skipped. Holds the store mutex for the whole
    walk: do not call {!add}/{!find} from [f]. *)

type counters = {
  hits : int;
  misses : int;
  writes : int;
  evictions : int;
  corrupt : int;  (** corrupt records {e and} corrupt capsules *)
  capsule_hits : int;
  capsule_misses : int;
  capsule_writes : int;
}

val counters : t -> counters
(** Snapshot of this handle's lifetime counters. *)

val live_records : t -> int
val live_bytes : t -> int

val summary_line : t -> string
(** One-line human summary ([store: H hits, M misses, ... (DIR); capsules:
    ...]) printed by the CLI and bench to stderr — stderr so stdout reports
    stay byte-identical between warm and cold runs. Capsule counters are
    appended after the directory so existing [store:]-prefix parsers keep
    working. *)

(** {1 The ambient store} *)

val install : t -> unit
val uninstall : unit -> unit
val current : unit -> t option
