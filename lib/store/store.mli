(** Content-addressed, on-disk trial-result store.

    Layout under the store directory:

    {v
    objects/ab/cd/<32-hex-key>.rec   records, two-level fan-out
    capsules/ab/cd/<32-hex-key>.cap  metric capsules (sidecar, JSON payload)
    quarantine/<32-hex-key>.rec      records that failed verification
    quarantine/<32-hex-key>.cap      capsules that failed verification
    claims/<32-hex-key>.lease        trial claims ("pid host expiry")
    index.log                        append-only journal of adds/evictions
    .lock                            fcntl-lock anchor for cross-process CS
    v}

    Records are {!Codec} [satin-store/v1] bytes, written atomically
    (temp file + rename), one file per {!Key}. The index journal is the
    insertion-order ground truth: each add appends a [+] line, each
    eviction a [-] line, each quarantine a [!] line, so a store killed
    mid-campaign replays to exactly the records that finished — the basis
    of resume-after-interrupt. Entries whose files have vanished are
    dropped on replay.

    {!find} verifies every record before serving it; a record failing
    magic/version/length/checksum is moved to [quarantine/] (never served,
    never silently deleted) and the lookup reports a miss, so one flipped
    bit costs one recomputation. {!add} enforces the size bound by evicting
    the oldest records first (the newest record is always retained, so the
    bound is best-effort when a single record exceeds it).

    {2 Multi-writer guarantees}

    Any number of processes may hold handles on one store directory
    concurrently. The journal is written through an [O_APPEND] descriptor,
    one complete line per [write(2)], so concurrent appends interleave
    whole lines, never torn ones; mutating critical sections (add + GC,
    claim handoffs) additionally run under an fcntl record lock on
    [.lock], which the kernel releases if the holder dies. Each handle
    tracks how far into the journal it has read and adopts newly appended
    lines on {!add}, on {!sync}, and on any {!find}/{!contains} that
    misses its in-memory table — so a record published by one process is
    served as a hit by every other. All of this degrades to exactly the
    old single-process behaviour when only one handle exists.

    All operations are serialized on an internal mutex: worker domains may
    {!add} concurrently while the submitting domain looks up. Counters for
    hits/misses/writes/evictions/corruptions are kept locally (for
    {!summary_line}) and mirrored to {!Satin_obs.Obs} as [store.*] metrics
    when a sink is installed.

    One store can be made ambient with {!install} — the same pattern as the
    {!Satin_obs.Obs} sink: experiments are assembled deep inside runners,
    and "the store of the current run" is process-wide by nature. *)

type t

val open_ : ?max_bytes:int -> string -> t
(** Open (creating directories as needed) the store rooted at the given
    directory and replay its index. [max_bytes] bounds the total size of
    live records (default 512 MiB). Raises [Sys_error]/[Unix.Unix_error]
    if the directory cannot be created. *)

val close : t -> unit
(** Fsync the journal and release the handle's descriptors. Idempotent.
    Operations on a closed handle raise [Unix.Unix_error (EBADF, _, _)]. *)

val sync : t -> unit
(** Adopt journal lines appended by other processes since this handle last
    looked. {!find} and {!contains} do this automatically when a key is
    absent from the in-memory table; [sync] forces it (e.g. before
    {!live_records}). *)

val dir : t -> string

val find : t -> key:string -> 'a option
(** Serve the record stored under [key], verifying it first. [None] on
    absence or on a quarantined record. The caller asserts the result type,
    which holds whenever [key] came from {!Key.make} (the fingerprint pins
    the binary). *)

val contains : t -> key:string -> bool
(** Whether [key] currently resolves to a live record, refreshing from the
    journal if needed — without reading the record or touching the
    hit/miss counters. This is the polling primitive for waiting on a
    trial another process is computing. *)

val add : t -> key:string -> experiment:string -> 'a -> unit
(** Persist one trial result (atomic write + index append), then enforce
    the size bound. Overwrites any existing record under [key] (necessarily
    with identical content). Safe to call from worker domains. *)

(** {1 Trial claims}

    A claim is an advisory lease on one pending trial, backed by
    [claims/<key>.lease] holding ["pid host expiry"]. Sharded workers
    claim a trial before computing it so peers can distinguish "in
    progress" from "orphaned by a crash": a lease is stale once its expiry
    passes, or earlier when it names a provably-dead pid on the local
    host. Claim handoffs run under the store-wide file lock, so exactly
    one contender wins a steal. Claims are {e advisory}: a lost or
    duplicated claim costs at most one redundant recomputation of a pure
    trial (whose [add] rewrites identical bytes), never a wrong result. *)

type lease = { lease_pid : int; lease_host : string; lease_expiry : float }

val try_claim : t -> key:string -> ttl_s:float -> bool
(** Attempt to claim [key] for [ttl_s] seconds. [true] when this process
    now holds the lease: the key was unclaimed, the existing lease was
    stale (counted as a steal), or we already held it (the expiry is
    refreshed). [false] while another live process holds it. Raises
    [Invalid_argument] on a malformed key or non-positive TTL. *)

val release_claim : t -> key:string -> unit
(** Drop any lease on [key]. Callable by non-owners (used to clear a
    stale lease after its trial's result turned up in the store). *)

val claim_lease : t -> key:string -> lease option
(** The current lease on [key], if any — parsed but not liveness-checked;
    combine with {!lease_live}. *)

val lease_live : lease -> bool
(** Whether the lease still protects its trial: unexpired, and not
    provably dead (a same-host pid that no longer exists). *)

(** {1 Metric capsules}

    Capsules are a sidecar area under [capsules/], keyed exactly like
    records but holding raw JSON payloads in the {!Codec.encode_raw}
    envelope — readable by any build, which is the point: telemetry
    aggregates capsules across campaign runs and binaries. A capsule rides
    on its record's lifetime (evicting a record deletes its capsule) but is
    neither journaled nor counted against [max_bytes]: capsules are small
    and always regenerable by re-running the trial. Corrupt capsules are
    quarantined to [quarantine/<key>.cap] and read as misses. *)

val add_capsule : t -> key:string -> experiment:string -> string -> unit
(** Persist one capsule payload (atomic write). Safe to call from worker
    domains. Raises [Invalid_argument] on a malformed key. *)

val find_capsule : t -> key:string -> string option
(** The verified capsule payload stored under [key], or [None] on absence
    or quarantine. *)

val fold_capsules :
  t -> init:'acc -> f:('acc -> key:string -> experiment:string -> string -> 'acc) -> 'acc
(** Fold over every verified capsule in the store, in sorted key order —
    deterministic regardless of filesystem enumeration order, so reports
    built from a walk are byte-stable. Corrupt capsules encountered on the
    way are quarantined and skipped. Holds the store mutex for the whole
    walk: do not call {!add}/{!find} from [f]. *)

type counters = {
  hits : int;
  misses : int;
  writes : int;
  evictions : int;
  corrupt : int;  (** corrupt records {e and} corrupt capsules *)
  capsule_hits : int;
  capsule_misses : int;
  capsule_writes : int;
  claims : int;  (** leases granted to this process (incl. refreshes) *)
  claim_steals : int;  (** granted over a stale lease *)
}

val counters : t -> counters
(** Snapshot of this handle's lifetime counters. *)

val live_records : t -> int
val live_bytes : t -> int

val invariant_violations : t -> string list
(** Internal-consistency audit of this handle's in-memory view: total
    bytes must equal the sum of live record sizes, and every live key must
    have exactly one valid entry in the eviction order queue. Empty when
    healthy; used by tests and the sanitizer. *)

val summary_line : t -> string
(** One-line human summary ([store: H hits, M misses, ... (DIR); capsules:
    ...]) printed by the CLI and bench to stderr — stderr so stdout reports
    stay byte-identical between warm and cold runs. Capsule counters are
    appended after the directory so existing [store:]-prefix parsers keep
    working; claim counters, when nonzero, are appended after those. *)

val mkdir_p : string -> unit
(** [mkdir] with parents, create-first: [EEXIST] is success at every level
    (safe under concurrent workers racing to create the same fan-out
    dirs), missing parents are created bottom-up, and a [Filename.dirname]
    fixpoint that cannot be created raises instead of recursing forever.
    Exposed for tests. *)

(** {1 The ambient store} *)

val install : t -> unit
val uninstall : unit -> unit
val current : unit -> t option
