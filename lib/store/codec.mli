(** The versioned, self-checksummed on-disk record format ([satin-store/v1]).

    A record is a four-line text header followed by a binary payload:

    {v
    satin-store/v1\n
    <experiment id, escaped>\n
    <32-char hex MD5 of the payload>\n
    <payload length, decimal>\n
    <payload: Marshal of the trial result>
    v}

    The checksum and length make every record independently verifiable:
    {!decode} refuses truncated, bit-flipped, or foreign-version bytes
    with a typed error, and the {!Store} quarantines such files instead of
    serving them. The payload is [Marshal] output, which is only safe to
    read back in the binary that produced it — guaranteed upstream by the
    {!Fingerprint} component of every key, never by this module. *)

val magic : string
(** ["satin-store/v1"]. *)

type error =
  | Bad_magic  (** first line is not a satin-store header at all *)
  | Bad_version of string  (** a satin-store record of another version *)
  | Truncated  (** header incomplete, or payload shorter than declared *)
  | Bad_checksum  (** payload bytes do not match the recorded digest *)
  | Garbled  (** checksum passed but the payload failed to unmarshal *)

val error_to_string : error -> string

val encode : experiment:string -> 'a -> string
(** Serialize one trial result. The value must be pure data (no closures,
    no custom blocks that refuse marshalling). *)

val decode : string -> ('a, error) result
(** Verify and deserialize a record. Unsafe in exactly one way: the caller
    asserts the result type matches what {!encode} was given, which holds
    whenever the record was looked up by a {!Key} (same binary, same
    experiment, same config). *)

val encode_raw : experiment:string -> string -> string
(** Frame an arbitrary byte payload (no [Marshal]) in the same header +
    checksum envelope. This is the envelope for metric capsules, whose
    payloads are canonical JSON precisely so that — unlike {!encode}
    records — any build can read them back. *)

val decode_raw : string -> (string * string, error) result
(** Verify a record and return [(experiment, payload)] without
    interpreting the payload. Never returns {!Garbled} (payload semantics
    are the caller's). *)

val experiment : string -> (string, error) result
(** The experiment id recorded in the header, without touching the
    payload (used for index rebuilds and diagnostics). *)
