(** Cache-aware trial fan-out: {!Satin_runner.Runner.map_cached} wired to
    the ambient {!Store}.

    [map pool ~experiment ~seed ?config ?trial_config n f] is
    observationally [Runner.map pool n f] — same results, same submission
    order, same lowest-index failure — but when a store is installed
    ({!Store.install}), each trial [i] is first looked up under
    [Key.make ~experiment ~seed ~trial_index:i ~config:(config @
    trial_config i)]; only the misses are dispatched to the Domain pool,
    and each miss is persisted the moment its trial body returns (on
    whichever domain ran it), so an interrupted campaign resumes from the
    completed trials. Results are byte-identical at any pool width, warm
    or cold: hits deserialize to exactly the bytes the trial body produced
    (binary-pinned by the key's fingerprint), and misses run the unchanged
    body.

    When a tracing sink is installed, every lookup emits a span on the
    dedicated store track ([store.hit]/[store.miss], with the experiment,
    trial index, and key as args) — the cache's contribution to a trial
    is visible in the Perfetto export next to the simulation lanes. *)

module Runner = Satin_runner.Runner

val store_track : int
(** Trace track carrying the per-trial cache spans. *)

val map :
  Runner.t ->
  experiment:string ->
  seed:int ->
  ?config:Key.config ->
  ?trial_config:(int -> Key.config) ->
  int ->
  (int -> 'a) ->
  'a array
(** [config] holds parameters shared by the whole fan-out, [trial_config]
    the per-trial ones (probing period, fault plan, ...). With no ambient
    store this is exactly [Runner.map]. *)
