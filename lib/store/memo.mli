(** Cache-aware trial fan-out: {!Satin_runner.Runner.map_cached} wired to
    the ambient {!Store}.

    [map pool ~experiment ~seed ?config ?trial_config n f] is
    observationally [Runner.map pool n f] — same results, same submission
    order, same lowest-index failure — but when a store is installed
    ({!Store.install}), each trial [i] is first looked up under
    [Key.make ~experiment ~seed ~trial_index:i ~config:(config @
    trial_config i)]; only the misses are dispatched to the Domain pool,
    and each miss is persisted the moment its trial body returns (on
    whichever domain ran it), so an interrupted campaign resumes from the
    completed trials. Results are byte-identical at any pool width, warm
    or cold: hits deserialize to exactly the bytes the trial body produced
    (binary-pinned by the key's fingerprint), and misses run the unchanged
    body.

    When a tracing sink is installed, every lookup emits a span on the
    dedicated store track ([store.hit]/[store.miss], with the experiment,
    trial index, and key as args) — the cache's contribution to a trial
    is visible in the Perfetto export next to the simulation lanes.

    {2 Metric capsules}

    With a store installed, every computed trial body runs inside
    {!Satin_obs.Obs.with_capture}: its metrics registry is sealed into a
    {!Satin_obs.Capsule.t} (stamped with the experiment, seed, trial
    index, binary fingerprint, and the full config — ambient context under
    its ["ctx:"] namespace) and persisted beside the result via
    {!Store.add_capsule}, on whichever domain ran the trial. Warm hits
    replay the persisted capsule instead of recomputing anything. The
    [telemetry] subcommand aggregates these capsules; the live
    {!Satin_obs.Progress} reporter, when installed, is fed every sealed or
    replayed capsule (and captures even without a store, so heartbeats can
    quote p50s on store-less runs). *)

module Runner = Satin_runner.Runner

val store_track : int
(** Trace track carrying the per-trial cache spans. *)

val map :
  Runner.t ->
  experiment:string ->
  seed:int ->
  ?config:Key.config ->
  ?trial_config:(int -> Key.config) ->
  int ->
  (int -> 'a) ->
  'a array
(** [config] holds parameters shared by the whole fan-out, [trial_config]
    the per-trial ones (probing period, fault plan, ...). With no ambient
    store this is exactly [Runner.map]. *)

(** {2 Sharding}

    With {!set_shard} [(Some (i, n))] and an ambient store, [map]
    partitions each fan-out across [n] cooperating processes: trial [t]
    is {e owned} by shard [(t + Hashtbl.hash (experiment, seed)) mod n]
    (the hash rotation spreads single-trial fan-outs across the fleet).
    A shard claims and computes its owned misses through the pool, then
    waits for the remaining trials to be published by their owners —
    polling the store and stealing any trial whose lease ({!Store.try_claim})
    is stale, or that was never claimed within one lease TTL of the wait
    starting. Every shard therefore returns the {e full} result array,
    byte-identical to an unsharded run: trials are pure in their key, so
    even a duplicated computation (two workers racing a stale lease)
    rewrites identical bytes. *)

val set_shard : (int * int) option -> unit
(** [set_shard (Some (i, n))] makes subsequent [map] calls run as shard
    [i] of [n]; [None] (the default) and [n = 1] restore the unsharded
    path. Raises [Invalid_argument] unless [0 <= i < n]. Ignored while no
    store is installed. *)

val shard : unit -> (int * int) option

val set_lease_ttl : float -> unit
(** Seconds a trial claim protects its owner before peers may steal it
    (default 60). Also the grace a waiting shard extends to owners that
    have not yet claimed a trial at all. Raises [Invalid_argument] on a
    non-positive value. *)

val lease_ttl : unit -> float
