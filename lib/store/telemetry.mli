(** Campaign-scale telemetry: aggregate persisted metric capsules into
    percentile reports, export them, and gate regressions.

    {!collect} walks a store's capsule area ({!Store.fold_capsules}) and
    merges every trial's capsule into per-experiment aggregates: counters
    sum exactly (plus a per-trial distribution), gauges become a
    distribution of their final values, and histograms merge bucket-wise
    ({!Satin_obs.Histogram.merge} is exactly associative and commutative),
    so the aggregate is independent of walk order, jobs width, and how many
    runs it took to fill the store. Reports therefore render byte-identical
    for equal capsule populations — the property CI's determinism jobs
    assert.

    A report carries an {e identity}: the binary fingerprint the capsules
    were produced by (a collection spanning several fingerprints must have
    one selected explicitly — mixing builds silently is exactly the
    apples-to-oranges failure this refuses) and a {e config hash} digesting
    the campaign's composition (which experiments, seeds, trials, configs).
    {!gate} compares two exported documents and refuses mismatched config
    hashes; fingerprints are expected to differ across builds and are never
    compared. *)

module Histogram = Satin_obs.Histogram
module Json = Satin_obs.Json
module Labels : sig
  type t = (string * string) list
end

type series_agg =
  | Total of int * Histogram.t
      (** counter: exact campaign total, plus the distribution of per-trial
          values *)
  | Dist of Histogram.t  (** gauge: final values across trials *)
  | Merged of Histogram.t  (** histogram: exact merged sample population *)

type experiment_agg = {
  exp_trials : int;
  exp_config_hash : string;
      (** digest of this experiment's (seed, trial, config) set *)
  series : ((string * Labels.t) * series_agg) list;  (** sorted *)
}

type report = {
  fingerprint : string;
  config_hash : string;  (** digest over all per-experiment hashes *)
  trials : int;
  skipped : int;  (** capsules that failed to parse (logged, not fatal) *)
  experiments : (string * experiment_agg) list;  (** sorted by name *)
}

val collect : ?fingerprint:string -> Store.t -> (report, string) result
(** Aggregate every readable capsule in the store. [Error] when the store
    holds capsules from several fingerprints and [fingerprint] does not
    select one (the message lists them), or when no capsule matches. *)

val print_table : Format.formatter -> report -> unit
(** Human percentile tables, one block per experiment: each series with its
    kind, sample count, exact total (counters), and p50/p90/p99/mean/min/
    max. Byte-stable for equal reports. *)

val to_json : report -> Json.t
(** [{"schema": "satin-telemetry/v1", "identity": {...}, "experiments":
    {...}}] — the machine form consumed by {!gate}. Canonical ordering
    throughout; equal reports render byte-identically. *)

val to_openmetrics : report -> string
(** OpenMetrics text exposition: one metric family per series (names
    mangled to [[a-zA-Z0-9_]], prefixed [satin_]), counters as [_total]
    samples, distributions as summaries with [quantile] labels, every
    sample labelled with its experiment, terminated by [# EOF]. *)

type gate_result = {
  compared : int;  (** numeric paths present on both sides and tracked *)
  regressions : (string * float * float) list;
      (** (path, baseline, current), worst relative change first *)
  missing : string list;
      (** tracked baseline paths absent from the current document *)
}

val gate :
  ?threshold:float -> baseline:Json.t -> current:Json.t -> unit ->
  (gate_result, string) result
(** Compare two telemetry (or bench) JSON documents. Numeric leaves are
    flattened to dotted paths; a path is {e tracked} when its last segment
    has a known direction — lower-is-better ([p50]/[p90]/[p99]/[mean]/
    [ns_per_run]/[words_per_event]/[..._latency]/[..._duration]/[..._cost]/
    [..._pct]) or higher-is-better ([..._per_s]/[..._rate]/[speedup]) — and
    it regresses when it moves the wrong way by more than [threshold]
    (relative, default [0.10]). Identity is enforced, not compared:
    mismatched [identity.config_hash] fields are an [Error] (the documents
    describe different campaigns), and fingerprint fields are ignored.
    [missing] paths are reported but only regressions should fail a CI
    gate. *)

val gate_threshold_default : float
(** [0.10]. *)
