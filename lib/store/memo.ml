module Runner = Satin_runner.Runner
module Obs = Satin_obs.Obs
module Json = Satin_obs.Json
module Capsule = Satin_obs.Capsule
module Progress = Satin_obs.Progress
module Sim_time = Satin_engine.Sim_time

let store_track = 63

(* Lane position for cache spans: simulated time is meaningless for host-
   side lookups, so spans occupy successive microsecond slots of their own
   track — a compact hit/miss strip under the simulation lanes. *)
let span_slot = ref 0

let lookup_span ~experiment ~trial ~key outcome =
  if Obs.enabled () then begin
    Obs.name_track store_track "result store";
    let t0 = Sim_time.us !span_slot in
    incr span_slot;
    Obs.span_begin ~time:t0 ~track:store_track ~cat:"store"
      ~args:
        [
          ("experiment", Json.String experiment);
          ("trial", Json.Int trial);
          ("key", Json.String key);
        ]
      ("store." ^ outcome);
    Obs.span_end ~time:(Sim_time.us !span_slot) ~track:store_track
  end

(* The capsule's config is the key's information restated as readable
   pairs: ambient context fields keep their "ctx:" namespace so they can
   never collide with per-trial config fields. *)
let capsule_config ~base ~trial_config i =
  let cfg = match trial_config with None -> base | Some g -> base @ g i in
  List.map (fun (k, v) -> ("ctx:" ^ k, v)) (Key.ambient ()) @ cfg

let seal_capsule ~experiment ~seed ~fingerprint ~config ~trial_config i m =
  let c =
    Capsule.of_metrics ~experiment ~seed ~trial:i ~fingerprint
      ~config:(capsule_config ~base:config ~trial_config i)
      m
  in
  if Progress.enabled () then Progress.observe_capsule c;
  Json.to_string (Capsule.to_json c)

let map pool ~experiment ~seed ?(config = []) ?trial_config n f =
  match Store.current () with
  | None ->
      if Progress.enabled () then
        (* No store to persist into, but heartbeats still want live p50s:
           capture around each body and feed the reporter directly. *)
        Runner.map pool n (fun i ->
            let m, v = Obs.with_capture (fun () -> f i) in
            ignore
              (seal_capsule ~experiment ~seed
                 ~fingerprint:(Fingerprint.hex ()) ~config ~trial_config i m);
            v)
      else Runner.map pool n f
  | Some store ->
      let fingerprint = Fingerprint.hex () in
      let key_of i =
        let config =
          match trial_config with None -> config | Some g -> config @ g i
        in
        Key.make ~experiment ~seed ~trial_index:i ~config ()
      in
      let keys = Array.init n key_of in
      (* Sealed capsule JSON per trial, written by whichever domain ran the
         trial and read back by the same domain in [on_computed] — no two
         domains ever touch one slot. *)
      let caps = Array.make n None in
      Runner.map_cached pool n
        ~lookup:(fun i ->
          let r = Store.find store ~key:keys.(i) in
          lookup_span ~experiment ~trial:i ~key:keys.(i)
            (match r with Some _ -> "hit" | None -> "miss");
          (if r <> None then
             (* Warm hit: replay the persisted capsule instead of
                recomputing anything — always consulted (so the capsule
                hit/miss counters audit coverage), parsed only when the
                live reporter wants the samples. *)
             match Store.find_capsule store ~key:keys.(i) with
             | None -> ()
             | Some payload when Progress.enabled () -> (
                 match Capsule.of_string payload with
                 | Ok c -> Progress.observe_capsule c
                 | Error _ -> ())
             | Some _ -> ());
          r)
        ~on_computed:(fun i v ->
          (* A failing write must not poison the trial that just computed
             its result — count it and move on. *)
          (try Store.add store ~key:keys.(i) ~experiment v
           with e ->
             Obs.incr "store.write_errors";
             Logs.warn (fun m ->
                 m "store: failed to persist %s: %s" keys.(i)
                   (Printexc.to_string e)));
          match caps.(i) with
          | None -> ()
          | Some payload -> (
              try Store.add_capsule store ~key:keys.(i) ~experiment payload
              with e ->
                Obs.incr "store.write_errors";
                Logs.warn (fun m ->
                    m "store: failed to persist capsule %s: %s" keys.(i)
                      (Printexc.to_string e))))
        (fun i ->
          let m, v = Obs.with_capture (fun () -> f i) in
          caps.(i) <-
            Some
              (seal_capsule ~experiment ~seed ~fingerprint ~config
                 ~trial_config i m);
          v)
