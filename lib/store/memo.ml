module Runner = Satin_runner.Runner
module Obs = Satin_obs.Obs
module Json = Satin_obs.Json
module Capsule = Satin_obs.Capsule
module Progress = Satin_obs.Progress
module Sim_time = Satin_engine.Sim_time

let store_track = 63

(* Lane position for cache spans: simulated time is meaningless for host-
   side lookups, so spans occupy successive microsecond slots of their own
   track — a compact hit/miss strip under the simulation lanes. *)
let span_slot = ref 0

let lookup_span ~experiment ~trial ~key outcome =
  if Obs.enabled () then begin
    Obs.name_track store_track "result store";
    let t0 = Sim_time.us !span_slot in
    incr span_slot;
    Obs.span_begin ~time:t0 ~track:store_track ~cat:"store"
      ~args:
        [
          ("experiment", Json.String experiment);
          ("trial", Json.Int trial);
          ("key", Json.String key);
        ]
      ("store." ^ outcome);
    Obs.span_end ~time:(Sim_time.us !span_slot) ~track:store_track
  end

(* The capsule's config is the key's information restated as readable
   pairs: ambient context fields keep their "ctx:" namespace so they can
   never collide with per-trial config fields. *)
let capsule_config ~base ~trial_config i =
  let cfg = match trial_config with None -> base | Some g -> base @ g i in
  List.map (fun (k, v) -> ("ctx:" ^ k, v)) (Key.ambient ()) @ cfg

let seal_capsule ~experiment ~seed ~fingerprint ~config ~trial_config i m =
  let c =
    Capsule.of_metrics ~experiment ~seed ~trial:i ~fingerprint
      ~config:(capsule_config ~base:config ~trial_config i)
      m
  in
  if Progress.enabled () then Progress.observe_capsule c;
  Json.to_string (Capsule.to_json c)

(* ---- sharding ----

   A shard is one of [sn] cooperating processes sweeping the same
   campaign against one store. Ownership partitions each fan-out
   deterministically — trial [i] of a fan-out belongs to shard
   [(i + Hashtbl.hash (experiment, seed)) mod sn]; the hash rotation
   spreads single-trial fan-outs (which would otherwise all land on
   shard 0) across the fleet. Every shard still *returns* the full
   result array: it computes what it owns, then serves the rest from the
   store as owners publish, stealing any trial whose owner provably died
   (stale lease) or never showed up (no lease after a grace period). So
   each shard's report is byte-identical to an unsharded run's. *)

let shard_state = ref None

let set_shard s =
  (match s with
  | Some (si, sn) when sn < 1 || si < 0 || si >= sn ->
      invalid_arg "Memo.set_shard: need 0 <= index < count"
  | _ -> ());
  shard_state := s

let shard () = !shard_state
let lease_ttl_ref = ref 60.0

let set_lease_ttl t =
  if t <= 0.0 then invalid_arg "Memo.set_lease_ttl: must be positive";
  lease_ttl_ref := t

let lease_ttl () = !lease_ttl_ref

let owner ~experiment ~seed ~sn i =
  (i + Hashtbl.hash (experiment, seed)) mod sn

let map_sharded store pool ~experiment ~seed ~config ~trial_config ~si ~sn n
    f =
  let fingerprint = Fingerprint.hex () in
  let key_of i =
    let config =
      match trial_config with None -> config | Some g -> config @ g i
    in
    Key.make ~experiment ~seed ~trial_index:i ~config ()
  in
  let keys = Array.init n key_of in
  let ttl = lease_ttl () in
  (* Serve [i] from the store if its record is there, replaying the
     persisted capsule into the live reporter like any warm hit. *)
  let fetch i =
    let r = Store.find store ~key:keys.(i) in
    lookup_span ~experiment ~trial:i ~key:keys.(i)
      (match r with Some _ -> "hit" | None -> "miss");
    (if r <> None then
       match Store.find_capsule store ~key:keys.(i) with
       | None -> ()
       | Some payload when Progress.enabled () -> (
           match Capsule.of_string payload with
           | Ok c -> Progress.observe_capsule c
           | Error _ -> ())
       | Some _ -> ());
    r
  in
  (* Compute trial [i]'s body with capture, persist record + capsule, and
     release the claim. Runs on whichever domain got the trial; a crash
     between claim and release leaves a lease that expires into
     stealability. *)
  let compute i =
    ignore (Store.try_claim store ~key:keys.(i) ~ttl_s:ttl);
    let m, v = Obs.with_capture (fun () -> f i) in
    let payload =
      seal_capsule ~experiment ~seed ~fingerprint ~config ~trial_config i m
    in
    (try
       Store.add store ~key:keys.(i) ~experiment v;
       Store.add_capsule store ~key:keys.(i) ~experiment payload
     with e ->
       Obs.incr "store.write_errors";
       Logs.warn (fun m ->
           m "store: failed to persist %s: %s" keys.(i)
             (Printexc.to_string e)));
    Store.release_claim store ~key:keys.(i);
    v
  in
  (* Phase 1 — resolve what the store already has, in index order. *)
  let resolved = Array.init n fetch in
  let resolved_count =
    Array.fold_left (fun a r -> if r = None then a else a + 1) 0 resolved
  in
  Obs.incr "runner.trials_resolved" ~by:resolved_count;
  if Progress.enabled () && resolved_count > 0 then begin
    Progress.batch_start resolved_count;
    for _ = 1 to resolved_count do
      Progress.trial_done ~hit:true
    done
  end;
  let owned = ref [] and waiting = ref [] in
  for i = n - 1 downto 0 do
    if resolved.(i) = None then
      if
        owner ~experiment ~seed ~sn i = si
        && Store.try_claim store ~key:keys.(i) ~ttl_s:ttl
      then owned := i :: !owned
      else waiting := i :: !waiting
  done;
  (* Phase 2 — compute the owned misses through the pool. The upfront
     claims above mark intent; [compute] refreshes each lease the moment
     its trial actually starts, so a long queue behind a narrow pool
     cannot silently expire every claim at once. *)
  let owned = Array.of_list !owned in
  let computed =
    Runner.map pool (Array.length owned) (fun j -> compute owned.(j))
  in
  Array.iteri (fun j i -> resolved.(i) <- Some computed.(j)) owned;
  (* Phase 3 — wait for the rest to be published by their owners,
     stealing any trial whose lease is stale or whose owner never claimed
     it within one TTL of this phase starting (a shared grace: a shard
     running alone pays it once, then sweeps everything). *)
  let t0 = Unix.gettimeofday () in
  let pending = Queue.create () in
  List.iter (fun i -> Queue.push i pending) !waiting;
  while not (Queue.is_empty pending) do
    let round = Queue.length pending in
    let progressed = ref false in
    for _ = 1 to round do
      let i = Queue.pop pending in
      if Store.contains store ~key:keys.(i) then begin
        match fetch i with
        | Some v ->
            resolved.(i) <- Some v;
            progressed := true;
            Obs.incr "runner.trials_resolved";
            if Progress.enabled () then begin
              Progress.batch_start 1;
              Progress.trial_done ~hit:true
            end;
            (* The record may outlive the lease bookkeeping (owner died
               between add and release): clear any leftover claim. *)
            Store.release_claim store ~key:keys.(i)
        | None ->
            (* Quarantined between the probe and the read — recompute. *)
            Queue.push i pending
      end
      else
        let stale =
          match Store.claim_lease store ~key:keys.(i) with
          | Some l -> not (Store.lease_live l)
          | None -> Unix.gettimeofday () -. t0 >= ttl
        in
        if stale && Store.try_claim store ~key:keys.(i) ~ttl_s:ttl then begin
          Progress.batch_start 1;
          resolved.(i) <- Some (compute i);
          progressed := true;
          Progress.trial_done ~hit:false
        end
        else Queue.push i pending
    done;
    if (not !progressed) && not (Queue.is_empty pending) then
      Unix.sleepf 0.05
  done;
  Array.map (function Some v -> v | None -> assert false) resolved

let map pool ~experiment ~seed ?(config = []) ?trial_config n f =
  match Store.current () with
  | None ->
      if Progress.enabled () then
        (* No store to persist into, but heartbeats still want live p50s:
           capture around each body and feed the reporter directly. *)
        Runner.map pool n (fun i ->
            let m, v = Obs.with_capture (fun () -> f i) in
            ignore
              (seal_capsule ~experiment ~seed
                 ~fingerprint:(Fingerprint.hex ()) ~config ~trial_config i m);
            v)
      else Runner.map pool n f
  | Some store when (match !shard_state with
                    | Some (_, sn) -> sn > 1
                    | None -> false) ->
      let si, sn = Option.get !shard_state in
      map_sharded store pool ~experiment ~seed ~config ~trial_config ~si ~sn
        n f
  | Some store ->
      let fingerprint = Fingerprint.hex () in
      let key_of i =
        let config =
          match trial_config with None -> config | Some g -> config @ g i
        in
        Key.make ~experiment ~seed ~trial_index:i ~config ()
      in
      let keys = Array.init n key_of in
      (* Sealed capsule JSON per trial, written by whichever domain ran the
         trial and read back by the same domain in [on_computed] — no two
         domains ever touch one slot. *)
      let caps = Array.make n None in
      Runner.map_cached pool n
        ~lookup:(fun i ->
          let r = Store.find store ~key:keys.(i) in
          lookup_span ~experiment ~trial:i ~key:keys.(i)
            (match r with Some _ -> "hit" | None -> "miss");
          (if r <> None then
             (* Warm hit: replay the persisted capsule instead of
                recomputing anything — always consulted (so the capsule
                hit/miss counters audit coverage), parsed only when the
                live reporter wants the samples. *)
             match Store.find_capsule store ~key:keys.(i) with
             | None -> ()
             | Some payload when Progress.enabled () -> (
                 match Capsule.of_string payload with
                 | Ok c -> Progress.observe_capsule c
                 | Error _ -> ())
             | Some _ -> ());
          r)
        ~on_computed:(fun i v ->
          (* A failing write must not poison the trial that just computed
             its result — count it and move on. *)
          (try Store.add store ~key:keys.(i) ~experiment v
           with e ->
             Obs.incr "store.write_errors";
             Logs.warn (fun m ->
                 m "store: failed to persist %s: %s" keys.(i)
                   (Printexc.to_string e)));
          match caps.(i) with
          | None -> ()
          | Some payload -> (
              try Store.add_capsule store ~key:keys.(i) ~experiment payload
              with e ->
                Obs.incr "store.write_errors";
                Logs.warn (fun m ->
                    m "store: failed to persist capsule %s: %s" keys.(i)
                      (Printexc.to_string e))))
        (fun i ->
          let m, v = Obs.with_capture (fun () -> f i) in
          caps.(i) <-
            Some
              (seal_capsule ~experiment ~seed ~fingerprint ~config
                 ~trial_config i m);
          v)
