module Runner = Satin_runner.Runner
module Obs = Satin_obs.Obs
module Json = Satin_obs.Json
module Sim_time = Satin_engine.Sim_time

let store_track = 63

(* Lane position for cache spans: simulated time is meaningless for host-
   side lookups, so spans occupy successive microsecond slots of their own
   track — a compact hit/miss strip under the simulation lanes. *)
let span_slot = ref 0

let lookup_span ~experiment ~trial ~key outcome =
  if Obs.enabled () then begin
    Obs.name_track store_track "result store";
    let t0 = Sim_time.us !span_slot in
    incr span_slot;
    Obs.span_begin ~time:t0 ~track:store_track ~cat:"store"
      ~args:
        [
          ("experiment", Json.String experiment);
          ("trial", Json.Int trial);
          ("key", Json.String key);
        ]
      ("store." ^ outcome);
    Obs.span_end ~time:(Sim_time.us !span_slot) ~track:store_track
  end

let map pool ~experiment ~seed ?(config = []) ?trial_config n f =
  match Store.current () with
  | None -> Runner.map pool n f
  | Some store ->
      let key_of i =
        let config =
          match trial_config with None -> config | Some g -> config @ g i
        in
        Key.make ~experiment ~seed ~trial_index:i ~config ()
      in
      let keys = Array.init n key_of in
      Runner.map_cached pool n
        ~lookup:(fun i ->
          let r = Store.find store ~key:keys.(i) in
          lookup_span ~experiment ~trial:i ~key:keys.(i)
            (match r with Some _ -> "hit" | None -> "miss");
          r)
        ~on_computed:(fun i v ->
          (* A failing write must not poison the trial that just computed
             its result — count it and move on. *)
          try Store.add store ~key:keys.(i) ~experiment v
          with e ->
            Obs.incr "store.write_errors";
            Logs.warn (fun m ->
                m "store: failed to persist %s: %s" keys.(i)
                  (Printexc.to_string e)))
        f
