(** Code fingerprint: the build-identity component of every store key.

    Trial records are serialized with [Marshal], whose layout is only
    guaranteed between identical binaries, and a trial's result can change
    whenever any simulation code changes. Both hazards collapse into one
    rule: a record may only ever be read back by the binary that wrote it.
    The fingerprint enforces the rule structurally — it is the digest of
    the running executable image, mixed into every {!Key}, so a rebuilt
    binary computes different keys and simply misses instead of deserializing
    foreign bytes. [satin_cli fingerprint] prints it so users can explain
    cache misses across builds. *)

val hex : unit -> string
(** 32-char lowercase hex digest of the running executable. Computed once,
    lazily. Falls back to a digest of the executable path and OCaml version
    if the image cannot be read. *)

val describe : unit -> (string * string) list
(** Human-oriented provenance: the fingerprint plus what it was derived
    from (executable path, image size when readable, OCaml version). *)

val override_for_testing : string option -> unit
(** Replace ([Some h]) or restore ([None]) the fingerprint. Tests use this
    to prove that keys derived under different fingerprints never collide;
    production code must not call it. *)
