module Histogram = Satin_obs.Histogram
module Json = Satin_obs.Json
module Capsule = Satin_obs.Capsule

module Labels = struct
  type t = (string * string) list
end

let src = Logs.Src.create "satin.telemetry" ~doc:"campaign telemetry"

module Log = (val Logs.src_log src : Logs.LOG)

type series_agg =
  | Total of int * Histogram.t
  | Dist of Histogram.t
  | Merged of Histogram.t

type experiment_agg = {
  exp_trials : int;
  exp_config_hash : string;
  series : ((string * Labels.t) * series_agg) list;
}

type report = {
  fingerprint : string;
  config_hash : string;
  trials : int;
  skipped : int;
  experiments : (string * experiment_agg) list;
}

(* ---- collection ---- *)

type exp_acc = {
  mutable n_trials : int;
  mutable cfg_lines : string list;
  items : (string * Labels.t, series_agg) Hashtbl.t;
}

let merge_series name acc incoming =
  match (acc, incoming) with
  | Total (t, d), Capsule.Counter c ->
      Histogram.add d (float_of_int c);
      Total (t + c, d)
  | Dist d, Capsule.Gauge g ->
      if not (Float.is_nan g) then Histogram.add d g;
      Dist d
  | Merged m, Capsule.Histogram h -> Merged (Histogram.merge m h)
  | _ ->
      invalid_arg
        (Printf.sprintf "Telemetry: series %S changes kind across capsules" name)

let fresh_series = function
  | Capsule.Counter c ->
      let d = Histogram.create () in
      Histogram.add d (float_of_int c);
      Total (c, d)
  | Capsule.Gauge g ->
      let d = Histogram.create () in
      if not (Float.is_nan g) then Histogram.add d g;
      Dist d
  | Capsule.Histogram h -> Merged h

let absorb (acc : exp_acc) (c : Capsule.t) =
  acc.n_trials <- acc.n_trials + 1;
  acc.cfg_lines <-
    Printf.sprintf "seed=%d trial=%d\n%s" c.Capsule.seed c.Capsule.trial
      (Key.canonical c.Capsule.config)
    :: acc.cfg_lines;
  List.iter
    (fun (name, labels, s) ->
      let key = (name, labels) in
      match Hashtbl.find_opt acc.items key with
      | None -> Hashtbl.replace acc.items key (fresh_series s)
      | Some prev -> Hashtbl.replace acc.items key (merge_series name prev s))
    c.Capsule.series

let collect ?fingerprint store =
  let caps, skipped =
    Store.fold_capsules store ~init:([], 0)
      ~f:(fun (acc, sk) ~key ~experiment:_ payload ->
        match Capsule.of_string payload with
        | Ok c -> (c :: acc, sk)
        | Error e ->
            Log.warn (fun m -> m "skipping unreadable capsule %s: %s" key e);
            (acc, sk + 1))
  in
  let caps = List.rev caps in
  let fps =
    List.sort_uniq String.compare
      (List.map (fun c -> c.Capsule.fingerprint) caps)
  in
  let selected =
    match (fingerprint, fps) with
    | Some fp, _ when List.mem fp fps -> Ok fp
    | Some fp, _ ->
        Error
          (Printf.sprintf "no capsules with fingerprint %s (store has: %s)" fp
             (if fps = [] then "none" else String.concat ", " fps))
    | None, [ fp ] -> Ok fp
    | None, [] -> Error "store holds no readable capsules"
    | None, fps ->
        Error
          (Printf.sprintf
             "store holds capsules from %d different builds (%s); pass \
              --fingerprint to select one — merging across builds would \
              compare apples to oranges"
             (List.length fps)
             (String.concat ", " fps))
  in
  match selected with
  | Error _ as e -> e
  | Ok fp ->
      let caps =
        List.filter (fun c -> String.equal c.Capsule.fingerprint fp) caps
      in
      let table : (string, exp_acc) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun c ->
          let acc =
            match Hashtbl.find_opt table c.Capsule.experiment with
            | Some acc -> acc
            | None ->
                let acc =
                  { n_trials = 0; cfg_lines = []; items = Hashtbl.create 32 }
                in
                Hashtbl.replace table c.Capsule.experiment acc;
                acc
          in
          absorb acc c)
        caps;
      let experiments =
        Hashtbl.fold
          (fun name acc l ->
            let series =
              Hashtbl.fold (fun k v l -> (k, v) :: l) acc.items []
              |> List.sort (fun (a, _) (b, _) -> compare a b)
            in
            let exp_config_hash =
              Digest.to_hex
                (Digest.string
                   (String.concat "\x00"
                      (List.sort String.compare acc.cfg_lines)))
            in
            (name, { exp_trials = acc.n_trials; exp_config_hash; series }) :: l)
          table []
        |> List.sort (fun (a, _) (b, _) -> String.compare a b)
      in
      let config_hash =
        Digest.to_hex
          (Digest.string
             (String.concat "\n"
                (List.map
                   (fun (name, e) -> name ^ "=" ^ e.exp_config_hash)
                   experiments)))
      in
      Ok
        {
          fingerprint = fp;
          config_hash;
          trials = List.length caps;
          skipped;
          experiments;
        }

(* ---- rendering ---- *)

let series_key name labels =
  if labels = [] then name
  else
    name ^ "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

let dist_of = function Total (_, d) -> d | Dist d -> d | Merged m -> m
let kind_of = function
  | Total _ -> "counter"
  | Dist _ -> "gauge"
  | Merged _ -> "histogram"

let num x = Json.to_string (Json.float x)

let print_table ppf r =
  Format.fprintf ppf
    "telemetry: fingerprint %s, config %s, %d experiment(s), %d trial(s), %d \
     skipped@."
    r.fingerprint
    (String.sub r.config_hash 0 8)
    (List.length r.experiments)
    r.trials r.skipped;
  List.iter
    (fun (name, e) ->
      Format.fprintf ppf "experiment %s: %d trial(s), config %s@." name
        e.exp_trials
        (String.sub e.exp_config_hash 0 8);
      Format.fprintf ppf "  %-42s %-9s %8s %12s %11s %11s %11s %11s@." "series"
        "kind" "count" "total" "p50" "p90" "p99" "mean";
      List.iter
        (fun ((sname, labels), agg) ->
          let d = dist_of agg in
          let total =
            match agg with Total (t, _) -> string_of_int t | _ -> "-"
          in
          let q p =
            if Histogram.is_empty d then "-"
            else Printf.sprintf "%.5g" (Histogram.quantile d p)
          in
          let mean =
            if Histogram.is_empty d then "-"
            else Printf.sprintf "%.5g" (Histogram.mean d)
          in
          Format.fprintf ppf "  %-42s %-9s %8d %12s %11s %11s %11s %11s@."
            (series_key sname labels)
            (kind_of agg) (Histogram.count d) total (q 0.5) (q 0.9) (q 0.99)
            mean)
        e.series)
    r.experiments

let stats_json agg =
  let d = dist_of agg in
  let base = [ ("kind", Json.String (kind_of agg)) ] in
  let base =
    match agg with
    | Total (t, _) -> base @ [ ("total", Json.Int t) ]
    | _ -> base
  in
  let base = base @ [ ("count", Json.Int (Histogram.count d)) ] in
  if Histogram.is_empty d then Json.Obj base
  else
    Json.Obj
      (base
      @ [
          ("p50", Json.float (Histogram.quantile d 0.5));
          ("p90", Json.float (Histogram.quantile d 0.9));
          ("p99", Json.float (Histogram.quantile d 0.99));
          ("mean", Json.float (Histogram.mean d));
          ("min", Json.float (Histogram.min d));
          ("max", Json.float (Histogram.max d));
        ])

let to_json r =
  Json.Obj
    [
      ("schema", Json.String "satin-telemetry/v1");
      ( "identity",
        Json.Obj
          [
            ("fingerprint", Json.String r.fingerprint);
            ("config_hash", Json.String r.config_hash);
          ] );
      ("trials", Json.Int r.trials);
      ("skipped", Json.Int r.skipped);
      ( "experiments",
        Json.Obj
          (List.map
             (fun (name, e) ->
               ( name,
                 Json.Obj
                   [
                     ("config_hash", Json.String e.exp_config_hash);
                     ("trials", Json.Int e.exp_trials);
                     ( "series",
                       Json.Obj
                         (List.map
                            (fun ((sname, labels), agg) ->
                              (series_key sname labels, stats_json agg))
                            e.series) );
                   ] ))
             r.experiments) );
    ]

(* ---- OpenMetrics ---- *)

let mangle name =
  "satin_"
  ^ String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
        | _ -> '_')
      name

let om_escape v =
  String.concat ""
    (List.map
       (function
         | '\\' -> "\\\\" | '"' -> "\\\"" | '\n' -> "\\n" | c -> String.make 1 c)
       (List.init (String.length v) (String.get v)))

let om_labels pairs =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (om_escape v)) pairs)
  ^ "}"

let to_openmetrics r =
  (* Group samples by metric family so each family's samples are
     contiguous, as the exposition format requires; families and samples
     both come out in sorted order, so equal reports render identically. *)
  let families : (string, string * string list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (ename, e) ->
      List.iter
        (fun ((sname, labels), agg) ->
          let family = mangle sname in
          let base_labels = ("experiment", ename) :: labels in
          let samples =
            match agg with
            | Total (t, _) ->
                [
                  Printf.sprintf "%s_total%s %d" family (om_labels base_labels)
                    t;
                ]
            | Dist d | Merged d ->
                let q p =
                  Printf.sprintf "%s%s %s" family
                    (om_labels (base_labels @ [ ("quantile", p) ]))
                    (num
                       (Histogram.quantile d
                          (float_of_string p)))
                in
                let qs =
                  if Histogram.is_empty d then []
                  else [ q "0.5"; q "0.9"; q "0.99" ]
                in
                qs
                @ [
                    Printf.sprintf "%s_count%s %d" family
                      (om_labels base_labels) (Histogram.count d);
                  ]
          in
          let om_type =
            match agg with Total _ -> "counter" | _ -> "summary"
          in
          match Hashtbl.find_opt families family with
          | None -> Hashtbl.replace families family (om_type, samples)
          | Some (ty, prev) -> Hashtbl.replace families family (ty, prev @ samples))
        e.series)
    r.experiments;
  let ordered =
    Hashtbl.fold (fun fam v l -> (fam, v) :: l) families []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  let buf = Buffer.create 4096 in
  List.iter
    (fun (family, (om_type, samples)) ->
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" family om_type);
      List.iter
        (fun s ->
          Buffer.add_string buf s;
          Buffer.add_char buf '\n')
        samples)
    ordered;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

(* ---- gate ---- *)

let gate_threshold_default = 0.10

type gate_result = {
  compared : int;
  regressions : (string * float * float) list;
  missing : string list;
}

let rec flatten prefix j acc =
  let join k = if prefix = "" then k else prefix ^ "." ^ k in
  match j with
  | Json.Obj fields ->
      List.fold_left (fun acc (k, v) -> flatten (join k) v acc) acc fields
  | Json.List l ->
      List.fold_left
        (fun (acc, i) v -> (flatten (join (string_of_int i)) v acc, i + 1))
        (acc, 0) l
      |> fst
  | Json.Int i -> (prefix, float_of_int i) :: acc
  | Json.Float x -> (prefix, x) :: acc
  | Json.Null | Json.Bool _ | Json.String _ -> acc

type direction = Lower | Higher

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let direction path =
  if contains path "fingerprint" || contains path "identity" then None
  else
    let last =
      match List.rev (String.split_on_char '.' path) with
      | last :: _ -> last
      | [] -> path
    in
    let suffix s = String.ends_with ~suffix:s last in
    if suffix "per_s" || suffix "_rate" || suffix "throughput"
       || String.equal last "speedup"
    then Some Higher
    else if
      List.mem last [ "p50"; "p90"; "p99"; "mean"; "ns_per_run"; "words_per_event" ]
      || suffix "_pct" || suffix "latency" || suffix "duration" || suffix "cost"
    then Some Lower
    else None

let id_config_hash doc =
  match Json.member "identity" doc with
  | Some id -> (
      match Json.member "config_hash" id with
      | Some (Json.String h) -> Some h
      | _ -> None)
  | None -> None

let gate ?(threshold = gate_threshold_default) ~baseline ~current () =
  if threshold <= 0.0 then invalid_arg "Telemetry.gate: threshold must be > 0";
  match (id_config_hash baseline, id_config_hash current) with
  | Some a, Some b when not (String.equal a b) ->
      Error
        (Printf.sprintf
           "config hash mismatch: baseline %s vs current %s — the documents \
            describe different campaign compositions and cannot be compared"
           a b)
  | _ ->
      let base = flatten "" baseline [] in
      let cur = Hashtbl.create 256 in
      List.iter (fun (p, v) -> Hashtbl.replace cur p v) (flatten "" current []);
      let compared = ref 0 and missing = ref [] and regs = ref [] in
      List.iter
        (fun (path, b) ->
          match direction path with
          | None -> ()
          | Some dir -> (
              match Hashtbl.find_opt cur path with
              | None -> missing := path :: !missing
              | Some c ->
                  incr compared;
                  if Float.abs (c -. b) > 1e-12 then begin
                    let denom = Float.max (Float.abs b) 1e-12 in
                    let delta =
                      match dir with
                      | Lower -> (c -. b) /. denom
                      | Higher -> (b -. c) /. denom
                    in
                    if delta > threshold then regs := (delta, path, b, c) :: !regs
                  end))
        base;
      let regressions =
        List.sort (fun (d1, p1, _, _) (d2, p2, _, _) ->
            match compare d2 d1 with 0 -> String.compare p1 p2 | c -> c)
          !regs
        |> List.map (fun (_, p, b, c) -> (p, b, c))
      in
      Ok
        {
          compared = !compared;
          regressions;
          missing = List.sort String.compare !missing;
        }
