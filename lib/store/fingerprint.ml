let override = ref None

let computed =
  lazy
    (let exe = Sys.executable_name in
     try Digest.to_hex (Digest.file exe)
     with _ -> Digest.to_hex (Digest.string (exe ^ "\x00" ^ Sys.ocaml_version)))

let hex () = match !override with Some h -> h | None -> Lazy.force computed

let describe () =
  let exe = Sys.executable_name in
  let size =
    try [ ("image_bytes", string_of_int (Unix.stat exe).Unix.st_size) ]
    with _ -> []
  in
  [ ("fingerprint", hex ()); ("executable", exe) ]
  @ size
  @ [ ("ocaml", Sys.ocaml_version) ]

let override_for_testing o = override := o
