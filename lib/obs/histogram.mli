(** Fixed-memory, log-bucketed, exactly-mergeable sample histograms.

    The campaign telemetry pipeline needs per-trial latency distributions
    that thousands of shards and trials can combine into one population
    view. {!Satin_engine.Stats.t} (the exact-quantile path the paper's
    tables use) stores every sample, so it neither bounds memory nor
    merges cheaply. This module trades quantile exactness for both:

    - {b fixed memory}: a sample lands in one of a fixed set of
      log-linear buckets (16 sub-buckets per power of two, covering
      2{^-64}..2{^64} with dedicated under/overflow buckets, a zero
      bucket, and a mirrored negative range), so relative quantile error
      is bounded by one sub-bucket (~6%) inside the covered range;
    - {b exact merges}: the state is integer bucket counts plus exact
      min/max folds, so {!merge} is associative and commutative {e to the
      byte} — shard A + shard B equals shard B + shard A, and any
      merge-tree shape over the same trials produces the same histogram.
      (Means and quantiles are derived from bucket counts, never carried
      as floating accumulators, precisely so merging cannot reorder float
      additions.)

    Bucket boundaries come from {!Float.frexp}/{!Float.ldexp} (exact
    powers of two), not transcendental functions, so bucketing is
    deterministic across platforms. *)

type t

val create : unit -> t

val add : t -> float -> unit
(** Record one sample. NaN raises [Invalid_argument] (as in
    {!Satin_engine.Stats.add}); infinities are clamped to
    [±Float.max_float] and land in the outermost buckets. *)

val of_stats : Satin_engine.Stats.t -> t
(** Bucket every sample of an exact-stats accumulator — the bridge from
    the metrics registry's exact histograms to mergeable capsules. *)

val count : t -> int
val is_empty : t -> bool

val min : t -> float
(** Exact smallest sample. Raises [Invalid_argument] when empty; likewise
    [max] and the derived statistics below. *)

val max : t -> float

val mean : t -> float
(** Approximate: sum of bucket-midpoint × count over the fixed bucket
    order, so it is a pure function of the (mergeable) state. *)

val quantile : t -> float -> float
(** [quantile t q] with [0 <= q <= 1]: the midpoint of the bucket holding
    the [q]-th order statistic, clamped into [[min t, max t]]. Exact when
    all samples share a bucket; off by at most one sub-bucket otherwise. *)

val merge : t -> t -> t
(** Combine two histograms into a fresh one. Exactly associative and
    commutative: bucket counts add, min/max fold. [merge (of_list a)
    (of_list b)] is structurally equal to [of_list (a @ b)]. *)

val equal : t -> t -> bool
(** Structural equality of the full state (counts, min, max). *)

(** {1 Codec}

    The JSON form is sparse (only occupied buckets appear, in ascending
    index order) and canonical: equal histograms render byte-identically,
    which is what makes capsule files diffable and the telemetry reports
    byte-stable. *)

val to_json : t -> Json.t
val of_json : Json.t -> (t, string) result
