module Sim_time = Satin_engine.Sim_time
module Engine = Satin_engine.Engine
module Stats = Satin_engine.Stats

type t = {
  metrics : Metrics.t;
  wall_metrics : Metrics.t;
  (* Real-time (host wall-clock) measurements live in their own registry so
     the deterministic one stays byte-stable across runs — DESIGN §7's
     [--metrics] contract. *)
  tracing : Tracing.t;
  mutable horizon : Sim_time.t;
}

let current_state : t option ref = ref None

let create () =
  {
    metrics = Metrics.create ();
    wall_metrics = Metrics.create ();
    tracing = Tracing.create ();
    horizon = Sim_time.zero;
  }

let metrics t = t.metrics
let wall_metrics t = t.wall_metrics
let tracing t = t.tracing

let install t = current_state := Some t
let uninstall () = current_state := None

let current () = !current_state
let enabled () = !current_state <> None

let touch s time = if time > s.horizon then s.horizon <- time

(* ---- per-domain capture ----

   Capsule capture is per-domain (a DLS slot) rather than global: worker
   domains run trials concurrently, and each trial's registry must see only
   its own samples. [capture_count] is the fast-path guard — when zero (no
   capture anywhere) a hook pays one atomic load on top of the sink match,
   preserving the "instrumentation is free when off" contract. *)

let capture_key : Metrics.t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let capture_count = Atomic.make 0

let capture_slot () = Domain.DLS.get capture_key

let capturing () =
  Atomic.get capture_count > 0 && !(capture_slot ()) <> None

let active () = enabled () || capturing ()

let with_capture f =
  let slot = capture_slot () in
  let saved = !slot in
  let m = Metrics.create () in
  slot := Some m;
  Atomic.incr capture_count;
  Fun.protect
    ~finally:(fun () ->
      Atomic.decr capture_count;
      slot := saved)
    (fun () ->
      let r = f () in
      (m, r))

(* ---- hook entry points ---- *)

let incr ?labels ?by name =
  (match !current_state with
  | None -> ()
  | Some s -> Metrics.incr s.metrics ?labels ?by name);
  if Atomic.get capture_count > 0 then
    match !(capture_slot ()) with
    | None -> ()
    | Some m -> Metrics.incr m ?labels ?by name

let set_gauge ?labels name v =
  (match !current_state with
  | None -> ()
  | Some s -> Metrics.set s.metrics ?labels name v);
  if Atomic.get capture_count > 0 then
    match !(capture_slot ()) with
    | None -> ()
    | Some m -> Metrics.set m ?labels name v

let observe ?labels name v =
  (match !current_state with
  | None -> ()
  | Some s -> Metrics.observe s.metrics ?labels name v);
  if Atomic.get capture_count > 0 then
    match !(capture_slot ()) with
    | None -> ()
    | Some m -> Metrics.observe m ?labels name v

let observe_time ?labels name d =
  (match !current_state with
  | None -> ()
  | Some s -> Metrics.observe_time s.metrics ?labels name d);
  if Atomic.get capture_count > 0 then
    match !(capture_slot ()) with
    | None -> ()
    | Some m -> Metrics.observe_time m ?labels name d

let observe_wall ?labels name v =
  (* Wall-clock samples stay out of capture: capsules persist and merge
     across runs, so they must hold only deterministic series. *)
  match !current_state with
  | None -> ()
  | Some s -> Metrics.observe s.wall_metrics ?labels name v

let span_begin ~time ~track ?cat ?args name =
  match !current_state with
  | None -> ()
  | Some s ->
      touch s time;
      Tracing.begin_span s.tracing ~time ~track ?cat ?args name

let span_end ~time ~track =
  match !current_state with
  | None -> ()
  | Some s ->
      touch s time;
      Tracing.end_span s.tracing ~time ~track

let instant ~time ~track ?cat ?args name =
  match !current_state with
  | None -> ()
  | Some s ->
      touch s time;
      Tracing.instant s.tracing ~time ~track ?cat ?args name

let name_track track name =
  match !current_state with
  | None -> ()
  | Some s -> Tracing.set_track_name s.tracing track name

let attach_engine engine =
  let sink_cells =
    match !current_state with
    | None -> None
    | Some s ->
        Some
          ( Metrics.counter s.metrics "engine.events_fired",
            Metrics.gauge s.metrics "engine.queue_depth",
            s )
  in
  let capture_cells =
    if Atomic.get capture_count > 0 then
      match !(capture_slot ()) with
      | Some m ->
          Some
            ( Metrics.counter m "engine.events_fired",
              Metrics.gauge m "engine.queue_depth" )
      | None -> None
    else None
  in
  let sink_batch =
    match !current_state with
    | None -> None
    | Some s ->
        Some
          ( Metrics.histogram s.metrics "engine.batch_size",
            Metrics.histogram s.metrics "engine.cascades" )
  in
  let capture_batch =
    if Atomic.get capture_count > 0 then
      match !(capture_slot ()) with
      | Some m ->
          Some
            ( Metrics.histogram m "engine.batch_size",
              Metrics.histogram m "engine.cascades" )
      | None -> None
    else None
  in
  (match (sink_batch, capture_batch) with
  | None, None -> ()
  | _ ->
      (* Batched dispatch shape: events per same-instant batch and wheel
         cascades charged to it. Deterministic series (batch boundaries are
         a function of the schedule alone), so they belong in [metrics],
         not [wall_metrics]. Runs once per batch, between dispatches. *)
      Engine.set_batch_observer engine
        (Some
           (fun ~size ~cascades ->
             (match sink_batch with
             | None -> ()
             | Some (bs, cs) ->
                 Stats.add bs (float_of_int size);
                 Stats.add cs (float_of_int cascades));
             match capture_batch with
             | None -> ()
             | Some (bs, cs) ->
                 Stats.add bs (float_of_int size);
                 Stats.add cs (float_of_int cascades))));
  match (sink_cells, capture_cells) with
  | None, None -> ()
  | _ ->
      (* Cells are resolved once here, so the per-event observer stays a
         pair of raw mutations even when both destinations are live. *)
      Engine.set_observer engine
        (Some
           (fun ~time ~pending ->
             (match sink_cells with
             | None -> ()
             | Some (fired, depth, s) ->
                 fired := !fired + 1;
                 depth := float_of_int pending;
                 touch s time);
             match capture_cells with
             | None -> ()
             | Some (fired, depth) ->
                 fired := !fired + 1;
                 depth := float_of_int pending))

(* ---- exports ---- *)

let identity_ref : Json.t option ref = ref None

let set_identity id = identity_ref := id
let identity () = !identity_ref

let with_identity fields =
  match !identity_ref with
  | None -> fields
  | Some id -> List.hd fields :: ("identity", id) :: List.tl fields

let horizon t = t.horizon

let trace_json t = Tracing.to_chrome_json t.tracing

let metrics_json t =
  let final = Metrics.snapshot t.metrics ~at:(horizon t) in
  Json.Obj
    (with_identity
       [
         ("schema", Json.String "satin-metrics/v1");
         ("snapshots", Json.List (Metrics.snapshots t.metrics @ [ final ]));
       ])

let wall_metrics_json t =
  Json.Obj
    (with_identity
       [
         ("schema", Json.String "satin-wall-metrics/v1");
         ("snapshot", Metrics.snapshot t.wall_metrics ~at:(horizon t));
       ])

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_trace t path = write_file path (Json.to_string (trace_json t) ^ "\n")

let write_jsonl t path =
  write_file path
    (String.concat "\n" (Tracing.jsonl_lines t.tracing) ^ "\n")

let write_metrics t path = write_file path (Json.to_string (metrics_json t) ^ "\n")
