module Sim_time = Satin_engine.Sim_time
module Engine = Satin_engine.Engine

type t = {
  metrics : Metrics.t;
  wall_metrics : Metrics.t;
  (* Real-time (host wall-clock) measurements live in their own registry so
     the deterministic one stays byte-stable across runs — DESIGN §7's
     [--metrics] contract. *)
  tracing : Tracing.t;
  mutable horizon : Sim_time.t;
}

let current_state : t option ref = ref None

let create () =
  {
    metrics = Metrics.create ();
    wall_metrics = Metrics.create ();
    tracing = Tracing.create ();
    horizon = Sim_time.zero;
  }

let metrics t = t.metrics
let wall_metrics t = t.wall_metrics
let tracing t = t.tracing

let install t = current_state := Some t
let uninstall () = current_state := None

let current () = !current_state
let enabled () = !current_state <> None

let touch s time = if time > s.horizon then s.horizon <- time

(* ---- hook entry points ---- *)

let incr ?labels ?by name =
  match !current_state with
  | None -> ()
  | Some s -> Metrics.incr s.metrics ?labels ?by name

let set_gauge ?labels name v =
  match !current_state with
  | None -> ()
  | Some s -> Metrics.set s.metrics ?labels name v

let observe ?labels name v =
  match !current_state with
  | None -> ()
  | Some s -> Metrics.observe s.metrics ?labels name v

let observe_time ?labels name d =
  match !current_state with
  | None -> ()
  | Some s -> Metrics.observe_time s.metrics ?labels name d

let observe_wall ?labels name v =
  match !current_state with
  | None -> ()
  | Some s -> Metrics.observe s.wall_metrics ?labels name v

let span_begin ~time ~track ?cat ?args name =
  match !current_state with
  | None -> ()
  | Some s ->
      touch s time;
      Tracing.begin_span s.tracing ~time ~track ?cat ?args name

let span_end ~time ~track =
  match !current_state with
  | None -> ()
  | Some s ->
      touch s time;
      Tracing.end_span s.tracing ~time ~track

let instant ~time ~track ?cat ?args name =
  match !current_state with
  | None -> ()
  | Some s ->
      touch s time;
      Tracing.instant s.tracing ~time ~track ?cat ?args name

let name_track track name =
  match !current_state with
  | None -> ()
  | Some s -> Tracing.set_track_name s.tracing track name

let attach_engine engine =
  match !current_state with
  | None -> ()
  | Some s ->
      let fired = Metrics.counter s.metrics "engine.events_fired" in
      let depth = Metrics.gauge s.metrics "engine.queue_depth" in
      Engine.set_observer engine
        (Some
           (fun ~time ~pending ->
             fired := !fired + 1;
             depth := float_of_int pending;
             touch s time))

(* ---- exports ---- *)

let horizon t = t.horizon

let trace_json t = Tracing.to_chrome_json t.tracing

let metrics_json t =
  let final = Metrics.snapshot t.metrics ~at:(horizon t) in
  Json.Obj
    [
      ("schema", Json.String "satin-metrics/v1");
      ("snapshots", Json.List (Metrics.snapshots t.metrics @ [ final ]));
    ]

let wall_metrics_json t =
  Json.Obj
    [
      ("schema", Json.String "satin-wall-metrics/v1");
      ("snapshot", Metrics.snapshot t.wall_metrics ~at:(horizon t));
    ]

let write_file path contents =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc contents)

let write_trace t path = write_file path (Json.to_string (trace_json t) ^ "\n")

let write_jsonl t path =
  write_file path
    (String.concat "\n" (Tracing.jsonl_lines t.tracing) ^ "\n")

let write_metrics t path = write_file path (Json.to_string (metrics_json t) ^ "\n")
