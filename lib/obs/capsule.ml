type series =
  | Counter of int
  | Gauge of float
  | Histogram of Histogram.t

type t = {
  experiment : string;
  seed : int;
  trial : int;
  fingerprint : string;
  config : (string * string) list;
  series : (string * Metrics.labels * series) list;
}

let sort_config config =
  let sorted = List.sort (fun (a, _) (b, _) -> String.compare a b) config in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg ("Capsule: duplicate config field " ^ a);
        check rest
    | _ -> ()
  in
  check sorted;
  sorted

let of_metrics ~experiment ~seed ~trial ~fingerprint ~config metrics =
  let acc = ref [] in
  Metrics.iter_sorted metrics (fun name labels view ->
      let s =
        match view with
        | `Counter c -> Counter c
        | `Gauge g -> Gauge g
        | `Histogram st -> Histogram (Histogram.of_stats st)
      in
      acc := (name, labels, s) :: !acc);
  {
    experiment;
    seed;
    trial;
    fingerprint;
    config = sort_config config;
    series = List.rev !acc;
  }

(* ---- codec ---- *)

let pairs_json pairs =
  Json.List
    (List.map
       (fun (k, v) -> Json.List [ Json.String k; Json.String v ])
       pairs)

let series_json (name, labels, s) =
  let kind, value =
    match s with
    | Counter c -> ("counter", Json.Int c)
    | Gauge g -> ("gauge", Json.float g)
    | Histogram h -> ("histogram", Histogram.to_json h)
  in
  Json.Obj
    [
      ("name", Json.String name);
      ("labels", pairs_json labels);
      ("kind", Json.String kind);
      ("value", value);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String "satin-capsule/v1");
      ("experiment", Json.String t.experiment);
      ("seed", Json.Int t.seed);
      ("trial", Json.Int t.trial);
      ("fingerprint", Json.String t.fingerprint);
      ("config", pairs_json t.config);
      ("series", Json.List (List.map series_json t.series));
    ]

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun m -> Error ("Capsule.of_json: " ^ m)) fmt

let string_field j name =
  match Json.member name j with
  | Some (Json.String s) -> Ok s
  | _ -> err "missing string %S" name

let int_field j name =
  match Json.member name j with
  | Some (Json.Int i) -> Ok i
  | _ -> err "missing int %S" name

let pairs_of_json name = function
  | Json.List l ->
      List.fold_left
        (fun acc e ->
          let* acc = acc in
          match e with
          | Json.List [ Json.String k; Json.String v ] -> Ok ((k, v) :: acc)
          | _ -> err "malformed %s pair" name)
        (Ok []) l
      |> Result.map List.rev
  | _ -> err "missing list %S" name

let series_of_json j =
  let* name = string_field j "name" in
  let* labels =
    match Json.member "labels" j with
    | Some l -> pairs_of_json "labels" l
    | None -> err "missing labels on series %S" name
  in
  let* kind = string_field j "kind" in
  let value = Json.member "value" j in
  let* s =
    match (kind, value) with
    | "counter", Some (Json.Int c) -> Ok (Counter c)
    | "gauge", Some (Json.Int i) -> Ok (Gauge (float_of_int i))
    | "gauge", Some (Json.Float g) -> Ok (Gauge g)
    | "gauge", Some Json.Null -> Ok (Gauge Float.nan)
    | "histogram", Some h ->
        let* h = Histogram.of_json h in
        Ok (Histogram h)
    | _ -> err "malformed %s series %S" kind name
  in
  Ok (name, labels, s)

let of_json j =
  let* schema = string_field j "schema" in
  if schema <> "satin-capsule/v1" then err "unknown schema %S" schema
  else
    let* experiment = string_field j "experiment" in
    let* seed = int_field j "seed" in
    let* trial = int_field j "trial" in
    let* fingerprint = string_field j "fingerprint" in
    let* config =
      match Json.member "config" j with
      | Some c -> pairs_of_json "config" c
      | None -> err "missing config"
    in
    let* series =
      match Json.member "series" j with
      | Some (Json.List l) ->
          List.fold_left
            (fun acc e ->
              let* acc = acc in
              let* s = series_of_json e in
              Ok (s :: acc))
            (Ok []) l
          |> Result.map List.rev
      | _ -> err "missing series"
    in
    Ok { experiment; seed; trial; fingerprint; config; series }

let of_string s =
  match Json.parse s with
  | Error e -> Error ("Capsule.of_string: " ^ e)
  | Ok j -> of_json j
