(** Minimal JSON tree, emitter, and parser.

    The observability exports (Chrome trace events, metric snapshots, bench
    summaries) must be readable by stock tooling — Perfetto, [jq],
    [python -m json.tool] — so everything funnels through this strictly
    standard-compliant emitter. The parser exists for the test suite and
    the CI smoke checks; it accepts exactly the JSON this library needs to
    round-trip (objects, arrays, strings, numbers, booleans, null). *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val float : float -> t
(** Non-finite values become [Null] (JSON has no NaN/infinity). *)

val to_string : t -> string
(** Compact single-line rendering. Keys are emitted in the given order. *)

val to_buffer : Buffer.t -> t -> unit

val parse : string -> (t, string) result
(** Strict recursive-descent parse of a complete document; trailing
    non-whitespace is an error. Numbers with a fraction or exponent parse
    as [Float], others as [Int]. *)

val member : string -> t -> t option
(** [member key json] is the value under [key] when [json] is an object. *)

val to_list_opt : t -> t list option
