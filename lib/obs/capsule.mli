(** Metric capsules: one trial's telemetry as persistable pure data.

    A capsule is the sealed image of the metrics registry a trial filled
    while it ran, stamped with everything needed to aggregate it safely
    later: the experiment id, seed, trial index, the {e code fingerprint}
    of the binary that produced it, and the full config field list
    (ambient context included). Counters stay exact integers, gauges keep
    their final value, and exact-quantile histograms are re-bucketed into
    mergeable {!Histogram.t}s — so capsules from any number of trials,
    shards, or resumed campaign runs combine into exact population
    distributions.

    Capsules serialize as canonical JSON (never [Marshal]): a capsule
    written by one build is safely readable by any other, and the
    fingerprint field lets readers {e refuse} cross-build merges instead
    of silently mixing incomparable populations. Equal capsules render
    byte-identically, which is what makes the telemetry reports
    byte-stable at any [--jobs] width, warm or cold. *)

type series =
  | Counter of int
  | Gauge of float
  | Histogram of Histogram.t

type t = {
  experiment : string;
  seed : int;
  trial : int;
  fingerprint : string;
  config : (string * string) list;  (** sorted by field name *)
  series : (string * Metrics.labels * series) list;
      (** sorted by (name, labels) *)
}

val of_metrics :
  experiment:string ->
  seed:int ->
  trial:int ->
  fingerprint:string ->
  config:(string * string) list ->
  Metrics.t ->
  t
(** Seal a live registry. Exact-stats histogram series are converted with
    {!Histogram.of_stats}. Raises [Invalid_argument] on a duplicate
    config field name (the same rule as store keys). *)

val to_json : t -> Json.t
(** Canonical: fields in fixed order, config and series sorted. *)

val of_json : Json.t -> (t, string) result

val of_string : string -> (t, string) result
(** Parse a serialized capsule ([Json.parse] + {!of_json}). *)
