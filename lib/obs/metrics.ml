module Stats = Satin_engine.Stats
module Sim_time = Satin_engine.Sim_time

type labels = (string * string) list

type series = Counter of int ref | Gauge of float ref | Histogram of Stats.t

type t = {
  table : (string * labels, series) Hashtbl.t;
  mutable snaps : Json.t list; (* newest first *)
}

let create () = { table = Hashtbl.create 64; snaps = [] }

let canonical name labels =
  let sorted = List.sort (fun (a, _) (b, _) -> compare a b) labels in
  let rec check = function
    | (a, _) :: ((b, _) :: _ as rest) ->
        if String.equal a b then
          invalid_arg
            (Printf.sprintf "Metrics: duplicate label key %S on metric %S" a name)
        else check rest
    | [ _ ] | [] -> ()
  in
  check sorted;
  (name, sorted)

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Histogram _ -> "histogram"

let find_or_create t ~name ~labels ~make =
  let key = canonical name labels in
  match Hashtbl.find_opt t.table key with
  | Some s -> s
  | None ->
      let s = make () in
      Hashtbl.replace t.table key s;
      s

let counter t ?(labels = []) name =
  match find_or_create t ~name ~labels ~make:(fun () -> Counter (ref 0)) with
  | Counter r -> r
  | other ->
      invalid_arg
        (Printf.sprintf "Metrics.counter: %S is already a %s" name
           (kind_name other))

let gauge t ?(labels = []) name =
  match find_or_create t ~name ~labels ~make:(fun () -> Gauge (ref 0.0)) with
  | Gauge r -> r
  | other ->
      invalid_arg
        (Printf.sprintf "Metrics.gauge: %S is already a %s" name (kind_name other))

let histogram t ?(labels = []) name =
  match
    find_or_create t ~name ~labels ~make:(fun () -> Histogram (Stats.create ()))
  with
  | Histogram s -> s
  | other ->
      invalid_arg
        (Printf.sprintf "Metrics.histogram: %S is already a %s" name
           (kind_name other))

let incr t ?labels ?(by = 1) name =
  let r = counter t ?labels name in
  r := !r + by

let set t ?labels name v = gauge t ?labels name := v
let observe t ?labels name v = Stats.add (histogram t ?labels name) v
let observe_time t ?labels name d = observe t ?labels name (Sim_time.to_sec_f d)

let series_count t = Hashtbl.length t.table

let lookup t name labels = Hashtbl.find_opt t.table (canonical name labels)

let counter_value t ?(labels = []) name =
  match lookup t name labels with Some (Counter r) -> Some !r | _ -> None

let gauge_value t ?(labels = []) name =
  match lookup t name labels with Some (Gauge r) -> Some !r | _ -> None

let histogram_stats t ?(labels = []) name =
  match lookup t name labels with Some (Histogram s) -> Some s | _ -> None

type view =
  [ `Counter of int | `Gauge of float | `Histogram of Stats.t ]

let iter_sorted t f =
  let entries =
    Hashtbl.fold (fun (name, labels) s acc -> (name, labels, s) :: acc) t.table []
  in
  let entries =
    List.sort (fun (n1, l1, _) (n2, l2, _) -> compare (n1, l1) (n2, l2)) entries
  in
  List.iter
    (fun (name, labels, s) ->
      let view =
        match s with
        | Counter r -> `Counter !r
        | Gauge r -> `Gauge !r
        | Histogram st -> `Histogram st
      in
      f name labels view)
    entries

(* ---- snapshots ---- *)

let labels_json labels = Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let series_json name labels = function
  | Counter r ->
      Json.Obj
        [ ("name", Json.String name); ("labels", labels_json labels);
          ("value", Json.Int !r) ]
  | Gauge r ->
      Json.Obj
        [ ("name", Json.String name); ("labels", labels_json labels);
          ("value", Json.float !r) ]
  | Histogram s ->
      let quantile q = if Stats.is_empty s then Json.Null else Json.float (Stats.quantile s q) in
      let stat f = if Stats.is_empty s then Json.Null else Json.float (f s) in
      Json.Obj
        [
          ("name", Json.String name);
          ("labels", labels_json labels);
          ("count", Json.Int (Stats.count s));
          ("total", stat Stats.total);
          ("mean", stat Stats.mean);
          ("min", stat Stats.min);
          ("max", stat Stats.max);
          ("p50", quantile 0.5);
          ("p90", quantile 0.9);
          ("p99", quantile 0.99);
        ]

let snapshot t ~at =
  let entries =
    Hashtbl.fold (fun (name, labels) s acc -> (name, labels, s) :: acc) t.table []
  in
  let entries =
    List.sort
      (fun (n1, l1, _) (n2, l2, _) -> compare (n1, l1) (n2, l2))
      entries
  in
  let bucket kind =
    List.filter_map
      (fun (name, labels, s) ->
        if String.equal (kind_name s) kind then Some (series_json name labels s)
        else None)
      entries
  in
  Json.Obj
    [
      ("at", Json.float (Sim_time.to_sec_f at));
      ("counters", Json.List (bucket "counter"));
      ("gauges", Json.List (bucket "gauge"));
      ("histograms", Json.List (bucket "histogram"));
    ]

let record_snapshot t ~at = t.snaps <- snapshot t ~at :: t.snaps

let snapshots t = List.rev t.snaps
