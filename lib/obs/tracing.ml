module Sim_time = Satin_engine.Sim_time
module Trace = Satin_engine.Trace

type phase = Begin | End | Instant

type event = {
  ph : phase;
  time : Sim_time.t;
  track : int;
  name : string;
  cat : string;
  args : (string * Json.t) list;
}

type payload = {
  p_ph : phase;
  p_track : int;
  p_name : string;
  p_cat : string;
  p_args : (string * Json.t) list;
}

type t = {
  buf : payload Trace.t;
  track_names : (int, string) Hashtbl.t;
  open_spans : (int, int * string list) Hashtbl.t;
      (* per-track (owner domain, begin stack); ownership transfers only
         when the stack is empty *)
}

let create () =
  { buf = Trace.create (); track_names = Hashtbl.create 8; open_spans = Hashtbl.create 8 }

let push t ~time p = Trace.record t.buf time p

let self_id () = (Domain.self () :> int)

let cross_domain_error ~what ~track ~owner ~me ~open_count =
  invalid_arg
    (Printf.sprintf
       "Tracing.%s: track %d has %d open span(s) begun on domain %d, but the \
        current domain is %d; a track is a single-domain lane while spans are \
        open (begin/end pairs from two domains would interleave into a \
        corrupt nesting)"
       what track open_count owner me)

let begin_span t ~time ~track ?(cat = "") ?(args = []) name =
  let me = self_id () in
  let stack =
    match Hashtbl.find_opt t.open_spans track with
    | Some (owner, (_ :: _ as stack)) ->
        if owner <> me then
          cross_domain_error ~what:"begin_span" ~track ~owner ~me
            ~open_count:(List.length stack);
        stack
    | Some (_, []) | None -> []
  in
  Hashtbl.replace t.open_spans track (me, name :: stack);
  push t ~time { p_ph = Begin; p_track = track; p_name = name; p_cat = cat; p_args = args }

let end_span t ~time ~track =
  let me = self_id () in
  let name, rest =
    match Hashtbl.find_opt t.open_spans track with
    | Some (owner, (n :: rest)) ->
        if owner <> me then
          cross_domain_error ~what:"end_span" ~track ~owner ~me
            ~open_count:(List.length rest + 1);
        (n, rest)
    | Some (_, []) | None -> ("", [])
  in
  Hashtbl.replace t.open_spans track (me, rest);
  push t ~time { p_ph = End; p_track = track; p_name = name; p_cat = ""; p_args = [] }

let instant t ~time ~track ?(cat = "") ?(args = []) name =
  push t ~time { p_ph = Instant; p_track = track; p_name = name; p_cat = cat; p_args = args }

let set_track_name t track name = Hashtbl.replace t.track_names track name

let length t = Trace.length t.buf

let events t =
  List.rev
    (Trace.fold
       (fun acc time p ->
         {
           ph = p.p_ph;
           time;
           track = p.p_track;
           name = p.p_name;
           cat = p.p_cat;
           args = p.p_args;
         }
         :: acc)
       [] t.buf)

(* Chrome trace-event timestamps are microseconds; keep nanosecond
   resolution with a fractional part. *)
let ts_json time = Json.float (float_of_int time /. 1000.0)

let ph_string = function Begin -> "B" | End -> "E" | Instant -> "i"

let event_json ~time p =
  let base =
    [
      ("name", Json.String p.p_name);
      ("ph", Json.String (ph_string p.p_ph));
      ("ts", ts_json time);
      ("pid", Json.Int 0);
      ("tid", Json.Int p.p_track);
    ]
  in
  let base = if p.p_cat = "" then base else base @ [ ("cat", Json.String p.p_cat) ] in
  let base =
    match p.p_ph with
    | Instant -> base @ [ ("s", Json.String "t") ] (* thread-scoped instant *)
    | Begin | End -> base
  in
  let base =
    if p.p_args = [] then base else base @ [ ("args", Json.Obj p.p_args) ]
  in
  Json.Obj base

let metadata_events ~process_name t =
  let meta name tid args =
    Json.Obj
      [
        ("name", Json.String name);
        ("ph", Json.String "M");
        ("ts", Json.Int 0);
        ("pid", Json.Int 0);
        ("tid", Json.Int tid);
        ("args", Json.Obj args);
      ]
  in
  let tracks =
    Hashtbl.fold (fun track name acc -> (track, name) :: acc) t.track_names []
    |> List.sort compare
  in
  meta "process_name" 0 [ ("name", Json.String process_name) ]
  :: List.map
       (fun (track, name) ->
         meta "thread_name" track [ ("name", Json.String name) ])
       tracks

let to_chrome_json ?(process_name = "satin") t =
  let body =
    List.rev (Trace.fold (fun acc time p -> event_json ~time p :: acc) [] t.buf)
  in
  Json.Obj
    [
      ("traceEvents", Json.List (metadata_events ~process_name t @ body));
      ("displayTimeUnit", Json.String "ns");
    ]

let jsonl_lines t =
  List.rev
    (Trace.fold
       (fun acc time p ->
         let fields =
           [
             ("t_ns", Json.Int time);
             ("ph", Json.String (ph_string p.p_ph));
             ("track", Json.Int p.p_track);
             ("name", Json.String p.p_name);
           ]
         in
         let fields =
           if p.p_cat = "" then fields
           else fields @ [ ("cat", Json.String p.p_cat) ]
         in
         let fields =
           if p.p_args = [] then fields
           else fields @ [ ("args", Json.Obj p.p_args) ]
         in
         Json.to_string (Json.Obj fields) :: acc)
       [] t.buf)
