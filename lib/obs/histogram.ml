module Stats = Satin_engine.Stats

(* Log-linear bucketing: a positive sample v = m * 2^e (frexp, m in
   [0.5, 1)) maps to sub-bucket floor((2m - 1) * sub) of exponent e, so
   each power of two is split into [sub] equal-width slices. Exponents
   are clamped into [e_min, e_max]; anything beyond falls into the
   outermost bucket of that side, which keeps the array fixed-size while
   still counting (and min/max still track the exact extremes). *)
let sub = 16
let e_min = -64
let e_max = 64
let n_buckets = (e_max - e_min + 1) * sub

type t = {
  pos : int array;
  neg : int array; (* mirrored: neg.(i) counts -v with |v| bucketed like pos *)
  mutable zero : int;
  mutable count : int;
  mutable min : float;
  mutable max : float;
}

let create () =
  {
    pos = Array.make n_buckets 0;
    neg = Array.make n_buckets 0;
    zero = 0;
    count = 0;
    min = infinity;
    max = neg_infinity;
  }

(* Bucket index of a positive finite magnitude. *)
let index_of_magnitude v =
  let m, e = Float.frexp v in
  let e = if e < e_min then e_min else if e > e_max then e_max else e in
  let s =
    (* m in [0.5, 1) so (2m - 1) in [0, 1); clamp guards the e-clamped
       cases where m no longer corresponds to the stored exponent. *)
    let s = int_of_float (((2.0 *. m) -. 1.0) *. float_of_int sub) in
    if s < 0 then 0 else if s >= sub then sub - 1 else s
  in
  ((e - e_min) * sub) + s

let add t v =
  if Float.is_nan v then invalid_arg "Histogram.add: NaN sample";
  let v =
    if v > Float.max_float then Float.max_float
    else if v < -.Float.max_float then -.Float.max_float
    else v
  in
  if v < t.min then t.min <- v;
  if v > t.max then t.max <- v;
  t.count <- t.count + 1;
  if v = 0.0 then t.zero <- t.zero + 1
  else if v > 0.0 then begin
    let i = index_of_magnitude v in
    t.pos.(i) <- t.pos.(i) + 1
  end
  else begin
    let i = index_of_magnitude (-.v) in
    t.neg.(i) <- t.neg.(i) + 1
  end

let of_stats s =
  let t = create () in
  Array.iter (add t) (Stats.to_array s);
  t

let count t = t.count
let is_empty t = t.count = 0

let require_nonempty t name =
  if t.count = 0 then invalid_arg ("Histogram." ^ name ^ ": empty histogram")

let min t =
  require_nonempty t "min";
  t.min

let max t =
  require_nonempty t "max";
  t.max

(* Midpoint of bucket i (positive side): the bucket spans
   [ldexp (0.5 + s/(2*sub)) e, ldexp (0.5 + (s+1)/(2*sub)) e). All
   quantities are exact dyadic rationals, so this is deterministic. *)
let midpoint i =
  let e = (i / sub) + e_min in
  let s = i mod sub in
  Float.ldexp (0.5 +. ((float_of_int s +. 0.5) /. float_of_int (2 * sub))) e

let mean t =
  require_nonempty t "mean";
  (* Fixed ascending order (negatives from largest magnitude down, zero,
     positives up) so the float summation never depends on merge shape:
     it is recomputed from the merged counts, not carried through. *)
  let acc = ref 0.0 in
  for i = n_buckets - 1 downto 0 do
    if t.neg.(i) > 0 then
      acc := !acc -. (float_of_int t.neg.(i) *. midpoint i)
  done;
  for i = 0 to n_buckets - 1 do
    if t.pos.(i) > 0 then
      acc := !acc +. (float_of_int t.pos.(i) *. midpoint i)
  done;
  let m = !acc /. float_of_int t.count in
  (* Midpoint approximation can drift just past the exact extremes; the
     true mean never can, so clamp. *)
  if m < t.min then t.min else if m > t.max then t.max else m

let quantile t q =
  require_nonempty t "quantile";
  if not (0.0 <= q && q <= 1.0) then
    invalid_arg "Histogram.quantile: q outside [0, 1]";
  (* Index of the order statistic to locate (0-based, nearest-rank on the
     lower side), then a walk over buckets in ascending value order. *)
  let rank = int_of_float (q *. float_of_int (t.count - 1)) in
  let clamp v = if v < t.min then t.min else if v > t.max then t.max else v in
  let seen = ref 0 in
  let result = ref t.max in
  (try
     for i = n_buckets - 1 downto 0 do
       if t.neg.(i) > 0 then begin
         seen := !seen + t.neg.(i);
         if !seen > rank then begin
           result := -.midpoint i;
           raise Exit
         end
       end
     done;
     if t.zero > 0 then begin
       seen := !seen + t.zero;
       if !seen > rank then begin
         result := 0.0;
         raise Exit
       end
     end;
     for i = 0 to n_buckets - 1 do
       if t.pos.(i) > 0 then begin
         seen := !seen + t.pos.(i);
         if !seen > rank then begin
           result := midpoint i;
           raise Exit
         end
       end
     done
   with Exit -> ());
  clamp !result

let merge a b =
  let t = create () in
  for i = 0 to n_buckets - 1 do
    t.pos.(i) <- a.pos.(i) + b.pos.(i);
    t.neg.(i) <- a.neg.(i) + b.neg.(i)
  done;
  t.zero <- a.zero + b.zero;
  t.count <- a.count + b.count;
  t.min <- Float.min a.min b.min;
  t.max <- Float.max a.max b.max;
  t

let equal a b =
  a.count = b.count && a.zero = b.zero
  && (a.count = 0 || (a.min = b.min && a.max = b.max))
  && a.pos = b.pos && a.neg = b.neg

(* ---- codec ---- *)

let sparse arr =
  let acc = ref [] in
  for i = n_buckets - 1 downto 0 do
    if arr.(i) > 0 then
      acc := Json.List [ Json.Int i; Json.Int arr.(i) ] :: !acc
  done;
  Json.List !acc

let to_json t =
  let fields =
    [
      ("v", Json.Int 1);
      ("count", Json.Int t.count);
      ("zero", Json.Int t.zero);
      ("pos", sparse t.pos);
      ("neg", sparse t.neg);
    ]
  in
  let fields =
    if t.count = 0 then fields
    else fields @ [ ("min", Json.float t.min); ("max", Json.float t.max) ]
  in
  Json.Obj fields

let num_opt = function
  | Json.Int i -> Some (float_of_int i)
  | Json.Float x -> Some x
  | _ -> None

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let int_field name =
    match Json.member name j with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "Histogram.of_json: missing int %S" name)
  in
  let fill arr name =
    match Json.member name j with
    | Some (Json.List entries) ->
        List.fold_left
          (fun acc e ->
            let* () = acc in
            match e with
            | Json.List [ Json.Int i; Json.Int c ]
              when i >= 0 && i < n_buckets && c > 0 ->
                arr.(i) <- c;
                Ok ()
            | _ -> Error "Histogram.of_json: malformed bucket entry")
          (Ok ()) entries
    | _ -> Error (Printf.sprintf "Histogram.of_json: missing list %S" name)
  in
  let* v = int_field "v" in
  if v <> 1 then Error (Printf.sprintf "Histogram.of_json: unknown version %d" v)
  else
    let* count = int_field "count" in
    let* zero = int_field "zero" in
    let t = create () in
    t.count <- count;
    t.zero <- zero;
    let* () = fill t.pos "pos" in
    let* () = fill t.neg "neg" in
    let total =
      Array.fold_left ( + ) 0 t.pos + Array.fold_left ( + ) 0 t.neg + t.zero
    in
    if total <> count then Error "Histogram.of_json: bucket counts disagree with count"
    else if count = 0 then Ok t
    else
      match
        (Option.bind (Json.member "min" j) num_opt,
         Option.bind (Json.member "max" j) num_opt)
      with
      | Some mn, Some mx when mn <= mx ->
          t.min <- mn;
          t.max <- mx;
          Ok t
      | _ -> Error "Histogram.of_json: missing or inverted min/max"
