(** Span tracing with Chrome trace-event export.

    Spans are begin/end pairs attributed to a {e track} — one lane per
    simulated core, so an exported E10 campaign renders as the paper's
    Figure 3 per-core timeline. Exports target the Chrome trace-event JSON
    format, directly loadable in Perfetto ({:https://ui.perfetto.dev}) or
    [chrome://tracing]; a JSONL sink emits the same events one structured
    object per line for log-style consumers.

    Spans on one track must nest properly (the begun-last span ends first),
    which the instrumentation sites guarantee by construction: an area
    check lives strictly inside its world-switch span. *)

type phase = Begin | End | Instant

type event = {
  ph : phase;
  time : Satin_engine.Sim_time.t;
  track : int;
  name : string;
  cat : string;
  args : (string * Json.t) list;
}

type t

val create : unit -> t

val begin_span :
  t ->
  time:Satin_engine.Sim_time.t ->
  track:int ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  string ->
  unit

val end_span : t -> time:Satin_engine.Sim_time.t -> track:int -> unit
(** Ends the most recently begun span on [track]. *)

val instant :
  t ->
  time:Satin_engine.Sim_time.t ->
  track:int ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  string ->
  unit

val set_track_name : t -> int -> string -> unit
(** Label a track in the exported view (e.g. ["core 4 (A57)"]). *)

val length : t -> int
val events : t -> event list

val to_chrome_json : ?process_name:string -> t -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ns"}] with metadata events
    naming the process (default ["satin"]) and every named track.
    Timestamps are microseconds of simulated time (the format's unit). *)

val jsonl_lines : t -> string list
(** One compact JSON object per event, in recording order. *)
