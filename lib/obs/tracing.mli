(** Span tracing with Chrome trace-event export.

    Spans are begin/end pairs attributed to a {e track} — one lane per
    simulated core, so an exported E10 campaign renders as the paper's
    Figure 3 per-core timeline. Exports target the Chrome trace-event JSON
    format, directly loadable in Perfetto ({:https://ui.perfetto.dev}) or
    [chrome://tracing]; a JSONL sink emits the same events one structured
    object per line for log-style consumers.

    Spans on one track must nest properly (the begun-last span ends first),
    which the instrumentation sites guarantee by construction: an area
    check lives strictly inside its world-switch span.

    {2 Per-domain track contract}

    A track is a {e single-domain lane while spans are open on it}: the
    domain that begins a span owns the track until its begin stack drains,
    and only then may another domain take it over. Under [--jobs N] the
    runner's worker domains must therefore use disjoint track ids (e.g.
    derived from the domain slot, as the memo layer's store track does) —
    two domains interleaving begin/end pairs on one track would serialize
    into a corrupt nesting that renders as garbage. {!begin_span} and
    {!end_span} enforce this: a call on a track whose open spans were begun
    by a different domain raises [Invalid_argument] instead of silently
    interleaving. *)

type phase = Begin | End | Instant

type event = {
  ph : phase;
  time : Satin_engine.Sim_time.t;
  track : int;
  name : string;
  cat : string;
  args : (string * Json.t) list;
}

type t

val create : unit -> t

val begin_span :
  t ->
  time:Satin_engine.Sim_time.t ->
  track:int ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  string ->
  unit

val end_span : t -> time:Satin_engine.Sim_time.t -> track:int -> unit
(** Ends the most recently begun span on [track]. Raises
    [Invalid_argument] if that span was begun on a different domain (see
    the per-domain track contract above). *)

val instant :
  t ->
  time:Satin_engine.Sim_time.t ->
  track:int ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  string ->
  unit

val set_track_name : t -> int -> string -> unit
(** Label a track in the exported view (e.g. ["core 4 (A57)"]). *)

val length : t -> int
val events : t -> event list

val to_chrome_json : ?process_name:string -> t -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ns"}] with metadata events
    naming the process (default ["satin"]) and every named track.
    Timestamps are microseconds of simulated time (the format's unit). *)

val jsonl_lines : t -> string list
(** One compact JSON object per event, in recording order. *)
