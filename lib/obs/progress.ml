type state = {
  mutex : Mutex.t;
  out : out_channel;
  min_interval : float;
  started : float;
  mutable label : string;
  mutable total : int;
  mutable finished : int;
  mutable hits : int;
  mutable capsules : int;
  mutable last_emit : float;
  series : (string, Histogram.t) Hashtbl.t;
}

let current : state option ref = ref None
let installed = Atomic.make false

let install ?(out = stderr) ?(min_interval = 0.5) () =
  let now = Unix.gettimeofday () in
  current :=
    Some
      {
        mutex = Mutex.create ();
        out;
        min_interval;
        started = now;
        label = "";
        total = 0;
        finished = 0;
        hits = 0;
        capsules = 0;
        last_emit = 0.0;
        series = Hashtbl.create 16;
      };
  Atomic.set installed true

let uninstall () =
  Atomic.set installed false;
  current := None

let enabled () = Atomic.get installed

let with_state f =
  if Atomic.get installed then
    match !current with
    | None -> ()
    | Some s ->
        Mutex.lock s.mutex;
        Fun.protect ~finally:(fun () -> Mutex.unlock s.mutex) (fun () -> f s)

(* ETA text for a heartbeat, or [None] when there is nothing left to
   predict. Before any trial finishes (or whenever the rate degenerates to
   0, inf or nan — e.g. a heartbeat fired with [elapsed = 0.]) there is no
   usable rate, and dividing through would print "eta inf"/"eta nan": clamp
   those to a "--" placeholder instead. Pure, for the unit test. *)
let eta_string ~finished ~total ~elapsed =
  if total <= 0 || finished >= total then None
  else
    let rate =
      if elapsed > 0.0 then float_of_int finished /. elapsed else 0.0
    in
    let eta = float_of_int (total - finished) /. rate in
    if rate > 0.0 && Float.is_finite eta then
      Some (Printf.sprintf "%.1fs" eta)
    else Some "--"

(* The latency series worth quoting live, most interesting first. *)
let headline_series =
  [
    "satin.check_duration";
    "sched.rt_dispatch_latency";
    "evader.hide_latency";
    "monitor.switch_entry_cost";
  ]

let emit ?(force = false) s =
  let now = Unix.gettimeofday () in
  if force || now -. s.last_emit >= s.min_interval then begin
    s.last_emit <- now;
    let elapsed = now -. s.started in
    let buf = Buffer.create 128 in
    Buffer.add_string buf "progress:";
    if s.label <> "" then Buffer.add_string buf (Printf.sprintf " [%s]" s.label);
    Buffer.add_string buf (Printf.sprintf " %d/%d trials" s.finished s.total);
    if s.finished > 0 then
      Buffer.add_string buf
        (Printf.sprintf ", %d warm (%.0f%% hit)" s.hits
           (100.0 *. float_of_int s.hits /. float_of_int s.finished));
    (match eta_string ~finished:s.finished ~total:s.total ~elapsed with
    | Some eta -> Buffer.add_string buf (Printf.sprintf ", eta %s" eta)
    | None -> ());
    let quoted = ref 0 in
    List.iter
      (fun name ->
        if !quoted < 2 then
          match Hashtbl.find_opt s.series name with
          | Some h when not (Histogram.is_empty h) ->
              incr quoted;
              Buffer.add_string buf
                (Printf.sprintf ", p50 %s=%.3g" name (Histogram.quantile h 0.5))
          | _ -> ())
      headline_series;
    Buffer.add_string buf "\n";
    output_string s.out (Buffer.contents buf);
    flush s.out
  end

let set_label label =
  with_state (fun s ->
      s.label <- label;
      emit s)

let batch_start n =
  with_state (fun s -> s.total <- s.total + n)

let trial_done ~hit =
  with_state (fun s ->
      s.finished <- s.finished + 1;
      if hit then s.hits <- s.hits + 1;
      emit s)

let observe_capsule (c : Capsule.t) =
  with_state (fun s ->
      s.capsules <- s.capsules + 1;
      List.iter
        (fun (name, _labels, series) ->
          match series with
          | Capsule.Histogram h ->
              let merged =
                match Hashtbl.find_opt s.series name with
                | Some prev -> Histogram.merge prev h
                | None -> h
              in
              Hashtbl.replace s.series name merged
          | Capsule.Counter _ | Capsule.Gauge _ -> ())
        c.Capsule.series)

let finish () =
  with_state (fun s -> emit ~force:true s);
  uninstall ()
