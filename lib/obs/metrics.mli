(** Metrics registry: counters, gauges, and exact-quantile histograms.

    A series is identified by a metric name plus a canonicalized label set
    (sorted by key, so label order never splits a series). Histograms store
    every sample in a {!Satin_engine.Stats.t}, giving the exact quantiles
    the paper's latency tables report rather than bucketed approximations.
    Snapshots are stamped with the simulated instant they were taken at, so
    a campaign can be sampled into a time series of registry states. *)

type t

type labels = (string * string) list
(** Label pairs. Keys must be unique: registering a series whose labels
    repeat a key raises [Invalid_argument] (a silent last-wins would merge
    series that the caller believed distinct). Order is irrelevant. *)

val create : unit -> t

(** {1 Series handles}

    [counter]/[gauge]/[histogram] return the live storage cell for a
    series, creating it on first use. Handles make hot-path instrumentation
    a single mutation with no hash lookup. Re-registering an existing name
    + label set with a different kind raises [Invalid_argument]. *)

val counter : t -> ?labels:labels -> string -> int ref
val gauge : t -> ?labels:labels -> string -> float ref
val histogram : t -> ?labels:labels -> string -> Satin_engine.Stats.t

(** {1 One-shot operations} *)

val incr : t -> ?labels:labels -> ?by:int -> string -> unit
val set : t -> ?labels:labels -> string -> float -> unit
val observe : t -> ?labels:labels -> string -> float -> unit

val observe_time : t -> ?labels:labels -> string -> Satin_engine.Sim_time.t -> unit
(** Records a duration sample converted to seconds. *)

val series_count : t -> int

val counter_value : t -> ?labels:labels -> string -> int option
val gauge_value : t -> ?labels:labels -> string -> float option
val histogram_stats : t -> ?labels:labels -> string -> Satin_engine.Stats.t option

type view =
  [ `Counter of int | `Gauge of float | `Histogram of Satin_engine.Stats.t ]

val iter_sorted : t -> (string -> labels -> view -> unit) -> unit
(** Visit every series in canonical order (name, then labels) with its
    current value — the extraction point for metric capsules, which must
    serialize equal registries byte-identically. *)

val snapshot : t -> at:Satin_engine.Sim_time.t -> Json.t
(** The full registry state as JSON, stamped with [at] (seconds of
    simulated time). Series are sorted by name then labels, so equal
    registry states render byte-identically. Histogram entries carry count,
    total, mean, min, max and the p50/p90/p99 exact quantiles. *)

val record_snapshot : t -> at:Satin_engine.Sim_time.t -> unit
(** Take {!snapshot} and append it to the registry's snapshot series. *)

val snapshots : t -> Json.t list
(** Recorded snapshots, oldest first. *)
