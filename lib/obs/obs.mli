(** Observability facade: the one sink the instrumentation hooks talk to.

    The simulation layers (engine, monitor, scheduler, defenses, attacks)
    are instrumented with calls into this module. With no sink installed —
    the default — every call is a single match on a global and returns
    immediately, so experiments pay nothing for the instrumentation. The
    CLI's [--trace]/[--metrics] flags and the bench harness install a sink
    around a run and export it afterwards.

    The sink is global (like a {!Logs} reporter) rather than threaded
    through every constructor: simulated components are built deep inside
    experiment runners, and the timeline of "the current run" is exactly
    what the exports capture. Timestamps are always supplied by the caller
    from its engine clock, so one sink serves any number of scenarios. *)

type t

val create : unit -> t

val metrics : t -> Metrics.t

val wall_metrics : t -> Metrics.t
(** The real-time registry: host wall-clock measurements
    ([runner.batch_wall_s], [experiment.wall_s]) land here, segregated from
    {!metrics} so the deterministic registry — and therefore the
    [--metrics] export — stays byte-stable run to run (DESIGN §7). *)

val tracing : t -> Tracing.t

val install : t -> unit
(** Make [t] the current sink. Replaces any previous sink. *)

val uninstall : unit -> unit

val current : unit -> t option
val enabled : unit -> bool

(** {1 Per-domain capture}

    Capsule capture runs {e beside} the global sink: [with_capture] gives
    the calling domain a private registry that every metrics hook also
    writes to for the duration of [f]. Capture is per-domain state
    (Domain.DLS), so concurrent trials on worker domains each seal their
    own registry; captures nest (the innermost wins) and never touch the
    global sink, tracing, or wall-clock series. With no capture active
    anywhere, the added hook cost is one atomic load. *)

val with_capture : (unit -> 'a) -> Metrics.t * 'a
(** Run [f] with a fresh capture registry on the current domain; return
    that registry (sealed — no further hooks write to it) with [f]'s
    result. The previous capture, if any, is restored even on raise. *)

val capturing : unit -> bool
(** Whether the {e current domain} is inside {!with_capture}. Scenario
    construction uses this to attach engine observers for capture-only
    runs. *)

val active : unit -> bool
(** [enabled () || capturing ()] — the guard for instrumentation sites
    that build metric samples: a site skipped when only the sink is absent
    would leave capture-only runs (store-backed campaigns) with empty
    capsules. Tracing-only sites may keep guarding on {!enabled}. *)

(** {1 Hook entry points (no-ops when no sink is installed)} *)

val incr : ?labels:Metrics.labels -> ?by:int -> string -> unit
val set_gauge : ?labels:Metrics.labels -> string -> float -> unit
val observe : ?labels:Metrics.labels -> string -> float -> unit
val observe_time : ?labels:Metrics.labels -> string -> Satin_engine.Sim_time.t -> unit

val observe_wall : ?labels:Metrics.labels -> string -> float -> unit
(** Record a host wall-clock measurement into {!wall_metrics}. Use this —
    never {!observe} — for [Unix.gettimeofday] deltas and anything else
    nondeterministic, so the deterministic registry stays byte-stable. *)

val span_begin :
  time:Satin_engine.Sim_time.t ->
  track:int ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  string ->
  unit

val span_end : time:Satin_engine.Sim_time.t -> track:int -> unit

val instant :
  time:Satin_engine.Sim_time.t ->
  track:int ->
  ?cat:string ->
  ?args:(string * Json.t) list ->
  string ->
  unit

val name_track : int -> string -> unit

val attach_engine : Satin_engine.Engine.t -> unit
(** Register the engine-level observers: every fired event bumps the
    ["engine.events_fired"] counter and updates the ["engine.queue_depth"]
    gauge, and every dispatched batch records its event count and wheel
    cascades into the ["engine.batch_size"] and ["engine.cascades"]
    histograms — in the sink, the current domain's capture registry, or
    both. All four are deterministic series (batch boundaries are a
    function of the schedule alone), so they flow into capsules and
    [telemetry report], never into wall-metrics. A no-op (and no observer
    is installed) when neither destination is active, so an
    un-instrumented run keeps the engine's bare step loop. *)

(** {1 Exports} *)

val set_identity : Json.t option -> unit
(** Install the build/config identity object (see [Summary.identity])
    embedded into {!metrics_json} and {!wall_metrics_json} so exported
    snapshots carry the producing binary's fingerprint and config hash —
    telemetry consumers use it to refuse apples-to-oranges comparisons.
    [None] (the default) omits the field. *)

val identity : unit -> Json.t option

val horizon : t -> Satin_engine.Sim_time.t
(** Latest simulated instant any hook reported — the stamp used for the
    final metrics snapshot. *)

val trace_json : t -> Json.t
(** Chrome trace-event document (see {!Tracing.to_chrome_json}). *)

val metrics_json : t -> Json.t
(** [{"schema": ..., "snapshots": [...]}] — any recorded snapshots plus a
    final one stamped at {!horizon}. Deterministic registry only: wall-clock
    measurements never appear here, keeping the export byte-stable. *)

val wall_metrics_json : t -> Json.t
(** The real-time registry as a separate document
    ([{"schema": "satin-wall-metrics/v1", ...}]). Nondeterministic by
    nature; never mixed into {!metrics_json}. *)

val write_trace : t -> string -> unit
(** Write {!trace_json} to a file. *)

val write_jsonl : t -> string -> unit
(** Write the structured-event JSONL stream to a file. *)

val write_metrics : t -> string -> unit
(** Write {!metrics_json} to a file. *)
