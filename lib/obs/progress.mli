(** Live campaign heartbeats on stderr.

    Off by default: nothing is installed, every hook is a single load of an
    [Atomic.t] and returns, and runs stay byte-stable on stdout and in every
    export. The CLI's [--progress] flag installs a reporter around a
    campaign; the runner and the memo layer then feed it trial completions
    (warm or cold) and sealed {!Capsule.t}s, and it prints a rate-limited
    one-line heartbeat — trials done/total, store hit rate, ETA from host
    wall-clock, and current p50s of the most interesting latency series
    merged live from the capsules.

    Heartbeats go to stderr only and are inherently nondeterministic (they
    quote wall-clock rates); they must never be parsed. All entry points
    are safe to call from worker domains: state is guarded by a mutex, and
    the emit path is rate-limited so contention stays negligible. *)

val install : ?out:out_channel -> ?min_interval:float -> unit -> unit
(** Start reporting. [out] defaults to [stderr]; [min_interval] (seconds of
    host wall-clock between heartbeats) defaults to [0.5]. Resets all
    counters. *)

val uninstall : unit -> unit
(** Stop reporting without a final line (e.g. on error paths). *)

val enabled : unit -> bool

val set_label : string -> unit
(** Name the phase being run (e.g. the current experiment id); quoted in
    heartbeats. *)

val batch_start : int -> unit
(** Announce [n] more trials to run; extends the denominator and the ETA
    basis. *)

val trial_done : hit:bool -> unit
(** One trial finished; [hit] when it was resolved from the store without
    recomputation. *)

val observe_capsule : Capsule.t -> unit
(** Merge a sealed trial capsule into the live aggregate, so heartbeats can
    quote current p50s. Cheap: only histogram series are merged. *)

val finish : unit -> unit
(** Emit a final summary heartbeat (ignoring the rate limit) and
    uninstall. *)

val eta_string : finished:int -> total:int -> elapsed:float -> string option
(** The ETA fragment quoted in heartbeats: [Some "12.3s"] once a usable
    rate exists, [Some "--"] while it would be 0/inf/nan (first heartbeat
    before any trial finishes), [None] when the batch is done or empty.
    Exposed pure for the unit test. *)
