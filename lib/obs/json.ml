type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let float x = if Float.is_finite x then Float x else Null

(* A float must render as a JSON number: shortest round-trip form, with a
   guaranteed digit before any exponent and no bare trailing dot. *)
let float_repr x =
  let s = Printf.sprintf "%.17g" x in
  let shorter = Printf.sprintf "%g" x in
  let s = if float_of_string shorter = x then shorter else s in
  (* "%g" can produce "1e+06" (valid JSON) or "5." (invalid): patch the
     latter. *)
  if String.length s > 0 && s.[String.length s - 1] = '.' then s ^ "0" else s

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x ->
      if Float.is_finite x then Buffer.add_string buf (float_repr x)
      else Buffer.add_string buf "null"
  | String s -> escape_string buf s
  | List l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf v)
        l;
      Buffer.add_char buf ']'
  | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_string buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        fields;
      Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  to_buffer buf v;
  Buffer.contents buf

(* ---- parser ---- *)

exception Parse_error of string

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg c.pos))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | Some _ | None -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some _ | None -> fail c (Printf.sprintf "expected %C" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string_body c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
        | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
        | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
        | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
        | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.src then fail c "bad \\u escape";
            let hex = String.sub c.src c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail c "bad \\u escape"
            in
            c.pos <- c.pos + 4;
            (* Only BMP code points below 0x80 round-trip exactly; anything
               else is preserved as UTF-8. *)
            if code < 0x80 then Buffer.add_char buf (Char.chr code)
            else if code < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
            end;
            go ()
        | Some _ | None -> fail c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char buf ch;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_float = ref false in
  let consume_digits () =
    let rec go () =
      match peek c with
      | Some ('0' .. '9') -> advance c; go ()
      | Some _ | None -> ()
    in
    go ()
  in
  (match peek c with Some '-' -> advance c | _ -> ());
  consume_digits ();
  (match peek c with
  | Some '.' ->
      is_float := true;
      advance c;
      consume_digits ()
  | _ -> ());
  (match peek c with
  | Some ('e' | 'E') ->
      is_float := true;
      advance c;
      (match peek c with Some ('+' | '-') -> advance c | _ -> ());
      consume_digits ()
  | _ -> ());
  let s = String.sub c.src start (c.pos - start) in
  if !is_float then
    match float_of_string_opt s with
    | Some x -> Float x
    | None -> fail c "bad number"
  else
    match int_of_string_opt s with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt s with
        | Some x -> Float x
        | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          let key = parse_string_body c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((key, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((key, v) :: acc)
          | Some _ | None -> fail c "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        List []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | Some _ | None -> fail c "expected ',' or ']'"
        in
        List (items [])
      end
  | Some '"' -> String (parse_string_body c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)

let parse src =
  let c = { src; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos <> String.length src then Error "trailing garbage"
      else Ok v
  | exception Parse_error msg -> Error msg

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_opt = function List l -> Some l | _ -> None
