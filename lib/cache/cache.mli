(** Set-associative L1/L2 cache hierarchy (per-core L1, per-cluster L2).

    The hierarchy models line presence, not line contents: a touch walks
    L1 → L2 → memory, fills both levels on the way back, and reports which
    level served the access. Tags and replacement state live in unboxed int
    arrays — a lookup or fill allocates nothing, so scan-driven fills and
    per-dispatch task footprints stay off the GC hot path (DESIGN §14).

    The L2 is inclusive: every line an L1 holds is also in its cluster's
    L2, and evicting an L2 line back-invalidates the L1 copies (tracked by
    a per-line core bitmask). With {!config.autolock} on, the hierarchy
    reproduces the AutoLock behaviour of ARM inclusive L2s: a line whose
    inclusion mask names {e another} core cannot be chosen as that
    requester's L2 victim — cross-core eviction (the primitive Prime+Probe
    needs) silently fails. When every way of a set is pinned this way the
    fill skips L2 allocation entirely (counted in {!autolock_skips}; the
    line still fills the requester's L1, a documented non-inclusive
    fallback).

    Counters are plain ints, mirrored into [Obs] as [cache.*] series by
    {!publish} (called automatically by {!touch_range}). *)

type geometry = { sets : int; ways : int; line : int }

type config = {
  l1 : geometry;  (** per-core level; default 32 sets x 16 ways x 64 B *)
  l2 : geometry;  (** per-cluster level; default 1024 sets x 16 ways x 64 B *)
  policy : Policy.kind;  (** replacement policy for both levels *)
  autolock : bool;  (** pin L1-resident lines against cross-core L2 eviction *)
}

val default_config : config
(** Juno-like geometry: 32 KiB 16-way L1 per core, 1 MiB 16-way shared L2
    per cluster, 64-byte lines, Tree-PLRU, AutoLock off. *)

val geometry_bytes : geometry -> int

val config_to_key : config -> (string * string) list
(** Stable [(name, value)] pairs for store keys / telemetry labels. *)

type stats = { hits : int; misses : int; evictions : int }

type t

val create :
  ?prng:Satin_engine.Prng.t -> clusters:int array array -> config -> t
(** [clusters] maps cluster index to member core ids (a partition of
    [0 .. ncores - 1]). [prng] feeds only the [Rand] policy; the default is
    a self-seeded stream so a cache never perturbs its platform's PRNG. *)

val config : t -> config
val ncores : t -> int
val cluster_of_core : t -> core:int -> int

val touch : t -> core:int -> addr:int -> int
(** Access one address from [core], filling on the way: returns the level
    that served it — [0] L1 hit, [1] L2 hit, [2] memory (miss in both). *)

val touch_range : t -> core:int -> addr:int -> len:int -> unit
(** Touch every line intersecting [\[addr, addr + len)], then {!publish}. *)

val peek : t -> core:int -> addr:int -> int
(** Like {!touch} but with no side effects at all: no fill, no replacement
    update, no counters. For tests and assertions. *)

val line_size : t -> int
val l2_sets : t -> int
val l2_ways : t -> int

val l2_set_of_addr : t -> addr:int -> int

val eviction_set : t -> l2_set:int -> base:int -> int array
(** [l2_ways] addresses at or above [base], line-aligned, all mapping to
    [l2_set] — touching them all from one core evicts every unpinned line
    of that L2 set. Consecutive members are [l2_sets * line] bytes apart,
    so on the default geometry a whole eviction set also lands in a single
    L1 set (the alignment AutoLock exploits). *)

val l1_stats : t -> stats
val l2_stats : t -> stats
val autolock_skips : t -> int
val back_invalidations : t -> int

val publish : t -> unit
(** Emit counter deltas since the last publish as [cache.l1.hits],
    [cache.l1.misses], [cache.l2.hits], [cache.l2.misses],
    [cache.l2.evictions], [cache.autolock_skips] and
    [cache.back_invalidations]. No-op unless [Obs.active ()]. *)
