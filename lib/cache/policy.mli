(** Replacement policies over per-set state packed into int arrays.

    A policy owns a fixed number of state words per set (see {!state_words});
    the cache hands it a slice [state.(off .. off + state_words - 1)] and the
    policy never allocates. Three policies, in decreasing fidelity cost:

    - {!Lru}: true least-recently-used, one monotone touch stamp per way.
      The reference the others are validated against.
    - {!Tree_plru}: the tree pseudo-LRU ARM's L1/L2 designs actually ship —
      [ways - 1] direction bits in a single word; a touch points every bit
      on the way's path away from it, a victim walk follows the bits.
      Requires a power-of-two associativity. Exactly LRU at 2 ways.
    - {!Rand}: not-most-recently-used random — Cortex-A53's documented
      "random" replacement still never victimizes the line it just filled,
      so the policy tracks the MRU way and draws uniformly among the rest.

    Every policy guarantees the just-touched way is not the next victim
    (when at least one other way is eligible) — the qcheck property in
    [test_cache.ml] pins this for all three. *)

type kind = Lru | Tree_plru | Rand

val all : kind list
val kind_to_string : kind -> string
val kind_of_string : string -> kind option
val pp_kind : Format.formatter -> kind -> unit

val state_words : kind -> ways:int -> int
(** State words per set: [ways] for {!Lru}, 1 for the others. *)

val validate : kind -> ways:int -> unit
(** Raises [Invalid_argument] if the associativity is unsupported
    ({!Tree_plru} needs a power of two; all need [1 <= ways <= 62]). *)

val init : kind -> state:int array -> off:int -> ways:int -> unit
(** Reset one set's slice to the cold state. *)

val touch :
  kind -> state:int array -> off:int -> ways:int -> way:int -> tick:int -> unit
(** Record a reference to [way]. [tick] is a monotone per-cache counter
    (only {!Lru} reads it). *)

val victim :
  kind ->
  state:int array ->
  off:int ->
  ways:int ->
  locked:int ->
  prng:Satin_engine.Prng.t ->
  int
(** The way to evict from a full set, skipping ways whose bit is set in the
    [locked] mask (AutoLock pins). Returns [-1] when every way is locked.
    Only {!Rand} draws from [prng]. *)
