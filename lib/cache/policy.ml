module Prng = Satin_engine.Prng

type kind = Lru | Tree_plru | Rand

let all = [ Lru; Tree_plru; Rand ]

let kind_to_string = function
  | Lru -> "lru"
  | Tree_plru -> "tree-plru"
  | Rand -> "random"

let kind_of_string = function
  | "lru" -> Some Lru
  | "tree-plru" | "plru" -> Some Tree_plru
  | "random" | "rand" -> Some Rand
  | _ -> None

let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)

let state_words kind ~ways =
  match kind with Lru -> ways | Tree_plru -> 1 | Rand -> 1

let is_pow2 n = n > 0 && n land (n - 1) = 0

let validate kind ~ways =
  if ways < 1 || ways > 62 then
    invalid_arg "Policy.validate: need 1 <= ways <= 62";
  match kind with
  | Tree_plru when not (is_pow2 ways) ->
      invalid_arg "Policy.validate: Tree_plru needs a power-of-two ways"
  | Lru | Tree_plru | Rand -> ()

let init kind ~state ~off ~ways =
  match kind with
  | Lru -> Array.fill state off ways 0
  | Tree_plru -> state.(off) <- 0
  | Rand -> state.(off) <- -1 (* no MRU yet *)

(* Tree-PLRU over one word: the [ways - 1] internal nodes of a perfect
   binary tree in heap order (root = node 1, bit [node - 1] of the word).
   Bit 0 means "the colder half is the left one". A touch flips every bit
   on the touched way's root path to point at the other half; the victim
   walk just follows the bits down to a leaf. *)
let plru_touch state off ways way =
  let bits = ref state.(off) in
  let node = ref 1 and lo = ref 0 and hi = ref ways in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    let b = !node - 1 in
    if way < mid then begin
      (* touched left: colder half is the right one *)
      bits := !bits lor (1 lsl b);
      hi := mid;
      node := 2 * !node
    end
    else begin
      bits := !bits land lnot (1 lsl b);
      lo := mid;
      node := (2 * !node) + 1
    end
  done;
  state.(off) <- !bits

let plru_victim state off ways =
  let bits = state.(off) in
  let node = ref 1 and lo = ref 0 and hi = ref ways in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if bits land (1 lsl (!node - 1)) = 0 then begin
      hi := mid;
      node := 2 * !node
    end
    else begin
      lo := mid;
      node := (2 * !node) + 1
    end
  done;
  !lo

let touch kind ~state ~off ~ways ~way ~tick =
  match kind with
  | Lru -> state.(off + way) <- tick
  | Tree_plru -> plru_touch state off ways way
  | Rand -> state.(off) <- way

let victim kind ~state ~off ~ways ~locked ~prng =
  match kind with
  | Lru ->
      let best = ref (-1) and best_stamp = ref max_int in
      for w = 0 to ways - 1 do
        if locked land (1 lsl w) = 0 && state.(off + w) < !best_stamp then begin
          best := w;
          best_stamp := state.(off + w)
        end
      done;
      !best
  | Tree_plru ->
      let v = plru_victim state off ways in
      if locked land (1 lsl v) = 0 then v
      else begin
        (* Pinned: take the next unlocked way in circular order — the walk
           stays deterministic and still avoids the MRU path when any
           colder way is free. *)
        let found = ref (-1) and w = ref 1 in
        while !found < 0 && !w < ways do
          let c = (v + !w) mod ways in
          if locked land (1 lsl c) = 0 then found := c;
          incr w
        done;
        !found
      end
  | Rand ->
      let mru = state.(off) in
      let eligible w = locked land (1 lsl w) = 0 && w <> mru in
      let n = ref 0 in
      for w = 0 to ways - 1 do
        if eligible w then incr n
      done;
      if !n = 0 then
        (* Only the MRU way (if anything) is unlocked. *)
        if mru >= 0 && locked land (1 lsl mru) = 0 then mru else -1
      else begin
        let pick = Prng.int prng !n in
        let seen = ref 0 and chosen = ref (-1) in
        for w = 0 to ways - 1 do
          if eligible w then begin
            if !seen = pick then chosen := w;
            incr seen
          end
        done;
        !chosen
      end
