module Prng = Satin_engine.Prng
module Obs = Satin_obs.Obs

type geometry = { sets : int; ways : int; line : int }

type config = {
  l1 : geometry;
  l2 : geometry;
  policy : Policy.kind;
  autolock : bool;
}

let default_config =
  {
    l1 = { sets = 32; ways = 16; line = 64 };
    l2 = { sets = 1024; ways = 16; line = 64 };
    policy = Policy.Tree_plru;
    autolock = false;
  }

let geometry_bytes g = g.sets * g.ways * g.line

let config_to_key c =
  [
    ( "l1",
      Printf.sprintf "%dx%dx%d" c.l1.sets c.l1.ways c.l1.line );
    ( "l2",
      Printf.sprintf "%dx%dx%d" c.l2.sets c.l2.ways c.l2.line );
    ("policy", Policy.kind_to_string c.policy);
    ("autolock", if c.autolock then "on" else "off");
  ]

type stats = { hits : int; misses : int; evictions : int }

(* One physical level: tags.(set * ways + way) is the line address (-1 =
   invalid), pol is the policy's per-set state, incl (L2 only) the per-line
   bitmask of cores whose L1 holds the line. *)
type level = {
  geo : geometry;
  tags : int array;
  pol : int array;
  pol_words : int;
  incl : int array; (* length 0 for L1 *)
}

type t = {
  cfg : config;
  clusters : int array array;
  cluster_of : int array;
  l1s : level array; (* per core *)
  l2s : level array; (* per cluster *)
  prng : Prng.t;
  mutable tick : int;
  mutable l1_hits : int;
  mutable l1_misses : int;
  mutable l1_evictions : int;
  mutable l2_hits : int;
  mutable l2_misses : int;
  mutable l2_evictions : int;
  mutable autolock_skips : int;
  mutable back_invals : int;
  (* publish watermarks *)
  mutable p_l1_hits : int;
  mutable p_l1_misses : int;
  mutable p_l2_hits : int;
  mutable p_l2_misses : int;
  mutable p_l2_evictions : int;
  mutable p_autolock_skips : int;
  mutable p_back_invals : int;
}

let check_geometry name g ~line =
  if g.sets <= 0 || g.line <= 0 then
    invalid_arg (Printf.sprintf "Cache.create: bad %s geometry" name);
  if g.line land (g.line - 1) <> 0 then
    invalid_arg (Printf.sprintf "Cache.create: %s line size not a power of two" name);
  if g.line <> line then
    invalid_arg "Cache.create: L1 and L2 line sizes must match"

let make_level policy g =
  let pol_words = Policy.state_words policy ~ways:g.ways in
  let lvl =
    {
      geo = g;
      tags = Array.make (g.sets * g.ways) (-1);
      pol = Array.make (g.sets * pol_words) 0;
      pol_words;
      incl = [||];
    }
  in
  for s = 0 to g.sets - 1 do
    Policy.init policy ~state:lvl.pol ~off:(s * pol_words) ~ways:g.ways
  done;
  lvl

let create ?prng ~clusters cfg =
  let ncores = Array.fold_left (fun a m -> a + Array.length m) 0 clusters in
  if ncores = 0 then invalid_arg "Cache.create: empty cluster map";
  if ncores > 62 then invalid_arg "Cache.create: at most 62 cores";
  Policy.validate cfg.policy ~ways:cfg.l1.ways;
  Policy.validate cfg.policy ~ways:cfg.l2.ways;
  check_geometry "l1" cfg.l1 ~line:cfg.l2.line;
  check_geometry "l2" cfg.l2 ~line:cfg.l2.line;
  let cluster_of = Array.make ncores (-1) in
  Array.iteri
    (fun cl members ->
      Array.iter
        (fun core ->
          if core < 0 || core >= ncores || cluster_of.(core) >= 0 then
            invalid_arg "Cache.create: clusters must partition the cores";
          cluster_of.(core) <- cl)
        members)
    clusters;
  if Array.exists (fun c -> c < 0) cluster_of then
    invalid_arg "Cache.create: clusters must partition the cores";
  let prng =
    match prng with Some p -> p | None -> Prng.create (Prng.derive 0x5a71 0)
  in
  let l2_of _ =
    let lvl = make_level cfg.policy cfg.l2 in
    { lvl with incl = Array.make (cfg.l2.sets * cfg.l2.ways) 0 }
  in
  {
    cfg;
    clusters;
    cluster_of;
    l1s = Array.init ncores (fun _ -> make_level cfg.policy cfg.l1);
    l2s = Array.init (Array.length clusters) l2_of;
    prng;
    tick = 0;
    l1_hits = 0;
    l1_misses = 0;
    l1_evictions = 0;
    l2_hits = 0;
    l2_misses = 0;
    l2_evictions = 0;
    autolock_skips = 0;
    back_invals = 0;
    p_l1_hits = 0;
    p_l1_misses = 0;
    p_l2_hits = 0;
    p_l2_misses = 0;
    p_l2_evictions = 0;
    p_autolock_skips = 0;
    p_back_invals = 0;
  }

let config t = t.cfg
let ncores t = Array.length t.l1s
let cluster_of_core t ~core = t.cluster_of.(core)
let line_size t = t.cfg.l1.line
let l2_sets t = t.cfg.l2.sets
let l2_ways t = t.cfg.l2.ways
let l2_set_of_addr t ~addr = addr / t.cfg.l2.line mod t.cfg.l2.sets

let eviction_set t ~l2_set ~base =
  let { sets; ways; line } = t.cfg.l2 in
  if l2_set < 0 || l2_set >= sets then invalid_arg "Cache.eviction_set: bad set";
  let first =
    let l0 = (base / (line * sets) * sets) + l2_set in
    if l0 * line >= base then l0 else l0 + sets
  in
  Array.init ways (fun k -> (first + (k * sets)) * line)

(* ---- per-level helpers ---- *)

let find lvl tag =
  let set = tag mod lvl.geo.sets in
  let base = set * lvl.geo.ways in
  let found = ref (-1) and w = ref 0 in
  while !found < 0 && !w < lvl.geo.ways do
    if Array.unsafe_get lvl.tags (base + !w) = tag then found := !w;
    incr w
  done;
  !found

let touch_way t lvl ~set ~way =
  t.tick <- t.tick + 1;
  Policy.touch t.cfg.policy ~state:lvl.pol ~off:(set * lvl.pol_words)
    ~ways:lvl.geo.ways ~way ~tick:t.tick

let invalid_way lvl ~set =
  let base = set * lvl.geo.ways in
  let found = ref (-1) and w = ref 0 in
  while !found < 0 && !w < lvl.geo.ways do
    if Array.unsafe_get lvl.tags (base + !w) < 0 then found := !w;
    incr w
  done;
  !found

(* Drop [tag] from [core]'s L1 and clear its inclusion bit in the cluster
   L2 (when the line is there). *)
let l1_invalidate t ~core tag =
  let l1 = t.l1s.(core) in
  let way = find l1 tag in
  if way >= 0 then begin
    l1.tags.((tag mod l1.geo.sets * l1.geo.ways) + way) <- -1;
    t.back_invals <- t.back_invals + 1
  end

let incl_clear l2 ~core tag =
  let way = find l2 tag in
  if way >= 0 then begin
    let i = (tag mod l2.geo.sets * l2.geo.ways) + way in
    l2.incl.(i) <- l2.incl.(i) land lnot (1 lsl core)
  end

(* Fill [tag] into [core]'s L1, evicting if the set is full; an evicted
   line loses its inclusion bit in the L2 (it may have none if it was
   installed under the AutoLock non-inclusive fallback). *)
let l1_fill t ~core tag =
  let l1 = t.l1s.(core) and l2 = t.l2s.(t.cluster_of.(core)) in
  let set = tag mod l1.geo.sets in
  let base = set * l1.geo.ways in
  let way =
    match invalid_way l1 ~set with
    | -1 ->
        let v =
          Policy.victim t.cfg.policy ~state:l1.pol ~off:(set * l1.pol_words)
            ~ways:l1.geo.ways ~locked:0 ~prng:t.prng
        in
        let old = l1.tags.(base + v) in
        if old >= 0 then begin
          t.l1_evictions <- t.l1_evictions + 1;
          incl_clear l2 ~core old
        end;
        v
    | w -> w
  in
  l1.tags.(base + way) <- tag;
  touch_way t l1 ~set ~way;
  let l2way = find l2 tag in
  if l2way >= 0 then begin
    let i = (tag mod l2.geo.sets * l2.geo.ways) + l2way in
    l2.incl.(i) <- l2.incl.(i) lor (1 lsl core)
  end

(* Fill [tag] into the cluster L2 on behalf of [core]. Under AutoLock a way
   is pinned iff its inclusion mask names any core other than the
   requester — a core may always re-evict its own lines. Returns false when
   every way is pinned (no allocation happened). *)
let l2_fill t ~core tag =
  let l2 = t.l2s.(t.cluster_of.(core)) in
  let set = tag mod l2.geo.sets in
  let base = set * l2.geo.ways in
  let way =
    match invalid_way l2 ~set with
    | -1 ->
        let locked =
          if not t.cfg.autolock then 0
          else begin
            let m = ref 0 and others = lnot (1 lsl core) in
            for w = 0 to l2.geo.ways - 1 do
              if l2.incl.(base + w) land others <> 0 then m := !m lor (1 lsl w)
            done;
            !m
          end
        in
        let v =
          Policy.victim t.cfg.policy ~state:l2.pol ~off:(set * l2.pol_words)
            ~ways:l2.geo.ways ~locked ~prng:t.prng
        in
        if v >= 0 then begin
          let old = l2.tags.(base + v) in
          t.l2_evictions <- t.l2_evictions + 1;
          (* Inclusive back-invalidation: every L1 holding the victim
             drops it. *)
          let mask = ref l2.incl.(base + v) in
          let c = ref 0 in
          while !mask <> 0 do
            if !mask land 1 <> 0 then l1_invalidate t ~core:!c old;
            mask := !mask lsr 1;
            incr c
          done
        end;
        v
    | w -> w
  in
  if way < 0 then begin
    t.autolock_skips <- t.autolock_skips + 1;
    false
  end
  else begin
    l2.tags.(base + way) <- tag;
    l2.incl.(base + way) <- 0;
    touch_way t l2 ~set ~way;
    true
  end

let touch t ~core ~addr =
  let tag = addr / t.cfg.l1.line in
  let l1 = t.l1s.(core) in
  let way = find l1 tag in
  if way >= 0 then begin
    t.l1_hits <- t.l1_hits + 1;
    touch_way t l1 ~set:(tag mod l1.geo.sets) ~way;
    0
  end
  else begin
    t.l1_misses <- t.l1_misses + 1;
    let l2 = t.l2s.(t.cluster_of.(core)) in
    let level =
      let l2way = find l2 tag in
      if l2way >= 0 then begin
        t.l2_hits <- t.l2_hits + 1;
        touch_way t l2 ~set:(tag mod l2.geo.sets) ~way:l2way;
        1
      end
      else begin
        t.l2_misses <- t.l2_misses + 1;
        ignore (l2_fill t ~core tag);
        2
      end
    in
    l1_fill t ~core tag;
    level
  end

let peek t ~core ~addr =
  let tag = addr / t.cfg.l1.line in
  if find t.l1s.(core) tag >= 0 then 0
  else if find t.l2s.(t.cluster_of.(core)) tag >= 0 then 1
  else 2

let publish t =
  if Obs.active () then begin
    let flush name cur prev =
      let d = cur - prev in
      if d > 0 then Obs.incr ~by:d name;
      cur
    in
    t.p_l1_hits <- flush "cache.l1.hits" t.l1_hits t.p_l1_hits;
    t.p_l1_misses <- flush "cache.l1.misses" t.l1_misses t.p_l1_misses;
    t.p_l2_hits <- flush "cache.l2.hits" t.l2_hits t.p_l2_hits;
    t.p_l2_misses <- flush "cache.l2.misses" t.l2_misses t.p_l2_misses;
    t.p_l2_evictions <- flush "cache.l2.evictions" t.l2_evictions t.p_l2_evictions;
    t.p_autolock_skips <-
      flush "cache.autolock_skips" t.autolock_skips t.p_autolock_skips;
    t.p_back_invals <-
      flush "cache.back_invalidations" t.back_invals t.p_back_invals
  end

let touch_range t ~core ~addr ~len =
  if len > 0 then begin
    let line = t.cfg.l1.line in
    let first = addr / line and last = (addr + len - 1) / line in
    for l = first to last do
      ignore (touch t ~core ~addr:(l * line))
    done;
    publish t
  end

let l1_stats t =
  { hits = t.l1_hits; misses = t.l1_misses; evictions = t.l1_evictions }

let l2_stats t =
  { hits = t.l2_hits; misses = t.l2_misses; evictions = t.l2_evictions }

let autolock_skips t = t.autolock_skips
let back_invalidations t = t.back_invals
