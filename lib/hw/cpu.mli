(** CPU cores.

    Each core carries its big.LITTLE type, its current TrustZone world, and
    occupancy accounting. The one observable the paper's attack needs is
    exactly what this module exposes to the rest of the simulation: while a
    core is in the secure world it cannot run normal-world tasks, so its
    pinned threads stall — the CPU-availability side channel. *)

type t

val create :
  engine:Satin_engine.Engine.t -> id:int -> core_type:Cycle_model.core_type -> t

val id : t -> int
val core_type : t -> Cycle_model.core_type
val world : t -> World.t

val set_world : t -> World.t -> unit
(** Switches worlds, updates accounting, and fires the registered hooks
    (in registration order). No-op if the world is unchanged. *)

val on_world_change : t -> (t -> World.t -> unit) -> unit
(** [on_world_change core f] registers [f], called as [f core new_world]
    after every world transition. The kernel scheduler and the GIC subscribe
    here. *)

val in_secure : t -> bool

val secure_time_total : t -> Satin_engine.Sim_time.t
(** Cumulative simulated time this core has spent in the secure world. *)

val secure_entries : t -> int
(** Number of normal→secure transitions so far. *)

val last_entry_time : t -> Satin_engine.Sim_time.t option
(** Instant of the most recent normal→secure transition. *)

val last_exit_time : t -> Satin_engine.Sim_time.t option
(** Instant of the most recent secure→normal transition (drives the
    post-introspection cache-refill penalty in the workload model). *)

val pp : Format.formatter -> t -> unit
