(** EL3 secure monitor (ARM Trusted Firmware model).

    The monitor performs world switches: it saves the normal-world context,
    transfers the core to S-EL1 for a payload of known simulated duration,
    and restores the normal world afterwards. The entry latency is the
    paper's [Ts_switch] (§IV-B1); while the switch and payload run, the core
    is in the secure world, its pinned normal tasks stall, and non-secure
    interrupts pend in the {!Gic}. *)

type t

val create :
  engine:Satin_engine.Engine.t ->
  gic:Gic.t ->
  cycle:Cycle_model.t ->
  prng:Satin_engine.Prng.t ->
  t

val enter_secure :
  t ->
  cpu:Cpu.t ->
  payload:(unit -> Satin_engine.Sim_time.t) ->
  ?on_exit:(unit -> unit) ->
  unit ->
  unit
(** [enter_secure t ~cpu ~payload ()] starts a world switch now:

    - the core leaves the normal world immediately (context save);
    - after a sampled [Ts_switch], [payload] runs. It performs its secure
      work as instantaneous OCaml side effects and returns the simulated
      duration that work occupies the core;
    - after that duration plus a sampled return-switch cost the core
      re-enters the normal world, pended non-secure interrupts are flushed,
      and [on_exit] (if any) runs.

    Raises [Invalid_argument] if the core is already in the secure world. *)

val payload_start_delay : t -> cpu:Cpu.t -> Satin_engine.Sim_time.t
(** Sample the entry latency [Ts_switch] for this core without switching —
    the §IV-B1 measurement campaign. *)

val switches : t -> int
(** Completed world round-trips. *)

val set_switch_fault :
  t -> (Satin_engine.Sim_time.t -> Satin_engine.Sim_time.t) option -> unit
(** [set_switch_fault t (Some f)] transforms every sampled world-switch cost
    through [f] — the [satin_inject] layer uses it to spike [Ts_switch]
    (e.g. a cold-cache or SMC-contention episode). The transformed cost must
    stay non-negative or the next sample raises [Invalid_argument]. [None]
    (the default) restores the bare cycle model. *)
