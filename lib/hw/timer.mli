(** ARM generic timer model.

    Each core owns private timers driven by the shared physical counter
    ([CNTPCT_EL0], here the simulation clock). The one that matters for SATIN
    is the {e secure} physical timer ([CNTPS_*_EL1]): its compare and control
    registers are accessible only at secure EL, so the normal world can
    neither observe nor reprogram the next introspection wake-up (§V-C).
    The same mechanism instantiated with a non-secure interrupt models the
    rich OS tick timer ([CNTP_*_EL0]).

    When the counter reaches the programmed compare value the timer raises
    its interrupt through the {!Gic}. *)

type t

val create :
  engine:Satin_engine.Engine.t -> gic:Gic.t -> cpu:Cpu.t -> irq:Gic.irq -> t
(** A timer block private to [cpu], wired to raise [irq]. *)

val arm_at : t -> Satin_engine.Sim_time.t -> unit
(** Program the compare register with an absolute counter value and enable
    the timer. Re-arming replaces any previously programmed deadline. A
    deadline in the past fires immediately (hardware behaviour for
    [CVAL <= CNTPCT]). *)

val arm_after : t -> Satin_engine.Sim_time.t -> unit

val disarm : t -> unit
(** Clear the enable bit ([CNTPS_CTL_EL1.ENABLE = 0]). *)

val armed : t -> bool

val deadline : t -> Satin_engine.Sim_time.t option

val counter : t -> Satin_engine.Sim_time.t
(** The shared physical counter value (simulation now). *)

val fired_count : t -> int

(** {1 Fault injection}

    Deterministic perturbation of timer programming, used by the
    [satin_inject] layer to model a flaky or hostile interrupt path. *)

type fault =
  | Deliver  (** program the compare register normally *)
  | Drop  (** swallow the write: the timer stays disarmed *)
  | Delay of Satin_engine.Sim_time.t
      (** postpone the programmed deadline by the given non-negative extra;
          {!arm_at} raises [Invalid_argument] on a negative delay *)

val set_fault_hook : t -> (deadline:Satin_engine.Sim_time.t -> fault) option -> unit
(** [set_fault_hook t (Some f)] consults [f] on every {!arm_at}/{!arm_after}
    with the (already now-clamped) deadline about to be programmed and
    applies the verdict. [None] (the default) restores normal behaviour. *)

val dropped_count : t -> int
(** Arm attempts swallowed by a [Drop] verdict. *)

val delayed_count : t -> int
(** Arm attempts postponed by a [Delay] verdict. *)
