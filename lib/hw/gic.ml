type group = Group0_secure | Group1_non_secure

type irq = int

type irq_desc = {
  group : group;
  name : string;
  mutable secure_handler : (core:int -> unit) option;
  mutable normal_handler : (core:int -> unit) option;
  mutable delivered : int;
}

type t = {
  table : (irq, irq_desc) Hashtbl.t;
  pending : irq Queue.t array; (* per-core pended non-secure interrupts *)
}

let create ~ncores =
  if ncores <= 0 then invalid_arg "Gic.create: ncores must be positive";
  { table = Hashtbl.create 16; pending = Array.init ncores (fun _ -> Queue.create ()) }

let define t ~irq ~group ~name =
  if Hashtbl.mem t.table irq then
    invalid_arg (Printf.sprintf "Gic.define: irq %d (%s) already defined" irq name);
  Hashtbl.replace t.table irq
    { group; name; secure_handler = None; normal_handler = None; delivered = 0 }

let desc t irq =
  match Hashtbl.find_opt t.table irq with
  | Some d -> d
  | None -> invalid_arg (Printf.sprintf "Gic: undeclared irq %d" irq)

let set_secure_handler t ~irq f = (desc t irq).secure_handler <- Some f
let set_normal_handler t ~irq f = (desc t irq).normal_handler <- Some f

let deliver d ~core =
  let handler =
    match d.group with
    | Group0_secure -> d.secure_handler
    | Group1_non_secure -> d.normal_handler
  in
  match handler with
  | Some f ->
      d.delivered <- d.delivered + 1;
      f ~core
  | None ->
      invalid_arg (Printf.sprintf "Gic: irq %s has no handler for its route" d.name)

let raise_irq t ~core ~world_of_core ~irq =
  let d = desc t irq in
  match d.group, world_of_core with
  | Group0_secure, _ -> deliver d ~core
  | Group1_non_secure, World.Normal -> deliver d ~core
  | Group1_non_secure, World.Secure ->
      (* SCR_EL3.IRQ = 0: the normal-world interrupt waits for world exit. *)
      Queue.add irq t.pending.(core)

let flush_pending t ~core ~world_of_core =
  let q = t.pending.(core) in
  (* Drain a snapshot: a delivered handler may re-raise interrupts, and it
     may even re-enter the secure world — re-route each pended interrupt
     against the core's CURRENT world so the remainder pends again instead
     of running normal-world handlers on a secure core. *)
  let drained = Queue.create () in
  Queue.transfer q drained;
  Queue.iter
    (fun irq -> raise_irq t ~core ~world_of_core:(world_of_core ()) ~irq)
    drained

let pending_count t ~core = Queue.length t.pending.(core)
let delivered_count t ~irq = (desc t irq).delivered
