(** Machine assembly.

    A platform bundles the simulation engine, the deterministic PRNG, the
    timing model, physical memory, the CPU cores, the interrupt controller,
    per-core secure and non-secure timers, and the EL3 monitor. {!juno_r1}
    builds the paper's evaluation board: four Cortex-A53 cores (ids 0–3) and
    two Cortex-A57 cores (ids 4–5). *)

type t = {
  engine : Satin_engine.Engine.t;
  prng : Satin_engine.Prng.t;
  cycle : Cycle_model.t;
  memory : Memory.t;
  cores : Cpu.t array;
  gic : Gic.t;
  secure_timers : Timer.t array;
      (** Per-core [CNTPS] secure physical timer, wired to
          {!secure_timer_irq}. *)
  tick_timers : Timer.t array;
      (** Per-core [CNTP] non-secure timer, wired to {!tick_irq}; the rich
          OS programs these for its scheduling clock. *)
  monitor : Monitor.t;
  clusters : int array array;
      (** cluster index -> member core ids: maximal runs of consecutive
          same-type cores (the Juno's per-cluster shared L2 layout) *)
  cache : Satin_cache.Cache.t;
      (** the modeled L1/L2 hierarchy over {!clusters} *)
}

val secure_timer_irq : Gic.irq
(** PPI 29, Group 0 (secure). *)

val tick_irq : Gic.irq
(** PPI 30, Group 1 (non-secure). *)

val create :
  ?seed:int ->
  ?cycle:Cycle_model.t ->
  ?mem_size:int ->
  ?cache:Satin_cache.Cache.config ->
  core_types:Cycle_model.core_type array ->
  unit ->
  t
(** Default memory size is 32 MiB — comfortably above the 11.4 MiB kernel
    image plus secure carve-out. Default seed is 42; default cache geometry
    is {!Satin_cache.Cache.default_config}. The cache's randomness (drawn
    only under the [Rand] policy) comes from a stream derived purely from
    the seed, never from the platform PRNG. *)

val juno_r1 :
  ?seed:int -> ?cycle:Cycle_model.t -> ?cache:Satin_cache.Cache.config ->
  unit -> t

val ncores : t -> int
val core : t -> int -> Cpu.t
val split_prng : t -> Satin_engine.Prng.t
(** A PRNG stream independent of the platform's own. *)

val clusters_of_core_types : Cycle_model.core_type array -> int array array
(** Maximal runs of consecutive equal core types, as core-id arrays. *)

val clusters : t -> int array array

val cluster_of_core : t -> core:int -> int
(** The cluster whose L2 [core] shares — derived from the computed
    topology, valid on any core mix (not just the Juno's 4+4). *)

val cores_of_type : t -> Cycle_model.core_type -> Cpu.t list
