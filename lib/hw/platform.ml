module Engine = Satin_engine.Engine
module Prng = Satin_engine.Prng
module Cache = Satin_cache.Cache

type t = {
  engine : Engine.t;
  prng : Prng.t;
  cycle : Cycle_model.t;
  memory : Memory.t;
  cores : Cpu.t array;
  gic : Gic.t;
  secure_timers : Timer.t array;
  tick_timers : Timer.t array;
  monitor : Monitor.t;
  clusters : int array array;
  cache : Cache.t;
}

let secure_timer_irq = 29
let tick_irq = 30

(* Cluster topology: consecutive cores of the same type share an L2 (the
   Juno's big.LITTLE layout; a homogeneous platform is one cluster). *)
let clusters_of_core_types types =
  let groups = ref [] and current = ref [ 0 ] in
  for i = 1 to Array.length types - 1 do
    if Cycle_model.equal_core_type types.(i) types.(i - 1) then
      current := i :: !current
    else begin
      groups := List.rev !current :: !groups;
      current := [ i ]
    end
  done;
  groups := List.rev !current :: !groups;
  Array.of_list (List.rev_map Array.of_list !groups)

let create ?(seed = 42) ?(cycle = Cycle_model.default)
    ?(mem_size = 32 * 1024 * 1024) ?(cache = Cache.default_config) ~core_types
    () =
  let ncores = Array.length core_types in
  if ncores = 0 then invalid_arg "Platform.create: need at least one core";
  let engine = Engine.create () in
  let prng = Prng.create seed in
  let memory = Memory.create ~size:mem_size in
  let cores =
    Array.mapi (fun id core_type -> Cpu.create ~engine ~id ~core_type) core_types
  in
  let gic = Gic.create ~ncores in
  Gic.define gic ~irq:secure_timer_irq ~group:Gic.Group0_secure
    ~name:"cntps (secure physical timer)";
  Gic.define gic ~irq:tick_irq ~group:Gic.Group1_non_secure
    ~name:"cntp (non-secure physical timer)";
  let monitor = Monitor.create ~engine ~gic ~cycle ~prng in
  let timer_for irq cpu = Timer.create ~engine ~gic ~cpu ~irq in
  let clusters = clusters_of_core_types core_types in
  (* The cache draws only for the Rand policy, from a stream derived purely
     from the seed: building (or replacing) a cache never advances the
     platform PRNG, so every pre-cache experiment output is unchanged. *)
  let cache_prng = Prng.create (Prng.derive seed 0xCAC4E) in
  {
    engine;
    prng;
    cycle;
    memory;
    cores;
    gic;
    secure_timers = Array.map (timer_for secure_timer_irq) cores;
    tick_timers = Array.map (timer_for tick_irq) cores;
    monitor;
    clusters;
    cache = Cache.create ~prng:cache_prng ~clusters cache;
  }

let juno_r1 ?seed ?cycle ?cache () =
  let open Cycle_model in
  create ?seed ?cycle ?cache ~core_types:[| A53; A53; A53; A53; A57; A57 |] ()

let ncores t = Array.length t.cores
let core t i = t.cores.(i)
let split_prng t = Prng.split t.prng
let clusters t = t.clusters
let cluster_of_core t ~core = Cache.cluster_of_core t.cache ~core

let cores_of_type t ct =
  Array.to_list t.cores
  |> List.filter (fun c -> Cycle_model.equal_core_type (Cpu.core_type c) ct)
