(** Calibrated timing model for the simulated Juno r1 board.

    All constants come from the paper's measurements (§IV-B, Table I): per-byte
    introspection costs on Cortex-A53 ("LITTLE") and Cortex-A57 ("big") cores,
    the EL3 world-switch latency, the rootkit's trace-recovery time, and the
    cross-core report-delay tail that drives KProber's probing threshold.

    Measured min/avg/max triples are reproduced by sampling a triangular
    distribution with those bounds and mode chosen so the distribution mean
    matches the reported average — enough to reproduce the paper's 50-round
    avg/max/min tables without pretending to know the silicon's true law. *)

type core_type = A53 | A57

val pp_core_type : Format.formatter -> core_type -> unit
val core_type_to_string : core_type -> string
val equal_core_type : core_type -> core_type -> bool

(** A measured (min, avg, max) timing triple, in seconds. *)
type triple = { t_min : float; t_avg : float; t_max : float }

val triple : min_s:float -> avg_s:float -> max_s:float -> triple
(** Validates [min <= avg <= max]. *)

val sample : Satin_engine.Prng.t -> triple -> float
(** A deviate in [\[t_min, t_max\]] whose mean is [t_avg] (triangular law,
    mode solved from the mean). *)

val sample_time : Satin_engine.Prng.t -> triple -> Satin_engine.Sim_time.t

(** Timing parameters of a platform. *)
type t = {
  hash_1byte : core_type -> triple;
      (** Secure world direct-hash cost per byte (Table I, "Hash 1-Byte"). *)
  snapshot_1byte : core_type -> triple;
      (** Snapshot-then-hash cost per byte (Table I, "Snapshot 1-byte"). *)
  world_switch : core_type -> triple;
      (** EL3 dispatcher cost from secure-timer IRQ to S-EL1 handler
          (§IV-B1: 2.38–3.60 µs, similar on both core types). *)
  recover_8bytes : core_type -> triple;
      (** Rootkit's time to restore its 8-byte syscall-table patch
          (§IV-B2: A53 avg 5.80 ms, A57 avg 4.96 ms). *)
  cross_read_delay : triple;
      (** Common-case cross-core report-read latency component of
          [Tns_threshold]. *)
  cross_read_tail : triple;
      (** Rare abnormal cross-core read delay (§IV-B2: up to ~1.3 ms). *)
  cross_read_tail_rate_hz : float;
      (** Base per-sample probability of a tail event; an additional
          logarithmic term grows it with the probing period so longer
          windows raise the observed average threshold (Table II). Set to
          0 to disable tails entirely. *)
  tick_hz : int;
      (** Rich OS scheduling-clock frequency (CONFIG_HZ; lsk-4.4 arm64
          defaults to 250, within the paper's 100..1000 bound). *)
  rt_sleep : float;
      (** KProber-II thread sleep between probe rounds
          (§IV-A1: [Tsleep] = 2×10⁻⁴ s, taken as [Tns_sched]). *)
  l1_hit : triple;  (** load served by the core's L1 (~4 ns) *)
  l2_hit : triple;  (** load served by the cluster's shared L2 (~20 ns) *)
  cache_miss : triple;  (** load served by DRAM (~140 ns) *)
}

val default : t
(** The Juno r1 calibration described above. *)

val smm_like : t
(** §VII-D portability: SATIN only needs multi-core, a high-privileged mode,
    and a secure timer. This preset models a generic x86-SMM-style TEE:
    identical cores (both "types" share the A57 byte rates) and an
    order-of-magnitude slower privileged-mode entry (~30 µs SMI-style),
    which shrinks — but does not break — the Equation (2) area bound. *)

val load_latency : Satin_engine.Prng.t -> t -> level:int -> float
(** One sampled load-to-use latency, keyed by the cache level that served
    the access as {!Satin_cache.Cache.touch} reports it: [0] L1 hit, [1]
    L2 hit, anything else DRAM. The modeled cache probers time probes with
    this instead of the fixed hit/miss constants of the abstract mode. *)

val per_byte_duration :
  Satin_engine.Prng.t -> triple -> bytes:int -> Satin_engine.Sim_time.t
(** [per_byte_duration prng triple ~bytes] draws one per-byte rate and
    multiplies: a whole introspection round observes a single effective rate,
    matching how the paper derives Table I from whole-region timings. *)

val cross_staleness_mean : period_s:float -> float
(** Mean cross-core report staleness for a given probing period, in seconds.

    §IV-B2 observes the average probing threshold growing with the probing
    period (Table II: 2.61×10⁻⁴ s at 8 s up to 6.61×10⁻⁴ s at 300 s) and
    attributes it to rare large cross-core reading delays whose occurrence
    rises with the period (cold caches, timer coalescing after long sleeps).
    The fit is logarithmic: [2.61e-4 + 1.105e-4 · ln(period/8)], floored at
    6×10⁻⁵ s for sub-second periods such as KProber-II's 200 µs rounds. *)

val sample_cross_staleness :
  Satin_engine.Prng.t -> t -> period_s:float -> float
(** One observed staleness: lognormal spread around
    {!cross_staleness_mean}, plus — with probability growing with the
    period — an additive tail drawn from [cross_read_tail] (the paper's
    "abnormal large delay ... up to 1.3×10⁻³ s"). *)
