module Prng = Satin_engine.Prng
module Sim_time = Satin_engine.Sim_time

type core_type = A53 | A57

let core_type_to_string = function A53 -> "A53" | A57 -> "A57"
let pp_core_type fmt c = Format.pp_print_string fmt (core_type_to_string c)

let equal_core_type a b =
  match a, b with
  | A53, A53 | A57, A57 -> true
  | A53, A57 | A57, A53 -> false

type triple = { t_min : float; t_avg : float; t_max : float }

let triple ~min_s ~avg_s ~max_s =
  if not (min_s <= avg_s && avg_s <= max_s) then
    invalid_arg "Cycle_model.triple: need min <= avg <= max";
  { t_min = min_s; t_avg = avg_s; t_max = max_s }

(* Triangular distribution on [t_min, t_max] with mode solved from the mean:
   mean = (min + mode + max) / 3, hence mode = 3*avg - min - max, clamped to
   the support when the reported triple is too skewed for a triangular law. *)
let mode_of t =
  Float.min t.t_max (Float.max t.t_min ((3.0 *. t.t_avg) -. t.t_min -. t.t_max))

let sample prng t =
  if t.t_max = t.t_min then t.t_avg
  else Prng.triangular prng ~low:t.t_min ~mode:(mode_of t) ~high:t.t_max

let sample_time prng t = Sim_time.of_sec_f (sample prng t)

type t = {
  hash_1byte : core_type -> triple;
  snapshot_1byte : core_type -> triple;
  world_switch : core_type -> triple;
  recover_8bytes : core_type -> triple;
  cross_read_delay : triple;
  cross_read_tail : triple;
  cross_read_tail_rate_hz : float;
  tick_hz : int;
  rt_sleep : float;
  l1_hit : triple;
  l2_hit : triple;
  cache_miss : triple;
}

let hash_a53 = triple ~min_s:9.23e-9 ~avg_s:1.07e-8 ~max_s:1.14e-8
let hash_a57 = triple ~min_s:6.67e-9 ~avg_s:6.71e-9 ~max_s:7.50e-9
let snap_a53 = triple ~min_s:9.24e-9 ~avg_s:1.08e-8 ~max_s:1.57e-8
let snap_a57 = triple ~min_s:6.67e-9 ~avg_s:6.75e-9 ~max_s:7.83e-9

(* §IV-B1: dispatcher latency 2.38–3.60 µs, "similar" on A53 and A57. *)
let switch_any = triple ~min_s:2.38e-6 ~avg_s:2.95e-6 ~max_s:3.60e-6

(* §IV-B2: average recovery 5.80 ms (A53) / 4.96 ms (A57); §IV-C uses
   6.13 ms as the worst observed case. *)
let recover_a53 = triple ~min_s:5.42e-3 ~avg_s:5.80e-3 ~max_s:6.13e-3
let recover_a57 = triple ~min_s:4.58e-3 ~avg_s:4.96e-3 ~max_s:5.34e-3

let default =
  {
    hash_1byte = (function A53 -> hash_a53 | A57 -> hash_a57);
    snapshot_1byte = (function A53 -> snap_a53 | A57 -> snap_a57);
    world_switch = (fun _ -> switch_any);
    recover_8bytes = (function A53 -> recover_a53 | A57 -> recover_a57);
    (* Common-case cross-core gap: sub-tick skew, ~1e-4 s scale (Table II's
       8 s-period minimum is 1.07e-4 s). *)
    cross_read_delay = triple ~min_s:0.9e-4 ~avg_s:1.9e-4 ~max_s:3.6e-4;
    (* Rare abnormal delay, observed up to ~1.3e-3 s and up to 1.77e-3 s in
       the combined threshold. *)
    cross_read_tail = triple ~min_s:4.0e-4 ~avg_s:9.0e-4 ~max_s:1.45e-3;
    cross_read_tail_rate_hz = 0.004;
    tick_hz = 250;
    rt_sleep = 2.0e-4;
    (* Load-to-use latencies by serving level, ARMageddon-scale: ~4 ns for
       an L1 hit, ~20 ns for an L2 hit, ~140 ns for DRAM — the same 20/140
       split the abstract cache prober already thresholds on. *)
    l1_hit = triple ~min_s:3.0e-9 ~avg_s:4.0e-9 ~max_s:6.0e-9;
    l2_hit = triple ~min_s:1.6e-8 ~avg_s:2.0e-8 ~max_s:2.6e-8;
    cache_miss = triple ~min_s:1.1e-7 ~avg_s:1.4e-7 ~max_s:1.8e-7;
  }

let load_latency prng t ~level =
  sample prng
    (match level with
    | 0 -> t.l1_hit
    | 1 -> t.l2_hit
    | _ -> t.cache_miss)

let smm_switch = triple ~min_s:2.4e-5 ~avg_s:3.0e-5 ~max_s:3.6e-5

let smm_like =
  {
    default with
    hash_1byte = (fun _ -> hash_a57);
    snapshot_1byte = (fun _ -> snap_a57);
    world_switch = (fun _ -> smm_switch);
    recover_8bytes = (fun _ -> recover_a57);
  }

let cross_staleness_mean ~period_s =
  let base = 2.61e-4 and slope = 1.105e-4 in
  Float.max 6e-5 (base +. (slope *. log (period_s /. 8.0)))

(* The prober's per-round threshold is the max over one staleness sample per
   reported core (the board caches one draw per target per round); dividing
   the target mean by an empirical max-of-n factor keeps the observed
   average of round maxima on Table II's curve. *)
let max_of_n_adjust = 2.0

let sample_cross_staleness prng t ~period_s =
  let median = cross_staleness_mean ~period_s /. max_of_n_adjust in
  let common = median *. Prng.lognormal prng ~mu:0.0 ~sigma:0.55 in
  let p_tail =
    Float.min 0.02
      (t.cross_read_tail_rate_hz
      +. (0.002 *. log (Float.max 1.0 (period_s /. 8.0))))
  in
  if Prng.bernoulli prng p_tail then common +. sample prng t.cross_read_tail
  else common

let per_byte_duration prng t ~bytes =
  if bytes < 0 then invalid_arg "Cycle_model.per_byte_duration: negative size";
  let rate = sample prng t in
  Sim_time.of_sec_f (rate *. float_of_int bytes)
