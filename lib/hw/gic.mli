(** Generic Interrupt Controller model.

    Interrupts belong to Group 0 (secure) or Group 1 non-secure, as in GICv2
    on Juno. The routing rules the paper depends on (§II-B, §V-B):

    - A secure interrupt is always delivered to its secure-world handler (the
      EL3 monitor path), even if the core is running the normal world — this
      is how SATIN's secure timer wakes the introspection.
    - A non-secure interrupt raised while its target core is executing in the
      secure world is {e pended}, not delivered: SATIN configures
      [SCR_EL3.IRQ = 0] so the integrity check cannot be preempted by the
      normal world. Pended interrupts are delivered when the core returns to
      the normal world.

    Handlers receive the core id on which the interrupt is taken. *)

type t

type group = Group0_secure | Group1_non_secure

type irq = int
(** Interrupt identifier (a small integer, e.g. 29 for the per-core secure
    physical timer PPI). *)

val create : ncores:int -> t

val define : t -> irq:irq -> group:group -> name:string -> unit
(** Declares an interrupt. Redefinition raises [Invalid_argument]. *)

val set_secure_handler : t -> irq:irq -> (core:int -> unit) -> unit
val set_normal_handler : t -> irq:irq -> (core:int -> unit) -> unit

val raise_irq : t -> core:int -> world_of_core:World.t -> irq:irq -> unit
(** Routes per the rules above. Raising an undeclared interrupt, or one whose
    route has no handler, raises [Invalid_argument] — a simulation bug, not a
    modelled condition. *)

val flush_pending : t -> core:int -> world_of_core:(unit -> World.t) -> unit
(** Re-routes (in arrival order) all non-secure interrupts pended while the
    core was in the secure world; [world_of_core] is consulted per delivery
    because a delivered handler may itself re-enter the secure world, in
    which case the remainder pends again. The monitor calls this on world
    exit. *)

val pending_count : t -> core:int -> int

val delivered_count : t -> irq:irq -> int
(** Total deliveries of an interrupt across all cores (for tests). *)
