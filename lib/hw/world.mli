(** TrustZone execution worlds.

    ARMv8-A partitions execution into a normal world (EL0/EL1/EL2) and a
    secure world (S-EL0/S-EL1), mediated by the EL3 secure monitor. A core is
    in exactly one world at any instant; the secure world may access normal
    world resources but not vice versa. *)

type t = Normal | Secure

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
