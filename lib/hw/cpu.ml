module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time

type t = {
  engine : Engine.t;
  id : int;
  core_type : Cycle_model.core_type;
  mutable world : World.t;
  mutable hooks : (t -> World.t -> unit) list; (* reverse registration order *)
  mutable secure_time_total : Sim_time.t;
  mutable secure_entries : int;
  mutable entered_secure_at : Sim_time.t option;
  mutable exited_secure_at : Sim_time.t option;
}

let create ~engine ~id ~core_type =
  {
    engine;
    id;
    core_type;
    world = World.Normal;
    hooks = [];
    secure_time_total = Sim_time.zero;
    secure_entries = 0;
    entered_secure_at = None;
    exited_secure_at = None;
  }

let id t = t.id
let core_type t = t.core_type
let world t = t.world
let in_secure t = World.equal t.world World.Secure
let on_world_change t f = t.hooks <- f :: t.hooks
let secure_time_total t = t.secure_time_total
let secure_entries t = t.secure_entries
let last_entry_time t = t.entered_secure_at
let last_exit_time t = t.exited_secure_at

let set_world t w =
  if not (World.equal t.world w) then begin
    let now = Engine.now t.engine in
    (match w with
    | World.Secure ->
        t.secure_entries <- t.secure_entries + 1;
        t.entered_secure_at <- Some now
    | World.Normal -> (
        match t.entered_secure_at with
        | Some entry ->
            t.secure_time_total <-
              Sim_time.add t.secure_time_total (Sim_time.diff now entry);
            t.exited_secure_at <- Some now
        | None -> ()));
    t.world <- w;
    List.iter (fun f -> f t w) (List.rev t.hooks)
  end

let pp fmt t =
  Format.fprintf fmt "core%d(%a,%a)" t.id Cycle_model.pp_core_type t.core_type
    World.pp t.world
