(** Physical memory with TrustZone security attributes.

    Memory is a flat byte array partitioned into named regions, each tagged
    secure or non-secure (as the TZASC does on real silicon). Accesses carry
    the issuing world: the secure world may touch everything; a normal-world
    access to a secure region raises {!Access_violation}. This is the
    isolation boundary the whole paper rests on — the wake-up time queue,
    area set, and authorized hash table live in a secure region the rootkit
    cannot read. *)

type t

type security = Secure_region | Non_secure_region

type region = {
  name : string;
  base : int;
  size : int;
  security : security;
}

exception Access_violation of { world : World.t; addr : int; region : string }

exception Bad_address of int

val create : size:int -> t
(** Fresh memory of [size] bytes, zero-filled, with no regions declared.
    Addresses with no declared region are treated as non-secure DRAM. *)

val size : t -> int

val add_region :
  t -> name:string -> base:int -> size:int -> security:security -> region
(** Declares a region. Raises [Invalid_argument] on overlap with an existing
    region or if it exceeds the address space. *)

val region_of_addr : t -> int -> region option

val regions : t -> region list
(** Declared regions, sorted by base address. *)

val check_access : t -> world:World.t -> addr:int -> unit
(** Raises {!Access_violation} or {!Bad_address} as appropriate. *)

val read_byte : t -> world:World.t -> addr:int -> int

val write_byte : t -> world:World.t -> addr:int -> int -> unit

val read_bytes : t -> world:World.t -> addr:int -> len:int -> bytes
(** A snapshot copy (the "capture then analyze" introspection style). *)

val write_string : t -> world:World.t -> addr:int -> string -> unit

val read_int64_le : t -> world:World.t -> addr:int -> int64
val write_int64_le : t -> world:World.t -> addr:int -> int64 -> unit
(** Little-endian 64-bit accessors (the syscall table, PCB fields, and
    secure-memory cells are all word-granular). *)

val fold_range :
  t -> world:World.t -> addr:int -> len:int -> init:'a -> f:('a -> int -> 'a) -> 'a
(** Left fold over a byte range without copying (the "direct hash" style). *)

val with_range_ro :
  t -> world:World.t -> addr:int -> len:int -> f:(Bytes.t -> int -> 'a) -> 'a
(** [with_range_ro t ~world ~addr ~len ~f] validates [\[addr, addr+len)]
    once — same checks as a read — and applies [f backing addr] directly to
    the backing store: the read-only bulk fast path (no per-byte closure, no
    snapshot copy) that {!Satin_introspect.Hash.hash_region} runs its
    specialized loops over. [f] must treat the bytes as read-only, stay
    within [\[addr, addr+len)], and must not let the buffer escape. *)

external unsafe_get_int64_ne : Bytes.t -> int -> int64 = "%caml_bytes_get64u"
(** Native-endian 64-bit load with {e no} bounds check, for word-level
    sweeps over a window an enclosing {!with_range_ro} already validated.
    Only call it with [offset + 8 <=] the validated window's end; anything
    else is undefined behaviour, not an exception. *)

external unsafe_string_get_int64_ne : string -> int -> int64
  = "%caml_string_get64u"
(** {!unsafe_get_int64_ne} over a [string] (golden images are immutable
    strings); the same hoisted-bounds-check contract applies. *)

val blit_within : t -> world:World.t -> src:int -> dst:int -> len:int -> unit

type guard
(** Registration token for a write guard. *)

exception Write_trapped of { addr : int; guard_name : string }

val add_write_guard :
  t ->
  name:string ->
  base:int ->
  len:int ->
  decide:(addr:int -> len:int -> [ `Allow | `Deny ]) ->
  guard
(** Page-protection model: normal-world writes touching
    [\[base, base+len)] are first submitted to [decide]; [`Deny] aborts the
    write with {!Write_trapped} before any byte lands. Secure-world writes
    bypass guards (the hypervisor/secure world owns the page tables). This
    is the hook synchronous introspection (SPROBES / TZ-RKP style) builds
    on. *)

val remove_write_guard : t -> guard -> unit

val disable_write_guard : guard -> unit
(** The §VII-A attack: a write-what-where exploit flips the page-table AP
    bits so the guarded range becomes writable {e without} any trap — the
    guard object remains registered (the defender believes the hook is in
    place) but no longer fires. *)

val guard_active : guard -> bool

type watcher
(** Registration token for a write watcher. *)

val add_write_watcher : t -> (addr:int -> len:int -> unit) -> watcher
(** [add_write_watcher t f] calls [f ~addr ~len] after every successful
    write. Used by an in-progress introspection scan to notice normal-world
    writes racing with its scan front (the TOCTTOU window of §IV-B1). *)

val remove_write_watcher : t -> watcher -> unit

(** {1 Write generations}

    Host-side dirty tracking riding the same path as write watchers: every
    successful write bumps a global monotonic counter and stamps it onto the
    4 KiB page(s) it touched (one array store for the common single-page
    write, zero allocation). This is simulator metadata — like watchers it
    is not architecturally visible to either world — and it is what lets the
    incremental checker re-hash only blocks whose stamp advanced. *)

val gen_page_size : int
(** Granularity of generation stamps, in bytes (4096). *)

val write_generation : t -> int
(** Current value of the global write counter (0 for fresh memory). *)

val generation : t -> addr:int -> len:int -> int
(** Max stamp over all pages covering [\[addr, addr+len)]. A cached artifact
    computed when this returned [g] is stale iff a later call returns
    [> g]. Raises [Bad_address] / [Invalid_argument] on bad ranges. *)

val bump_generation : t -> addr:int -> len:int -> unit
(** Bulk invalidation: stamps the covered pages with a fresh generation
    without writing any byte or notifying watchers. For callers that mutate
    the backing store out-of-band and must force downstream caches to
    re-derive. *)
