module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Prng = Satin_engine.Prng
module Obs = Satin_obs.Obs

type t = {
  engine : Engine.t;
  gic : Gic.t;
  cycle : Cycle_model.t;
  prng : Prng.t;
  mutable switches : int;
  mutable switch_fault : (Sim_time.t -> Sim_time.t) option;
}

let create ~engine ~gic ~cycle ~prng =
  { engine; gic; cycle; prng; switches = 0; switch_fault = None }

let set_switch_fault t f = t.switch_fault <- f

let sample_switch t ~cpu =
  let cost =
    Cycle_model.sample_time t.prng
      (t.cycle.Cycle_model.world_switch (Cpu.core_type cpu))
  in
  match t.switch_fault with
  | None -> cost
  | Some f ->
      let cost = f cost in
      if Sim_time.is_negative cost then
        invalid_arg "Monitor switch fault: transformed cost is negative";
      cost

let payload_start_delay t ~cpu = sample_switch t ~cpu

let enter_secure t ~cpu ~payload ?on_exit () =
  if Cpu.in_secure cpu then
    invalid_arg
      (Printf.sprintf "Monitor.enter_secure: core %d already secure" (Cpu.id cpu));
  let entry_cost = sample_switch t ~cpu in
  if Obs.active () then begin
    let core = Cpu.id cpu in
    Obs.incr "monitor.smc_calls" ~labels:[ ("core", string_of_int core) ];
    Obs.observe_time "monitor.switch_entry_cost" entry_cost;
    Obs.span_begin ~time:(Engine.now t.engine) ~track:core ~cat:"world"
      "secure-world"
  end;
  Cpu.set_world cpu World.Secure;
  ignore
    (Engine.schedule t.engine ~after:entry_cost (fun () ->
         let duration = payload () in
         if Sim_time.is_negative duration then
           invalid_arg "Monitor.enter_secure: payload returned negative duration";
         let exit_cost = sample_switch t ~cpu in
         ignore
           (Engine.schedule t.engine ~after:(Sim_time.add duration exit_cost)
              (fun () ->
                Cpu.set_world cpu World.Normal;
                t.switches <- t.switches + 1;
                if Obs.active () then begin
                  Obs.span_end ~time:(Engine.now t.engine) ~track:(Cpu.id cpu);
                  Obs.incr "monitor.world_switches"
                end;
                Gic.flush_pending t.gic ~core:(Cpu.id cpu)
                  ~world_of_core:(fun () -> Cpu.world cpu);
                match on_exit with Some f -> f () | None -> ()))))

let switches t = t.switches
