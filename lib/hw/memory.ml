type security = Secure_region | Non_secure_region

type region = {
  name : string;
  base : int;
  size : int;
  security : security;
}

type watcher = { mutable active : bool; notify : addr:int -> len:int -> unit }

type guard = {
  guard_name : string;
  g_base : int;
  g_len : int;
  decide : addr:int -> len:int -> [ `Allow | `Deny ];
  mutable g_active : bool;
}

exception Write_trapped of { addr : int; guard_name : string }

type t = {
  data : Bytes.t;
  gens : int array; (* per-page stamp: write_gen of the last write touching it *)
  mutable write_gen : int;
  mutable region_list : region list; (* sorted by base *)
  mutable watchers : watcher list;
  mutable guards : guard list;
}

exception Access_violation of { world : World.t; addr : int; region : string }

exception Bad_address of int

(* Generation granularity. 4 KiB matches the architectural page size the
   paper's areas are laid out on, and is the block size the incremental
   checker caches digests at — one int stamp per page keeps the metadata at
   0.02% of memory while a single-byte write still invalidates exactly one
   cached block. *)
let gen_page_bits = 12
let gen_page_size = 1 lsl gen_page_bits

let create ~size =
  if size <= 0 then invalid_arg "Memory.create: size must be positive";
  {
    data = Bytes.make size '\000';
    gens = Array.make (((size - 1) lsr gen_page_bits) + 1) 0;
    write_gen = 0;
    region_list = [];
    watchers = [];
    guards = [];
  }

let size t = Bytes.length t.data

let overlaps a b =
  a.base < b.base + b.size && b.base < a.base + a.size

let add_region t ~name ~base ~size ~security =
  if base < 0 || size <= 0 || base + size > Bytes.length t.data then
    invalid_arg (Printf.sprintf "Memory.add_region %s: out of address space" name);
  let r = { name; base; size; security } in
  List.iter
    (fun existing ->
      if overlaps existing r then
        invalid_arg
          (Printf.sprintf "Memory.add_region %s: overlaps region %s" name
             existing.name))
    t.region_list;
  t.region_list <-
    List.sort (fun a b -> compare a.base b.base) (r :: t.region_list);
  r

let region_of_addr t addr =
  List.find_opt (fun r -> addr >= r.base && addr < r.base + r.size) t.region_list

let regions t = t.region_list

(* Closure-free region walk: [write_byte] sits on workload inner loops and
   must not allocate, so no [find_opt]/[Some] on the hit path. Regions never
   overlap, so the first containing region decides. *)
let rec check_normal_access rs ~world ~addr =
  match rs with
  | [] -> ()
  | r :: rest ->
      if addr >= r.base && addr < r.base + r.size then begin
        if r.security = Secure_region then
          raise (Access_violation { world; addr; region = r.name })
      end
      else check_normal_access rest ~world ~addr

let check_access t ~world ~addr =
  if addr < 0 || addr >= Bytes.length t.data then raise (Bad_address addr);
  match world with
  | World.Secure -> ()
  | World.Normal -> check_normal_access t.region_list ~world ~addr

(* Range checks validate only the end regions plus any secure region inside;
   for the access patterns here (ranges either fully secure or fully
   non-secure) checking every byte's region would be wasted work, but a range
   straddling into a secure region must still trap, so we scan region
   boundaries, not bytes. *)
let rec check_normal_range rs ~world ~addr ~len =
  match rs with
  | [] -> ()
  | r :: rest ->
      if r.security = Secure_region && r.base < addr + len
         && addr < r.base + r.size
      then raise (Access_violation { world; addr; region = r.name })
      else check_normal_range rest ~world ~addr ~len

let check_range t ~world ~addr ~len =
  if len < 0 then invalid_arg "Memory: negative length";
  if addr < 0 || addr + len > Bytes.length t.data then raise (Bad_address addr);
  match world with
  | World.Secure -> ()
  | World.Normal -> check_normal_range t.region_list ~world ~addr ~len

let read_byte t ~world ~addr =
  check_access t ~world ~addr;
  Char.code (Bytes.get t.data addr)

let rec notify_watchers ws ~addr ~len =
  match ws with
  | [] -> ()
  | w :: rest ->
      if w.active then w.notify ~addr ~len;
      notify_watchers rest ~addr ~len

(* Every successful write lands here: bump the global write counter, stamp
   the covered pages (one array store for the single-page common case), then
   fan out to watchers. Stamping precedes notification so a watcher that
   reads generations sees the write it is being told about. *)
let notify_write t ~addr ~len =
  if len > 0 then begin
    let g = t.write_gen + 1 in
    t.write_gen <- g;
    let p0 = addr lsr gen_page_bits
    and p1 = (addr + len - 1) lsr gen_page_bits in
    for p = p0 to p1 do
      Array.unsafe_set t.gens p g
    done
  end;
  notify_watchers t.watchers ~addr ~len

let rec check_guard_list gs ~addr ~len =
  match gs with
  | [] -> ()
  | g :: rest ->
      (if g.g_active && g.g_base < addr + len && addr < g.g_base + g.g_len then
         match g.decide ~addr ~len with
         | `Allow -> ()
         | `Deny -> raise (Write_trapped { addr; guard_name = g.guard_name }));
      check_guard_list rest ~addr ~len

(* Normal-world writes are screened by active guards before landing; the
   secure world owns the page tables and is never trapped. *)
let check_guards t ~world ~addr ~len =
  match world with
  | World.Secure -> ()
  | World.Normal -> check_guard_list t.guards ~addr ~len

let write_byte t ~world ~addr v =
  check_access t ~world ~addr;
  check_guards t ~world ~addr ~len:1;
  Bytes.set t.data addr (Char.chr (v land 0xff));
  notify_write t ~addr ~len:1

let read_bytes t ~world ~addr ~len =
  check_range t ~world ~addr ~len;
  Bytes.sub t.data addr len

let write_string t ~world ~addr s =
  check_range t ~world ~addr ~len:(String.length s);
  check_guards t ~world ~addr ~len:(String.length s);
  Bytes.blit_string s 0 t.data addr (String.length s);
  notify_write t ~addr ~len:(String.length s)

let read_int64_le t ~world ~addr =
  check_range t ~world ~addr ~len:8;
  Bytes.get_int64_le t.data addr

let write_int64_le t ~world ~addr v =
  check_range t ~world ~addr ~len:8;
  check_guards t ~world ~addr ~len:8;
  Bytes.set_int64_le t.data addr v;
  notify_write t ~addr ~len:8

let with_range_ro t ~world ~addr ~len ~f =
  check_range t ~world ~addr ~len;
  f t.data addr

(* Unvalidated word loads for loops inside a [with_range_ro] window: the
   range check already ran once for the whole window, so per-load bounds
   checks in a block-compare sweep are pure overhead. *)
external unsafe_get_int64_ne : Bytes.t -> int -> int64 = "%caml_bytes_get64u"

external unsafe_string_get_int64_ne : string -> int -> int64
  = "%caml_string_get64u"

let fold_range t ~world ~addr ~len ~init ~f =
  check_range t ~world ~addr ~len;
  let acc = ref init in
  for i = addr to addr + len - 1 do
    acc := f !acc (Char.code (Bytes.unsafe_get t.data i))
  done;
  !acc

let blit_within t ~world ~src ~dst ~len =
  check_range t ~world ~addr:src ~len;
  check_range t ~world ~addr:dst ~len;
  check_guards t ~world ~addr:dst ~len;
  Bytes.blit t.data src t.data dst len;
  notify_write t ~addr:dst ~len

let add_write_guard t ~name ~base ~len ~decide =
  if len <= 0 then invalid_arg "Memory.add_write_guard: empty range";
  let g =
    { guard_name = name; g_base = base; g_len = len; decide; g_active = true }
  in
  t.guards <- g :: t.guards;
  g

let remove_write_guard t g = t.guards <- List.filter (fun x -> x != g) t.guards
let disable_write_guard g = g.g_active <- false
let guard_active g = g.g_active

let write_generation t = t.write_gen

let generation t ~addr ~len =
  if len <= 0 then invalid_arg "Memory.generation: empty range";
  if addr < 0 || addr + len > Bytes.length t.data then raise (Bad_address addr);
  let p0 = addr lsr gen_page_bits
  and p1 = (addr + len - 1) lsr gen_page_bits in
  let g = ref (Array.unsafe_get t.gens p0) in
  for p = p0 + 1 to p1 do
    let gp = Array.unsafe_get t.gens p in
    if gp > !g then g := gp
  done;
  !g

let bump_generation t ~addr ~len =
  if len <= 0 then invalid_arg "Memory.bump_generation: empty range";
  if addr < 0 || addr + len > Bytes.length t.data then raise (Bad_address addr);
  let g = t.write_gen + 1 in
  t.write_gen <- g;
  let p0 = addr lsr gen_page_bits
  and p1 = (addr + len - 1) lsr gen_page_bits in
  for p = p0 to p1 do
    Array.unsafe_set t.gens p g
  done

let add_write_watcher t notify =
  let w = { active = true; notify } in
  t.watchers <- w :: t.watchers;
  w

let remove_write_watcher t w =
  w.active <- false;
  t.watchers <- List.filter (fun x -> x != w) t.watchers
