type security = Secure_region | Non_secure_region

type region = {
  name : string;
  base : int;
  size : int;
  security : security;
}

type watcher = { mutable active : bool; notify : addr:int -> len:int -> unit }

type guard = {
  guard_name : string;
  g_base : int;
  g_len : int;
  decide : addr:int -> len:int -> [ `Allow | `Deny ];
  mutable g_active : bool;
}

exception Write_trapped of { addr : int; guard_name : string }

type t = {
  data : Bytes.t;
  mutable region_list : region list; (* sorted by base *)
  mutable watchers : watcher list;
  mutable guards : guard list;
}

exception Access_violation of { world : World.t; addr : int; region : string }

exception Bad_address of int

let create ~size =
  if size <= 0 then invalid_arg "Memory.create: size must be positive";
  { data = Bytes.make size '\000'; region_list = []; watchers = []; guards = [] }

let size t = Bytes.length t.data

let overlaps a b =
  a.base < b.base + b.size && b.base < a.base + a.size

let add_region t ~name ~base ~size ~security =
  if base < 0 || size <= 0 || base + size > Bytes.length t.data then
    invalid_arg (Printf.sprintf "Memory.add_region %s: out of address space" name);
  let r = { name; base; size; security } in
  List.iter
    (fun existing ->
      if overlaps existing r then
        invalid_arg
          (Printf.sprintf "Memory.add_region %s: overlaps region %s" name
             existing.name))
    t.region_list;
  t.region_list <-
    List.sort (fun a b -> compare a.base b.base) (r :: t.region_list);
  r

let region_of_addr t addr =
  List.find_opt (fun r -> addr >= r.base && addr < r.base + r.size) t.region_list

let regions t = t.region_list

let check_access t ~world ~addr =
  if addr < 0 || addr >= Bytes.length t.data then raise (Bad_address addr);
  match world, region_of_addr t addr with
  | World.Secure, _ -> ()
  | World.Normal, Some { security = Secure_region; name; _ } ->
      raise (Access_violation { world; addr; region = name })
  | World.Normal, (Some { security = Non_secure_region; _ } | None) -> ()

(* Range checks validate only the end regions plus any secure region inside;
   for the access patterns here (ranges either fully secure or fully
   non-secure) checking every byte's region would be wasted work, but a range
   straddling into a secure region must still trap, so we scan region
   boundaries, not bytes. *)
let check_range t ~world ~addr ~len =
  if len < 0 then invalid_arg "Memory: negative length";
  if addr < 0 || addr + len > Bytes.length t.data then raise (Bad_address addr);
  match world with
  | World.Secure -> ()
  | World.Normal ->
      List.iter
        (fun r ->
          if r.security = Secure_region && r.base < addr + len
             && addr < r.base + r.size
          then raise (Access_violation { world; addr; region = r.name }))
        t.region_list

let read_byte t ~world ~addr =
  check_access t ~world ~addr;
  Char.code (Bytes.get t.data addr)

let notify_write t ~addr ~len =
  List.iter (fun w -> if w.active then w.notify ~addr ~len) t.watchers

(* Normal-world writes are screened by active guards before landing; the
   secure world owns the page tables and is never trapped. *)
let check_guards t ~world ~addr ~len =
  match world with
  | World.Secure -> ()
  | World.Normal ->
      List.iter
        (fun g ->
          if g.g_active && g.g_base < addr + len && addr < g.g_base + g.g_len
          then
            match g.decide ~addr ~len with
            | `Allow -> ()
            | `Deny -> raise (Write_trapped { addr; guard_name = g.guard_name }))
        t.guards

let write_byte t ~world ~addr v =
  check_access t ~world ~addr;
  check_guards t ~world ~addr ~len:1;
  Bytes.set t.data addr (Char.chr (v land 0xff));
  notify_write t ~addr ~len:1

let read_bytes t ~world ~addr ~len =
  check_range t ~world ~addr ~len;
  Bytes.sub t.data addr len

let write_string t ~world ~addr s =
  check_range t ~world ~addr ~len:(String.length s);
  check_guards t ~world ~addr ~len:(String.length s);
  Bytes.blit_string s 0 t.data addr (String.length s);
  notify_write t ~addr ~len:(String.length s)

let read_int64_le t ~world ~addr =
  check_range t ~world ~addr ~len:8;
  Bytes.get_int64_le t.data addr

let write_int64_le t ~world ~addr v =
  check_range t ~world ~addr ~len:8;
  check_guards t ~world ~addr ~len:8;
  Bytes.set_int64_le t.data addr v;
  notify_write t ~addr ~len:8

let with_range_ro t ~world ~addr ~len ~f =
  check_range t ~world ~addr ~len;
  f t.data addr

(* Unvalidated word loads for loops inside a [with_range_ro] window: the
   range check already ran once for the whole window, so per-load bounds
   checks in a block-compare sweep are pure overhead. *)
external unsafe_get_int64_ne : Bytes.t -> int -> int64 = "%caml_bytes_get64u"

external unsafe_string_get_int64_ne : string -> int -> int64
  = "%caml_string_get64u"

let fold_range t ~world ~addr ~len ~init ~f =
  check_range t ~world ~addr ~len;
  let acc = ref init in
  for i = addr to addr + len - 1 do
    acc := f !acc (Char.code (Bytes.unsafe_get t.data i))
  done;
  !acc

let blit_within t ~world ~src ~dst ~len =
  check_range t ~world ~addr:src ~len;
  check_range t ~world ~addr:dst ~len;
  check_guards t ~world ~addr:dst ~len;
  Bytes.blit t.data src t.data dst len;
  notify_write t ~addr:dst ~len

let add_write_guard t ~name ~base ~len ~decide =
  if len <= 0 then invalid_arg "Memory.add_write_guard: empty range";
  let g =
    { guard_name = name; g_base = base; g_len = len; decide; g_active = true }
  in
  t.guards <- g :: t.guards;
  g

let remove_write_guard t g = t.guards <- List.filter (fun x -> x != g) t.guards
let disable_write_guard g = g.g_active <- false
let guard_active g = g.g_active

let add_write_watcher t notify =
  let w = { active = true; notify } in
  t.watchers <- w :: t.watchers;
  w

let remove_write_watcher t w =
  w.active <- false;
  t.watchers <- List.filter (fun x -> x != w) t.watchers
