module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time

type fault = Deliver | Drop | Delay of Sim_time.t

type t = {
  engine : Engine.t;
  gic : Gic.t;
  cpu : Cpu.t;
  irq : Gic.irq;
  mutable event : Engine.handle option;
  mutable deadline : Sim_time.t option;
  mutable fired : int;
  mutable fault_hook : (deadline:Sim_time.t -> fault) option;
  mutable dropped : int;
  mutable delayed : int;
}

let create ~engine ~gic ~cpu ~irq =
  {
    engine;
    gic;
    cpu;
    irq;
    event = None;
    deadline = None;
    fired = 0;
    fault_hook = None;
    dropped = 0;
    delayed = 0;
  }

let set_fault_hook t hook = t.fault_hook <- hook

let disarm t =
  (match t.event with Some h -> Engine.cancel t.engine h | None -> ());
  t.event <- None;
  t.deadline <- None

let fire t () =
  t.event <- None;
  t.deadline <- None;
  t.fired <- t.fired + 1;
  Gic.raise_irq t.gic ~core:(Cpu.id t.cpu) ~world_of_core:(Cpu.world t.cpu)
    ~irq:t.irq

let arm_at t time =
  disarm t;
  let now = Engine.now t.engine in
  let time = Sim_time.max time now in
  match t.fault_hook with
  | None ->
      t.deadline <- Some time;
      t.event <- Some (Engine.at t.engine ~time (fire t))
  | Some hook -> (
      match hook ~deadline:time with
      | Deliver ->
          t.deadline <- Some time;
          t.event <- Some (Engine.at t.engine ~time (fire t))
      | Drop ->
          (* The compare write is swallowed: the timer stays disarmed, so
             the next introspection wake-up simply never arrives. *)
          t.dropped <- t.dropped + 1
      | Delay extra ->
          if Sim_time.is_negative extra then
            invalid_arg "Timer fault hook: Delay must be non-negative";
          let time = Sim_time.add time extra in
          t.delayed <- t.delayed + 1;
          t.deadline <- Some time;
          t.event <- Some (Engine.at t.engine ~time (fire t)))

let arm_after t delay = arm_at t (Sim_time.add (Engine.now t.engine) delay)

let armed t = t.event <> None
let deadline t = t.deadline
let counter t = Engine.now t.engine
let fired_count t = t.fired
let dropped_count t = t.dropped
let delayed_count t = t.delayed
