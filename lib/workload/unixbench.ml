module Engine = Satin_engine.Engine
module Sim_time = Satin_engine.Sim_time
module Platform = Satin_hw.Platform
module Cpu = Satin_hw.Cpu
module Kernel = Satin_kernel.Kernel
module Task = Satin_kernel.Task

type program = {
  prog_name : string;
  unit_cpu : Sim_time.t;
  mem_sensitivity : float;
  refill_sensitivity : float;
}

let prog name cpu_us mem refill =
  {
    prog_name = name;
    unit_cpu = Sim_time.us cpu_us;
    mem_sensitivity = mem;
    refill_sensitivity = refill;
  }

(* [refill_sensitivity] captures how much of a program's throughput rides on
   per-core warm state (L1/L2 working set, buffer-cache and run-queue
   hotness) that a secure-world pass wipes out: dominated by the tiny-block
   file copy and the context-switching test, the two the paper singles out
   as worst cases. *)
let programs =
  [
    prog "dhrystone2" 500 0.05 0.001;
    prog "whetstone" 500 0.05 0.001;
    prog "execl" 800 0.35 0.008;
    prog "file_copy_256" 300 1.0 1.0;
    prog "file_copy_1024" 300 0.7 0.02;
    prog "file_copy_4096" 300 0.5 0.012;
    prog "pipe_throughput" 200 0.45 0.01;
    prog "context_switching" 200 1.1 1.4;
    prog "process_creation" 700 0.4 0.008;
    prog "shell_scripts_1" 900 0.3 0.006;
    prog "shell_scripts_8" 1200 0.35 0.006;
    prog "syscall" 150 0.25 0.006;
  ]

let find_program name = List.find (fun p -> p.prog_name = name) programs

module Tuning = struct
  let contention_factor = ref 3.5
  let cache_refill_window = ref (Sim_time.ms 220)
  let cache_refill_factor = ref 9.0
end

type instance = {
  platform : Platform.t;
  sched : Satin_kernel.Sched.t;
  program : program;
  launched_at : Sim_time.t;
  mutable units : int;
  mutable running : bool;
  mutable tasks : Task.t list;
}

let any_core_secure platform =
  Array.exists Cpu.in_secure platform.Platform.cores

let in_refill_window platform ~core =
  match Cpu.last_exit_time (Platform.core platform core) with
  | Some exit ->
      Sim_time.diff (Engine.now platform.Platform.engine) exit
      < !Tuning.cache_refill_window
  | None -> false

let busy_cores inst =
  let n = ref 0 in
  for core = 0 to Platform.ncores inst.platform - 1 do
    match Satin_kernel.Sched.current inst.sched ~core with
    | Some _ -> incr n
    | None -> ()
  done;
  !n

let dilation inst ~core =
  (* Memory pressure hits superlinearly: a program already saturating the
     memory system loses far more to a concurrent 100+ MB/s hash stream than
     a mostly-in-cache one, so sensitivity enters squared. The hash stream
     also queues behind every other busy core's traffic, so a loaded machine
     feels the scan slightly more (the paper's 6-task > 1-task gap). *)
  let s2 =
    inst.program.mem_sensitivity *. inst.program.mem_sensitivity
  in
  let d = ref 1.0 in
  if any_core_secure inst.platform then begin
    let queueing = 1.0 +. (0.08 *. float_of_int (max 0 (busy_cores inst - 1))) in
    d := !d +. (!Tuning.contention_factor *. s2 *. queueing)
  end;
  (match core with
  | Some c when in_refill_window inst.platform ~core:c ->
      d := !d +. (!Tuning.cache_refill_factor *. inst.program.refill_sensitivity)
  | Some _ | None -> ());
  !d

let body inst task =
  if not inst.running then { Task.cpu = Sim_time.zero; after = (fun () -> Task.Exit) }
  else begin
    let cpu =
      Sim_time.scale inst.program.unit_cpu
        (dilation inst ~core:(Task.assigned_core task))
    in
    {
      Task.cpu;
      after =
        (fun () ->
          inst.units <- inst.units + 1;
          Task.Reenter);
    }
  end

let launch kernel program ?affinity ~copies () =
  if copies <= 0 then invalid_arg "Unixbench.launch: copies must be positive";
  let platform = kernel.Kernel.platform in
  let inst =
    {
      platform;
      sched = kernel.Kernel.sched;
      program;
      launched_at = Engine.now platform.Platform.engine;
      units = 0;
      running = true;
      tasks = [];
    }
  in
  for i = 1 to copies do
    let task =
      Task.create
        ~name:(Printf.sprintf "%s#%d" program.prog_name i)
        ~policy:Task.Cfs ?affinity ~body:(body inst) ()
    in
    inst.tasks <- task :: inst.tasks;
    Kernel.spawn kernel task
  done;
  inst

let completed_units inst = inst.units

let score inst ~at =
  let elapsed = Sim_time.to_sec_f (Sim_time.diff at inst.launched_at) in
  if elapsed <= 0.0 then 0.0 else float_of_int inst.units /. elapsed

let stop inst = inst.running <- false
